// Debugging the ARP flood — §2's "true story from our research lab".
//
// Several kernel-bypass applications share the NIC. One of them has a bug:
// it floods gratuitous ARP requests with a bogus MAC. Alice notices the
// flood on her network and — because the interposition layer runs in the
// NIC with the kernel's process table behind it — finds the culprit with
// two commands: norman-tcpdump (filtered to ARP, in overlay assembly) and
// norman-arp, both of which print the owning process of every frame.
#include <cstdio>

#include "src/common/stats.h"
#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

using namespace norman;  // NOLINT

int main() {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "bob");
  k.processes().AddUser(1002, "charlie");

  // Bob and Charlie's fleet of bypass applications.
  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  struct App {
    kernel::Pid pid;
    Socket sock;
  };
  std::vector<App> apps;
  const char* comms[] = {"web", "cache", "queue", "metrics", "updater"};
  for (int i = 0; i < 5; ++i) {
    const auto uid = i % 2 == 0 ? 1001u : 1002u;
    const auto pid = *k.processes().Spawn(uid, comms[i]);
    auto s = Socket::Connect(&k, pid, peer,
                             static_cast<uint16_t>(9000 + i), {});
    apps.push_back(App{pid, std::move(*s)});
  }

  // Normal chatter from everyone...
  std::vector<std::unique_ptr<workload::CbrSender>> chatter;
  for (auto& app : apps) {
    chatter.push_back(std::make_unique<workload::CbrSender>(
        &bed.sim(), &app.sock, 256, 250 * kMicrosecond));
    chatter.back()->Start(0, 5 * kMillisecond);
  }
  // ...except "updater" (apps[4]) is buggy: raw ARP frames, bogus MAC.
  workload::ArpFlooder flood(
      &bed.sim(), &apps[4].sock,
      net::MacAddress{{0xba, 0xdb, 0xad, 0xba, 0xdb, 0xad}},
      net::Ipv4Address::FromOctets(10, 0, 0, 66), 100 * kMicrosecond);
  flood.Start(kMillisecond, 5 * kMillisecond);

  // Alice reacts at t=2ms: capture ARP only (a BPF-style overlay filter).
  bed.sim().ScheduleAt(2 * kMillisecond, [&k] {
    std::printf("alice# norman-tcpdump -i nic0 'arp'   (capture started)\n");
    (void)tools::TcpdumpStart(&k, kernel::kRootUid,
                              "ldf r1, is_arp\nret r1");
  });
  bed.sim().Run();

  std::printf("\nalice# norman-tcpdump -r   (last 5 captured frames)\n");
  std::printf("%s", tools::TcpdumpRender(k, 5).c_str());

  std::printf("\nalice# norman-arp\n%s", tools::ArpShow(k).c_str());

  // Save the capture for wireshark.
  const std::string pcap_path = "/tmp/norman_arp_flood.pcap";
  if (tools::TcpdumpWritePcap(k, pcap_path).ok()) {
    std::printf("\ncapture written to %s (%llu frames, standard pcap)\n",
                pcap_path.c_str(),
                static_cast<unsigned long long>(k.sniffer().captured()));
  }

  std::printf(
      "\nEvery ARP frame above is attributed to pid %u (updater) — one\n"
      "command instead of auditing all %zu applications by hand.\n",
      apps[4].pid, apps.size());
  return 0;
}
