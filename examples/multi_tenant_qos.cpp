// Multi-tenant QoS: the §2 scenario, end to end.
//
// Alice administers a server where Bob and Charlie run productive services
// AND sneak in an online game over ephemeral ports. She moves the game
// processes into a /games cgroup and installs an on-NIC WFQ qdisc with
// norman-tc: productive traffic gets weight 8, the game weight 1. The game
// cannot evade this — classification happens in the NIC, keyed on the
// cgroup the kernel stamped into the flow table, not on ports.
#include <cstdio>

#include "src/common/stats.h"
#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

using namespace norman;  // NOLINT

int main() {
  workload::TestBedOptions options;
  options.nic.cost.link_rate_bps = 10 * kGbps;  // a congested uplink
  workload::TestBed bed(options);
  auto& k = bed.kernel();

  // Users, cgroups, processes.
  k.processes().AddUser(1001, "bob");
  k.processes().AddUser(1002, "charlie");
  const auto games = *k.processes().CreateCgroup("/games");
  const auto pid_db = *k.processes().Spawn(1001, "postgres");
  const auto pid_web = *k.processes().Spawn(1002, "nginx");
  const auto pid_game_b = *k.processes().Spawn(1001, "shootmania");
  const auto pid_game_c = *k.processes().Spawn(1002, "shootmania");
  (void)k.processes().MoveToCgroup(pid_game_b, games);
  (void)k.processes().MoveToCgroup(pid_game_c, games);

  // Alice (root) shapes: cgroup 1 (root) weight 8, /games weight 1.
  char tc_spec[128];
  std::snprintf(tc_spec, sizeof(tc_spec),
                "qdisc replace dev nic0 root wfq cgroup 1:8 cgroup %u:1",
                games);
  if (const Status s = tools::TcReplace(&k, kernel::kRootUid, tc_spec);
      !s.ok()) {
    std::fprintf(stderr, "tc: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("alice# norman-tc %s\n%s\n", tc_spec,
              tools::TcShow(k).c_str());

  // Everyone floods the uplink.
  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto db = Socket::Connect(&k, pid_db, peer, 5432, {});
  auto web = Socket::Connect(&k, pid_web, peer, 443, {});
  auto gb = Socket::Connect(&k, pid_game_b, peer, 27015, {});
  auto gc = Socket::Connect(&k, pid_game_c, peer, 27016, {});

  constexpr Nanos kRunFor = 20 * kMillisecond;
  workload::BulkSender s1(&bed.sim(), &*db, 1400, 2 * kMicrosecond);
  workload::BulkSender s2(&bed.sim(), &*web, 1400, 2 * kMicrosecond);
  workload::BulkSender s3(&bed.sim(), &*gb, 1400, 2 * kMicrosecond);
  workload::BulkSender s4(&bed.sim(), &*gc, 1400, 2 * kMicrosecond);
  s1.Start(0, kRunFor);
  s2.Start(0, kRunFor);
  s3.Start(0, kRunFor);
  s4.Start(0, kRunFor);

  uint64_t productive_bytes = 0, game_bytes = 0;
  bed.SetEgressHook([&](const net::Packet& p) {
    auto parsed = net::ParseFrame(p.bytes());
    if (!parsed || !parsed->flow()) {
      return;
    }
    const uint16_t port = parsed->flow()->dst_port;
    (port == 27015 || port == 27016 ? game_bytes : productive_bytes) +=
        p.size();
  });
  bed.DiscardEgress();
  bed.sim().RunUntil(kRunFor);

  const double total = static_cast<double>(productive_bytes + game_bytes);
  std::printf("after %s of congestion on the 10G uplink:\n",
              FormatNanos(kRunFor).c_str());
  std::printf("  productive (postgres+nginx): %5.1f%%  (%s)\n",
              100.0 * static_cast<double>(productive_bytes) / total,
              FormatBps(AchievedBps(productive_bytes, kRunFor)).c_str());
  std::printf("  game (/games cgroup):        %5.1f%%  (%s)\n",
              100.0 * static_cast<double>(game_bytes) / total,
              FormatBps(AchievedBps(game_bytes, kRunFor)).c_str());
  std::printf("  achieved ratio %.2f:1 against configured 8:1\n",
              static_cast<double>(productive_bytes) /
                  static_cast<double>(game_bytes));

  std::printf("\nalice# norman-netstat\n%s", tools::Netstat(k).c_str());
  return 0;
}
