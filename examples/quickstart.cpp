// Quickstart: the smallest complete Norman program.
//
// Boots a simulated host (SmartNIC + kernel + echo peer), spawns a process,
// opens a kernel-bypass connection, sends a message with the POSIX-style
// API and a second one with the zero-copy frame API, and prints what came
// back. Note what does NOT happen: after Connect, no Send/Recv touches the
// software kernel — data moves app <-> ring <-> NIC.
#include <cstdio>
#include <string>

#include "src/common/stats.h"
#include "src/norman/socket.h"
#include "src/workload/testbed.h"

using namespace norman;  // NOLINT

int main() {
  // A host whose remote peer echoes everything back.
  workload::TestBedOptions options;
  options.echo = true;
  workload::TestBed bed(options);

  // The OS side: a user and a process.
  auto& kernel = bed.kernel();
  kernel.processes().AddUser(1000, "alice");
  const kernel::Pid pid = *kernel.processes().Spawn(1000, "quickstart");

  // connect(2): the kernel allocates rings, stamps our identity into the
  // NIC flow table, and hands back the dataplane capability.
  auto socket = Socket::Connect(&kernel, pid,
                                net::Ipv4Address::FromOctets(10, 0, 0, 2),
                                /*remote_port=*/7, {});
  if (!socket.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 socket.status().ToString().c_str());
    return 1;
  }
  std::printf("connected: %s (conn %u, owned by pid %u)\n",
              socket->tuple().ToString().c_str(), socket->conn_id(), pid);

  // POSIX-ish send.
  if (const Status s = socket->Send("hello, norman"); !s.ok()) {
    std::fprintf(stderr, "send failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Zero-copy send: write the payload straight into the frame.
  net::PacketPtr frame = socket->AllocFrame(16);
  auto payload = Socket::Payload(*frame);
  const std::string msg2 = "zero-copy lane!";
  std::copy(msg2.begin(), msg2.end(), payload.begin());
  payload[15] = '\0';
  (void)socket->SendFrame(std::move(frame));

  // Run the virtual world until quiescent (TX -> wire -> peer -> RX).
  bed.sim().Run();

  // Both echoes are waiting in our RX ring.
  for (auto data = socket->Recv(); data.ok(); data = socket->Recv()) {
    std::printf("echoed back: \"%.*s\" (%zu bytes)\n",
                static_cast<int>(data->size()),
                reinterpret_cast<const char*>(data->data()), data->size());
  }
  std::printf("stats: %llu tx, %llu rx, %llu tx bytes — virtual time %s\n",
              static_cast<unsigned long long>(socket->stats().tx_packets),
              static_cast<unsigned long long>(socket->stats().rx_packets),
              static_cast<unsigned long long>(socket->stats().tx_bytes),
              FormatNanos(bed.sim().Now()).c_str());
  return 0;
}
