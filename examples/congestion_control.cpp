// Congestion control as a kernel module driving the NIC pacer (§4.2 lists
// congestion control among the on-NIC dataplane functionality).
//
// Split exactly as the paper prescribes: the *policy* lives in the kernel
// (an AIMD controller observing per-connection delivery), the *mechanism*
// lives in the NIC (the per-connection pacer enforcing the current rate at
// line speed). Two senders share a 1 Gbps bottleneck: watch AIMD walk both
// to ~half the link each, with the NIC enforcing every intermediate rate.
#include <cstdio>
#include <functional>

#include "src/common/stats.h"
#include "src/norman/socket.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

using namespace norman;  // NOLINT

namespace {

// A minimal AIMD rate controller: additive increase while deliveries keep
// up with the enforced rate, multiplicative decrease when the NIC backlog
// (our congestion signal) grows.
class AimdController {
 public:
  AimdController(kernel::Kernel* k, net::ConnectionId conn,
                 BitsPerSecond initial, BitsPerSecond probe_step)
      : kernel_(k), conn_(conn), rate_(initial), step_(probe_step) {
    Apply();
  }

  void Update(uint64_t backlog_packets) {
    if (backlog_packets > 64) {
      rate_ = static_cast<BitsPerSecond>(static_cast<double>(rate_) * 0.7);
      rate_ = std::max<BitsPerSecond>(rate_, 50'000'000);
    } else {
      rate_ += step_;
    }
    Apply();
  }

  BitsPerSecond rate() const { return rate_; }

 private:
  void Apply() {
    (void)kernel_->SetConnRateLimit(kernel::kRootUid, conn_, rate_,
                                    /*burst=*/16 * 1024);
  }

  kernel::Kernel* kernel_;
  net::ConnectionId conn_;
  BitsPerSecond rate_;
  BitsPerSecond step_;
};

}  // namespace

int main() {
  workload::TestBedOptions options;
  options.nic.cost.link_rate_bps = 1 * kGbps;  // the bottleneck
  workload::TestBed bed(options);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "tenant");
  const auto pid = *k.processes().Spawn(1, "sender");

  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto a = Socket::Connect(&k, pid, peer, 1111, {});
  auto b = Socket::Connect(&k, pid, peer, 2222, {});

  constexpr Nanos kRunFor = 100 * kMillisecond;
  workload::BulkSender sender_a(&bed.sim(), &*a, 1400, 4 * kMicrosecond);
  workload::BulkSender sender_b(&bed.sim(), &*b, 1400, 4 * kMicrosecond);
  sender_a.Start(0, kRunFor);
  sender_b.Start(0, kRunFor);

  // Start asymmetric: A at 100 Mbit/s, B at 700 Mbit/s. AIMD should
  // converge them toward a fair split of the 1G link.
  AimdController cc_a(&k, a->conn_id(), 100'000'000, 40'000'000);
  AimdController cc_b(&k, b->conn_id(), 700'000'000, 40'000'000);

  uint64_t bytes_a = 0, bytes_b = 0;
  bed.SetEgressHook([&](const net::Packet& p) {
    auto parsed = net::ParseFrame(p.bytes());
    if (!parsed || !parsed->flow()) {
      return;
    }
    (parsed->flow()->dst_port == 1111 ? bytes_a : bytes_b) += p.size();
  });
  bed.DiscardEgress();

  // The kernel's CC tick: every 2 ms read the NIC backlog and adjust.
  std::printf("%8s %14s %14s %14s %14s\n", "time", "rate A", "rate B",
              "goodput A", "goodput B");
  uint64_t last_a = 0, last_b = 0;
  std::function<void()> tick = [&] {
    // Congestion = packets contending for the wire (not pacer queues).
    const uint64_t backlog = k.LinkBacklog();
    cc_a.Update(backlog);
    cc_b.Update(backlog);
    if (bed.sim().Now() % (10 * kMillisecond) == 0) {
      const Nanos window = 10 * kMillisecond;
      std::printf("%8s %14s %14s %14s %14s\n",
                  FormatNanos(bed.sim().Now()).c_str(),
                  FormatBps(static_cast<double>(cc_a.rate())).c_str(),
                  FormatBps(static_cast<double>(cc_b.rate())).c_str(),
                  FormatBps(AchievedBps(bytes_a - last_a, window)).c_str(),
                  FormatBps(AchievedBps(bytes_b - last_b, window)).c_str());
      last_a = bytes_a;
      last_b = bytes_b;
    }
    if (bed.sim().Now() < kRunFor) {
      bed.sim().ScheduleAfter(2 * kMillisecond, tick);
    }
  };
  bed.sim().ScheduleAfter(2 * kMillisecond, tick);
  bed.sim().RunUntil(kRunFor);

  const double share_a =
      static_cast<double>(bytes_a) / static_cast<double>(bytes_a + bytes_b);
  std::printf("\ntotals: A %s (%.1f%%), B %s — link %s\n",
              FormatBps(AchievedBps(bytes_a, kRunFor)).c_str(),
              share_a * 100,
              FormatBps(AchievedBps(bytes_b, kRunFor)).c_str(),
              FormatBps(AchievedBps(bytes_a + bytes_b, kRunFor)).c_str());
  std::printf(
      "\nkernel policy (AIMD) + NIC mechanism (pacer): rates converge\n"
      "toward a fair split without any application cooperation.\n");
  return 0;
}
