// Port partitioning with owner-match rules — §2's iptables scenario.
//
// Policy: only Bob's postgres may send or receive on 5432; only Charlie's
// mysql on 3306. Expressed exactly like iptables cmd-owner/uid-owner rules
// and compiled to the NIC overlay, where a rogue process — even one using
// kernel bypass — cannot route around it.
#include <cstdio>

#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"

using namespace norman;  // NOLINT

int main() {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "bob");
  k.processes().AddUser(1002, "charlie");
  const auto pid_pg = *k.processes().Spawn(1001, "postgres");
  const auto pid_rogue = *k.processes().Spawn(1002, "cryptominer");

  // Root installs the partitioning policy.
  const char* rules[] = {
      "-A OUTPUT -p udp --dport 5432 -m owner --uid-owner 1001 "
      "--cmd-owner postgres -j ACCEPT",
      "-A OUTPUT -p udp --dport 5432 -j DROP",
      "-A OUTPUT -p udp --dport 3306 -m owner --uid-owner 1002 "
      "--cmd-owner mysql -j ACCEPT",
      "-A OUTPUT -p udp --dport 3306 -j DROP",
  };
  for (const char* r : rules) {
    std::printf("root# norman-iptables %s\n", r);
    const auto s = tools::IptablesAppend(&k, kernel::kRootUid, r);
    if (!s.ok()) {
      std::fprintf(stderr, "  -> %s\n", s.status().ToString().c_str());
      return 1;
    }
  }

  // A non-root user cannot change the policy.
  const auto denied = tools::IptablesAppend(
      &k, /*caller=*/1002, "-A OUTPUT -p udp --dport 5432 -j ACCEPT");
  std::printf("\ncharlie# norman-iptables -A OUTPUT ... -j ACCEPT\n  -> %s\n",
              denied.status().ToString().c_str());

  // Traffic: postgres legitimately, the rogue process trying both ports.
  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto pg = Socket::Connect(&k, pid_pg, peer, 5432, {});
  auto rogue = Socket::Connect(&k, pid_rogue, peer, 5432, {});
  for (int i = 0; i < 20; ++i) {
    (void)pg->Send("INSERT INTO t VALUES (1)");
    (void)rogue->Send("exfiltrate via 5432");
  }
  bed.sim().Run();

  uint64_t legit = 0, violations = 0;
  for (const auto& frame : bed.egress()) {
    auto parsed = net::ParseFrame(frame->bytes());
    if (parsed && parsed->flow() && parsed->flow()->dst_port == 5432) {
      (parsed->flow()->src_port == pg->tuple().src_port ? legit
                                                        : violations)++;
    }
  }
  std::printf("\non the wire: %llu legitimate postgres frames, "
              "%llu rogue frames\n",
              static_cast<unsigned long long>(legit),
              static_cast<unsigned long long>(violations));
  std::printf("NIC filter drops: %llu\n\n",
              static_cast<unsigned long long>(bed.nic().stats().tx_dropped()));

  std::printf("root# norman-iptables -L -v\n%s",
              tools::IptablesList(k).c_str());
  return violations == 0 ? 0 : 1;
}
