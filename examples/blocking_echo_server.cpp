// Blocking I/O — §2's "Process Scheduling" and §4.3's notification queues.
//
// A server process handles requests with blocking receives: it sleeps until
// the NIC posts an RX notification, the kernel wakes it (one context
// switch), it replies, and goes back to sleep. Compare the CPU accounting
// printed at the end with what a DPDK-style poll loop would burn: a full
// core, always.
#include <cstdio>
#include <functional>

#include "src/common/stats.h"
#include "src/norman/socket.h"
#include "src/sim/resource.h"
#include "src/workload/testbed.h"

using namespace norman;  // NOLINT

int main() {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1000, "svc");
  const auto pid = *k.processes().Spawn(1000, "echo-server");

  kernel::ConnectOptions opts;
  opts.notify_rx = true;  // ask the NIC for RX notifications
  auto server = Socket::Connect(&k, pid,
                                net::Ipv4Address::FromOctets(10, 0, 0, 2),
                                4242, opts);
  if (!server.ok()) {
    std::fprintf(stderr, "connect: %s\n", server.status().ToString().c_str());
    return 1;
  }

  // Sporadic client requests (mean 1 per 500us).
  constexpr Nanos kRunFor = 20 * kMillisecond;
  int injected = 0;
  for (Nanos t = 100 * kMicrosecond; t < kRunFor; t += 500 * kMicrosecond) {
    bed.InjectUdpFromPeer(4242, server->tuple().src_port, 64, t);
    ++injected;
  }

  sim::Resource app_core("server-core");
  int handled = 0;
  std::function<void()> serve = [&] {
    const Status s = server->RecvBlocking([&](std::vector<uint8_t> req) {
      ++handled;
      app_core.AddBusy(3 * kMicrosecond);  // application-level work
      std::printf("  t=%-10s woke, handled %zu-byte request #%d\n",
                  FormatNanos(bed.sim().Now()).c_str(), req.size(), handled);
      (void)server->Send(req);  // echo the reply
      if (bed.sim().Now() < kRunFor) {
        serve();  // block again for the next request
      }
    });
    if (!s.ok()) {
      std::fprintf(stderr, "block: %s\n", s.ToString().c_str());
    }
  };
  std::printf("echo server blocking on conn %u...\n", server->conn_id());
  serve();
  bed.sim().RunUntil(kRunFor);

  std::printf("\nhandled %d/%d requests in %s of virtual time\n", handled,
              injected, FormatNanos(kRunFor).c_str());
  std::printf("server core busy:  %6.3f%%  (a polling loop would show "
              "100%%)\n",
              app_core.Utilization(kRunFor) * 100);
  std::printf("kernel wake cost:  %6.3f%%  (%s total for %d context "
              "switches)\n",
              k.kernel_core().Utilization(kRunFor) * 100,
              FormatNanos(k.kernel_core().busy_ns()).c_str(), handled);
  return handled == injected ? 0 : 1;
}
