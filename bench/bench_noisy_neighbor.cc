// Noisy-neighbor isolation matrix (multi-tenant SmartNIC tenancy).
//
// A victim tenant runs a fixed, modest workload while an aggressor tenant
// attacks a shared NIC resource, under three regimes:
//   solo     — victim alone: the 100% reference.
//   open     — aggressor present, tenancy dormant (no quotas, no WFQ):
//              the pre-tenancy world, where the victim eats the abuse.
//   guarded  — per-tenant quotas + WFQ cycle shares + the per-tenant TX
//              discipline armed via the declarative Configure API.
//
// Three aggressors, one per quota dimension:
//   arp_flood       — TX-floods gratuitous ARP through a bypass socket at
//                     pipeline line rate; the WFQ cycle share must keep the
//                     victim's packets from queueing behind the flood.
//   conntrack_churn — opens+abandons connections to strand conntrack state
//                     in shared SRAM; the tenant SRAM envelope must cap the
//                     churn at the aggressor's own budget.
//   overlay_hog     — loads a maximum-length overlay program into the
//                     tenant TX slot (every packet pays ~1us of soft
//                     processor) and floods frames through it; the
//                     overlay_slots quota must refuse the program.
//
// Metric: victim deliveries inside a fixed virtual window (replies drained
// from the victim's RX ring before the deadline), reported as events/s of
// virtual time. The CI gate (check_bench_regression.py) requires the
// guarded victim to retain >= 90% of its solo rate for every scenario.
//
// JSON-lines protocol:
//   {"bench":"noisy_neighbor","scenario":"arp_flood","mode":"guarded",
//    "deliveries":N,"window_s":0.01,"eps":X,"retention":R}
#include <cstdio>
#include <string>
#include <vector>

#include "src/norman/socket.h"
#include "src/overlay/assembler.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

namespace {

using namespace norman;  // NOLINT

enum class Mode { kSolo, kOpen, kGuarded };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kSolo:
      return "solo";
    case Mode::kOpen:
      return "open";
    case Mode::kGuarded:
      return "guarded";
  }
  return "?";
}

constexpr Nanos kWindow = 10 * kMillisecond;
constexpr Nanos kDrainSlice = 250 * kMicrosecond;  // RX drains inside window
constexpr auto kPeerIp = net::Ipv4Address::FromOctets(10, 0, 0, 2);
constexpr kernel::Uid kVictimUid = 1001;
constexpr kernel::Uid kAggressorUid = 1002;

struct World {
  workload::TestBed bed;
  kernel::Pid victim_pid = 0;
  kernel::Pid aggressor_pid = 0;
  std::vector<kernel::Tenant> tenants;  // keeps the RAII handles live

  explicit World(workload::TestBedOptions opts) : bed(std::move(opts)) {
    auto& k = bed.kernel();
    k.processes().AddUser(kVictimUid, "victim");
    k.processes().AddUser(kAggressorUid, "aggressor");
    victim_pid = *k.processes().Spawn(kVictimUid, "service");
    aggressor_pid = *k.processes().Spawn(kAggressorUid, "noisy");
  }
};

// Registers both tenants and arms isolation. `aggressor` is the envelope
// the scenario wants enforced; the victim gets a generous share.
void Guard(World& w, const kernel::TenantSpec& aggressor) {
  auto& k = w.bed.kernel();
  kernel::TenantSpec victim;
  victim.cycle_weight = 4;
  auto vt = k.CreateTenant(kernel::kRootUid, kVictimUid, victim);
  auto at = k.CreateTenant(kernel::kRootUid, kAggressorUid, aggressor);
  if (!vt.ok() || !at.ok()) {
    std::fprintf(stderr, "tenant registration failed\n");
    std::exit(1);
  }
  w.tenants.push_back(std::move(*vt));
  w.tenants.push_back(std::move(*at));
  kernel::NicConfig cfg;
  cfg.tenant_isolation = true;
  if (const Status s = k.Configure(kernel::kRootUid, cfg); !s.ok()) {
    std::fprintf(stderr, "configure: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}


// Runs to the window deadline in slices, draining the victim's RX ring
// each slice so bounded rings never clip the delivery count. Returns
// replies delivered by the deadline.
uint64_t DrainWindow(World& w, Socket& victim) {
  uint64_t delivered = 0;
  uint8_t scratch[2048];
  for (Nanos t = kDrainSlice; t <= kWindow; t += kDrainSlice) {
    w.bed.sim().RunUntil(t);
    while (victim.RecvInto(scratch).ok()) {
      ++delivered;
    }
  }
  return delivered;
}

// ---- arp_flood: pipeline-cycle theft ---------------------------------------

uint64_t RunArpFlood(Mode mode) {
  workload::TestBedOptions opts;
  opts.echo = true;
  // Slow the modeled pipeline below the DMA fetch rate so it is the real
  // bottleneck: at 500 kpps (2us/pkt) the flood oversubscribes it ~4x and
  // FIFO service starves the victim unless WFQ intervenes.
  opts.nic.cost.nic_pipeline_pps = 500'000;
  World w(std::move(opts));
  auto& k = w.bed.kernel();
  if (mode == Mode::kGuarded) {
    kernel::TenantSpec aggressor;
    aggressor.cycle_weight = 1;
    Guard(w, aggressor);
  }

  auto victim = Socket::Connect(&k, w.victim_pid, kPeerIp, 443, {});
  if (!victim.ok()) {
    return 0;
  }
  workload::PoissonSender load(&w.bed.sim(), &*victim, 256,
                               20 * kMicrosecond, /*seed=*/0x5eed);
  load.Start(0, kWindow);

  StatusOr<Socket> bypass = UnavailableError("no aggressor");
  workload::ArpFlooder flood(&w.bed.sim(), nullptr, net::MacAddress(),
                             kPeerIp, 0);
  if (mode != Mode::kSolo) {
    bypass = Socket::Connect(&k, w.aggressor_pid, kPeerIp, 9999, {});
    if (!bypass.ok()) {
      return 0;
    }
    flood = workload::ArpFlooder(&w.bed.sim(), &*bypass,
                                 net::MacAddress::ForHost(66),
                                 net::Ipv4Address::FromOctets(10, 0, 0, 66),
                                 /*interval=*/250);
    flood.Start(0, kWindow);
  }
  return DrainWindow(w, *victim);
}

// ---- conntrack_churn: shared-SRAM theft ------------------------------------

uint64_t RunConntrackChurn(Mode mode) {
  workload::TestBedOptions opts;
  opts.echo = true;
  // Small SRAM so the leak exhausts it inside the window: every abandoned
  // flow keeps its flow-table entry (384B) plus conntrack state (64B) until
  // a maintenance sweep that never runs, so the open-mode aggressor strands
  // ~16KB per round and owns the whole pool by round ~2 of 40.
  opts.nic.sram_bytes = 32 * kKiB;
  World w(std::move(opts));
  auto& k = w.bed.kernel();
  if (mode == Mode::kGuarded) {
    kernel::TenantSpec aggressor;
    aggressor.cycle_weight = 1;
    aggressor.sram_bytes = 8 * kKiB;  // the churn hits its own wall here
    Guard(w, aggressor);
  }

  // Connection-per-request victim (the workload SRAM exhaustion actually
  // breaks): each round opens a flow, echoes one request, closes.
  constexpr int kRounds = 40;
  constexpr Nanos kRound = kWindow / kRounds;
  constexpr int kChurnPerRound = 32;
  const std::vector<uint8_t> request(256, 0xab);
  uint8_t scratch[2048];
  uint64_t delivered = 0;
  uint16_t next_port = 20000;

  // Abandoned-but-open flows: the aggressor never closes them, so their
  // flow-table entries and conntrack state pin shared SRAM for the whole
  // window (a connection leak, the classic slow-burn tenant bug).
  std::vector<Socket> leaked;
  for (int round = 0; round < kRounds; ++round) {
    if (mode != Mode::kSolo) {
      for (int i = 0; i < kChurnPerRound; ++i) {
        auto s = Socket::Connect(&k, w.aggressor_pid, kPeerIp, ++next_port,
                                 {});
        if (s.ok()) {
          (void)s->Send(request);
          leaked.push_back(std::move(*s));
        }
      }
    }
    auto victim = Socket::Connect(&k, w.victim_pid, kPeerIp, 443, {});
    if (victim.ok()) {
      (void)victim->Send(request);
    }
    w.bed.sim().RunUntil(static_cast<Nanos>(round + 1) * kRound);
    if (victim.ok()) {
      if (victim->RecvInto(scratch).ok()) {
        ++delivered;
      }
      (void)victim->Close();
    }
  }
  return delivered;
}

// ---- overlay_hog: soft-processor + slot theft ------------------------------

uint64_t RunOverlayHog(Mode mode) {
  workload::TestBedOptions opts;
  opts.echo = true;
  // The shared pipeline must dwarf the hog's ~1us/packet soft-processor
  // latency: the flooder's fetch chain serializes on pipeline + stage time,
  // so at 500 kpps the hog program self-throttles its own flood below
  // saturation. At 75 kpps (13.3us/pkt) the flood holds >90% pipeline
  // utilization and the victim starves unless WFQ intervenes.
  opts.nic.cost.nic_pipeline_pps = 75'000;
  World w(std::move(opts));
  auto& k = w.bed.kernel();
  if (mode == Mode::kGuarded) {
    kernel::TenantSpec aggressor;
    aggressor.cycle_weight = 1;
    aggressor.overlay_slots = 0;  // loading a program is a privilege
    Guard(w, aggressor);
  } else if (mode == Mode::kOpen) {
    // Tenancy dormant: the aggressor is registered with a permissive
    // envelope (one slot, no quotas, no isolation), the pre-guardrail
    // deployment.
    kernel::TenantSpec permissive;
    permissive.overlay_slots = 1;
    auto at = k.CreateTenant(kernel::kRootUid, kAggressorUid, permissive);
    if (at.ok()) {
      w.tenants.push_back(std::move(*at));
    }
  }

  if (mode != Mode::kSolo) {
    // A maximum-length straight-line program: ~1us of overlay soft
    // processor per packet, paid by EVERY packet crossing the TX chain.
    std::string source;
    for (int i = 0; i < 510; ++i) {
      source += "ldi r1, 7\n";
    }
    source += "ret 1\n";
    auto hog = overlay::Assemble(source);
    if (!hog.ok()) {
      std::fprintf(stderr, "assemble: %s\n", hog.status().ToString().c_str());
      std::exit(1);
    }
    const auto load =
        k.LoadTenantPolicy(kAggressorUid, kernel::Chain::kOutput, *hog);
    if (mode == Mode::kGuarded) {
      // The whole point: the envelope refuses the program.
      if (load.ok() ||
          load.status().code() != StatusCode::kResourceExhausted) {
        std::fprintf(stderr, "overlay quota did not bind\n");
        std::exit(1);
      }
    } else if (!load.ok()) {
      std::fprintf(stderr, "overlay load: %s\n",
                   load.status().ToString().c_str());
      std::exit(1);
    }
  }

  auto victim = Socket::Connect(&k, w.victim_pid, kPeerIp, 443, {});
  if (!victim.ok()) {
    return 0;
  }
  // Lighter victim than arp_flood: request+reply each cross the 10us
  // pipeline, so 50us spacing keeps the solo run well inside capacity.
  workload::PoissonSender load_gen(&w.bed.sim(), &*victim, 256,
                                   50 * kMicrosecond, /*seed=*/0x5eed);
  load_gen.Start(0, kWindow);

  StatusOr<Socket> pump = UnavailableError("no aggressor");
  // The flood goes through the descriptor bypass (like arp_flood): a
  // socket-paced sender is host-path-bound below the pipeline rate and
  // never contends. Every bypass frame crosses the TX chain, so in open
  // mode each one also burns the hog program's soft-processor budget.
  workload::ArpFlooder flood(&w.bed.sim(), nullptr, net::MacAddress(),
                             kPeerIp, 0);
  if (mode != Mode::kSolo) {
    pump = Socket::Connect(&k, w.aggressor_pid, kPeerIp, 9999, {});
    if (!pump.ok()) {
      return 0;
    }
    flood = workload::ArpFlooder(&w.bed.sim(), &*pump,
                                 net::MacAddress::ForHost(66),
                                 net::Ipv4Address::FromOctets(10, 0, 0, 66),
                                 /*interval=*/250);
    flood.Start(0, kWindow);
  }
  return DrainWindow(w, *victim);
}

// ---- driver ----------------------------------------------------------------

using ScenarioFn = uint64_t (*)(Mode);

void RunScenario(const char* name, ScenarioFn fn) {
  const double window_s = static_cast<double>(kWindow) / 1e9;
  const uint64_t solo = fn(Mode::kSolo);
  std::printf("\n== %s: victim solo %llu deliveries in %.0fms\n", name,
              static_cast<unsigned long long>(solo), window_s * 1e3);
  std::printf(
      "{\"bench\":\"noisy_neighbor\",\"scenario\":\"%s\",\"mode\":\"solo\","
      "\"deliveries\":%llu,\"window_s\":%.4f,\"eps\":%.0f}\n",
      name, static_cast<unsigned long long>(solo), window_s,
      static_cast<double>(solo) / window_s);
  for (const Mode mode : {Mode::kOpen, Mode::kGuarded}) {
    const uint64_t got = fn(mode);
    const double retention =
        solo == 0 ? 0.0 : static_cast<double>(got) / static_cast<double>(solo);
    std::printf("   %-8s %llu deliveries (retention %.2f)\n", ModeName(mode),
                static_cast<unsigned long long>(got), retention);
    std::printf(
        "{\"bench\":\"noisy_neighbor\",\"scenario\":\"%s\",\"mode\":\"%s\","
        "\"deliveries\":%llu,\"window_s\":%.4f,\"eps\":%.0f,"
        "\"retention\":%.4f}\n",
        name, ModeName(mode), static_cast<unsigned long long>(got), window_s,
        static_cast<double>(got) / window_s, retention);
  }
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("Noisy neighbor: per-tenant quotas + WFQ cycle shares\n");
  std::printf("  victim fixed workload vs aggressor, 3 attack vectors\n");
  std::printf("=====================================================\n");
  RunScenario("arp_flood", RunArpFlood);
  RunScenario("conntrack_churn", RunConntrackChurn);
  RunScenario("overlay_hog", RunOverlayHog);
  std::printf("\ndone\n");
  return 0;
}
