// Extension experiment — reliable transport over the Norman dataplane.
//
// The paper positions KOPI below transport protocols (it cites the TCP
// offload debate and keeps congestion control in the dataplane's remit).
// This bench runs the library's ARQ channel between two full Norman hosts
// over a degrading link: goodput, retransmission overhead, and delivery
// latency percentiles versus loss rate, plus the effect of the window size.
#include <cstdio>

#include "src/common/stats.h"
#include "src/norman/listener.h"
#include "src/norman/reliable.h"
#include "src/workload/duplex.h"

namespace {

using namespace norman;  // NOLINT

struct TransportResult {
  uint64_t delivered = 0;
  double goodput_mbps = 0;
  double retransmit_overhead = 0;  // retransmissions / original segments
  LatencyHistogram delivery_latency;
};

TransportResult RunTransfer(double loss, uint32_t window,
                            int messages = 400) {
  workload::DuplexOptions opts;
  opts.loss_probability = 0.0;  // connect cleanly first
  opts.fault_seed = 1234;
  workload::DuplexTestBed bed(opts);
  bed.a().kernel->processes().AddUser(1, "a");
  bed.b().kernel->processes().AddUser(2, "b");
  const auto pid_a = *bed.a().kernel->processes().Spawn(1, "client");
  const auto pid_b = *bed.b().kernel->processes().Spawn(2, "server");

  kernel::ConnectOptions copts;
  copts.notify_rx = true;
  auto listener = Listener::Create(bed.b().kernel.get(), pid_b, 4500,
                                   net::IpProto::kUdp, copts);
  if (!listener.ok()) {
    return {};
  }
  auto client =
      Socket::Connect(bed.a().kernel.get(), pid_a, bed.ip_b(), 4500, copts);
  if (!client.ok()) {
    return {};
  }
  (void)client->Send(std::vector<uint8_t>{0xff, 0, 0, 0, 0});
  bed.sim().Run();
  auto server = listener->Accept();
  if (!server.ok()) {
    return {};
  }
  while (server->RecvFrame() != nullptr) {
  }
  bed.set_loss_probability(loss);  // now degrade the link

  ReliableOptions ropts;
  ropts.window = window;
  ReliableChannel tx(&bed.sim(), bed.a().kernel.get(), &*client, ropts);
  ReliableChannel rx(&bed.sim(), bed.b().kernel.get(), &*server);

  TransportResult result;
  // Message payloads carry their send timestamp for latency measurement.
  std::map<uint64_t, Nanos> sent_at;
  uint64_t delivered_bytes = 0;
  Nanos last_delivery = 0;
  rx.SetMessageHandler([&](std::vector<uint8_t> m) {
    ++result.delivered;
    delivered_bytes += m.size();
    last_delivery = bed.sim().Now();
    if (m.size() >= 8) {
      uint64_t id = 0;
      for (int i = 0; i < 8; ++i) {
        id = (id << 8) | m[i];
      }
      const auto it = sent_at.find(id);
      if (it != sent_at.end()) {
        result.delivery_latency.Add(bed.sim().Now() - it->second);
      }
    }
  });
  (void)tx.Start();
  (void)rx.Start();

  for (int i = 0; i < messages; ++i) {
    std::vector<uint8_t> payload(1000, 0xaa);
    const auto id = static_cast<uint64_t>(i);
    for (int b = 0; b < 8; ++b) {
      payload[b] = static_cast<uint8_t>(id >> (56 - 8 * b));
    }
    sent_at[id] = bed.sim().Now();
    (void)tx.Send(std::move(payload));
  }
  bed.sim().RunUntil(30'000 * kMillisecond);

  if (last_delivery > 0) {
    result.goodput_mbps = AchievedBps(delivered_bytes, last_delivery) / 1e6;
  }
  const uint64_t originals =
      tx.stats().segments_transmitted - tx.stats().retransmissions;
  if (originals > 0) {
    result.retransmit_overhead =
        static_cast<double>(tx.stats().retransmissions) /
        static_cast<double>(originals);
  }
  return result;
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("Extension: reliable ARQ transport over two Norman hosts\n");
  std::printf("(400 x 1KB messages, window 32, RTO 200us)\n");
  std::printf("=====================================================\n\n");
  std::printf("%-10s %10s %12s %12s %12s %12s\n", "loss", "delivered",
              "goodput", "retx ovh", "p50 latency", "p99 latency");
  for (const double loss : {0.0, 0.01, 0.05, 0.10, 0.20, 0.30}) {
    const auto r = RunTransfer(loss, 32);
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", loss * 100);
    std::printf("%-10s %10llu %9.1f Mb %11.1f%% %12s %12s\n", label,
                static_cast<unsigned long long>(r.delivered),
                r.goodput_mbps, r.retransmit_overhead * 100,
                FormatNanos(r.delivery_latency.p50()).c_str(),
                FormatNanos(r.delivery_latency.p99()).c_str());
  }

  std::printf("\nwindow sweep at 10%% loss:\n");
  std::printf("%-10s %10s %12s %12s\n", "window", "delivered", "goodput",
              "p99 latency");
  for (const uint32_t window : {1u, 4u, 16u, 64u}) {
    const auto r = RunTransfer(0.10, window);
    std::printf("%-10u %10llu %9.1f Mb %12s\n", window,
                static_cast<unsigned long long>(r.delivered),
                r.goodput_mbps,
                FormatNanos(r.delivery_latency.p99()).c_str());
  }
  std::printf(
      "\nEvery message delivered exactly once and in order at every loss\n"
      "rate; goodput degrades gracefully with loss (retransmission\n"
      "overhead ~ loss/(1-loss)) and grows with window depth, as ARQ\n"
      "theory predicts. Transport logic needs no kernel privilege: it runs\n"
      "entirely in the Norman library over the bypass lane (§4.2).\n");
  return 0;
}
