// E2 — Connection scaling and the DDIO cliff (§5: "Our current
// implementation fails to sustain full (100Gbps) throughput when there are
// more than 1024 concurrent connections ... DDIO can only use a fixed
// fraction of LLC cache space").
//
// N connections send 1024B frames round-robin at saturation. Each
// connection owns a TX + RX ring pair whose hot working set must be
// DDIO-resident for DMA to run at LLC speed; beyond the DDIO share the LRU
// scan thrashes and every DMA pays DRAM cost. We sweep N and report
// sustained throughput and the DDIO hit rate, plus the same sweep with the
// §5 mitigation knobs (larger DDIO share; smaller per-ring working set via
// buffer sharing).
#include <cstdio>

#include "src/common/stats.h"
#include "src/nic/ddio.h"
#include "src/nic/ring.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"

namespace {

using namespace norman;  // NOLINT

struct SweepResult {
  double throughput_gbps;
  double ddio_hit_rate;
};

// Round-robin saturated senders over `conns` connections; each packet DMAs
// through the connection's TX ring and the echoed response through its RX
// ring (bidirectional working set, as in a request/response service).
SweepResult RunSweep(uint64_t conns, const sim::CostModel& cost,
                     uint64_t ring_ws_bytes, int ddio_ways) {
  nic::DdioModel ddio(32 * kMiB, ddio_ways, 16);
  sim::Resource dma("dma");
  sim::Resource wire("wire");
  constexpr size_t kFrame = 1024;
  constexpr uint64_t kPacketsPerConn = 40;
  const uint64_t total = conns * kPacketsPerConn;

  // Warm up every ring once so the steady state, not the cold start, is
  // measured.
  for (uint64_t c = 0; c < conns; ++c) {
    ddio.Access(c * 2, ring_ws_bytes);
    ddio.Access(c * 2 + 1, ring_ws_bytes);
  }
  ddio.ResetStats();

  // Saturation: every packet is offered at t=0 and the FIFO resources
  // serialize — the bottleneck stage sets the sustained rate.
  for (uint64_t i = 0; i < total; ++i) {
    const uint64_t conn = i % conns;
    const bool tx_hit = ddio.Access(conn * 2, ring_ws_bytes);
    Nanos done = dma.Serve(0, cost.DmaCost(kFrame, tx_hit));
    done = wire.Serve(done, cost.WireCost(kFrame));
    // Echoed response DMA into the RX ring.
    const bool rx_hit = ddio.Access(conn * 2 + 1, ring_ws_bytes);
    dma.Serve(done, cost.DmaCost(kFrame, rx_hit));
  }
  const Nanos elapsed = std::max(dma.next_free(), wire.next_free());
  SweepResult r;
  // Count both directions' bytes.
  r.throughput_gbps = AchievedBps(2 * total * kFrame, elapsed) / 1e9;
  r.ddio_hit_rate = ddio.hit_rate();
  return r;
}

void Sweep(const char* title, const sim::CostModel& cost,
           uint64_t ring_ws_bytes, int ddio_ways) {
  std::printf("\n-- %s (ring hot set %lluB, DDIO %d/16 ways = %lluMiB) --\n",
              title, static_cast<unsigned long long>(ring_ws_bytes),
              ddio_ways,
              static_cast<unsigned long long>(32ULL * ddio_ways / 16));
  std::printf("%-14s %18s %14s\n", "connections", "throughput", "DDIO hits");
  for (const uint64_t conns :
       {64u, 128u, 256u, 512u, 768u, 1024u, 1280u, 1536u, 2048u, 4096u,
        8192u}) {
    const auto r = RunSweep(conns, cost, ring_ws_bytes, ddio_ways);
    std::printf("%-14llu %15.2f Gbps %13.1f%%\n",
                static_cast<unsigned long long>(conns), r.throughput_gbps,
                r.ddio_hit_rate * 100);
  }
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("E2: per-connection ring scaling and the DDIO cliff\n");
  std::printf("=====================================================\n");
  const sim::CostModel cost;

  // Paper configuration: 2KiB hot working set per ring, 2 DDIO ways.
  // 1024 connections x 2 rings x 2KiB = 4MiB = exactly the DDIO share.
  Sweep("E2a: paper configuration", cost, nic::kHotWorkingSetBytes, 2);

  // §5 mitigations:
  Sweep("E2b: double the DDIO share (4/16 ways)", cost,
        nic::kHotWorkingSetBytes, 4);
  Sweep("E2c: shared buffers halve the per-ring hot set", cost,
        nic::kHotWorkingSetBytes / 2, 2);

  std::printf(
      "\nPaper claim reproduced: throughput holds near line rate up to\n"
      "~1024 connections, then falls off a cliff as the ring working set\n"
      "outgrows the DDIO share and every DMA pays DRAM cost. Widening the\n"
      "DDIO share or sharing buffers moves the cliff, as §5 hypothesizes.\n");
  return 0;
}
