// Extension experiment — flow completion time under a datacenter mix.
//
// The paper's motivation (§1) is hosts running mixed workloads (web
// servers, big data, ML) on shared NICs; the canonical pain is mice flows
// (RPCs) stuck behind elephants (bulk transfers) — Facebook-style traffic
// [43]. This bench runs a heavy-tailed mix on the full system: Poisson-
// arriving mice (2-8 KB) from one tenant versus continuous elephants from
// another, and reports mice flow-completion-time percentiles under FIFO
// (what raw bypass gives you) and under on-NIC WFQ keyed on the kernel-
// attached owner (what KOPI adds).
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/dataplane/qdisc.h"
#include "src/nic/fifo_scheduler.h"
#include "src/norman/socket.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

namespace {

using namespace norman;  // NOLINT

struct FctResult {
  LatencyHistogram mice_fct;
  uint64_t mice_flows = 0;
  uint64_t elephant_bytes = 0;
};

FctResult RunMix(bool use_wfq, uint64_t seed) {
  workload::TestBedOptions opts;
  opts.nic.cost.link_rate_bps = 10 * kGbps;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "rpc");
  k.processes().AddUser(1002, "bulk");
  const auto pid_mice = *k.processes().Spawn(1001, "frontend");
  const auto pid_elephant = *k.processes().Spawn(1002, "backup");

  if (use_wfq) {
    auto wfq = std::make_unique<dataplane::WfqQdisc>(
        dataplane::ClassifyByUid({{1001, 1}, {1002, 2}}));
    wfq->SetWeight(1, 4.0);
    wfq->SetWeight(2, 1.0);
    (void)k.SetQdisc(kernel::kRootUid, std::move(wfq));
  } else {
    (void)k.SetQdisc(kernel::kRootUid,
                     std::make_unique<nic::FifoScheduler>());
  }

  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);

  // Elephant: saturates its share continuously.
  auto elephant = Socket::Connect(&k, pid_elephant, peer, 9000, {});
  constexpr Nanos kRunFor = 30 * kMillisecond;
  workload::BulkSender bulk(&bed.sim(), &*elephant, 1400,
                            2 * kMicrosecond);
  bulk.Start(0, kRunFor);

  // Mice: Poisson arrivals (mean 100us apart), each flow 2-8 KB sent as a
  // burst of 1KB frames on its own connection.
  FctResult result;
  struct MouseFlow {
    Socket sock;
    Nanos started;
    uint32_t frames_left;
  };
  // Keyed by the flow's local port (visible in egress frames).
  auto flows = std::make_shared<std::map<uint16_t, MouseFlow>>();
  auto rng = std::make_shared<Rng>(seed);

  bed.SetEgressHook([&result, flows, &bed](const net::Packet& p) {
    auto parsed = net::ParseFrame(p.bytes());
    if (!parsed || !parsed->flow() || parsed->flow()->dst_port != 8000) {
      if (parsed && parsed->flow() && parsed->flow()->dst_port == 9000) {
        result.elephant_bytes += p.size();
      }
      return;
    }
    const auto it = flows->find(parsed->flow()->src_port);
    if (it == flows->end()) {
      return;
    }
    if (--it->second.frames_left == 0) {
      result.mice_fct.Add(p.meta().completed_at - it->second.started);
    }
  });
  bed.DiscardEgress();

  std::function<void()> spawn_mouse = [&, flows, rng] {
    if (bed.sim().Now() >= kRunFor) {
      return;
    }
    auto sock = Socket::Connect(&k, pid_mice, peer, 8000, {});
    if (sock.ok()) {
      const uint32_t frames = 2 + static_cast<uint32_t>(rng->NextBounded(7));
      const uint16_t port = sock->tuple().src_port;
      MouseFlow flow{std::move(*sock), bed.sim().Now(), frames};
      const std::vector<uint8_t> payload(958, 0x22);
      for (uint32_t i = 0; i < frames; ++i) {
        (void)flow.sock.Send(payload);
      }
      flows->emplace(port, std::move(flow));
      ++result.mice_flows;
    }
    bed.sim().ScheduleAfter(
        std::max<Nanos>(1, static_cast<Nanos>(rng->NextExponential(
                               100 * kMicrosecond))),
        spawn_mouse);
  };
  bed.sim().ScheduleAfter(0, spawn_mouse);
  bed.sim().RunUntil(kRunFor + 20 * kMillisecond);
  return result;
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("Extension: mice FCT vs elephants (heavy-tailed mix)\n");
  std::printf("(Poisson mice 2-8KB @ ~10k flows/s vs bulk elephant;\n");
  std::printf(" 10G link, full system)\n");
  std::printf("=====================================================\n\n");
  std::printf("%-22s %8s %12s %12s %12s %14s\n", "scheduler", "flows",
              "FCT p50", "FCT p99", "FCT max", "elephant");
  for (const bool wfq : {false, true}) {
    const auto r = RunMix(wfq, /*seed=*/11);
    std::printf("%-22s %8llu %12s %12s %12s %11.2f Gb\n",
                wfq ? "KOPI wfq (owner 4:1)" : "fifo (bypass)",
                static_cast<unsigned long long>(r.mice_flows),
                FormatNanos(r.mice_fct.p50()).c_str(),
                FormatNanos(r.mice_fct.p99()).c_str(),
                FormatNanos(r.mice_fct.max()).c_str(),
                // Bytes accrue through the post-run drain window too.
                AchievedBps(r.elephant_bytes, 50 * kMillisecond) / 1e9);
  }
  std::printf(
      "\nUnder FIFO the elephant's standing queue inflates every mouse's\n"
      "completion time; WFQ by kernel-attached owner isolates the mice\n"
      "(orders of magnitude better tail FCT) while the elephant still\n"
      "consumes the leftover bandwidth.\n");
  return 0;
}
