// Multi-queue dataplane scaling (the sharding tentpole's headline number).
//
// A pure-RX ingest storm: F flows, P frames per flow, all offered to the
// wire in a dense burst. In the 1-queue configuration every frame
// serializes through one lane's pipeline/stages/DMA resources; at Q queues
// RSS spreads the flows across Q lanes whose resources run in parallel
// virtual time, so the same work finishes in ~1/Q the virtual seconds.
// The figure of merit is events per *virtual* second — wall clock cannot
// scale in a single-threaded DES, and pretending otherwise would be
// dishonest. (TX/echo workloads are deliberately excluded: every egress
// frame serializes through the one shared wire, capping any echo-shaped
// scaling curve well below the lane count.)
//
// Each Q-queue measurement is emitted back-to-back with its own 1-queue
// partner run ("pair" field) so the regression gate compares runs from the
// same process on the same machine. JSON lines go to stdout after the
// table; bench/check_bench_regression.py enforces >= 1.8x at 4 queues.
#include <cstdio>

#include "src/net/packet_builder.h"
#include "src/nic/smart_nic.h"
#include "src/sim/simulator.h"

namespace {

using namespace norman;  // NOLINT

constexpr auto kLocalIp = net::Ipv4Address::FromOctets(10, 0, 0, 1);
constexpr auto kRemoteIp = net::Ipv4Address::FromOctets(10, 0, 0, 2);
constexpr size_t kFlows = 64;
constexpr size_t kFramesPerFlow = 192;
constexpr size_t kPayload = 256;

struct RunResult {
  uint64_t events = 0;
  uint64_t delivered = 0;
  Nanos virtual_ns = 0;
  double events_per_virtual_s = 0;
};

RunResult RunStorm(uint16_t queues) {
  sim::Simulator sim;
  nic::SmartNic::Options options;
  // Deep rings so the measurement is service time, not admission drops:
  // per-connection RX rings hold a whole flow's burst, and one lane must
  // be able to absorb every frame when queues=1.
  options.ring_entries = 256;
  options.lane_ring_entries = 16384;
  nic::SmartNic nic(&sim, options);
  auto cp = nic.TakeControlPlane();
  if (!cp->EnableSharding(queues).ok()) {
    std::fprintf(stderr, "EnableSharding(%u) failed\n", queues);
    return {};
  }

  for (size_t i = 0; i < kFlows; ++i) {
    nic::FlowEntry e;
    e.conn_id = static_cast<net::ConnectionId>(i + 1);
    e.tuple = net::FiveTuple{kLocalIp, kRemoteIp,
                             static_cast<uint16_t>(9000 + i),
                             static_cast<uint16_t>(4000 + i),
                             net::IpProto::kUdp};
    e.owner = overlay::ConnMetadata{e.conn_id, 1000, 100, 1};
    e.comm = "storm";
    e.tx_ring_bytes = nic::kHotWorkingSetBytes;
    e.rx_ring_bytes = nic::kHotWorkingSetBytes;
    if (!cp->InstallFlow(e).ok()) {
      std::fprintf(stderr, "InstallFlow %zu failed\n", i);
      return {};
    }
  }

  // The whole storm lands nanoseconds apart: offered load far beyond one
  // lane's service rate, so elapsed virtual time measures the dataplane's
  // capacity, not the generator's pacing.
  const std::vector<uint8_t> payload(kPayload, 0xad);
  const net::FrameEndpoints ep{net::MacAddress::ForHost(2),
                               net::MacAddress::ForHost(1), kRemoteIp,
                               kLocalIp};
  Nanos when = 0;
  for (size_t f = 0; f < kFramesPerFlow; ++f) {
    for (size_t i = 0; i < kFlows; ++i) {
      nic.DeliverFromWire(
          net::BuildUdpPacket(ep, static_cast<uint16_t>(4000 + i),
                              static_cast<uint16_t>(9000 + i), payload),
          when);
      ++when;
    }
  }
  sim.Run();

  RunResult r;
  r.events = sim.events_processed();
  r.virtual_ns = sim.Now();
  // Drain the per-connection rings to count what actually got through.
  for (size_t i = 0; i < kFlows; ++i) {
    auto* rings = cp->GetRings(static_cast<net::ConnectionId>(i + 1));
    if (rings == nullptr) continue;
    while (rings->PopRx().has_value()) ++r.delivered;
  }
  r.events_per_virtual_s =
      r.virtual_ns > 0
          ? static_cast<double>(r.events) * 1e9 /
                static_cast<double>(r.virtual_ns)
          : 0;
  return r;
}

void EmitJson(uint16_t queues, uint16_t pair, const RunResult& r) {
  std::printf(
      "{\"bench\":\"multicore_scaling\",\"queues\":%u,\"pair\":%u,"
      "\"flows\":%zu,\"frames\":%zu,\"delivered\":%llu,\"events\":%llu,"
      "\"virtual_s\":%.6f,\"events_per_s\":%.0f}\n",
      queues, pair, kFlows, kFlows * kFramesPerFlow,
      static_cast<unsigned long long>(r.delivered),
      static_cast<unsigned long long>(r.events),
      static_cast<double>(r.virtual_ns) / 1e9, r.events_per_virtual_s);
}

}  // namespace

int main() {
  std::printf("== multicore dataplane scaling: %zu flows x %zu frames, "
              "pure RX ingest ==\n\n",
              kFlows, kFramesPerFlow);
  std::printf("%-8s %12s %12s %14s %18s %9s\n", "queues", "delivered",
              "events", "virtual-us", "events/virtual-s", "scaling");

  for (const uint16_t q : {2u, 4u, 8u}) {
    // Paired runs: the 1-queue partner immediately precedes its multi-queue
    // measurement so the gate's ratio is insensitive to anything global.
    const RunResult base = RunStorm(1);
    const RunResult multi = RunStorm(q);
    const double scaling =
        base.events_per_virtual_s > 0
            ? multi.events_per_virtual_s / base.events_per_virtual_s
            : 0;
    std::printf("%-8u %12llu %12llu %14.1f %18.0f %8s\n", 1u,
                static_cast<unsigned long long>(base.delivered),
                static_cast<unsigned long long>(base.events),
                static_cast<double>(base.virtual_ns) / 1e3,
                base.events_per_virtual_s, "1.00x");
    std::printf("%-8u %12llu %12llu %14.1f %18.0f %7.2fx\n", q,
                static_cast<unsigned long long>(multi.delivered),
                static_cast<unsigned long long>(multi.events),
                static_cast<double>(multi.virtual_ns) / 1e3,
                multi.events_per_virtual_s, scaling);
  }
  std::printf("\n");

  // JSON lines for the regression gate, pair-tagged.
  for (const uint16_t q : {2u, 4u, 8u}) {
    const RunResult base = RunStorm(1);
    const RunResult multi = RunStorm(q);
    EmitJson(1, q, base);
    EmitJson(q, q, multi);
  }
  return 0;
}
