#!/usr/bin/env python3
"""Gate on the forwarding-loop wall clock.

Compares a fresh bench_micro JSON report (the '{...}' lines the binary
prints after the google-benchmark table) against the checked-in baseline:

  1. wall-clock regression: the tracing-off, monitor-off forwarding loop
     must stay within REGRESSION_TOLERANCE (default 15%) of the baseline,
     comparing medians across however many lines each side has.
  2. monitoring overhead: bench_micro emits alternating monitor-off /
     monitor-on runs; each on-run is divided by the off-run that ran
     back-to-back with it (pairing cancels machine drift) and the median
     pairwise ratio must stay within MONITOR_TOLERANCE (default 5%).
     This check uses cpu_s, not wall_s: scheduler preemption on shared
     runners inflates wall clocks by far more than 5%, while process CPU
     time isolates the work the monitoring stack actually adds.
  3. fast-path speedup: bench_micro emits alternating cache-off / cache-on
     runs under a 12-rule firewall; the median pairwise wall-clock speedup
     (off / on) must be at least FASTPATH_MIN_SPEEDUP (default 1.3x) —
     the flow verdict cache has to actually pay for itself.
  4. dispatch-batch sweep: bench_micro emits alternating batch=1 /
     batch=N runs (N in {8, 32, 64}); the median pairwise cpu_s speedup
     (batch=1 / batch=N) must stay at or above BATCH_MIN_SPEEDUP
     (default 0.90) — batched dispatch may never cost more than 10% over
     per-event stepping. Rows carry a "batch" field; rows with batch != 64
     (the default) are excluded from checks 1-2 so the sweep does not
     pollute those pools.
  5. profiler overhead: bench_micro emits alternating profiler-off /
     profiler-on runs; each on-run is divided by the off-run that ran
     back-to-back with it and the median pairwise cpu_s ratio must stay
     within PROFILER_TOLERANCE (default 5%) — full cycle attribution has
     to stay cheap enough to leave on. Rows carry a "profiler" field;
     profiler-on rows are excluded from checks 1-4.
  6. tracepoint overhead: bench_micro emits alternating probes-disarmed /
     probes-armed runs (every probe armed, no predicates); each armed run
     is divided by the disarmed run that ran back-to-back with it and the
     median pairwise cpu_s ratio must stay within PROBES_TOLERANCE
     (default 5%) — always-on tracing only earns its keep if arming the
     full probe set is nearly free. Rows carry a "probes" field;
     probes-armed rows are excluded from checks 1-5.

  7. multicore scaling: bench_multicore emits "multicore_scaling" rows in
     1-queue / N-queue pairs (matched by the "pair" field, the 1-queue
     partner running back-to-back in the same process); the 4-queue
     events-per-virtual-second ratio over its paired 1-queue run must be
     at least MULTICORE_MIN_SCALING (default 1.8x) — sharding the
     dataplane across lanes has to actually buy parallel virtual time.
     These rows live in a separate report file (bench_multicore's stdout);
     pass it as the report when gating that binary.

  8. tenant isolation: bench_noisy_neighbor emits "noisy_neighbor" rows,
     one per {scenario} x {solo, open, guarded} cell; for every scenario
     (arp_flood, conntrack_churn, overlay_hog) the guarded run's
     "retention" (victim deliveries over its solo reference) must be at
     least NOISY_MIN_RETENTION (default 0.9) — quotas plus WFQ cycle
     shares have to actually rescue the victim from each aggressor. A
     missing scenario or a missing guarded row is itself a failure, so
     the matrix cannot silently shrink. These rows live in a separate
     report file (bench_noisy_neighbor's stdout); pass it as the report
     when gating that binary.

Override: set ALLOW_BENCH_REGRESSION=1 to turn failures into warnings —
for landing a change that knowingly trades speed for capability. Record
the new baseline in the same commit:

    ./build/bench/bench_micro --benchmark_filter=NONE | grep '^{' \
        > bench/BENCH_baseline.json

Usage: check_bench_regression.py <report.json-lines> [baseline.json-lines]
"""

import json
import os
import statistics
import sys

REGRESSION_TOLERANCE = 0.15  # vs checked-in baseline
MONITOR_TOLERANCE = 0.05     # monitor-on vs paired monitor-off run
FASTPATH_MIN_SPEEDUP = 1.3   # cache-off / cache-on paired wall clocks
BATCH_MIN_SPEEDUP = 0.90     # batch=1 / batch=N paired cpu clocks
PROFILER_TOLERANCE = 0.05    # profiler-on vs paired profiler-off run
PROBES_TOLERANCE = 0.05      # probes-armed vs paired probes-disarmed run
MULTICORE_MIN_SCALING = 1.8  # 4-queue vs paired 1-queue virtual throughput
NOISY_MIN_RETENTION = 0.9    # guarded victim vs its solo reference
NOISY_SCENARIOS = ("arp_flood", "conntrack_churn", "overlay_hog")
DEFAULT_BATCH = 64           # rows without a "batch" field predate the sweep


def load_lines(path):
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line.startswith("{"):
                rows.append(json.loads(line))
    return rows


def times(rows, trace_sample, monitor, field="wall_s", fastpath=0,
          filter_rules=0, batch=DEFAULT_BATCH):
    return [
        r[field]
        for r in rows
        if r.get("bench") == "forwarding_loop"
        and r.get("trace_sample") == trace_sample
        and r.get("monitor", 0) == monitor
        and r.get("fastpath", 0) == fastpath
        and r.get("filter_rules", 0) == filter_rules
        and r.get("batch", DEFAULT_BATCH) == batch
        and r.get("profiler", 0) == 0
        and r.get("probes", 0) == 0
        and field in r
    ]


def batch_pairs(rows):
    """(batch=1 cpu_s, batch=N cpu_s) pairs in report order.

    The sweep emits each batch=1 run immediately before its batched
    partner, so adjacency in the plain-config row stream recovers the
    pairing regardless of how many other plain rows precede the sweep.
    """
    plain = [
        r
        for r in rows
        if r.get("bench") == "forwarding_loop"
        and r.get("trace_sample") == 0
        and r.get("monitor", 0) == 0
        and r.get("fastpath", 0) == 0
        and r.get("filter_rules", 0) == 0
        and r.get("profiler", 0) == 0
        and r.get("probes", 0) == 0
        and "cpu_s" in r
    ]
    return [
        (a["cpu_s"], b["cpu_s"])
        for a, b in zip(plain, plain[1:])
        if a.get("batch", DEFAULT_BATCH) == 1
        and b.get("batch", DEFAULT_BATCH) != 1
    ]


def profiler_pairs(rows):
    """(profiler-off cpu_s, profiler-on cpu_s) pairs in report order.

    The profiler sweep emits each off-run immediately before its on-run
    at the default config, so adjacency in that row stream recovers the
    pairing the same way batch_pairs does.
    """
    plain = [
        r
        for r in rows
        if r.get("bench") == "forwarding_loop"
        and r.get("trace_sample") == 0
        and r.get("monitor", 0) == 0
        and r.get("fastpath", 0) == 0
        and r.get("filter_rules", 0) == 0
        and r.get("batch", DEFAULT_BATCH) == DEFAULT_BATCH
        and r.get("probes", 0) == 0
        and "cpu_s" in r
    ]
    return [
        (a["cpu_s"], b["cpu_s"])
        for a, b in zip(plain, plain[1:])
        if a.get("profiler", 0) == 0 and b.get("profiler", 0) == 1
    ]


def probes_pairs(rows):
    """(probes-disarmed cpu_s, probes-armed cpu_s) pairs in report order.

    The tracepoint sweep emits each disarmed run immediately before its
    armed partner at the default config, so adjacency in that row stream
    recovers the pairing the same way profiler_pairs does.
    """
    plain = [
        r
        for r in rows
        if r.get("bench") == "forwarding_loop"
        and r.get("trace_sample") == 0
        and r.get("monitor", 0) == 0
        and r.get("fastpath", 0) == 0
        and r.get("filter_rules", 0) == 0
        and r.get("batch", DEFAULT_BATCH) == DEFAULT_BATCH
        and r.get("profiler", 0) == 0
        and "cpu_s" in r
    ]
    return [
        (a["cpu_s"], b["cpu_s"])
        for a, b in zip(plain, plain[1:])
        if a.get("probes", 0) == 0 and b.get("probes", 0) == 1
    ]


def fastpath_rows(rows, fastpath):
    return [
        r["wall_s"]
        for r in rows
        if r.get("bench") == "forwarding_loop"
        and r.get("fastpath", 0) == fastpath
        and r.get("filter_rules", 0) > 0
        and r.get("probes", 0) == 0
        and "wall_s" in r
    ]


def multicore_scaling(rows, queues):
    """events_per_s ratios of each `queues`-lane run over its 1-queue pair."""
    by_pair = {}
    for r in rows:
        if r.get("bench") != "multicore_scaling" or "events_per_s" not in r:
            continue
        by_pair.setdefault(r.get("pair"), {})[r.get("queues")] = (
            r["events_per_s"])
    return [
        p[queues] / p[1]
        for p in by_pair.values()
        if queues in p and 1 in p and p[1] > 0
    ]


def check_multicore(report, failures):
    ratios = multicore_scaling(report, 4)
    if not ratios:
        failures.append("missing multicore_scaling 1q/4q row pairs")
        return
    scaling = statistics.median(ratios)
    print("multicore 4-queue scaling per pair: "
          + ", ".join(f"{s_:.2f}x" for s_ in ratios)
          + f"; median {scaling:.2f}x")
    for q in (2, 8):
        extra = multicore_scaling(report, q)
        if extra:
            print(f"multicore {q}-queue scaling: median "
                  f"{statistics.median(extra):.2f}x")
    if scaling < MULTICORE_MIN_SCALING:
        failures.append(
            f"multicore 4-queue scaling {scaling:.2f}x "
            f"(< {MULTICORE_MIN_SCALING:.1f}x floor)")


def check_noisy_neighbor(report, failures):
    cells = {}
    for r in report:
        if r.get("bench") != "noisy_neighbor":
            continue
        cells[(r.get("scenario"), r.get("mode"))] = r
    for scenario in NOISY_SCENARIOS:
        guarded = cells.get((scenario, "guarded"))
        if guarded is None or "retention" not in guarded:
            failures.append(f"missing noisy_neighbor guarded row for "
                            f"{scenario}")
            continue
        retention = guarded["retention"]
        open_row = cells.get((scenario, "open"), {})
        open_note = (f" (open mode: {open_row['retention']:.2f})"
                     if "retention" in open_row else "")
        print(f"noisy_neighbor {scenario}: guarded retention "
              f"{retention:.2f}{open_note}")
        if retention < NOISY_MIN_RETENTION:
            failures.append(
                f"noisy_neighbor {scenario} guarded retention "
                f"{retention:.2f} (< {NOISY_MIN_RETENTION:.1f} floor)")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    report = load_lines(sys.argv[1])

    # A bench_multicore or bench_noisy_neighbor report gates only its own
    # floor: the forwarding-loop pools don't exist in those files and vice
    # versa.
    if any(r.get("bench") in ("multicore_scaling", "noisy_neighbor")
           for r in report):
        allow = os.environ.get("ALLOW_BENCH_REGRESSION") == "1"
        failures = []
        if any(r.get("bench") == "multicore_scaling" for r in report):
            check_multicore(report, failures)
        else:
            check_noisy_neighbor(report, failures)
        if failures:
            for f in failures:
                print(f"{'WARNING' if allow else 'FAIL'}: {f}")
            if allow:
                print("ALLOW_BENCH_REGRESSION=1 set; not failing the build")
                return 0
            return 1
        print("bench gate: OK")
        return 0
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(__file__), "BENCH_baseline.json")
    )
    baseline = load_lines(baseline_path)
    allow = os.environ.get("ALLOW_BENCH_REGRESSION") == "1"
    failures = []

    base = times(baseline, 0, 0)
    now = times(report, 0, 0)
    if not base or not now:
        failures.append("missing forwarding_loop trace=0 monitor=0 lines")
    else:
        ratio = statistics.median(now) / statistics.median(base)
        print(f"wall-clock: median {statistics.median(now):.4f}s vs baseline "
              f"{statistics.median(base):.4f}s ({(ratio - 1) * 100:+.1f}%)")
        if ratio > 1 + REGRESSION_TOLERANCE:
            failures.append(
                f"forwarding loop regressed {(ratio - 1) * 100:.1f}% "
                f"(> {REGRESSION_TOLERANCE * 100:.0f}% tolerance)")

    off = times(report, 0, 0, "cpu_s")
    on = times(report, 0, 1, "cpu_s")
    if not off or not on:
        failures.append("missing monitor-on/off forwarding_loop lines")
    else:
        pairs = list(zip(off, on))  # report order: off[i] ran just before on[i]
        ratios = [o / f for f, o in pairs]
        ratio = statistics.median(ratios)
        print("monitoring overhead per pair: "
              + ", ".join(f"{(r - 1) * 100:+.1f}%" for r in ratios)
              + f"; median {(ratio - 1) * 100:+.1f}%")
        if ratio > 1 + MONITOR_TOLERANCE:
            failures.append(
                f"continuous monitoring costs {(ratio - 1) * 100:.1f}% "
                f"(> {MONITOR_TOLERANCE * 100:.0f}% tolerance)")

    fp_off = fastpath_rows(report, 0)
    fp_on = fastpath_rows(report, 1)
    if not fp_off or not fp_on:
        failures.append("missing fast-path on/off forwarding_loop lines")
    else:
        pairs = list(zip(fp_off, fp_on))  # off[i] ran just before on[i]
        speedups = [off / on for off, on in pairs]
        speedup = statistics.median(speedups)
        print("fast-path speedup per pair: "
              + ", ".join(f"{s_:.2f}x" for s_ in speedups)
              + f"; median {speedup:.2f}x")
        if speedup < FASTPATH_MIN_SPEEDUP:
            failures.append(
                f"flow cache speedup {speedup:.2f}x "
                f"(< {FASTPATH_MIN_SPEEDUP:.1f}x floor)")

    bp = batch_pairs(report)
    if not bp:
        failures.append("missing dispatch-batch sweep forwarding_loop lines")
    else:
        speedups = [one / batched for one, batched in bp]
        speedup = statistics.median(speedups)
        print("dispatch-batch speedup per pair: "
              + ", ".join(f"{s_:.2f}x" for s_ in speedups)
              + f"; median {speedup:.2f}x")
        if speedup < BATCH_MIN_SPEEDUP:
            failures.append(
                f"batched dispatch speedup {speedup:.2f}x "
                f"(< {BATCH_MIN_SPEEDUP:.2f}x floor)")

    pp = profiler_pairs(report)
    if not pp:
        failures.append("missing profiler on/off forwarding_loop lines")
    else:
        ratios = [on_ / off_ for off_, on_ in pp]
        ratio = statistics.median(ratios)
        print("profiler overhead per pair: "
              + ", ".join(f"{(r - 1) * 100:+.1f}%" for r in ratios)
              + f"; median {(ratio - 1) * 100:+.1f}%")
        if ratio > 1 + PROFILER_TOLERANCE:
            failures.append(
                f"cycle attribution costs {(ratio - 1) * 100:.1f}% "
                f"(> {PROFILER_TOLERANCE * 100:.0f}% tolerance)")

    tp = probes_pairs(report)
    if not tp:
        failures.append("missing probes armed/disarmed forwarding_loop lines")
    else:
        ratios = [on_ / off_ for off_, on_ in tp]
        ratio = statistics.median(ratios)
        print("tracepoint overhead per pair: "
              + ", ".join(f"{(r - 1) * 100:+.1f}%" for r in ratios)
              + f"; median {(ratio - 1) * 100:+.1f}%")
        if ratio > 1 + PROBES_TOLERANCE:
            failures.append(
                f"armed tracepoints cost {(ratio - 1) * 100:.1f}% "
                f"(> {PROBES_TOLERANCE * 100:.0f}% tolerance)")

    if failures:
        for f in failures:
            print(f"{'WARNING' if allow else 'FAIL'}: {f}")
        if allow:
            print("ALLOW_BENCH_REGRESSION=1 set; not failing the build")
            return 0
        return 1
    print("bench gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
