// Microbenchmarks (google-benchmark): per-component costs of the Norman
// dataplane — overlay interpretation, filter-chain evaluation by rule
// count, frame parsing, checksums, WFQ operations, DDIO model, RSS.
//
// These are *simulator implementation* speeds (host ns/op), reported so
// regressions in the hot paths are visible; virtual-time results live in
// the bench_* experiment binaries.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <new>

#include "src/dataplane/filter_engine.h"
#include "src/dataplane/qdisc.h"
#include "src/net/checksum.h"
#include "src/net/packet_builder.h"
#include "src/net/parsed_packet.h"
#include "src/common/metrics.h"
#include "src/nic/ddio.h"
#include "src/nic/flow_cache.h"
#include "src/nic/rss.h"
#include "src/nic/sram.h"
#include "src/norman/socket.h"
#include "src/overlay/interpreter.h"
#include "src/sim/simulator.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

// Process-wide heap-allocation counter, used to report allocs/packet for
// the end-to-end forwarding loop (the number the pooled hot path drives to
// ~0). Counting covers every operator-new path the simulator can take.
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace norman;  // NOLINT

struct Fixture {
  std::vector<uint8_t> frame;
  net::ParsedPacket parsed;
  overlay::PacketContext ctx;

  Fixture() {
    net::FrameEndpoints ep{net::MacAddress::ForHost(1),
                           net::MacAddress::ForHost(2),
                           net::Ipv4Address::FromOctets(10, 0, 0, 1),
                           net::Ipv4Address::FromOctets(10, 0, 0, 2)};
    frame = net::BuildUdpFrame(ep, 5432, 443,
                               std::vector<uint8_t>(1000, 0xaa));
    parsed = *net::ParseFrame(frame);
    ctx.frame = frame;
    ctx.parsed = &parsed;
    ctx.conn = overlay::ConnMetadata{1, 1001, 100, 1, 7};
    ctx.direction = net::Direction::kTx;
  }
};

void BM_ParseFrame(benchmark::State& state) {
  const Fixture f;
  for (auto _ : state) {
    auto p = net::ParseFrame(f.frame);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ParseFrame);

void BM_InternetChecksum1500(benchmark::State& state) {
  const std::vector<uint8_t> buf(1500, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::InternetChecksum(buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1500);
}
BENCHMARK(BM_InternetChecksum1500);

void BM_OverlayExecute(benchmark::State& state) {
  const Fixture f;
  // A representative 12-instruction match program.
  const overlay::Program prog = dataplane::CompileFilterChain(
      {[] {
        dataplane::FilterRule r;
        r.proto = net::IpProto::kUdp;
        r.dst_port = dataplane::PortRange{443, 443};
        r.owner_uid = 1001;
        r.action = dataplane::FilterAction::kDrop;
        return r;
      }()},
      dataplane::FilterAction::kAccept);
  for (auto _ : state) {
    auto r = overlay::Execute(prog, f.ctx);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OverlayExecute);

void BM_FilterChain(benchmark::State& state) {
  const Fixture fx;
  dataplane::FilterEngine engine;
  for (int i = 0; i < state.range(0); ++i) {
    dataplane::FilterRule r;
    r.proto = net::IpProto::kTcp;  // never matches the UDP test packet
    r.dst_port = dataplane::PortRange{static_cast<uint16_t>(i + 1),
                                      static_cast<uint16_t>(i + 1)};
    r.action = dataplane::FilterAction::kDrop;
    (void)engine.AppendRule(r);
  }
  net::Packet packet(fx.frame);
  for (auto _ : state) {
    auto v = engine.Process(packet, fx.ctx);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_FilterChain)->Arg(1)->Arg(8)->Arg(32)->Arg(60);

// The flow verdict cache's exact-match lookup — the operation that replaces
// a full chain walk on the fast path. Steady-state: one resident entry hit
// repeatedly (the megaflow common case).
void BM_FlowCacheHit(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  nic::SramAllocator sram(64 * kKiB);
  nic::FlowCache cache(&sram, &reg);
  cache.Enable(1024);
  nic::FlowCacheKey key;
  key.direction = net::Direction::kTx;
  key.tuple = net::FiveTuple{net::Ipv4Address::FromOctets(10, 0, 0, 1),
                             net::Ipv4Address::FromOctets(10, 0, 0, 2), 5432,
                             443, net::IpProto::kUdp};
  key.conn = 7;
  cache.Insert(key, nic::FlowCacheEntry{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(key));
  }
}
BENCHMARK(BM_FlowCacheHit);

// Miss cost: the lookup that fails before the chain walk runs anyway. The
// probed key cycles through ports so the table (primed at capacity) never
// contains it.
void BM_FlowCacheMiss(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  nic::SramAllocator sram(64 * kKiB);
  nic::FlowCache cache(&sram, &reg);
  cache.Enable(256);
  nic::FlowCacheKey key;
  key.direction = net::Direction::kTx;
  key.tuple = net::FiveTuple{net::Ipv4Address::FromOctets(10, 0, 0, 1),
                             net::Ipv4Address::FromOctets(10, 0, 0, 2), 1,
                             443, net::IpProto::kUdp};
  key.conn = 7;
  for (uint16_t p = 0; p < 256; ++p) {
    key.tuple.src_port = p;
    cache.Insert(key, nic::FlowCacheEntry{});
  }
  uint16_t probe = 1000;
  for (auto _ : state) {
    key.tuple.src_port = ++probe == 0 ? probe = 1000 : probe;
    benchmark::DoNotOptimize(cache.Lookup(key));
  }
}
BENCHMARK(BM_FlowCacheMiss);

void BM_WfqEnqueueDequeue(benchmark::State& state) {
  const Fixture fx;
  dataplane::WfqQdisc wfq(dataplane::ClassifyByUid({{1001, 1}, {1002, 2}}));
  wfq.SetWeight(1, 4.0);
  wfq.SetWeight(2, 1.0);
  for (auto _ : state) {
    wfq.Enqueue(net::MakePacket(fx.frame), fx.ctx);
    auto p = wfq.Dequeue(0);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_WfqEnqueueDequeue);

void BM_DdioAccess(benchmark::State& state) {
  nic::DdioModel ddio;
  const uint64_t rings = static_cast<uint64_t>(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddio.Access(i++ % rings, 2048));
  }
}
BENCHMARK(BM_DdioAccess)->Arg(256)->Arg(4096);

void BM_RssSteer(benchmark::State& state) {
  nic::RssEngine rss(16);
  net::FiveTuple t{net::Ipv4Address::FromOctets(1, 2, 3, 4),
                   net::Ipv4Address::FromOctets(5, 6, 7, 8), 1000, 2000,
                   net::IpProto::kUdp};
  for (auto _ : state) {
    t.src_port++;
    benchmark::DoNotOptimize(rss.Steer(t));
  }
}
BENCHMARK(BM_RssSteer);

void BM_BuildUdpPacketPooled(benchmark::State& state) {
  net::FrameEndpoints ep{net::MacAddress::ForHost(1),
                         net::MacAddress::ForHost(2),
                         net::Ipv4Address::FromOctets(10, 0, 0, 1),
                         net::Ipv4Address::FromOctets(10, 0, 0, 2)};
  const std::vector<uint8_t> payload(1000, 0xab);
  for (auto _ : state) {
    auto p = net::BuildUdpPacket(ep, 1, 2, payload);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_BuildUdpPacketPooled);

void BM_SimulatorEventChurn(benchmark::State& state) {
  // Schedule/dispatch throughput of the pooled event loop: a self-renewing
  // chain, all nodes recycled through the free list after warmup.
  sim::Simulator sim;
  uint64_t fired = 0;
  for (auto _ : state) {
    sim.ScheduleAfter(1, [&fired] { ++fired; });
    sim.Step();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_BuildUdpFrame(benchmark::State& state) {
  net::FrameEndpoints ep{net::MacAddress::ForHost(1),
                         net::MacAddress::ForHost(2),
                         net::Ipv4Address::FromOctets(10, 0, 0, 1),
                         net::Ipv4Address::FromOctets(10, 0, 0, 2)};
  const std::vector<uint8_t> payload(1000, 0xab);
  for (auto _ : state) {
    auto f = net::BuildUdpFrame(ep, 1, 2, payload);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_BuildUdpFrame);

// End-to-end packet-forwarding loop (the tentpole acceptance metric): one
// host with two CBR senders against an echoing peer, identical to the
// pre-pooling baseline workload. Prints one machine-readable JSON line.
// `trace_sample` sets the lifecycle tracer's 1-in-N sampling (0 = off), so
// the report quantifies tracing overhead at off / 1-in-64 / 1-in-1.
// `monitor` turns on the continuous-monitoring stack (top-talkers table,
// maintenance tick driving the sampler + watchdog) so its overhead is
// quantified against the monitor-off line.
// `fastpath` enables the flow verdict cache; `filter_rules` installs that
// many never-matching UDP filter rules on each chain so the per-packet
// chain walk the cache elides is a realistic firewall's, not an empty one.
// The regression gate compares each fastpath-on line against the
// fastpath-off line that ran back-to-back with it (same rule count).
// `dispatch_batch` sets the simulator's event dispatch batch (1 reproduces
// the historical per-event loop); the batch sweep in main() emits
// interleaved batch-off/batch-on pairs the gate can compare.
// `profiler` turns on full cycle attribution (scopes + owner ledger); the
// profiler sweep in main() emits interleaved off/on pairs the gate holds
// to PROFILER_TOLERANCE on paired cpu_s.
// `probes` arms every kernel tracepoint (unfiltered); the probes sweep in
// main() emits interleaved off/on pairs the gate holds to PROBES_TOLERANCE
// on paired cpu_s — the "disarmed probes are one branch, armed probes are
// cheap" claim, measured.
void RunForwardingReport(uint32_t trace_sample, bool monitor,
                         bool fastpath = false, int filter_rules = 0,
                         uint32_t dispatch_batch =
                             sim::Simulator::kDefaultDispatchBatch,
                         bool profiler = false, bool probes = false) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  bed.sim().set_dispatch_batch(dispatch_batch);
  bed.sim().tracer().set_sample_interval(trace_sample);
  if (profiler) {
    bed.sim().profiler().set_enabled(true);
  }
  if (probes) {
    bed.sim().tracepoints().ArmAll();
  }
  bed.DiscardEgress();
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  if (monitor) {
    k.nic_control().EnableTopTalkers(64);
    k.StartMaintenance();
  }
  for (int i = 0; i < filter_rules; ++i) {
    // UDP rules on ports the workload never touches: every packet scans the
    // whole chain (protocol bucketing cannot skip same-proto rules) and
    // falls through to the default accept.
    dataplane::FilterRule r;
    r.proto = net::IpProto::kUdp;
    r.dst_port = dataplane::PortRange{static_cast<uint16_t>(5001 + i),
                                      static_cast<uint16_t>(5001 + i)};
    r.action = dataplane::FilterAction::kDrop;
    (void)k.AppendFilterRule(kernel::kRootUid, kernel::Chain::kOutput, r);
    (void)k.AppendFilterRule(kernel::kRootUid, kernel::Chain::kInput, r);
  }
  if (fastpath) {
    k.nic_control().EnableFlowCache(1024);
  }
  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto s1 = Socket::Connect(&k, pid, peer, 1000, {});
  auto s2 = Socket::Connect(&k, pid, peer, 2000, {});
  workload::CbrSender c1(&bed.sim(), &*s1, 512, 2 * kMicrosecond);
  workload::CbrSender c2(&bed.sim(), &*s2, 200, 3 * kMicrosecond);
  c1.Start(0, 200 * kMillisecond);
  c2.Start(0, 200 * kMillisecond);

  const uint64_t allocs_before = g_alloc_count.load(std::memory_order_relaxed);
  const std::clock_t cpu0 = std::clock();
  const auto t0 = std::chrono::steady_clock::now();
  bed.sim().Run();
  const auto t1 = std::chrono::steady_clock::now();
  const std::clock_t cpu1 = std::clock();
  const uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) -
                          allocs_before;

  const double wall_s = std::chrono::duration<double>(t1 - t0).count();
  // CPU seconds alongside wall seconds: the regression gate compares the
  // monitor-on/off pairs on cpu_s, which scheduler preemption on shared CI
  // runners cannot inflate.
  const double cpu_s = static_cast<double>(cpu1 - cpu0) / CLOCKS_PER_SEC;
  const uint64_t events = bed.sim().events_processed();
  const uint64_t packets = bed.nic().stats().tx_seen() + bed.nic().stats().rx_seen();
  const auto& ppool = net::PacketPool::Default().counters();
  const auto& epool = bed.sim().event_pool();
  // Combined pool view through the real aggregation API, not hand-summing.
  PoolCounters all{"all"};
  all.Merge(ppool);
  all.Merge(epool);
  bed.sim().metrics().ImportPool(all);  // lands as "pool.all.*" gauges
  std::printf(
      "{\"bench\":\"forwarding_loop\",\"trace_sample\":%u,\"monitor\":%d,"
      "\"fastpath\":%d,\"filter_rules\":%d,"
      "\"batch\":%u,\"stats_level\":%d,\"profiler\":%d,\"probes\":%d,"
      "\"fastpath_hits\":%llu,\"fastpath_misses\":%llu,"
      "\"wall_s\":%.6f,\"cpu_s\":%.6f,"
      "\"events\":%llu,\"events_per_s\":%.0f,"
      "\"packets\":%llu,\"allocs\":%llu,\"allocs_per_packet\":%.4f,"
      "\"packet_pool_hit_rate\":%.4f,\"event_pool_hit_rate\":%.4f,"
      "\"pool_hit_rate_all\":%.4f,\"trace_spans\":%llu,"
      "\"samples\":%llu,\"maintenance_ticks\":%llu}\n",
      trace_sample, monitor ? 1 : 0, fastpath ? 1 : 0, filter_rules,
      dispatch_batch, telemetry::kStatsLevel, profiler ? 1 : 0,
      probes ? 1 : 0,
      static_cast<unsigned long long>(
          k.nic_control().flow_cache().hits()),
      static_cast<unsigned long long>(
          k.nic_control().flow_cache().misses()),
      wall_s, cpu_s,
      static_cast<unsigned long long>(events),
      static_cast<double>(events) / wall_s,
      static_cast<unsigned long long>(packets),
      static_cast<unsigned long long>(allocs),
      packets != 0 ? static_cast<double>(allocs) / static_cast<double>(packets)
                   : 0.0,
      ppool.HitRate(), epool.HitRate(), all.HitRate(),
      static_cast<unsigned long long>(bed.sim().tracer().total_recorded()),
      static_cast<unsigned long long>(k.sampler().samples_taken()),
      static_cast<unsigned long long>(k.maintenance_ticks()));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Tracing overhead sweep: 1-in-64, then every packet.
  RunForwardingReport(64, false);
  RunForwardingReport(1, false);
  // Monitoring overhead: alternate monitor-off / monitor-on pairs so the
  // regression gate can compare per-config minima taken under the same
  // process conditions (wall clocks on shared machines drift too much for
  // a single pair to be meaningful).
  for (int i = 0; i < 3; ++i) {
    RunForwardingReport(0, false);
    RunForwardingReport(0, true);
  }
  // Profiler attribution overhead: interleaved profiler-off / profiler-on
  // pairs (same pairing rationale as monitoring); the gate holds the
  // median paired cpu_s ratio within PROFILER_TOLERANCE. Five pairs, not
  // three: the expected overhead (~3-4%) sits close enough to the 5% gate
  // that the median needs headroom against one preempted run.
  for (int i = 0; i < 5; ++i) {
    RunForwardingReport(0, false, /*fastpath=*/false, /*filter_rules=*/0,
                        sim::Simulator::kDefaultDispatchBatch,
                        /*profiler=*/false);
    RunForwardingReport(0, false, /*fastpath=*/false, /*filter_rules=*/0,
                        sim::Simulator::kDefaultDispatchBatch,
                        /*profiler=*/true);
  }
  // Fast-path speedup: interleaved cache-off / cache-on pairs under a
  // 12-rule firewall on both chains. Pairing cancels machine drift; the
  // gate requires the on-run to beat the off-run by FASTPATH_MIN_SPEEDUP.
  for (int i = 0; i < 3; ++i) {
    RunForwardingReport(0, false, /*fastpath=*/false, /*filter_rules=*/12);
    RunForwardingReport(0, false, /*fastpath=*/true, /*filter_rules=*/12);
  }
  // Event-dispatch batch sweep: each batch-on size runs back-to-back with a
  // batch-off (batch=1) run, so the gate can hold the paired cpu_s ratio to
  // a floor the way it does for monitoring overhead. The batch=64 rows also
  // fold into the wall-clock regression pool (same config as the default).
  for (const uint32_t b : {8u, 32u, 64u}) {
    RunForwardingReport(0, false, /*fastpath=*/false, /*filter_rules=*/0,
                        /*dispatch_batch=*/1);
    RunForwardingReport(0, false, /*fastpath=*/false, /*filter_rules=*/0,
                        /*dispatch_batch=*/b);
  }
  // Tracepoint overhead: interleaved probes-disarmed / probes-armed pairs
  // (every probe armed, no predicates — the worst case short of a trigger).
  // Seven pairs, more than the profiler sweep: armed emits add ~3% and the
  // gate sits at 5%, so the median needs two preempted runs of headroom.
  for (int i = 0; i < 7; ++i) {
    RunForwardingReport(0, false, /*fastpath=*/false, /*filter_rules=*/0,
                        sim::Simulator::kDefaultDispatchBatch,
                        /*profiler=*/false, /*probes=*/false);
    RunForwardingReport(0, false, /*fastpath=*/false, /*filter_rules=*/0,
                        sim::Simulator::kDefaultDispatchBatch,
                        /*profiler=*/false, /*probes=*/true);
  }
  return 0;
}
