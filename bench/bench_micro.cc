// Microbenchmarks (google-benchmark): per-component costs of the Norman
// dataplane — overlay interpretation, filter-chain evaluation by rule
// count, frame parsing, checksums, WFQ operations, DDIO model, RSS.
//
// These are *simulator implementation* speeds (host ns/op), reported so
// regressions in the hot paths are visible; virtual-time results live in
// the bench_* experiment binaries.
#include <benchmark/benchmark.h>

#include "src/dataplane/filter_engine.h"
#include "src/dataplane/qdisc.h"
#include "src/net/checksum.h"
#include "src/net/packet_builder.h"
#include "src/net/parsed_packet.h"
#include "src/nic/ddio.h"
#include "src/nic/rss.h"
#include "src/overlay/interpreter.h"

namespace {

using namespace norman;  // NOLINT

struct Fixture {
  std::vector<uint8_t> frame;
  net::ParsedPacket parsed;
  overlay::PacketContext ctx;

  Fixture() {
    net::FrameEndpoints ep{net::MacAddress::ForHost(1),
                           net::MacAddress::ForHost(2),
                           net::Ipv4Address::FromOctets(10, 0, 0, 1),
                           net::Ipv4Address::FromOctets(10, 0, 0, 2)};
    frame = net::BuildUdpFrame(ep, 5432, 443,
                               std::vector<uint8_t>(1000, 0xaa));
    parsed = *net::ParseFrame(frame);
    ctx.frame = frame;
    ctx.parsed = &parsed;
    ctx.conn = overlay::ConnMetadata{1, 1001, 100, 1, 7};
    ctx.direction = net::Direction::kTx;
  }
};

void BM_ParseFrame(benchmark::State& state) {
  const Fixture f;
  for (auto _ : state) {
    auto p = net::ParseFrame(f.frame);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_ParseFrame);

void BM_InternetChecksum1500(benchmark::State& state) {
  const std::vector<uint8_t> buf(1500, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::InternetChecksum(buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1500);
}
BENCHMARK(BM_InternetChecksum1500);

void BM_OverlayExecute(benchmark::State& state) {
  const Fixture f;
  // A representative 12-instruction match program.
  const overlay::Program prog = dataplane::CompileFilterChain(
      {[] {
        dataplane::FilterRule r;
        r.proto = net::IpProto::kUdp;
        r.dst_port = dataplane::PortRange{443, 443};
        r.owner_uid = 1001;
        r.action = dataplane::FilterAction::kDrop;
        return r;
      }()},
      dataplane::FilterAction::kAccept);
  for (auto _ : state) {
    auto r = overlay::Execute(prog, f.ctx);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OverlayExecute);

void BM_FilterChain(benchmark::State& state) {
  const Fixture fx;
  dataplane::FilterEngine engine;
  for (int i = 0; i < state.range(0); ++i) {
    dataplane::FilterRule r;
    r.proto = net::IpProto::kTcp;  // never matches the UDP test packet
    r.dst_port = dataplane::PortRange{static_cast<uint16_t>(i + 1),
                                      static_cast<uint16_t>(i + 1)};
    r.action = dataplane::FilterAction::kDrop;
    (void)engine.AppendRule(r);
  }
  net::Packet packet(fx.frame);
  for (auto _ : state) {
    auto v = engine.Process(packet, fx.ctx);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_FilterChain)->Arg(1)->Arg(8)->Arg(32)->Arg(60);

void BM_WfqEnqueueDequeue(benchmark::State& state) {
  const Fixture fx;
  dataplane::WfqQdisc wfq(dataplane::ClassifyByUid({{1001, 1}, {1002, 2}}));
  wfq.SetWeight(1, 4.0);
  wfq.SetWeight(2, 1.0);
  for (auto _ : state) {
    wfq.Enqueue(std::make_unique<net::Packet>(fx.frame), fx.ctx);
    auto p = wfq.Dequeue(0);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_WfqEnqueueDequeue);

void BM_DdioAccess(benchmark::State& state) {
  nic::DdioModel ddio;
  const uint64_t rings = static_cast<uint64_t>(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddio.Access(i++ % rings, 2048));
  }
}
BENCHMARK(BM_DdioAccess)->Arg(256)->Arg(4096);

void BM_RssSteer(benchmark::State& state) {
  nic::RssEngine rss(16);
  net::FiveTuple t{net::Ipv4Address::FromOctets(1, 2, 3, 4),
                   net::Ipv4Address::FromOctets(5, 6, 7, 8), 1000, 2000,
                   net::IpProto::kUdp};
  for (auto _ : state) {
    t.src_port++;
    benchmark::DoNotOptimize(rss.Steer(t));
  }
}
BENCHMARK(BM_RssSteer);

void BM_BuildUdpFrame(benchmark::State& state) {
  net::FrameEndpoints ep{net::MacAddress::ForHost(1),
                         net::MacAddress::ForHost(2),
                         net::Ipv4Address::FromOctets(10, 0, 0, 1),
                         net::Ipv4Address::FromOctets(10, 0, 0, 2)};
  const std::vector<uint8_t> payload(1000, 0xab);
  for (auto _ : state) {
    auto f = net::BuildUdpFrame(ep, 1, 2, payload);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_BuildUdpFrame);

}  // namespace

BENCHMARK_MAIN();
