// E2 cross-validation — the connection-scaling cliff measured on the FULL
// system (real kernel connection setup, real rings, real doorbells, real
// DMA/DDIO/wire simulation), against the fast analytic sweep in
// bench_connection_scaling.
//
// The analytic model claims: near-line-rate until the combined ring working
// set exceeds the DDIO share (~1024 connections at 2KiB/ring x 2 rings),
// then a cliff. Here the same sweep runs through SmartNic::Doorbell and the
// DES event loop; if the shapes disagree, one of the models is wrong.
#include <cstdio>

#include "src/common/stats.h"
#include "src/norman/socket.h"
#include "src/workload/testbed.h"

namespace {

using namespace norman;  // NOLINT

struct Point {
  double throughput_gbps = 0;
  double ddio_hit_rate = 0;
};

Point RunFullSystem(uint32_t conns) {
  workload::TestBedOptions opts;
  opts.echo = true;  // bidirectional: responses touch the RX rings too
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "tenant");
  const auto pid = *k.processes().Spawn(1, "srv");
  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);

  std::vector<Socket> socks;
  socks.reserve(conns);
  for (uint32_t i = 0; i < conns; ++i) {
    auto s = Socket::Connect(&k, pid, peer,
                             static_cast<uint16_t>(1 + (i % 60000)), {});
    if (!s.ok()) {
      std::fprintf(stderr, "connect %u: %s\n", i,
                   s.status().ToString().c_str());
      return {};
    }
    socks.push_back(std::move(*s));
  }

  // Warm the DDIO working set with one round, then measure.
  const std::vector<uint8_t> payload(958, 0x11);  // 1000B frames
  for (auto& s : socks) {
    (void)s.Send(payload);
  }
  bed.sim().Run();
  bed.nic().ResetStats();
  auto& ddio = bed.kernel().nic_control().ddio();
  ddio.ResetStats();
  bed.DiscardEgress();

  uint64_t bytes = 0;
  bed.SetEgressHook(
      [&bytes](const net::Packet& p) { bytes += p.size(); });

  const Nanos start = bed.sim().Now();
  constexpr int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    for (auto& s : socks) {
      (void)s.Send(payload);
    }
    bed.sim().Run();  // drain fully (closed-loop rounds)
  }
  const Nanos elapsed = bed.sim().Now() - start;

  Point p;
  // Count both directions (TX out + echoed RX), like the analytic sweep.
  p.throughput_gbps = AchievedBps(2 * bytes, elapsed) / 1e9;
  p.ddio_hit_rate = ddio.hit_rate();
  return p;
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("E2 validation: connection scaling on the full system\n");
  std::printf("(real kernel/rings/doorbells/pipeline; 1000B frames)\n");
  std::printf("=====================================================\n\n");
  std::printf("%-14s %18s %14s\n", "connections", "throughput", "DDIO hits");
  for (const uint32_t conns : {64u, 256u, 512u, 1024u, 1536u, 2048u}) {
    const auto p = RunFullSystem(conns);
    std::printf("%-14u %15.2f Gbps %13.1f%%\n", conns, p.throughput_gbps,
                p.ddio_hit_rate * 100);
  }
  std::printf(
      "\nAgreement check: same shape as bench_connection_scaling — flat\n"
      "DDIO-hot plateau through 1024 connections, cliff beyond it when the\n"
      "ring working set (2 rings x 2KiB x conns) exceeds the 4MiB DDIO\n"
      "share. The cliff is a property of the architecture, not of the\n"
      "analytic shortcut.\n");
  return 0;
}
