// E4 — QoS enforcement with on-NIC WFQ (§2 "QoS", §4.4 qdisc overlays).
//
// Alice deprioritizes the game Bob and Charlie play over SSH sessions with
// ephemeral ports. The game traffic is classified by the *owning cgroup*
// (the kernel moved the game processes into /games), which no port-based
// policy could do. Full-system run: real sockets, real NIC pipeline, real
// WFQ dequeued onto a rate-limited wire.
//
// Series reported (paper-figure shape): achieved share of a congested link
// per tenant class, under (a) raw bypass FIFO (no policy possible) and
// (b) KOPI WFQ with 8:1 productive:game weights, across several weight
// settings.
#include <cstdio>

#include "src/common/stats.h"
#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

namespace {

using namespace norman;  // NOLINT

struct RunResult {
  uint64_t productive_bytes = 0;
  uint64_t game_bytes = 0;
};

// Two tenants saturate a 10G (slowed) link; returns achieved egress bytes.
RunResult RunTenants(bool use_wfq, double productive_weight,
                     double game_weight) {
  workload::TestBedOptions opts;
  opts.nic.cost.link_rate_bps = 10 * kGbps;  // congested link
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "bob");
  k.processes().AddUser(1002, "charlie");
  const auto games_cg = *k.processes().CreateCgroup("/games");

  const auto pid_web = *k.processes().Spawn(1001, "webserver");
  const auto pid_game1 = *k.processes().Spawn(1001, "game");
  const auto pid_game2 = *k.processes().Spawn(1002, "game");
  (void)k.processes().MoveToCgroup(pid_game1, games_cg);
  (void)k.processes().MoveToCgroup(pid_game2, games_cg);

  if (use_wfq) {
    char spec[128];
    std::snprintf(spec, sizeof(spec),
                  "qdisc replace dev nic0 root wfq cgroup 1:%.0f cgroup %u:%.0f",
                  productive_weight, games_cg, game_weight);
    const Status s = tools::TcReplace(&k, kernel::kRootUid, spec);
    if (!s.ok()) {
      std::fprintf(stderr, "tc failed: %s\n", s.ToString().c_str());
      return {};
    }
  }

  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto web = Socket::Connect(&k, pid_web, peer, 443, {});
  auto g1 = Socket::Connect(&k, pid_game1, peer, 27015, {});
  auto g2 = Socket::Connect(&k, pid_game2, peer, 27016, {});
  if (!web.ok() || !g1.ok() || !g2.ok()) {
    return {};
  }

  // All three offer far more than the link can carry.
  workload::BulkSender s_web(&bed.sim(), &*web, 1400, 2 * kMicrosecond);
  workload::BulkSender s_g1(&bed.sim(), &*g1, 1400, 2 * kMicrosecond);
  workload::BulkSender s_g2(&bed.sim(), &*g2, 1400, 2 * kMicrosecond);
  constexpr Nanos kRunFor = 20 * kMillisecond;
  s_web.Start(0, kRunFor);
  s_g1.Start(0, kRunFor);
  s_g2.Start(0, kRunFor);

  RunResult result;
  bed.SetEgressHook([&](const net::Packet& p) {
    auto parsed = net::ParseFrame(p.bytes());
    if (!parsed || !parsed->flow()) {
      return;
    }
    if (parsed->flow()->dst_port == 443) {
      result.productive_bytes += p.size();
    } else {
      result.game_bytes += p.size();
    }
  });
  bed.DiscardEgress();
  bed.sim().RunUntil(kRunFor);
  return result;
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("E4: on-NIC WFQ shapes multi-tenant traffic by cgroup\n");
  std::printf("=====================================================\n\n");

  const auto fifo = RunTenants(/*use_wfq=*/false, 0, 0);
  const double fifo_total =
      static_cast<double>(fifo.productive_bytes + fifo.game_bytes);
  std::printf("bypass/FIFO (no policy expressible):\n");
  std::printf("  productive %5.1f%%   game %5.1f%%   (game's 2 senders win "
              "by offered load)\n\n",
              100.0 * static_cast<double>(fifo.productive_bytes) / fifo_total,
              100.0 * static_cast<double>(fifo.game_bytes) / fifo_total);

  std::printf("KOPI WFQ by cgroup, weight sweep:\n");
  std::printf("%-18s %16s %12s %14s\n", "weights (prod:game)",
              "productive share", "game share", "achieved ratio");
  for (const double w : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto r = RunTenants(true, w, 1.0);
    const double total =
        static_cast<double>(r.productive_bytes + r.game_bytes);
    if (total == 0 || r.game_bytes == 0) {
      std::printf("%-18.0f (no traffic)\n", w);
      continue;
    }
    std::printf("%10.0f:1 %15.1f%% %11.1f%% %13.2f:1\n", w,
                100.0 * static_cast<double>(r.productive_bytes) / total,
                100.0 * static_cast<double>(r.game_bytes) / total,
                static_cast<double>(r.productive_bytes) /
                    static_cast<double>(r.game_bytes));
  }
  std::printf(
      "\nPaper claim reproduced: with kernel bypass no work-conserving\n"
      "shaping policy is enforceable; with KOPI the NIC classifies by the\n"
      "kernel-attached cgroup (ports are ephemeral!) and achieved shares\n"
      "track the configured weights.\n");
  return 0;
}
