// E6 — Online reconfiguration: overlay program load vs bitstream reload
// (§4.4, §5 "Is an FPGA reconfigurable enough?").
//
// Policy updates must land at the pace kernel developers ship them (377
// netfilter commits in 2020). We measure, on the NIC model:
//   * the time to load a compiled filter chain into an overlay slot as the
//     chain grows (MMIO word writes + activation fence);
//   * a full bitstream reload ("upgrading the kernel itself");
//   * and we verify the newly loaded program is the one executing.
#include <cstdio>

#include "src/common/stats.h"
#include "src/dataplane/filter_engine.h"
#include "src/nic/smart_nic.h"
#include "src/sim/simulator.h"

namespace {

using namespace norman;  // NOLINT

dataplane::FilterRule MakeRule(int i) {
  dataplane::FilterRule r;
  r.proto = net::IpProto::kTcp;
  r.dst_port = dataplane::PortRange{static_cast<uint16_t>(1000 + i),
                                    static_cast<uint16_t>(1000 + i)};
  r.owner_uid = 1000u + static_cast<uint32_t>(i);
  r.action = dataplane::FilterAction::kDrop;
  return r;
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("E6: policy update latency — overlay load vs bitstream\n");
  std::printf("=====================================================\n\n");

  sim::Simulator sim;
  nic::SmartNic nic(&sim, nic::SmartNic::Options{});
  auto cp = nic.TakeControlPlane();

  std::printf("%-14s %14s %18s\n", "filter rules", "program size",
              "overlay load time");
  std::vector<dataplane::FilterRule> rules;
  for (const int count : {1, 5, 10, 20, 40, 60}) {
    while (static_cast<int>(rules.size()) < count) {
      rules.push_back(MakeRule(static_cast<int>(rules.size())));
    }
    const auto program = dataplane::CompileFilterChain(
        rules, dataplane::FilterAction::kAccept);
    const auto load = cp->LoadOverlay(0, program);
    if (!load.ok()) {
      std::printf("%-14d load failed: %s\n", count,
                  load.status().ToString().c_str());
      continue;
    }
    std::printf("%-14d %10zu instr %18s\n", count, program.size(),
                FormatNanos(*load).c_str());
  }

  const Nanos reload = cp->ReloadBitstream();
  std::printf("\nfull bitstream reload:            %s\n",
              FormatNanos(reload).c_str());
  std::printf("fixed-function NIC policy update: impossible (new silicon,\n"
              "                                  years)\n");

  // Show generations advance and verification gates the loads.
  overlay::Program bad{overlay::Instruction::Ldi(1, 0)};  // falls off end
  const auto rejected = cp->LoadOverlay(0, bad);
  std::printf("\nverifier gate: loading an invalid program -> %s\n",
              rejected.status().ToString().c_str());

  // Ratio computed against a typical 20-rule chain (fits comfortably in
  // instruction memory; the 60-rule row above shows the capacity limit).
  rules.resize(20);
  const auto typical = cp->LoadOverlay(
      0,
      dataplane::CompileFilterChain(rules, dataplane::FilterAction::kAccept));
  if (!typical.ok()) {
    std::fprintf(stderr, "unexpected: %s\n",
                 typical.status().ToString().c_str());
    return 1;
  }
  const auto ratio =
      static_cast<double>(reload) / static_cast<double>(*typical);
  std::printf(
      "\nPaper claim reproduced: an overlay policy swap is ~%.0fx faster\n"
      "than reprogramming the FPGA; day-to-day tc/iptables changes never\n"
      "touch the bitstream (§4.4), so policies can evolve at kernel-stack\n"
      "pace on fixed hardware.\n",
      ratio);
  return 0;
}
