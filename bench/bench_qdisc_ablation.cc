// Ablation — queueing discipline choice (§4.4's "instruction set for
// defining traffic shaping policies" must cover the kernel's qdisc zoo).
//
// The same congested two-class workload (latency-sensitive small packets vs
// bulk 1400B flood) runs under every discipline Norman implements. Reported
// per class: achieved share of the link and p50/p99 in-NIC latency. This is
// the design-choice evidence for why a KOPI must be *programmable*: no
// single discipline fits all four rows.
#include <cstdio>
#include <functional>
#include <map>

#include "src/common/stats.h"
#include "src/norman/socket.h"
#include "src/dataplane/qdisc.h"
#include "src/nic/fifo_scheduler.h"
#include "src/tools/tools.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

namespace {

using namespace norman;  // NOLINT

struct ClassMetrics {
  uint64_t bytes = 0;
  LatencyHistogram latency;
};

struct AblationResult {
  ClassMetrics latency_class;  // uid 1001, small packets
  ClassMetrics bulk_class;     // uid 1002, 1400B flood
};

// Builds the qdisc under test; uid 1001 = RPC class, uid 1002 = bulk.
using QdiscFactory = std::function<std::unique_ptr<nic::Scheduler>()>;

AblationResult RunWorkload(const QdiscFactory& make_qdisc) {
  workload::TestBedOptions opts;
  opts.nic.cost.link_rate_bps = 5 * kGbps;  // heavily congested
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "latency");
  k.processes().AddUser(1002, "bulk");
  const auto pid_lat = *k.processes().Spawn(1001, "rpc");
  const auto pid_bulk = *k.processes().Spawn(1002, "backup");

  const Status s = k.SetQdisc(kernel::kRootUid, make_qdisc());
  if (!s.ok()) {
    std::fprintf(stderr, "qdisc install: %s\n", s.ToString().c_str());
    return {};
  }

  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto lat_sock = Socket::Connect(&k, pid_lat, peer, 443, {});
  auto bulk_sock = Socket::Connect(&k, pid_bulk, peer, 9999, {});

  constexpr Nanos kRunFor = 10 * kMillisecond;
  // RPC class: 200B packets every 10us (160 Mbps offered).
  workload::CbrSender rpc(&bed.sim(), &*lat_sock, 200, 10 * kMicrosecond);
  // Bulk class: as fast as the ring allows (far over the link rate).
  workload::BulkSender bulk(&bed.sim(), &*bulk_sock, 1400,
                            2 * kMicrosecond);
  rpc.Start(0, kRunFor);
  bulk.Start(0, kRunFor);

  AblationResult result;
  bed.SetEgressHook([&](const net::Packet& p) {
    auto parsed = net::ParseFrame(p.bytes());
    if (!parsed || !parsed->flow()) {
      return;
    }
    ClassMetrics& m = parsed->flow()->dst_port == 443
                          ? result.latency_class
                          : result.bulk_class;
    m.bytes += p.size();
    m.latency.Add(p.meta().completed_at - p.meta().created_at);
  });
  bed.DiscardEgress();
  bed.sim().RunUntil(kRunFor);
  return result;
}

void Report(const char* name, const AblationResult& r) {
  const double total =
      static_cast<double>(r.latency_class.bytes + r.bulk_class.bytes);
  std::printf("%-28s %7.1f%% %10s %10s | %7.1f%% %10s\n", name,
              total > 0 ? 100.0 * static_cast<double>(r.latency_class.bytes) / total : 0.0,
              FormatNanos(r.latency_class.latency.p50()).c_str(),
              FormatNanos(r.latency_class.latency.p99()).c_str(),
              total > 0 ? 100.0 * static_cast<double>(r.bulk_class.bytes) / total : 0.0,
              FormatNanos(r.bulk_class.latency.p50()).c_str());
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("Ablation: queueing disciplines under 2-class contention\n");
  std::printf("(RPC: 200B @ 160Mbps offered; bulk: 1400B flood; 5G link)\n");
  std::printf("=====================================================\n\n");
  std::printf("%-28s %8s %10s %10s | %8s %10s\n", "qdisc", "rpc %",
              "rpc p50", "rpc p99", "bulk %", "bulk p50");
  std::printf("%-28s %8s %10s %10s | %8s %10s\n", "", "(share)", "", "", "",
              "");

  const std::map<uint32_t, uint32_t> rpc_first{{1001, 0}, {1002, 1}};
  const std::map<uint32_t, uint32_t> two_classes{{1001, 1}, {1002, 2}};

  Report("fifo", RunWorkload([] {
           return std::make_unique<nic::FifoScheduler>();
         }));
  Report("prio (rpc=band0)", RunWorkload([&] {
           return std::make_unique<dataplane::PrioQdisc>(
               2, dataplane::ClassifyByUid(rpc_first));
         }));
  Report("drr quantum 1514", RunWorkload([&] {
           return std::make_unique<dataplane::DrrQdisc>(
               dataplane::ClassifyByUid(two_classes), 1514);
         }));
  Report("wfq 4:1", RunWorkload([&] {
           auto wfq = std::make_unique<dataplane::WfqQdisc>(
               dataplane::ClassifyByUid(two_classes));
           wfq->SetWeight(1, 4.0);
           wfq->SetWeight(2, 1.0);
           return wfq;
         }));
  Report("tbf 1gbit (shapes all)", RunWorkload([] {
           return std::make_unique<dataplane::TokenBucketQdisc>(
               1'000'000'000ULL, 64 * 1024);
         }));

  std::printf(
      "\nReading: FIFO lets the bulk flood inflate RPC tail latency; WFQ\n"
      "holds the RPC class near its offered share with low tails; DRR\n"
      "equalizes per-class bytes; TBF shapes the aggregate (not work-\n"
      "conserving). No fixed-function discipline serves every tenant mix —\n"
      "the reason the paper requires a *programmable* dataplane (§3).\n");
  return 0;
}
