// E8 — Policy enforcement under attack (§2 "Partitioning Ports", §3
// "isolated from the application").
//
// Policy: only bob's postgres may send to 5432; only charlie's mysql to
// 3306. A rogue process tries to hit both. Full-system runs:
//   (a) KOPI with owner-match iptables rules -> violations blocked at the
//       NIC, legitimate traffic untouched;
//   (b) raw bypass (no rules installable) -> violations reach the wire.
// Reported: violation/legit frame counts on the wire and rule hit counts.
#include <cstdio>

#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"

namespace {

using namespace norman;  // NOLINT

struct WireCount {
  uint64_t legit_5432 = 0;
  uint64_t legit_3306 = 0;
  uint64_t violations = 0;
};

WireCount RunWorld(bool install_policy) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "bob");
  k.processes().AddUser(1002, "charlie");
  const auto pid_pg = *k.processes().Spawn(1001, "postgres");
  const auto pid_my = *k.processes().Spawn(1002, "mysql");
  const auto pid_rogue = *k.processes().Spawn(1002, "rogue");

  if (install_policy) {
    const char* rules[] = {
        "-A OUTPUT -p udp --dport 5432 -m owner --uid-owner 1001 "
        "--cmd-owner postgres -j ACCEPT",
        "-A OUTPUT -p udp --dport 5432 -j DROP",
        "-A OUTPUT -p udp --dport 3306 -m owner --uid-owner 1002 "
        "--cmd-owner mysql -j ACCEPT",
        "-A OUTPUT -p udp --dport 3306 -j DROP",
    };
    for (const char* r : rules) {
      const auto s = tools::IptablesAppend(&k, kernel::kRootUid, r);
      if (!s.ok()) {
        std::fprintf(stderr, "iptables: %s\n", s.status().ToString().c_str());
      }
    }
  }

  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto pg = Socket::Connect(&k, pid_pg, peer, 5432, {});
  auto my = Socket::Connect(&k, pid_my, peer, 3306, {});
  auto rogue_a = Socket::Connect(&k, pid_rogue, peer, 5432, {});
  auto rogue_b = Socket::Connect(&k, pid_rogue, peer, 3306, {});
  if (!pg.ok() || !my.ok() || !rogue_a.ok() || !rogue_b.ok()) {
    return {};
  }
  for (int i = 0; i < 100; ++i) {
    (void)pg->Send("legit pg");
    (void)my->Send("legit my");
    (void)rogue_a->Send("EVIL 5432");
    (void)rogue_b->Send("EVIL 3306");
  }
  bed.sim().Run();

  WireCount count;
  const uint16_t pg_port = pg->tuple().src_port;
  const uint16_t my_port = my->tuple().src_port;
  for (const auto& frame : bed.egress()) {
    auto parsed = net::ParseFrame(frame->bytes());
    if (!parsed || !parsed->flow()) {
      continue;
    }
    const auto flow = *parsed->flow();
    if (flow.dst_port == 5432 && flow.src_port == pg_port) {
      ++count.legit_5432;
    } else if (flow.dst_port == 3306 && flow.src_port == my_port) {
      ++count.legit_3306;
    } else if (flow.dst_port == 5432 || flow.dst_port == 3306) {
      ++count.violations;
    }
  }
  if (install_policy) {
    std::printf("\nrule hit counters after the KOPI run:\n%s",
                tools::IptablesList(k).c_str());
  }
  return count;
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("E8: port-partitioning enforcement under a rogue app\n");
  std::printf("=====================================================\n");

  const auto bypass = RunWorld(/*install_policy=*/false);
  const auto kopi = RunWorld(/*install_policy=*/true);

  std::printf("\n%-22s %14s %14s %12s\n", "world", "legit :5432",
              "legit :3306", "violations");
  std::printf("%-22s %14llu %14llu %12llu\n", "bypass (no policy)",
              static_cast<unsigned long long>(bypass.legit_5432),
              static_cast<unsigned long long>(bypass.legit_3306),
              static_cast<unsigned long long>(bypass.violations));
  std::printf("%-22s %14llu %14llu %12llu\n", "KOPI (owner rules)",
              static_cast<unsigned long long>(kopi.legit_5432),
              static_cast<unsigned long long>(kopi.legit_3306),
              static_cast<unsigned long long>(kopi.violations));

  std::printf(
      "\nPaper claim reproduced: under bypass every rogue frame reaches the\n"
      "wire; with KOPI the uid+cmd owner-match rules (compiled to the NIC\n"
      "overlay) block 100%% of violations with zero collateral damage to\n"
      "the legitimate owners — unexpressible at hypervisor/switch level.\n");
  return 0;
}
