// E7b — Resource-exhaustion *attack* resilience (§5: "This makes them
// vulnerable to resource-exhaustion attacks (as has been noted in attempts
// to deploy TCP offloads)").
//
// A remote attacker SYN-floods the host with random spoofed sources. The
// on-NIC conntrack charges per-flow state to bounded NIC SRAM; the §5
// mitigation is "careful data structure design": when full, new flows are
// simply counted as untracked instead of evicting established state, and
// the kernel's periodic sweep reclaims closed/idle entries. We measure:
//   * conntrack occupancy and untracked counts through the flood;
//   * whether a legitimate established connection keeps its state and its
//     throughput during the attack;
//   * recovery after the flood stops and the sweep runs.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/norman/socket.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"
#include "src/net/packet_pool.h"

namespace {

using namespace norman;  // NOLINT

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("E7b: SYN-flood vs bounded on-NIC conntrack (512KiB\n");
  std::printf("     NIC SRAM -> ~8k trackable flows)\n");
  std::printf("=====================================================\n\n");

  workload::TestBedOptions opts;
  opts.nic.sram_bytes = 512 * kKiB;  // room for flows + rules + conntrack
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "svc");
  const auto pid = *k.processes().Spawn(1, "server");
  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);

  // The legitimate long-lived connection, established before the attack.
  auto legit = Socket::Connect(&k, pid, peer, 443, {});
  if (!legit.ok()) {
    return 1;
  }
  (void)legit->Send("established");
  bed.sim().Run();

  const auto& ct = k.conntrack();
  const uint64_t sram_before = k.nic_control().sram().UsedBy("conntrack");
  std::printf("before attack: conntrack entries %zu, untracked %llu, "
              "SRAM(conntrack) %llu B\n",
              ct.size(), static_cast<unsigned long long>(ct.untracked()),
              static_cast<unsigned long long>(sram_before));

  // SYN flood: 20k spoofed flows over 20ms, injected from the wire.
  Rng rng(777);
  constexpr int kFloodFlows = 20'000;
  for (int i = 0; i < kFloodFlows; ++i) {
    net::FrameEndpoints ep{net::MacAddress::ForHost(0xa77ac),
                           k.options().host_mac,
                           net::Ipv4Address{rng.NextU32() | 0x01000000},
                           k.options().host_ip};
    auto syn = net::BuildTcpFrame(
        ep, static_cast<uint16_t>(rng.NextInRange(1024, 65535)), 443,
        rng.NextU32(), 0, net::TcpFlags::kSyn, {});
    bed.InjectFromNetwork(net::MakePacket(std::move(syn)),
                          1000 + i * 1000);
  }
  // Legit traffic runs concurrently through the flood window.
  workload::CbrSender sender(&bed.sim(), &*legit, 1000, 50 * kMicrosecond);
  sender.Start(1000, 21 * kMillisecond);
  bed.DiscardEgress();
  uint64_t legit_bytes = 0;
  bed.SetEgressHook([&](const net::Packet& p) {
    auto parsed = net::ParseFrame(p.bytes());
    if (parsed && parsed->flow() && parsed->flow()->dst_port == 443) {
      legit_bytes += p.size();
    }
  });
  bed.sim().Run();

  std::printf("during attack (%d spoofed SYNs over 20ms):\n", kFloodFlows);
  std::printf("  conntrack entries: %zu (bounded by SRAM)\n", ct.size());
  std::printf("  untracked flows:   %llu (counted, not evicting "
              "established state)\n",
              static_cast<unsigned long long>(ct.untracked()));
  std::printf("  SRAM(conntrack):   %llu B of %llu B total NIC SRAM\n",
              static_cast<unsigned long long>(
                  k.nic_control().sram().UsedBy("conntrack")),
              static_cast<unsigned long long>(
                  k.nic_control().sram().capacity()));

  const auto* legit_entry = ct.Lookup(legit->tuple());
  std::printf("  legitimate connection state survived: %s\n",
              legit_entry != nullptr ? "yes" : "NO");
  std::printf("  legitimate throughput during flood: %s (%llu frames)\n",
              FormatBps(AchievedBps(legit_bytes, 21 * kMillisecond)).c_str(),
              static_cast<unsigned long long>(sender.sent()));

  // Attack ends; idle SYN_SENT entries expire at the sweep.
  const size_t during = ct.size();
  bed.sim().RunUntil(bed.sim().Now() + 130 * kSecond);
  k.Housekeeping();
  std::printf("\nafter flood + idle sweep: %zu -> %zu entries, "
              "SRAM(conntrack) %llu B\n",
              during, ct.size(),
              static_cast<unsigned long long>(
                  k.nic_control().sram().UsedBy("conntrack")));
  std::printf(
      "\nPaper concern addressed: the flood saturates only its bounded\n"
      "budget — established state is never evicted, legitimate traffic is\n"
      "unaffected, the overflow is observable (untracked counter), and the\n"
      "sweep reclaims the garbage once the attack subsides.\n");
  return 0;
}
