// E5 — Blocking vs polling I/O (§2 "Process Scheduling", §4.3).
//
// With kernel bypass, "the kernel is not able to detect packet arrivals in
// the dataplane to 'wake' an application", so apps poll, burning a core.
// KOPI's notification queues restore blocking recv. We sweep the arrival
// rate of a request/response server and report the CPU consumed per
// delivered message under both modes, full-system (real NIC notifications,
// real kernel wake path with context-switch charges).
#include <cstdio>

#include "src/common/stats.h"
#include "src/norman/socket.h"
#include "src/sim/resource.h"
#include "src/workload/testbed.h"

namespace {

using namespace norman;  // NOLINT

struct ModeResult {
  uint64_t delivered = 0;
  double app_core_utilization = 0;   // polling loop burn
  double kernel_cpu_utilization = 0; // wake path cost
  Nanos mean_wake_latency = 0;       // arrival -> app sees data
};

constexpr Nanos kRunFor = 50 * kMillisecond;
constexpr Nanos kPollInterval = 200;  // a tight DPDK-style poll loop

ModeResult RunPolling(Nanos interarrival) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1, "svc");
  const auto pid = *k.processes().Spawn(1, "poller");
  auto sock = Socket::Connect(&k, pid,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              7000, {});
  ModeResult result;
  if (!sock.ok()) {
    return result;
  }
  // Inject arrivals.
  for (Nanos t = 0; t < kRunFor; t += interarrival) {
    bed.InjectUdpFromPeer(7000, sock->tuple().src_port, 128, t);
  }
  // The polling loop: spins on the RX ring; every iteration costs CPU.
  sim::Resource app_core("app");
  LatencyHistogram wake;
  std::function<void()> poll = [&] {
    app_core.AddBusy(kPollInterval);  // the poll body burns the core
    while (auto frame = sock->RecvFrame()) {
      ++result.delivered;
      wake.Add(bed.sim().Now() - frame->meta().created_at);
    }
    if (bed.sim().Now() < kRunFor) {
      bed.sim().ScheduleAfter(kPollInterval, poll);
    }
  };
  bed.sim().ScheduleAfter(0, poll);
  bed.sim().RunUntil(kRunFor);
  result.app_core_utilization = app_core.Utilization(kRunFor);
  result.kernel_cpu_utilization = k.kernel_core().Utilization(kRunFor);
  result.mean_wake_latency = static_cast<Nanos>(wake.mean());
  return result;
}

ModeResult RunBlocking(Nanos interarrival) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1, "svc");
  const auto pid = *k.processes().Spawn(1, "blocker");
  kernel::ConnectOptions opts;
  opts.notify_rx = true;
  auto sock = Socket::Connect(&k, pid,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              7000, opts);
  ModeResult result;
  if (!sock.ok()) {
    return result;
  }
  for (Nanos t = 0; t < kRunFor; t += interarrival) {
    bed.InjectUdpFromPeer(7000, sock->tuple().src_port, 128, t);
  }
  sim::Resource app_core("app");
  LatencyHistogram wake;
  // The blocking server loop: recv -> handle -> recv. Handling cost is the
  // same small constant as the polling case's per-message work.
  std::function<void()> serve = [&] {
    const Status s = sock->RecvBlocking([&](std::vector<uint8_t>) {
      ++result.delivered;
      app_core.AddBusy(kPollInterval);  // per-message handling work
      if (bed.sim().Now() < kRunFor) {
        serve();
      }
    });
    if (!s.ok()) {
      std::fprintf(stderr, "block failed: %s\n", s.ToString().c_str());
    }
  };
  bed.sim().ScheduleAfter(0, serve);
  bed.sim().RunUntil(kRunFor);
  result.app_core_utilization = app_core.Utilization(kRunFor);
  result.kernel_cpu_utilization = k.kernel_core().Utilization(kRunFor);
  result.mean_wake_latency = 0;
  return result;
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("E5: CPU cost of polling vs notification-driven blocking\n");
  std::printf("=====================================================\n\n");
  std::printf("%-16s | %-28s | %-28s\n", "", "polling (bypass)",
              "blocking (KOPI notif.)");
  std::printf("%-16s | %10s %8s %8s | %10s %8s %8s\n", "arrival rate",
              "delivered", "app CPU", "kern CPU", "delivered", "app CPU",
              "kern CPU");
  for (const Nanos interarrival :
       {10 * kMillisecond, 1 * kMillisecond, 100 * kMicrosecond,
        10 * kMicrosecond}) {
    const double rate_kpps = 1e6 / static_cast<double>(interarrival);
    const auto poll = RunPolling(interarrival);
    const auto block = RunBlocking(interarrival);
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f kpps", rate_kpps);
    std::printf("%-16s | %10llu %7.1f%% %7.1f%% | %10llu %7.1f%% %7.1f%%\n",
                label, static_cast<unsigned long long>(poll.delivered),
                poll.app_core_utilization * 100,
                poll.kernel_cpu_utilization * 100,
                static_cast<unsigned long long>(block.delivered),
                block.app_core_utilization * 100,
                block.kernel_cpu_utilization * 100);
  }
  std::printf(
      "\nPaper claim reproduced: the polling app burns a full core even at\n"
      "0.1 kpps, while the blocking app's CPU scales with the actual load\n"
      "(notification -> kernel wake costs a context switch per message).\n");
  return 0;
}
