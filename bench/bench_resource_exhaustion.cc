// E7 — NIC memory exhaustion and the software fallback path (§5 "Can we
// prevent a KOPI from being vulnerable to resource exhaustion?").
//
// Per-connection state (flow entry + ring state) is charged against a
// bounded NIC SRAM. We open connections until the NIC is full, continue
// with the kernel's software-fallback path, and compare the per-packet cost
// of the two classes — demonstrating the paper's proposed mitigation:
// "route 'low priority' ... traffic through a software datapath".
#include <cstdio>

#include "src/common/stats.h"
#include "src/norman/socket.h"
#include "src/workload/testbed.h"

namespace {

using namespace norman;  // NOLINT

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("E7: NIC SRAM exhaustion and the software slow path\n");
  std::printf("=====================================================\n\n");

  // 256 KiB NIC SRAM: (384B flow + 64B ring state) per conn -> ~585 fit.
  workload::TestBedOptions opts;
  opts.nic.sram_bytes = 256 * kKiB;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "tenant");
  const auto pid = *k.processes().Spawn(1, "srv");
  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);

  kernel::ConnectOptions copts;
  copts.allow_software_fallback = true;
  std::vector<Socket> nic_socks;
  std::vector<Socket> fb_socks;
  for (int i = 0; i < 800; ++i) {
    auto s = Socket::Connect(&k, pid, peer,
                             static_cast<uint16_t>(1000 + i), copts);
    if (!s.ok()) {
      break;
    }
    (s->software_fallback() ? fb_socks : nic_socks)
        .push_back(std::move(*s));
  }
  const auto& sram = k.nic_control().sram();
  std::printf("NIC SRAM: %llu / %llu bytes used\n",
              static_cast<unsigned long long>(sram.used()),
              static_cast<unsigned long long>(sram.capacity()));
  for (const auto& [cat, bytes] : sram.by_category()) {
    std::printf("  %-12s %10llu B\n", cat.c_str(),
                static_cast<unsigned long long>(bytes));
  }
  std::printf("connections on the NIC fast path:  %zu\n", nic_socks.size());
  std::printf("connections on software fallback:  %zu\n", fb_socks.size());

  // Per-packet cost comparison: send a burst on one connection of each
  // class and compare wire completion time and host CPU burned.
  constexpr int kBurst = 200;
  constexpr size_t kPayload = 1000;

  bed.DiscardEgress();
  uint64_t fast_bytes = 0;
  Nanos fast_last = 0;
  bed.SetEgressHook([&](const net::Packet& p) {
    fast_bytes += p.size();
    fast_last = p.meta().completed_at;
  });
  const Nanos kernel_cpu_before = k.kernel_core().busy_ns();
  for (int i = 0; i < kBurst; ++i) {
    (void)nic_socks[0].Send(std::vector<uint8_t>(kPayload, 1));
    bed.sim().Run();
  }
  const Nanos fast_kernel_cpu = k.kernel_core().busy_ns() - kernel_cpu_before;
  const double fast_gbps = AchievedBps(fast_bytes, fast_last) / 1e9;

  uint64_t slow_bytes = 0;
  Nanos slow_first = bed.sim().Now();
  Nanos slow_last = 0;
  bed.SetEgressHook([&](const net::Packet& p) {
    slow_bytes += p.size();
    slow_last = p.meta().completed_at;
  });
  const Nanos slow_cpu_before = k.kernel_core().busy_ns();
  for (int i = 0; i < kBurst; ++i) {
    (void)fb_socks[0].Send(std::vector<uint8_t>(kPayload, 2));
    bed.sim().Run();
  }
  const Nanos slow_kernel_cpu = k.kernel_core().busy_ns() - slow_cpu_before;
  const double slow_gbps =
      AchievedBps(slow_bytes, slow_last - slow_first) / 1e9;

  std::printf("\n%-26s %14s %18s\n", "path", "throughput",
              "host CPU / packet");
  std::printf("%-26s %10.2f Gbps %18s\n", "NIC fast path", fast_gbps,
              FormatNanos(fast_kernel_cpu / kBurst).c_str());
  std::printf("%-26s %10.2f Gbps %18s\n", "software fallback", slow_gbps,
              FormatNanos(slow_kernel_cpu / kBurst).c_str());

  // Policy still applies on the slow path: software packets traverse the
  // same TX pipeline.
  std::printf("\nfallback packets traversed the NIC interposition pipeline:"
              " %s\n",
              bed.nic().stats().tx_seen() >= 2 * kBurst ? "yes" : "NO");

  std::printf(
      "\nPaper claim reproduced: NIC memory bounds the fast-path connection\n"
      "count; excess connections survive on the host software path at\n"
      "reduced throughput and real host CPU cost per packet — degraded, not\n"
      "denied, service (§5's mitigation).\n");
  return 0;
}
