// E3 — The §2 management-scenario matrix (the paper's core argument).
//
// Runs all four scenarios — debugging, port partitioning, process
// scheduling, QoS — live under all six interposition architectures and
// prints which succeed, with the evidence each run produced. The KOPI/QoS
// cell actually exercises the WFQ discipline; the failures fail for the
// mechanical reason the paper gives (malicious app skips its own hook, the
// hypervisor has no pid, raw bypass has no observer at all).
#include <cstdio>

#include "src/baseline/scenarios.h"

namespace {

using namespace norman::baseline;  // NOLINT

constexpr Architecture kArchs[] = {
    Architecture::kKernelStack,    Architecture::kBypass,
    Architecture::kBypassAppInterposition,
    Architecture::kHypervisorSwitch, Architecture::kSidecarCore,
    Architecture::kKopi,
};

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("E3: which interposition point supports which scenario\n");
  std::printf("=====================================================\n\n");
  std::printf("%-24s %-10s %-14s %-12s %-6s\n", "architecture", "debugging",
              "partitioning", "scheduling", "QoS");
  for (const auto arch : kArchs) {
    const auto dbg = RunDebuggingScenario(arch);
    const auto part = RunPortPartitioningScenario(arch);
    const auto sched = RunProcessSchedulingScenario(arch);
    const auto qos = RunQosScenario(arch);
    std::printf("%-24s %-10s %-14s %-12s %-6s\n",
                std::string(ArchitectureName(arch)).c_str(),
                dbg.success ? "yes" : "NO", part.success ? "yes" : "NO",
                sched.success ? "yes" : "NO", qos.success ? "yes" : "NO");
  }

  std::printf("\nEvidence from the runs:\n");
  for (const auto arch : kArchs) {
    std::printf("\n[%s]\n", std::string(ArchitectureName(arch)).c_str());
    std::printf("  debugging:    %s\n",
                RunDebuggingScenario(arch).detail.c_str());
    std::printf("  partitioning: %s\n",
                RunPortPartitioningScenario(arch).detail.c_str());
    std::printf("  scheduling:   %s\n",
                RunProcessSchedulingScenario(arch).detail.c_str());
    std::printf("  QoS:          %s\n", RunQosScenario(arch).detail.c_str());
  }
  std::printf(
      "\nPaper claim reproduced: every scenario needs both the global view\n"
      "and the process view; only OS-integrated interposition (kernel\n"
      "stack, sidecar dataplane, KOPI) has both, and only KOPI has both\n"
      "without per-packet kernel/extra-core crossings.\n");
  return 0;
}
