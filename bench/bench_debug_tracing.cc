// E9 — Debugging an ARP flood (§2 "Debugging" — "based on a true story
// from our research lab!").
//
// Ten applications share the NIC; one floods bogus ARP requests with an
// unknown source MAC. The admin's job: find the culprit process. We run it
// full-system and compare:
//   * KOPI: one norman-arp / norman-tcpdump invocation attributes every
//     bogus frame to its pid (the NIC tagged each TX frame with its owner);
//   * bypass: the flood is visible on the network, but attribution requires
//     inspecting every application one by one — we count those steps.
#include <cstdio>

#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

namespace {

using namespace norman;  // NOLINT

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("E9: tracing an ARP flood to the offending process\n");
  std::printf("=====================================================\n\n");

  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "bob");
  k.processes().AddUser(1002, "charlie");

  // Ten applications; app #7 (charlie's "updater") is the buggy one.
  constexpr int kApps = 10;
  std::vector<kernel::Pid> pids;
  std::vector<Socket> socks;
  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  for (int i = 0; i < kApps; ++i) {
    const auto uid = i % 2 == 0 ? 1001u : 1002u;
    const std::string comm =
        i == 7 ? "updater" : "app" + std::to_string(i);
    const auto pid = *k.processes().Spawn(uid, comm);
    pids.push_back(pid);
    auto s = Socket::Connect(&k, pid, peer,
                             static_cast<uint16_t>(8000 + i), {});
    socks.push_back(std::move(*s));
  }

  // Background: everyone chats normally.
  std::vector<std::unique_ptr<workload::CbrSender>> senders;
  for (auto& s : socks) {
    senders.push_back(std::make_unique<workload::CbrSender>(
        &bed.sim(), &s, 200, 100 * kMicrosecond));
    senders.back()->Start(0, 10 * kMillisecond);
  }
  // The buggy app floods bogus ARP with an unknown MAC.
  const auto bogus_mac = net::MacAddress{{0xde, 0xad, 0xbe, 0xef, 0x00, 0x07}};
  workload::ArpFlooder flooder(&bed.sim(), &socks[7], bogus_mac,
                               net::Ipv4Address::FromOctets(10, 0, 0, 99),
                               20 * kMicrosecond);
  flooder.Start(0, 10 * kMillisecond);

  // Admin turns on capture partway through (as in real incident response).
  bed.sim().ScheduleAt(2 * kMillisecond, [&k] {
    (void)tools::TcpdumpStart(&k, kernel::kRootUid, "ldf r1, is_arp\nret r1");
  });
  bed.sim().Run();

  std::printf("flood injected: %llu bogus ARP frames among normal traffic\n\n",
              static_cast<unsigned long long>(flooder.sent()));

  // --- KOPI workflow: one tool invocation -------------------------------
  std::printf("== KOPI: norman-arp ==\n%s\n", tools::ArpShow(k).c_str());
  std::printf("== KOPI: norman-tcpdump (filter: ARP only, last 3) ==\n%s\n",
              tools::TcpdumpRender(k, 3).c_str());

  // Identify the culprit programmatically from the forensic log.
  std::map<uint32_t, uint64_t> arp_by_pid;
  for (const auto& obs : k.arp().tx_observations()) {
    ++arp_by_pid[obs.owner.owner_pid];
  }
  uint32_t culprit = 0;
  uint64_t best = 0;
  for (const auto& [pid, n] : arp_by_pid) {
    if (n > best) {
      best = n;
      culprit = pid;
    }
  }
  const auto* proc = k.processes().Lookup(culprit);
  std::printf("KOPI diagnosis steps: 1 (read the NIC's ARP forensic log)\n");
  std::printf("culprit: pid %u (%s, user %s) — %llu bogus frames\n",
              culprit, proc != nullptr ? proc->comm.c_str() : "?",
              proc != nullptr ? k.processes().UserName(proc->uid).c_str()
                              : "?",
              static_cast<unsigned long long>(best));
  std::printf("correct: %s\n\n", culprit == pids[7] ? "YES" : "NO");

  // --- bypass workflow ----------------------------------------------------
  std::printf("== bypass: what the admin has instead ==\n");
  std::printf("network-level capture sees the flood (unknown MAC %s) but\n"
              "carries no process identity; attribution requires attaching\n"
              "a debugger / auditing the traffic of each app in turn:\n",
              bogus_mac.ToString().c_str());
  // Worst-case inspection order: the culprit is found at position 8.
  int steps = 0;
  for (int i = 0; i < kApps; ++i) {
    ++steps;
    if (pids[i] == pids[7]) {
      break;
    }
  }
  std::printf("bypass diagnosis steps: %d app-by-app inspections "
              "(scales with the number of applications)\n",
              steps);

  std::printf(
      "\nPaper claim reproduced: with a global+process view the flood is\n"
      "attributed in one step; without it the admin inspects every\n"
      "application, which 'is tedious and scales poorly'.\n");
  return 0;
}
