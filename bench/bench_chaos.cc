// Chaos sweep — graceful degradation of the reliable channel under a
// deterministically faulty wire.
//
// Sweeps loss {0, 0.1%, 1%, 5%} x reordering {off, on} x corruption
// {off, on} over two full Norman hosts (DuplexTestBed) and reports, one
// JSON line per cell: goodput, retransmission overhead, p50/p99 per-message
// flow completion time, and the wire's own fault ledger. Every run derives
// from one fixed seed, so the numbers are byte-stable across invocations —
// CI archives the JSON as an artifact and diffs are meaningful.
#include <cstdio>
#include <map>
#include <vector>

#include "src/common/stats.h"
#include "src/norman/listener.h"
#include "src/norman/reliable.h"
#include "src/sim/fault.h"
#include "src/workload/duplex.h"

namespace {

using namespace norman;  // NOLINT

struct ChaosResult {
  uint64_t delivered = 0;
  double goodput_mbps = 0;
  double retransmit_overhead = 0;  // retransmissions / original segments
  LatencyHistogram fct;            // send -> in-order delivery, per message
  uint64_t wire_lost = 0;
  uint64_t wire_corrupted = 0;
  uint64_t wire_reordered = 0;
  uint64_t corrupt_drops = 0;      // frames the NIC checksum check rejected
};

ChaosResult RunCell(double loss, bool reorder, bool corruption,
                    int messages = 300) {
  workload::DuplexOptions opts;
  opts.fault_seed = 0xc4a05;
  workload::DuplexTestBed bed(opts);
  bed.a().kernel->processes().AddUser(1, "a");
  bed.b().kernel->processes().AddUser(2, "b");
  const auto pid_a = *bed.a().kernel->processes().Spawn(1, "client");
  const auto pid_b = *bed.b().kernel->processes().Spawn(2, "server");

  kernel::ConnectOptions copts;
  copts.notify_rx = true;
  auto listener = Listener::Create(bed.b().kernel.get(), pid_b, 4500,
                                   net::IpProto::kUdp, copts);
  if (!listener.ok()) {
    return {};
  }
  auto client =
      Socket::Connect(bed.a().kernel.get(), pid_a, bed.ip_b(), 4500, copts);
  if (!client.ok()) {
    return {};
  }
  (void)client->Send(std::vector<uint8_t>{0xff, 0, 0, 0, 0});
  bed.sim().Run();
  auto server = listener->Accept();
  if (!server.ok()) {
    return {};
  }
  while (server->RecvFrame() != nullptr) {
  }

  // Connected cleanly; now the wire turns hostile in both directions.
  sim::FaultProfile profile;
  profile.loss = loss;
  if (reorder) {
    profile.reorder = 0.10;
    profile.reorder_delay = 250 * kMicrosecond;
  }
  if (corruption) {
    profile.corruption = 0.02;
  }
  bed.fault().SetProfile(workload::DuplexTestBed::kLinkAtoB, profile);
  bed.fault().SetProfile(workload::DuplexTestBed::kLinkBtoA, profile);

  ReliableChannel tx(&bed.sim(), bed.a().kernel.get(), &*client);
  ReliableChannel rx(&bed.sim(), bed.b().kernel.get(), &*server);

  ChaosResult result;
  std::map<uint64_t, Nanos> sent_at;
  uint64_t delivered_bytes = 0;
  Nanos last_delivery = 0;
  uint64_t next_id = 0;
  rx.SetMessageHandler([&](std::vector<uint8_t> m) {
    ++result.delivered;
    delivered_bytes += m.size();
    last_delivery = bed.sim().Now();
    const auto it = sent_at.find(next_id++);
    if (it != sent_at.end()) {
      result.fct.Add(bed.sim().Now() - it->second);
    }
  });
  (void)tx.Start();
  (void)rx.Start();

  for (int i = 0; i < messages; ++i) {
    sent_at[static_cast<uint64_t>(i)] = bed.sim().Now();
    (void)tx.Send(std::vector<uint8_t>(1000, 0xaa));
  }
  bed.sim().RunUntil(60'000 * kMillisecond);

  if (last_delivery > 0) {
    result.goodput_mbps = AchievedBps(delivered_bytes, last_delivery) / 1e6;
  }
  const uint64_t originals =
      tx.stats().segments_transmitted - tx.stats().retransmissions;
  if (originals > 0) {
    result.retransmit_overhead =
        static_cast<double>(tx.stats().retransmissions) /
        static_cast<double>(originals);
  }
  for (const size_t link : {workload::DuplexTestBed::kLinkAtoB,
                            workload::DuplexTestBed::kLinkBtoA}) {
    const auto& ws = bed.fault().stats(link);
    result.wire_lost += ws.lost;
    result.wire_corrupted += ws.corrupted;
    result.wire_reordered += ws.reordered;
  }
  // Both hosts share the simulator's registry; one accessor reads the
  // world total.
  result.corrupt_drops = bed.a().nic->stats().rx_drops(DropReason::kCorrupt);
  return result;
}

}  // namespace

int main() {
  std::fprintf(stderr,
               "chaos sweep: 300 x 1KB messages per cell, seed 0xc4a05\n");
  for (const double loss : {0.0, 0.001, 0.01, 0.05}) {
    for (const bool reorder : {false, true}) {
      for (const bool corruption : {false, true}) {
        const auto r = RunCell(loss, reorder, corruption);
        std::printf(
            "{\"bench\":\"chaos\",\"loss\":%.3f,\"reorder\":%s,"
            "\"corruption\":%s,\"delivered\":%llu,\"goodput_mbps\":%.3f,"
            "\"retransmit_overhead\":%.4f,\"fct_p50_ns\":%lld,"
            "\"fct_p99_ns\":%lld,\"wire_lost\":%llu,"
            "\"wire_corrupted\":%llu,\"wire_reordered\":%llu,"
            "\"nic_corrupt_drops\":%llu}\n",
            loss, reorder ? "true" : "false", corruption ? "true" : "false",
            static_cast<unsigned long long>(r.delivered), r.goodput_mbps,
            r.retransmit_overhead, static_cast<long long>(r.fct.p50()),
            static_cast<long long>(r.fct.p99()),
            static_cast<unsigned long long>(r.wire_lost),
            static_cast<unsigned long long>(r.wire_corrupted),
            static_cast<unsigned long long>(r.wire_reordered),
            static_cast<unsigned long long>(r.corrupt_drops));
      }
    }
  }
  return 0;
}
