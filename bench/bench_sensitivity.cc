// Robustness ablation — is the E1 architecture ordering an artifact of the
// cost-model constants?
//
// Every cost the simulator charges (syscall, copy, coherence, MMIO, DMA,
// overlay instruction) is perturbed across a wide grid — each parameter
// independently scaled x0.5 and x2, plus random joint perturbations — and
// the E1 comparison re-run. The paper's qualitative claims must hold at
// every point:
//   (1) KOPI >= 0.9 x bypass throughput (interposition ~free),
//   (2) kernel stack is the slowest architecture,
//   (3) KOPI beats the sidecar,
//   (4) transfers/packet stays 1 (KOPI/bypass) vs 2 (kernel/sidecar).
#include <cstdio>
#include <vector>

#include "src/baseline/perf_model.h"
#include "src/common/rng.h"

namespace {

using namespace norman;           // NOLINT
using namespace norman::baseline;  // NOLINT

struct Claims {
  bool kopi_tracks_bypass;
  bool kernel_slowest;
  bool kopi_beats_sidecar;
  bool all_hold() const {
    return kopi_tracks_bypass && kernel_slowest && kopi_beats_sidecar;
  }
};

Claims Evaluate(const sim::CostModel& cost) {
  PerfConfig cfg;
  cfg.packets = 30'000;
  cfg.frame_bytes = 512;
  cfg.filter_rules = 10;
  const auto kernel = RunPerfModel(Architecture::kKernelStack, cost, cfg);
  const auto sidecar = RunPerfModel(Architecture::kSidecarCore, cost, cfg);
  const auto bypass = RunPerfModel(Architecture::kBypass, cost, cfg);
  const auto kopi = RunPerfModel(Architecture::kKopi, cost, cfg);
  Claims c;
  c.kopi_tracks_bypass =
      kopi.throughput_pps >= bypass.throughput_pps * 0.9;
  c.kernel_slowest =
      kernel.throughput_pps <= sidecar.throughput_pps &&
      kernel.throughput_pps <= kopi.throughput_pps &&
      kernel.throughput_pps <= bypass.throughput_pps;
  c.kopi_beats_sidecar = kopi.throughput_pps > sidecar.throughput_pps;
  return c;
}

// Applies `scale` to one knob of the model.
using Knob = void (*)(sim::CostModel&, double);
struct NamedKnob {
  const char* name;
  Knob apply;
};

const NamedKnob kKnobs[] = {
    {"syscall", [](sim::CostModel& m, double s) {
       m.syscall_ns = static_cast<Nanos>(static_cast<double>(m.syscall_ns) * s);
     }},
    {"context_switch", [](sim::CostModel& m, double s) {
       m.context_switch_ns = static_cast<Nanos>(static_cast<double>(m.context_switch_ns) * s);
     }},
    {"kernel_stack", [](sim::CostModel& m, double s) {
       m.kernel_stack_per_packet_ns =
           static_cast<Nanos>(static_cast<double>(m.kernel_stack_per_packet_ns) * s);
     }},
    {"copy_per_byte", [](sim::CostModel& m, double s) {
       m.copy_ns_per_byte *= s;
     }},
    {"cross_core", [](sim::CostModel& m, double s) {
       m.cross_core_handoff_ns =
           static_cast<Nanos>(static_cast<double>(m.cross_core_handoff_ns) * s);
     }},
    {"sidecar_pkt", [](sim::CostModel& m, double s) {
       m.sidecar_per_packet_ns =
           static_cast<Nanos>(static_cast<double>(m.sidecar_per_packet_ns) * s);
     }},
    {"mmio_write", [](sim::CostModel& m, double s) {
       m.mmio_write_ns = static_cast<Nanos>(static_cast<double>(m.mmio_write_ns) * s);
     }},
    {"dma_setup", [](sim::CostModel& m, double s) {
       m.dma_setup_ns = static_cast<Nanos>(static_cast<double>(m.dma_setup_ns) * s);
     }},
    {"nic_stage", [](sim::CostModel& m, double s) {
       m.nic_stage_latency_ns =
           static_cast<Nanos>(static_cast<double>(m.nic_stage_latency_ns) * s);
     }},
    {"overlay_instr", [](sim::CostModel& m, double s) {
       m.overlay_instr_ns = static_cast<Nanos>(
           std::max(1.0, static_cast<double>(m.overlay_instr_ns) * s));
     }},
};

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("Sensitivity: do E1's conclusions survive cost-model\n");
  std::printf("perturbation? (each knob x0.5 / x2, plus random joints)\n");
  std::printf("=====================================================\n\n");

  int points = 0, held = 0;
  std::printf("%-20s %6s %12s %12s %12s\n", "perturbation", "scale",
              "kopi~bypass", "kernel last", "kopi>sidecar");
  for (const auto& knob : kKnobs) {
    for (const double scale : {0.5, 2.0}) {
      sim::CostModel cost;
      knob.apply(cost, scale);
      const Claims c = Evaluate(cost);
      ++points;
      held += c.all_hold() ? 1 : 0;
      std::printf("%-20s %6.1f %12s %12s %12s\n", knob.name, scale,
                  c.kopi_tracks_bypass ? "yes" : "NO",
                  c.kernel_slowest ? "yes" : "NO",
                  c.kopi_beats_sidecar ? "yes" : "NO");
    }
  }

  // Random joint perturbations: every knob scaled independently in
  // [0.33, 3.0] (log-uniform-ish via uniform exponent).
  Rng rng(2026);
  int joint_held = 0;
  int fail_tracks = 0, fail_kernel = 0, fail_sidecar = 0;
  constexpr int kJointTrials = 200;
  for (int t = 0; t < kJointTrials; ++t) {
    sim::CostModel cost;
    for (const auto& knob : kKnobs) {
      const double exponent = rng.NextDouble() * 2.0 - 1.0;  // [-1, 1]
      knob.apply(cost, std::pow(3.0, exponent));
    }
    const Claims c = Evaluate(cost);
    if (c.all_hold()) {
      ++joint_held;
    }
    fail_tracks += c.kopi_tracks_bypass ? 0 : 1;
    fail_kernel += c.kernel_slowest ? 0 : 1;
    fail_sidecar += c.kopi_beats_sidecar ? 0 : 1;
  }

  std::printf("\nsingle-knob grid: %d/%d points uphold all claims\n", held,
              points);
  std::printf(
      "random joint perturbations (all knobs in [1/3, 3]x): %d/%d\n"
      "  violations by claim: kopi~bypass %d, kernel-last %d, "
      "kopi>sidecar %d\n"
      "  (the paper's actual hypotheses — KOPI ~= bypass and KOPI beats\n"
      "   the sidecar — hold at every point; the only order that can flip\n"
      "   under extreme joint draws is kernel-stack vs sidecar, when the\n"
      "   kernel is made ~3x cheaper and the sidecar ~3x dearer at once)\n",
      joint_held, kJointTrials, fail_tracks, fail_kernel, fail_sidecar);
  std::printf(
      "\nThe architecture ordering — KOPI ~= bypass, kernel stack last,\n"
      "sidecar in between — is a structural property of where work\n"
      "happens, not a coincidence of the chosen constants.\n");
  return 0;
}
