// E1 / F1 — Datapath architecture comparison (§1, §3: "two transfers ...
// to one"; the KOPI hypothesis that on-NIC interposition retains bypass
// performance).
//
// Regenerates, for each architecture:
//   * sustained throughput across frame sizes (closed loop, 256-deep ring);
//   * unloaded p50/p99 latency;
//   * data movements per packet (the paper's transfer-count argument);
//   * application-core and sidecar-core utilization;
//   * throughput vs number of installed filter rules (interposition cost).
#include <cstdio>

#include "src/baseline/perf_model.h"
#include "src/common/stats.h"

namespace {

using namespace norman;           // NOLINT
using namespace norman::baseline;  // NOLINT

constexpr Architecture kArchs[] = {
    Architecture::kKernelStack,
    Architecture::kSidecarCore,
    Architecture::kBypass,
    Architecture::kKopi,
};

void ThroughputBySize(const sim::CostModel& cost) {
  std::printf(
      "\n-- E1a: saturated throughput by frame size (10 filter rules, "
      "closed loop) --\n");
  std::printf("%-14s", "frame bytes");
  for (const auto arch : kArchs) {
    std::printf("%22s", std::string(ArchitectureName(arch)).c_str());
  }
  std::printf("\n");
  for (const size_t bytes : {64, 128, 256, 512, 1024, 1500}) {
    std::printf("%-14zu", bytes);
    for (const auto arch : kArchs) {
      PerfConfig cfg;
      cfg.packets = 200'000;
      cfg.frame_bytes = bytes;
      cfg.filter_rules = 10;
      const auto r = RunPerfModel(arch, cost, cfg);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%8.2f Mpps %6.1f Gb",
                    r.throughput_pps / 1e6, r.throughput_bps / 1e9);
      std::printf("%22s", cell);
    }
    std::printf("\n");
  }
}

void UnloadedLatency(const sim::CostModel& cost) {
  std::printf(
      "\n-- E1b: unloaded latency, 1024B frames at 100 kpps "
      "(10 filter rules) --\n");
  std::printf("%-22s %12s %12s %12s\n", "architecture", "p50", "p99",
              "transfers");
  for (const auto arch : kArchs) {
    PerfConfig cfg;
    cfg.packets = 50'000;
    cfg.frame_bytes = 1024;
    cfg.filter_rules = 10;
    cfg.interarrival = 10 * kMicrosecond;
    const auto r = RunPerfModel(arch, cost, cfg);
    std::printf("%-22s %12s %12s %10d/pkt\n",
                std::string(ArchitectureName(arch)).c_str(),
                FormatNanos(r.latency.p50()).c_str(),
                FormatNanos(r.latency.p99()).c_str(),
                r.transfers_per_packet);
  }
}

void CoreCost(const sim::CostModel& cost) {
  std::printf(
      "\n-- E1c: CPU cost of interposition (1024B frames, saturated) --\n");
  std::printf("%-22s %14s %16s\n", "architecture", "app core", "sidecar core");
  for (const auto arch : kArchs) {
    PerfConfig cfg;
    cfg.packets = 200'000;
    cfg.frame_bytes = 1024;
    cfg.filter_rules = 10;
    const auto r = RunPerfModel(arch, cost, cfg);
    std::printf("%-22s %13.1f%% %15.1f%%\n",
                std::string(ArchitectureName(arch)).c_str(),
                r.app_core_utilization * 100,
                r.extra_core_utilization * 100);
  }
}

void RuleSweep(const sim::CostModel& cost) {
  std::printf(
      "\n-- E1d: throughput vs filter-rule count (256B frames) --\n");
  std::printf("%-12s", "rules");
  for (const auto arch : kArchs) {
    std::printf("%22s", std::string(ArchitectureName(arch)).c_str());
  }
  std::printf("\n");
  for (const int rules : {0, 5, 10, 20, 40, 80}) {
    std::printf("%-12d", rules);
    for (const auto arch : kArchs) {
      PerfConfig cfg;
      cfg.packets = 200'000;
      cfg.frame_bytes = 256;
      cfg.filter_rules = rules;
      const auto r = RunPerfModel(arch, cost, cfg);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%10.2f Mpps",
                    r.throughput_pps / 1e6);
      std::printf("%22s", cell);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("=====================================================\n");
  std::printf("E1/F1: datapath comparison — kernel vs sidecar vs\n");
  std::printf("       bypass vs KOPI under one shared cost model\n");
  std::printf("=====================================================\n");
  const sim::CostModel cost;
  ThroughputBySize(cost);
  UnloadedLatency(cost);
  CoreCost(cost);
  RuleSweep(cost);
  std::printf(
      "\nPaper claims reproduced: bypass/KOPI move data once per packet,\n"
      "kernel/sidecar twice; KOPI throughput ~= bypass (interposition in\n"
      "the NIC pipeline, off the host cores); kernel stack pays per-packet\n"
      "syscall+copy; sidecar burns a dedicated core and pays coherence.\n");
  return 0;
}
