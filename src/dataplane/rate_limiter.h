// Per-connection rate limiting on the NIC (SENIC / PicNIC style; §6 cites
// both among the offloads KOPI subsumes, and §4.2 lists congestion control
// in the on-NIC dataplane).
//
// A scheduler wrapper: packets are queued per connection, each connection
// paced by its own token bucket (kernel-configured), and conformant packets
// are released to an inner work-conserving discipline (FIFO by default,
// WFQ if installed). Unlimited connections bypass the pacing stage.
//
// This is also the enforcement point a kernel congestion-control module
// would drive: the kernel observes the network (ECN, RTT) and adjusts
// per-connection rates; the NIC enforces them at line rate.
#ifndef NORMAN_DATAPLANE_RATE_LIMITER_H_
#define NORMAN_DATAPLANE_RATE_LIMITER_H_

#include <deque>
#include <map>
#include <memory>

#include "src/nic/fifo_scheduler.h"
#include "src/nic/pipeline.h"

namespace norman::dataplane {

class PacedScheduler : public nic::Scheduler {
 public:
  // inner: the discipline conformant packets drain into (owned).
  explicit PacedScheduler(std::unique_ptr<nic::Scheduler> inner =
                              std::make_unique<nic::FifoScheduler>(),
                          size_t per_conn_capacity = 1024);

  // Transparent to tooling: reports the inner discipline's name (tc shows
  // "wfq", not the pacing shim). Pacing state is queried via HasRate.
  std::string_view name() const override { return inner_->name(); }

  // The pacer itself keys on ctx.conn only; whether parsed headers are
  // needed is the inner discipline's call.
  bool NeedsClassification() const override {
    return inner_->NeedsClassification();
  }

  // Kernel-facing configuration. rate 0 removes the limit.
  void SetRate(net::ConnectionId conn, BitsPerSecond rate_bps,
               uint64_t burst_bytes);
  void ClearRate(net::ConnectionId conn);
  bool HasRate(net::ConnectionId conn) const {
    return flows_.contains(conn);
  }

  bool Enqueue(net::PacketPtr packet,
               const overlay::PacketContext& ctx) override;
  net::PacketPtr Dequeue(Nanos now) override;
  Nanos NextEligibleTime(Nanos now) const override;
  size_t backlog_packets() const override;
  // A pacer-queue overflow is a rate-limit drop; a refusal by the inner
  // discipline keeps the inner discipline's reason (queue overflow).
  DropReason last_drop_reason() const override { return last_drop_reason_; }

  uint64_t paced_drops() const { return paced_drops_; }
  // Packets the pacer released but the inner discipline refused (inner
  // queue overflow at hand-off time).
  uint64_t inner_overflow_drops() const { return inner_overflow_drops_; }

  // Backlog already released to the inner discipline (i.e. contending for
  // the link, not waiting on a pacer) — the congestion signal a kernel
  // rate controller reads.
  size_t inner_backlog() const { return inner_->backlog_packets(); }

 private:
  struct FlowPacer {
    BitsPerSecond rate_bps = 0;
    uint64_t burst_bytes = 0;
    double tokens = 0;
    Nanos last_refill = 0;
    std::deque<net::PacketPtr> queue;

    void Refill(Nanos now);
    // Time at which the head packet becomes conformant (now if already).
    Nanos HeadEligibleAt(Nanos now) const;
  };

  // Moves every conformant head packet into the inner discipline.
  void ReleaseConformant(Nanos now);

  std::unique_ptr<nic::Scheduler> inner_;
  size_t per_conn_capacity_;
  std::map<net::ConnectionId, FlowPacer> flows_;
  // Contexts must be re-synthesized for the inner discipline; we keep the
  // conn metadata captured at enqueue.
  std::map<const net::Packet*, overlay::ConnMetadata> pending_meta_;
  uint64_t paced_drops_ = 0;
  uint64_t inner_overflow_drops_ = 0;
  DropReason last_drop_reason_ = DropReason::kSchedOverflow;
};

}  // namespace norman::dataplane

#endif  // NORMAN_DATAPLANE_RATE_LIMITER_H_
