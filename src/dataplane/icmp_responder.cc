#include "src/dataplane/icmp_responder.h"

namespace norman::dataplane {

nic::StageResult IcmpResponder::Process(net::Packet& packet,
                                        const overlay::PacketContext& ctx) {
  nic::StageResult result;
  if (ctx.direction != net::Direction::kRx || ctx.parsed == nullptr ||
      !ctx.parsed->is_icmp() ||
      ctx.parsed->icmp->type != net::IcmpType::kEchoRequest ||
      ctx.parsed->ipv4->dst != local_ip_) {
    return result;
  }
  const auto& p = *ctx.parsed;
  if (inject_) {
    // Echo the payload back, addresses reversed.
    const auto payload =
        packet.bytes().subspan(p.payload_offset);
    net::FrameEndpoints ep{local_mac_, p.eth.src, local_ip_, p.ipv4->src};
    auto reply = net::BuildIcmpEchoPacket(ep, net::IcmpType::kEchoReply,
                                          p.icmp->identifier,
                                          p.icmp->sequence, payload);
    inject_(std::move(reply));
  }
  ++echo_replies_;
  result.verdict = nic::Verdict::kDrop;  // consumed by the NIC
  result.drop_reason = DropReason::kNicConsumed;
  return result;
}

}  // namespace norman::dataplane
