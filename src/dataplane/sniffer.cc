#include "src/dataplane/sniffer.h"

#include "src/common/logging.h"
#include "src/overlay/interpreter.h"
#include "src/overlay/verifier.h"

namespace norman::dataplane {

SnifferTap::SnifferTap(sim::Simulator* sim, uint32_t snaplen,
                       size_t max_records)
    : sim_(sim),
      snaplen_(snaplen),
      max_records_(max_records),
      pcap_(snaplen),
      overflow_(sim->metrics().GetCounter("sniffer.overflow")) {}

uint64_t SnifferTap::overflow() const { return overflow_->value(); }

Status SnifferTap::SetFilter(std::optional<overlay::Program> program) {
  if (program.has_value()) {
    NORMAN_RETURN_IF_ERROR(overlay::VerifyProgram(*program));
  }
  filter_ = std::move(program);
  return OkStatus();
}

void SnifferTap::Clear() {
  records_.clear();
  pcap_ = net::PcapWriter(snaplen_);
}

nic::StageResult SnifferTap::Process(net::Packet& packet,
                                     const overlay::PacketContext& ctx) {
  nic::StageResult result;  // a tap never alters the verdict
  if (!capturing_) {
    return result;
  }
  if (filter_.has_value()) {
    auto exec = overlay::Execute(*filter_, ctx);
    NORMAN_CHECK(exec.ok()) << exec.status();
    result.overlay_instructions = exec->instructions_executed;
    if (exec->verdict == 0) {
      return result;
    }
  }
  if (records_.size() >= max_records_) {
    // Buffer full (tcpdump -c semantics): the match is counted, not kept,
    // and the pcap stream stays exactly the retained records.
    overflow_->Increment();
    return result;
  }
  CaptureRecord rec;
  rec.timestamp = sim_->Now();
  rec.direction = ctx.direction;
  rec.owner = ctx.conn;
  rec.frame_size = packet.size();
  if (ctx.parsed != nullptr) {
    const auto& p = *ctx.parsed;
    rec.eth_type = p.eth.ether_type;
    if (p.is_ipv4()) {
      rec.ip_proto = static_cast<uint8_t>(p.ipv4->protocol);
      rec.src_ip = p.ipv4->src;
      rec.dst_ip = p.ipv4->dst;
    }
    if (auto flow = p.flow()) {
      rec.src_port = flow->src_port;
      rec.dst_port = flow->dst_port;
    }
    if (p.is_arp()) {
      rec.is_arp_request = p.arp->op == net::ArpOp::kRequest;
      rec.src_ip = p.arp->sender_ip;
      rec.dst_ip = p.arp->target_ip;
    }
  }
  records_.push_back(rec);
  pcap_.AddRecord(rec.timestamp, packet.bytes());
  return result;
}

}  // namespace norman::dataplane
