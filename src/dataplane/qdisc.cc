#include "src/dataplane/qdisc.h"

#include <algorithm>
#include <cmath>

#include "src/overlay/verifier.h"

namespace norman::dataplane {

Classifier ClassifyByUid(std::map<uint32_t, uint32_t> uid_to_class) {
  return [map = std::move(uid_to_class)](const overlay::PacketContext& ctx) {
    const auto it = map.find(ctx.conn.owner_uid);
    return it == map.end() ? 0u : it->second;
  };
}

Classifier ClassifyByCgroup(std::map<uint32_t, uint32_t> cgroup_to_class) {
  return
      [map = std::move(cgroup_to_class)](const overlay::PacketContext& ctx) {
        const auto it = map.find(ctx.conn.owner_cgroup);
        return it == map.end() ? 0u : it->second;
      };
}

Classifier ClassifyByDscp(std::map<uint8_t, uint32_t> dscp_to_class) {
  return [map = std::move(dscp_to_class)](const overlay::PacketContext& ctx) {
    const auto dscp =
        static_cast<uint8_t>(ctx.ReadField(overlay::Field::kIpDscp));
    const auto it = map.find(dscp);
    return it == map.end() ? 0u : it->second;
  };
}

Classifier ClassifyByOverlay(overlay::Program program) {
  NORMAN_CHECK(overlay::VerifyProgram(program).ok())
      << "classifier overlay program failed verification";
  return [prog = std::move(program)](const overlay::PacketContext& ctx) {
    auto r = overlay::Execute(prog, ctx);
    NORMAN_CHECK(r.ok()) << r.status();
    return static_cast<uint32_t>(r->verdict);
  };
}

// ---- PrioQdisc --------------------------------------------------------------

PrioQdisc::PrioQdisc(uint32_t num_bands, Classifier classifier,
                     size_t per_band_capacity)
    : bands_(num_bands == 0 ? 1 : num_bands),
      classifier_(std::move(classifier)),
      per_band_capacity_(per_band_capacity) {}

bool PrioQdisc::Enqueue(net::PacketPtr packet,
                        const overlay::PacketContext& ctx) {
  uint32_t band = classifier_(ctx);
  if (band >= bands_.size()) {
    band = static_cast<uint32_t>(bands_.size()) - 1;  // clamp to lowest prio
  }
  if (bands_[band].queue.size() >= per_band_capacity_) {
    ++bands_[band].drops;
    return false;
  }
  bands_[band].queue.push_back(std::move(packet));
  return true;
}

net::PacketPtr PrioQdisc::Dequeue(Nanos /*now*/) {
  for (Band& band : bands_) {
    if (!band.queue.empty()) {
      net::PacketPtr p = std::move(band.queue.front());
      band.queue.pop_front();
      return p;
    }
  }
  return nullptr;
}

Nanos PrioQdisc::NextEligibleTime(Nanos /*now*/) const { return -1; }

size_t PrioQdisc::backlog_packets() const {
  size_t n = 0;
  for (const Band& band : bands_) {
    n += band.queue.size();
  }
  return n;
}

// ---- TokenBucketQdisc -------------------------------------------------------

TokenBucketQdisc::TokenBucketQdisc(BitsPerSecond rate_bps,
                                   uint64_t burst_bytes,
                                   size_t capacity_packets)
    : rate_bps_(rate_bps),
      burst_bytes_(burst_bytes),
      capacity_(capacity_packets),
      tokens_bytes_(static_cast<double>(burst_bytes)) {}

void TokenBucketQdisc::Refill(Nanos now) {
  if (now <= last_refill_) {
    return;
  }
  const double elapsed_s =
      static_cast<double>(now - last_refill_) / 1e9;
  tokens_bytes_ = std::min(
      static_cast<double>(burst_bytes_),
      tokens_bytes_ + elapsed_s * static_cast<double>(rate_bps_) / 8.0);
  last_refill_ = now;
}

bool TokenBucketQdisc::Enqueue(net::PacketPtr packet,
                               const overlay::PacketContext& /*ctx*/) {
  if (queue_.size() >= capacity_) {
    ++drops_;
    return false;
  }
  queue_.push_back(std::move(packet));
  return true;
}

net::PacketPtr TokenBucketQdisc::Dequeue(Nanos now) {
  if (queue_.empty()) {
    return nullptr;
  }
  Refill(now);
  const double need = static_cast<double>(queue_.front()->size());
  if (tokens_bytes_ + 1e-9 < need) {
    return nullptr;  // not yet conformant
  }
  tokens_bytes_ -= need;
  net::PacketPtr p = std::move(queue_.front());
  queue_.pop_front();
  return p;
}

Nanos TokenBucketQdisc::NextEligibleTime(Nanos now) const {
  if (queue_.empty() || rate_bps_ == 0) {
    return -1;
  }
  // Tokens as of `now` (mirror of Refill without mutation).
  double tokens = tokens_bytes_;
  if (now > last_refill_) {
    const double elapsed_s = static_cast<double>(now - last_refill_) / 1e9;
    tokens = std::min(
        static_cast<double>(burst_bytes_),
        tokens + elapsed_s * static_cast<double>(rate_bps_) / 8.0);
  }
  const double need = static_cast<double>(queue_.front()->size());
  if (tokens + 1e-9 >= need) {
    return now;
  }
  const double deficit_bytes = need - tokens;
  const double wait_ns =
      deficit_bytes * 8.0 * 1e9 / static_cast<double>(rate_bps_);
  return now + static_cast<Nanos>(std::ceil(wait_ns));
}

// ---- DrrQdisc ---------------------------------------------------------------

DrrQdisc::DrrQdisc(Classifier classifier, uint64_t quantum_bytes,
                   size_t per_class_capacity)
    : classifier_(std::move(classifier)),
      quantum_(quantum_bytes == 0 ? 1 : quantum_bytes),
      per_class_capacity_(per_class_capacity) {}

bool DrrQdisc::Enqueue(net::PacketPtr packet,
                       const overlay::PacketContext& ctx) {
  const uint32_t cls = classifier_(ctx);
  ClassState& state = classes_[cls];
  if (state.queue.size() >= per_class_capacity_) {
    return false;
  }
  state.queue.push_back(std::move(packet));
  ++backlog_;
  if (!state.in_active_list) {
    state.in_active_list = true;
    state.deficit = quantum_;
    active_.push_back(cls);
  }
  return true;
}

net::PacketPtr DrrQdisc::Dequeue(Nanos /*now*/) {
  // Deficit grows by one quantum per full rotation, so the loop terminates
  // once some class accumulates enough for its head packet. Bound the scan
  // defensively anyway.
  const size_t max_rotations = 64 + backlog_;
  for (size_t step = 0; step < active_.size() * max_rotations + 1; ++step) {
    if (active_.empty()) {
      return nullptr;
    }
    const uint32_t cls = active_.front();
    ClassState& state = classes_[cls];
    if (state.queue.empty()) {
      state.in_active_list = false;
      state.deficit = 0;
      active_.pop_front();
      continue;
    }
    const uint64_t head_size = state.queue.front()->size();
    if (state.deficit >= head_size) {
      state.deficit -= head_size;
      net::PacketPtr p = std::move(state.queue.front());
      state.queue.pop_front();
      --backlog_;
      if (state.queue.empty()) {
        state.in_active_list = false;
        state.deficit = 0;
        active_.pop_front();
      }
      return p;
    }
    // Visit over: recharge and rotate to the back.
    state.deficit += quantum_;
    active_.pop_front();
    active_.push_back(cls);
  }
  return nullptr;
}

Nanos DrrQdisc::NextEligibleTime(Nanos /*now*/) const { return -1; }

// ---- WfqQdisc ---------------------------------------------------------------

WfqQdisc::WfqQdisc(Classifier classifier, size_t per_class_capacity)
    : classifier_(std::move(classifier)),
      per_class_capacity_(per_class_capacity) {}

void WfqQdisc::SetWeight(uint32_t class_id, double weight) {
  NORMAN_CHECK(weight > 0.0) << "WFQ weight must be positive";
  flows_[class_id].weight = weight;
}

bool WfqQdisc::Enqueue(net::PacketPtr packet,
                       const overlay::PacketContext& ctx) {
  const uint32_t cls = classifier_(ctx);
  FlowState& flow = flows_[cls];
  if (flow.queue.size() >= per_class_capacity_) {
    return false;
  }
  // Self-clocked fair queueing (SCFQ): finish tag = max(V, last_finish) +
  // L / w. V advances to the tag of the packet in service.
  const double start = std::max(virtual_time_, flow.last_finish);
  const double finish =
      start + static_cast<double>(packet->size()) / flow.weight;
  flow.last_finish = finish;
  flow.queue.push_back(std::move(packet));
  flow.finish_times.push_back(finish);
  ++backlog_;
  return true;
}

net::PacketPtr WfqQdisc::Dequeue(Nanos /*now*/) {
  FlowState* best = nullptr;
  double best_finish = 0.0;
  for (auto& [cls, flow] : flows_) {
    if (flow.queue.empty()) {
      continue;
    }
    const double f = flow.finish_times.front();
    if (best == nullptr || f < best_finish) {
      best = &flow;
      best_finish = f;
    }
  }
  if (best == nullptr) {
    return nullptr;
  }
  virtual_time_ = std::max(virtual_time_, best_finish);
  net::PacketPtr p = std::move(best->queue.front());
  best->queue.pop_front();
  best->finish_times.pop_front();
  best->dequeued_bytes += p->size();
  --backlog_;
  return p;
}

Nanos WfqQdisc::NextEligibleTime(Nanos /*now*/) const { return -1; }

uint64_t WfqQdisc::dequeued_bytes(uint32_t class_id) const {
  const auto it = flows_.find(class_id);
  return it == flows_.end() ? 0 : it->second.dequeued_bytes;
}

}  // namespace norman::dataplane
