#include "src/dataplane/filter_engine.h"

#include "src/common/logging.h"
#include "src/overlay/interpreter.h"
#include "src/overlay/verifier.h"

namespace norman::dataplane {
namespace {

using overlay::Field;
using overlay::Instruction;
using overlay::Opcode;

constexpr int64_t kNextPlaceholder = -1;

int64_t EncodeVerdict(uint32_t rule_index, FilterAction action) {
  return (static_cast<int64_t>(rule_index) << 2) |
         static_cast<int64_t>(action);
}

// Emits the match block for one rule. Instructions with jump_target ==
// kNextPlaceholder are patched to the next rule's block start afterwards.
void EmitRule(const FilterRule& r, uint32_t index, overlay::Program* out) {
  auto mismatch_if = [out](Opcode cmp, uint8_t reg, int64_t value) {
    Instruction ins = Instruction::JmpCmpImm(cmp, reg, value,
                                             kNextPlaceholder);
    out->push_back(ins);
  };
  auto load_and_mismatch_ne = [&](Field f, int64_t expected) {
    out->push_back(Instruction::Ldf(1, f));
    mismatch_if(Opcode::kJne, 1, expected);
  };

  if (r.direction) {
    load_and_mismatch_ne(Field::kDirection,
                         *r.direction == net::Direction::kRx ? 1 : 0);
  }
  if (r.proto) {
    // Non-IPv4 frames (is_ipv4 == 0) can never match a proto rule.
    load_and_mismatch_ne(Field::kIsIpv4, 1);
    load_and_mismatch_ne(Field::kIpProto, static_cast<int64_t>(*r.proto));
  }
  auto emit_prefix_match = [&](Field f, net::Ipv4Address ip,
                               uint32_t prefix) {
    out->push_back(Instruction::Ldf(1, f));
    if (prefix < 32) {
      out->push_back(Instruction::AluImm(Opcode::kShr, 1, 32 - prefix));
      mismatch_if(Opcode::kJne, 1, ip.addr >> (32 - prefix));
    } else {
      mismatch_if(Opcode::kJne, 1, ip.addr);
    }
  };
  if (r.src_ip) {
    emit_prefix_match(Field::kIpSrc, *r.src_ip, r.src_ip_prefix.value_or(32));
  }
  if (r.dst_ip) {
    emit_prefix_match(Field::kIpDst, *r.dst_ip, r.dst_ip_prefix.value_or(32));
  }
  auto emit_port_match = [&](Field f, const PortRange& range) {
    out->push_back(Instruction::Ldf(1, f));
    if (range.lo == range.hi) {
      mismatch_if(Opcode::kJne, 1, range.lo);
    } else {
      mismatch_if(Opcode::kJlt, 1, range.lo);
      mismatch_if(Opcode::kJgt, 1, range.hi);
    }
  };
  if (r.src_port) {
    emit_port_match(Field::kSrcPort, *r.src_port);
  }
  if (r.dst_port) {
    emit_port_match(Field::kDstPort, *r.dst_port);
  }
  if (r.owner_uid) {
    load_and_mismatch_ne(Field::kOwnerUid, *r.owner_uid);
  }
  if (r.owner_pid) {
    load_and_mismatch_ne(Field::kOwnerPid, *r.owner_pid);
  }
  if (r.owner_comm) {
    load_and_mismatch_ne(Field::kOwnerComm, *r.owner_comm);
  }
  if (r.owner_cgroup) {
    load_and_mismatch_ne(Field::kOwnerCgroup, *r.owner_cgroup);
  }
  // All predicates held: return this rule's encoded action.
  out->push_back(Instruction::RetImm(EncodeVerdict(index, r.action)));
}

}  // namespace

namespace {

// Compiles the subsequence of `rules` selected by `pred` into one
// first-match program, preserving each rule's original chain index in the
// encoded verdict (hit attribution stays index-aligned with rules()).
template <typename Pred>
overlay::Program CompileFilterSubset(const std::vector<FilterRule>& rules,
                                     FilterAction default_action,
                                     Pred&& pred) {
  overlay::Program program;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (!pred(rules[i])) {
      continue;
    }
    const size_t block_start = program.size();
    EmitRule(rules[i], static_cast<uint32_t>(i), &program);
    // Patch this block's "mismatch -> next rule" placeholders to the index
    // just past the block (start of the next rule / default tail).
    const int64_t next = static_cast<int64_t>(program.size());
    for (size_t pc = block_start; pc < program.size(); ++pc) {
      if (overlay::IsJump(program[pc].op) &&
          program[pc].jump_target == kNextPlaceholder) {
        program[pc].jump_target = next;
      }
    }
  }
  program.push_back(Instruction::RetImm(
      EncodeVerdict(kDefaultRuleIndex, default_action)));
  return program;
}

}  // namespace

overlay::Program CompileFilterChain(const std::vector<FilterRule>& rules,
                                    FilterAction default_action) {
  return CompileFilterSubset(rules, default_action,
                             [](const FilterRule&) { return true; });
}

FilterEngine::FilterEngine(FilterAction default_action)
    : default_action_(default_action) {
  NORMAN_CHECK(Recompile().ok());
}

StatusOr<size_t> FilterEngine::AppendRule(const FilterRule& rule) {
  rules_.push_back(rule);
  hits_.push_back(0);
  const Status s = Recompile();
  if (!s.ok()) {
    rules_.pop_back();
    hits_.pop_back();
    NORMAN_CHECK(Recompile().ok());
    return ResourceExhaustedError(
        "filter: chain no longer fits overlay instruction memory (" +
        s.message() + ")");
  }
  return rules_.size() - 1;
}

Status FilterEngine::InsertRule(size_t index, const FilterRule& rule) {
  if (index > rules_.size()) {
    return OutOfRangeError("filter: insert index past end of chain");
  }
  rules_.insert(rules_.begin() + static_cast<ptrdiff_t>(index), rule);
  hits_.insert(hits_.begin() + static_cast<ptrdiff_t>(index), 0);
  const Status s = Recompile();
  if (!s.ok()) {
    rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(index));
    hits_.erase(hits_.begin() + static_cast<ptrdiff_t>(index));
    NORMAN_CHECK(Recompile().ok());
    return ResourceExhaustedError(
        "filter: chain no longer fits overlay instruction memory");
  }
  return OkStatus();
}

Status FilterEngine::DeleteRule(size_t index) {
  if (index >= rules_.size()) {
    return OutOfRangeError("filter: no rule at index");
  }
  rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(index));
  hits_.erase(hits_.begin() + static_cast<ptrdiff_t>(index));
  NORMAN_CHECK(Recompile().ok());
  return OkStatus();
}

void FilterEngine::Flush() {
  rules_.clear();
  hits_.clear();
  NORMAN_CHECK(Recompile().ok());
}

void FilterEngine::SetDefaultAction(FilterAction action) {
  default_action_ = action;
  NORMAN_CHECK(Recompile().ok());
}

Status FilterEngine::Recompile() {
  overlay::Program candidate = CompileFilterChain(rules_, default_action_);
  NORMAN_RETURN_IF_ERROR(overlay::VerifyProgram(candidate));
  compiled_ = std::move(candidate);
  // Per-protocol buckets are strict subsequences of a chain that just
  // verified, so their verification cannot fail.
  const auto bucket = [&](net::IpProto proto) {
    overlay::Program p = CompileFilterSubset(
        rules_, default_action_,
        [proto](const FilterRule& r) { return !r.proto || *r.proto == proto; });
    NORMAN_CHECK(overlay::VerifyProgram(p).ok());
    return p;
  };
  tcp_program_ = bucket(net::IpProto::kTcp);
  udp_program_ = bucket(net::IpProto::kUdp);
  icmp_program_ = bucket(net::IpProto::kIcmp);
  return OkStatus();
}

const overlay::Program& FilterEngine::compiled_for(net::IpProto proto) const {
  switch (proto) {
    case net::IpProto::kTcp:
      return tcp_program_;
    case net::IpProto::kUdp:
      return udp_program_;
    case net::IpProto::kIcmp:
      return icmp_program_;
  }
  return compiled_;
}

nic::StageResult FilterEngine::Process(net::Packet& /*packet*/,
                                       const overlay::PacketContext& ctx) {
  // Bucket dispatch: a parsed IPv4 frame runs only the rules its protocol
  // could match; everything else (ARP, unparsed, exotic protos) runs the
  // full chain, whose kIsIpv4/kIpProto guards keep semantics identical.
  const overlay::Program* program = &compiled_;
  if (ctx.parsed != nullptr && ctx.parsed->is_ipv4()) {
    const net::IpProto proto = ctx.parsed->ipv4->protocol;
    if (proto == net::IpProto::kTcp || proto == net::IpProto::kUdp ||
        proto == net::IpProto::kIcmp) {
      program = &compiled_for(proto);
    }
  }
  auto exec = overlay::Execute(*program, ctx);
  NORMAN_CHECK(exec.ok()) << exec.status();
  const auto rule_index = static_cast<uint32_t>(exec->verdict >> 2);
  const auto action = static_cast<FilterAction>(exec->verdict & 0x3);
  if (tp_ != nullptr && tp_->armed(telemetry::Probe::kFilterVerdict)) {
    telemetry::TraceFlow flow{};
    flow.dir = ctx.direction == net::Direction::kTx ? telemetry::kDirTx
                                                    : telemetry::kDirRx;
    // This runs once per packet per chain: walk the headers only if a
    // predicate actually matches on the tuple.
    if (tp_->wants_flow(telemetry::Probe::kFilterVerdict) &&
        ctx.parsed != nullptr) {
      if (const auto tuple = ctx.parsed->flow()) {
        flow.src_ip = tuple->src_ip.addr;
        flow.dst_ip = tuple->dst_ip.addr;
        flow.src_port = tuple->src_port;
        flow.dst_port = tuple->dst_port;
        flow.proto = static_cast<uint8_t>(tuple->proto);
      }
    }
    tp_->Emit(telemetry::Probe::kFilterVerdict, telemetry::Tracepoints::kCoreNic,
              ctx.conn.owner_pid, static_cast<uint64_t>(action), rule_index,
              exec->instructions_executed, &flow);
  }
  if (rule_index == kDefaultRuleIndex) {
    ++default_hits_;
  } else if (rule_index < hits_.size()) {
    ++hits_[rule_index];
  }
  nic::StageResult result;
  result.overlay_instructions = exec->instructions_executed;
  switch (action) {
    case FilterAction::kAccept:
      result.verdict = nic::Verdict::kAccept;
      break;
    case FilterAction::kDrop:
      result.verdict = nic::Verdict::kDrop;
      result.drop_reason = DropReason::kFilterDeny;
      break;
    case FilterAction::kSoftwareFallback:
      result.verdict = nic::Verdict::kSoftwareFallback;
      break;
  }
  return result;
}

}  // namespace norman::dataplane
