#include "src/dataplane/spoof_guard.h"

namespace norman::dataplane {

nic::StageResult SpoofGuard::Process(net::Packet& packet,
                                     const overlay::PacketContext& ctx) {
  nic::StageResult result;
  if (ctx.direction != net::Direction::kTx ||
      ctx.conn.conn_id == net::kUnknownConnection) {
    return result;  // RX, or kernel-originated: exempt
  }
  // Software-fallback re-injections were already checked on first pass.
  if (packet.meta().software_fallback) {
    return result;
  }
  const nic::FlowEntry* entry = flow_table_->Lookup(ctx.conn.conn_id);
  if (entry == nullptr) {
    return result;  // fallback connection: vetted by the kernel path
  }
  if (ctx.parsed == nullptr) {
    // Unparseable bytes from an app ring: never let them out.
    ++spoofed_drops_;
    result.verdict = nic::Verdict::kDrop;
    result.drop_reason = DropReason::kMalformed;
    return result;
  }
  if (ctx.parsed->is_arp()) {
    if (strict_arp_) {
      ++spoofed_drops_;
      result.verdict = nic::Verdict::kDrop;
      result.drop_reason = DropReason::kSpoof;
    }
    return result;  // observable-but-allowed by default (§2 debugging)
  }
  const auto flow = ctx.parsed->flow();
  if (!flow || *flow != entry->tuple) {
    ++spoofed_drops_;
    result.verdict = nic::Verdict::kDrop;
    result.drop_reason = DropReason::kSpoof;
  }
  return result;
}

}  // namespace norman::dataplane
