#include "src/dataplane/overlay_stage.h"

#include "src/common/logging.h"
#include "src/overlay/interpreter.h"

namespace norman::dataplane {

nic::StageResult OverlayStage::Process(net::Packet& /*packet*/,
                                       const overlay::PacketContext& ctx) {
  nic::StageResult result;
  const overlay::Program* program = cp_->OverlaySlot(slot_);
  if (program == nullptr) {
    return result;  // empty slot: pass-through
  }
  auto exec = overlay::Execute(*program, ctx);
  NORMAN_CHECK(exec.ok()) << exec.status();  // slot programs are verified
  ++executions_;
  result.overlay_instructions = exec->instructions_executed;
  switch (exec->verdict) {
    case 0:
      result.verdict = nic::Verdict::kDrop;
      result.drop_reason = DropReason::kPolicy;
      break;
    case 2:
      result.verdict = nic::Verdict::kSoftwareFallback;
      break;
    default:
      result.verdict = nic::Verdict::kAccept;
      break;
  }
  return result;
}

}  // namespace norman::dataplane
