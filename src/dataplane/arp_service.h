// ARP handling with a global + process view (§2 "Debugging").
//
// The service plays two roles:
//  * RX: maintain the host's ARP cache from observed replies/requests and
//    answer requests for locally-owned IPs directly from the NIC (so
//    kernel-bypass apps never need to speak ARP themselves);
//  * TX: observe ARP frames *emitted by applications* and record which
//    connection/process sent them — this is exactly the forensic record
//    Alice needs to trace the flood of bogus ARP requests to the buggy
//    process, which no per-app or hypervisor-level tap could provide.
#ifndef NORMAN_DATAPLANE_ARP_SERVICE_H_
#define NORMAN_DATAPLANE_ARP_SERVICE_H_

#include <functional>
#include <map>
#include <vector>

#include "src/net/packet_builder.h"
#include "src/net/types.h"
#include "src/nic/pipeline.h"
#include "src/sim/simulator.h"

namespace norman::dataplane {

struct ArpCacheEntry {
  net::Ipv4Address ip;
  net::MacAddress mac;
  Nanos updated = 0;
};

// One observed application-originated ARP transmission.
struct ArpTxObservation {
  Nanos timestamp = 0;
  overlay::ConnMetadata owner;
  net::MacAddress claimed_sender_mac;
  net::Ipv4Address claimed_sender_ip;
  net::Ipv4Address target_ip;
  bool is_request = true;
};

class ArpService : public nic::PipelineStage {
 public:
  // `local_ip`/`local_mac`: identity the NIC answers requests for.
  // `inject_tx`: callback the NIC uses to put generated replies on the wire.
  ArpService(sim::Simulator* sim, net::Ipv4Address local_ip,
             net::MacAddress local_mac);

  std::string_view name() const override { return "arp"; }
  // Acts only on ARP frames, which carry no 5-tuple and so never enter the
  // flow cache; for cacheable (IP) flows it is a pure pass-through.
  nic::StageCacheClass cache_class() const override {
    return nic::StageCacheClass::kPure;
  }

  // Additional local addresses (RSS "virtual interface" partitioning gives
  // each tenant an IP on the same NIC).
  void AddLocalAddress(net::Ipv4Address ip);

  void SetReplyInjector(std::function<void(net::PacketPtr)> inject) {
    inject_ = std::move(inject);
  }

  nic::StageResult Process(net::Packet& packet,
                      const overlay::PacketContext& ctx) override;

  const std::map<uint32_t, ArpCacheEntry>& cache() const { return cache_; }
  const std::vector<ArpTxObservation>& tx_observations() const {
    return tx_observations_;
  }
  uint64_t replies_generated() const { return replies_generated_; }

 private:
  sim::Simulator* sim_;
  net::MacAddress local_mac_;
  std::vector<net::Ipv4Address> local_ips_;
  std::map<uint32_t, ArpCacheEntry> cache_;  // keyed by IPv4 addr
  std::vector<ArpTxObservation> tx_observations_;
  std::function<void(net::PacketPtr)> inject_;
  uint64_t replies_generated_ = 0;
};

}  // namespace norman::dataplane

#endif  // NORMAN_DATAPLANE_ARP_SERVICE_H_
