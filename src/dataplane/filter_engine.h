// The on-NIC packet filter (the iptables of Norman).
//
// Rules match on network fields (addresses, ports, protocol, direction) and
// — uniquely for an on-NIC interposition layer — on *process identity*
// (uid-owner, pid-owner, cmd-owner, cgroup), which works because the kernel
// stamps owner metadata into the NIC flow table at connection setup (§2
// "Partitioning Ports", §3 "integrated with the OS").
//
// First-match-wins semantics, like an iptables chain; a configurable default
// policy applies when nothing matches. The ruleset is *compiled to an
// overlay program* and executed by the overlay interpreter — the engine is
// literally running on the simulated soft processor, and its per-packet
// instruction count is charged by the NIC at overlay_instr_ns each.
#ifndef NORMAN_DATAPLANE_FILTER_ENGINE_H_
#define NORMAN_DATAPLANE_FILTER_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/tracepoint.h"
#include "src/net/types.h"
#include "src/nic/pipeline.h"
#include "src/overlay/isa.h"

namespace norman::dataplane {

enum class FilterAction : uint8_t {
  kAccept = 0,
  kDrop = 1,
  kSoftwareFallback = 2,
};

struct PortRange {
  uint16_t lo = 0;
  uint16_t hi = 65535;
  friend bool operator==(const PortRange&, const PortRange&) = default;
};

// All match fields are optional; an unset field matches everything.
struct FilterRule {
  std::string label;  // for tooling output
  std::optional<net::Direction> direction;
  std::optional<net::IpProto> proto;
  std::optional<net::Ipv4Address> src_ip;
  std::optional<uint32_t> src_ip_prefix;  // bits, default 32 when src_ip set
  std::optional<net::Ipv4Address> dst_ip;
  std::optional<uint32_t> dst_ip_prefix;
  std::optional<PortRange> src_port;
  std::optional<PortRange> dst_port;
  // Process view (owner matches).
  std::optional<uint32_t> owner_uid;
  std::optional<uint32_t> owner_pid;
  std::optional<uint32_t> owner_comm;    // interned comm id
  std::optional<uint32_t> owner_cgroup;
  FilterAction action = FilterAction::kAccept;
};

// Compiles a rule chain into a single overlay program implementing
// first-match-wins with `default_action` as the tail. The program's return
// value encodes (rule_index << 2) | action, so the engine can attribute hits
// to rules for counters; the sentinel rule index 0x3fffffff means "default".
overlay::Program CompileFilterChain(const std::vector<FilterRule>& rules,
                                    FilterAction default_action);

inline constexpr uint32_t kDefaultRuleIndex = 0x3fffffff;

class FilterEngine : public nic::PipelineStage {
 public:
  explicit FilterEngine(FilterAction default_action = FilterAction::kAccept);

  std::string_view name() const override { return "filter"; }
  // Rules match on headers and connection identity only — a pure function
  // of the flow key until the rule set changes (which bumps the fast-path
  // epoch through the kernel).
  nic::StageCacheClass cache_class() const override {
    return nic::StageCacheClass::kPure;
  }

  // Rule management (called by the kernel on behalf of iptables).
  // Appends at the end of the chain; returns the rule's index. Fails with
  // ResourceExhausted when the compiled chain would exceed overlay
  // instruction memory.
  StatusOr<size_t> AppendRule(const FilterRule& rule);
  Status InsertRule(size_t index, const FilterRule& rule);
  Status DeleteRule(size_t index);
  void Flush();
  void SetDefaultAction(FilterAction action);

  const std::vector<FilterRule>& rules() const { return rules_; }
  FilterAction default_action() const { return default_action_; }

  // Per-rule hit counters (index-aligned with rules()).
  const std::vector<uint64_t>& hit_counts() const { return hits_; }
  uint64_t default_hits() const { return default_hits_; }

  // The compiled overlay program for the full chain (the bucket used for
  // frames whose protocol has no dedicated bucket).
  const overlay::Program& compiled() const { return compiled_; }

  // The program Process() would run for a frame of `proto` (introspection
  // for tests/tools; kNone-style fallthrough uses compiled()).
  const overlay::Program& compiled_for(net::IpProto proto) const;

  nic::StageResult Process(net::Packet& packet,
                      const overlay::PacketContext& ctx) override;

  // "filter.verdict" probe hookup.
  void AttachTracepoints(telemetry::Tracepoints* tp) { tp_ = tp; }

 private:
  // Rebuilds the compiled program; on failure the ruleset must be restored
  // by the caller before returning.
  Status Recompile();

  FilterAction default_action_;
  std::vector<FilterRule> rules_;
  std::vector<uint64_t> hits_;
  uint64_t default_hits_ = 0;
  // Full chain; also serves frames outside the bucketed protocols (ARP,
  // unparseable, exotic IP protos), where proto-specific rules cannot match
  // anyway thanks to their kIsIpv4/kIpProto guards.
  overlay::Program compiled_;
  // Install-time protocol buckets: the chain restricted to rules that could
  // match that protocol (proto-unset rules plus proto == P), compiled with
  // *original* rule indices so first-match order and per-rule hit
  // attribution are untouched. TCP traffic never scans UDP-only rules.
  overlay::Program tcp_program_;
  overlay::Program udp_program_;
  overlay::Program icmp_program_;
  telemetry::Tracepoints* tp_ = nullptr;
};

}  // namespace norman::dataplane

#endif  // NORMAN_DATAPLANE_FILTER_ENGINE_H_
