// On-NIC packet sniffer tap — the tcpdump of Norman (§2 "Debugging").
//
// Unlike per-application capture under kernel bypass, this tap sits on the
// NIC pipeline and therefore sees *all* traffic crossing the interface
// (global view) annotated with the owning connection/process (process view).
// Captures go to a standard pcap byte stream plus an in-memory record list
// carrying the process metadata, which the norman-tcpdump tool renders.
//
// An optional verified overlay program filters which packets are captured
// (verdict != 0 -> capture), matching tcpdump's BPF expression role.
#ifndef NORMAN_DATAPLANE_SNIFFER_H_
#define NORMAN_DATAPLANE_SNIFFER_H_

#include <optional>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/net/pcap_writer.h"
#include "src/nic/pipeline.h"
#include "src/overlay/isa.h"
#include "src/sim/simulator.h"

namespace norman::dataplane {

struct CaptureRecord {
  Nanos timestamp = 0;
  net::Direction direction = net::Direction::kTx;
  overlay::ConnMetadata owner;  // who sent/receives it (kUnknown if none)
  size_t frame_size = 0;
  // Decoded summary fields for tooling (0 when absent).
  uint16_t eth_type = 0;
  uint8_t ip_proto = 0;
  net::Ipv4Address src_ip;
  net::Ipv4Address dst_ip;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  bool is_arp_request = false;
};

class SnifferTap : public nic::PipelineStage {
 public:
  // `sim` supplies capture timestamps; snaplen as in tcpdump -s,
  // max_records as in tcpdump -c: the first max_records matching packets
  // are retained (records and pcap stay consistent), later matches only
  // bump the "sniffer.overflow" counter. A capture buffer must be bounded
  // — a long-lived tap must not grow without limit.
  explicit SnifferTap(sim::Simulator* sim, uint32_t snaplen = 96,
                      size_t max_records = 65536);

  std::string_view name() const override { return "sniffer"; }
  // Stateful tap: verdicts are cacheable (always accept) but every packet
  // — fast path or slow — must land in the capture buffer.
  nic::StageCacheClass cache_class() const override {
    return nic::StageCacheClass::kObserver;
  }

  // Starts/stops capturing. While stopped the tap is a no-op.
  void Start() { capturing_ = true; }
  void Stop() { capturing_ = false; }
  bool capturing() const { return capturing_; }

  // Installs a capture filter (verified overlay program; verdict != 0
  // captures). Pass std::nullopt to capture everything.
  Status SetFilter(std::optional<overlay::Program> program);

  const std::vector<CaptureRecord>& records() const { return records_; }
  const net::PcapWriter& pcap() const { return pcap_; }
  uint64_t captured() const { return records_.size(); }
  size_t max_records() const { return max_records_; }
  // Matches discarded because the capture buffer was full.
  uint64_t overflow() const;
  void Clear();

  nic::StageResult Process(net::Packet& packet,
                      const overlay::PacketContext& ctx) override;

 private:
  sim::Simulator* sim_;
  uint32_t snaplen_;
  size_t max_records_;
  bool capturing_ = false;
  std::optional<overlay::Program> filter_;
  std::vector<CaptureRecord> records_;
  net::PcapWriter pcap_;
  telemetry::Counter* overflow_;  // "sniffer.overflow"
};

}  // namespace norman::dataplane

#endif  // NORMAN_DATAPLANE_SNIFFER_H_
