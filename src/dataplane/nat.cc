#include "src/dataplane/nat.h"

#include "src/net/packet_builder.h"
#include "src/net/parsed_packet.h"

namespace norman::dataplane {

NatEngine::NatEngine(nic::SramAllocator* sram,
                     net::Ipv4Address private_prefix, uint32_t prefix_len,
                     net::Ipv4Address public_ip, uint16_t port_base,
                     uint16_t port_count)
    : sram_(sram),
      private_prefix_(private_prefix),
      prefix_len_(prefix_len),
      public_ip_(public_ip),
      port_base_(port_base),
      port_count_(port_count) {}

nic::StageResult NatEngine::Process(net::Packet& packet,
                                    const overlay::PacketContext& ctx) {
  nic::StageResult result;
  const net::ParsedPacket* parsed = ctx.parsed;
  if (parsed == nullptr || !parsed->is_ipv4() ||
      (!parsed->is_udp() && !parsed->is_tcp())) {
    return result;
  }
  const auto flow = parsed->flow();
  if (!flow) {
    return result;
  }
  const uint8_t proto = static_cast<uint8_t>(flow->proto);

  if (ctx.direction == net::Direction::kTx) {
    if (!InPrivatePrefix(flow->src_ip)) {
      return result;
    }
    const PrivateKey key{flow->src_ip.addr, flow->src_port, proto};
    auto it = by_private_.find(key);
    if (it == by_private_.end()) {
      // Allocate a public port (linear probe over the pool).
      uint16_t public_port = 0;
      for (uint16_t tried = 0; tried < port_count_; ++tried) {
        const uint16_t candidate = static_cast<uint16_t>(
            port_base_ + (next_port_offset_ + tried) % port_count_);
        const uint32_t pub_key = (uint32_t{candidate} << 8) | proto;
        if (!by_public_.contains(pub_key)) {
          public_port = candidate;
          next_port_offset_ =
              static_cast<uint16_t>((next_port_offset_ + tried + 1) %
                                    port_count_);
          break;
        }
      }
      if (public_port == 0 ||
          !sram_->Allocate("nat", kNatEntryBytes).ok()) {
        // Port pool or NIC memory exhausted: drop rather than leak
        // un-NATed private addresses.
        ++exhausted_drops_;
        result.verdict = nic::Verdict::kDrop;
        result.drop_reason = DropReason::kSramExhausted;
        return result;
      }
      const Mapping m{flow->src_ip, flow->src_port, public_port};
      it = by_private_.emplace(key, m).first;
      by_public_.emplace((uint32_t{public_port} << 8) | proto, m);
    }
    net::RewriteSource(packet.mutable_bytes(), public_ip_,
                       it->second.public_port);
    result.mutated = true;  // cached parse is stale; NIC re-parses
    ++tx_translated_;
    return result;
  }

  // RX: reverse-translate packets addressed to the public endpoint.
  if (flow->dst_ip != public_ip_) {
    return result;
  }
  const uint32_t pub_key = (uint32_t{flow->dst_port} << 8) | proto;
  const auto it = by_public_.find(pub_key);
  if (it == by_public_.end()) {
    return result;  // not ours; let the filter decide
  }
  net::RewriteDestination(packet.mutable_bytes(), it->second.private_ip,
                          it->second.private_port);
  result.mutated = true;  // cached parse is stale; NIC re-parses
  ++rx_translated_;
  return result;
}

}  // namespace norman::dataplane
