#include "src/dataplane/conntrack.h"

#include <vector>

#include "src/net/parsed_packet.h"

namespace norman::dataplane {

Conntrack::Conntrack(nic::SramAllocator* sram, Nanos idle_timeout)
    : sram_(sram), idle_timeout_(idle_timeout) {}

void Conntrack::Advance(ConntrackEntry& entry, uint8_t tcp_flags,
                        bool from_initiator) {
  using net::TcpFlags;
  if (tcp_flags == 0) {
    // Non-TCP: first reply packet establishes.
    if (entry.state == ConnState::kNew && !from_initiator) {
      entry.state = ConnState::kEstablished;
    }
    return;
  }
  if (tcp_flags & TcpFlags::kRst) {
    entry.state = ConnState::kClosed;
    return;
  }
  switch (entry.state) {
    case ConnState::kNew:
      if (tcp_flags & TcpFlags::kSyn) {
        entry.state = ConnState::kSynSent;
      }
      break;
    case ConnState::kSynSent:
      if ((tcp_flags & TcpFlags::kSyn) && (tcp_flags & TcpFlags::kAck) &&
          !from_initiator) {
        entry.state = ConnState::kEstablished;
      }
      break;
    case ConnState::kEstablished:
      if (tcp_flags & TcpFlags::kFin) {
        entry.state = ConnState::kFinWait;
      }
      break;
    case ConnState::kFinWait:
      if (tcp_flags & TcpFlags::kFin) {
        entry.state = ConnState::kClosed;
      }
      break;
    case ConnState::kClosed:
      break;
  }
}

nic::StageResult Conntrack::Process(net::Packet& packet,
                                    const overlay::PacketContext& ctx) {
  nic::StageResult result;  // observation only; never drops
  if (ctx.parsed == nullptr) {
    return result;
  }
  const auto flow = ctx.parsed->flow();
  if (!flow) {
    return result;
  }
  const Nanos now = packet.meta().nic_arrival;
  const uint8_t tcp_flags =
      ctx.parsed->is_tcp() ? ctx.parsed->tcp->flags : 0;

  auto it = table_.find(*flow);
  bool from_initiator = true;
  if (it == table_.end()) {
    const auto rev = table_.find(flow->Reversed());
    if (rev != table_.end()) {
      it = rev;
      from_initiator = false;
    }
  }
  if (it == table_.end()) {
    // Charge the owning tenant's quota when the flow has a kernel-attached
    // owner; anonymous wire flows charge the shared (tenant-0) pool, which
    // the bounded-table defense already protects.
    if (!sram_->Allocate("conntrack", kConntrackEntryBytes,
                         ctx.conn.owner_pid, ctx.conn.owner_tenant)
             .ok()) {
      ++untracked_;
      return result;
    }
    ConntrackEntry entry;
    entry.tuple = *flow;
    entry.first_seen = now;
    entry.tenant = ctx.conn.owner_tenant;
    it = table_.emplace(*flow, entry).first;
  }
  ConntrackEntry& entry = it->second;
  ++entry.packets;
  entry.bytes += packet.size();
  entry.last_seen = now;
  const ConnState prev = entry.state;
  Advance(entry, tcp_flags, from_initiator);
  if (tp_ != nullptr && entry.state != prev) {
    // Canonical (first-packet) orientation, like the table key.
    const telemetry::TraceFlow flow{
        entry.tuple.src_ip.addr,
        entry.tuple.dst_ip.addr,
        entry.tuple.src_port,
        entry.tuple.dst_port,
        static_cast<uint8_t>(entry.tuple.proto),
        ctx.direction == net::Direction::kTx ? telemetry::kDirTx
                                             : telemetry::kDirRx};
    tp_->Emit(telemetry::Probe::kConntrackTransition,
              telemetry::Tracepoints::kCoreNic, ctx.conn.owner_pid,
              static_cast<uint64_t>(entry.state), static_cast<uint64_t>(prev),
              0, &flow);
  }
  return result;
}

size_t Conntrack::Sweep(Nanos now) {
  std::vector<net::FiveTuple> dead;
  for (const auto& [tuple, entry] : table_) {
    if (entry.state == ConnState::kClosed ||
        now - entry.last_seen > idle_timeout_) {
      dead.push_back(tuple);
    }
  }
  for (const auto& tuple : dead) {
    const auto it = table_.find(tuple);
    const uint32_t tenant = it != table_.end() ? it->second.tenant : 0;
    table_.erase(tuple);
    sram_->Free("conntrack", kConntrackEntryBytes, tenant);
  }
  return dead.size();
}

const ConntrackEntry* Conntrack::Lookup(const net::FiveTuple& tuple) const {
  auto it = table_.find(tuple);
  if (it == table_.end()) {
    it = table_.find(tuple.Reversed());
  }
  return it == table_.end() ? nullptr : &it->second;
}

}  // namespace norman::dataplane
