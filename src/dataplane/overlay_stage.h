// Generic overlay-programmable pipeline stage — the "eBPF of Norman".
//
// §4.4: most functionality changes are program loads into overlay slots,
// not hardware changes. This stage executes whatever verified program the
// kernel loaded into its SmartNIC slot, mapping the program's verdict to a
// pipeline verdict (0 = drop, 1 = accept, 2 = software fallback). Loading a
// new program takes effect on the next packet; an empty slot accepts
// everything. It lets administrators deploy policies the fixed stages don't
// express — e.g. "drop TX packets with TTL < 5" or DSCP-based sampling —
// without touching the bitstream.
#ifndef NORMAN_DATAPLANE_OVERLAY_STAGE_H_
#define NORMAN_DATAPLANE_OVERLAY_STAGE_H_

#include "src/nic/pipeline.h"
#include "src/nic/smart_nic.h"

namespace norman::dataplane {

class OverlayStage : public nic::PipelineStage {
 public:
  // Reads its program from `slot` of the NIC's overlay instruction memory
  // (through the kernel-held control plane). Generation changes are picked
  // up automatically.
  OverlayStage(nic::SmartNic::ControlPlane* cp, size_t slot)
      : cp_(cp), slot_(slot) {}

  std::string_view name() const override { return "overlay"; }

  // An empty slot is a pure pass-through; a loaded program may read packet
  // payload bytes (ldb), so its verdict can vary per packet within one flow
  // — flows crossing a loaded slot stay off the fast path.
  nic::StageCacheClass cache_class() const override {
    return cp_->OverlaySlot(slot_) == nullptr
               ? nic::StageCacheClass::kPure
               : nic::StageCacheClass::kUncacheable;
  }

  nic::StageResult Process(net::Packet& packet,
                           const overlay::PacketContext& ctx) override;

  uint64_t executions() const { return executions_; }

 private:
  nic::SmartNic::ControlPlane* cp_;
  size_t slot_;
  uint64_t executions_ = 0;
};

}  // namespace norman::dataplane

#endif  // NORMAN_DATAPLANE_OVERLAY_STAGE_H_
