#include "src/dataplane/arp_service.h"

#include <algorithm>

namespace norman::dataplane {

ArpService::ArpService(sim::Simulator* sim, net::Ipv4Address local_ip,
                       net::MacAddress local_mac)
    : sim_(sim), local_mac_(local_mac) {
  local_ips_.push_back(local_ip);
}

void ArpService::AddLocalAddress(net::Ipv4Address ip) {
  local_ips_.push_back(ip);
}

nic::StageResult ArpService::Process(net::Packet& packet,
                                     const overlay::PacketContext& ctx) {
  nic::StageResult result;
  if (ctx.parsed == nullptr || !ctx.parsed->is_arp()) {
    return result;
  }
  const net::ArpMessage& arp = *ctx.parsed->arp;
  const Nanos now = packet.meta().nic_arrival != 0 ? packet.meta().nic_arrival
                                                   : sim_->Now();

  if (ctx.direction == net::Direction::kTx) {
    // Record who emitted it — the process-view forensic log.
    ArpTxObservation obs;
    obs.timestamp = now;
    obs.owner = ctx.conn;
    obs.claimed_sender_mac = arp.sender_mac;
    obs.claimed_sender_ip = arp.sender_ip;
    obs.target_ip = arp.target_ip;
    obs.is_request = arp.op == net::ArpOp::kRequest;
    tx_observations_.push_back(obs);
    return result;
  }

  // RX: learn the sender.
  cache_[arp.sender_ip.addr] = ArpCacheEntry{arp.sender_ip, arp.sender_mac,
                                             now};
  // Answer requests for our addresses directly from the NIC.
  if (arp.op == net::ArpOp::kRequest &&
      std::find(local_ips_.begin(), local_ips_.end(), arp.target_ip) !=
          local_ips_.end()) {
    if (inject_) {
      auto reply = net::BuildArpReplyPacket(local_mac_, arp.target_ip,
                                            arp.sender_mac, arp.sender_ip);
      reply->meta().created_at = now;
      inject_(std::move(reply));
    }
    ++replies_generated_;
    // The request was consumed by the NIC; no host delivery needed.
    result.verdict = nic::Verdict::kDrop;
    result.drop_reason = DropReason::kNicConsumed;
  }
  return result;
}

}  // namespace norman::dataplane
