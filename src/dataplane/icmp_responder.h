// On-NIC ICMP echo responder.
//
// Like the ARP service, ping handling needs a global view: under kernel
// bypass nobody answers echo requests for the host address unless every
// application implements ICMP. The NIC answers directly (and counts, for
// norman-netstat-style diagnostics); the host never sees the interrupt.
#ifndef NORMAN_DATAPLANE_ICMP_RESPONDER_H_
#define NORMAN_DATAPLANE_ICMP_RESPONDER_H_

#include <functional>

#include "src/net/packet_builder.h"
#include "src/net/types.h"
#include "src/nic/pipeline.h"

namespace norman::dataplane {

class IcmpResponder : public nic::PipelineStage {
 public:
  IcmpResponder(net::Ipv4Address local_ip, net::MacAddress local_mac)
      : local_ip_(local_ip), local_mac_(local_mac) {}

  std::string_view name() const override { return "icmp"; }
  // Acts only on ICMP frames (no 5-tuple, never cached); pure pass-through
  // for cacheable TCP/UDP flows.
  nic::StageCacheClass cache_class() const override {
    return nic::StageCacheClass::kPure;
  }

  void SetReplyInjector(std::function<void(net::PacketPtr)> inject) {
    inject_ = std::move(inject);
  }

  nic::StageResult Process(net::Packet& packet,
                           const overlay::PacketContext& ctx) override;

  uint64_t echo_replies() const { return echo_replies_; }

 private:
  net::Ipv4Address local_ip_;
  net::MacAddress local_mac_;
  std::function<void(net::PacketPtr)> inject_;
  uint64_t echo_replies_ = 0;
};

}  // namespace norman::dataplane

#endif  // NORMAN_DATAPLANE_ICMP_RESPONDER_H_
