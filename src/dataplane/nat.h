// On-NIC source NAT ("and everything else the kernel does today" — §5 lists
// NAT among the functionality KOPI must offload).
//
// TX packets whose source address falls in the configured private prefix are
// rewritten to the public address with a NIC-allocated port; the reverse
// mapping is applied to RX packets addressed to the public address. Port
// mappings are NIC state, charged against SRAM.
#ifndef NORMAN_DATAPLANE_NAT_H_
#define NORMAN_DATAPLANE_NAT_H_

#include <cstdint>
#include <unordered_map>

#include "src/common/status.h"
#include "src/net/types.h"
#include "src/nic/pipeline.h"
#include "src/nic/sram.h"

namespace norman::dataplane {

inline constexpr uint64_t kNatEntryBytes = 48;

class NatEngine : public nic::PipelineStage {
 public:
  // Rewrites sources matching private_prefix/prefix_len to public_ip.
  NatEngine(nic::SramAllocator* sram, net::Ipv4Address private_prefix,
            uint32_t prefix_len, net::Ipv4Address public_ip,
            uint16_t port_base = 20000, uint16_t port_count = 10000);

  std::string_view name() const override { return "nat"; }
  // Per-flow deterministic: the rewrite it makes is captured into the flow
  // cache entry and replayed on hits without running the stage.
  nic::StageCacheClass cache_class() const override {
    return nic::StageCacheClass::kPure;
  }

  nic::StageResult Process(net::Packet& packet,
                      const overlay::PacketContext& ctx) override;

  size_t active_mappings() const { return by_private_.size(); }
  uint64_t tx_translated() const { return tx_translated_; }
  uint64_t rx_translated() const { return rx_translated_; }
  uint64_t exhausted_drops() const { return exhausted_drops_; }

 private:
  struct Mapping {
    net::Ipv4Address private_ip;
    uint16_t private_port = 0;
    uint16_t public_port = 0;
  };
  struct PrivateKey {
    uint32_t ip;
    uint16_t port;
    uint8_t proto;
    friend bool operator==(const PrivateKey&, const PrivateKey&) = default;
  };
  struct PrivateKeyHash {
    size_t operator()(const PrivateKey& k) const {
      return (size_t{k.ip} * 0x9e3779b97f4a7c15ULL) ^
             ((size_t{k.port} << 8) | k.proto);
    }
  };

  bool InPrivatePrefix(net::Ipv4Address ip) const {
    if (prefix_len_ == 0) {
      return true;
    }
    const uint32_t shift = 32 - prefix_len_;
    return (ip.addr >> shift) == (private_prefix_.addr >> shift);
  }

  nic::SramAllocator* sram_;
  net::Ipv4Address private_prefix_;
  uint32_t prefix_len_;
  net::Ipv4Address public_ip_;
  uint16_t port_base_;
  uint16_t port_count_;
  uint16_t next_port_offset_ = 0;

  std::unordered_map<PrivateKey, Mapping, PrivateKeyHash> by_private_;
  // public_port (per proto) -> mapping
  std::unordered_map<uint32_t, Mapping> by_public_;

  uint64_t tx_translated_ = 0;
  uint64_t rx_translated_ = 0;
  uint64_t exhausted_drops_ = 0;
};

}  // namespace norman::dataplane

#endif  // NORMAN_DATAPLANE_NAT_H_
