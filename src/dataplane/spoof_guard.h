// TX anti-spoofing: frames must match their connection's registered tuple.
//
// Owner metadata travels with the *ring* a descriptor came from, so
// owner-match rules can't be forged — but header fields can: a rogue app
// could hand the NIC a frame whose source port (or IP) belongs to someone
// else's policy bucket, evading port-scoped rules. Real enforcement (§3
// "isolated from the application") therefore cross-checks every TX frame
// from a registered connection against the flow table:
//   * IPv4 src address and (for TCP/UDP) src port must equal the tuple the
//     kernel installed; mismatch -> drop + counter;
//   * destination and protocol must match too (a connection is a 5-tuple
//     grant, not a raw-socket license).
// Frames with no connection metadata (kernel-injected ARP/ICMP replies,
// host slow path) are exempt — they never came from an app ring. ARP
// frames from apps are allowed through by default (the §2 debugging story
// depends on the buggy flood reaching the network while remaining fully
// attributed); strict mode drops those as well.
#ifndef NORMAN_DATAPLANE_SPOOF_GUARD_H_
#define NORMAN_DATAPLANE_SPOOF_GUARD_H_

#include "src/nic/flow_table.h"
#include "src/nic/pipeline.h"

namespace norman::dataplane {

class SpoofGuard : public nic::PipelineStage {
 public:
  explicit SpoofGuard(const nic::FlowTable* flow_table, bool strict_arp = false)
      : flow_table_(flow_table), strict_arp_(strict_arp) {}

  std::string_view name() const override { return "spoof_guard"; }
  // Pure function of (tuple, flow entry): safe to skip on fast-path hits.
  nic::StageCacheClass cache_class() const override {
    return nic::StageCacheClass::kPure;
  }

  nic::StageResult Process(net::Packet& packet,
                           const overlay::PacketContext& ctx) override;

  uint64_t spoofed_drops() const { return spoofed_drops_; }

 private:
  const nic::FlowTable* flow_table_;
  bool strict_arp_;
  uint64_t spoofed_drops_ = 0;
};

}  // namespace norman::dataplane

#endif  // NORMAN_DATAPLANE_SPOOF_GUARD_H_
