// Connection tracker: per-flow state observed on the NIC.
//
// Gives the dataplane (and netstat-style tools) the established/new
// distinction and liveness information the kernel's conntrack provides
// today. State lives in NIC SRAM; when full, new flows are reported as
// untracked rather than evicting established ones (§5's "careful data
// structure design" mitigation).
#ifndef NORMAN_DATAPLANE_CONNTRACK_H_
#define NORMAN_DATAPLANE_CONNTRACK_H_

#include <cstdint>
#include <unordered_map>

#include "src/common/tracepoint.h"
#include "src/net/headers.h"
#include "src/net/types.h"
#include "src/nic/pipeline.h"
#include "src/nic/sram.h"

namespace norman::dataplane {

inline constexpr uint64_t kConntrackEntryBytes = 64;

enum class ConnState : uint8_t {
  kNew = 0,
  kSynSent,
  kEstablished,
  kFinWait,
  kClosed,
};

struct ConntrackEntry {
  net::FiveTuple tuple;  // canonical orientation = first packet seen
  ConnState state = ConnState::kNew;
  uint64_t packets = 0;
  uint64_t bytes = 0;
  Nanos first_seen = 0;
  Nanos last_seen = 0;
  // Tenant whose quota the entry's SRAM is charged against (0 = system:
  // anonymous wire traffic with no installed flow). Recorded so Sweep
  // refunds the same budget it charged.
  uint32_t tenant = 0;
};

class Conntrack : public nic::PipelineStage {
 public:
  Conntrack(nic::SramAllocator* sram, Nanos idle_timeout = 120 * kSecond);

  std::string_view name() const override { return "conntrack"; }
  // Stateful observer: never drops, but must see every packet (including
  // fast-path hits) to keep connection state identical with the cache on.
  nic::StageCacheClass cache_class() const override {
    return nic::StageCacheClass::kObserver;
  }

  nic::StageResult Process(net::Packet& packet,
                      const overlay::PacketContext& ctx) override;

  // Expires idle/closed entries; returns the number removed. The kernel
  // control plane runs this periodically.
  size_t Sweep(Nanos now);

  const ConntrackEntry* Lookup(const net::FiveTuple& tuple) const;
  size_t size() const { return table_.size(); }
  uint64_t untracked() const { return untracked_; }

  // "conntrack.transition" probe hookup.
  void AttachTracepoints(telemetry::Tracepoints* tp) { tp_ = tp; }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [tuple, entry] : table_) {
      fn(entry);
    }
  }

 private:
  void Advance(ConntrackEntry& entry, uint8_t tcp_flags, bool from_initiator);

  nic::SramAllocator* sram_;
  Nanos idle_timeout_;
  std::unordered_map<net::FiveTuple, ConntrackEntry, net::FiveTupleHash>
      table_;
  uint64_t untracked_ = 0;
  telemetry::Tracepoints* tp_ = nullptr;
};

}  // namespace norman::dataplane

#endif  // NORMAN_DATAPLANE_CONNTRACK_H_
