// Queueing disciplines for the on-NIC TX scheduler (the tc/qdisc of Norman).
//
// §2's QoS scenario: Alice shapes the game's traffic with tc + qdisc; under
// kernel bypass no work-conserving policy (like weighted fair queueing) can
// be enforced because no single vantage point sees all competing senders.
// On the NIC, these disciplines see *every* TX packet with its kernel-
// attached owner metadata, so per-user / per-cgroup shaping just works.
//
// Classification maps a packet context to a class id via a Classifier —
// either a C++ callback installed by the kernel or an overlay program (the
// §4.4 "instruction set for defining traffic shaping policies").
#ifndef NORMAN_DATAPLANE_QDISC_H_
#define NORMAN_DATAPLANE_QDISC_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/nic/pipeline.h"
#include "src/overlay/interpreter.h"
#include "src/overlay/isa.h"

namespace norman::dataplane {

// Maps a packet to a traffic class. Class ids are small dense integers.
using Classifier = std::function<uint32_t(const overlay::PacketContext&)>;

// Classify by kernel-attached owner uid -> class mapping (default class 0).
Classifier ClassifyByUid(std::map<uint32_t, uint32_t> uid_to_class);
// Classify by cgroup id -> class.
Classifier ClassifyByCgroup(std::map<uint32_t, uint32_t> cgroup_to_class);
// Classify by DSCP codepoint -> class.
Classifier ClassifyByDscp(std::map<uint8_t, uint32_t> dscp_to_class);
// Classify by running a verified overlay program (verdict = class id).
Classifier ClassifyByOverlay(overlay::Program program);

// ---------------------------------------------------------------------------
// Strict-priority discipline: band 0 always dequeues before band 1, etc.
class PrioQdisc : public nic::Scheduler {
 public:
  PrioQdisc(uint32_t num_bands, Classifier classifier,
            size_t per_band_capacity = 1024);

  std::string_view name() const override { return "prio"; }
  bool Enqueue(net::PacketPtr packet,
               const overlay::PacketContext& ctx) override;
  net::PacketPtr Dequeue(Nanos now) override;
  Nanos NextEligibleTime(Nanos now) const override;
  size_t backlog_packets() const override;

  uint64_t drops(uint32_t band) const { return bands_[band].drops; }

 private:
  struct Band {
    std::deque<net::PacketPtr> queue;
    uint64_t drops = 0;
  };
  std::vector<Band> bands_;
  Classifier classifier_;
  size_t per_band_capacity_;
};

// ---------------------------------------------------------------------------
// Token-bucket filter shaping the aggregate to `rate_bps` with `burst_bytes`
// of depth; excess packets wait (or drop when the queue is full). Not
// work-conserving by design — this is tc's tbf.
class TokenBucketQdisc : public nic::Scheduler {
 public:
  TokenBucketQdisc(BitsPerSecond rate_bps, uint64_t burst_bytes,
                   size_t capacity_packets = 4096);

  std::string_view name() const override { return "tbf"; }
  bool Enqueue(net::PacketPtr packet,
               const overlay::PacketContext& ctx) override;
  net::PacketPtr Dequeue(Nanos now) override;
  Nanos NextEligibleTime(Nanos now) const override;
  size_t backlog_packets() const override { return queue_.size(); }

  uint64_t drops() const { return drops_; }

 private:
  void Refill(Nanos now);

  BitsPerSecond rate_bps_;
  uint64_t burst_bytes_;
  size_t capacity_;
  std::deque<net::PacketPtr> queue_;
  double tokens_bytes_;
  Nanos last_refill_ = 0;
  uint64_t drops_ = 0;
};

// ---------------------------------------------------------------------------
// Deficit round robin across classes: each class gets `quantum` bytes per
// round; O(1) work-conserving fair queueing (Shreedhar & Varghese).
class DrrQdisc : public nic::Scheduler {
 public:
  DrrQdisc(Classifier classifier, uint64_t quantum_bytes = 1514,
           size_t per_class_capacity = 1024);

  std::string_view name() const override { return "drr"; }
  bool Enqueue(net::PacketPtr packet,
               const overlay::PacketContext& ctx) override;
  net::PacketPtr Dequeue(Nanos now) override;
  Nanos NextEligibleTime(Nanos now) const override;
  size_t backlog_packets() const override { return backlog_; }

 private:
  struct ClassState {
    std::deque<net::PacketPtr> queue;
    uint64_t deficit = 0;
    bool in_active_list = false;
  };
  Classifier classifier_;
  uint64_t quantum_;
  size_t per_class_capacity_;
  std::map<uint32_t, ClassState> classes_;
  std::deque<uint32_t> active_;  // round-robin order of backlogged classes
  size_t backlog_ = 0;
};

// ---------------------------------------------------------------------------
// Weighted fair queueing: packet-by-packet GPS approximation with virtual
// finish times (Demers, Keshav & Shenker — the paper's WFQ citation [10]).
// Work-conserving: spare capacity from idle classes is shared by weight.
class WfqQdisc : public nic::Scheduler {
 public:
  explicit WfqQdisc(Classifier classifier, size_t per_class_capacity = 4096);

  std::string_view name() const override { return "wfq"; }

  // Weight for a class (default 1.0). Must be > 0.
  void SetWeight(uint32_t class_id, double weight);

  bool Enqueue(net::PacketPtr packet,
               const overlay::PacketContext& ctx) override;
  net::PacketPtr Dequeue(Nanos now) override;
  Nanos NextEligibleTime(Nanos now) const override;
  size_t backlog_packets() const override { return backlog_; }

  uint64_t dequeued_bytes(uint32_t class_id) const;

 private:
  struct FlowState {
    std::deque<net::PacketPtr> queue;
    std::deque<double> finish_times;
    double weight = 1.0;
    double last_finish = 0.0;
    uint64_t dequeued_bytes = 0;
  };
  Classifier classifier_;
  size_t per_class_capacity_;
  std::map<uint32_t, FlowState> flows_;
  double virtual_time_ = 0.0;
  size_t backlog_ = 0;
};

}  // namespace norman::dataplane

#endif  // NORMAN_DATAPLANE_QDISC_H_
