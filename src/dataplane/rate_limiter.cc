#include "src/dataplane/rate_limiter.h"

#include <algorithm>
#include <cmath>

namespace norman::dataplane {

PacedScheduler::PacedScheduler(std::unique_ptr<nic::Scheduler> inner,
                               size_t per_conn_capacity)
    : inner_(std::move(inner)), per_conn_capacity_(per_conn_capacity) {}

void PacedScheduler::FlowPacer::Refill(Nanos now) {
  if (now <= last_refill) {
    return;
  }
  const double elapsed_s = static_cast<double>(now - last_refill) / 1e9;
  tokens = std::min(static_cast<double>(burst_bytes),
                    tokens + elapsed_s * static_cast<double>(rate_bps) / 8.0);
  last_refill = now;
}

Nanos PacedScheduler::FlowPacer::HeadEligibleAt(Nanos now) const {
  if (queue.empty()) {
    return -1;
  }
  double t = tokens;
  if (now > last_refill) {
    const double elapsed_s = static_cast<double>(now - last_refill) / 1e9;
    t = std::min(static_cast<double>(burst_bytes),
                 t + elapsed_s * static_cast<double>(rate_bps) / 8.0);
  }
  const double need = static_cast<double>(queue.front()->size());
  if (t + 1e-9 >= need) {
    return now;
  }
  const double wait_ns =
      (need - t) * 8.0 * 1e9 / static_cast<double>(rate_bps);
  return now + static_cast<Nanos>(std::ceil(wait_ns));
}

void PacedScheduler::SetRate(net::ConnectionId conn, BitsPerSecond rate_bps,
                             uint64_t burst_bytes) {
  if (rate_bps == 0) {
    ClearRate(conn);
    return;
  }
  const bool existed = flows_.contains(conn);
  FlowPacer& pacer = flows_[conn];
  pacer.rate_bps = rate_bps;
  pacer.burst_bytes = std::max<uint64_t>(burst_bytes, 1);
  if (existed) {
    // Rate adjustment must not grant a fresh burst (a controller updating
    // the rate every tick would otherwise leak burst_bytes per tick).
    pacer.tokens =
        std::min(pacer.tokens, static_cast<double>(pacer.burst_bytes));
  } else {
    pacer.tokens = static_cast<double>(pacer.burst_bytes);
  }
}

void PacedScheduler::ClearRate(net::ConnectionId conn) {
  const auto it = flows_.find(conn);
  if (it == flows_.end()) {
    return;
  }
  // Release whatever is queued straight into the inner discipline.
  while (!it->second.queue.empty()) {
    net::PacketPtr p = std::move(it->second.queue.front());
    it->second.queue.pop_front();
    overlay::PacketContext ctx;
    const auto meta = pending_meta_.find(p.get());
    if (meta != pending_meta_.end()) {
      ctx.conn = meta->second;
      pending_meta_.erase(meta);
    }
    (void)inner_->Enqueue(std::move(p), ctx);
  }
  flows_.erase(it);
}

bool PacedScheduler::Enqueue(net::PacketPtr packet,
                             const overlay::PacketContext& ctx) {
  const auto it = flows_.find(ctx.conn.conn_id);
  if (it == flows_.end()) {
    if (!inner_->Enqueue(std::move(packet), ctx)) {  // unlimited
      last_drop_reason_ = inner_->last_drop_reason();
      return false;
    }
    return true;
  }
  FlowPacer& pacer = it->second;
  if (pacer.queue.size() >= per_conn_capacity_) {
    ++paced_drops_;
    last_drop_reason_ = DropReason::kRateLimited;
    return false;
  }
  pending_meta_[packet.get()] = ctx.conn;
  pacer.queue.push_back(std::move(packet));
  return true;
}

void PacedScheduler::ReleaseConformant(Nanos now) {
  for (auto& [conn, pacer] : flows_) {
    pacer.Refill(now);
    while (!pacer.queue.empty()) {
      const double need =
          static_cast<double>(pacer.queue.front()->size());
      if (pacer.tokens + 1e-9 < need) {
        break;
      }
      pacer.tokens -= need;
      net::PacketPtr p = std::move(pacer.queue.front());
      pacer.queue.pop_front();
      overlay::PacketContext ctx;
      const auto meta = pending_meta_.find(p.get());
      if (meta != pending_meta_.end()) {
        ctx.conn = meta->second;
        pending_meta_.erase(meta);
      }
      if (!inner_->Enqueue(std::move(p), ctx)) {
        // The inner discipline refused a packet the pacer had already
        // admitted; the NIC cannot see this hand-off, so account it here.
        ++inner_overflow_drops_;
        last_drop_reason_ = inner_->last_drop_reason();
      }
    }
  }
}

net::PacketPtr PacedScheduler::Dequeue(Nanos now) {
  ReleaseConformant(now);
  return inner_->Dequeue(now);
}

Nanos PacedScheduler::NextEligibleTime(Nanos now) const {
  // Inner discipline first (it may itself be rate-limited).
  Nanos best = inner_->NextEligibleTime(now);
  if (inner_->backlog_packets() > 0 && best < 0) {
    best = now;
  }
  for (const auto& [conn, pacer] : flows_) {
    const Nanos t = pacer.HeadEligibleAt(now);
    if (t >= 0 && (best < 0 || t < best)) {
      best = t;
    }
  }
  return best;
}

size_t PacedScheduler::backlog_packets() const {
  size_t n = inner_->backlog_packets();
  for (const auto& [conn, pacer] : flows_) {
    n += pacer.queue.size();
  }
  return n;
}

}  // namespace norman::dataplane
