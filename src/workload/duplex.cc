#include "src/workload/duplex.h"

namespace norman::workload {

DuplexTestBed::DuplexTestBed(Options options)
    : options_(options), fault_rng_(options.fault_seed) {
  kernel::Kernel::Options ka;
  ka.host_ip = net::Ipv4Address::FromOctets(10, 0, 0, 1);
  ka.host_mac = net::MacAddress::ForHost(1);
  ka.gateway_mac = net::MacAddress::ForHost(2);  // the peer, directly
  kernel::Kernel::Options kb;
  kb.host_ip = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  kb.host_mac = net::MacAddress::ForHost(2);
  kb.gateway_mac = net::MacAddress::ForHost(1);

  a_.nic = std::make_unique<nic::SmartNic>(&sim_, options_.nic_a);
  a_.kernel = std::make_unique<kernel::Kernel>(&sim_, a_.nic.get(), ka);
  b_.nic = std::make_unique<nic::SmartNic>(&sim_, options_.nic_b);
  b_.kernel = std::make_unique<kernel::Kernel>(&sim_, b_.nic.get(), kb);

  Wire(&a_, &b_);
  Wire(&b_, &a_);
}

void DuplexTestBed::Wire(Host* from, Host* to) {
  from->nic->SetWireSink([this, from, to](net::PacketPtr packet) {
    ++from->frames_sent;
    if (options_.loss_probability > 0 &&
        fault_rng_.NextBool(options_.loss_probability)) {
      ++frames_lost_;
      return;  // dropped on the wire
    }
    ++to->frames_received;
    Nanos delay = options_.propagation_delay;
    if (options_.jitter_ns > 0) {
      delay += static_cast<Nanos>(
          fault_rng_.NextBounded(static_cast<uint64_t>(options_.jitter_ns)));
    }
    sim_.ScheduleAfter(delay, [this, to, p = std::move(packet)]() mutable {
      to->nic->DeliverFromWire(std::move(p), sim_.Now());
    });
  });
}

}  // namespace norman::workload
