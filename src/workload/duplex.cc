#include "src/workload/duplex.h"

namespace norman::workload {

DuplexTestBed::DuplexTestBed(Options options)
    : options_(options), fault_(&sim_, options.fault_seed) {
  kernel::Kernel::Options ka;
  ka.host_ip = net::Ipv4Address::FromOctets(10, 0, 0, 1);
  ka.host_mac = net::MacAddress::ForHost(1);
  ka.gateway_mac = net::MacAddress::ForHost(2);  // the peer, directly
  kernel::Kernel::Options kb;
  kb.host_ip = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  kb.host_mac = net::MacAddress::ForHost(2);
  kb.gateway_mac = net::MacAddress::ForHost(1);

  a_.nic = std::make_unique<nic::SmartNic>(&sim_, options_.nic_a);
  a_.kernel = std::make_unique<kernel::Kernel>(&sim_, a_.nic.get(), ka);
  b_.nic = std::make_unique<nic::SmartNic>(&sim_, options_.nic_b);
  b_.kernel = std::make_unique<kernel::Kernel>(&sim_, b_.nic.get(), kb);

  sim::FaultProfile profile;
  profile.loss = options_.loss_probability;
  profile.jitter = options_.jitter_ns;
  fault_.SetProfile(kLinkAtoB, profile);
  fault_.SetProfile(kLinkBtoA, profile);

  Wire(&a_, &b_, kLinkAtoB);
  Wire(&b_, &a_, kLinkBtoA);
}

void DuplexTestBed::Wire(Host* from, Host* to, size_t link) {
  fault_.SetSink(link, [this, to](net::PacketPtr packet) {
    ++to->frames_received;
    to->nic->DeliverFromWire(std::move(packet), sim_.Now());
  });
  from->nic->SetWireSink([this, from, link](net::PacketPtr packet) {
    ++from->frames_sent;
    fault_.Transmit(link, std::move(packet),
                    sim_.Now() + options_.propagation_delay);
  });
}

void DuplexTestBed::set_loss_probability(double p) {
  options_.loss_probability = p;
  for (size_t link : {kLinkAtoB, kLinkBtoA}) {
    sim::FaultProfile profile = fault_.profile(link);
    profile.loss = p;
    fault_.SetProfile(link, profile);
  }
}

void DuplexTestBed::set_jitter(Nanos j) {
  options_.jitter_ns = j;
  for (size_t link : {kLinkAtoB, kLinkBtoA}) {
    sim::FaultProfile profile = fault_.profile(link);
    profile.jitter = j;
    fault_.SetProfile(link, profile);
  }
}

}  // namespace norman::workload
