// DuplexTestBed: two complete Norman hosts (SmartNIC + kernel each) wired
// back-to-back over one discrete-event simulator.
//
// Unlike TestBed (whose remote peer is synthetic), both ends here run the
// full stack: real connection setup on both sides, listen/accept on the
// server, ARP/ICMP answered by the remote NIC, and policies enforced
// independently per host. This is the substrate for end-to-end
// client/server integration tests.
//
// The wire between the hosts is a sim::FaultInjector with one simplex link
// per direction, so chaos tests can lose, duplicate, corrupt, jitter or
// reorder frames — or take the link down — deterministically from
// `fault_seed`. The legacy loss_probability/jitter_ns options map onto a
// symmetric profile on both links.
#ifndef NORMAN_WORKLOAD_DUPLEX_H_
#define NORMAN_WORKLOAD_DUPLEX_H_

#include <memory>

#include "src/kernel/kernel.h"
#include "src/nic/smart_nic.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"

namespace norman::workload {

struct DuplexOptions {
  nic::SmartNic::Options nic_a;
  nic::SmartNic::Options nic_b;
  Nanos propagation_delay = 2 * kMicrosecond;
  // Fault injection on the wire (seeded, deterministic): each frame is
  // dropped with `loss_probability`, and delayed by an extra uniform
  // [0, jitter_ns] (jitter > propagation spacing reorders frames). Richer
  // profiles (corruption, duplication, link flaps) go through fault().
  double loss_probability = 0.0;
  Nanos jitter_ns = 0;
  uint64_t fault_seed = 0x5eed;
};

class DuplexTestBed {
 public:
  struct Host {
    std::unique_ptr<nic::SmartNic> nic;
    std::unique_ptr<kernel::Kernel> kernel;
    uint64_t frames_sent = 0;
    uint64_t frames_received = 0;
  };

  using Options = DuplexOptions;

  // Fault-plane link ids for each direction of the wire.
  static constexpr size_t kLinkAtoB = 0;
  static constexpr size_t kLinkBtoA = 1;

  explicit DuplexTestBed(Options options = Options());

  sim::Simulator& sim() { return sim_; }
  Host& a() { return a_; }
  Host& b() { return b_; }

  net::Ipv4Address ip_a() const { return a_.kernel->options().host_ip; }
  net::Ipv4Address ip_b() const { return b_.kernel->options().host_ip; }

  // The wire fault plane (both directions). Profiles set here compose with
  // the legacy knobs below.
  sim::FaultInjector& fault() { return fault_; }

  uint64_t frames_lost() const { return fault_.frames_lost(); }

  // Adjust fault injection at runtime (e.g. connect cleanly, then degrade
  // the link mid-test). Applies symmetrically to both directions,
  // preserving any other profile fields configured through fault().
  void set_loss_probability(double p);
  void set_jitter(Nanos j);

 private:
  void Wire(Host* from, Host* to, size_t link);

  Options options_;
  sim::Simulator sim_;
  sim::FaultInjector fault_;
  Host a_;
  Host b_;
};

}  // namespace norman::workload

#endif  // NORMAN_WORKLOAD_DUPLEX_H_
