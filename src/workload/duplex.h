// DuplexTestBed: two complete Norman hosts (SmartNIC + kernel each) wired
// back-to-back over one discrete-event simulator.
//
// Unlike TestBed (whose remote peer is synthetic), both ends here run the
// full stack: real connection setup on both sides, listen/accept on the
// server, ARP/ICMP answered by the remote NIC, and policies enforced
// independently per host. This is the substrate for end-to-end
// client/server integration tests.
#ifndef NORMAN_WORKLOAD_DUPLEX_H_
#define NORMAN_WORKLOAD_DUPLEX_H_

#include <memory>

#include "src/common/rng.h"
#include "src/kernel/kernel.h"
#include "src/nic/smart_nic.h"
#include "src/sim/simulator.h"

namespace norman::workload {

struct DuplexOptions {
  nic::SmartNic::Options nic_a;
  nic::SmartNic::Options nic_b;
  Nanos propagation_delay = 2 * kMicrosecond;
  // Fault injection on the wire (seeded, deterministic): each frame is
  // dropped with `loss_probability`, and delayed by an extra uniform
  // [0, jitter_ns] (jitter > propagation spacing reorders frames).
  double loss_probability = 0.0;
  Nanos jitter_ns = 0;
  uint64_t fault_seed = 0x5eed;
};

class DuplexTestBed {
 public:
  struct Host {
    std::unique_ptr<nic::SmartNic> nic;
    std::unique_ptr<kernel::Kernel> kernel;
    uint64_t frames_sent = 0;
    uint64_t frames_received = 0;
  };

  using Options = DuplexOptions;

  explicit DuplexTestBed(Options options = Options());

  sim::Simulator& sim() { return sim_; }
  Host& a() { return a_; }
  Host& b() { return b_; }

  net::Ipv4Address ip_a() const { return a_.kernel->options().host_ip; }
  net::Ipv4Address ip_b() const { return b_.kernel->options().host_ip; }

  uint64_t frames_lost() const { return frames_lost_; }

  // Adjust fault injection at runtime (e.g. connect cleanly, then degrade
  // the link mid-test).
  void set_loss_probability(double p) { options_.loss_probability = p; }
  void set_jitter(Nanos j) { options_.jitter_ns = j; }

 private:
  void Wire(Host* from, Host* to);

  Options options_;
  sim::Simulator sim_;
  Rng fault_rng_{0};
  uint64_t frames_lost_ = 0;
  Host a_;
  Host b_;
};

}  // namespace norman::workload

#endif  // NORMAN_WORKLOAD_DUPLEX_H_
