#include "src/workload/testbed.h"

#include "src/net/packet_builder.h"
#include "src/net/parsed_packet.h"

namespace norman::workload {

TestBed::TestBed(Options options)
    : options_(options), fault_(&sim_, options.fault_seed) {
  nic_ = std::make_unique<nic::SmartNic>(&sim_, options_.nic);
  kernel_ =
      std::make_unique<kernel::Kernel>(&sim_, nic_.get(), options_.kernel);
  nic_->SetWireSink(
      [this](net::PacketPtr packet) { HandleEgress(std::move(packet)); });
  fault_.SetSink(kNetworkToHostLink, [this](net::PacketPtr packet) {
    nic_->DeliverFromWire(std::move(packet), sim_.Now());
  });
}

void TestBed::HandleEgress(net::PacketPtr packet) {
  egress_bytes_ += packet->size();
  if (egress_hook_) {
    egress_hook_(*packet);
  }
  if (options_.echo) {
    // Egress frames carry a fresh cached parse: the NIC parses on pipeline
    // entry and re-parses in place whenever a stage mutates the frame, so
    // re-walking the headers here would be pure per-frame overhead. Frames
    // that somehow arrive unparsed (hand-built tests) fall back to a local
    // parse.
    std::optional<net::ParsedPacket> local;
    const net::ParsedPacket* parsed = packet->parsed();
    if (parsed == nullptr) {
      local = net::ParseFrame(packet->bytes());
      parsed = local.has_value() ? &*local : nullptr;
    }
    if (parsed != nullptr && parsed->is_ipv4() &&
        (parsed->is_udp() || parsed->is_tcp())) {
      // Build the mirrored response at the peer.
      auto flow = parsed->flow();
      net::FrameEndpoints ep{parsed->eth.dst, parsed->eth.src, flow->dst_ip,
                             flow->src_ip};
      const auto payload = packet->bytes().subspan(parsed->payload_offset);
      net::PacketPtr reply =
          parsed->is_udp()
              ? net::BuildUdpPacket(ep, flow->dst_port, flow->src_port,
                                    payload)
              : net::BuildTcpPacket(ep, flow->dst_port, flow->src_port,
                                    parsed->tcp->ack, parsed->tcp->seq,
                                    net::TcpFlags::kAck, payload);
      // Round trip: propagation out + propagation back.
      InjectFromNetwork(std::move(reply),
                        sim_.Now() + 2 * options_.propagation_delay);
    }
  }
  if (keep_egress_) {
    egress_.push_back(std::move(packet));
  }
}

void TestBed::InjectFromNetwork(net::PacketPtr packet, Nanos when) {
  packet->meta().created_at = when;
  // Through the fault plane: with no profile configured this is exactly one
  // scheduled delivery, the same event shape as before the plane existed.
  fault_.Transmit(kNetworkToHostLink, std::move(packet), when);
}

void TestBed::InjectUdpFromPeer(uint16_t src_port, uint16_t dst_port,
                                size_t payload_size, Nanos when) {
  net::FrameEndpoints ep{net::MacAddress::ForHost(2),
                         options_.kernel.host_mac,
                         net::Ipv4Address::FromOctets(10, 0, 0, 2),
                         options_.kernel.host_ip};
  const std::vector<uint8_t> payload(payload_size, 0x5a);
  InjectFromNetwork(net::BuildUdpPacket(ep, src_port, dst_port, payload),
                    when);
}

}  // namespace norman::workload
