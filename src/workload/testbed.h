// TestBed: one simulated Norman host wired to a synthetic remote peer.
//
// Bundles the discrete-event simulator, the SmartNIC, the kernel control
// plane and a configurable "network" behind the wire: frames the host emits
// are delivered to the peer after a propagation delay; the peer can echo
// them back (src/dst swapped), generate responses, or just count. This is
// the standard substrate for tests, benchmarks, and the examples.
#ifndef NORMAN_WORKLOAD_TESTBED_H_
#define NORMAN_WORKLOAD_TESTBED_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/net/packet.h"
#include "src/nic/smart_nic.h"
#include "src/sim/fault.h"
#include "src/sim/simulator.h"

namespace norman::workload {

struct TestBedOptions {
  nic::SmartNic::Options nic;
  kernel::Kernel::Options kernel;
  Nanos propagation_delay = 2 * kMicrosecond;  // one-way wire latency
  // When true, the peer echoes every IPv4 UDP/TCP frame back with
  // endpoints swapped (ARP and other frames are just recorded).
  bool echo = false;
  // Seed for the wire fault plane (see fault()). No faults fire unless a
  // profile is configured, so the default world stays bit-deterministic.
  uint64_t fault_seed = 0x5eed;
};

class TestBed {
 public:
  using Options = TestBedOptions;

  explicit TestBed(Options options = Options());

  sim::Simulator& sim() { return sim_; }
  nic::SmartNic& nic() { return *nic_; }
  kernel::Kernel& kernel() { return *kernel_; }

  // The wire fault plane. Link kNetworkToHostLink carries everything
  // injected from the synthetic network toward the host NIC; configure a
  // profile / down window on it to degrade the ingress wire.
  static constexpr size_t kNetworkToHostLink = 0;
  sim::FaultInjector& fault() { return fault_; }

  // Every frame that left the host, in wire order.
  const std::vector<net::PacketPtr>& egress() const { return egress_; }
  uint64_t egress_frames() const { return egress_.size(); }
  uint64_t egress_bytes() const { return egress_bytes_; }

  // Frees captured egress frames (long benchmarks).
  void DiscardEgress() {
    egress_.clear();
    keep_egress_ = false;
  }

  // Optional extra hook invoked for each egress frame (after recording).
  void SetEgressHook(std::function<void(const net::Packet&)> hook) {
    egress_hook_ = std::move(hook);
  }

  // Injects a frame from the network toward the host NIC at `when`.
  void InjectFromNetwork(net::PacketPtr packet, Nanos when);

  // Builds and injects a UDP frame from the remote peer to the host.
  void InjectUdpFromPeer(uint16_t src_port, uint16_t dst_port,
                         size_t payload_size, Nanos when);

 private:
  void HandleEgress(net::PacketPtr packet);

  Options options_;
  sim::Simulator sim_;
  sim::FaultInjector fault_;
  std::unique_ptr<nic::SmartNic> nic_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::vector<net::PacketPtr> egress_;
  bool keep_egress_ = true;
  uint64_t egress_bytes_ = 0;
  std::function<void(const net::Packet&)> egress_hook_;
};

}  // namespace norman::workload

#endif  // NORMAN_WORKLOAD_TESTBED_H_
