// Trace replay: inject the frames of a pcap capture into a simulated NIC
// with their original relative timing (optionally time-scaled).
//
// Closes the tooling loop: captures taken with norman-tcpdump (or stock
// tcpdump — the format is standard) can be replayed against a host to
// reproduce an incident, drive regression workloads, or stress policies
// with recorded traffic.
#ifndef NORMAN_WORKLOAD_PCAP_REPLAY_H_
#define NORMAN_WORKLOAD_PCAP_REPLAY_H_

#include <functional>
#include <span>

#include "src/common/status.h"
#include "src/net/pcap_writer.h"
#include "src/nic/smart_nic.h"
#include "src/sim/simulator.h"

namespace norman::workload {

struct ReplayOptions {
  // Virtual time of the first frame's injection.
  Nanos start_at = 0;
  // Inter-frame gaps are multiplied by this (0 = inject back-to-back;
  // 1 = original pacing; 2 = half speed).
  double time_scale = 1.0;
  // Invoked (in schedule order) before each frame is injected; returning
  // false skips the frame. Useful for filtering a big trace.
  std::function<bool(const net::PcapRecord&)> frame_filter;
};

struct ReplayReport {
  uint64_t frames_injected = 0;
  uint64_t frames_skipped = 0;
  Nanos first_at = 0;
  Nanos last_at = 0;
};

// Parses `pcap_file` and schedules every frame for delivery to `nic` from
// the wire side. Returns the injection plan summary; frames actually flow
// when the simulator runs.
StatusOr<ReplayReport> ReplayPcap(sim::Simulator* sim, nic::SmartNic* nic,
                                  std::span<const uint8_t> pcap_file,
                                  const ReplayOptions& options = {});

}  // namespace norman::workload

#endif  // NORMAN_WORKLOAD_PCAP_REPLAY_H_
