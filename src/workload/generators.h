// Deterministic traffic generators driving Norman sockets in virtual time.
//
// Each generator self-schedules simulator events from Start() until its stop
// time, so Simulator::Run() terminates once all traffic is injected and
// drained. All randomness comes from explicitly seeded Rng instances.
#ifndef NORMAN_WORKLOAD_GENERATORS_H_
#define NORMAN_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/net/packet_builder.h"
#include "src/norman/socket.h"
#include "src/sim/simulator.h"

namespace norman::workload {

// Constant-bit-rate sender: one payload every `interval` ns.
class CbrSender {
 public:
  CbrSender(sim::Simulator* sim, Socket* socket, size_t payload_bytes,
            Nanos interval)
      : sim_(sim),
        socket_(socket),
        payload_(payload_bytes, 0xab),
        interval_(interval) {}

  void Start(Nanos at, Nanos until) {
    until_ = until;
    sim_->ScheduleAt(at, [this] { Tick(); });
  }

  uint64_t sent() const { return sent_; }
  uint64_t failed() const { return failed_; }

 private:
  void Tick() {
    if (sim_->Now() >= until_) {
      return;
    }
    if (socket_->Send(payload_).ok()) {
      ++sent_;
    } else {
      ++failed_;
    }
    sim_->ScheduleAfter(interval_, [this] { Tick(); });
  }

  sim::Simulator* sim_;
  Socket* socket_;
  std::vector<uint8_t> payload_;  // built once; Send copies it into frames
  Nanos interval_;
  Nanos until_ = 0;
  uint64_t sent_ = 0;
  uint64_t failed_ = 0;
};

// Poisson-arrival sender: exponential interarrival with the given mean.
class PoissonSender {
 public:
  PoissonSender(sim::Simulator* sim, Socket* socket, size_t payload_bytes,
                Nanos mean_interval, uint64_t seed)
      : sim_(sim),
        socket_(socket),
        payload_(payload_bytes, 0xcd),
        mean_interval_(mean_interval),
        rng_(seed) {}

  void Start(Nanos at, Nanos until) {
    until_ = until;
    sim_->ScheduleAt(at, [this] { Tick(); });
  }

  uint64_t sent() const { return sent_; }

 private:
  void Tick() {
    if (sim_->Now() >= until_) {
      return;
    }
    if (socket_->Send(payload_).ok()) {
      ++sent_;
    }
    const auto gap = static_cast<Nanos>(
        rng_.NextExponential(static_cast<double>(mean_interval_)));
    sim_->ScheduleAfter(std::max<Nanos>(1, gap), [this] { Tick(); });
  }

  sim::Simulator* sim_;
  Socket* socket_;
  std::vector<uint8_t> payload_;  // built once; Send copies it into frames
  Nanos mean_interval_;
  Rng rng_;
  Nanos until_ = 0;
  uint64_t sent_ = 0;
};

// The buggy application from §2's debugging scenario: floods gratuitous ARP
// requests with a bogus sender MAC through its kernel-bypass connection.
// Nothing in userspace stops it — but the on-NIC ARP observer records which
// process every frame came from.
class ArpFlooder {
 public:
  ArpFlooder(sim::Simulator* sim, Socket* socket,
             net::MacAddress bogus_mac, net::Ipv4Address claimed_ip,
             Nanos interval)
      : sim_(sim),
        socket_(socket),
        bogus_mac_(bogus_mac),
        claimed_ip_(claimed_ip),
        interval_(interval) {}

  void Start(Nanos at, Nanos until) {
    until_ = until;
    sim_->ScheduleAt(at, [this] { Tick(); });
  }

  uint64_t sent() const { return sent_; }

 private:
  void Tick() {
    if (sim_->Now() >= until_) {
      return;
    }
    auto frame = net::BuildArpRequestPacket(
        bogus_mac_, claimed_ip_,
        net::Ipv4Address::FromOctets(10, 0, 0,
                                     static_cast<uint8_t>(sent_ % 250 + 1)));
    if (socket_->SendFrame(std::move(frame)).ok()) {
      ++sent_;
    }
    sim_->ScheduleAfter(interval_, [this] { Tick(); });
  }

  sim::Simulator* sim_;
  Socket* socket_;
  net::MacAddress bogus_mac_;
  net::Ipv4Address claimed_ip_;
  Nanos interval_;
  Nanos until_ = 0;
  uint64_t sent_ = 0;
};

// Greedy bulk sender: keeps the TX ring as full as possible (models an
// unconstrained bulk transfer). Retries on ring-full after a short backoff.
class BulkSender {
 public:
  BulkSender(sim::Simulator* sim, Socket* socket, size_t payload_bytes,
             Nanos attempt_interval = 500)
      : sim_(sim),
        socket_(socket),
        payload_(payload_bytes, 0xef),
        attempt_interval_(attempt_interval) {}

  void Start(Nanos at, Nanos until) {
    until_ = until;
    sim_->ScheduleAt(at, [this] { Tick(); });
  }

  uint64_t sent() const { return sent_; }
  uint64_t ring_full() const { return ring_full_; }

 private:
  void Tick() {
    if (sim_->Now() >= until_) {
      return;
    }
    // Publish a burst per tick to amortize scheduling overhead.
    for (int i = 0; i < 8; ++i) {
      const Status s = socket_->Send(payload_);
      if (s.ok()) {
        ++sent_;
      } else {
        ++ring_full_;
        break;
      }
    }
    sim_->ScheduleAfter(attempt_interval_, [this] { Tick(); });
  }

  sim::Simulator* sim_;
  Socket* socket_;
  std::vector<uint8_t> payload_;  // built once; Send copies it into frames
  Nanos attempt_interval_;
  Nanos until_ = 0;
  uint64_t sent_ = 0;
  uint64_t ring_full_ = 0;
};

}  // namespace norman::workload

#endif  // NORMAN_WORKLOAD_GENERATORS_H_
