#include "src/workload/pcap_replay.h"

#include "src/net/packet_pool.h"

#include <algorithm>

namespace norman::workload {

StatusOr<ReplayReport> ReplayPcap(sim::Simulator* sim, nic::SmartNic* nic,
                                  std::span<const uint8_t> pcap_file,
                                  const ReplayOptions& options) {
  NORMAN_ASSIGN_OR_RETURN(std::vector<net::PcapRecord> records,
                          net::ParsePcap(pcap_file));
  ReplayReport report;
  if (records.empty()) {
    return report;
  }
  const Nanos t0 = records.front().timestamp;
  bool first = true;
  for (auto& rec : records) {
    if (options.frame_filter && !options.frame_filter(rec)) {
      ++report.frames_skipped;
      continue;
    }
    const double scaled =
        static_cast<double>(rec.timestamp - t0) * options.time_scale;
    const Nanos when =
        options.start_at + static_cast<Nanos>(std::max(0.0, scaled));
    // Never schedule into the past (traces may start before Now()).
    const Nanos at = std::max(when, sim->Now());
    auto packet = net::MakePacket(std::move(rec.bytes));
    sim->ScheduleAt(at, [nic, sim, p = std::move(packet)]() mutable {
      nic->DeliverFromWire(std::move(p), sim->Now());
    });
    if (first) {
      report.first_at = at;
      first = false;
    }
    report.last_at = at;
    ++report.frames_injected;
  }
  return report;
}

}  // namespace norman::workload
