// Receive-side scaling: hash-based steering of inbound flows to RX queues.
//
// §2's debugging scenario has the administrator using "RSS custom hashing to
// partition her NIC into two 'virtual interfaces'". We model RSS as a seeded
// flow hash over the 5-tuple plus a 128-entry indirection table, like the
// Microsoft RSS spec the paper cites.
#ifndef NORMAN_NIC_RSS_H_
#define NORMAN_NIC_RSS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/net/types.h"

namespace norman::nic {

class RssEngine {
 public:
  static constexpr size_t kIndirectionEntries = 128;
  // Queues with an eagerly registered rss.steered.q<N> counter. Matches
  // the NIC's maximum shard width; steering to a higher queue id still
  // works but is only visible through the indirection table.
  static constexpr uint16_t kCountedQueues = 8;

  explicit RssEngine(uint16_t num_queues = 1, uint64_t seed = 0x6d5a6d5a)
      : seed_(seed) {
    SetNumQueues(num_queues);
  }

  // Registers the per-queue steering counters (rss.steered.q0..q7) and the
  // table-rewrite counter (rss.rebalance) eagerly, so the metric manifest
  // is shape-stable whether or not a run ever reconfigures RSS.
  void AttachMetrics(telemetry::MetricsRegistry* registry) {
    for (uint16_t q = 0; q < kCountedQueues; ++q) {
      steered_[q] =
          registry->GetCounter("rss.steered.q" + std::to_string(q));
    }
    rebalance_ = registry->GetCounter("rss.rebalance");
  }

  // Rebuilds the indirection table round-robin over `n` queues.
  void SetNumQueues(uint16_t n) {
    num_queues_ = n == 0 ? 1 : n;
    for (size_t i = 0; i < kIndirectionEntries; ++i) {
      table_[i] = static_cast<uint16_t>(i % num_queues_);
    }
    if (rebalance_ != nullptr) {
      rebalance_->Increment();
    }
  }

  uint16_t num_queues() const { return num_queues_; }

  // Custom indirection entry (the "partition the NIC" use case). Rejects
  // out-of-range slots and queues instead of silently wrapping them — a
  // typo'd queue id used to remap traffic to queue (q mod N) with no
  // diagnostic, which is exactly the class of silent misconfiguration the
  // paper's interposition layer exists to surface.
  Status SetIndirection(size_t index, uint16_t queue) {
    if (index >= kIndirectionEntries) {
      return InvalidArgumentError(
          "RSS indirection slot " + std::to_string(index) +
          " out of range (table has " + std::to_string(kIndirectionEntries) +
          " entries)");
    }
    if (queue >= num_queues_) {
      return InvalidArgumentError(
          "RSS queue " + std::to_string(queue) + " out of range (NIC has " +
          std::to_string(num_queues_) + " queues)");
    }
    table_[index] = queue;
    if (rebalance_ != nullptr) {
      rebalance_->Increment();
    }
    return OkStatus();
  }

  uint16_t indirection(size_t index) const {
    return table_[index % kIndirectionEntries];
  }

  uint32_t Hash(const net::FiveTuple& t) const {
    // Seeded FNV-1a-style mix; stands in for the Toeplitz hash (same
    // properties we need: deterministic, seed-dependent, well spread).
    uint64_t h = seed_ ^ 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    };
    mix(t.src_ip.addr);
    mix(t.dst_ip.addr);
    mix((uint64_t{t.src_port} << 16) | t.dst_port);
    mix(static_cast<uint64_t>(t.proto));
    return static_cast<uint32_t>(h ^ (h >> 32));
  }

  uint16_t Steer(const net::FiveTuple& t) const {
    const uint16_t q = table_[Hash(t) % kIndirectionEntries];
    if (q < kCountedQueues && steered_[q] != nullptr) {
      telemetry::HotIncrement(steered_[q]);
    }
    return q;
  }

 private:
  uint64_t seed_;
  uint16_t num_queues_ = 1;
  std::array<uint16_t, kIndirectionEntries> table_{};
  // Steering decisions per queue (hot-tier) and indirection rewrites
  // (control path); null until AttachMetrics.
  std::array<telemetry::Counter*, kCountedQueues> steered_{};
  telemetry::Counter* rebalance_ = nullptr;
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_RSS_H_
