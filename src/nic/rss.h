// Receive-side scaling: hash-based steering of inbound flows to RX queues.
//
// §2's debugging scenario has the administrator using "RSS custom hashing to
// partition her NIC into two 'virtual interfaces'". We model RSS as a seeded
// flow hash over the 5-tuple plus a 128-entry indirection table, like the
// Microsoft RSS spec the paper cites.
#ifndef NORMAN_NIC_RSS_H_
#define NORMAN_NIC_RSS_H_

#include <array>
#include <cstdint>

#include "src/net/types.h"

namespace norman::nic {

class RssEngine {
 public:
  static constexpr size_t kIndirectionEntries = 128;

  explicit RssEngine(uint16_t num_queues = 1, uint64_t seed = 0x6d5a6d5a)
      : seed_(seed) {
    SetNumQueues(num_queues);
  }

  // Rebuilds the indirection table round-robin over `n` queues.
  void SetNumQueues(uint16_t n) {
    num_queues_ = n == 0 ? 1 : n;
    for (size_t i = 0; i < kIndirectionEntries; ++i) {
      table_[i] = static_cast<uint16_t>(i % num_queues_);
    }
  }

  uint16_t num_queues() const { return num_queues_; }

  // Custom indirection entry (the "partition the NIC" use case).
  void SetIndirection(size_t index, uint16_t queue) {
    table_[index % kIndirectionEntries] = queue % num_queues_;
  }

  uint32_t Hash(const net::FiveTuple& t) const {
    // Seeded FNV-1a-style mix; stands in for the Toeplitz hash (same
    // properties we need: deterministic, seed-dependent, well spread).
    uint64_t h = seed_ ^ 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
      h ^= h >> 29;
    };
    mix(t.src_ip.addr);
    mix(t.dst_ip.addr);
    mix((uint64_t{t.src_port} << 16) | t.dst_port);
    mix(static_cast<uint64_t>(t.proto));
    return static_cast<uint32_t>(h ^ (h >> 32));
  }

  uint16_t Steer(const net::FiveTuple& t) const {
    return table_[Hash(t) % kIndirectionEntries];
  }

 private:
  uint64_t seed_;
  uint16_t num_queues_ = 1;
  std::array<uint16_t, kIndirectionEntries> table_{};
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_RSS_H_
