// Bounded on-NIC SRAM allocator.
//
// §5 of the paper: "SmartNICs inherently have limited memory relative to the
// amount of available on-host memory", making a KOPI vulnerable to resource
// exhaustion. Every piece of NIC-resident state — flow table entries, ring
// descriptor state, firewall rules, scheduler state — is charged against
// this allocator, so experiment E7 can drive it to exhaustion and exercise
// the software-fallback path.
#ifndef NORMAN_NIC_SRAM_H_
#define NORMAN_NIC_SRAM_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/tracepoint.h"

namespace norman::nic {

class SramAllocator {
 public:
  explicit SramAllocator(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  uint64_t capacity() const { return capacity_; }
  uint64_t used() const { return used_; }
  uint64_t available() const { return capacity_ - used_; }

  // Charges `bytes` to the named category (e.g. "flow_table", "qdisc").
  Status Allocate(const std::string& category, uint64_t bytes) {
    if (bytes > available()) {
      if (tp_ != nullptr) {
        tp_->Emit(telemetry::Probe::kSramExhausted,
                  telemetry::Tracepoints::kCoreNic, /*pid=*/0, bytes,
                  available());
      }
      return ResourceExhaustedError(
          "NIC SRAM exhausted: need " + std::to_string(bytes) + "B, have " +
          std::to_string(available()) + "B (category " + category + ")");
    }
    used_ += bytes;
    by_category_[category] += bytes;
    if (gauges_ != nullptr) gauges_->Set(static_cast<int64_t>(used_));
    if (tp_ != nullptr) {
      tp_->Emit(telemetry::Probe::kSramAlloc, telemetry::Tracepoints::kCoreNic,
                /*pid=*/0, bytes, used_);
    }
    return OkStatus();
  }

  void Free(const std::string& category, uint64_t bytes) {
    const auto it = by_category_.find(category);
    if (it == by_category_.end() || it->second < bytes || used_ < bytes) {
      return;  // tolerate sloppy callers; accounting stays non-negative
    }
    it->second -= bytes;
    used_ -= bytes;
    if (gauges_ != nullptr) gauges_->Set(static_cast<int64_t>(used_));
  }

  // Occupancy in *bytes* (not packets) under "queue.nic.sram.depth" /
  // ".high_water" — SRAM is the NIC's one bounded byte pool, and exhaustion
  // shows up in the same dashboard as every other full queue.
  void AttachGauges(telemetry::QueueDepthGauges* gauges) {
    gauges_ = gauges;
    if (gauges_ != nullptr) gauges_->Set(static_cast<int64_t>(used_));
  }

  // "sram.alloc" / "sram.exhausted" probe hookup (same attachment pattern
  // as the gauges; the allocator has no simulator pointer of its own).
  void AttachTracepoints(telemetry::Tracepoints* tp) { tp_ = tp; }

  uint64_t UsedBy(const std::string& category) const {
    const auto it = by_category_.find(category);
    return it == by_category_.end() ? 0 : it->second;
  }

  const std::map<std::string, uint64_t>& by_category() const {
    return by_category_;
  }

 private:
  uint64_t capacity_;
  uint64_t used_ = 0;
  std::map<std::string, uint64_t> by_category_;
  telemetry::QueueDepthGauges* gauges_ = nullptr;
  telemetry::Tracepoints* tp_ = nullptr;
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_SRAM_H_
