// Bounded on-NIC SRAM allocator.
//
// §5 of the paper: "SmartNICs inherently have limited memory relative to the
// amount of available on-host memory", making a KOPI vulnerable to resource
// exhaustion. Every piece of NIC-resident state — flow table entries, ring
// descriptor state, firewall rules, scheduler state — is charged against
// this allocator, so experiment E7 can drive it to exhaustion and exercise
// the software-fallback path.
#ifndef NORMAN_NIC_SRAM_H_
#define NORMAN_NIC_SRAM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/tracepoint.h"

namespace norman::nic {

class SramAllocator {
 public:
  explicit SramAllocator(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  uint64_t capacity() const { return capacity_; }
  uint64_t used() const { return used_; }
  uint64_t available() const { return capacity_ - used_; }

  // Charges `bytes` to the named category (e.g. "flow_table", "qdisc").
  // Anonymous form: no owning pid/tenant (wire traffic, shared state).
  Status Allocate(const std::string& category, uint64_t bytes) {
    return Allocate(category, bytes, /*pid=*/0, /*tenant=*/0);
  }

  // Owner-attributed charge. `tenant` 0 is the unquota'd system share;
  // a nonzero tenant is additionally checked against its byte quota (if
  // one is set), so one tenant's blow-up exhausts its own budget, not the
  // device. Both exhaustion paths name the culprit: the tracepoint carries
  // the requesting pid and a2 = tenant so postmortem bundles can attribute
  // the pressure instead of reporting a bare category.
  Status Allocate(const std::string& category, uint64_t bytes, uint32_t pid,
                  uint32_t tenant) {
    if (tenant != 0) {
      const auto quota = tenant_quota_.find(tenant);
      if (quota != tenant_quota_.end() &&
          tenant_used_[tenant] + bytes > quota->second) {
        if (tp_ != nullptr) {
          tp_->Emit(telemetry::Probe::kSramExhausted,
                    telemetry::Tracepoints::kCoreNic, pid, bytes,
                    quota->second - tenant_used_[tenant], tenant);
        }
        return ResourceExhaustedError(
            "tenant " + std::to_string(tenant) + " SRAM quota exhausted: need " +
            std::to_string(bytes) + "B, have " +
            std::to_string(quota->second - tenant_used_[tenant]) +
            "B of quota (category " + category + ", pid " +
            std::to_string(pid) + ")");
      }
    }
    if (bytes > available()) {
      if (tp_ != nullptr) {
        tp_->Emit(telemetry::Probe::kSramExhausted,
                  telemetry::Tracepoints::kCoreNic, pid, bytes, available(),
                  tenant);
      }
      return ResourceExhaustedError(
          "NIC SRAM exhausted: need " + std::to_string(bytes) + "B, have " +
          std::to_string(available()) + "B (category " + category + ", pid " +
          std::to_string(pid) + ")");
    }
    used_ += bytes;
    by_category_[category] += bytes;
    if (tenant != 0) {
      tenant_used_[tenant] += bytes;
      if (tenant_observer_) tenant_observer_(tenant, tenant_used_[tenant]);
    }
    if (gauges_ != nullptr) gauges_->Set(static_cast<int64_t>(used_));
    if (tp_ != nullptr) {
      tp_->Emit(telemetry::Probe::kSramAlloc, telemetry::Tracepoints::kCoreNic,
                pid, bytes, used_, tenant);
    }
    return OkStatus();
  }

  void Free(const std::string& category, uint64_t bytes,
            uint32_t tenant = 0) {
    const auto it = by_category_.find(category);
    if (it == by_category_.end() || it->second < bytes || used_ < bytes) {
      return;  // tolerate sloppy callers; accounting stays non-negative
    }
    it->second -= bytes;
    used_ -= bytes;
    if (tenant != 0) {
      auto tu = tenant_used_.find(tenant);
      if (tu != tenant_used_.end()) {
        tu->second -= tu->second < bytes ? tu->second : bytes;
        if (tenant_observer_) tenant_observer_(tenant, tu->second);
      }
    }
    if (gauges_ != nullptr) gauges_->Set(static_cast<int64_t>(used_));
  }

  // ---- per-tenant quota dimension ----------------------------------------

  // Caps `tenant`'s total SRAM footprint at `bytes`. Existing usage is not
  // reclaimed; new charges over the cap fail with ResourceExhausted.
  void SetTenantQuota(uint32_t tenant, uint64_t bytes) {
    if (tenant != 0) tenant_quota_[tenant] = bytes;
  }

  // Removes the cap (usage tracking continues while entries remain).
  void ClearTenantQuota(uint32_t tenant) { tenant_quota_.erase(tenant); }

  uint64_t TenantUsed(uint32_t tenant) const {
    const auto it = tenant_used_.find(tenant);
    return it == tenant_used_.end() ? 0 : it->second;
  }

  // 0 = no quota configured (unlimited).
  uint64_t TenantQuota(uint32_t tenant) const {
    const auto it = tenant_quota_.find(tenant);
    return it == tenant_quota_.end() ? 0 : it->second;
  }

  // Observer invoked with (tenant, used_bytes) after every attributed
  // charge/free; the NIC wires this to the tenant.<id>.sram_bytes gauge.
  void SetTenantObserver(std::function<void(uint32_t, uint64_t)> fn) {
    tenant_observer_ = std::move(fn);
  }

  // Occupancy in *bytes* (not packets) under "queue.nic.sram.depth" /
  // ".high_water" — SRAM is the NIC's one bounded byte pool, and exhaustion
  // shows up in the same dashboard as every other full queue.
  void AttachGauges(telemetry::QueueDepthGauges* gauges) {
    gauges_ = gauges;
    if (gauges_ != nullptr) gauges_->Set(static_cast<int64_t>(used_));
  }

  // "sram.alloc" / "sram.exhausted" probe hookup (same attachment pattern
  // as the gauges; the allocator has no simulator pointer of its own).
  void AttachTracepoints(telemetry::Tracepoints* tp) { tp_ = tp; }

  uint64_t UsedBy(const std::string& category) const {
    const auto it = by_category_.find(category);
    return it == by_category_.end() ? 0 : it->second;
  }

  const std::map<std::string, uint64_t>& by_category() const {
    return by_category_;
  }

 private:
  uint64_t capacity_;
  uint64_t used_ = 0;
  std::map<std::string, uint64_t> by_category_;
  std::map<uint32_t, uint64_t> tenant_used_;
  std::map<uint32_t, uint64_t> tenant_quota_;
  std::function<void(uint32_t, uint64_t)> tenant_observer_;
  telemetry::QueueDepthGauges* gauges_ = nullptr;
  telemetry::Tracepoints* tp_ = nullptr;
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_SRAM_H_
