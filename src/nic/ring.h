// Per-connection descriptor ring pair (TX + RX), the application dataplane
// interface of §4.3: "the in-kernel control plane allocates (and pins)
// memory for a pair of per-connection ring-buffers that the application uses
// to send and receive data", with head/tail pointers mirrored in SmartNIC
// MMIO registers.
//
// In the simulation a ring slot carries an owning PacketPtr (standing in for
// a descriptor pointing at pinned host memory). The *bytes* footprint below
// is what the DDIO model sees as the ring's cache working set.
#ifndef NORMAN_NIC_RING_H_
#define NORMAN_NIC_RING_H_

#include <cstdint>
#include <span>

#include "src/common/fixed_ring.h"
#include "src/common/metrics.h"
#include "src/net/packet.h"

namespace norman::nic {

// Default ring geometry: 256 descriptors x 2KB buffers = 512KB per ring...
// deliberately *not*. The paper's scaling cliff arithmetic needs rings whose
// combined working set passes the DDIO share (4MiB) around ~1024
// connections: 1024 conns x (2 rings x 2KiB hot working set) = 4MiB. A
// ring's *hot* working set is the recently-touched descriptors + buffers,
// which we model as kHotWorkingSetBytes, far below the ring's total pinned
// allocation.
inline constexpr uint32_t kDefaultRingEntries = 256;
inline constexpr uint64_t kDefaultBufferBytes = 2048;
inline constexpr uint64_t kHotWorkingSetBytes = 2048;

class RingPair {
 public:
  explicit RingPair(uint32_t entries = kDefaultRingEntries)
      : tx_(entries), rx_(entries) {}

  ~RingPair() {
    // Occupants die with the ring; keep the aggregate gauges honest.
    if (tx_gauges_ != nullptr)
      telemetry::HotAdd(tx_gauges_, -static_cast<int64_t>(tx_.size()));
    if (rx_gauges_ != nullptr)
      telemetry::HotAdd(rx_gauges_, -static_cast<int64_t>(rx_.size()));
  }

  FixedRing<net::PacketPtr>& tx() { return tx_; }
  FixedRing<net::PacketPtr>& rx() { return rx_; }

  // Gauge-aware access. The gauges aggregate occupancy across every ring of
  // the NIC ("queue.nic.tx_ring" / "queue.nic.rx_ring"), so all push/pop
  // traffic must flow through these wrappers once gauges are attached.
  // Per-frame occupancy tracking is hot-tier telemetry: at stats level 0
  // the gauge updates compile out (see metrics.h).
  // Push takes by value like FixedRing::TryPush: a refused packet is
  // destroyed with the temporary unless the caller kept a reference.
  bool PushTx(net::PacketPtr p) {
    const bool ok = tx_.TryPush(std::move(p));
    if (ok && tx_gauges_ != nullptr) telemetry::HotAdd(tx_gauges_, 1);
    return ok;
  }
  std::optional<net::PacketPtr> PopTx() {
    auto p = tx_.TryPop();
    if (p.has_value() && tx_gauges_ != nullptr)
      telemetry::HotAdd(tx_gauges_, -1);
    return p;
  }
  bool PushRx(net::PacketPtr p) {
    const bool ok = rx_.TryPush(std::move(p));
    if (ok && rx_gauges_ != nullptr) telemetry::HotAdd(rx_gauges_, 1);
    return ok;
  }
  std::optional<net::PacketPtr> PopRx() {
    auto p = rx_.TryPop();
    if (p.has_value() && rx_gauges_ != nullptr)
      telemetry::HotAdd(rx_gauges_, -1);
    return p;
  }

  // Bulk variants over FixedRing::PushN/PopN: one gauge update per burst
  // instead of one per frame. An incremental sequence of pushes peaks at
  // the same depth as one bulk push of the same count, so the high-water
  // latch is unchanged by batching.
  uint32_t PushTxN(std::span<net::PacketPtr> src) {
    const uint32_t n = tx_.PushN(src);
    if (n != 0 && tx_gauges_ != nullptr)
      telemetry::HotAdd(tx_gauges_, static_cast<int64_t>(n));
    return n;
  }
  uint32_t PopTxN(std::span<net::PacketPtr> dst) {
    const uint32_t n = tx_.PopN(dst);
    if (n != 0 && tx_gauges_ != nullptr)
      telemetry::HotAdd(tx_gauges_, -static_cast<int64_t>(n));
    return n;
  }
  uint32_t PushRxN(std::span<net::PacketPtr> src) {
    const uint32_t n = rx_.PushN(src);
    if (n != 0 && rx_gauges_ != nullptr)
      telemetry::HotAdd(rx_gauges_, static_cast<int64_t>(n));
    return n;
  }
  uint32_t PopRxN(std::span<net::PacketPtr> dst) {
    const uint32_t n = rx_.PopN(dst);
    if (n != 0 && rx_gauges_ != nullptr)
      telemetry::HotAdd(rx_gauges_, -static_cast<int64_t>(n));
    return n;
  }

  // Oldest (i == 0) or i-th-oldest queued TX descriptor, without consuming
  // it; nullptr when fewer than i+1 are queued. The batched TX drain uses
  // this to prefetch the next descriptor's payload.
  const net::PacketPtr* PeekTx(uint32_t i = 0) const { return tx_.PeekAt(i); }

  void AttachGauges(telemetry::QueueDepthGauges* tx_gauges,
                    telemetry::QueueDepthGauges* rx_gauges) {
    tx_gauges_ = tx_gauges;
    rx_gauges_ = rx_gauges;
  }

  // Total pinned host memory backing this pair.
  uint64_t PinnedBytes() const {
    return 2 * static_cast<uint64_t>(tx_.capacity()) * kDefaultBufferBytes;
  }

  // Cache-resident working set per ring for the DDIO model.
  uint64_t HotBytesPerRing() const { return kHotWorkingSetBytes; }

 private:
  FixedRing<net::PacketPtr> tx_;
  FixedRing<net::PacketPtr> rx_;
  telemetry::QueueDepthGauges* tx_gauges_ = nullptr;
  telemetry::QueueDepthGauges* rx_gauges_ = nullptr;
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_RING_H_
