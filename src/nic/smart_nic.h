// The simulated on-path FPGA SmartNIC (§4.1-§4.2).
//
// All packets traverse this device: TX descriptors are fetched from
// per-connection rings by the DMA engine (through the DDIO cache model),
// flow through the installed pipeline stages (filter, sniffer, NAT — see
// src/dataplane) at the pipeline's line rate, are ordered by the installed
// queueing discipline, and serialized onto the wire. RX reverses the path:
// wire -> pipeline -> flow-table match -> RSS -> DMA into the connection's
// RX ring -> notification.
//
// Privilege separation follows the paper: the *kernel* obtains the single
// ControlPlane capability (TakeControlPlane) and is the only agent that can
// install flows, load overlay programs, change the scheduler, or attach
// stages. Applications only ever receive per-connection ring/doorbell
// handles through the kernel (src/kernel, src/norman), so "applications
// cannot evade policies enforced by the interposition layer" (§3).
#ifndef NORMAN_NIC_SMART_NIC_H_
#define NORMAN_NIC_SMART_NIC_H_

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <unordered_set>
#include <vector>

#include "src/common/drop_reason.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/common/status.h"
#include "src/common/tracepoint.h"
#include "src/common/units.h"
#include "src/net/packet.h"
#include "src/net/parsed_packet.h"
#include "src/nic/ddio.h"
#include "src/nic/flow_cache.h"
#include "src/nic/flow_table.h"
#include "src/nic/mmio.h"
#include "src/nic/notification.h"
#include "src/nic/pipeline.h"
#include "src/nic/ring.h"
#include "src/nic/rss.h"
#include "src/nic/sram.h"
#include "src/nic/tenant_table.h"
#include "src/nic/top_talkers.h"
#include "src/overlay/isa.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace norman::nic {

// Overlay program slots in NIC instruction memory (filter, classifier,
// scheduler parameters, spare).
inline constexpr size_t kNumOverlaySlots = 4;

// NIC datapath statistics, registry-backed: every field is a
// telemetry::Counter registered under "nic.*" in the owning simulator's
// MetricsRegistry, so `norman-stat`, JSON export, and the CI manifest all
// see the same numbers the accessors below return. Hot-path increments are
// pointer-indirect adds — same cost as the bare struct this replaces.
//
// Drops are first-class: every discarded packet lands in exactly one
// per-reason counter ("nic.tx.drop.<reason>" / "nic.rx.drop.<reason>")
// plus an owner-annotated ledger keyed (direction, reason, owner pid) that
// `norman-stat --drops` renders. The legacy aggregate fields (tx_dropped,
// rx_ring_overflow, ...) are derived sums over those reason counters.
class NicStats {
 public:
  explicit NicStats(telemetry::MetricsRegistry* registry);

  uint64_t tx_seen() const { return tx_seen_->value(); }
  uint64_t tx_accepted() const { return tx_accepted_->value(); }
  // Pipeline-verdict drops (stage said kDrop), all reasons summed.
  uint64_t tx_dropped() const;
  // Scheduler-side drops: queue overflow + pacer rate limiting.
  uint64_t tx_sched_dropped() const {
    return tx_drops(DropReason::kSchedOverflow) +
           tx_drops(DropReason::kRateLimited);
  }
  uint64_t tx_fallback() const { return tx_fallback_->value(); }
  uint64_t tx_bytes_wire() const { return tx_bytes_wire_->value(); }
  uint64_t rx_seen() const { return rx_seen_->value(); }
  uint64_t rx_accepted() const { return rx_accepted_->value(); }
  uint64_t rx_dropped() const;
  uint64_t rx_fallback() const { return rx_fallback_->value(); }
  uint64_t rx_ring_overflow() const {
    return rx_drops(DropReason::kRingFull);
  }
  uint64_t rx_unmatched() const { return rx_unmatched_->value(); }
  uint64_t dma_transfers() const { return dma_transfers_->value(); }
  uint64_t overlay_instructions() const {
    return overlay_instructions_->value();
  }

  uint64_t tx_drops(DropReason reason) const {
    return tx_drop_[static_cast<size_t>(reason)]->value();
  }
  uint64_t rx_drops(DropReason reason) const {
    return rx_drop_[static_cast<size_t>(reason)]->value();
  }
  uint64_t total_drops() const;

  // One ledger row per (direction, reason, owning pid) with a nonzero
  // count; pid 0 means "no registered owner" (unmatched wire traffic).
  struct DropRecord {
    net::Direction direction;
    DropReason reason;
    uint32_t owner_pid;
    uint64_t count;
  };
  // Sorted by (direction, reason, pid) — deterministic render order.
  std::vector<DropRecord> DropLedger() const;

  // The single accounting point: bumps the per-reason counter and the
  // owner ledger. `reason` must not be kNone. When a profiler is attached
  // the drop also lands in the owner's attr.* resource ledger. `tp_core`
  // selects the tracepoint ring the drop probe lands in — sharded lanes
  // pass their own core so per-lane decision sequences stay separable.
  // `tenant` attributes the drop to a tenant's tenant.<id>.drops counter
  // (0 = untenanted; the ledger and tracepoint carry the pid either way).
  void RecordDrop(net::Direction dir, DropReason reason, uint32_t owner_pid,
                  uint32_t tp_core = telemetry::Tracepoints::kCoreNic,
                  uint32_t tenant = 0);

  // Mirror drops into the cycle-attribution owner ledger (attr.*.drops).
  void AttachProfiler(telemetry::Profiler* prof) { prof_ = prof; }

  // Mirror tenant-attributed drops into tenant.<id>.drops.
  void AttachTenants(TenantTable* tenants) { tenants_ = tenants; }

  // Mirror drops into the tracepoint stream: qdisc/rate-limit drops emit
  // "qdisc.drop", ring-full drops "ring.full", everything else "nic.drop".
  void AttachTracepoints(telemetry::Tracepoints* tp) { tp_ = tp; }

  // Zero this NIC's counters and ledger (registrations survive; other
  // metrics in the registry are untouched).
  void Reset();

 private:
  friend class SmartNic;

  telemetry::Counter* tx_seen_;
  telemetry::Counter* tx_accepted_;
  telemetry::Counter* tx_fallback_;
  telemetry::Counter* tx_bytes_wire_;
  telemetry::Counter* rx_seen_;
  telemetry::Counter* rx_accepted_;
  telemetry::Counter* rx_fallback_;
  telemetry::Counter* rx_unmatched_;
  telemetry::Counter* dma_transfers_;
  telemetry::Counter* overlay_instructions_;
  // Indexed by DropReason; slot 0 (kNone) is null — recording it is a bug.
  std::array<telemetry::Counter*, kNumDropReasons> tx_drop_{};
  std::array<telemetry::Counter*, kNumDropReasons> rx_drop_{};
  // (direction, reason, pid) -> count. Ordered map for stable output.
  std::map<std::tuple<uint8_t, uint8_t, uint32_t>, uint64_t> ledger_;
  telemetry::Profiler* prof_ = nullptr;
  telemetry::Tracepoints* tp_ = nullptr;
  TenantTable* tenants_ = nullptr;
  // Backing registry, kept so TxBurst accumulators register as pending
  // (reports and simulator teardown flush them; see MetricsRegistry).
  telemetry::MetricsRegistry* registry_ = nullptr;
};

class SmartNic {
 public:
  struct Options {
    sim::CostModel cost;
    uint64_t sram_bytes = 8 * kMiB;
    uint16_t num_rx_queues = 8;
    uint32_t ring_entries = kDefaultRingEntries;
    // Max TX descriptors fetched per consumer wake-up. Batching elides the
    // per-descriptor re-arm event when (and only when) no other event could
    // run in between, so virtual-time behavior is bit-identical to
    // unbatched runs while host-time event dispatch amortizes per batch.
    uint32_t tx_fetch_batch = 16;
    // RX ingest verifies IPv4/L4 checksums and drops damaged frames with
    // DropReason::kCorrupt (graceful degradation under wire faults). Costs
    // zero virtual time — real NICs verify in the MAC at line rate.
    bool verify_rx_checksums = true;
    // Entries per sharded lane's ingress/staging ring pair (power of two).
    // Only used once EnableSharding carves lanes.
    uint32_t lane_ring_entries = 1024;
  };

  // Upper bound on sharded dataplane lanes (matches the default RX queue
  // count and the tracepoint layer's per-lane ring allowance).
  static constexpr uint16_t kMaxShardQueues = 8;
  // Frames a lane drain pops per event through the span APIs.
  static constexpr uint32_t kLaneDrainBatch = 16;

  SmartNic(sim::Simulator* sim, Options options);
  ~SmartNic();

  SmartNic(const SmartNic&) = delete;
  SmartNic& operator=(const SmartNic&) = delete;

  // ---- Kernel-only control plane ----------------------------------------
  class ControlPlane {
   public:
    // Flow management. Insert charges NIC SRAM; ResourceExhausted signals
    // the kernel to use the host fallback path for this connection.
    Status InstallFlow(const FlowEntry& entry);
    Status RemoveFlow(net::ConnectionId conn_id);
    FlowEntry* LookupFlow(net::ConnectionId conn_id);
    const FlowTable& flow_table() const { return nic_->flow_table_; }

    // Ring/doorbell resources for a connection the kernel is setting up.
    // The kernel passes these (not the SmartNic) to the application.
    RingPair* GetRings(net::ConnectionId conn_id);
    DoorbellWindow MapDoorbell(net::ConnectionId conn_id);

    // Pipeline composition. Stages run in installation order; TX and RX
    // chains are independent. Stages are owned by the caller (kernel).
    void AddTxStage(PipelineStage* stage);
    void AddRxStage(PipelineStage* stage);
    void ClearStages();
    Status SetScheduler(std::unique_ptr<Scheduler> scheduler);
    Scheduler* scheduler() { return nic_->scheduler_.get(); }

    // Overlay management (§4.4). LoadOverlay verifies the program, charges
    // the MMIO-load reconfiguration time, and returns when the new program
    // becomes active. ReloadBitstream models a full FPGA reprogram.
    StatusOr<Nanos> LoadOverlay(size_t slot, const overlay::Program& program);
    const overlay::Program* OverlaySlot(size_t slot) const;
    uint64_t overlay_generation(size_t slot) const;
    Nanos ReloadBitstream();

    // Notification queues, one per process (§4.3).
    NotificationQueue* RegisterNotificationQueue(uint32_t pid);
    NotificationQueue* GetNotificationQueue(uint32_t pid);

    // RSS configuration (the "partition the NIC" debugging scenario).
    RssEngine& rss() { return nic_->rss_; }

    // Shards the dataplane into `num_queues` per-core lanes (§ DESIGN.md
    // "Multi-queue sharding"): per-queue RX/TX ring pairs, per-lane
    // pipeline/stage/DMA resources, a partitioned flow cache, and the
    // simulator's deterministic lane-interleave schedule. Off by default —
    // pinned golden trajectories predate it. One-shot: re-sharding a live
    // dataplane would orphan in-flight lane state.
    Status EnableSharding(uint16_t num_queues);
    bool sharded() const { return !nic_->lanes_.empty(); }
    uint16_t shard_queues() const {
      return static_cast<uint16_t>(nic_->lanes_.size());
    }

    // Validated indirection-table rewrite: rejects out-of-range slots and
    // queues (see RssEngine::SetIndirection) and, when the dataplane is
    // sharded, invalidates the flow-cache partitions on both sides of the
    // migration so re-steered flows re-walk the chain on their new lane.
    Status SetRssIndirection(size_t index, uint16_t queue);

    // Per-flow accounting for norman-top (§3's continuous interposition).
    // Off by default: recording is pure observation, but the kernel decides
    // whether to spend NIC SRAM on it. Returns the live table; re-enabling
    // with a different bound rebuilds it.
    TopTalkers* EnableTopTalkers(size_t max_entries = 64);
    void DisableTopTalkers() { nic_->top_talkers_.reset(); }
    TopTalkers* top_talkers() { return nic_->top_talkers_.get(); }

    // Flow verdict cache (the megaflow-style fast path). Off by default —
    // pinned golden trajectories predate it — and opt-in per NIC; hits are
    // charged flow_cache_hit_ns instead of the full chain walk, so enabling
    // it changes virtual completion times (never verdicts or state).
    FlowCache* EnableFlowCache(size_t max_entries = 1024);
    void DisableFlowCache();
    FlowCache& flow_cache() { return nic_->flow_cache_; }

    // Bumps the fast-path configuration epoch: every cached verdict minted
    // before this call becomes a miss. Mutating ControlPlane operations
    // call it internally; the kernel must also call it for reconfigurations
    // the NIC cannot observe (filter rule edits, capture toggles, conntrack
    // expiry, pacer changes).
    void InvalidateFastPath();

    // ---- NIC-side fault injection (chaos campaigns) ----------------------
    // Holds `bytes` of NIC SRAM hostage under the "fault_pressure" SRAM
    // category (cumulative across calls), so flow installs and NAT port
    // allocations see transient ResourceExhausted exactly as they would
    // under a real SRAM squeeze. Mirrored in kRegFaultSramPressure.
    Status InjectSramPressure(uint64_t bytes);
    // Returns every hostage byte to the allocator.
    void ReleaseSramPressure();
    uint64_t sram_pressure_bytes() const {
      return nic_->fault_sram_pressure_;
    }
    // While stalled, PostNotification defers completions into a holding pen
    // instead of waking applications (a wedged interrupt path); resuming
    // flushes the pen in arrival order. Mirrored in kRegFaultNotifyStall.
    void StallNotifications(bool stalled);
    bool notifications_stalled() const { return nic_->notify_stalled_; }

    // ---- Multi-tenant isolation (OSMOSIS-style quotas + cycle shares) ----
    // Registers (or re-weights) a tenant: an SRAM byte quota (0 =
    // unlimited) and an integer WFQ weight over NIC pipeline cycles per
    // lane. Enforcement of the cycle share additionally requires
    // SetTenantIsolation(true); the SRAM quota binds as soon as it is set.
    void ConfigureTenant(uint32_t tenant, uint32_t cycle_weight,
                         uint64_t sram_quota_bytes);
    // Releases the tenant's share and quota. NIC state already charged to
    // the tenant keeps draining against its (now unlimited) usage ledger.
    void RemoveTenant(uint32_t tenant);
    // Arms/disarms WFQ cycle-share enforcement. Off (the default) keeps
    // every trajectory bit-identical to the pre-tenancy dataplane.
    void SetTenantIsolation(bool on);
    TenantTable& tenants() { return nic_->tenant_table_; }

    // Host software fallback sink for packets the NIC diverts (E7).
    void SetFallbackSink(
        std::function<void(net::PacketPtr, net::Direction)> sink);

    // Raw privileged register access.
    PrivilegedMmio& mmio() { return nic_->priv_mmio_; }

    SramAllocator& sram() { return nic_->sram_; }
    DdioModel& ddio() { return nic_->ddio_; }

   private:
    friend class SmartNic;
    explicit ControlPlane(SmartNic* nic) : nic_(nic) {}
    SmartNic* nic_;
  };

  // The kernel calls this exactly once at boot; later calls return null.
  std::unique_ptr<ControlPlane> TakeControlPlane();

  // ---- Application-visible datapath (handles granted by the kernel) -----
  // Called by the Norman library after the app pushed descriptors into its
  // TX ring and wrote the doorbell register: the NIC begins consuming the
  // ring. `now` is the doorbell MMIO arrival time.
  Status Doorbell(net::ConnectionId conn_id, Nanos now);

  // Host-injected TX: frames originating in kernel software (the fallback
  // slow path of E7, and NIC-generated ARP replies). Still traverses the
  // full TX interposition pipeline and scheduler — software-path traffic is
  // not exempt from policy.
  void InjectHostPacket(net::PacketPtr packet, Nanos now);

  // ---- Network side ------------------------------------------------------
  // A frame arrives from the wire at time `now`.
  void DeliverFromWire(net::PacketPtr packet, Nanos now);

  // Sink invoked (in virtual time) for every frame the NIC puts on the wire.
  void SetWireSink(std::function<void(net::PacketPtr)> sink) {
    wire_sink_ = std::move(sink);
  }

  // ---- Introspection ------------------------------------------------------
  const NicStats& stats() const { return stats_; }
  const sim::Resource& wire() const { return wire_; }
  const sim::Resource& pipeline_resource() const { return pipeline_; }
  const sim::Resource& dma_engine() const { return dma_engine_; }
  // Aggregate stage-execution time (per-stage latency + overlay
  // instructions, or the flow-cache hit cost on fast-path replays).
  // Accounting-only: the completion-time model is unchanged; this resource
  // exists so stage time is invariant-bound in the profiler like every
  // other core.
  const sim::Resource& stage_engine() const { return stages_; }
  const DdioModel& ddio() const { return ddio_; }
  const TenantTable& tenants() const { return tenant_table_; }
  const sim::CostModel& cost() const { return options_.cost; }
  uint64_t mmio_writes() const { return regs_.write_count(); }
  sim::Simulator* simulator() { return sim_; }
  // Sharding introspection (0 lanes = the historical serial dataplane).
  bool sharded() const { return !lanes_.empty(); }
  uint16_t shard_queues() const {
    return static_cast<uint16_t>(lanes_.size());
  }

  void ResetStats() { stats_.Reset(); }

 private:
  friend class ControlPlane;

  struct TxWork {
    net::PacketPtr packet;
    net::ConnectionId conn_id;
  };

  // DDIO ring ids: even = TX ring of conn, odd = RX ring of conn.
  static uint64_t TxRingId(net::ConnectionId c) { return uint64_t{c} * 2; }
  static uint64_t RxRingId(net::ConnectionId c) { return uint64_t{c} * 2 + 1; }

  overlay::PacketContext MakeContext(const net::Packet& packet,
                                     const net::ParsedPacket* parsed,
                                     const FlowEntry* entry,
                                     net::Direction dir) const;

  // Scratch state RunStages fills while summarizing a chain walk into a
  // flow-cache entry. `cacheable` goes false the moment the walk does
  // something the cache cannot replay (uncacheable stage, a mutation that
  // is not a plain src/dst rewrite, more than one rewrite).
  struct FlowCacheMint {
    FlowCacheEntry entry;
    bool cacheable = true;
  };

  // Runs the chain, aggregating overlay instruction counts and stopping at
  // the first non-Accept verdict. Stages that report `mutated` trigger an
  // in-place re-parse, so `ctx.parsed` (and the packet's cached parse) is
  // always fresh for downstream stages, schedulers, and RSS — the frame is
  // parsed exactly once unless something rewrote it. When `mint` is
  // non-null the walk is summarized into a prospective flow-cache entry.
  // For traced packets (trace_id != 0) emits one span per executed stage
  // starting at `stage_start`, each charged stage latency + its overlay
  // instructions, so the spans tile exactly onto the pipeline's cost-model
  // time.
  // One dataplane shard (EnableSharding): per-core virtual-time resources
  // that serve in parallel across lanes, the per-queue ingress/staging
  // ring pair, profiler core ids and drain state. Resources own their
  // per-queue names ("nic.pipeline.q<N>", ...).
  struct Lane {
    Lane(uint16_t idx, uint32_t ring_entries)
        : index(idx),
          pipeline("nic.pipeline.q" + std::to_string(idx)),
          stages("nic.stages.q" + std::to_string(idx)),
          dma("nic.dma.q" + std::to_string(idx)),
          rings(ring_entries) {}
    uint16_t index;
    sim::Resource pipeline;
    sim::Resource stages;
    sim::Resource dma;
    // RX side: wire-ingress frames awaiting this lane's batched drain.
    // TX side: host-injected frames staged for this lane's TX path.
    // Depth flows into the per-queue gauges (queue.nic.*_ring.q<N>).
    RingPair rings;
    bool rx_drain_scheduled = false;
    bool tx_drain_scheduled = false;
    uint32_t core_pipe = 0;
    uint32_t core_stages = 0;
    uint32_t core_dma = 0;
    // Per-core burst scratch (the lane's packet-pool staging): drains pop
    // span bursts into this array instead of allocating per pass.
    std::array<net::PacketPtr, kLaneDrainBatch> burst;
  };

  // Which resources/cores a packet charges: the shared (unsharded) set or
  // one lane's. Threading this through the datapath keeps the sharded and
  // historical paths one body of code.
  struct LaneRefs {
    sim::Resource* pipeline;
    sim::Resource* stages;
    sim::Resource* dma;
    uint32_t core_pipe;
    uint32_t core_stages;
    uint32_t core_dma;
    uint32_t tp_core;     // tracepoint ring for this context
    uint16_t lane;        // sim::Simulator::kNoLane when unsharded
    uint16_t cache_part;  // flow-cache partition (0 unsharded)
  };

  // `stage_sites` is the per-stage attribution-site vector parallel to
  // `stages` (tx_stage_sites_/rx_stage_sites_); each executed stage's cost
  // is charged to `lr`'s stage engine and, when profiling, to the stage's
  // own node under the enclosing scope for `owner_slot`.
  StageResult RunStages(const LaneRefs& lr,
                        const std::vector<PipelineStage*>& stages,
                        net::Packet& packet, overlay::PacketContext& ctx,
                        Nanos stage_start, uint32_t trace_id,
                        FlowCacheMint* mint,
                        std::vector<telemetry::ProfSite>& stage_sites,
                        uint32_t owner_slot);

  // Replays a cached entry instead of walking the chain: applies the cached
  // header rewrite at its recorded chain position (re-parsing in place) and
  // runs the observer stages flagged in the entry's bitmask, so stateful
  // stages see hit packets exactly as they would on a miss. Returns the
  // overlay instructions the observers executed.
  uint32_t ReplayFastPath(const FlowCacheEntry& entry,
                          const std::vector<PipelineStage*>& stages,
                          net::Packet& packet, overlay::PacketContext& ctx);

  // Burst-local accumulators for the TX volume counters (tentpole (c)):
  // per-packet increments land in stack locals and flush to the registry
  // once per burst — on scope exit, so early returns cannot lose counts.
  // Drop accounting never goes through here; RecordDrop stays per-event and
  // exact at every stats level.
  struct TxBurst {
    explicit TxBurst(NicStats* s)
        : seen(s->tx_seen_, s->registry_),
          accepted(s->tx_accepted_, s->registry_),
          fallback(s->tx_fallback_, s->registry_),
          dma(s->dma_transfers_, s->registry_),
          overlay(s->overlay_instructions_, s->registry_) {}
    telemetry::BatchedCounter seen;
    telemetry::BatchedCounter accepted;
    telemetry::BatchedCounter fallback;
    telemetry::BatchedCounter dma;
    telemetry::BatchedCounter overlay;
  };

  // Consecutive-packet flow-cache memo for one TX burst. A burst serves a
  // single connection, so back-to-back packets almost always share the
  // cache key; the memo replays the previous packet's hit without the hash
  // walk. `entry` is non-null only immediately after a successful Lookup
  // and is dropped on any other cache path (miss, insert, uncacheable) —
  // those can evict or rehash and would dangle it. LRU order is unchanged:
  // only consecutive hits on the already-most-recent entry coalesce.
  struct FastPathMemo {
    FlowCacheKey key;
    const FlowCacheEntry* entry = nullptr;
  };

  // `entry` is the burst-hoisted flow-table entry for conn_id (nullable);
  // `memo` may be null (host-injected packets bypass burst memoization).
  void ProcessTxDescriptor(net::PacketPtr packet, net::ConnectionId conn_id,
                           FlowEntry* entry, Nanos now, TxBurst& burst,
                           FastPathMemo* memo, const LaneRefs& lr);
  void ConsumeTxRing(net::ConnectionId conn_id);
  // The RX datapath body (pipeline → stages/fast path → flow match → DMA →
  // ring push → notify) for one frame, charging `lr`'s resources. When
  // `parsed_at_ingress` the sharded steering step already parsed the frame
  // at wire arrival, so the single-pass parse is not repeated.
  void ProcessRxFrame(const LaneRefs& lr, net::PacketPtr packet, Nanos now,
                      bool parsed_at_ingress);
  // Batched lane drains: pop up to kLaneDrainBatch frames through the span
  // APIs and run them through the lane's resources; re-arm via the
  // simulator's lane-interleave schedule while frames remain.
  void DrainRxLane(uint16_t queue);
  void DrainTxLane(uint16_t queue);
  Status EnableShardingImpl(uint16_t num_queues);
  LaneRefs LaneRefsFor(uint16_t queue);
  // TX lane for a flow: the seeded RSS hash of its TX tuple, so a flow's
  // two directions land on deterministic (generally matching) lanes.
  uint16_t TxLaneOf(const FlowEntry* entry) const;
  void DrainWire();
  void ScheduleDrain(Nanos when);
  void EmitToWire(net::PacketPtr packet);
  void PostNotification(const FlowEntry& entry, NotificationKind kind,
                        Nanos now, uint16_t queue = 0);

  sim::Simulator* sim_;
  Options options_;

  RegisterFile regs_;
  PrivilegedMmio priv_mmio_{&regs_};
  SramAllocator sram_;
  DdioModel ddio_;
  FlowTable flow_table_;
  RssEngine rss_;

  // Aggregate occupancy gauges for every bounded queue on the device
  // ("queue.nic.*"). Declared before rings_/notif_queues_ so they outlive
  // the queues whose destructors settle them.
  telemetry::QueueDepthGauges tx_ring_gauges_;
  telemetry::QueueDepthGauges rx_ring_gauges_;
  telemetry::QueueDepthGauges notify_gauges_;
  telemetry::QueueDepthGauges qdisc_gauges_;
  telemetry::QueueDepthGauges sram_gauges_;
  // Per-queue lane ring gauges ("queue.nic.{tx,rx}_ring.q<N>"), registered
  // eagerly for every possible lane in the ctor so the metric manifest is
  // shape-stable whether or not a run shards — and so watchdog queue-stall
  // rules can bind per lane. Declared before lanes_ (ring destructors
  // settle into these).
  std::vector<telemetry::QueueDepthGauges> lane_tx_gauges_;
  std::vector<telemetry::QueueDepthGauges> lane_rx_gauges_;
  // Tenant cycle shares + per-tenant metric bundles. Declared before
  // flow_cache_/top_talkers_: their destructors refund tenant-attributed
  // SRAM, which reports back into this table's gauges.
  TenantTable tenant_table_;
  // Declared after sram_ so their destructors (which refund SRAM) run
  // first.
  FlowCache flow_cache_;
  std::unique_ptr<TopTalkers> top_talkers_;

  std::unordered_map<net::ConnectionId, std::unique_ptr<RingPair>> rings_;
  std::unordered_map<uint32_t, std::unique_ptr<NotificationQueue>>
      notif_queues_;

  std::vector<PipelineStage*> tx_stages_;
  std::vector<PipelineStage*> rx_stages_;
  std::unique_ptr<Scheduler> scheduler_;

  // Per-stage attribution sites, kept parallel to tx_stages_/rx_stages_
  // (rebuilt on every chain mutation). Site names alias the stages' own
  // name() storage, which outlives the chain registration.
  std::vector<telemetry::ProfSite> tx_stage_sites_;
  std::vector<telemetry::ProfSite> rx_stage_sites_;
  void RebuildStageSites();

  struct SlotState {
    overlay::Program program;
    uint64_t generation = 0;
  };
  std::array<SlotState, kNumOverlaySlots> overlay_slots_;

  sim::Resource dma_engine_{"nic.dma"};
  sim::Resource pipeline_{"nic.pipeline"};
  sim::Resource wire_{"nic.wire"};
  sim::Resource stages_{"nic.stages"};

  // Sharded lanes (empty until EnableSharding). unique_ptr: Lane owns
  // resources whose registered busy-callbacks capture their address.
  std::vector<std::unique_ptr<Lane>> lanes_;
  // The unsharded resource/core set, threaded through the shared datapath.
  LaneRefs default_refs_{};

  // ---- Cycle attribution (telemetry::Profiler, owned by the simulator) --
  telemetry::Profiler* prof_;
  uint32_t prof_core_dma_ = 0;
  uint32_t prof_core_pipe_ = 0;
  uint32_t prof_core_stages_ = 0;
  uint32_t prof_core_wire_ = 0;
  // Scope/charge sites. TX and RX keep separate sites for the shared frame
  // names (dma/pipeline/...) so each memo sees a constant parent and the
  // steady state never re-resolves.
  telemetry::ProfSite prof_tx_site_{"nic.tx"};
  telemetry::ProfSite prof_tx_dma_site_{"dma"};
  telemetry::ProfSite prof_tx_pipe_site_{"pipeline"};
  telemetry::ProfSite prof_tx_stages_site_{"stages"};
  telemetry::ProfSite prof_tx_fastpath_site_{"fastpath"};
  telemetry::ProfSite prof_rx_site_{"nic.rx"};
  telemetry::ProfSite prof_rx_dma_site_{"dma"};
  telemetry::ProfSite prof_rx_pipe_site_{"pipeline"};
  telemetry::ProfSite prof_rx_stages_site_{"stages"};
  telemetry::ProfSite prof_rx_fastpath_site_{"fastpath"};
  telemetry::ProfSite prof_wire_site_{"nic.wire"};

  std::function<void(net::PacketPtr)> wire_sink_;
  std::function<void(net::PacketPtr, net::Direction)> fallback_sink_;

  bool control_plane_taken_ = false;
  bool drain_scheduled_ = false;
  // NIC-side fault state (driven through the ControlPlane / MMIO).
  uint64_t fault_sram_pressure_ = 0;
  bool notify_stalled_ = false;
  std::vector<std::pair<uint32_t, Notification>> stalled_notifications_;
  telemetry::Gauge* fault_sram_pressure_gauge_;    // bytes held hostage
  telemetry::Gauge* fault_notify_stall_gauge_;     // 1 while stalled
  telemetry::Counter* fault_notify_deferred_;      // completions held back
  // Per-connection "descriptor consumer is running" flags. A map of bools
  // rather than a set so the steady-state doorbell -> drain -> doorbell
  // cycle flips a bit in place instead of allocating/freeing a node per
  // packet; entries are erased only on connection teardown.
  std::unordered_map<net::ConnectionId, bool> tx_consumer_active_;
  NicStats stats_;  // registered in sim_->metrics(); see ctor
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_SMART_NIC_H_
