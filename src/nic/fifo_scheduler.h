// Built-in default TX discipline: a bounded FIFO. This is what the hardware
// ships with before the kernel installs a richer qdisc (src/dataplane).
#ifndef NORMAN_NIC_FIFO_SCHEDULER_H_
#define NORMAN_NIC_FIFO_SCHEDULER_H_

#include <deque>

#include "src/nic/pipeline.h"

namespace norman::nic {

class FifoScheduler : public Scheduler {
 public:
  explicit FifoScheduler(size_t capacity_packets = 4096)
      : capacity_(capacity_packets) {}

  std::string_view name() const override { return "fifo"; }

  bool NeedsClassification() const override { return false; }

  bool Enqueue(net::PacketPtr packet,
               const overlay::PacketContext& /*ctx*/) override {
    if (queue_.size() >= capacity_) {
      return false;
    }
    queue_.push_back(std::move(packet));
    return true;
  }

  net::PacketPtr Dequeue(Nanos /*now*/) override {
    if (queue_.empty()) {
      return nullptr;
    }
    net::PacketPtr p = std::move(queue_.front());
    queue_.pop_front();
    return p;
  }

  Nanos NextEligibleTime(Nanos /*now*/) const override { return -1; }

  size_t backlog_packets() const override { return queue_.size(); }

 private:
  size_t capacity_;
  std::deque<net::PacketPtr> queue_;
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_FIFO_SCHEDULER_H_
