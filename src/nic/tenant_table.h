// Per-tenant NIC resource shares: the enforcement half of multi-tenant
// isolation (OSMOSIS-style SmartNIC tenancy).
//
// The paper's argument is that the kernel's process view must extend onto
// the dataplane; this table is where that view becomes *enforcement*. Each
// registered tenant gets
//   * an SRAM byte quota (enforced by SramAllocator's tenant dimension),
//   * an integer WFQ weight over NIC pipeline cycles, per lane.
//
// The cycle share is a per-tenant *virtual server* over each lane's
// pipeline, not a gate in front of the shared sim::Resource: stretching a
// tenant's own busy horizon by active_weight/weight means an aggressor's
// backlog accumulates on the aggressor's horizon only. Serving gated work
// through the shared FIFO cursor instead would push every later arrival —
// including the victim's — behind the aggressor's backlog, which is exactly
// the starvation this exists to prevent. The shared resource still gets the
// real occupancy via AddBusy so utilization and the profiler's
// attributed+unaccounted==busy invariant are unchanged.
//
// All arithmetic is integer and all iteration is over a std::map, so runs
// are bit-deterministic. With the table disabled (the default) no call site
// takes this path at all and trajectories are bit-identical to a build
// without tenancy.
#ifndef NORMAN_NIC_TENANT_TABLE_H_
#define NORMAN_NIC_TENANT_TABLE_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/units.h"

namespace norman::nic {

class TenantTable {
 public:
  // Matches SmartNic::kMaxShardQueues (static_asserted in smart_nic.cc);
  // lane 0 doubles as the unsharded pipeline.
  static constexpr uint16_t kMaxLanes = 8;

  explicit TenantTable(telemetry::MetricsRegistry* registry)
      : registry_(registry),
        tenants_(registry->GetGauge("tenancy.tenants")),
        total_throttled_(registry->GetCounter("tenancy.throttled_ns")),
        denied_(registry->GetCounter("tenancy.denied")) {}

  // Cycle-share enforcement is armed only while enabled AND at least one
  // tenant is registered; flipping it on with no tenants is a no-op.
  void SetEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Registers (or re-weights) a tenant. weight >= 1; a heavier tenant's
  // packets see proportionally less stretch under contention. Creates the
  // tenant.<id>.* metric bundle on first sight.
  void Configure(uint32_t tenant, uint32_t weight);

  // Drops the tenant's share. Its metrics remain registered (metric
  // registries are append-only) but stop moving.
  void Remove(uint32_t tenant);

  bool Gated(uint32_t tenant) const {
    return enabled_ && tenant != 0 && shares_.count(tenant) != 0;
  }

  // Admits `cost` ns of pipeline work by `tenant` on `lane`: returns the
  // time the work may start (>= now; the gap is recorded as throttled
  // time) and advances the tenant's virtual horizon by cost stretched by
  // active_weight_sum / weight.
  Nanos Admit(uint32_t tenant, uint16_t lane, Nanos now, Nanos cost);

  // Attribution hooks (no-ops for unknown tenants).
  void CountDrop(uint32_t tenant);
  void CountDenied(uint32_t tenant);
  void SetSramBytes(uint32_t tenant, uint64_t bytes);

  // Introspection for tools/tests.
  struct ShareReport {
    uint32_t tenant = 0;
    uint32_t weight = 0;
    uint64_t pkts = 0;
    uint64_t cycles_ns = 0;
    uint64_t throttled_ns = 0;
    uint64_t drops = 0;
    int64_t sram_bytes = 0;
    uint64_t denied = 0;
  };
  std::vector<ShareReport> Reports() const;
  size_t size() const { return shares_.size(); }
  uint64_t throttled_ns(uint32_t tenant) const;

 private:
  struct Share {
    uint32_t weight = 1;
    std::array<Nanos, kMaxLanes> busy_until{};
    uint64_t denied = 0;
    telemetry::Counter* pkts = nullptr;
    telemetry::Counter* cycles_ns = nullptr;
    telemetry::Counter* throttled_ns = nullptr;
    telemetry::Counter* drops = nullptr;
    telemetry::Gauge* sram_bytes = nullptr;
  };

  telemetry::MetricsRegistry* registry_;
  bool enabled_ = false;
  std::map<uint32_t, Share> shares_;  // ordered: deterministic iteration
  telemetry::Gauge* tenants_;
  telemetry::Counter* total_throttled_;
  telemetry::Counter* denied_;
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_TENANT_TABLE_H_
