// Shared notification queues for blocking I/O (§4.3).
//
// "The Norman dataplane ... allows connections to be configured so that the
// NIC adds [a] notification to a shared notification queue when packets are
// added to a queue (allowing blocking receive calls) or when a queue is
// drained (allowing blocking for sends)." One queue per process, readable by
// both the process and the kernel; the kernel control plane monitors these
// to wake blocked threads (see kernel/wait_service.h).
#ifndef NORMAN_NIC_NOTIFICATION_H_
#define NORMAN_NIC_NOTIFICATION_H_

#include <cstdint>
#include <functional>
#include <span>

#include "src/common/fixed_ring.h"
#include "src/common/metrics.h"
#include "src/common/units.h"
#include "src/net/packet.h"

namespace norman::nic {

enum class NotificationKind : uint8_t {
  kRxData,    // packets appended to an RX ring
  kTxDrained, // TX ring fully consumed by the NIC
};

struct Notification {
  NotificationKind kind = NotificationKind::kRxData;
  net::ConnectionId conn_id = net::kUnknownConnection;
  Nanos timestamp = 0;
  // RX queue (sharded lane) the completion happened on; 0 when unsharded.
  // The kernel's notification pump keys its per-queue drain counters
  // (kernel.notify.q<N>.drained) on this.
  uint16_t queue = 0;
};

class NotificationQueue {
 public:
  explicit NotificationQueue(uint32_t capacity = 1024) : ring_(capacity) {}

  // NIC side. Returns false when the queue overflowed (notification lost;
  // consumers must treat the queue as lossy and rescan, as with interrupt
  // coalescing). When interrupts are armed, fires the callback once and
  // disarms (interrupt mitigation: re-armed by the consumer).
  bool Post(const Notification& n) {
    const bool ok = ring_.TryPush(n);
    if (!ok) {
      ++overflows_;
    } else if (gauges_ != nullptr) {
      telemetry::HotAdd(gauges_, 1);
    }
    if (interrupts_armed_ && on_interrupt_) {
      interrupts_armed_ = false;
      on_interrupt_();
    }
    return ok;
  }

  std::optional<Notification> Poll() {
    auto n = ring_.TryPop();
    if (n.has_value() && gauges_ != nullptr) telemetry::HotAdd(gauges_, -1);
    return n;
  }

  // Bulk drain: pops up to out.size() notifications in FIFO order with a
  // single gauge update for the whole burst. Returns the count popped; a
  // short count means the queue is now empty.
  uint32_t PollN(std::span<Notification> out) {
    const uint32_t n = ring_.PopN(out);
    if (n != 0 && gauges_ != nullptr)
      telemetry::HotAdd(gauges_, -static_cast<int64_t>(n));
    return n;
  }
  bool empty() const { return ring_.empty(); }
  uint32_t size() const { return ring_.size(); }
  uint64_t overflows() const { return overflows_; }

  // Kernel side: arm a one-shot interrupt for the next Post. §4.3: "the
  // control plane ... can also choose to enable interrupts for notification
  // queues with low activity."
  void ArmInterrupt(std::function<void()> handler) {
    on_interrupt_ = std::move(handler);
    interrupts_armed_ = true;
  }
  void DisarmInterrupt() { interrupts_armed_ = false; }
  bool interrupts_armed() const { return interrupts_armed_; }

  // Aggregate occupancy across every process's queue ("queue.nic.notify").
  void AttachGauges(telemetry::QueueDepthGauges* gauges) { gauges_ = gauges; }

 private:
  FixedRing<Notification> ring_;
  telemetry::QueueDepthGauges* gauges_ = nullptr;
  uint64_t overflows_ = 0;
  bool interrupts_armed_ = false;
  std::function<void()> on_interrupt_;
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_NOTIFICATION_H_
