// Interfaces the on-NIC dataplane plugs into the SmartNIC pipeline.
//
// The NIC hardware provides the plumbing (rings, DMA, MMIO, flow table);
// interposition *logic* — filters, sniffer taps, queueing disciplines — is
// implemented against these interfaces in src/dataplane and installed by
// the kernel control plane. This mirrors the paper's split: the overlay and
// its programs are loaded into the NIC, not compiled into it.
#ifndef NORMAN_NIC_PIPELINE_H_
#define NORMAN_NIC_PIPELINE_H_

#include <cstdint>
#include <string_view>

#include "src/common/drop_reason.h"
#include "src/common/units.h"
#include "src/net/packet.h"
#include "src/overlay/packet_context.h"

namespace norman::nic {

enum class Verdict : uint8_t {
  kAccept = 0,
  kDrop = 1,
  // Divert through the host software slow path (E7 resource-exhaustion
  // mitigation: "route 'low priority' ... traffic through a software
  // datapath").
  kSoftwareFallback = 2,
};

struct StageResult {
  Verdict verdict = Verdict::kAccept;
  // Overlay instructions executed (charged at overlay_instr_ns each).
  uint32_t overlay_instructions = 0;
  // Why, when verdict == kDrop. Stages returning kDrop must tag a reason;
  // the NIC attributes the drop to exactly one reason counter.
  DropReason drop_reason = DropReason::kNone;
  // Set by stages that rewrote the frame bytes (NAT). Tells the NIC the
  // cached parse is stale and must be refreshed before anything downstream
  // reads headers.
  bool mutated = false;
};

// How a stage interacts with the flow verdict cache (megaflow-style fast
// path). The cache replays a flow's aggregate verdict without re-running
// the chain, so each stage must declare what a cache hit may skip.
//
// This contract also underwrites the NIC's batched TX drain: a burst that
// replays one cached entry for consecutive same-flow packets (see
// SmartNic::ConsumeTxRing) still calls Process() on every kObserver stage
// for every packet, and never batches flows that touched a kUncacheable
// stage — so per-packet state evolves identically whether the chain walk,
// the cache, or the burst memo resolved the verdict.
enum class StageCacheClass : uint8_t {
  // Pure function of the flow key under a fixed configuration: verdict and
  // instruction cost can be cached and the stage skipped entirely on hits
  // (filters, spoof guard, NAT — whose rewrite is replayed from the cache).
  kPure = 0,
  // Keeps per-packet state (connection trackers, sniffer taps): verdict is
  // cacheable but the stage must still observe every hit packet.
  kObserver = 1,
  // Payload- or state-dependent verdicts (loaded overlay programs): flows
  // touching this stage are never cached.
  kUncacheable = 2,
};

// A match/action stage (filter, sniffer, counter). Stages must not block;
// queueing belongs to the Scheduler.
class PipelineStage {
 public:
  virtual ~PipelineStage() = default;
  virtual std::string_view name() const = 0;
  // Conservative default: unknown stages disable the fast path for flows
  // that reach them rather than risk skipping real work.
  virtual StageCacheClass cache_class() const {
    return StageCacheClass::kUncacheable;
  }
  // May mutate the packet (NAT). `ctx.direction` distinguishes TX/RX.
  virtual StageResult Process(net::Packet& packet,
                              const overlay::PacketContext& ctx) = 0;
};

// TX packet scheduler (queueing discipline). The NIC enqueues every accepted
// TX packet and dequeues whenever the wire is free; the discipline decides
// the order (FIFO, priority, DRR, WFQ, token bucket...).
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string_view name() const = 0;
  // True if Enqueue reads ctx.parsed to classify packets. Disciplines that
  // ignore the packet contents (FIFO) return false, letting the NIC skip
  // re-parsing the (possibly stage-rewritten) frame before enqueue.
  virtual bool NeedsClassification() const { return true; }
  // May drop (returns false) when its queues are full.
  virtual bool Enqueue(net::PacketPtr packet,
                       const overlay::PacketContext& ctx) = 0;
  // Next packet to put on the wire at virtual time `now`; nullptr if nothing
  // is eligible (empty, or rate-limited until a later time).
  virtual net::PacketPtr Dequeue(Nanos now) = 0;
  // Earliest future time a packet may become eligible while the backlog is
  // non-empty (for token-bucket style disciplines). Returns -1 when either
  // empty or immediately eligible.
  virtual Nanos NextEligibleTime(Nanos now) const = 0;
  virtual size_t backlog_packets() const = 0;
  // Why the most recent Enqueue() returned false. Plain queue overflow is
  // the default; pacing disciplines override to report kRateLimited.
  virtual DropReason last_drop_reason() const {
    return DropReason::kSchedOverflow;
  }
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_PIPELINE_H_
