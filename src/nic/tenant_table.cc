#include "src/nic/tenant_table.h"

#include <algorithm>

namespace norman::nic {

namespace {
std::string MetricName(uint32_t tenant, const char* leaf) {
  return "tenant." + std::to_string(tenant) + "." + leaf;
}
}  // namespace

void TenantTable::Configure(uint32_t tenant, uint32_t weight) {
  if (tenant == 0) {
    return;  // tenant 0 is the unowned/system share; never gated
  }
  Share& s = shares_[tenant];
  s.weight = weight == 0 ? 1 : weight;
  if (s.pkts == nullptr) {
    s.pkts = registry_->GetCounter(MetricName(tenant, "pkts"));
    s.cycles_ns = registry_->GetCounter(MetricName(tenant, "cycles_ns"));
    s.throttled_ns = registry_->GetCounter(MetricName(tenant, "throttled_ns"));
    s.drops = registry_->GetCounter(MetricName(tenant, "drops"));
    s.sram_bytes = registry_->GetGauge(MetricName(tenant, "sram_bytes"));
  }
  tenants_->Set(static_cast<int64_t>(shares_.size()));
}

void TenantTable::Remove(uint32_t tenant) {
  shares_.erase(tenant);
  tenants_->Set(static_cast<int64_t>(shares_.size()));
}

Nanos TenantTable::Admit(uint32_t tenant, uint16_t lane, Nanos now,
                         Nanos cost) {
  auto it = shares_.find(tenant);
  if (it == shares_.end()) {
    return now;  // caller should have checked Gated(); fail open
  }
  Share& share = it->second;
  const uint16_t l = lane < kMaxLanes ? lane : 0;
  const Nanos start = std::max(now, share.busy_until[l]);

  // Weighted stretch: the sum of weights of tenants with backlog on this
  // lane (this tenant always counts). With one active tenant the stretch
  // is exactly `cost`; under contention each tenant's horizon advances at
  // weight / active_weight of real time, which is the WFQ share.
  uint64_t active_weight = 0;
  for (const auto& [id, s] : shares_) {
    if (id == tenant || s.busy_until[l] > now) {
      active_weight += s.weight;
    }
  }
  const Nanos stretched = static_cast<Nanos>(
      static_cast<uint64_t>(cost) * active_weight / share.weight);
  share.busy_until[l] = start + (stretched > cost ? stretched : cost);

  const Nanos throttled = start - now;
  share.pkts->Increment();
  share.cycles_ns->Increment(static_cast<uint64_t>(cost));
  if (throttled > 0) {
    share.throttled_ns->Increment(static_cast<uint64_t>(throttled));
    total_throttled_->Increment(static_cast<uint64_t>(throttled));
  }
  return start;
}

void TenantTable::CountDrop(uint32_t tenant) {
  auto it = shares_.find(tenant);
  if (it != shares_.end() && it->second.drops != nullptr) {
    it->second.drops->Increment();
  }
}

void TenantTable::CountDenied(uint32_t tenant) {
  denied_->Increment();
  auto it = shares_.find(tenant);
  if (it != shares_.end()) {
    ++it->second.denied;
  }
}

void TenantTable::SetSramBytes(uint32_t tenant, uint64_t bytes) {
  auto it = shares_.find(tenant);
  if (it != shares_.end() && it->second.sram_bytes != nullptr) {
    it->second.sram_bytes->Set(static_cast<int64_t>(bytes));
  }
}

std::vector<TenantTable::ShareReport> TenantTable::Reports() const {
  std::vector<ShareReport> out;
  out.reserve(shares_.size());
  for (const auto& [id, s] : shares_) {
    ShareReport r;
    r.tenant = id;
    r.weight = s.weight;
    r.pkts = s.pkts->value();
    r.cycles_ns = s.cycles_ns->value();
    r.throttled_ns = s.throttled_ns->value();
    r.drops = s.drops->value();
    r.sram_bytes = s.sram_bytes->value();
    r.denied = s.denied;
    out.push_back(r);
  }
  return out;
}

uint64_t TenantTable::throttled_ns(uint32_t tenant) const {
  const auto it = shares_.find(tenant);
  return it == shares_.end() ? 0 : it->second.throttled_ns->value();
}

}  // namespace norman::nic
