// NIC flow table: connection identity plus kernel-attached process metadata.
//
// At connect()/accept() time the kernel installs one entry per connection:
// the 5-tuple, the ring pair, and — the heart of KOPI — the owning process's
// uid/pid/comm/cgroup. TX packets are tagged with their source connection
// (the NIC knows which ring a descriptor came from); RX packets are matched
// by 5-tuple to find the destination ring. Every entry is charged against
// NIC SRAM, which is what makes connection count a resource-exhaustion axis
// (§5, experiments E2/E7).
#ifndef NORMAN_NIC_FLOW_TABLE_H_
#define NORMAN_NIC_FLOW_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/common/status.h"
#include "src/net/packet.h"
#include "src/net/types.h"
#include "src/overlay/packet_context.h"
#include "src/nic/sram.h"

namespace norman::nic {

// Bytes of NIC SRAM one flow entry consumes (match fields, ring pointers,
// scheduling state, counters). Loosely modeled on the per-flow state sizes
// reported for RDMA NICs (Kalia et al., NSDI '19: ~375B connection state).
inline constexpr uint64_t kFlowEntryBytes = 384;

struct FlowEntry {
  net::ConnectionId conn_id = net::kUnknownConnection;
  net::FiveTuple tuple;             // as seen on TX (local -> remote)
  overlay::ConnMetadata owner;      // kernel-stamped process identity
  std::string comm;                 // process name, for owner-match rules
  uint16_t rx_queue = 0;            // RSS override target
  uint64_t tx_ring_bytes = 0;       // ring working set (DDIO model input)
  uint64_t rx_ring_bytes = 0;
  bool notify_rx = false;           // post to notification queue on RX
  bool notify_tx_drain = false;     // post when TX ring drains
  uint64_t tx_packets = 0;
  uint64_t rx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t rx_bytes = 0;
};

class FlowTable {
 public:
  explicit FlowTable(SramAllocator* sram) : sram_(sram) {}

  // Installs an entry; fails with ResourceExhausted when NIC SRAM is full
  // (the caller may then fall back to the host software path, E7).
  Status Insert(const FlowEntry& entry) {
    if (entry.conn_id == net::kUnknownConnection) {
      return InvalidArgumentError("flow table: conn id 0 is reserved");
    }
    if (by_conn_.contains(entry.conn_id)) {
      return AlreadyExistsError("flow table: connection already installed");
    }
    if (by_tuple_.contains(entry.tuple)) {
      return AlreadyExistsError("flow table: 5-tuple already installed");
    }
    NORMAN_RETURN_IF_ERROR(sram_->Allocate("flow_table", kFlowEntryBytes,
                                           entry.owner.owner_pid,
                                           entry.owner.owner_tenant));
    by_conn_.emplace(entry.conn_id, entry);
    by_tuple_.emplace(entry.tuple, entry.conn_id);
    return OkStatus();
  }

  Status Remove(net::ConnectionId conn_id) {
    const auto it = by_conn_.find(conn_id);
    if (it == by_conn_.end()) {
      return NotFoundError("flow table: no such connection");
    }
    const uint32_t tenant = it->second.owner.owner_tenant;
    by_tuple_.erase(it->second.tuple);
    by_conn_.erase(it);
    sram_->Free("flow_table", kFlowEntryBytes, tenant);
    return OkStatus();
  }

  FlowEntry* Lookup(net::ConnectionId conn_id) {
    const auto it = by_conn_.find(conn_id);
    return it == by_conn_.end() ? nullptr : &it->second;
  }
  const FlowEntry* Lookup(net::ConnectionId conn_id) const {
    const auto it = by_conn_.find(conn_id);
    return it == by_conn_.end() ? nullptr : &it->second;
  }

  // RX steering: match an inbound packet's tuple against installed flows.
  // The inbound tuple is the reverse of the TX tuple stored in the entry.
  FlowEntry* LookupByInboundTuple(const net::FiveTuple& inbound) {
    const auto it = by_tuple_.find(inbound.Reversed());
    return it == by_tuple_.end() ? nullptr : Lookup(it->second);
  }

  size_t size() const { return by_conn_.size(); }

  // Iteration support for netstat-style tools.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [id, entry] : by_conn_) {
      fn(entry);
    }
  }

 private:
  SramAllocator* sram_;
  std::unordered_map<net::ConnectionId, FlowEntry> by_conn_;
  std::unordered_map<net::FiveTuple, net::ConnectionId, net::FiveTupleHash>
      by_tuple_;
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_FLOW_TABLE_H_
