// MMIO register space of the simulated SmartNIC, with privilege separation.
//
// The paper's Figure 1 shows two access paths to the NIC: the kernel
// configures the dataplane through privileged configuration registers, and
// each application gets access to exactly the MMIO doorbell registers (ring
// head/tail) of its own connections. We model that by handing out capability
// objects:
//   * PrivilegedMmio  — full register file; only the kernel holds one.
//   * DoorbellWindow  — a narrow window onto one connection's four ring
//     registers; this is what the kernel maps into an application.
// Any attempt to reach a register outside a window is a PermissionDenied —
// the hardware would fault the access.
#ifndef NORMAN_NIC_MMIO_H_
#define NORMAN_NIC_MMIO_H_

#include <cstdint>
#include <unordered_map>

#include "src/common/status.h"

namespace norman::nic {

// Register addresses are 32-bit word indices. Layout:
//   [0x0000, 0x1000)   global config (privileged)
//   [0x1000, ...)      per-connection doorbell blocks, 4 words each:
//     +0 TX head (app writes to publish descriptors)
//     +1 TX tail (NIC writes as it consumes)
//     +2 RX head (NIC writes as packets arrive)
//     +3 RX tail (app writes to return buffers)
using MmioAddr = uint32_t;

inline constexpr MmioAddr kDoorbellBase = 0x1000;
inline constexpr MmioAddr kDoorbellWordsPerConn = 4;

// Fault-injection config registers (global config space, privileged). The
// kernel's control plane drives NIC-side fault campaigns through these; the
// registers exist so chaos tooling works the way every other knob does —
// through MMIO — instead of through a debug backdoor.
//   kRegFaultSramPressure: bytes of SRAM currently held hostage (read-back).
//   kRegFaultNotifyStall:  1 = notification delivery stalled, 0 = flowing.
inline constexpr MmioAddr kRegFaultSramPressure = 0x0100;
inline constexpr MmioAddr kRegFaultNotifyStall = 0x0108;

inline constexpr MmioAddr kRegTxHead = 0;
inline constexpr MmioAddr kRegTxTail = 1;
inline constexpr MmioAddr kRegRxHead = 2;
inline constexpr MmioAddr kRegRxTail = 3;

inline MmioAddr DoorbellAddr(uint32_t conn_id, MmioAddr reg) {
  return kDoorbellBase + conn_id * kDoorbellWordsPerConn + reg;
}

// The backing register file. The SmartNic owns one; capabilities reference
// it. Reads/writes of unmapped registers read-as-zero / allocate.
class RegisterFile {
 public:
  uint32_t Read(MmioAddr addr) const {
    const auto it = regs_.find(addr);
    return it == regs_.end() ? 0 : it->second;
  }
  void Write(MmioAddr addr, uint32_t value) { regs_[addr] = value; }

  uint64_t read_count() const { return read_count_; }
  uint64_t write_count() const { return write_count_; }
  void CountRead() const { ++read_count_; }
  void CountWrite() { ++write_count_; }

 private:
  std::unordered_map<MmioAddr, uint32_t> regs_;
  mutable uint64_t read_count_ = 0;
  uint64_t write_count_ = 0;
};

// Full access; constructed once by the SmartNic and given to the kernel.
class PrivilegedMmio {
 public:
  explicit PrivilegedMmio(RegisterFile* regs) : regs_(regs) {}

  uint32_t Read(MmioAddr addr) const {
    regs_->CountRead();
    return regs_->Read(addr);
  }
  void Write(MmioAddr addr, uint32_t value) {
    regs_->CountWrite();
    regs_->Write(addr, value);
  }

 private:
  RegisterFile* regs_;
};

// Application-visible window over one connection's doorbell block.
class DoorbellWindow {
 public:
  DoorbellWindow() : regs_(nullptr), conn_id_(0) {}
  DoorbellWindow(RegisterFile* regs, uint32_t conn_id)
      : regs_(regs), conn_id_(conn_id) {}

  bool valid() const { return regs_ != nullptr; }
  uint32_t conn_id() const { return conn_id_; }

  // reg must be one of kRegTxHead..kRegRxTail; anything else faults.
  StatusOr<uint32_t> Read(MmioAddr reg) const {
    NORMAN_RETURN_IF_ERROR(CheckReg(reg));
    regs_->CountRead();
    return regs_->Read(DoorbellAddr(conn_id_, reg));
  }

  Status Write(MmioAddr reg, uint32_t value) {
    NORMAN_RETURN_IF_ERROR(CheckReg(reg));
    regs_->CountWrite();
    regs_->Write(DoorbellAddr(conn_id_, reg), value);
    return OkStatus();
  }

 private:
  Status CheckReg(MmioAddr reg) const {
    if (!valid()) {
      return PermissionDeniedError("doorbell window not mapped");
    }
    if (reg > kRegRxTail) {
      return PermissionDeniedError(
          "MMIO access outside mapped doorbell window");
    }
    return OkStatus();
  }

  RegisterFile* regs_;
  uint32_t conn_id_;
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_MMIO_H_
