#include "src/nic/smart_nic.h"

#include <span>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/common/prefetch.h"
#include "src/net/frame_checksum.h"
#include "src/net/packet_builder.h"
#include "src/nic/fifo_scheduler.h"
#include "src/overlay/verifier.h"

namespace norman::nic {

namespace {

// Stages returning kDrop without tagging a reason (custom test stages,
// overlay verdicts) are attributed to the policy bucket so every drop
// still lands in exactly one reason counter.
DropReason NormalizeDropReason(DropReason reason) {
  return reason == DropReason::kNone ? DropReason::kPolicy : reason;
}

}  // namespace

// The tenant table sizes its per-lane horizons to the NIC's lane bound.
static_assert(TenantTable::kMaxLanes == SmartNic::kMaxShardQueues,
              "TenantTable lane bound must match the NIC's");

NicStats::NicStats(telemetry::MetricsRegistry* registry) {
  registry_ = registry;
  tx_seen_ = registry->GetCounter("nic.tx.seen");
  tx_accepted_ = registry->GetCounter("nic.tx.accepted");
  tx_fallback_ = registry->GetCounter("nic.tx.fallback");
  tx_bytes_wire_ = registry->GetCounter("nic.tx.bytes_wire");
  rx_seen_ = registry->GetCounter("nic.rx.seen");
  rx_accepted_ = registry->GetCounter("nic.rx.accepted");
  rx_fallback_ = registry->GetCounter("nic.rx.fallback");
  rx_unmatched_ = registry->GetCounter("nic.rx.unmatched");
  dma_transfers_ = registry->GetCounter("nic.dma.transfers");
  overlay_instructions_ = registry->GetCounter("nic.overlay.instructions");
  // Register every reason eagerly (slot 0 / kNone stays null): the metric
  // inventory is shape-stable whether or not a reason fired, which is what
  // lets CI diff it against the checked-in manifest.
  for (size_t r = 1; r < kNumDropReasons; ++r) {
    const std::string suffix(DropReasonName(static_cast<DropReason>(r)));
    tx_drop_[r] = registry->GetCounter("nic.tx.drop." + suffix);
    rx_drop_[r] = registry->GetCounter("nic.rx.drop." + suffix);
  }
}

// Scheduler-side reasons are accounted under tx_sched_dropped() /
// rx_ring_overflow(), not the pipeline-verdict aggregates.
uint64_t NicStats::tx_dropped() const {
  uint64_t sum = 0;
  for (size_t r = 1; r < kNumDropReasons; ++r) {
    const auto reason = static_cast<DropReason>(r);
    if (reason == DropReason::kSchedOverflow ||
        reason == DropReason::kRateLimited ||
        reason == DropReason::kRingFull) {
      continue;
    }
    sum += tx_drop_[r]->value();
  }
  return sum;
}

uint64_t NicStats::rx_dropped() const {
  uint64_t sum = 0;
  for (size_t r = 1; r < kNumDropReasons; ++r) {
    const auto reason = static_cast<DropReason>(r);
    if (reason == DropReason::kSchedOverflow ||
        reason == DropReason::kRateLimited ||
        reason == DropReason::kRingFull) {
      continue;
    }
    sum += rx_drop_[r]->value();
  }
  return sum;
}

uint64_t NicStats::total_drops() const {
  uint64_t sum = 0;
  for (size_t r = 1; r < kNumDropReasons; ++r) {
    sum += tx_drop_[r]->value() + rx_drop_[r]->value();
  }
  return sum;
}

std::vector<NicStats::DropRecord> NicStats::DropLedger() const {
  std::vector<DropRecord> out;
  out.reserve(ledger_.size());
  for (const auto& [key, count] : ledger_) {
    out.push_back(DropRecord{static_cast<net::Direction>(std::get<0>(key)),
                             static_cast<DropReason>(std::get<1>(key)),
                             std::get<2>(key), count});
  }
  return out;
}

void NicStats::RecordDrop(net::Direction dir, DropReason reason,
                          uint32_t owner_pid, uint32_t tp_core,
                          uint32_t tenant) {
  const auto r = static_cast<size_t>(reason);
  NORMAN_CHECK(r > 0 && r < kNumDropReasons);
  (dir == net::Direction::kTx ? tx_drop_ : rx_drop_)[r]->Increment();
  ++ledger_[{static_cast<uint8_t>(dir), static_cast<uint8_t>(reason),
             owner_pid}];
  if (prof_ != nullptr && prof_->enabled()) {
    prof_->CountDrop(prof_->OwnerSlot(owner_pid));
  }
  if (tenants_ != nullptr && tenant != 0) {
    tenants_->CountDrop(tenant);
  }
  if (tp_ != nullptr) {
    // Every drop class routes through here (single choke point), so this
    // one emit covers the qdisc/rate-limit, ring-full and generic drop
    // probes; the reason rides in a0 for trigger matching.
    using telemetry::Probe;
    const Probe probe =
        reason == DropReason::kSchedOverflow ||
                reason == DropReason::kRateLimited
            ? Probe::kQdiscDrop
            : reason == DropReason::kRingFull ? Probe::kRingFull
                                              : Probe::kNicDrop;
    const telemetry::TraceFlow flow{
        .dir = dir == net::Direction::kTx ? telemetry::kDirTx
                                          : telemetry::kDirRx};
    tp_->Emit(probe, tp_core, owner_pid, static_cast<uint64_t>(reason),
              static_cast<uint64_t>(flow.dir), 0, &flow);
  }
}

void NicStats::Reset() {
  tx_seen_->Reset();
  tx_accepted_->Reset();
  tx_fallback_->Reset();
  tx_bytes_wire_->Reset();
  rx_seen_->Reset();
  rx_accepted_->Reset();
  rx_fallback_->Reset();
  rx_unmatched_->Reset();
  dma_transfers_->Reset();
  overlay_instructions_->Reset();
  for (size_t r = 1; r < kNumDropReasons; ++r) {
    tx_drop_[r]->Reset();
    rx_drop_[r]->Reset();
  }
  ledger_.clear();
}

SmartNic::SmartNic(sim::Simulator* sim, Options options)
    : sim_(sim),
      options_(options),
      sram_(options.sram_bytes),
      flow_table_(&sram_),
      rss_(options.num_rx_queues),
      tx_ring_gauges_(&sim->metrics(), "nic.tx_ring"),
      rx_ring_gauges_(&sim->metrics(), "nic.rx_ring"),
      notify_gauges_(&sim->metrics(), "nic.notify"),
      qdisc_gauges_(&sim->metrics(), "nic.qdisc"),
      sram_gauges_(&sim->metrics(), "nic.sram"),
      // Constructed even when never enabled so the "fastpath.*" metric
      // inventory is shape-stable (the manifest CI diffs does not depend on
      // which features a run turned on).
      tenant_table_(&sim->metrics()),
      flow_cache_(&sram_, &sim->metrics()),
      scheduler_(std::make_unique<FifoScheduler>()),
      prof_(&sim->profiler()),
      stats_(&sim->metrics()) {
  sram_.AttachGauges(&sram_gauges_);
  // Attribution cores: the profiler reads each resource's busy time at
  // export, and the conservation invariant holds per core. Registration is
  // unconditional (like metric registration) so inventories never depend
  // on whether a run enabled profiling.
  using telemetry::Profiler;
  prof_core_dma_ = prof_->RegisterCore(
      "nic.dma", Profiler::CoreKind::kNic, [this] { return dma_engine_.busy_ns(); });
  prof_core_pipe_ = prof_->RegisterCore(
      "nic.pipeline", Profiler::CoreKind::kNic,
      [this] { return pipeline_.busy_ns(); });
  prof_core_stages_ = prof_->RegisterCore(
      "nic.stages", Profiler::CoreKind::kNic, [this] { return stages_.busy_ns(); });
  prof_core_wire_ = prof_->RegisterCore(
      "nic.wire", Profiler::CoreKind::kNic, [this] { return wire_.busy_ns(); });
  stats_.AttachProfiler(prof_);
  stats_.AttachTenants(&tenant_table_);
  // Tenant-attributed SRAM usage flows into tenant.<id>.sram_bytes as it
  // changes, so the sampler and quota dashboards track it continuously.
  sram_.SetTenantObserver([this](uint32_t tenant, uint64_t used) {
    tenant_table_.SetSramBytes(tenant, used);
  });
  // Probe-point hookup mirrors the profiler's: attachment is unconditional
  // and cold; disarmed probes stay a single branch on the emit path.
  stats_.AttachTracepoints(&sim->tracepoints());
  sram_.AttachTracepoints(&sim->tracepoints());
  flow_cache_.AttachTracepoints(&sim->tracepoints());
  // RSS steering/rebalance counters and the per-queue lane ring gauges are
  // registered eagerly for every possible lane — like the drop reasons
  // above, the manifest must not depend on whether a run shards.
  rss_.AttachMetrics(&sim->metrics());
  lane_tx_gauges_.reserve(kMaxShardQueues);
  lane_rx_gauges_.reserve(kMaxShardQueues);
  for (uint16_t q = 0; q < kMaxShardQueues; ++q) {
    lane_tx_gauges_.emplace_back(&sim->metrics(),
                                 "nic.tx_ring.q" + std::to_string(q));
    lane_rx_gauges_.emplace_back(&sim->metrics(),
                                 "nic.rx_ring.q" + std::to_string(q));
  }
  // The unsharded resource/core set the shared datapath charges by default.
  default_refs_ = LaneRefs{&pipeline_,
                           &stages_,
                           &dma_engine_,
                           prof_core_pipe_,
                           prof_core_stages_,
                           prof_core_dma_,
                           telemetry::Tracepoints::kCoreNic,
                           sim::Simulator::kNoLane,
                           /*cache_part=*/0};
  // NIC-side fault instrumentation, eagerly registered so the metric
  // manifest is shape-stable whether or not a chaos campaign ever runs.
  fault_sram_pressure_gauge_ = sim->metrics().GetGauge(
      "fault.nic.sram_pressure_bytes");
  fault_notify_stall_gauge_ = sim->metrics().GetGauge(
      "fault.nic.notify_stalled");
  fault_notify_deferred_ = sim->metrics().GetCounter(
      "fault.nic.notify_deferred");
}

SmartNic::~SmartNic() = default;

std::unique_ptr<SmartNic::ControlPlane> SmartNic::TakeControlPlane() {
  if (control_plane_taken_) {
    return nullptr;
  }
  control_plane_taken_ = true;
  return std::unique_ptr<ControlPlane>(new ControlPlane(this));
}

// ---- ControlPlane ----------------------------------------------------------

Status SmartNic::ControlPlane::InstallFlow(const FlowEntry& entry) {
  NORMAN_RETURN_IF_ERROR(nic_->flow_table_.Insert(entry));
  auto ring = std::make_unique<RingPair>(nic_->options_.ring_entries);
  ring->AttachGauges(&nic_->tx_ring_gauges_, &nic_->rx_ring_gauges_);
  // Ring descriptor state also lives in NIC SRAM (head/tail, base addrs,
  // completion state): 64B per ring pair.
  const Status s = nic_->sram_.Allocate("ring_state", 64,
                                        entry.owner.owner_pid,
                                        entry.owner.owner_tenant);
  if (!s.ok()) {
    (void)nic_->flow_table_.Remove(entry.conn_id);
    return s;
  }
  nic_->rings_.emplace(entry.conn_id, std::move(ring));
  // Intern the owner pid (ungated: slot numbering is tier-independent) and
  // bill the flow's SRAM footprint — table entry + ring descriptor state —
  // to its ledger.
  const uint32_t owner_slot =
      nic_->prof_->RegisterOwner(entry.owner.owner_pid);
  nic_->prof_->ChargeSram(owner_slot,
                          static_cast<int64_t>(kFlowEntryBytes + 64));
  InvalidateFastPath();
  return OkStatus();
}

Status SmartNic::ControlPlane::RemoveFlow(net::ConnectionId conn_id) {
  uint32_t owner_pid = 0;
  uint32_t owner_tenant = 0;
  if (const FlowEntry* e = nic_->flow_table_.Lookup(conn_id); e != nullptr) {
    owner_pid = e->owner.owner_pid;
    owner_tenant = e->owner.owner_tenant;
  }
  NORMAN_RETURN_IF_ERROR(nic_->flow_table_.Remove(conn_id));
  nic_->prof_->ChargeSram(nic_->prof_->OwnerSlot(owner_pid),
                          -static_cast<int64_t>(kFlowEntryBytes + 64));
  nic_->rings_.erase(conn_id);
  nic_->sram_.Free("ring_state", 64, owner_tenant);
  nic_->ddio_.Invalidate(TxRingId(conn_id));
  nic_->ddio_.Invalidate(RxRingId(conn_id));
  InvalidateFastPath();
  return OkStatus();
}

FlowEntry* SmartNic::ControlPlane::LookupFlow(net::ConnectionId conn_id) {
  return nic_->flow_table_.Lookup(conn_id);
}

RingPair* SmartNic::ControlPlane::GetRings(net::ConnectionId conn_id) {
  const auto it = nic_->rings_.find(conn_id);
  return it == nic_->rings_.end() ? nullptr : it->second.get();
}

DoorbellWindow SmartNic::ControlPlane::MapDoorbell(net::ConnectionId conn_id) {
  return DoorbellWindow(&nic_->regs_, conn_id);
}

void SmartNic::ControlPlane::AddTxStage(PipelineStage* stage) {
  nic_->tx_stages_.push_back(stage);
  nic_->RebuildStageSites();
  InvalidateFastPath();
}

void SmartNic::ControlPlane::AddRxStage(PipelineStage* stage) {
  nic_->rx_stages_.push_back(stage);
  nic_->RebuildStageSites();
  InvalidateFastPath();
}

void SmartNic::ControlPlane::ClearStages() {
  nic_->tx_stages_.clear();
  nic_->rx_stages_.clear();
  nic_->RebuildStageSites();
  InvalidateFastPath();
}

void SmartNic::RebuildStageSites() {
  // Fresh sites (empty memos) per chain mutation: stage indices — and
  // therefore the site a given chain position charges — may have shifted.
  tx_stage_sites_.assign(tx_stages_.size(), telemetry::ProfSite{});
  for (size_t i = 0; i < tx_stages_.size(); ++i) {
    tx_stage_sites_[i].name = tx_stages_[i]->name();
  }
  rx_stage_sites_.assign(rx_stages_.size(), telemetry::ProfSite{});
  for (size_t i = 0; i < rx_stages_.size(); ++i) {
    rx_stage_sites_[i].name = rx_stages_[i]->name();
  }
}

Status SmartNic::ControlPlane::SetScheduler(
    std::unique_ptr<Scheduler> scheduler) {
  if (scheduler == nullptr) {
    return InvalidArgumentError("scheduler must not be null");
  }
  if (nic_->scheduler_ != nullptr &&
      nic_->scheduler_->backlog_packets() > 0) {
    return FailedPreconditionError(
        "cannot swap scheduler with packets in flight");
  }
  nic_->scheduler_ = std::move(scheduler);
  InvalidateFastPath();
  return OkStatus();
}

StatusOr<Nanos> SmartNic::ControlPlane::LoadOverlay(
    size_t slot, const overlay::Program& program) {
  if (slot >= kNumOverlaySlots) {
    return InvalidArgumentError("overlay slot out of range");
  }
  NORMAN_RETURN_IF_ERROR(overlay::VerifyProgram(program));
  const auto& cost = nic_->options_.cost;
  const Nanos load_time =
      static_cast<Nanos>(program.size()) * cost.overlay_load_per_instr_ns +
      cost.overlay_activate_ns;
  nic_->overlay_slots_[slot].program = program;
  ++nic_->overlay_slots_[slot].generation;
  InvalidateFastPath();
  return load_time;
}

const overlay::Program* SmartNic::ControlPlane::OverlaySlot(
    size_t slot) const {
  if (slot >= kNumOverlaySlots ||
      nic_->overlay_slots_[slot].program.empty()) {
    return nullptr;
  }
  return &nic_->overlay_slots_[slot].program;
}

uint64_t SmartNic::ControlPlane::overlay_generation(size_t slot) const {
  return slot < kNumOverlaySlots ? nic_->overlay_slots_[slot].generation : 0;
}

Nanos SmartNic::ControlPlane::ReloadBitstream() {
  // A bitstream reload wipes loaded overlay programs — "the equivalent to
  // upgrading the kernel itself" (§4.4).
  for (auto& slot : nic_->overlay_slots_) {
    slot.program.clear();
    ++slot.generation;
  }
  InvalidateFastPath();
  return nic_->options_.cost.bitstream_reload_ns;
}

NotificationQueue* SmartNic::ControlPlane::RegisterNotificationQueue(
    uint32_t pid) {
  auto& q = nic_->notif_queues_[pid];
  if (q == nullptr) {
    q = std::make_unique<NotificationQueue>();
    q->AttachGauges(&nic_->notify_gauges_);
  }
  return q.get();
}

TopTalkers* SmartNic::ControlPlane::EnableTopTalkers(size_t max_entries) {
  nic_->top_talkers_ = std::make_unique<TopTalkers>(
      &nic_->sram_, &nic_->sim_->metrics(), max_entries);
  return nic_->top_talkers_.get();
}

FlowCache* SmartNic::ControlPlane::EnableFlowCache(size_t max_entries) {
  nic_->flow_cache_.Enable(max_entries);
  return &nic_->flow_cache_;
}

void SmartNic::ControlPlane::DisableFlowCache() {
  nic_->flow_cache_.Disable();
}

void SmartNic::ControlPlane::InvalidateFastPath() {
  nic_->flow_cache_.Invalidate();
}

Status SmartNic::ControlPlane::EnableSharding(uint16_t num_queues) {
  return nic_->EnableShardingImpl(num_queues);
}

Status SmartNic::ControlPlane::SetRssIndirection(size_t index,
                                                 uint16_t queue) {
  const uint16_t old_queue = nic_->rss_.indirection(index);
  NORMAN_RETURN_IF_ERROR(nic_->rss_.SetIndirection(index, queue));
  if (nic_->flow_cache_.partitions() > 1 && old_queue != queue) {
    // Flows hashing to this slot migrate lanes mid-flight: cached verdicts
    // on both sides of the migration must re-walk the chain on their next
    // packet (each lane's SRAM segment is charged separately, and observer
    // state replays in per-lane order).
    if (old_queue < nic_->flow_cache_.partitions()) {
      nic_->flow_cache_.InvalidatePartition(old_queue);
    }
    if (queue < nic_->flow_cache_.partitions()) {
      nic_->flow_cache_.InvalidatePartition(queue);
    }
  }
  return OkStatus();
}

Status SmartNic::EnableShardingImpl(uint16_t num_queues) {
  if (num_queues == 0 || num_queues > kMaxShardQueues) {
    return InvalidArgumentError(
        "shard queue count must be in [1, " +
        std::to_string(kMaxShardQueues) + "], got " +
        std::to_string(num_queues));
  }
  if (!lanes_.empty()) {
    return FailedPreconditionError(
        "dataplane already sharded; re-sharding a live dataplane would "
        "orphan in-flight lane state");
  }
  rss_.SetNumQueues(num_queues);
  flow_cache_.SetPartitions(num_queues);
  sim_->set_num_lanes(num_queues);
  using telemetry::Profiler;
  lanes_.reserve(num_queues);
  for (uint16_t q = 0; q < num_queues; ++q) {
    auto lane = std::make_unique<Lane>(q, options_.lane_ring_entries);
    lane->rings.AttachGauges(&lane_tx_gauges_[q], &lane_rx_gauges_[q]);
    Lane* raw = lane.get();
    lane->core_pipe =
        prof_->RegisterCore(raw->pipeline.name(), Profiler::CoreKind::kNic,
                            [raw] { return raw->pipeline.busy_ns(); });
    lane->core_stages =
        prof_->RegisterCore(raw->stages.name(), Profiler::CoreKind::kNic,
                            [raw] { return raw->stages.busy_ns(); });
    lane->core_dma =
        prof_->RegisterCore(raw->dma.name(), Profiler::CoreKind::kNic,
                            [raw] { return raw->dma.busy_ns(); });
    lanes_.push_back(std::move(lane));
  }
  // Entries minted pre-sharding sit in partition 0 of a different map
  // shape; SetPartitions flushed them, and the epoch bump below covers any
  // caller holding a stale pointer across this call.
  flow_cache_.Invalidate();
  return OkStatus();
}

SmartNic::LaneRefs SmartNic::LaneRefsFor(uint16_t queue) {
  Lane& lane = *lanes_[queue];
  return LaneRefs{&lane.pipeline,
                  &lane.stages,
                  &lane.dma,
                  lane.core_pipe,
                  lane.core_stages,
                  lane.core_dma,
                  telemetry::Tracepoints::kCoreLaneBase + queue,
                  queue,
                  queue};
}

uint16_t SmartNic::TxLaneOf(const FlowEntry* entry) const {
  if (lanes_.empty() || entry == nullptr) {
    return 0;
  }
  return static_cast<uint16_t>(rss_.Hash(entry->tuple) % lanes_.size());
}

NotificationQueue* SmartNic::ControlPlane::GetNotificationQueue(
    uint32_t pid) {
  const auto it = nic_->notif_queues_.find(pid);
  return it == nic_->notif_queues_.end() ? nullptr : it->second.get();
}

void SmartNic::ControlPlane::SetFallbackSink(
    std::function<void(net::PacketPtr, net::Direction)> sink) {
  nic_->fallback_sink_ = std::move(sink);
}

void SmartNic::ControlPlane::ConfigureTenant(uint32_t tenant,
                                             uint32_t cycle_weight,
                                             uint64_t sram_quota_bytes) {
  nic_->tenant_table_.Configure(tenant, cycle_weight);
  if (sram_quota_bytes > 0) {
    nic_->sram_.SetTenantQuota(tenant, sram_quota_bytes);
  } else {
    nic_->sram_.ClearTenantQuota(tenant);
  }
}

void SmartNic::ControlPlane::RemoveTenant(uint32_t tenant) {
  nic_->tenant_table_.Remove(tenant);
  nic_->sram_.ClearTenantQuota(tenant);
}

void SmartNic::ControlPlane::SetTenantIsolation(bool on) {
  nic_->tenant_table_.SetEnabled(on);
}

// ---- Datapath ---------------------------------------------------------------

overlay::PacketContext SmartNic::MakeContext(const net::Packet& packet,
                                             const net::ParsedPacket* parsed,
                                             const FlowEntry* entry,
                                             net::Direction dir) const {
  overlay::PacketContext ctx;
  ctx.frame = packet.bytes();
  ctx.parsed = parsed;
  ctx.direction = dir;
  if (entry != nullptr) {
    ctx.conn = entry->owner;
  }
  return ctx;
}

namespace {

// True when `to` is `from` with only the source (resp. destination)
// endpoint rewritten — the one transform shape the flow cache can replay.
bool IsSourceRewrite(const net::FiveTuple& from, const net::FiveTuple& to) {
  return from.proto == to.proto && from.dst_ip == to.dst_ip &&
         from.dst_port == to.dst_port &&
         (from.src_ip != to.src_ip || from.src_port != to.src_port);
}

bool IsDestinationRewrite(const net::FiveTuple& from,
                          const net::FiveTuple& to) {
  return from.proto == to.proto && from.src_ip == to.src_ip &&
         from.src_port == to.src_port &&
         (from.dst_ip != to.dst_ip || from.dst_port != to.dst_port);
}

}  // namespace

StageResult SmartNic::RunStages(const LaneRefs& lr,
                                const std::vector<PipelineStage*>& stages,
                                net::Packet& packet,
                                overlay::PacketContext& ctx,
                                Nanos stage_start, uint32_t trace_id,
                                FlowCacheMint* mint,
                                std::vector<telemetry::ProfSite>& stage_sites,
                                uint32_t owner_slot) {
  StageResult aggregate;
  for (size_t i = 0; i < stages.size(); ++i) {
    PipelineStage* stage = stages[i];
    // Capture the pre-stage flow before a mutation invalidates the parse.
    std::optional<net::FiveTuple> pre_flow;
    if (mint != nullptr && ctx.parsed != nullptr) {
      pre_flow = ctx.parsed->flow();
    }
    const StageResult r = stage->Process(packet, ctx);
    aggregate.overlay_instructions += r.overlay_instructions;
    if (r.mutated) {
      // The stage rewrote the frame (NAT): refresh the single-pass parse so
      // downstream stages, the scheduler, and RSS see the new headers. This
      // is the only re-parse on the whole datapath.
      packet.SetParsed(net::ParseFrame(packet.bytes()));
      ctx.parsed = packet.parsed();
      ctx.frame = packet.bytes();
    }
    if (mint != nullptr && mint->cacheable) {
      switch (stage->cache_class()) {
        case StageCacheClass::kPure:
          // Skipped entirely on hits; its instruction cost is replayed from
          // the entry so aggregate accounting matches a full walk.
          mint->entry.pure_instructions += r.overlay_instructions;
          break;
        case StageCacheClass::kObserver:
          // Observers re-run on every hit. They must behave as observers:
          // accept-only, frame untouched, and within the bitmask's width.
          if (r.mutated || r.verdict != Verdict::kAccept || i >= 32) {
            mint->cacheable = false;
          } else {
            mint->entry.observer_mask |= uint32_t{1} << i;
          }
          break;
        case StageCacheClass::kUncacheable:
          mint->cacheable = false;
          break;
      }
      if (r.mutated && mint->cacheable) {
        // Summarize the mutation as a cached header transform. Anything but
        // a single plain src/dst endpoint rewrite is beyond replay.
        std::optional<net::FiveTuple> post_flow;
        if (ctx.parsed != nullptr) post_flow = ctx.parsed->flow();
        if (!pre_flow || !post_flow ||
            mint->entry.rewrite_kind != RewriteKind::kNone) {
          mint->cacheable = false;
        } else if (IsSourceRewrite(*pre_flow, *post_flow)) {
          mint->entry.rewrite_stage = static_cast<int16_t>(i);
          mint->entry.rewrite_kind = RewriteKind::kSource;
          mint->entry.rewrite_ip = post_flow->src_ip;
          mint->entry.rewrite_port = post_flow->src_port;
        } else if (IsDestinationRewrite(*pre_flow, *post_flow)) {
          mint->entry.rewrite_stage = static_cast<int16_t>(i);
          mint->entry.rewrite_kind = RewriteKind::kDestination;
          mint->entry.rewrite_ip = post_flow->dst_ip;
          mint->entry.rewrite_port = post_flow->dst_port;
        } else {
          mint->cacheable = false;
        }
      }
    }
    // Each executed stage occupies stage latency plus its own overlay
    // instructions. The stage engine accrues exactly this (conservation
    // ground truth) and, when profiling, the same amount lands on the
    // stage's attribution node for the owning process.
    const Nanos stage_cost =
        options_.cost.nic_stage_latency_ns +
        static_cast<Nanos>(r.overlay_instructions) *
            options_.cost.overlay_instr_ns;
    lr.stages->AddBusy(stage_cost);
    prof_->Charge(stage_sites[i], lr.core_stages, owner_slot, stage_cost);
    if (trace_id != 0) {
      // Spans are laid end to end from `stage_start` so the chain tiles
      // exactly onto the cost model's stage window.
      const Nanos span_end = stage_start + stage_cost;
      sim_->tracer().Record(trace_id, stage->name(), stage_start, span_end);
      stage_start = span_end;
    }
    if (r.verdict != Verdict::kAccept) {
      aggregate.verdict = r.verdict;
      aggregate.drop_reason = r.drop_reason;
      return aggregate;
    }
  }
  return aggregate;
}

uint32_t SmartNic::ReplayFastPath(const FlowCacheEntry& entry,
                                  const std::vector<PipelineStage*>& stages,
                                  net::Packet& packet,
                                  overlay::PacketContext& ctx) {
  uint32_t observer_instructions = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    if (static_cast<int16_t>(i) == entry.rewrite_stage) {
      // Apply the cached transform exactly where the mutating stage sat, so
      // observers after it see the rewritten frame just as on a miss.
      if (entry.rewrite_kind == RewriteKind::kSource) {
        net::RewriteSource(packet.mutable_bytes(), entry.rewrite_ip,
                           entry.rewrite_port);
      } else if (entry.rewrite_kind == RewriteKind::kDestination) {
        net::RewriteDestination(packet.mutable_bytes(), entry.rewrite_ip,
                                entry.rewrite_port);
      }
      packet.SetParsed(net::ParseFrame(packet.bytes()));
      ctx.parsed = packet.parsed();
      ctx.frame = packet.bytes();
    }
    if ((entry.observer_mask >> i) & 1u) {
      observer_instructions +=
          stages[i]->Process(packet, ctx).overlay_instructions;
    }
  }
  return observer_instructions;
}

Status SmartNic::Doorbell(net::ConnectionId conn_id, Nanos now) {
  if (!rings_.contains(conn_id)) {
    return NotFoundError("doorbell for unknown connection");
  }
  // The doorbell write starts (or pokes) this connection's descriptor
  // consumer; fetches are paced by the DMA engine, so an application that
  // outruns the NIC observes a full TX ring (backpressure).
  bool& active = tx_consumer_active_[conn_id];
  if (!active) {
    active = true;
    // When sharded, the consumer event carries the flow's TX lane so the
    // interleave schedule orders same-tick wake-ups across lanes.
    const uint16_t lane =
        lanes_.empty() ? sim::Simulator::kNoLane
                       : TxLaneOf(flow_table_.Lookup(conn_id));
    sim_->ScheduleAtLane(lane, std::max(now, sim_->Now()),
                         [this, conn_id] { ConsumeTxRing(conn_id); });
  }
  return OkStatus();
}

void SmartNic::ConsumeTxRing(net::ConnectionId conn_id) {
  // Batched descriptor fetch: each iteration is exactly one old-style
  // consumer wake-up at virtual time `now`. The loop continues inline only
  // when the simulator has nothing scheduled at or before the next fetch
  // time — i.e. the re-arm event would have been the very next event to
  // run — so eliding it cannot reorder resource serialization and the
  // virtual-time trace stays bit-identical to unbatched execution.
  Nanos now = sim_->Now();
  const uint32_t batch = std::max<uint32_t>(1, options_.tx_fetch_batch);
  const auto it = rings_.find(conn_id);
  if (it == rings_.end()) {
    tx_consumer_active_.erase(conn_id);  // teardown: drop the entry too
    return;
  }
  // Hoisted per burst: no other event can run between inline iterations
  // (the continuation check above guarantees it), so the ring and flow
  // entry cannot be torn down or replaced mid-burst — the per-frame hash
  // walks the old loop did were pure overhead.
  RingPair* ring = it->second.get();
  FlowEntry* entry = flow_table_.Lookup(conn_id);
  // A burst serves one connection, so its lane — and therefore the
  // resource set every descriptor charges — is fixed for the whole pass.
  const LaneRefs refs =
      lanes_.empty() ? default_refs_ : LaneRefsFor(TxLaneOf(entry));
  TxBurst burst(&stats_);
  FastPathMemo memo;
  for (uint32_t fetched = 0;;) {
    auto pkt = ring->PopTx();
    if (!pkt.has_value()) {
      // Ring drained: stop the consumer and post the drain notification if
      // the connection asked for it (blocking send support, §4.3).
      tx_consumer_active_[conn_id] = false;
      if (entry != nullptr && entry->notify_tx_drain) {
        PostNotification(*entry, NotificationKind::kTxDrained, now,
                         refs.lane == sim::Simulator::kNoLane ? 0
                                                              : refs.lane);
      }
      return;
    }
    // Warm the next descriptor while this one runs the pipeline.
    if (const net::PacketPtr* next_pkt = ring->PeekTx();
        next_pkt != nullptr && *next_pkt != nullptr) {
      PrefetchRead(next_pkt->get());
    }
    ProcessTxDescriptor(std::move(*pkt), conn_id, entry, now, burst, &memo,
                        refs);
    // Next descriptor fetch when the lane's DMA engine frees up.
    const Nanos next = std::max(refs.dma->next_free(), now + 1);
    if (++fetched >= batch || sim_->HasEventAtOrBefore(next)) {
      sim_->ScheduleAtLane(refs.lane, next,
                           [this, conn_id] { ConsumeTxRing(conn_id); });
      return;
    }
    now = next;
  }
}

void SmartNic::ProcessTxDescriptor(net::PacketPtr packet,
                                   net::ConnectionId conn_id, FlowEntry* entry,
                                   Nanos now, TxBurst& burst,
                                   FastPathMemo* memo, const LaneRefs& lr) {
  burst.seen.Add();

  // Attribution context for the whole descriptor: everything below charges
  // under dispatch;nic.tx for the flow's owning pid (resolved through the
  // flow entry the kernel installed — the interposition layer's flow→pid
  // map). Host-injected frames carry their owner in packet metadata.
  telemetry::ProfScope tx_scope(prof_, prof_tx_site_);
  const uint32_t owner_pid = entry != nullptr ? entry->owner.owner_pid
                                              : packet->meta().owner_pid;
  const uint32_t tenant = entry != nullptr ? entry->owner.owner_tenant
                                           : packet->meta().tenant;
  packet->meta().owner_pid = owner_pid;  // for downstream charge points
  packet->meta().tenant = tenant;
  uint32_t owner_slot = 0;
  if (prof_->enabled()) {
    owner_slot = prof_->OwnerSlot(owner_pid);
    prof_->CountPacket(owner_slot, packet->size());
  }

  // Lifecycle tracing: deterministic 1-in-N arrival sampling. A zero id
  // makes every Record() below a no-op; virtual time is never touched.
  const uint32_t trace_id = sim_->tracer().SampleArrival();

  // 1) DMA-fetch the payload from the host ring (DDIO hit or DRAM miss).
  const uint64_t ring_ws =
      entry != nullptr ? entry->tx_ring_bytes : kHotWorkingSetBytes;
  const bool ddio_hit = ddio_.Access(TxRingId(conn_id), ring_ws);
  const Nanos dma_cost = options_.cost.DmaCost(packet->size(), ddio_hit);
  const Nanos dma_done = lr.dma->Serve(now, dma_cost);
  prof_->Charge(prof_tx_dma_site_, lr.core_dma, owner_slot, dma_cost);
  burst.dma.Add();
  sim_->tracer().Record(trace_id, "tx.dma", now, dma_done);

  // 2) Pipeline occupancy (line-rate cap) + per-stage latency. Tenants with
  // a configured cycle share are gated through their own WFQ virtual server
  // instead of the shared FIFO cursor: a quota'd aggressor queues behind its
  // *own* stretched horizon, never in front of the victim. The shared
  // resource still accrues the busy time so utilization accounting
  // (profiler attributed + unaccounted == busy) is unchanged.
  const Nanos pipe_cost = options_.cost.NicPipelineOccupancy();
  Nanos pipe_done;
  if (tenant_table_.Gated(tenant)) {
    const Nanos start = tenant_table_.Admit(tenant, lr.lane, dma_done,
                                            pipe_cost);
    lr.pipeline->AddBusy(pipe_cost);
    pipe_done = start + pipe_cost;
  } else {
    pipe_done = lr.pipeline->Serve(dma_done, pipe_cost);
  }
  prof_->Charge(prof_tx_pipe_site_, lr.core_pipe, owner_slot, pipe_cost);
  sim_->tracer().Record(trace_id, "tx.pipeline", dma_done, pipe_done);

  // Single-pass parse: stored on the packet, refreshed only if a stage
  // mutates the frame. Everything downstream reads this copy.
  packet->SetParsed(net::ParseFrame(packet->bytes()));
  overlay::PacketContext ctx = MakeContext(*packet, packet->parsed(), entry,
                                           net::Direction::kTx);
  // Per-flow accounting (norman-top). Pure observation: no events, no cost.
  // Runs on hits and misses alike — top-talkers is stateful like conntrack,
  // just keyed outside the stage chain.
  std::optional<net::FiveTuple> flow;
  if (packet->parsed() != nullptr) {
    flow = packet->parsed()->flow();
  }
  if (top_talkers_ != nullptr && flow) {
    top_talkers_->Record(*flow, ctx.conn.owner_pid,
                         static_cast<uint32_t>(packet->size()), now,
                         ctx.conn.owner_tenant);
  }
  packet->meta().direction = net::Direction::kTx;
  packet->meta().connection = conn_id;
  packet->meta().nic_arrival = now;
  packet->meta().trace_id = trace_id;

  // Flow fast path: one exact-match lookup replays the whole chain's
  // verdict. Re-diverted software-fallback packets bypass the cache (their
  // chain semantics differ: repeat FALLBACK converts to accept).
  const bool fp_eligible = flow_cache_.enabled() && flow.has_value() &&
                           !packet->meta().software_fallback;
  FlowCacheKey fp_key;
  Verdict verdict = Verdict::kAccept;
  DropReason drop_reason = DropReason::kNone;
  Nanos stages_done = 0;
  bool fp_hit = false;
  if (fp_eligible) {
    fp_key = FlowCacheKey{net::Direction::kTx, *flow, conn_id};
    const FlowCacheEntry* e = nullptr;
    if (memo != nullptr && memo->entry != nullptr && memo->key == fp_key) {
      // Same flow as the previous packet of this burst: replay its entry
      // without re-walking the hash map. Hit accounting stays exact; the
      // LRU touch coalesces (the entry is already most-recently-used).
      e = memo->entry;
      flow_cache_.CountCoalescedHit();
    } else {
      e = flow_cache_.Lookup(fp_key, lr.cache_part);
      if (memo != nullptr) {
        memo->entry = e;  // null on miss: the memo never outlives a miss
        if (e != nullptr) {
          memo->key = fp_key;
        }
      }
    }
    if (e != nullptr) {
      telemetry::ProfScope fp_scope(prof_, prof_tx_fastpath_site_);
      const uint32_t observer_instructions =
          ReplayFastPath(*e, tx_stages_, *packet, ctx);
      burst.overlay.Add(e->pure_instructions + observer_instructions);
      const Nanos fp_cost = options_.cost.flow_cache_hit_ns +
                            static_cast<Nanos>(observer_instructions) *
                                options_.cost.overlay_instr_ns;
      lr.stages->AddBusy(fp_cost);
      prof_->ChargeCurrent(lr.core_stages, owner_slot, fp_cost);
      stages_done = pipe_done + fp_cost;
      sim_->tracer().Record(trace_id, "fastpath", pipe_done, stages_done);
      verdict = static_cast<Verdict>(e->verdict);
      drop_reason = e->drop_reason;
      fp_hit = true;
    }
  }
  if (!fp_hit) {
    telemetry::ProfScope stages_scope(prof_, prof_tx_stages_site_);
    FlowCacheMint mint;
    StageResult result = RunStages(lr, tx_stages_, *packet, ctx, pipe_done,
                                   trace_id, fp_eligible ? &mint : nullptr,
                                   tx_stage_sites_, owner_slot);
    // A packet already diverted once (software path) is not diverted again
    // — repeat FALLBACK verdicts pass through, preventing divert loops.
    if (result.verdict == Verdict::kSoftwareFallback &&
        packet->meta().software_fallback) {
      result.verdict = Verdict::kAccept;
    }
    burst.overlay.Add(result.overlay_instructions);
    stages_done = pipe_done +
                  static_cast<Nanos>(tx_stages_.size()) *
                      options_.cost.nic_stage_latency_ns +
                  static_cast<Nanos>(result.overlay_instructions) *
                      options_.cost.overlay_instr_ns;
    verdict = result.verdict;
    drop_reason = result.drop_reason;
    if (fp_eligible) {
      // Fallback verdicts are never cached: the divert-loop conversion
      // above depends on per-packet state the cache cannot see.
      if (mint.cacheable && verdict != Verdict::kSoftwareFallback) {
        mint.entry.verdict = static_cast<uint8_t>(verdict);
        mint.entry.drop_reason = drop_reason;
        mint.entry.tenant = ctx.conn.owner_tenant;
        flow_cache_.Insert(fp_key, mint.entry, lr.cache_part);
      } else {
        flow_cache_.RecordUncacheable();
      }
    }
  }

  if (entry != nullptr) {
    ++entry->tx_packets;
    entry->tx_bytes += packet->size();
  }

  switch (verdict) {
    case Verdict::kDrop:
      stats_.RecordDrop(net::Direction::kTx, NormalizeDropReason(drop_reason),
                        ctx.conn.owner_pid, lr.tp_core,
                        ctx.conn.owner_tenant);
      return;
    case Verdict::kSoftwareFallback: {
      burst.fallback.Add();
      packet->meta().software_fallback = true;
      sim_->ScheduleAt(stages_done, [this, p = std::move(packet)]() mutable {
        if (fallback_sink_) {
          fallback_sink_(std::move(p), net::Direction::kTx);
        }
      });
      return;
    }
    case Verdict::kAccept:
      break;
  }
  burst.accepted.Add();

  // 3) Hand to the queueing discipline at the time the pipeline finishes,
  // then keep the wire busy. The event carries the lane so same-tick qdisc
  // handoffs across lanes follow the interleave schedule.
  const overlay::ConnMetadata conn_meta = ctx.conn;
  sim_->ScheduleAtLane(
      lr.lane, stages_done,
      [this, p = std::move(packet), conn_meta,
       tp_core = lr.tp_core]() mutable {
    // Rebuild a minimal context for the scheduler (classification inputs).
    // The packet's cached parse is already fresh — RunStages re-parsed in
    // place if (and only if) a stage rewrote the frame — so classifying
    // disciplines read it directly instead of re-parsing.
    overlay::PacketContext sched_ctx;
    sched_ctx.frame = p->bytes();
    sched_ctx.parsed = p->parsed();
    sched_ctx.conn = conn_meta;
    sched_ctx.direction = net::Direction::kTx;
    p->meta().sched_enqueued_at = sim_->Now();
    if (!scheduler_->Enqueue(std::move(p), sched_ctx)) {
      stats_.RecordDrop(net::Direction::kTx, scheduler_->last_drop_reason(),
                        conn_meta.owner_pid, tp_core,
                        conn_meta.owner_tenant);
      return;
    }
    telemetry::HotSet(&qdisc_gauges_,
                      static_cast<int64_t>(scheduler_->backlog_packets()));
    DrainWire();
  });
}

void SmartNic::InjectHostPacket(net::PacketPtr packet, Nanos now) {
  // Same path as a descriptor fetch; the source "ring" is host kernel
  // memory, which is never DDIO-resident (conn id from metadata, if any).
  if (packet == nullptr) {
    return;
  }
  const net::ConnectionId conn = packet->meta().connection;
  if (!lanes_.empty()) {
    // Sharded: stage the frame in its lane's TX ring and let the lane's
    // batched drain run it, so host-injected traffic charges the same
    // per-core resources as doorbell traffic on that lane.
    const uint16_t q = TxLaneOf(flow_table_.Lookup(conn));
    const uint32_t owner_pid = packet->meta().owner_pid;
    const uint32_t owner_tenant = packet->meta().tenant;
    Lane& lane = *lanes_[q];
    if (!lane.rings.PushTx(std::move(packet))) {
      stats_.RecordDrop(net::Direction::kTx, DropReason::kRingFull, owner_pid,
                        telemetry::Tracepoints::kCoreLaneBase + q,
                        owner_tenant);
      return;
    }
    if (!lane.tx_drain_scheduled) {
      lane.tx_drain_scheduled = true;
      sim_->ScheduleAtLane(q, std::max(now, sim_->Now()),
                           [this, q] { DrainTxLane(q); });
    }
    return;
  }
  // A single-packet burst: the accumulators flush on return. No memo —
  // host-injected packets have no burst neighbor to share a flow with.
  TxBurst burst(&stats_);
  ProcessTxDescriptor(std::move(packet), conn, flow_table_.Lookup(conn), now,
                      burst, nullptr, default_refs_);
}

void SmartNic::DrainTxLane(uint16_t queue) {
  Lane& lane = *lanes_[queue];
  lane.tx_drain_scheduled = false;
  const Nanos now = sim_->Now();
  const uint32_t n = lane.rings.PopTxN(std::span<net::PacketPtr>(lane.burst));
  const LaneRefs refs = LaneRefsFor(queue);
  TxBurst burst(&stats_);
  for (uint32_t i = 0; i < n; ++i) {
    net::PacketPtr pkt = std::move(lane.burst[i]);
    const net::ConnectionId conn = pkt->meta().connection;
    // Per-frame flow lookup (unlike the doorbell consumer's hoist): staged
    // frames on one lane can belong to different connections.
    ProcessTxDescriptor(std::move(pkt), conn, flow_table_.Lookup(conn), now,
                        burst, nullptr, refs);
  }
  if (!lane.rings.tx().empty() && !lane.tx_drain_scheduled) {
    lane.tx_drain_scheduled = true;
    sim_->ScheduleAtLane(queue, now, [this, queue] { DrainTxLane(queue); });
  }
}

void SmartNic::ScheduleDrain(Nanos when) {
  if (drain_scheduled_) {
    return;
  }
  drain_scheduled_ = true;
  sim_->ScheduleAt(when, [this] {
    drain_scheduled_ = false;
    DrainWire();
  });
}

void SmartNic::DrainWire() {
  if (scheduler_ == nullptr) {
    return;
  }
  const Nanos now = sim_->Now();
  if (wire_.next_free() > now) {
    ScheduleDrain(wire_.next_free());
    return;
  }
  net::PacketPtr pkt = scheduler_->Dequeue(now);
  telemetry::HotSet(&qdisc_gauges_,
                    static_cast<int64_t>(scheduler_->backlog_packets()));
  if (pkt == nullptr) {
    const Nanos eligible = scheduler_->NextEligibleTime(now);
    if (eligible > now) {
      ScheduleDrain(eligible);
    }
    return;
  }
  const Nanos wire_cost = options_.cost.WireCost(pkt->size());
  const Nanos done = wire_.Serve(now, wire_cost);
  if (prof_->enabled()) {
    // Serialization is charged to whoever owned the frame at TX time; the
    // pid rode along in packet metadata so we need no flow-table re-walk.
    prof_->Charge(prof_wire_site_, prof_core_wire_,
                  prof_->OwnerSlot(pkt->meta().owner_pid), wire_cost);
  }
  if (pkt->meta().trace_id != 0) {
    // Time parked in the discipline, then serialization onto the wire.
    sim_->tracer().Record(pkt->meta().trace_id, "tx.qdisc",
                          pkt->meta().sched_enqueued_at, now);
    sim_->tracer().Record(pkt->meta().trace_id, "tx.wire", now, done);
  }
  pkt->meta().completed_at = done;
  telemetry::HotIncrement(stats_.tx_bytes_wire_, pkt->size());
  sim_->ScheduleAt(done, [this, p = std::move(pkt)]() mutable {
    EmitToWire(std::move(p));
    DrainWire();
  });
}

void SmartNic::EmitToWire(net::PacketPtr packet) {
  if (wire_sink_) {
    wire_sink_(std::move(packet));
  }
}

Status SmartNic::ControlPlane::InjectSramPressure(uint64_t bytes) {
  NORMAN_RETURN_IF_ERROR(nic_->sram_.Allocate("fault_pressure", bytes));
  nic_->fault_sram_pressure_ += bytes;
  nic_->fault_sram_pressure_gauge_->Set(
      static_cast<int64_t>(nic_->fault_sram_pressure_));
  nic_->priv_mmio_.Write(kRegFaultSramPressure,
                         static_cast<uint32_t>(nic_->fault_sram_pressure_));
  return OkStatus();
}

void SmartNic::ControlPlane::ReleaseSramPressure() {
  if (nic_->fault_sram_pressure_ == 0) {
    return;
  }
  nic_->sram_.Free("fault_pressure", nic_->fault_sram_pressure_);
  nic_->fault_sram_pressure_ = 0;
  nic_->fault_sram_pressure_gauge_->Set(0);
  nic_->priv_mmio_.Write(kRegFaultSramPressure, 0);
}

void SmartNic::ControlPlane::StallNotifications(bool stalled) {
  if (nic_->notify_stalled_ == stalled) {
    return;
  }
  nic_->notify_stalled_ = stalled;
  nic_->fault_notify_stall_gauge_->Set(stalled ? 1 : 0);
  nic_->priv_mmio_.Write(kRegFaultNotifyStall, stalled ? 1u : 0u);
  if (stalled) {
    return;
  }
  // Flush the holding pen in arrival order; each Post may still fire a
  // one-shot interrupt exactly as it would have at stall time.
  std::vector<std::pair<uint32_t, Notification>> pen;
  pen.swap(nic_->stalled_notifications_);
  for (auto& [pid, notification] : pen) {
    const auto it = nic_->notif_queues_.find(pid);
    if (it != nic_->notif_queues_.end()) {
      it->second->Post(notification);
    }
  }
}

void SmartNic::PostNotification(const FlowEntry& entry, NotificationKind kind,
                                Nanos now, uint16_t queue) {
  if (notify_stalled_) {
    stalled_notifications_.emplace_back(
        entry.owner.owner_pid, Notification{kind, entry.conn_id, now, queue});
    fault_notify_deferred_->Increment();
    sim_->tracepoints().Emit(telemetry::Probe::kNotifyStall,
                             telemetry::Tracepoints::kCoreNic,
                             entry.owner.owner_pid,
                             stalled_notifications_.size(),
                             static_cast<uint64_t>(kind));
    return;
  }
  const auto it = notif_queues_.find(entry.owner.owner_pid);
  if (it == notif_queues_.end()) {
    return;
  }
  it->second->Post(Notification{kind, entry.conn_id, now, queue});
}

void SmartNic::DeliverFromWire(net::PacketPtr packet, Nanos now) {
  // Seen-counting happens at the wire regardless of path, so frames a full
  // lane ingress ring refuses still count as seen.
  telemetry::HotIncrement(stats_.rx_seen_);
  if (lanes_.empty()) {
    ProcessRxFrame(default_refs_, std::move(packet), now,
                   /*parsed_at_ingress=*/false);
    return;
  }
  // Sharded wire ingress: the MAC parses the frame exactly as received and
  // steers on those pre-rewrite headers into a lane's ingress ring — unlike
  // the serial path, which picks a queue only after the stage chain may
  // have rewritten them (see DESIGN.md "Multi-queue sharding").
  packet->SetParsed(net::ParseFrame(packet->bytes()));
  uint16_t queue = 0;
  uint32_t owner_pid = 0;
  uint32_t owner_tenant = 0;
  if (packet->parsed() != nullptr) {
    if (auto flow = packet->parsed()->flow()) {
      if (const FlowEntry* e = flow_table_.LookupByInboundTuple(*flow)) {
        owner_pid = e->owner.owner_pid;
        owner_tenant = e->owner.owner_tenant;
        queue = e->rx_queue != 0 ? e->rx_queue : rss_.Steer(*flow);
      } else {
        queue = rss_.Steer(*flow);
      }
      // Explicit per-flow overrides may name a queue beyond the lane count.
      queue = static_cast<uint16_t>(queue % lanes_.size());
    }
  }
  packet->meta().rx_queue = queue;
  Lane& lane = *lanes_[queue];
  if (!lane.rings.PushRx(std::move(packet))) {
    stats_.RecordDrop(net::Direction::kRx, DropReason::kRingFull, owner_pid,
                      telemetry::Tracepoints::kCoreLaneBase + queue,
                      owner_tenant);
    return;
  }
  if (!lane.rx_drain_scheduled) {
    lane.rx_drain_scheduled = true;
    sim_->ScheduleAtLane(queue, now, [this, queue] { DrainRxLane(queue); });
  }
}

void SmartNic::DrainRxLane(uint16_t queue) {
  Lane& lane = *lanes_[queue];
  lane.rx_drain_scheduled = false;
  const Nanos now = sim_->Now();
  const uint32_t n =
      lane.rings.PopRxN(std::span<net::PacketPtr>(lane.burst));
  const LaneRefs refs = LaneRefsFor(queue);
  for (uint32_t i = 0; i < n; ++i) {
    ProcessRxFrame(refs, std::move(lane.burst[i]), now,
                   /*parsed_at_ingress=*/true);
  }
  if (!lane.rings.rx().empty() && !lane.rx_drain_scheduled) {
    lane.rx_drain_scheduled = true;
    sim_->ScheduleAtLane(queue, now, [this, queue] { DrainRxLane(queue); });
  }
}

void SmartNic::ProcessRxFrame(const LaneRefs& lr, net::PacketPtr packet,
                              Nanos now, bool parsed_at_ingress) {
  // RX frames are processed one event each (the serial path delivers them
  // straight off the wire; lane drains run a burst inside one event), so
  // there is no burst scope to accumulate into; the volume counters go
  // through the hot tier instead. Drop accounting below stays exact at
  // every stats level.
  telemetry::ProfScope rx_scope(prof_, prof_rx_site_);
  packet->meta().direction = net::Direction::kRx;
  packet->meta().nic_arrival = now;
  const uint32_t trace_id = sim_->tracer().SampleArrival();
  packet->meta().trace_id = trace_id;

  // Single-pass parse, stored on the packet (see ProcessTxDescriptor). The
  // sharded steering step already parsed the pristine frame at ingress, and
  // nothing between the ring and here touches the bytes. Parse and flow
  // match happen before the pipeline serve — both are pure (no virtual
  // time, no counters), and the match result names the owning tenant whose
  // cycle share gates the pipeline below.
  if (!parsed_at_ingress) {
    packet->SetParsed(net::ParseFrame(packet->bytes()));
  }
  std::optional<net::FiveTuple> flow;
  if (packet->parsed() != nullptr) {
    flow = packet->parsed()->flow();
  }
  FlowEntry* entry = nullptr;
  if (flow) {
    entry = flow_table_.LookupByInboundTuple(*flow);
  }
  const uint32_t tenant = entry != nullptr ? entry->owner.owner_tenant : 0;

  // Pipeline occupancy. Unmatched wire frames belong to tenant 0 (the
  // system share, never gated); quota'd tenants go through their WFQ
  // virtual server — see the TX-side comment in ProcessTxDescriptor.
  const Nanos pipe_cost = options_.cost.NicPipelineOccupancy();
  Nanos pipe_done;
  if (tenant_table_.Gated(tenant)) {
    const Nanos start = tenant_table_.Admit(tenant, lr.lane, now, pipe_cost);
    lr.pipeline->AddBusy(pipe_cost);
    pipe_done = start + pipe_cost;
  } else {
    pipe_done = lr.pipeline->Serve(now, pipe_cost);
  }
  sim_->tracer().Record(trace_id, "rx.pipeline", now, pipe_done);

  // RX ownership: the receiving connection's pid (flow-table owner), or
  // "unowned" for unmatched frames bound for the host slow path. Restamp the
  // metadata — the TX-side pid from the sending NIC is not this side's owner.
  const uint32_t owner_pid = entry != nullptr ? entry->owner.owner_pid : 0;
  packet->meta().owner_pid = owner_pid;
  packet->meta().tenant = tenant;
  uint32_t owner_slot = 0;
  if (prof_->enabled()) {
    owner_slot = prof_->OwnerSlot(owner_pid);
    prof_->CountPacket(owner_slot, packet->size());
  }
  prof_->Charge(prof_rx_pipe_site_, lr.core_pipe, owner_slot, pipe_cost);

  // Graceful degradation under wire faults: frames whose IPv4 or L4
  // checksum no longer verifies were damaged in flight and are dropped here,
  // before any stage or application can act on corrupt bytes. Zero virtual
  // time — the MAC verifies at line rate.
  if (options_.verify_rx_checksums && packet->parsed() != nullptr &&
      !net::FrameChecksumsValid(packet->bytes(), *packet->parsed())) {
    stats_.RecordDrop(net::Direction::kRx, DropReason::kCorrupt,
                      entry != nullptr ? entry->owner.owner_pid : 0,
                      lr.tp_core, tenant);
    return;
  }

  overlay::PacketContext ctx = MakeContext(*packet, packet->parsed(), entry,
                                           net::Direction::kRx);
  if (top_talkers_ != nullptr && flow) {
    top_talkers_->Record(*flow, ctx.conn.owner_pid,
                         static_cast<uint32_t>(packet->size()), now,
                         ctx.conn.owner_tenant);
  }

  // Flow fast path (RX). Keyed on the wire tuple as seen *before* any
  // stage rewrite, matching the flow-table lookup above; unmatched frames
  // head to the host slow path and are never cached.
  const bool fp_eligible = flow_cache_.enabled() && flow.has_value() &&
                           entry != nullptr &&
                           !packet->meta().software_fallback;
  FlowCacheKey fp_key;
  Verdict verdict = Verdict::kAccept;
  DropReason drop_reason = DropReason::kNone;
  Nanos ready = 0;
  bool fp_hit = false;
  if (fp_eligible) {
    fp_key = FlowCacheKey{net::Direction::kRx, *flow, entry->conn_id};
    if (const FlowCacheEntry* e = flow_cache_.Lookup(fp_key, lr.cache_part)) {
      telemetry::ProfScope fp_scope(prof_, prof_rx_fastpath_site_);
      const uint32_t observer_instructions =
          ReplayFastPath(*e, rx_stages_, *packet, ctx);
      telemetry::HotIncrement(stats_.overlay_instructions_,
                              e->pure_instructions + observer_instructions);
      const Nanos fp_cost = options_.cost.flow_cache_hit_ns +
                            static_cast<Nanos>(observer_instructions) *
                                options_.cost.overlay_instr_ns;
      lr.stages->AddBusy(fp_cost);
      prof_->ChargeCurrent(lr.core_stages, owner_slot, fp_cost);
      ready = pipe_done + fp_cost;
      sim_->tracer().Record(trace_id, "fastpath", pipe_done, ready);
      verdict = static_cast<Verdict>(e->verdict);
      drop_reason = e->drop_reason;
      fp_hit = true;
    }
  }
  if (!fp_hit) {
    telemetry::ProfScope stages_scope(prof_, prof_rx_stages_site_);
    FlowCacheMint mint;
    StageResult result = RunStages(lr, rx_stages_, *packet, ctx, pipe_done,
                                   trace_id, fp_eligible ? &mint : nullptr,
                                   rx_stage_sites_, owner_slot);
    telemetry::HotIncrement(stats_.overlay_instructions_,
                            result.overlay_instructions);
    ready = pipe_done +
            static_cast<Nanos>(rx_stages_.size()) *
                options_.cost.nic_stage_latency_ns +
            static_cast<Nanos>(result.overlay_instructions) *
                options_.cost.overlay_instr_ns;
    verdict = result.verdict;
    drop_reason = result.drop_reason;
    if (fp_eligible) {
      if (mint.cacheable && verdict != Verdict::kSoftwareFallback) {
        mint.entry.verdict = static_cast<uint8_t>(verdict);
        mint.entry.drop_reason = drop_reason;
        mint.entry.tenant = ctx.conn.owner_tenant;
        flow_cache_.Insert(fp_key, mint.entry, lr.cache_part);
      } else {
        flow_cache_.RecordUncacheable();
      }
    }
  }

  if (verdict == Verdict::kDrop) {
    stats_.RecordDrop(net::Direction::kRx, NormalizeDropReason(drop_reason),
                      ctx.conn.owner_pid, lr.tp_core, ctx.conn.owner_tenant);
    return;
  }

  if (entry == nullptr || verdict == Verdict::kSoftwareFallback) {
    // No registered connection (or explicitly diverted): host slow path.
    if (entry == nullptr) {
      telemetry::HotIncrement(stats_.rx_unmatched_);
    } else {
      telemetry::HotIncrement(stats_.rx_fallback_);
    }
    packet->meta().software_fallback = true;
    sim_->ScheduleAt(ready, [this, p = std::move(packet)]() mutable {
      if (fallback_sink_) {
        fallback_sink_(std::move(p), net::Direction::kRx);
      }
    });
    return;
  }

  // Steer. Sharded: the lane was chosen at wire ingress (pre-rewrite
  // headers) and IS the queue. Serial: explicit flow-table queue wins,
  // otherwise RSS over the cached parse — post-rewrite here, so steering
  // keys on the headers actually delivered to the host (a NAT'd frame
  // hashes as rewritten).
  uint16_t queue;
  if (lr.lane != sim::Simulator::kNoLane) {
    queue = lr.lane;
  } else {
    queue = entry->rx_queue;
    if (packet->parsed() != nullptr) {
      if (auto q_flow = packet->parsed()->flow(); q_flow && queue == 0) {
        queue = rss_.Steer(*q_flow);
      }
    }
  }
  // Steering is combinational (zero cost-model time); the zero-width span
  // still marks the RSS decision point on a traced packet's track.
  sim_->tracer().Record(trace_id, "rx.rss", ready, ready);
  packet->meta().rx_queue = queue;
  packet->meta().connection = entry->conn_id;
  ++entry->rx_packets;
  entry->rx_bytes += packet->size();

  // DMA into the connection's RX ring (DDIO model again).
  const bool ddio_hit = ddio_.Access(RxRingId(entry->conn_id),
                                     entry->rx_ring_bytes != 0
                                         ? entry->rx_ring_bytes
                                         : kHotWorkingSetBytes);
  const Nanos dma_cost = options_.cost.DmaCost(packet->size(), ddio_hit);
  const Nanos dma_done = lr.dma->Serve(ready, dma_cost);
  prof_->Charge(prof_rx_dma_site_, lr.core_dma, owner_slot, dma_cost);
  telemetry::HotIncrement(stats_.dma_transfers_);
  sim_->tracer().Record(trace_id, "rx.dma", ready, dma_done);

  const net::ConnectionId conn_id = entry->conn_id;
  sim_->ScheduleAtLane(
      lr.lane, dma_done,
      [this, p = std::move(packet), conn_id, queue,
       tp_core = lr.tp_core]() mutable {
    const auto it = rings_.find(conn_id);
    FlowEntry* e = flow_table_.Lookup(conn_id);
    if (it == rings_.end() || e == nullptr) {
      return;  // connection torn down in flight
    }
    p->meta().completed_at = sim_->Now();
    const uint32_t tid = p->meta().trace_id;
    const Nanos ring_at = p->meta().completed_at;
    if (!it->second->PushRx(std::move(p))) {
      stats_.RecordDrop(net::Direction::kRx, DropReason::kRingFull,
                        e->owner.owner_pid, tp_core, e->owner.owner_tenant);
      return;
    }
    // Delivery into the app-visible ring (zero-width: the push itself is
    // instantaneous in the cost model; the wait was charged to rx.dma).
    sim_->tracer().Record(tid, "rx.ring", ring_at, ring_at);
    telemetry::HotIncrement(stats_.rx_accepted_);
    if (e->notify_rx) {
      PostNotification(*e, NotificationKind::kRxData, sim_->Now(), queue);
    }
  });
}

}  // namespace norman::nic
