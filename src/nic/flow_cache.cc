#include "src/nic/flow_cache.h"

#include "src/common/tracepoint.h"

namespace norman::nic {

namespace {
const std::string kSramCategory = "flow_cache";

telemetry::TraceFlow FlowOf(const FlowCacheKey& key) {
  return telemetry::TraceFlow{
      key.tuple.src_ip.addr,
      key.tuple.dst_ip.addr,
      key.tuple.src_port,
      key.tuple.dst_port,
      static_cast<uint8_t>(key.tuple.proto),
      key.direction == net::Direction::kTx ? telemetry::kDirTx
                                           : telemetry::kDirRx};
}
}  // namespace

FlowCache::FlowCache(SramAllocator* sram, telemetry::MetricsRegistry* registry)
    : sram_(sram),
      hits_(registry->GetCounter("fastpath.hits")),
      misses_(registry->GetCounter("fastpath.misses")),
      invalidations_(registry->GetCounter("fastpath.invalidations")),
      evictions_(registry->GetCounter("fastpath.evictions")),
      uncacheable_(registry->GetCounter("fastpath.uncacheable")),
      entries_(registry->GetGauge("fastpath.entries")),
      sram_gauge_(registry->GetGauge("fastpath.sram_bytes")) {
  parts_.resize(1);
  parts_[0].sram_category = kSramCategory;
}

FlowCache::~FlowCache() {
  for (Partition& part : parts_) {
    for (const auto& [key, entry] : part.lru) {
      sram_->Free(part.sram_category, kFlowCacheEntryBytes, entry.tenant);
    }
  }
}

uint32_t FlowCache::TpCore(const Partition& part) const {
  if (parts_.size() <= 1) {
    return telemetry::Tracepoints::kCoreNic;
  }
  return telemetry::Tracepoints::kCoreLaneBase +
         static_cast<uint32_t>(&part - parts_.data());
}

void FlowCache::Enable(size_t max_entries) {
  enabled_ = true;
  max_entries_ = max_entries;
  // Shrink each partition to its (possibly smaller) new share.
  for (Partition& part : parts_) {
    while (part.map.size() > PartitionCapacity()) EvictOne(part);
  }
}

void FlowCache::Disable() {
  enabled_ = false;
  Flush();
}

void FlowCache::Flush() {
  for (Partition& part : parts_) {
    for (const auto& [key, entry] : part.lru) {
      sram_->Free(part.sram_category, kFlowCacheEntryBytes, entry.tenant);
    }
    part.map.clear();
    part.lru.clear();
  }
  count_ = 0;
  entries_->Set(0);
  sram_gauge_->Set(0);
}

void FlowCache::SetPartitions(uint16_t n) {
  if (n == 0) n = 1;
  if (n > kMaxPartitions) n = kMaxPartitions;
  Flush();
  parts_.clear();
  parts_.resize(n);
  if (n == 1) {
    parts_[0].sram_category = kSramCategory;
  } else {
    for (uint16_t p = 0; p < n; ++p) {
      parts_[p].sram_category = kSramCategory + ".q" + std::to_string(p);
    }
  }
}

void FlowCache::Invalidate() {
  // The epoch advances even while disabled so that entries minted before a
  // Disable/Enable cycle can never resurrect stale configuration.
  ++epoch_;
  if (enabled_) {
    invalidations_->Increment();
    if (tp_ != nullptr) {
      tp_->Emit(telemetry::Probe::kFlowCacheInvalidate,
                telemetry::Tracepoints::kCoreNic, /*pid=*/0, epoch_, count_);
    }
  }
}

void FlowCache::InvalidatePartition(uint16_t partition) {
  if (partition >= parts_.size()) return;
  Partition& part = parts_[partition];
  ++part.epoch;
  if (enabled_) {
    invalidations_->Increment();
    if (tp_ != nullptr) {
      tp_->Emit(telemetry::Probe::kFlowCacheInvalidate, TpCore(part),
                /*pid=*/0, epoch_ + part.epoch, part.map.size());
    }
  }
}

const FlowCacheEntry* FlowCache::Lookup(const FlowCacheKey& key,
                                        uint16_t partition) {
  if (!enabled_) return nullptr;
  Partition& part = parts_[partition];
  const auto it = part.map.find(key);
  if (it == part.map.end()) {
    misses_->Increment();
    return nullptr;
  }
  if (it->second->second.epoch != epoch_ + part.epoch) {
    // Minted under an older configuration: lazily discard.
    Erase(part, key);
    misses_->Increment();
    return nullptr;
  }
  part.lru.splice(part.lru.begin(), part.lru, it->second);  // touch: MRU
  hits_->Increment();
  return &it->second->second;
}

void FlowCache::Insert(const FlowCacheKey& key, FlowCacheEntry entry,
                       uint16_t partition) {
  if (!enabled_) return;
  Partition& part = parts_[partition];
  entry.epoch = epoch_ + part.epoch;
  if (const auto it = part.map.find(key); it != part.map.end()) {
    it->second->second = entry;
    part.lru.splice(part.lru.begin(), part.lru, it->second);
    return;
  }
  while (part.map.size() >= PartitionCapacity() && !part.map.empty()) {
    EvictOne(part);
  }
  // A tenant-attributed charge: when the owning tenant's quota is spent,
  // evicting the shared LRU tail cannot help, so the mint is just skipped
  // (a cache miss costs correctness nothing).
  while (!sram_
              ->Allocate(part.sram_category, kFlowCacheEntryBytes,
                         /*pid=*/0, entry.tenant)
              .ok()) {
    if (entry.tenant != 0 &&
        sram_->TenantQuota(entry.tenant) != 0 &&
        sram_->TenantUsed(entry.tenant) + kFlowCacheEntryBytes >
            sram_->TenantQuota(entry.tenant)) {
      return;
    }
    if (part.map.empty()) return;  // SRAM cannot cover even one entry
    EvictOne(part);
  }
  part.lru.emplace_front(key, entry);
  part.map.emplace(key, part.lru.begin());
  ++count_;
  entries_->Set(static_cast<int64_t>(count_));
  sram_gauge_->Set(static_cast<int64_t>(sram_bytes()));
  if (tp_ != nullptr) {
    const telemetry::TraceFlow flow = FlowOf(key);
    tp_->Emit(telemetry::Probe::kFlowCacheInstall, TpCore(part), /*pid=*/0,
              entry.epoch, count_, 0, &flow);
  }
}

void FlowCache::EvictOne(Partition& part) {
  if (part.lru.empty()) return;
  const telemetry::TraceFlow flow = FlowOf(part.lru.back().first);
  const uint32_t tenant = part.lru.back().second.tenant;
  part.map.erase(part.lru.back().first);
  part.lru.pop_back();
  --count_;
  sram_->Free(part.sram_category, kFlowCacheEntryBytes, tenant);
  evictions_->Increment();
  entries_->Set(static_cast<int64_t>(count_));
  sram_gauge_->Set(static_cast<int64_t>(sram_bytes()));
  if (tp_ != nullptr) {
    tp_->Emit(telemetry::Probe::kFlowCacheEvict, TpCore(part), /*pid=*/0,
              count_, 0, 0, &flow);
  }
}

void FlowCache::Erase(Partition& part, const FlowCacheKey& key) {
  const auto it = part.map.find(key);
  if (it == part.map.end()) return;
  const uint32_t tenant = it->second->second.tenant;
  part.lru.erase(it->second);
  part.map.erase(it);
  --count_;
  sram_->Free(part.sram_category, kFlowCacheEntryBytes, tenant);
  entries_->Set(static_cast<int64_t>(count_));
  sram_gauge_->Set(static_cast<int64_t>(sram_bytes()));
}

}  // namespace norman::nic
