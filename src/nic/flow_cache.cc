#include "src/nic/flow_cache.h"

namespace norman::nic {

namespace {
const std::string kSramCategory = "flow_cache";

telemetry::TraceFlow FlowOf(const FlowCacheKey& key) {
  return telemetry::TraceFlow{
      key.tuple.src_ip.addr,
      key.tuple.dst_ip.addr,
      key.tuple.src_port,
      key.tuple.dst_port,
      static_cast<uint8_t>(key.tuple.proto),
      key.direction == net::Direction::kTx ? telemetry::kDirTx
                                           : telemetry::kDirRx};
}
}  // namespace

FlowCache::FlowCache(SramAllocator* sram, telemetry::MetricsRegistry* registry)
    : sram_(sram),
      hits_(registry->GetCounter("fastpath.hits")),
      misses_(registry->GetCounter("fastpath.misses")),
      invalidations_(registry->GetCounter("fastpath.invalidations")),
      evictions_(registry->GetCounter("fastpath.evictions")),
      uncacheable_(registry->GetCounter("fastpath.uncacheable")),
      entries_(registry->GetGauge("fastpath.entries")),
      sram_gauge_(registry->GetGauge("fastpath.sram_bytes")) {}

FlowCache::~FlowCache() {
  sram_->Free(kSramCategory, map_.size() * kFlowCacheEntryBytes);
}

void FlowCache::Enable(size_t max_entries) {
  enabled_ = true;
  max_entries_ = max_entries;
  // Shrink to the (possibly smaller) new bound.
  while (map_.size() > max_entries_) EvictOne();
}

void FlowCache::Disable() {
  enabled_ = false;
  sram_->Free(kSramCategory, map_.size() * kFlowCacheEntryBytes);
  map_.clear();
  lru_.clear();
  entries_->Set(0);
  sram_gauge_->Set(0);
}

void FlowCache::Invalidate() {
  // The epoch advances even while disabled so that entries minted before a
  // Disable/Enable cycle can never resurrect stale configuration.
  ++epoch_;
  if (enabled_) {
    invalidations_->Increment();
    if (tp_ != nullptr) {
      tp_->Emit(telemetry::Probe::kFlowCacheInvalidate,
                telemetry::Tracepoints::kCoreNic, /*pid=*/0, epoch_,
                map_.size());
    }
  }
}

const FlowCacheEntry* FlowCache::Lookup(const FlowCacheKey& key) {
  if (!enabled_) return nullptr;
  const auto it = map_.find(key);
  if (it == map_.end()) {
    misses_->Increment();
    return nullptr;
  }
  if (it->second->second.epoch != epoch_) {
    // Minted under an older configuration: lazily discard.
    Erase(key);
    misses_->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to MRU
  hits_->Increment();
  return &it->second->second;
}

void FlowCache::Insert(const FlowCacheKey& key, FlowCacheEntry entry) {
  if (!enabled_) return;
  entry.epoch = epoch_;
  if (const auto it = map_.find(key); it != map_.end()) {
    it->second->second = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (map_.size() >= max_entries_ && !map_.empty()) EvictOne();
  while (!sram_->Allocate(kSramCategory, kFlowCacheEntryBytes).ok()) {
    if (map_.empty()) return;  // SRAM cannot cover even one entry
    EvictOne();
  }
  lru_.emplace_front(key, entry);
  map_.emplace(key, lru_.begin());
  entries_->Set(static_cast<int64_t>(map_.size()));
  sram_gauge_->Set(static_cast<int64_t>(sram_bytes()));
  if (tp_ != nullptr) {
    const telemetry::TraceFlow flow = FlowOf(key);
    tp_->Emit(telemetry::Probe::kFlowCacheInstall,
              telemetry::Tracepoints::kCoreNic, /*pid=*/0, epoch_,
              map_.size(), 0, &flow);
  }
}

void FlowCache::EvictOne() {
  if (lru_.empty()) return;
  const telemetry::TraceFlow flow = FlowOf(lru_.back().first);
  map_.erase(lru_.back().first);
  lru_.pop_back();
  sram_->Free(kSramCategory, kFlowCacheEntryBytes);
  evictions_->Increment();
  entries_->Set(static_cast<int64_t>(map_.size()));
  sram_gauge_->Set(static_cast<int64_t>(sram_bytes()));
  if (tp_ != nullptr) {
    tp_->Emit(telemetry::Probe::kFlowCacheEvict,
              telemetry::Tracepoints::kCoreNic, /*pid=*/0, map_.size(), 0, 0,
              &flow);
  }
}

void FlowCache::Erase(const FlowCacheKey& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
  sram_->Free(kSramCategory, kFlowCacheEntryBytes);
  entries_->Set(static_cast<int64_t>(map_.size()));
  sram_gauge_->Set(static_cast<int64_t>(sram_bytes()));
}

}  // namespace norman::nic
