// NIC-resident flow verdict cache — the megaflow-style fast path.
//
// The stage chain (filters, spoof guard, NAT, overlay programs) resolves
// the same verdict for every packet of a flow as long as the control-plane
// configuration is unchanged. Real hardware exploits that by caching the
// aggregate match/action outcome in an exact-match table and hitting it at
// line rate (OVS megaflows, TC flower offload, "Advancements in Traffic
// Processing Using Programmable Hardware Flow Offload"). This class is that
// table: keyed by (direction, 5-tuple, connection), an entry replays the
// whole chain's outcome — verdict, drop reason, instruction cost, the NAT
// header rewrite — in one SRAM lookup, plus a bitmask of *observer* stages
// (conntrack, sniffer) that must still see the packet so their state stays
// identical with the cache on or off.
//
// Correctness rests on epoch invalidation: every control-plane mutation
// (filter install/remove, qdisc or NAT change, overlay reload, conntrack
// expiry) bumps a generation counter; entries minted under an older epoch
// are treated as misses and lazily discarded. Entries are charged to NIC
// SRAM (category "flow_cache") and evicted LRU — insertion order breaks
// ties deterministically — so cache capacity is a resource-exhaustion axis
// like the flow table itself (§5 of the paper).
//
// Sharded dataplanes partition the cache per RX lane (SetPartitions):
// each partition owns an LRU segment, a share of the entry budget, its
// own SRAM category ("flow_cache.q<N>") and a partition-local epoch so a
// lane migration (RSS indirection rewrite) can invalidate one lane's
// entries without flushing the others. An entry's staleness check is the
// *sum* of the global and partition epochs — both only ever increment,
// so the sum strictly increases on any bump and equality holds iff
// neither generation moved since mint.
#ifndef NORMAN_NIC_FLOW_CACHE_H_
#define NORMAN_NIC_FLOW_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/drop_reason.h"
#include "src/common/metrics.h"
#include "src/net/packet.h"
#include "src/net/types.h"
#include "src/nic/sram.h"

namespace norman::nic {

enum class Verdict : uint8_t;  // pipeline.h; avoid the circular include

// SRAM cost per cached flow: key + verdict + rewrite + LRU links, padded.
inline constexpr uint64_t kFlowCacheEntryBytes = 64;

// Cached header transform (the NAT rewrite), replayed on hits without
// running the NAT stage. kSource rewrites src ip:port, kDestination dst.
enum class RewriteKind : uint8_t { kNone = 0, kSource = 1, kDestination = 2 };

struct FlowCacheKey {
  net::Direction direction = net::Direction::kTx;
  net::FiveTuple tuple;  // as seen on pipeline entry (pre-rewrite)
  net::ConnectionId conn = net::kUnknownConnection;

  bool operator==(const FlowCacheKey&) const = default;
};

struct FlowCacheKeyHash {
  size_t operator()(const FlowCacheKey& k) const {
    uint64_t h = net::FiveTupleHash{}(k.tuple);
    h ^= (static_cast<uint64_t>(k.conn) << 1) ^
         (static_cast<uint64_t>(k.direction) << 40);
    h *= 1099511628211ULL;
    return static_cast<size_t>(h);
  }
};

struct FlowCacheEntry {
  uint8_t verdict = 0;  // nic::Verdict; stored raw to avoid the include cycle
  DropReason drop_reason = DropReason::kNone;
  // Overlay instructions the skipped (pure) stages executed when the entry
  // was minted; charged to the instruction counter on hits so aggregate
  // accounting matches a full chain walk.
  uint32_t pure_instructions = 0;
  // Bit i set => chain stage i is an observer (conntrack, sniffer) and must
  // still Process() the packet on a hit.
  uint32_t observer_mask = 0;
  // Chain index at which the cached rewrite applies (-1: no rewrite). The
  // replay applies it *in position* so observers after it see the rewritten
  // frame exactly as they would on a miss.
  int16_t rewrite_stage = -1;
  RewriteKind rewrite_kind = RewriteKind::kNone;
  net::Ipv4Address rewrite_ip;
  uint16_t rewrite_port = 0;
  // Control-plane generation this entry was minted under; stale => miss.
  uint64_t epoch = 0;
  // Tenant whose SRAM quota holds the entry (0 = system). Set by the NIC
  // from the matched flow's owner when the entry is minted so eviction
  // refunds the right budget.
  uint32_t tenant = 0;
};

class FlowCache {
 public:
  static constexpr uint16_t kMaxPartitions = 8;

  FlowCache(SramAllocator* sram, telemetry::MetricsRegistry* registry);
  ~FlowCache();

  FlowCache(const FlowCache&) = delete;
  FlowCache& operator=(const FlowCache&) = delete;

  // The cache is off by default (so pinned golden trajectories predate it);
  // the kernel opts in through the control plane.
  void Enable(size_t max_entries);
  void Disable();
  bool enabled() const { return enabled_; }

  // Repartitions the cache into `n` per-lane segments (clamped to
  // [1, kMaxPartitions]). Flushes every live entry: entries minted under
  // the old partition map would otherwise sit in the wrong segment. Each
  // partition gets max_entries / n of the entry budget (at least one) and
  // its own SRAM category so on-NIC memory pressure is attributable per
  // lane.
  void SetPartitions(uint16_t n);
  uint16_t partitions() const {
    return static_cast<uint16_t>(parts_.size());
  }

  // Bumps the global configuration epoch; all live entries become stale
  // and are lazily discarded on their next lookup.
  void Invalidate();

  // Bumps one partition's epoch: used when an RSS indirection rewrite
  // migrates flows across lanes — the migrated lane's cached verdicts must
  // re-walk the chain, the other lanes keep their fast path.
  void InvalidatePartition(uint16_t partition);

  // Hit: touches the partition LRU and returns the entry. Miss (absent,
  // stale, or cache disabled): returns nullptr. Stale entries are erased
  // on the spot.
  const FlowCacheEntry* Lookup(const FlowCacheKey& key,
                               uint16_t partition = 0);

  // Inserts (or overwrites) under the current epoch, evicting LRU entries
  // until both the partition's entry bound and SRAM admit it; skipped if
  // SRAM cannot cover one entry even with the partition emptied.
  void Insert(const FlowCacheKey& key, FlowCacheEntry entry,
              uint16_t partition = 0);

  size_t size() const { return count_; }
  size_t partition_size(uint16_t partition) const {
    return parts_[partition].map.size();
  }
  size_t max_entries() const { return max_entries_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t hits() const { return hits_->value(); }
  uint64_t misses() const { return misses_->value(); }
  uint64_t invalidations() const { return invalidations_->value(); }
  uint64_t evictions() const { return evictions_->value(); }
  uint64_t uncacheable() const { return uncacheable_->value(); }
  uint64_t sram_bytes() const { return count_ * kFlowCacheEntryBytes; }

  // A flow whose chain walk could not be summarized (uncacheable stage,
  // unsupported rewrite shape, fallback verdict). Counted by the NIC.
  void RecordUncacheable() { uncacheable_->Increment(); }

  // "flowcache.{install,evict,invalidate}" probe hookup.
  void AttachTracepoints(telemetry::Tracepoints* tp) { tp_ = tp; }

  // Accounting for a burst drain that replays the entry its previous packet
  // just hit, without re-walking the map (see SmartNic::ConsumeTxRing). The
  // hit counter stays exact; the LRU touch coalesces away, which is
  // order-preserving because the entry is already most-recently-used. Hit
  // and miss counts are decision-grade accounting, never stats-tiered.
  void CountCoalescedHit() { hits_->Increment(); }

 private:
  // Most-recently-used at the front; eviction takes the back. The list
  // order is a pure function of the lookup/insert sequence, so eviction is
  // deterministic.
  using LruList = std::list<std::pair<FlowCacheKey, FlowCacheEntry>>;
  struct Partition {
    LruList lru;
    std::unordered_map<FlowCacheKey, LruList::iterator, FlowCacheKeyHash> map;
    // Partition-local invalidation generation; an entry is fresh iff it
    // was minted under the current (epoch_ + epoch) sum.
    uint64_t epoch = 0;
    // "flow_cache" unpartitioned, "flow_cache.q<N>" per lane.
    std::string sram_category;
  };

  void EvictOne(Partition& part);
  void Erase(Partition& part, const FlowCacheKey& key);
  void Flush();
  size_t PartitionCapacity() const {
    const size_t per = max_entries_ / parts_.size();
    return per == 0 ? 1 : per;
  }
  // Tracepoint core id for a partition: lanes map onto the per-lane trace
  // rings when the cache is partitioned, the aggregate NIC ring otherwise.
  uint32_t TpCore(const Partition& part) const;

  SramAllocator* sram_;
  bool enabled_ = false;
  size_t max_entries_ = 0;
  size_t count_ = 0;  // live entries across all partitions
  uint64_t epoch_ = 0;
  std::vector<Partition> parts_;

  telemetry::Counter* hits_;           // fastpath.hits
  telemetry::Counter* misses_;         // fastpath.misses
  telemetry::Counter* invalidations_;  // fastpath.invalidations
  telemetry::Counter* evictions_;      // fastpath.evictions
  telemetry::Counter* uncacheable_;    // fastpath.uncacheable
  telemetry::Gauge* entries_;          // fastpath.entries
  telemetry::Gauge* sram_gauge_;       // fastpath.sram_bytes
  telemetry::Tracepoints* tp_ = nullptr;
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_FLOW_CACHE_H_
