// On-NIC per-flow accounting for `norman-top`.
//
// A bounded table of the busiest flows crossing the NIC, charged against NIC
// SRAM like every other piece of NIC-resident state (flow table, conntrack,
// ring descriptors — §5's limited-memory constraint). Unlike conntrack,
// which refuses new flows when full so established state survives, a
// top-talkers table exists to surface the *current* heavy hitters: when full
// it evicts the entry with the fewest bytes (smallest-first, tuple order as
// the deterministic tie-break) to admit the new flow.
//
// Recording is pure observation — no events, no virtual-time cost — so the
// packet trajectory is bit-identical whether the table is enabled or not.
// It is off by default; the kernel enables it through the control plane.
#ifndef NORMAN_NIC_TOP_TALKERS_H_
#define NORMAN_NIC_TOP_TALKERS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/units.h"
#include "src/net/types.h"
#include "src/nic/sram.h"

namespace norman::nic {

// SRAM cost per tracked flow: tuple + counters + timestamps, padded.
inline constexpr uint64_t kTopTalkerEntryBytes = 48;

struct TopTalkerEntry {
  net::FiveTuple tuple;
  uint32_t owner_pid = 0;  // process the flow belongs to; 0 = unowned
  uint32_t tenant = 0;     // tenant whose SRAM quota holds the entry
  uint64_t packets = 0;
  uint64_t bytes = 0;
  Nanos first_seen = 0;
  Nanos last_seen = 0;
};

class TopTalkers {
 public:
  TopTalkers(SramAllocator* sram, telemetry::MetricsRegistry* registry,
             size_t max_entries);
  ~TopTalkers();

  TopTalkers(const TopTalkers&) = delete;
  TopTalkers& operator=(const TopTalkers&) = delete;

  // Accounts one packet of `bytes` to `tuple`. New flows are admitted by
  // charging SRAM; at capacity (table bound or SRAM exhausted) the
  // smallest-bytes entry is evicted to make room. A flow that cannot be
  // admitted at all (empty table and no SRAM) counts as untracked.
  void Record(const net::FiveTuple& tuple, uint32_t owner_pid, uint32_t bytes,
              Nanos now, uint32_t tenant = 0);

  size_t size() const { return table_.size(); }
  size_t max_entries() const { return max_entries_; }
  uint64_t tracked() const { return tracked_->value(); }
  uint64_t evicted() const { return evicted_->value(); }
  uint64_t untracked() const { return untracked_->value(); }

  const TopTalkerEntry* Lookup(const net::FiveTuple& tuple) const;

  // The n busiest flows, most bytes first; ties break on tuple order, so
  // the ranking is deterministic.
  std::vector<TopTalkerEntry> Top(size_t n) const;

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [tuple, entry] : table_) fn(entry);
  }

 private:
  SramAllocator* sram_;
  size_t max_entries_;
  // Sorted by tuple: deterministic iteration and eviction tie-breaks.
  std::map<net::FiveTuple, TopTalkerEntry> table_;
  // Last entry hit: packet trains bypass the tree walk. Cleared on eviction.
  TopTalkerEntry* hot_ = nullptr;

  telemetry::Counter* tracked_;    // flow.tracked
  telemetry::Counter* evicted_;    // flow.evicted
  telemetry::Counter* untracked_;  // flow.untracked
  telemetry::Gauge* entries_;      // flow.entries
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_TOP_TALKERS_H_
