#include "src/nic/top_talkers.h"

#include <algorithm>

namespace norman::nic {

namespace {
const std::string kSramCategory = "top_talkers";
}  // namespace

TopTalkers::TopTalkers(SramAllocator* sram,
                       telemetry::MetricsRegistry* registry,
                       size_t max_entries)
    : sram_(sram),
      max_entries_(max_entries),
      tracked_(registry->GetCounter("flow.tracked")),
      evicted_(registry->GetCounter("flow.evicted")),
      untracked_(registry->GetCounter("flow.untracked")),
      entries_(registry->GetGauge("flow.entries")) {}

TopTalkers::~TopTalkers() {
  // Per-entry so each owning tenant's quota usage is refunded.
  for (const auto& [tuple, entry] : table_) {
    sram_->Free(kSramCategory, kTopTalkerEntryBytes, entry.tenant);
  }
}

void TopTalkers::Record(const net::FiveTuple& tuple, uint32_t owner_pid,
                        uint32_t bytes, Nanos now, uint32_t tenant) {
  // Hot-flow cache: trains of back-to-back packets from one flow skip the
  // tree walk. std::map nodes are pointer-stable, so the cached entry stays
  // valid until an eviction (which clears it).
  if (hot_ != nullptr && hot_->tuple == tuple) {
    ++hot_->packets;
    hot_->bytes += bytes;
    hot_->last_seen = now;
    return;
  }
  auto it = table_.find(tuple);
  if (it != table_.end()) {
    TopTalkerEntry& entry = it->second;
    ++entry.packets;
    entry.bytes += bytes;
    entry.last_seen = now;
    hot_ = &entry;
    return;
  }

  // New flow. Make room first: evict the smallest-bytes entry (tuple order
  // breaks ties — table_ iterates in tuple order, so the first minimum wins)
  // when the table bound is hit, or when SRAM cannot cover another entry.
  if (table_.size() >= max_entries_ ||
      (sram_->available() < kTopTalkerEntryBytes && !table_.empty())) {
    auto victim = table_.begin();
    for (auto cand = table_.begin(); cand != table_.end(); ++cand) {
      if (cand->second.bytes < victim->second.bytes) victim = cand;
    }
    // Drop the hot pointer only when it names the node being erased: other
    // nodes are pointer-stable across the erase, so an unrelated eviction
    // must not cost the active flow its fast lookup.
    if (hot_ == &victim->second) hot_ = nullptr;
    const uint32_t victim_tenant = victim->second.tenant;
    table_.erase(victim);
    sram_->Free(kSramCategory, kTopTalkerEntryBytes, victim_tenant);
    evicted_->Increment();
  }

  if (!sram_->Allocate(kSramCategory, kTopTalkerEntryBytes, owner_pid, tenant)
           .ok()) {
    // Nothing to evict and no SRAM left: the flow goes unaccounted.
    untracked_->Increment();
    entries_->Set(static_cast<int64_t>(table_.size()));
    return;
  }

  TopTalkerEntry entry;
  entry.tuple = tuple;
  entry.owner_pid = owner_pid;
  entry.tenant = tenant;
  entry.packets = 1;
  entry.bytes = bytes;
  entry.first_seen = now;
  entry.last_seen = now;
  table_.emplace(tuple, entry);
  tracked_->Increment();
  entries_->Set(static_cast<int64_t>(table_.size()));
}

const TopTalkerEntry* TopTalkers::Lookup(const net::FiveTuple& tuple) const {
  const auto it = table_.find(tuple);
  return it == table_.end() ? nullptr : &it->second;
}

std::vector<TopTalkerEntry> TopTalkers::Top(size_t n) const {
  std::vector<TopTalkerEntry> out;
  out.reserve(table_.size());
  for (const auto& [tuple, entry] : table_) out.push_back(entry);
  std::stable_sort(out.begin(), out.end(),
                   [](const TopTalkerEntry& a, const TopTalkerEntry& b) {
                     return a.bytes > b.bytes;  // stable: ties keep tuple order
                   });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace norman::nic
