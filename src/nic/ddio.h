// DDIO / LLC model for DMA targets.
//
// Intel DDIO lets device DMA land directly in the last-level cache, but only
// in a small, fixed fraction of it (2 of ~11+ ways by default). §5 of the
// paper hypothesizes that Norman's per-connection ring buffers stop fitting
// in that fraction beyond ~1024 connections, so DMA degrades to DRAM speed
// and throughput falls off a cliff. This model reproduces exactly that
// mechanism: each connection's ring working set occupies lines in a
// DDIO-capped region managed with LRU; a DMA that finds its ring resident is
// a hit (LLC-speed), otherwise a miss (DRAM-speed) that evicts the
// least-recently-used ring.
//
// Granularity is one *ring working set* (not individual cache lines): ring
// access is sequential, so residency is effectively all-or-nothing per ring,
// and this keeps the model O(1) per DMA.
#ifndef NORMAN_NIC_DDIO_H_
#define NORMAN_NIC_DDIO_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/common/units.h"

namespace norman::nic {

class DdioModel {
 public:
  // llc_bytes: total LLC size; ddio_ways/llc_ways: way split giving the
  // DMA-visible share. Defaults: 32 MiB LLC, 2 of 16 ways => 4 MiB for I/O.
  DdioModel(uint64_t llc_bytes = 32 * kMiB, int ddio_ways = 2,
            int llc_ways = 16)
      : ddio_capacity_(llc_bytes * static_cast<uint64_t>(ddio_ways) /
                       static_cast<uint64_t>(llc_ways)) {}

  uint64_t ddio_capacity() const { return ddio_capacity_; }
  uint64_t resident_bytes() const { return resident_bytes_; }

  // Records a DMA touching `ring_id`, whose working set is `bytes`.
  // Returns true on a DDIO hit (ring already resident), false on a miss.
  // On a miss the ring is brought in, evicting LRU rings as needed; rings
  // larger than the whole DDIO share never become resident.
  bool Access(uint64_t ring_id, uint64_t bytes) {
    ++accesses_;
    const auto it = index_.find(ring_id);
    if (it != index_.end()) {
      // Move to MRU position.
      lru_.splice(lru_.begin(), lru_, it->second.pos);
      ++hits_;
      return true;
    }
    ++misses_;
    if (bytes > ddio_capacity_) {
      return false;  // cannot ever be resident
    }
    while (resident_bytes_ + bytes > ddio_capacity_ && !lru_.empty()) {
      Evict();
    }
    lru_.push_front(ring_id);
    index_[ring_id] = Entry{bytes, lru_.begin()};
    resident_bytes_ += bytes;
    return false;
  }

  // Drops a ring's residency (connection teardown).
  void Invalidate(uint64_t ring_id) {
    const auto it = index_.find(ring_id);
    if (it == index_.end()) {
      return;
    }
    resident_bytes_ -= it->second.bytes;
    lru_.erase(it->second.pos);
    index_.erase(it);
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t accesses() const { return accesses_; }
  double hit_rate() const {
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(hits_) / static_cast<double>(accesses_);
  }

  void ResetStats() { hits_ = misses_ = accesses_ = 0; }

 private:
  struct Entry {
    uint64_t bytes;
    std::list<uint64_t>::iterator pos;
  };

  void Evict() {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto it = index_.find(victim);
    resident_bytes_ -= it->second.bytes;
    index_.erase(it);
  }

  uint64_t ddio_capacity_;
  uint64_t resident_bytes_ = 0;
  std::list<uint64_t> lru_;  // front = MRU
  std::unordered_map<uint64_t, Entry> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t accesses_ = 0;
};

}  // namespace norman::nic

#endif  // NORMAN_NIC_DDIO_H_
