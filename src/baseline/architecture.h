// The interposition architectures the paper compares (§1, §2, §6).
//
// Capability flags encode §2's core argument: every management scenario
// needs BOTH a global view (all traffic crossing the NIC) and a process
// view (which process/user produced it), and only OS-integrated designs
// have both. CapabilitiesOf() is consulted by the scenario benchmarks, but
// E3/E8/E9 also *demonstrate* each capability (or its absence) with live
// simulation runs rather than trusting the table.
#ifndef NORMAN_BASELINE_ARCHITECTURE_H_
#define NORMAN_BASELINE_ARCHITECTURE_H_

#include <string_view>

namespace norman::baseline {

enum class Architecture {
  // Traditional in-kernel network stack: full interposition, slow (virtual
  // data movement: syscalls + copies on every packet).
  kKernelStack,
  // Raw kernel bypass (DPDK-style): fast, no interposition at all.
  kBypass,
  // Kernel bypass with interposition inside each application's library:
  // sees only its own traffic, and a malicious app simply skips it.
  kBypassAppInterposition,
  // Hypervisor/switch-level interposition (AccelNet, P4, middlebox): global
  // view of packets, but no process table — cannot attribute traffic to
  // processes/users and cannot signal threads.
  kHypervisorSwitch,
  // OS-integrated sidecar dataplane on a dedicated core (IX, Snap): full
  // interposition, but pays physical data movement and burns a core.
  kSidecarCore,
  // Kernel On-Path Interposition: dataplane in the kernel-managed SmartNIC.
  kKopi,
};

struct Capabilities {
  bool global_view = false;    // sees traffic of all applications
  bool process_view = false;   // knows owning pid/uid/comm/cgroup
  bool can_enforce = false;    // policies cannot be evaded by the app
  bool can_block_io = false;   // can wake/sleep threads on packet events
  bool line_rate = false;      // no per-packet kernel/extra-core crossing
};

constexpr Capabilities CapabilitiesOf(Architecture arch) {
  switch (arch) {
    case Architecture::kKernelStack:
      return {true, true, true, true, false};
    case Architecture::kBypass:
      return {false, false, false, false, true};
    case Architecture::kBypassAppInterposition:
      // Sees itself only; a compromised app evades it entirely.
      return {false, true, false, false, true};
    case Architecture::kHypervisorSwitch:
      return {true, false, true, false, true};
    case Architecture::kSidecarCore:
      return {true, true, true, true, false};
    case Architecture::kKopi:
      return {true, true, true, true, true};
  }
  return {};
}

constexpr std::string_view ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kKernelStack:
      return "kernel-stack";
    case Architecture::kBypass:
      return "bypass";
    case Architecture::kBypassAppInterposition:
      return "bypass+app-interpose";
    case Architecture::kHypervisorSwitch:
      return "hypervisor/switch";
    case Architecture::kSidecarCore:
      return "sidecar-core";
    case Architecture::kKopi:
      return "KOPI";
  }
  return "?";
}

}  // namespace norman::baseline

#endif  // NORMAN_BASELINE_ARCHITECTURE_H_
