#include "src/baseline/perf_model.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"

namespace norman::baseline {
namespace {

struct PathCosts {
  Nanos app_core = 0;     // per-packet work on the application core
  Nanos handoff = 0;      // cross-core descriptor handoff latency
  Nanos extra_core = 0;   // per-packet work on the interposition core
  Nanos mmio = 0;         // doorbell
  Nanos dma = 0;          // host <-> NIC transfer
  Nanos pipeline_occupancy = 0;  // NIC pipeline slot
  Nanos pipeline_latency = 0;    // NIC stages + overlay program
  int transfers = 0;
};

PathCosts CostsFor(Architecture arch, const sim::CostModel& cost,
                   const PerfConfig& cfg) {
  PathCosts c;
  const Nanos sw_rules =
      static_cast<Nanos>(cfg.filter_rules) * cfg.software_rule_ns;
  switch (arch) {
    case Architecture::kKernelStack:
      // Virtual movement: syscall + user->kernel copy + stack traversal
      // (which is where netfilter/qdisc run), then a normal DMA.
      c.app_core = cost.syscall_ns + cost.CopyCost(cfg.frame_bytes) +
                   cost.kernel_stack_per_packet_ns + sw_rules +
                   cost.app_per_packet_ns;
      c.dma = cost.DmaCost(cfg.frame_bytes, /*ddio_hit=*/true);
      c.transfers = 2;  // copy + DMA
      break;
    case Architecture::kBypass:
    case Architecture::kBypassAppInterposition:
      c.app_core = cost.app_per_packet_ns +
                   (arch == Architecture::kBypassAppInterposition ? sw_rules
                                                                  : 0);
      c.mmio = cost.mmio_write_ns;
      c.dma = cost.DmaCost(cfg.frame_bytes, /*ddio_hit=*/true);
      c.transfers = 1;  // DMA only
      break;
    case Architecture::kHypervisorSwitch:
    case Architecture::kSidecarCore:
      // Physical movement: descriptor crosses to a dedicated core that runs
      // the interposition software, then DMAs to the NIC.
      c.app_core = cost.app_per_packet_ns;
      c.handoff = cost.cross_core_handoff_ns;
      c.extra_core = cost.sidecar_per_packet_ns + sw_rules;
      c.dma = cost.DmaCost(cfg.frame_bytes, /*ddio_hit=*/true);
      c.transfers = 2;  // cacheline transfer between cores + DMA
      break;
    case Architecture::kKopi:
      c.app_core = cost.app_per_packet_ns;
      c.mmio = cost.mmio_write_ns;
      c.dma = cost.DmaCost(cfg.frame_bytes, /*ddio_hit=*/true);
      c.pipeline_occupancy = cost.NicPipelineOccupancy();
      c.pipeline_latency =
          4 * cost.nic_stage_latency_ns +
          static_cast<Nanos>(cfg.filter_rules * cfg.overlay_instr_per_rule) *
              cost.overlay_instr_ns;
      c.transfers = 1;  // DMA only; interposition is on-path
      break;
  }
  return c;
}

}  // namespace

PerfResult RunPerfModel(Architecture arch, const sim::CostModel& cost,
                        const PerfConfig& cfg) {
  const PathCosts c = CostsFor(arch, cost, cfg);
  const Nanos wire_cost = cost.WireCost(cfg.frame_bytes);

  sim::Resource app_core("app");
  sim::Resource extra_core("sidecar");
  sim::Resource dma("dma");
  sim::Resource pipeline("pipeline");
  sim::Resource wire("wire");

  PerfResult result;
  result.arch = arch;
  result.packets = cfg.packets;

  Nanos last_completion = 0;
  Nanos arrival = 0;
  // Completion times of the last `window` packets (ring backpressure).
  const uint32_t window = std::max<uint32_t>(1, cfg.window);
  std::vector<Nanos> completions(window, 0);
  for (uint64_t i = 0; i < cfg.packets; ++i) {
    if (cfg.interarrival > 0) {
      arrival = static_cast<Nanos>(i) * cfg.interarrival;
    } else {
      // Closed loop: the app issues the next packet as soon as its core is
      // free AND a descriptor slot opened up.
      arrival = std::max(app_core.next_free(), completions[i % window]);
    }
    Nanos t = app_core.Serve(arrival, c.app_core);
    if (c.handoff > 0) {
      t += c.handoff;
      t = extra_core.Serve(t, c.extra_core);
    }
    t += c.mmio;
    t = dma.Serve(t, c.dma);
    if (c.pipeline_occupancy > 0) {
      t = pipeline.Serve(t, c.pipeline_occupancy) + c.pipeline_latency;
    }
    t = wire.Serve(t, wire_cost);
    result.latency.Add(t - arrival);
    completions[i % window] = t;
    last_completion = std::max(last_completion, t);
  }

  result.elapsed = last_completion;
  if (last_completion > 0) {
    result.throughput_pps = static_cast<double>(cfg.packets) * 1e9 /
                            static_cast<double>(last_completion);
    result.throughput_bps =
        AchievedBps(cfg.packets * cfg.frame_bytes, last_completion);
  }
  result.app_core_utilization = app_core.Utilization(last_completion);
  result.extra_core_utilization = extra_core.Utilization(last_completion);
  result.transfers_per_packet = c.transfers;
  return result;
}

}  // namespace norman::baseline
