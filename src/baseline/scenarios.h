// §2's four management scenarios, run live under each interposition
// architecture (experiment E3 — the paper's central capability matrix).
//
// Each scenario is a miniature simulation with concrete mechanics:
//  * Debugging       — three apps, one floods bogus ARP; can the admin's
//                      tooling attribute the flood to the culprit process?
//  * PortPartitioning— policy "only bob's postgres may use port 5432"; a
//                      rogue process tries anyway; is the violation blocked
//                      without collateral damage to the legitimate user?
//  * ProcessScheduling— an app wants blocking recv; does the architecture
//                      have a wake signal path (vs forced polling)?
//  * QoS             — weighted fair shares across two users' competing
//                      traffic; do achieved shares track the configured
//                      weights?
//
// The mechanics matter: app-level interposition fails PortPartitioning not
// by fiat but because the malicious app *skips its own library hook*;
// hypervisor interposition fails Debugging because its observations carry
// no pid; and so on. KOPI's runs use the real dataplane components.
#ifndef NORMAN_BASELINE_SCENARIOS_H_
#define NORMAN_BASELINE_SCENARIOS_H_

#include <string>

#include "src/baseline/architecture.h"

namespace norman::baseline {

struct ScenarioOutcome {
  bool success = false;
  std::string detail;  // human-readable evidence from the run
};

ScenarioOutcome RunDebuggingScenario(Architecture arch);
ScenarioOutcome RunPortPartitioningScenario(Architecture arch);
ScenarioOutcome RunProcessSchedulingScenario(Architecture arch);
ScenarioOutcome RunQosScenario(Architecture arch);

}  // namespace norman::baseline

#endif  // NORMAN_BASELINE_SCENARIOS_H_
