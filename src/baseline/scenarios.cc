#include "src/baseline/scenarios.h"

#include "src/net/packet_pool.h"

#include <map>
#include <optional>
#include <vector>

#include "src/dataplane/qdisc.h"
#include "src/overlay/packet_context.h"

namespace norman::baseline {
namespace {

// A transmission attempt in the miniature world.
struct Attempt {
  uint32_t pid;
  uint32_t uid;
  std::string comm;
  uint16_t dst_port;
  bool is_bogus_arp = false;
  bool malicious = false;  // will evade any in-app hook
};

// What the architecture's interposition point observes for one attempt:
// nothing, the frame alone, or the frame plus owner metadata.
struct Observation {
  bool frame_visible = false;
  std::optional<uint32_t> pid;
  std::optional<uint32_t> uid;
  uint16_t dst_port = 0;
  bool is_bogus_arp = false;
};

Observation Observe(Architecture arch, const Attempt& a) {
  Observation o;
  const Capabilities caps = CapabilitiesOf(arch);
  switch (arch) {
    case Architecture::kBypass:
      return o;  // nobody on path
    case Architecture::kBypassAppInterposition:
      if (a.malicious) {
        return o;  // the app simply does not call its own hook
      }
      o.frame_visible = true;
      o.pid = a.pid;  // an app knows itself...
      o.uid = a.uid;
      break;
    case Architecture::kHypervisorSwitch:
      o.frame_visible = true;  // ...but the hypervisor knows no processes
      break;
    case Architecture::kKernelStack:
    case Architecture::kSidecarCore:
    case Architecture::kKopi:
      o.frame_visible = true;
      o.pid = a.pid;
      o.uid = a.uid;
      break;
  }
  (void)caps;
  o.dst_port = a.dst_port;
  o.is_bogus_arp = a.is_bogus_arp;
  return o;
}

// Whether the architecture can actually stop this attempt (enforcement
// point the app cannot route around).
bool CanBlock(Architecture arch, const Attempt& a, const Observation& o) {
  if (!o.frame_visible) {
    return false;
  }
  if (arch == Architecture::kBypassAppInterposition && a.malicious) {
    return false;  // unreachable anyway (no observation), kept for clarity
  }
  return true;
}

}  // namespace

ScenarioOutcome RunDebuggingScenario(Architecture arch) {
  // Apps: pid 101 (web, bob), 102 (cache, charlie), 103 (buggy, charlie).
  // 103 floods bogus ARP requests. Who can the admin blame?
  const std::vector<Attempt> attempts = {
      {101, 1001, "web", 443, false, false},
      {102, 1002, "cache", 6379, false, false},
      {103, 1002, "buggy", 0, /*is_bogus_arp=*/true, /*malicious=*/true},
      {103, 1002, "buggy", 0, true, true},
      {103, 1002, "buggy", 0, true, true},
  };
  int bogus_seen = 0;
  std::map<uint32_t, int> bogus_by_pid;
  for (const Attempt& a : attempts) {
    const Observation o = Observe(arch, a);
    if (o.frame_visible && o.is_bogus_arp) {
      ++bogus_seen;
      if (o.pid) {
        ++bogus_by_pid[*o.pid];
      }
    }
  }
  ScenarioOutcome out;
  if (bogus_by_pid.size() == 1 && bogus_by_pid.begin()->first == 103) {
    out.success = true;
    out.detail = "flood attributed to pid 103 (" +
                 std::to_string(bogus_by_pid.begin()->second) +
                 " bogus ARP frames observed with owner metadata)";
  } else if (bogus_seen > 0) {
    out.detail = "flood visible (" + std::to_string(bogus_seen) +
                 " frames) but carries no process identity: admin must "
                 "inspect every application by hand";
  } else {
    out.detail = "flood invisible: no on-path observer";
  }
  return out;
}

ScenarioOutcome RunPortPartitioningScenario(Architecture arch) {
  // Policy: only uid 1001's "postgres" may send to port 5432.
  const std::vector<Attempt> attempts = {
      {201, 1001, "postgres", 5432, false, false},  // legitimate
      {202, 1002, "rogue", 5432, false, true},      // violation
      {203, 1002, "mysql", 3306, false, false},     // unrelated
  };
  bool legit_passed = false;
  bool violation_blocked = false;
  bool collateral_damage = false;
  for (const Attempt& a : attempts) {
    const Observation o = Observe(arch, a);
    bool blocked = false;
    if (CanBlock(arch, a, o) && o.dst_port == 5432) {
      if (o.uid.has_value()) {
        blocked = *o.uid != 1001;  // precise owner match
      } else {
        // No process view: the only expressible policy is port-scoped,
        // which would block the legitimate user too. A rational admin
        // blocks nothing (policy unenforceable) — model the attempt:
        blocked = false;
      }
    }
    if (a.pid == 201) {
      legit_passed = !blocked;
      collateral_damage = blocked;
    }
    if (a.pid == 202) {
      violation_blocked = blocked;
    }
  }
  ScenarioOutcome out;
  out.success = legit_passed && violation_blocked && !collateral_damage;
  if (out.success) {
    out.detail = "rogue uid-1002 sender blocked on 5432; postgres (uid 1001) "
                 "unaffected";
  } else if (!violation_blocked) {
    out.detail = "violation reached the wire: enforcement point missing or "
                 "cannot match on uid/comm";
  } else {
    out.detail = "policy enforced only with collateral damage";
  }
  return out;
}

ScenarioOutcome RunProcessSchedulingScenario(Architecture arch) {
  const Capabilities caps = CapabilitiesOf(arch);
  ScenarioOutcome out;
  // Blocking I/O needs an interposition point that (a) observes packet
  // arrival and (b) can signal the kernel scheduler to wake the thread.
  out.success = caps.can_block_io;
  out.detail = out.success
                   ? "packet arrival wakes the blocked thread (notification "
                     "-> kernel -> scheduler); idle apps burn no cycles"
                   : "no wake path: applications must poll, burning a full "
                     "core regardless of traffic";
  return out;
}

ScenarioOutcome RunQosScenario(Architecture arch) {
  const Capabilities caps = CapabilitiesOf(arch);
  ScenarioOutcome out;
  if (!caps.global_view) {
    out.detail = "no vantage point sees all competing senders: "
                 "work-conserving fair shares are impossible";
    return out;
  }
  if (!caps.process_view) {
    out.detail = "competing traffic visible, but the game uses ephemeral "
                 "ports each session: without user/process attribution the "
                 "shaper cannot pick out the flows to deprioritize";
    return out;
  }
  // Architecture has both views: demonstrate with the real WFQ discipline,
  // classifying by owner uid (8:1 productive:game shares).
  dataplane::WfqQdisc wfq(dataplane::ClassifyByUid({{1001, 1}, {1002, 2}}));
  wfq.SetWeight(1, 8.0);
  wfq.SetWeight(2, 1.0);
  overlay::PacketContext productive, game;
  productive.conn = overlay::ConnMetadata{1, 1001, 301, 1, 0};
  game.conn = overlay::ConnMetadata{2, 1002, 302, 1, 0};
  for (int i = 0; i < 500; ++i) {
    wfq.Enqueue(net::MakePacket(1000),
                productive);
    wfq.Enqueue(net::MakePacket(1000),
                game);
  }
  for (int i = 0; i < 500; ++i) {
    (void)wfq.Dequeue(0);
  }
  const double ratio =
      static_cast<double>(wfq.dequeued_bytes(1)) /
      static_cast<double>(std::max<uint64_t>(1, wfq.dequeued_bytes(2)));
  out.success = ratio > 6.0 && ratio < 10.0;
  out.detail = "WFQ by owner uid achieved " + std::to_string(ratio) +
               ":1 (configured 8:1)";
  return out;
}

}  // namespace norman::baseline
