// Per-architecture datapath performance model (experiment E1).
//
// All four measured architectures are simulated over the same resources —
// application core, optional interposition core, DMA engine, NIC pipeline,
// wire — with per-operation costs from the shared sim::CostModel. Only the
// *sequence of operations per packet* differs:
//
//   kernel-stack : app core [syscall + user->kernel copy + stack + filters]
//                  -> DMA -> wire                      (2 transfers/packet)
//   bypass       : app core [descriptor write] -> MMIO -> DMA -> wire
//                                                        (1 transfer/packet)
//   sidecar-core : app core [descriptor] -> cross-core handoff ->
//                  sidecar core [software filters] -> DMA -> wire
//                                                        (2 transfers/packet)
//   KOPI         : app core [descriptor] -> MMIO -> DMA ->
//                  NIC pipeline [overlay filters] -> wire
//                                                        (1 transfer/packet)
//
// The model runs an open-loop arrival process and reports sustained
// throughput, latency percentiles, per-core utilization, and the data-
// movement count — the quantities Figure 1 and §1/§3 argue about.
#ifndef NORMAN_BASELINE_PERF_MODEL_H_
#define NORMAN_BASELINE_PERF_MODEL_H_

#include <cstdint>

#include "src/baseline/architecture.h"
#include "src/common/stats.h"
#include "src/sim/cost_model.h"
#include "src/sim/resource.h"

namespace norman::baseline {

struct PerfConfig {
  uint64_t packets = 100'000;
  size_t frame_bytes = 1024;
  // 0 = closed-loop saturation (next packet as soon as the app core frees
  // AND a descriptor slot is available — see `window`).
  Nanos interarrival = 0;
  // Closed-loop in-flight cap, modeling the TX descriptor ring: packet i
  // cannot be issued before packet i-window completed. Prevents unbounded
  // queue growth at the bottleneck stage.
  uint32_t window = 256;
  // Active filter/policy rules the interposition layer evaluates.
  int filter_rules = 0;
  // Software cost per rule per packet (kernel stack / sidecar).
  Nanos software_rule_ns = 18;
  // Overlay instructions per rule per packet (KOPI hardware matcher).
  int overlay_instr_per_rule = 6;
};

struct PerfResult {
  Architecture arch{};
  uint64_t packets = 0;
  Nanos elapsed = 0;
  double throughput_pps = 0;
  double throughput_bps = 0;
  LatencyHistogram latency;
  double app_core_utilization = 0;
  double extra_core_utilization = 0;  // sidecar core (0 when none exists)
  int transfers_per_packet = 0;       // bulk data movements (copy or DMA)
};

// Runs the model for one architecture.
PerfResult RunPerfModel(Architecture arch, const sim::CostModel& cost,
                        const PerfConfig& config);

}  // namespace norman::baseline

#endif  // NORMAN_BASELINE_PERF_MODEL_H_
