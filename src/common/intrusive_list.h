// Intrusive doubly-linked list.
//
// Queueing disciplines and flow tables hold packets and flow state on hot
// paths; an intrusive list avoids per-node allocation and gives O(1) unlink
// from the middle (needed e.g. when a filter drops a queued packet).
//
// Usage:
//   struct Flow { IntrusiveListNode node; ... };
//   IntrusiveList<Flow, &Flow::node> active;
#ifndef NORMAN_COMMON_INTRUSIVE_LIST_H_
#define NORMAN_COMMON_INTRUSIVE_LIST_H_

#include <cassert>
#include <cstddef>
#include <iterator>

namespace norman {

struct IntrusiveListNode {
  IntrusiveListNode* prev = nullptr;
  IntrusiveListNode* next = nullptr;

  bool linked() const { return prev != nullptr; }

  // Unlink from whatever list contains this node; no-op if unlinked.
  void Unlink() {
    if (!linked()) {
      return;
    }
    prev->next = next;
    next->prev = prev;
    prev = next = nullptr;
  }
};

template <typename T, IntrusiveListNode T::* NodeMember>
class IntrusiveList {
 public:
  IntrusiveList() {
    sentinel_.prev = &sentinel_;
    sentinel_.next = &sentinel_;
  }

  // The list never owns its elements; destroying it leaves nodes linked to a
  // dead sentinel, so require emptiness (callers must drain first).
  ~IntrusiveList() { assert(empty()); }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return sentinel_.next == &sentinel_; }

  size_t size() const {
    size_t n = 0;
    for (const IntrusiveListNode* p = sentinel_.next; p != &sentinel_;
         p = p->next) {
      ++n;
    }
    return n;
  }

  void PushBack(T* item) { InsertBefore(&sentinel_, item); }
  void PushFront(T* item) { InsertBefore(sentinel_.next, item); }

  T* Front() { return empty() ? nullptr : FromNode(sentinel_.next); }
  T* Back() { return empty() ? nullptr : FromNode(sentinel_.prev); }

  T* PopFront() {
    T* item = Front();
    if (item != nullptr) {
      (item->*NodeMember).Unlink();
    }
    return item;
  }

  T* PopBack() {
    T* item = Back();
    if (item != nullptr) {
      (item->*NodeMember).Unlink();
    }
    return item;
  }

  static void Remove(T* item) { (item->*NodeMember).Unlink(); }

  static bool IsLinked(const T* item) { return (item->*NodeMember).linked(); }

  void Clear() {
    while (!empty()) {
      PopFront();
    }
  }

  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T*;
    using reference = T&;

    explicit Iterator(IntrusiveListNode* node) : node_(node) {}

    T& operator*() const { return *FromNode(node_); }
    T* operator->() const { return FromNode(node_); }

    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    Iterator operator++(int) {
      Iterator old = *this;
      node_ = node_->next;
      return old;
    }

    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.node_ == b.node_;
    }

   private:
    IntrusiveListNode* node_;
  };

  Iterator begin() { return Iterator(sentinel_.next); }
  Iterator end() { return Iterator(&sentinel_); }

 private:
  static T* FromNode(IntrusiveListNode* node) {
    // Recover the owner from the member pointer without UB-prone offsetof on
    // non-standard-layout types: use the member pointer on a null-ish basis.
    // This is the classic containerof; T is required to be standard layout
    // for strict correctness of the arithmetic below.
    const auto offset = reinterpret_cast<size_t>(
        &(static_cast<T*>(nullptr)->*NodeMember));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(node) - offset);
  }

  void InsertBefore(IntrusiveListNode* pos, T* item) {
    IntrusiveListNode* node = &(item->*NodeMember);
    assert(!node->linked());
    node->prev = pos->prev;
    node->next = pos;
    pos->prev->next = node;
    pos->prev = node;
  }

  IntrusiveListNode sentinel_;
};

}  // namespace norman

#endif  // NORMAN_COMMON_INTRUSIVE_LIST_H_
