// Lightweight Status / StatusOr error-handling types used across Norman.
//
// We deliberately avoid exceptions on the datapath; every fallible operation
// returns Status or StatusOr<T>. The design follows absl::Status in spirit
// but is self-contained.
#ifndef NORMAN_COMMON_STATUS_H_
#define NORMAN_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace norman {

// Canonical error space, a subset of the absl/gRPC canonical codes that is
// sufficient for an OS/NIC control plane.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
};

// Human-readable name for a StatusCode ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

// Value-semantic error descriptor: a code plus an optional message.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders e.g. "PERMISSION_DENIED: filter table is kernel-only".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors mirroring absl::*Error.
Status OkStatus();
Status InvalidArgumentError(std::string_view msg);
Status NotFoundError(std::string_view msg);
Status AlreadyExistsError(std::string_view msg);
Status PermissionDeniedError(std::string_view msg);
Status ResourceExhaustedError(std::string_view msg);
Status FailedPreconditionError(std::string_view msg);
Status OutOfRangeError(std::string_view msg);
Status UnimplementedError(std::string_view msg);
Status InternalError(std::string_view msg);
Status UnavailableError(std::string_view msg);

// Either a T or a non-OK Status. Accessing value() on an error aborts in
// debug builds; callers must check ok() first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(const T& value) : rep_(value) {}             // NOLINT(runtime/explicit)
  StatusOr(T&& value) : rep_(std::move(value)) {}       // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {   // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() && "StatusOr must not hold OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk{};
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

// Propagate-on-error helpers, used as:
//   NORMAN_RETURN_IF_ERROR(DoThing());
//   NORMAN_ASSIGN_OR_RETURN(auto v, ComputeThing());
#define NORMAN_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::norman::Status norman_status_ = (expr);   \
    if (!norman_status_.ok()) {                 \
      return norman_status_;                    \
    }                                           \
  } while (false)

#define NORMAN_STATUS_CONCAT_INNER_(x, y) x##y
#define NORMAN_STATUS_CONCAT_(x, y) NORMAN_STATUS_CONCAT_INNER_(x, y)

#define NORMAN_ASSIGN_OR_RETURN(lhs, expr)                                  \
  auto NORMAN_STATUS_CONCAT_(norman_sor_, __LINE__) = (expr);               \
  if (!NORMAN_STATUS_CONCAT_(norman_sor_, __LINE__).ok()) {                 \
    return NORMAN_STATUS_CONCAT_(norman_sor_, __LINE__).status();           \
  }                                                                         \
  lhs = std::move(NORMAN_STATUS_CONCAT_(norman_sor_, __LINE__)).value()

}  // namespace norman

#endif  // NORMAN_COMMON_STATUS_H_
