#include "src/common/profiler.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace norman::telemetry {

namespace {

const char* KindName(Profiler::CoreKind kind) {
  return kind == Profiler::CoreKind::kNic ? "nic" : "host";
}

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

}  // namespace

Profiler::Profiler() {
  Node root;
  root.name = "";
  root.parent = 0;
  nodes_.push_back(std::move(root));
  owners_.push_back(Owner{});  // slot 0: pid 0 / unowned
}

uint32_t Profiler::RegisterCore(std::string name, CoreKind kind,
                                std::function<Nanos()> busy) {
  assert(cores_.size() < kMaxCores && "raise Profiler::kMaxCores");
  if (cores_.size() >= kMaxCores) {
    return kMaxCores - 1;  // release builds: fold into the last core
  }
  cores_.push_back(Core{std::move(name), kind, std::move(busy)});
  return static_cast<uint32_t>(cores_.size() - 1);
}

uint32_t Profiler::RegisterOwner(uint32_t pid) {
  // Same slot-assignment path the hot side uses, so numbering is identical
  // whether an owner is first seen by the control plane or by a charge.
  return OwnerSlot(pid);
}

uint32_t Profiler::OwnerSlotSlow(uint32_t pid) {
  uint32_t slot = 0;
  bool found = false;
  for (uint32_t i = 0; i < owners_.size(); ++i) {
    if (owners_[i].pid == pid) {
      slot = i;
      found = true;
      break;
    }
  }
  if (!found) {
    if (owners_.size() >= kMaxOwners - 1) {
      // Cap reached: fold into the explicit overflow bucket (created on
      // first use) instead of silently dropping attribution.
      if (owners_.size() == kMaxOwners - 1) {
        Owner overflow;
        overflow.pid = kOverflowPid;
        owners_.push_back(overflow);
      }
      slot = kOverflowSlot;
    } else {
      Owner owner;
      owner.pid = pid;
      owners_.push_back(owner);
      slot = static_cast<uint32_t>(owners_.size() - 1);
    }
  }
  memo_pid_ = pid;
  memo_slot_ = slot;
  return slot;
}

uint32_t Profiler::ResolveSlow(ProfSite& site) {
  const uint32_t parent = top_;
  uint32_t node = 0;
  bool found = false;
  for (const uint32_t child : nodes_[parent].children) {
    if (nodes_[child].name == site.name) {
      node = child;
      found = true;
      break;
    }
  }
  if (!found) {
    Node fresh;
    fresh.name = std::string(site.name);
    fresh.parent = parent;
    node = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(std::move(fresh));
    nodes_[parent].children.push_back(node);
  }
  site.parent_plus1 = parent + 1;
  site.node = node;
  return node;
}

void Profiler::AllocCells(uint32_t node) {
  nodes_[node].cells =
      std::make_unique<uint64_t[]>(size_t{kMaxCores} * kMaxOwners);
}

std::string Profiler::PathOf(uint32_t node) const {
  if (node == 0) {
    return "";
  }
  std::string path = PathOf(nodes_[node].parent);
  if (!path.empty()) {
    path += ';';
  }
  path += nodes_[node].name;
  return path;
}

std::vector<Profiler::CoreReport> Profiler::CoreReports() const {
  std::vector<CoreReport> reports;
  reports.reserve(cores_.size());
  for (uint32_t c = 0; c < cores_.size(); ++c) {
    CoreReport r;
    r.name = cores_[c].name;
    r.kind = cores_[c].kind;
    r.busy_ns = static_cast<uint64_t>(std::max<Nanos>(0, cores_[c].busy()));
    for (const Node& node : nodes_) {
      if (node.cells == nullptr) {
        continue;
      }
      const uint64_t* row = node.cells.get() + size_t{c} * kMaxOwners;
      for (uint32_t o = 0; o < kMaxOwners; ++o) {
        r.attributed_ns += row[o];
      }
    }
    r.unaccounted_ns =
        r.busy_ns > r.attributed_ns ? r.busy_ns - r.attributed_ns : 0;
    reports.push_back(std::move(r));
  }
  std::sort(reports.begin(), reports.end(),
            [](const CoreReport& a, const CoreReport& b) {
              return a.name < b.name;
            });
  return reports;
}

std::vector<Profiler::OwnerReport> Profiler::OwnerReports() const {
  std::vector<OwnerReport> reports;
  reports.reserve(owners_.size());
  for (uint32_t o = 0; o < owners_.size(); ++o) {
    OwnerReport r;
    r.pid = owners_[o].pid;
    r.pkts = owners_[o].pkts;
    r.bytes = owners_[o].bytes;
    r.drops = owners_[o].drops;
    r.sram_bytes = owners_[o].sram_bytes;
    for (const Node& node : nodes_) {
      if (node.cells == nullptr) {
        continue;
      }
      for (uint32_t c = 0; c < cores_.size(); ++c) {
        const uint64_t ns = node.cells[size_t{c} * kMaxOwners + o];
        if (cores_[c].kind == CoreKind::kNic) {
          r.nic_ns += ns;
        } else {
          r.host_ns += ns;
        }
      }
    }
    reports.push_back(r);
  }
  std::sort(reports.begin(), reports.end(),
            [](const OwnerReport& a, const OwnerReport& b) {
              return a.pid < b.pid;
            });
  return reports;
}

std::vector<Profiler::StackReport> Profiler::StackReports() const {
  std::vector<StackReport> reports;
  for (uint32_t n = 1; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    const std::string path = PathOf(n);
    if (node.entries > 0) {
      StackReport r;
      r.stack = path;
      r.entries = node.entries;
      reports.push_back(std::move(r));
    }
    if (node.cells == nullptr) {
      continue;
    }
    for (uint32_t c = 0; c < cores_.size(); ++c) {
      uint64_t ns = 0;
      const uint64_t* row = node.cells.get() + size_t{c} * kMaxOwners;
      for (uint32_t o = 0; o < kMaxOwners; ++o) {
        ns += row[o];
      }
      if (ns == 0) {
        continue;
      }
      StackReport r;
      r.stack = path;
      r.core = cores_[c].name;
      r.ns = ns;
      reports.push_back(std::move(r));
    }
  }
  std::sort(reports.begin(), reports.end(),
            [](const StackReport& a, const StackReport& b) {
              if (a.stack != b.stack) {
                return a.stack < b.stack;
              }
              return a.core < b.core;
            });
  return reports;
}

std::string Profiler::FoldedStacks() const {
  // One "core;frame;...;frame <ns>" line per nonzero (path, core); a
  // trailing "[unaccounted]" frame per core keeps the flamegraph tiling to
  // exactly busy_ns. Lexicographically sorted -> byte-stable.
  std::vector<std::string> lines;
  for (const StackReport& r : StackReports()) {
    if (r.ns == 0) {
      continue;  // entries-only rows are for the JSON view
    }
    std::string line = r.core;
    line += ';';
    line += r.stack;
    Appendf(&line, " %" PRIu64, r.ns);
    lines.push_back(std::move(line));
  }
  for (const CoreReport& r : CoreReports()) {
    if (r.unaccounted_ns == 0) {
      continue;
    }
    std::string line = r.name;
    Appendf(&line, ";[unaccounted] %" PRIu64, r.unaccounted_ns);
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string Profiler::JsonReport() const {
  std::string out = "{\"cores\":[";
  bool first = true;
  for (const CoreReport& r : CoreReports()) {
    if (!first) {
      out += ',';
    }
    first = false;
    Appendf(&out,
            "{\"name\":\"%s\",\"kind\":\"%s\",\"busy_ns\":%" PRIu64
            ",\"attributed_ns\":%" PRIu64 ",\"unaccounted_ns\":%" PRIu64 "}",
            r.name.c_str(), KindName(r.kind), r.busy_ns, r.attributed_ns,
            r.unaccounted_ns);
  }
  out += "],\"owners\":[";
  first = true;
  for (const OwnerReport& r : OwnerReports()) {
    if (!first) {
      out += ',';
    }
    first = false;
    Appendf(&out,
            "{\"pid\":%u,\"nic_ns\":%" PRIu64 ",\"host_ns\":%" PRIu64
            ",\"pkts\":%" PRIu64 ",\"bytes\":%" PRIu64 ",\"drops\":%" PRIu64
            ",\"sram_bytes\":%lld}",
            r.pid, r.nic_ns, r.host_ns, r.pkts, r.bytes, r.drops,
            static_cast<long long>(r.sram_bytes));
  }
  out += "],\"stacks\":[";
  first = true;
  for (const StackReport& r : StackReports()) {
    if (!first) {
      out += ',';
    }
    first = false;
    Appendf(&out,
            "{\"stack\":\"%s\",\"core\":\"%s\",\"ns\":%" PRIu64
            ",\"entries\":%" PRIu64 "}",
            r.stack.c_str(), r.core.c_str(), r.ns, r.entries);
  }
  out += "]}";
  return out;
}

void Profiler::PublishToRegistry(MetricsRegistry* registry) const {
  uint64_t total_unaccounted = 0;
  for (const CoreReport& r : CoreReports()) {
    const std::string prefix = "prof.core." + r.name;
    registry->GetGauge(prefix + ".busy_ns")
        ->Set(static_cast<int64_t>(r.busy_ns));
    registry->GetGauge(prefix + ".attributed_ns")
        ->Set(static_cast<int64_t>(r.attributed_ns));
    registry->GetGauge(prefix + ".unaccounted_ns")
        ->Set(static_cast<int64_t>(r.unaccounted_ns));
    total_unaccounted += r.unaccounted_ns;
  }
  registry->GetGauge("attr.unaccounted")
      ->Set(static_cast<int64_t>(total_unaccounted));
  for (const OwnerReport& r : OwnerReports()) {
    std::string prefix;
    if (r.pid == 0) {
      prefix = "attr.unowned";
    } else if (r.pid == kOverflowPid) {
      prefix = "attr.overflow";
    } else {
      prefix = "attr.pid." + std::to_string(r.pid);
    }
    registry->GetGauge(prefix + ".nic_ns")->Set(static_cast<int64_t>(r.nic_ns));
    registry->GetGauge(prefix + ".host_ns")
        ->Set(static_cast<int64_t>(r.host_ns));
    registry->GetGauge(prefix + ".pkts")->Set(static_cast<int64_t>(r.pkts));
    registry->GetGauge(prefix + ".bytes")->Set(static_cast<int64_t>(r.bytes));
    registry->GetGauge(prefix + ".drops")->Set(static_cast<int64_t>(r.drops));
    registry->GetGauge(prefix + ".sram_bytes")->Set(r.sram_bytes);
  }
}

void Profiler::Reset() {
  for (Node& node : nodes_) {
    node.entries = 0;
    if (node.cells != nullptr) {
      std::fill_n(node.cells.get(), size_t{kMaxCores} * kMaxOwners, 0);
    }
  }
  for (Owner& owner : owners_) {
    owner.pkts = 0;
    owner.bytes = 0;
    owner.drops = 0;
    owner.sram_bytes = 0;
  }
}

}  // namespace norman::telemetry
