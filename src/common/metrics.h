// Metrics registry: named Counter/Gauge/LatencyHistogram handles under
// hierarchical dotted names ("nic.rx.frames", "dataplane.filter.drops",
// "pool.packet.hits").
//
// Registration is a map lookup; the hot path is not. Callers look a metric
// up once (typically in a constructor) and keep the returned pointer —
// incrementing is then a plain member access, so registry-backed counters
// cost the same as the bare struct fields they replace. Handle addresses
// are stable for the registry's lifetime (nodes are heap-allocated and
// never rehashed away).
//
// Export is deterministic: names are kept sorted, so TextReport(),
// JsonReport() and MetricNames() are byte-stable across runs — which is
// what lets CI diff the metric inventory against a checked-in manifest.
#ifndef NORMAN_COMMON_METRICS_H_
#define NORMAN_COMMON_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/stats.h"

// Compile-time stats tier (TAS-style). Level 1 (default) keeps the full
// always-on registry. Level 0 compiles *hot-path* volume counters and
// per-frame queue-depth updates to no-ops: registration still happens (so
// the metric inventory/manifest keeps its shape) but the per-packet
// increments vanish from the generated code. Accounting that feeds
// decisions or attribution — drop ledgers, flow-cache hit/miss, filter
// rule hits, pool recycling — is deliberately NOT tiered and stays exact
// at every level. Set via -DNORMAN_STATS_LEVEL=0 (see CMakeLists.txt).
#ifndef NORMAN_STATS_LEVEL
#define NORMAN_STATS_LEVEL 1
#endif

namespace norman::telemetry {

inline constexpr int kStatsLevel = NORMAN_STATS_LEVEL;
inline constexpr bool kHotStatsEnabled = kStatsLevel >= 1;

// Monotonic event count. Hot-path increment is one add through a pointer.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  uint64_t value_ = 0;
};

// Instantaneous level (queue depth, outstanding buffers, high-water mark).
class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  int64_t value_ = 0;
};

// Hot-tier increment: a plain add at stats level >= 1, a no-op at level 0.
// Use for per-packet/per-event volume counters on the fast path; use
// Counter::Increment directly for accounting that must stay exact at every
// level (drops, cache hits, rule matches).
// The expected reading of a hot-tier counter: `v` when the tier is compiled
// in, 0 when it compiled out. Lets tests (and tooling that cross-checks
// counters against ground truth) state one assertion that holds at both
// stats levels.
constexpr uint64_t HotCount(uint64_t v) { return kHotStatsEnabled ? v : 0; }

inline void HotIncrement(Counter* c, uint64_t n = 1) {
  if (kHotStatsEnabled) {
    c->Increment(n);
  }
}

class MetricsRegistry;

// Burst-local accumulator for one registry counter: increments land in a
// plain stack local and are flushed to the shared counter once per burst
// (TAS poll/empty/total style), so the per-element path touches no shared
// state. Flushes on destruction, so early returns can't lose counts. At
// stats level 0 both Add and Flush compile to nothing.
//
// The registry-tracked constructor additionally registers the live
// accumulator with the registry: every report path (TextReport, JsonReport,
// Snapshot) and Simulator teardown folds pending counts in first, so a
// report taken while a burst is mid-flight — or after an odd-sized final
// burst — can never under-count.
class BatchedCounter {
 public:
  explicit BatchedCounter(Counter* counter) : counter_(counter) {}
  BatchedCounter(Counter* counter, MetricsRegistry* registry);
  BatchedCounter(const BatchedCounter&) = delete;
  BatchedCounter& operator=(const BatchedCounter&) = delete;
  ~BatchedCounter();

  void Add(uint64_t n = 1) {
    if (kHotStatsEnabled) {
      pending_ += n;
    }
  }
  void Flush() {
    if (kHotStatsEnabled && pending_ != 0) {
      counter_->Increment(pending_);
      pending_ = 0;
    }
  }
  uint64_t pending() const { return pending_; }

 private:
  Counter* counter_;
  MetricsRegistry* registry_ = nullptr;
  uint64_t pending_ = 0;
};

// Point-in-time capture of all scalar metrics (counters + gauges), used for
// before/after deltas around a traffic run. Histograms are not captured;
// they export through TextReport()/JsonReport().
struct MetricsSnapshot {
  std::map<std::string, int64_t> values;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create. The returned pointer stays valid for the registry's
  // lifetime; re-requesting a name returns the same handle.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name);

  // Lookup without creation; nullptr when absent.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const LatencyHistogram* FindHistogram(std::string_view name) const;

  // Visit every metric in sorted-name order: fn(const std::string&, const T&).
  // This is what the TimeSeriesSampler scrapes through.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    for (const auto& [name, c] : counters_) fn(name, *c);
  }
  template <typename Fn>
  void ForEachGauge(Fn&& fn) const {
    for (const auto& [name, g] : gauges_) fn(name, *g);
  }
  template <typename Fn>
  void ForEachHistogram(Fn&& fn) const {
    for (const auto& [name, h] : histograms_) fn(name, *h);
  }

  MetricsSnapshot Snapshot() const;
  // after - before, keyed on `after`'s names (a metric registered between
  // the two snapshots deltas against zero). Entries with zero delta are
  // kept so reports stay shape-stable.
  static MetricsSnapshot Delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

  // Human text: one "name value" line per metric, sorted; histograms render
  // their Summary(). Zero-valued metrics included (shape-stable output).
  std::string TextReport() const;
  // Machine JSON: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string JsonReport() const;

  // Sorted inventory, one "counter|gauge|histogram <name>" entry each —
  // the thing CI diffs against docs/metrics_manifest.txt.
  std::vector<std::string> MetricNames() const;

  // Mirror a pool's counters into "pool.<pc.name>.*" gauges (gauges, not
  // counters: pools track levels like outstanding/high_water, and repeated
  // imports must overwrite, not accumulate).
  void ImportPool(const PoolCounters& pc);

  // Zero every counter/gauge and reset every histogram; registrations (and
  // handle addresses) survive.
  void ResetAll();

  size_t num_metrics() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Live burst-local accumulators (see BatchedCounter's tracked ctor).
  void TrackBatched(BatchedCounter* b) { batched_.push_back(b); }
  void UntrackBatched(BatchedCounter* b) {
    batched_.erase(std::remove(batched_.begin(), batched_.end(), b),
                   batched_.end());
  }
  // Fold every live accumulator's pending count into its backing counter.
  // Const because report paths call it: only the pointed-to accumulators
  // and counters mutate, never the registry's own structure.
  void FlushPending() const {
    for (BatchedCounter* b : batched_) {
      b->Flush();
    }
  }
  size_t num_tracked_batched() const { return batched_.size(); }

 private:
  // Sorted maps: deterministic export order, heterogeneous string_view
  // lookup, stable unique_ptr targets.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
  std::vector<BatchedCounter*> batched_;
};

inline BatchedCounter::BatchedCounter(Counter* counter,
                                      MetricsRegistry* registry)
    : counter_(counter), registry_(registry) {
  if (registry_ != nullptr) {
    registry_->TrackBatched(this);
  }
}

inline BatchedCounter::~BatchedCounter() {
  if (registry_ != nullptr) {
    registry_->UntrackBatched(this);
  }
  Flush();
}

// Paired depth + high-watermark gauges for one bounded queue, registered as
// "queue.<name>.depth" and "queue.<name>.high_water". Queue owners attach one
// of these and report occupancy changes; the high-water mark latches the peak
// and survives drains, so a one-sample spike is still visible at export time.
class QueueDepthGauges {
 public:
  QueueDepthGauges(MetricsRegistry* registry, std::string_view queue_name)
      : depth_(registry->GetGauge("queue." + std::string(queue_name) +
                                 ".depth")),
        high_water_(registry->GetGauge("queue." + std::string(queue_name) +
                                       ".high_water")) {}

  void Set(int64_t depth) {
    depth_->Set(depth);
    if (depth > high_water_->value()) high_water_->Set(depth);
  }
  void Add(int64_t delta) { Set(depth_->value() + delta); }

  int64_t depth() const { return depth_->value(); }
  int64_t high_water() const { return high_water_->value(); }

 private:
  Gauge* depth_;
  Gauge* high_water_;
};

// Hot-tier queue-depth updates: per-frame occupancy tracking is volume
// telemetry, so it compiles out at stats level 0 (the gauges then read 0).
// QueueDepthGauges itself stays ungated — cold-path owners (accept queues,
// admission control) call Set/Add directly and remain exact.
inline void HotAdd(QueueDepthGauges* g, int64_t delta) {
  if (kHotStatsEnabled) {
    g->Add(delta);
  }
}
inline void HotSet(QueueDepthGauges* g, int64_t depth) {
  if (kHotStatsEnabled) {
    g->Set(depth);
  }
}

}  // namespace norman::telemetry

#endif  // NORMAN_COMMON_METRICS_H_
