// Deterministic pseudo-random number generation.
//
// Every stochastic component in Norman (workload generators, RSS hash seeds,
// simulated jitter) draws from an explicitly seeded Xoshiro256** instance so
// that every experiment is exactly reproducible. We do not use <random>'s
// engines because their streams are not portable across standard libraries.
#ifndef NORMAN_COMMON_RNG_H_
#define NORMAN_COMMON_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>

namespace norman {

// SplitMix64: used to expand a single 64-bit seed into generator state.
// Reference: Vigna, https://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256**: the project-wide PRNG. Fast, 256-bit state, passes BigCrush.
// Reference: Blackman & Vigna, https://prng.di.unimi.it/xoshiro256starstar.c
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.Next();
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = NextU64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBounded(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Exponentially distributed value with the given mean (Poisson interarrival).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<uint64_t, 4> state_;
};

}  // namespace norman

#endif  // NORMAN_COMMON_RNG_H_
