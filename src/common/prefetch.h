// Cache prefetch hints for batched drains.
//
// Burst loops touch the *next* element's descriptor and payload while
// processing the current one, so the line is warm by the time the loop gets
// there (DPDK/TAS idiom). Hints are advisory: on compilers without
// __builtin_prefetch they compile to nothing, and correctness never depends
// on them.
#ifndef NORMAN_COMMON_PREFETCH_H_
#define NORMAN_COMMON_PREFETCH_H_

namespace norman {

inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

inline void PrefetchWrite(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace norman

#endif  // NORMAN_COMMON_PREFETCH_H_
