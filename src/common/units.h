// Strong-ish unit helpers for time, sizes and rates used across the
// simulator. Virtual time is a plain int64 nanosecond count (Nanos); keeping
// it integral makes event ordering exact and hashable.
#ifndef NORMAN_COMMON_UNITS_H_
#define NORMAN_COMMON_UNITS_H_

#include <cstdint>

namespace norman {

// Virtual simulation time in nanoseconds since simulation start.
using Nanos = int64_t;

constexpr Nanos kNanosecond = 1;
constexpr Nanos kMicrosecond = 1000;
constexpr Nanos kMillisecond = 1000 * kMicrosecond;
constexpr Nanos kSecond = 1000 * kMillisecond;

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * kKiB;
constexpr uint64_t kGiB = 1024 * kMiB;

// Link and processing rates in bits per second.
using BitsPerSecond = uint64_t;

constexpr BitsPerSecond kGbps = 1'000'000'000ULL;

// Time to serialize `bytes` at `rate` (rounded up to a whole nanosecond so a
// non-zero payload always costs non-zero time).
constexpr Nanos TransmissionDelay(uint64_t bytes, BitsPerSecond rate) {
  if (rate == 0) {
    return 0;
  }
  const uint64_t bits = bytes * 8;
  return static_cast<Nanos>((bits * 1'000'000'000ULL + rate - 1) / rate);
}

// Achieved rate in bits/s given bytes moved over an interval.
constexpr double AchievedBps(uint64_t bytes, Nanos interval) {
  if (interval <= 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) * 8.0 * 1e9 /
         static_cast<double>(interval);
}

}  // namespace norman

#endif  // NORMAN_COMMON_UNITS_H_
