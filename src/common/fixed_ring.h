// Fixed-capacity power-of-two ring (SPSC-style index discipline).
//
// This is the generic index machinery shared by NIC descriptor rings and
// notification queues: head/tail are free-running uint32 counters and the
// ring is full when head - tail == capacity. The same discipline is exposed
// to applications through MMIO in the NIC model, so keeping it here lets
// tests exercise the wrap/overflow arithmetic in isolation.
#ifndef NORMAN_COMMON_FIXED_RING_H_
#define NORMAN_COMMON_FIXED_RING_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace norman {

template <typename T>
class FixedRing {
 public:
  // Capacity must be a power of two (mask-based wrap).
  explicit FixedRing(uint32_t capacity)
      : capacity_(capacity), mask_(capacity - 1), slots_(capacity) {
    assert(capacity != 0 && (capacity & (capacity - 1)) == 0 &&
           "capacity must be a power of two");
  }

  uint32_t capacity() const { return capacity_; }
  uint32_t size() const { return head_ - tail_; }
  bool empty() const { return head_ == tail_; }
  bool full() const { return size() == capacity_; }

  // Free-running producer/consumer counters (wrap naturally at 2^32).
  uint32_t head() const { return head_; }
  uint32_t tail() const { return tail_; }

  bool TryPush(T value) {
    if (full()) {
      return false;
    }
    slots_[head_ & mask_] = std::move(value);
    ++head_;
    return true;
  }

  std::optional<T> TryPop() {
    if (empty()) {
      return std::nullopt;
    }
    T value = std::move(slots_[tail_ & mask_]);
    ++tail_;
    return value;
  }

  // Bulk producer: move as many elements of `src` in as fit (in order).
  // Returns the number pushed — src.size() when there was room, the free
  // count on a partial batch, 0 when full. Elements actually pushed are
  // left moved-from in `src`; the rest are untouched, so callers can retry
  // the tail of a partial batch later.
  uint32_t PushN(std::span<T> src) {
    const uint32_t n = std::min(static_cast<uint32_t>(std::min<size_t>(
                                    src.size(), ~uint32_t{0})),
                                capacity_ - size());
    for (uint32_t i = 0; i < n; ++i) {
      slots_[(head_ + i) & mask_] = std::move(src[i]);
    }
    head_ += n;
    return n;
  }

  // Bulk consumer: move up to dst.size() oldest elements out (FIFO order).
  // Returns the number popped — min(dst.size(), size()). dst elements past
  // the returned count are untouched.
  uint32_t PopN(std::span<T> dst) {
    const uint32_t n = std::min(
        static_cast<uint32_t>(std::min<size_t>(dst.size(), ~uint32_t{0})),
        size());
    for (uint32_t i = 0; i < n; ++i) {
      dst[i] = std::move(slots_[(tail_ + i) & mask_]);
    }
    tail_ += n;
    return n;
  }

  // Peek at the oldest element without consuming it.
  const T* Peek() const { return empty() ? nullptr : &slots_[tail_ & mask_]; }
  T* Peek() { return empty() ? nullptr : &slots_[tail_ & mask_]; }

  // Peek at the i-th oldest element (0 == oldest) without consuming it;
  // nullptr when fewer than i+1 elements are queued. Batched drains use
  // this to issue prefetch hints for upcoming elements.
  const T* PeekAt(uint32_t i) const {
    return i < size() ? &slots_[(tail_ + i) & mask_] : nullptr;
  }
  T* PeekAt(uint32_t i) {
    return i < size() ? &slots_[(tail_ + i) & mask_] : nullptr;
  }

  void Clear() { tail_ = head_; }

 private:
  uint32_t capacity_;
  uint32_t mask_;
  std::vector<T> slots_;
  uint32_t head_ = 0;
  uint32_t tail_ = 0;
};

}  // namespace norman

#endif  // NORMAN_COMMON_FIXED_RING_H_
