// Fixed-capacity power-of-two ring (SPSC-style index discipline).
//
// This is the generic index machinery shared by NIC descriptor rings and
// notification queues: head/tail are free-running uint32 counters and the
// ring is full when head - tail == capacity. The same discipline is exposed
// to applications through MMIO in the NIC model, so keeping it here lets
// tests exercise the wrap/overflow arithmetic in isolation.
#ifndef NORMAN_COMMON_FIXED_RING_H_
#define NORMAN_COMMON_FIXED_RING_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

namespace norman {

template <typename T>
class FixedRing {
 public:
  // Capacity must be a power of two (mask-based wrap).
  explicit FixedRing(uint32_t capacity)
      : capacity_(capacity), mask_(capacity - 1), slots_(capacity) {
    assert(capacity != 0 && (capacity & (capacity - 1)) == 0 &&
           "capacity must be a power of two");
  }

  uint32_t capacity() const { return capacity_; }
  uint32_t size() const { return head_ - tail_; }
  bool empty() const { return head_ == tail_; }
  bool full() const { return size() == capacity_; }

  // Free-running producer/consumer counters (wrap naturally at 2^32).
  uint32_t head() const { return head_; }
  uint32_t tail() const { return tail_; }

  bool TryPush(T value) {
    if (full()) {
      return false;
    }
    slots_[head_ & mask_] = std::move(value);
    ++head_;
    return true;
  }

  std::optional<T> TryPop() {
    if (empty()) {
      return std::nullopt;
    }
    T value = std::move(slots_[tail_ & mask_]);
    ++tail_;
    return value;
  }

  // Peek at the oldest element without consuming it.
  const T* Peek() const { return empty() ? nullptr : &slots_[tail_ & mask_]; }
  T* Peek() { return empty() ? nullptr : &slots_[tail_ & mask_]; }

  void Clear() { tail_ = head_; }

 private:
  uint32_t capacity_;
  uint32_t mask_;
  std::vector<T> slots_;
  uint32_t head_ = 0;
  uint32_t tail_ = 0;
};

}  // namespace norman

#endif  // NORMAN_COMMON_FIXED_RING_H_
