// Dataplane profiler: scoped virtual-clock cycle attribution.
//
// The paper's argument is that interposing the kernel on the dataplane gives
// the OS a *process-level* view of NIC and host resources. The drop ledger
// (PR 2) answered "who lost packets"; this answers "who spent the cycles,
// and where". Every nanosecond the cost model charges to a sim::Resource
// (nic.dma, nic.pipeline, nic.stages, nic.wire, kernel.core) is also charged
// here against three axes at once:
//
//   * component/stage — an explicit attribution-context stack of ProfScope
//     RAII guards (event dispatch, NIC TX/RX, stage execution, flow-cache
//     replay, kernel slow path, maintenance tick) forms a calling-context
//     tree; charges land on the current node.
//   * core            — which serialized resource the time occupied.
//   * owner           — the pid that owns the traffic, resolved through the
//     kernel control plane's flow→pid map (the interposition layer is the
//     only place this mapping exists; a NIC-only profiler could not name
//     the process).
//
// Exactness invariant (same discipline as the drop ledger): for every
// registered core, summed attributed ns + an explicit unaccounted bucket
// equals the resource's busy_ns — time is never silently lost. Tests pin
// `sum(attr.*) + attr.unaccounted == busy_ns` per core across batch sizes,
// stats tiers and chaos runs.
//
// Hot-path budget: the profiler-on forwarding loop must stay within 5% of
// profiler-off (bench gate), which rules out hash lookups per charge. A
// charge is a branch, a per-call-site memo check (ProfSite caches the
// resolved node for its last parent), and one indexed add into a dense
// [core][owner] cell array. When disabled — runtime flag off, or the whole
// tier compiled out at NORMAN_STATS_LEVEL=0 — every charge is a single
// predictable branch (or nothing at all).
//
// Determinism: the profiler observes, never schedules. No events, no RNG,
// no virtual-time cost. Node and owner-slot numbering follow first-touch
// order of a deterministic execution, and every export (folded flamegraph
// stacks, JSON, registry gauges) is sorted, so outputs are byte-stable and
// the pinned goldens hold with the profiler enabled.
#ifndef NORMAN_COMMON_PROFILER_H_
#define NORMAN_COMMON_PROFILER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/units.h"

namespace norman::telemetry {

class Profiler;

// Per-call-site memo. Instrumented code owns one ProfSite per static charge
// or scope point (a member, or a slot in a per-stage vector); the profiler
// caches the (parent node -> child node) resolution in it so the steady
// state never walks the tree. `name` must outlive the profiler's exports —
// string literals and pipeline-stage names (owned by live stages) qualify.
struct ProfSite {
  std::string_view name;
  uint32_t parent_plus1 = 0;  // memo key: parent node id + 1 (0 = unset)
  uint32_t node = 0;          // memoized resolution under that parent
};

class Profiler {
 public:
  enum class CoreKind : uint8_t { kNic, kHost };

  // Dense attribution-cell bounds. Cores are registered at construction
  // time (five per stack; a duplex world puts two full stacks — ten
  // cores — on one simulator, so the cap must clear that). Owners are
  // pids interned first-touch. Slot 0 is the unowned/system bucket
  // (pid 0); pids beyond the cap fold into one explicit overflow slot
  // rather than being dropped.
  // Sized for the sharded dataplane: up to 8 lanes × 3 resources per NIC
  // on top of the base cores, with headroom for duplex worlds.
  static constexpr uint32_t kMaxCores = 64;
  static constexpr uint32_t kMaxOwners = 32;
  static constexpr uint32_t kOverflowSlot = kMaxOwners - 1;
  static constexpr uint32_t kOverflowPid = UINT32_MAX;

  Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // ---- registration (cold; ungated so inventories are tier-independent) --

  // Register a serialized core whose busy time this profiler attributes.
  // `busy` is read only at export time and is the conservation ground truth.
  // Returns the dense core id used by Charge().
  uint32_t RegisterCore(std::string name, CoreKind kind,
                        std::function<Nanos()> busy);

  // Intern an owner pid into a dense slot. Called from cold control-plane
  // paths (flow install / connect) regardless of enablement so slot
  // numbering — and the exported attr.* inventory — does not depend on the
  // runtime flag or the stats tier.
  uint32_t RegisterOwner(uint32_t pid);

  // Runtime gate. Off by default: worlds that don't ask for attribution pay
  // one predicted branch per charge site and nothing else.
  void set_enabled(bool on) { enabled_ = kHotStatsEnabled && on; }
  bool enabled() const { return enabled_; }

  // ---- hot path ---------------------------------------------------------

  // pid -> dense owner slot with a single-entry memo (bursts repeat pids).
  uint32_t OwnerSlot(uint32_t pid) {
    if (pid == memo_pid_) {
      return memo_slot_;
    }
    return OwnerSlotSlow(pid);
  }

  // Charge `ns` on `core` to `site` resolved under the current context node.
  void Charge(ProfSite& site, uint32_t core, uint32_t owner_slot, Nanos ns) {
    if constexpr (!kHotStatsEnabled) {
      return;
    }
    if (!enabled_) {
      return;
    }
    CellsFor(Resolve(site))[core * kMaxOwners + owner_slot] +=
        static_cast<uint64_t>(ns);
  }

  // Charge to the current context node itself (the enclosing ProfScope
  // already resolved it — no site needed).
  void ChargeCurrent(uint32_t core, uint32_t owner_slot, Nanos ns) {
    if constexpr (!kHotStatsEnabled) {
      return;
    }
    if (!enabled_) {
      return;
    }
    CellsFor(top_)[core * kMaxOwners + owner_slot] += static_cast<uint64_t>(ns);
  }

  // Owner resource ledger (attr.<owner>.{pkts,bytes,drops,sram_bytes};
  // nic_ns/host_ns derive from the cells at export).
  void CountPacket(uint32_t owner_slot, uint64_t bytes) {
    if constexpr (!kHotStatsEnabled) {
      return;
    }
    if (!enabled_) {
      return;
    }
    owners_[owner_slot].pkts += 1;
    owners_[owner_slot].bytes += bytes;
  }
  void CountDrop(uint32_t owner_slot) {
    if constexpr (!kHotStatsEnabled) {
      return;
    }
    if (!enabled_) {
      return;
    }
    owners_[owner_slot].drops += 1;
  }
  void ChargeSram(uint32_t owner_slot, int64_t delta) {
    if constexpr (!kHotStatsEnabled) {
      return;
    }
    if (!enabled_) {
      return;
    }
    owners_[owner_slot].sram_bytes += delta;
  }

  // ---- exports (cold; all byte-stable) ----------------------------------

  struct CoreReport {
    std::string name;
    CoreKind kind;
    uint64_t busy_ns = 0;
    uint64_t attributed_ns = 0;
    uint64_t unaccounted_ns = 0;  // busy - attributed, floored at 0
  };
  struct OwnerReport {
    uint32_t pid = 0;  // kOverflowPid marks the fold-in bucket
    uint64_t nic_ns = 0;
    uint64_t host_ns = 0;
    uint64_t pkts = 0;
    uint64_t bytes = 0;
    uint64_t drops = 0;
    int64_t sram_bytes = 0;
  };
  // One row per (context path, core) with nonzero time, plus per-node scope
  // entry counts (so zero-cost scopes like the maintenance tick stay
  // visible).
  struct StackReport {
    std::string stack;  // "frame;frame;frame" root-to-leaf
    std::string core;   // empty for entries-only rows
    uint64_t ns = 0;
    uint64_t entries = 0;
  };

  std::vector<CoreReport> CoreReports() const;   // sorted by core name
  std::vector<OwnerReport> OwnerReports() const; // sorted by pid
  std::vector<StackReport> StackReports() const; // sorted by (stack, core)

  // inferno/speedscope-compatible folded stacks: one
  // "core;frame;...;frame <ns>" line per nonzero (path, core), duplicate
  // paths content-merged, lines sorted. Per-core unaccounted time appears
  // as "core;[unaccounted] <ns>" so flamegraphs tile to busy_ns exactly.
  std::string FoldedStacks() const;

  // Sorted JSON: {"cores":[...],"owners":[...],"stacks":[...]}.
  std::string JsonReport() const;

  // Publish prof.core.<name>.{busy_ns,attributed_ns,unaccounted_ns},
  // attr.unaccounted, and attr.{pid.<pid>|unowned|overflow}.* gauges.
  // Overwrites on re-publish (ImportPool semantics) — call at report time.
  void PublishToRegistry(MetricsRegistry* registry) const;

  // Zero all cells, ledgers and scope counts; registrations survive.
  void Reset();

  uint32_t num_cores() const { return static_cast<uint32_t>(cores_.size()); }
  uint32_t num_owners() const { return static_cast<uint32_t>(owners_.size()); }
  uint32_t owner_pid(uint32_t slot) const { return owners_[slot].pid; }

 private:
  friend class ProfScope;

  struct Node {
    std::string name;
    uint32_t parent = 0;  // root points at itself
    uint64_t entries = 0;
    std::vector<uint32_t> children;
    std::unique_ptr<uint64_t[]> cells;  // kMaxCores * kMaxOwners, lazy
  };
  struct Core {
    std::string name;
    CoreKind kind;
    std::function<Nanos()> busy;
  };
  struct Owner {
    uint32_t pid = 0;
    uint64_t pkts = 0;
    uint64_t bytes = 0;
    uint64_t drops = 0;
    int64_t sram_bytes = 0;
  };

  uint32_t Resolve(ProfSite& site) {
    if (site.parent_plus1 == top_ + 1) {
      return site.node;
    }
    return ResolveSlow(site);
  }
  uint32_t ResolveSlow(ProfSite& site);
  uint32_t OwnerSlotSlow(uint32_t pid);
  uint64_t* CellsFor(uint32_t node) {
    auto& cells = nodes_[node].cells;
    if (cells == nullptr) {
      AllocCells(node);
    }
    return cells.get();
  }
  void AllocCells(uint32_t node);
  std::string PathOf(uint32_t node) const;

  bool enabled_ = false;
  uint32_t top_ = 0;  // current attribution context (root = 0)
  uint32_t memo_pid_ = 0;
  uint32_t memo_slot_ = 0;
  std::vector<Node> nodes_;
  std::vector<Core> cores_;
  std::vector<Owner> owners_;
};

// RAII attribution-context guard. Opening pushes `site` (resolved under the
// current node) as the new context; destruction restores the previous one.
// Cheap enough for per-packet use: a memo check and two stores when the
// profiler is on, one branch when off, nothing at stats level 0.
class ProfScope {
 public:
  ProfScope(Profiler* prof, ProfSite& site) {
    if constexpr (!kHotStatsEnabled) {
      return;
    }
    if (prof == nullptr || !prof->enabled()) {
      return;
    }
    prof_ = prof;
    saved_ = prof->top_;
    const uint32_t node = prof->Resolve(site);
    prof->top_ = node;
    ++prof->nodes_[node].entries;
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;
  ~ProfScope() {
    if constexpr (!kHotStatsEnabled) {
      return;
    }
    if (prof_ != nullptr) {
      prof_->top_ = saved_;
    }
  }

 private:
  Profiler* prof_ = nullptr;
  uint32_t saved_ = 0;
};

}  // namespace norman::telemetry

#endif  // NORMAN_COMMON_PROFILER_H_
