// Continuous monitoring, layer 2: rule-driven health evaluation over the
// sampled time series.
//
// The watchdog watches what the TimeSeriesSampler records — it never touches
// the dataplane. Rules bind a named component ("nic.qdisc", "app.rx") and an
// owner annotation (who to page: "kernel.tc", "pid=3 (echo)") to a series:
//
//   queue-stall  — depth series has not drained for N consecutive windows
//   rate-spike   — a .rate series exceeded a threshold in the latest window
//   latency      — a .p99 series exceeded a threshold (ns)
//
// Each Evaluate() folds every rule into a per-component state
// (healthy -> degraded -> stalled, worst rule wins) and logs transitions to
// a bounded, owner-annotated alert log. Evaluation runs from the kernel's
// maintenance tick on the virtual clock, so alerts carry virtual timestamps
// and the whole state machine is deterministic.
#ifndef NORMAN_COMMON_HEALTH_H_
#define NORMAN_COMMON_HEALTH_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/timeseries.h"
#include "src/common/tracepoint.h"
#include "src/common/units.h"

namespace norman::telemetry {

enum class HealthState : uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kStalled = 2,
};

const char* HealthStateName(HealthState s);

// One logged state transition. `reason` names the rule finding that drove
// the change ("queue.nic.qdisc.depth held >=1 for 3 windows") or "recovered".
struct HealthAlert {
  Nanos t = 0;
  std::string component;
  std::string owner;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  std::string reason;
};

class HealthWatchdog {
 public:
  struct Options {
    size_t max_alerts = 256;  // alert log bound; older entries are dropped
  };

  HealthWatchdog(const TimeSeriesSampler* sampler, MetricsRegistry* registry);
  HealthWatchdog(const TimeSeriesSampler* sampler, MetricsRegistry* registry,
                 Options opts);

  HealthWatchdog(const HealthWatchdog&) = delete;
  HealthWatchdog& operator=(const HealthWatchdog&) = delete;

  // Stalled when the depth series stayed >= `min_depth` without draining
  // (no sample lower than its predecessor) for `windows` consecutive
  // samples; degraded at half that streak.
  void AddQueueStallRule(std::string_view component,
                         std::string_view depth_series, std::string_view owner,
                         int windows = 3, int64_t min_depth = 1);
  // Degraded while the latest sample of a ".rate" series exceeds
  // `per_second`.
  void AddRateSpikeRule(std::string_view component, std::string_view series,
                        std::string_view owner, double per_second);
  // Degraded while the latest sample of a ".p99" series exceeds
  // `threshold_ns`.
  void AddLatencyRule(std::string_view component, std::string_view series,
                      std::string_view owner, Nanos threshold_ns);
  // Stalled while the latest sample of a gauge-level series is positive
  // (e.g. "fault.link.down" counts links administratively down). A missing
  // or empty series reads healthy, so worlds without a fault plane are
  // unaffected.
  void AddLinkDownRule(std::string_view component, std::string_view series,
                       std::string_view owner);

  // Re-evaluates every rule against the sampler's current series and logs
  // state transitions at virtual time `now`. Call after Sample().
  void Evaluate(Nanos now);

  HealthState StateOf(std::string_view component) const;
  const std::vector<HealthAlert>& alerts() const { return alerts_; }
  uint64_t evaluations() const { return evaluations_; }
  uint64_t alerts_dropped() const { return alerts_dropped_; }
  size_t num_components() const { return components_.size(); }

  // "watchdog.transition" probe hookup; fires on every logged transition,
  // which is what the flight recorder's unhealthy trigger latches on.
  void AttachTracepoints(Tracepoints* tp) { tp_ = tp; }

  // "component state owner [reason]" lines, sorted by component, followed by
  // the alert log; byte-stable for a deterministic run.
  std::string Render() const;
  // {"components":{...},"alerts":[...]}, sorted and byte-stable.
  std::string JsonReport() const;

 private:
  enum class RuleKind : uint8_t { kQueueStall, kRateSpike, kLatency,
                                  kLinkDown };

  struct Rule {
    RuleKind kind;
    std::string component;
    std::string series;
    std::string owner;
    int windows = 3;          // queue-stall
    int64_t min_depth = 1;    // queue-stall
    double threshold = 0;     // rate-spike (per-second) / latency (ns)
  };

  struct ComponentStatus {
    HealthState state = HealthState::kHealthy;
    std::string owner;   // owner of the rule that set the current state
    std::string reason;  // finding behind the current state ("" = healthy)
  };

  // Severity this rule contributes right now, plus the human reason when
  // not healthy.
  HealthState EvaluateRule(const Rule& rule, std::string* reason) const;
  void LogTransition(Nanos now, const std::string& component,
                     const ComponentStatus& prev, const ComponentStatus& next);

  const TimeSeriesSampler* sampler_;
  Options opts_;
  std::vector<Rule> rules_;
  std::map<std::string, ComponentStatus, std::less<>> components_;
  std::vector<HealthAlert> alerts_;
  uint64_t alerts_dropped_ = 0;
  uint64_t evaluations_ = 0;

  Counter* alerts_total_;     // health.alerts
  Gauge* gauge_healthy_;      // health.components.healthy
  Gauge* gauge_degraded_;     // health.components.degraded
  Gauge* gauge_stalled_;      // health.components.stalled
  Tracepoints* tp_ = nullptr;
};

}  // namespace norman::telemetry

#endif  // NORMAN_COMMON_HEALTH_H_
