// Black-box flight recorder: trigger rules over the tracepoint stream that
// freeze the rings and export a byte-stable postmortem bundle.
//
// The tracepoint journal answers "what happened" only if it is still there
// when someone asks. The flight recorder watches every armed emit for a
// matching trigger — "a watchdog component left healthy", "the first
// corrupt-frame drop", "an SRAM allocation was refused" — and on the first
// match latches: the rings freeze (preserving the decision sequence that
// led up to the event), the firing record is pinned, and Bundle() renders
// a postmortem — journal tail decoded to sorted JSON, metrics snapshot,
// health alert log, profiler flamegraph — that is byte-identical across
// runs of a deterministic world. The aviation black box, for a dataplane.
//
// Trigger evaluation costs nothing while no probe is armed (OnRecord is
// only reachable from an armed emit) and observes only — no events, no
// clock reads — so goldens hold with triggers installed.
#ifndef NORMAN_COMMON_FLIGHT_RECORDER_H_
#define NORMAN_COMMON_FLIGHT_RECORDER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/tracepoint.h"

namespace norman::telemetry {

class HealthWatchdog;
class MetricsRegistry;
class Profiler;

// One armed trigger: fires on the first record of `probe` whose pinned
// fields all match. Unset optionals match anything.
struct TriggerRule {
  std::string name;
  Probe probe = Probe::kFilterVerdict;
  std::optional<uint64_t> a0;
  std::optional<uint64_t> a1;
  uint32_t pid = 0;  // 0 = any

  bool Matches(const TraceRecord& rec) const {
    return rec.probe == static_cast<uint16_t>(probe) &&
           (!a0.has_value() || rec.a0 == *a0) &&
           (!a1.has_value() || rec.a1 == *a1) &&
           (pid == 0 || rec.pid == pid);
  }
};

class FlightRecorder {
 public:
  // Attaches itself to `tracepoints`; emitted records flow into OnRecord.
  explicit FlightRecorder(Tracepoints* tracepoints);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // ---- trigger installation (cold) ---------------------------------------

  // Installing a trigger arms its probe (keeping any existing predicate) —
  // a trigger that cannot see its probe would never fire.
  void AddTrigger(TriggerRule rule);

  // The canned rules the norman_probe scenario ships with.
  // Fires when any watchdog component leaves healthy (from == kHealthy; the
  // watchdog only logs actual transitions, so to != kHealthy is implied).
  void AddWatchdogUnhealthyTrigger();
  // Fires on the first NIC drop with this DropReason (pass the enum value;
  // untyped here so common/ stays free of nic/ headers).
  void AddDropReasonTrigger(std::string name, uint64_t drop_reason);
  // Fires the first time an SRAM allocation is refused.
  void AddSramExhaustedTrigger();

  // ---- the trigger engine ------------------------------------------------

  // Called by Tracepoints for every appended record. First match wins:
  // latches the trigger, freezes the rings.
  void OnRecord(const TraceRecord& rec);

  bool triggered() const { return triggered_; }
  const std::string& fired_trigger() const { return fired_name_; }
  const TraceRecord& fired_record() const { return fired_record_; }
  const std::vector<TriggerRule>& triggers() const { return triggers_; }

  // "name probe conditions state" lines in installation order; byte-stable.
  std::string TriggersReport() const;

  // ---- postmortem export (cold; byte-stable) ------------------------------

  // {"trigger":...,"journal":[...],"metrics":...,"health":...,"flame":"..."}
  // `watchdog` / `profiler` may be null (rendered as null members) so the
  // bundle shape is stable across worlds with and without them.
  std::string Bundle(const MetricsRegistry& metrics,
                     const HealthWatchdog* watchdog,
                     const Profiler* profiler) const;

  // Clears the latch and unfreezes the rings; installed triggers survive.
  void Reset();

 private:
  Tracepoints* tracepoints_;
  std::vector<TriggerRule> triggers_;
  bool triggered_ = false;
  std::string fired_name_;
  TraceRecord fired_record_{};
};

}  // namespace norman::telemetry

#endif  // NORMAN_COMMON_FLIGHT_RECORDER_H_
