// Minimal leveled logger. Off by default above kWarning so benchmarks stay
// quiet; tests can raise verbosity via SetLogThreshold.
#ifndef NORMAN_COMMON_LOGGING_H_
#define NORMAN_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string_view>

namespace norman {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Messages strictly below the threshold are discarded.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

namespace internal {

// One log statement; emits on destruction. LogMessage(kFatal) aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) {
      stream_ << v;
    }
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace norman

#define NORMAN_LOG(severity)                                              \
  ::norman::internal::LogMessage(::norman::LogLevel::k##severity,         \
                                 __FILE__, __LINE__)

// Always-on invariant check (also in release builds): logs and aborts.
#define NORMAN_CHECK(cond)                                                \
  if (!(cond))                                                            \
  NORMAN_LOG(Fatal) << "Check failed: " #cond " "

#endif  // NORMAN_COMMON_LOGGING_H_
