// Per-packet lifecycle tracing keyed off the simulator's virtual clock.
//
// A sampled packet gets a nonzero trace id at NIC arrival; every hop it
// then crosses (DMA, pipeline stages, qdisc wait, wire, ring, delivery)
// records a [start, end) span into a fixed-size ring buffer. Spans tile:
// for an accepted packet they are contiguous, so their durations sum
// exactly to completed_at - nic_arrival (asserted in trace_test).
//
// Tracing is pure observation. It schedules no events, draws no random
// numbers (sampling is a deterministic 1-in-N arrival counter), and
// allocates nothing per packet after construction — so the virtual-time
// trajectory is bit-identical with tracing on or off, and the off-mode
// hot-path cost is one predictable branch.
//
// Export: Chrome trace-event JSON ("X" complete events, ts/dur in
// microseconds of virtual time) loadable at https://ui.perfetto.dev, plus
// per-stage LatencyHistograms fed into the metrics registry under
// "trace.stage.<name>".
#ifndef NORMAN_COMMON_TRACE_H_
#define NORMAN_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/stats.h"
#include "src/common/units.h"

namespace norman::telemetry {

struct TraceSpan {
  uint32_t trace_id = 0;
  // Must point at static-storage strings (stage name literals); the span
  // outlives any packet, and the ring stores no copies.
  std::string_view stage;
  Nanos start = 0;
  Nanos end = 0;
};

class PacketTracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit PacketTracer(MetricsRegistry* registry,
                        size_t capacity = kDefaultCapacity);

  // 1-in-N sampling; 0 disables tracing entirely (the default).
  void set_sample_interval(uint32_t n) { sample_interval_ = n; }
  uint32_t sample_interval() const { return sample_interval_; }
  bool enabled() const { return sample_interval_ != 0; }

  // Called once per packet at NIC arrival. Returns a fresh nonzero trace id
  // for every sample_interval()-th arrival, 0 otherwise (or when disabled).
  uint32_t SampleArrival() {
    if (sample_interval_ == 0) {
      return 0;
    }
    if (arrivals_++ % sample_interval_ != 0) {
      return 0;
    }
    return ++next_id_;
  }

  // Record a span for a sampled packet. No-op when trace_id == 0, so call
  // sites need no branches of their own.
  void Record(uint32_t trace_id, std::string_view stage, Nanos start,
              Nanos end);

  // Spans currently held, oldest first (the ring keeps the newest
  // `capacity` spans; earlier ones are overwritten).
  std::vector<TraceSpan> Spans() const;

  uint64_t total_recorded() const { return total_; }
  // Spans overwritten by ring wrap; mirrored to the "trace.dropped"
  // registry counter so dashboards see span loss without polling the
  // tracer object.
  uint64_t dropped_spans() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  size_t capacity() const { return ring_.size(); }

  // Chrome trace-event JSON. Each span becomes a complete ("X") event with
  // ts/dur in microseconds of virtual time and tid = trace id, so Perfetto
  // renders one track per traced packet.
  std::string ChromeTraceJson() const;

  // Per-stage latency histogram fed by Record(); nullptr before the first
  // span of that stage.
  const LatencyHistogram* StageHistogram(std::string_view stage) const;

  // Drop recorded spans and the arrival counter; keeps the sampling knob.
  void Clear();

 private:
  MetricsRegistry* registry_;
  std::vector<TraceSpan> ring_;
  Counter* dropped_counter_ = nullptr;  // trace.dropped
  uint64_t total_ = 0;
  uint32_t sample_interval_ = 0;
  uint64_t arrivals_ = 0;
  uint32_t next_id_ = 0;
  // Stage-name -> registry histogram, cached so Record() does the registry
  // map lookup once per distinct stage, not once per span. Keys are the
  // static-storage literals the call sites pass.
  std::unordered_map<std::string_view, LatencyHistogram*> stage_hists_;
};

}  // namespace norman::telemetry

#endif  // NORMAN_COMMON_TRACE_H_
