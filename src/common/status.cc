#include "src/common/status.h"

namespace norman {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string_view msg) {
  return Status(StatusCode::kInvalidArgument, std::string(msg));
}
Status NotFoundError(std::string_view msg) {
  return Status(StatusCode::kNotFound, std::string(msg));
}
Status AlreadyExistsError(std::string_view msg) {
  return Status(StatusCode::kAlreadyExists, std::string(msg));
}
Status PermissionDeniedError(std::string_view msg) {
  return Status(StatusCode::kPermissionDenied, std::string(msg));
}
Status ResourceExhaustedError(std::string_view msg) {
  return Status(StatusCode::kResourceExhausted, std::string(msg));
}
Status FailedPreconditionError(std::string_view msg) {
  return Status(StatusCode::kFailedPrecondition, std::string(msg));
}
Status OutOfRangeError(std::string_view msg) {
  return Status(StatusCode::kOutOfRange, std::string(msg));
}
Status UnimplementedError(std::string_view msg) {
  return Status(StatusCode::kUnimplemented, std::string(msg));
}
Status InternalError(std::string_view msg) {
  return Status(StatusCode::kInternal, std::string(msg));
}
Status UnavailableError(std::string_view msg) {
  return Status(StatusCode::kUnavailable, std::string(msg));
}

}  // namespace norman
