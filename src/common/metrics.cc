#include "src/common/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace norman::telemetry {

namespace {

// JSON string escaping for metric names (dotted ASCII in practice, but the
// exporter must not emit invalid JSON for any name).
void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return it->second.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const LatencyHistogram* MetricsRegistry::FindHistogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  FlushPending();
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.values.emplace(name, static_cast<int64_t>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    snap.values.emplace(name, g->value());
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::Delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : after.values) {
    auto it = before.values.find(name);
    const int64_t prev = it == before.values.end() ? 0 : it->second;
    delta.values.emplace(name, value - prev);
  }
  return delta;
}

std::string MetricsRegistry::TextReport() const {
  FlushPending();
  std::string out;
  char buf[64];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", c->value());
    out += name;
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", g->value());
    out += name;
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    out += name;
    out.push_back(' ');
    out += h->Summary();
    out.push_back('\n');
  }
  return out;
}

std::string MetricsRegistry::JsonReport() const {
  FlushPending();
  std::string out = "{\"counters\":{";
  char buf[96];
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(out, name);
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, c->value());
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(out, name);
    std::snprintf(buf, sizeof(buf), ":%" PRId64, g->value());
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(out, name);
    std::snprintf(buf, sizeof(buf),
                  ":{\"count\":%" PRIu64 ",\"min\":%" PRId64 ",\"p50\":%" PRId64
                  ",\"p99\":%" PRId64 ",\"max\":%" PRId64 ",\"mean\":%.1f}",
                  h->count(), h->min(), h->p50(), h->p99(), h->max(),
                  h->mean());
    out += buf;
  }
  out += "}}";
  return out;
}

std::vector<std::string> MetricsRegistry::MetricNames() const {
  std::vector<std::string> names;
  names.reserve(num_metrics());
  for (const auto& [name, c] : counters_) {
    names.push_back("counter " + name);
  }
  for (const auto& [name, g] : gauges_) {
    names.push_back("gauge " + name);
  }
  for (const auto& [name, h] : histograms_) {
    names.push_back("histogram " + name);
  }
  return names;
}

void MetricsRegistry::ImportPool(const PoolCounters& pc) {
  const std::string prefix =
      "pool." + (pc.name.empty() ? std::string("anon") : pc.name) + ".";
  GetGauge(prefix + "hits")->Set(static_cast<int64_t>(pc.hits));
  GetGauge(prefix + "misses")->Set(static_cast<int64_t>(pc.misses));
  GetGauge(prefix + "releases")->Set(static_cast<int64_t>(pc.releases));
  GetGauge(prefix + "dropped")->Set(static_cast<int64_t>(pc.dropped));
  GetGauge(prefix + "outstanding")->Set(static_cast<int64_t>(pc.outstanding));
  GetGauge(prefix + "high_water")->Set(static_cast<int64_t>(pc.high_water));
}

void MetricsRegistry::ResetAll() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace norman::telemetry
