// Statistics helpers: running moments and an HdrHistogram-style
// log-linear latency histogram with percentile queries.
#ifndef NORMAN_COMMON_STATS_H_
#define NORMAN_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace norman {

// Single-pass mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  void Reset();

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Log-linear histogram over non-negative integer samples (latency in ns).
// Buckets: for each power-of-two decade there are `kSubBuckets` linear
// sub-buckets, giving a bounded relative error (~1/kSubBuckets) at any scale.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Add(int64_t value_ns);
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const;
  double mean() const;

  // Value at quantile q in [0,1]; returns an upper bound of the containing
  // bucket, matching HdrHistogram convention. Boundaries are exact: q<=0
  // returns min(), q>=1 returns max(), and an empty histogram returns 0.
  int64_t Percentile(double q) const;

  int64_t p50() const { return Percentile(0.50); }
  int64_t p90() const { return Percentile(0.90); }
  int64_t p99() const { return Percentile(0.99); }
  int64_t p999() const { return Percentile(0.999); }

  void Reset();

  // "p50=1.2us p99=8.4us max=20.1us n=1000"
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per decade
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  // Decades 0..(64 - kSubBucketBits - 1) plus the exact first-decade block.
  static constexpr int kDecades = 64 - kSubBucketBits + 1;

  static int BucketIndex(int64_t value);
  static int64_t BucketUpperBound(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

// Recycling counters shared by the hot-path object pools (PacketPool,
// Simulator event-node pool). A "hit" is an acquisition served from the
// free list; a "miss" required a fresh heap allocation; "dropped" counts
// releases discarded because the free list was at capacity (exhaustion
// fallback). `outstanding` tracks live objects, `high_water` its maximum.
struct PoolCounters {
  // Registry key: counters import as "pool.<name>.*" gauges (see
  // telemetry::MetricsRegistry::ImportPool). First member so pools can
  // aggregate-initialize as PoolCounters{"packet"}.
  std::string name;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t releases = 0;
  uint64_t dropped = 0;
  uint64_t outstanding = 0;
  uint64_t high_water = 0;

  uint64_t acquisitions() const { return hits + misses; }
  double HitRate() const;

  void RecordAcquire(bool from_free_list);
  void RecordRelease(bool kept);

  // Accumulate `other` into this aggregate: event counts and outstanding
  // sum; high_water sums too (upper bound on combined peak live objects —
  // the capacity-planning figure for "all pools together"). `name` is
  // kept, so an aggregate like PoolCounters{"all"} keeps its own key.
  void Merge(const PoolCounters& other);

  // "hits=120 misses=8 hit_rate=93.8% outstanding=4 high_water=12"
  std::string Summary() const;
};

// Pretty-print a nanosecond quantity with an adaptive unit ("1.25us").
std::string FormatNanos(int64_t ns);

// Pretty-print a bits/sec quantity ("94.3 Gbps").
std::string FormatBps(double bps);

}  // namespace norman

#endif  // NORMAN_COMMON_STATS_H_
