#include "src/common/trace.h"

#include <cstdio>

#include "src/common/logging.h"

namespace norman::telemetry {

PacketTracer::PacketTracer(MetricsRegistry* registry, size_t capacity)
    : registry_(registry), ring_(capacity == 0 ? 1 : capacity) {
  NORMAN_CHECK(registry_ != nullptr);
  dropped_counter_ = registry_->GetCounter("trace.dropped");
}

void PacketTracer::Record(uint32_t trace_id, std::string_view stage,
                          Nanos start, Nanos end) {
  if (trace_id == 0) {
    return;
  }
  if (total_ >= ring_.size()) {
    dropped_counter_->Increment();  // overwrite: the oldest span is lost
  }
  ring_[total_ % ring_.size()] = TraceSpan{trace_id, stage, start, end};
  ++total_;
  auto it = stage_hists_.find(stage);
  if (it == stage_hists_.end()) {
    std::string name = "trace.stage.";
    name += stage;
    it = stage_hists_.emplace(stage, registry_->GetHistogram(name)).first;
  }
  it->second->Add(end - start);
}

std::vector<TraceSpan> PacketTracer::Spans() const {
  std::vector<TraceSpan> out;
  const size_t n = total_ < ring_.size() ? static_cast<size_t>(total_)
                                         : ring_.size();
  out.reserve(n);
  const uint64_t first = total_ - n;
  for (uint64_t i = first; i < total_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

std::string PacketTracer::ChromeTraceJson() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[224];
  bool first = true;
  for (const TraceSpan& span : Spans()) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    // ts/dur are microseconds (Chrome convention); %.3f keeps full ns
    // precision.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%.*s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":1,\"tid\":%u,\"args\":{\"start_ns\":%lld,"
                  "\"end_ns\":%lld}}",
                  static_cast<int>(span.stage.size()), span.stage.data(),
                  static_cast<double>(span.start) / 1e3,
                  static_cast<double>(span.end - span.start) / 1e3,
                  span.trace_id, static_cast<long long>(span.start),
                  static_cast<long long>(span.end));
    out += buf;
  }
  out += "]}";
  return out;
}

const LatencyHistogram* PacketTracer::StageHistogram(
    std::string_view stage) const {
  auto it = stage_hists_.find(stage);
  return it == stage_hists_.end() ? nullptr : it->second;
}

void PacketTracer::Clear() {
  for (TraceSpan& s : ring_) {
    s = TraceSpan{};
  }
  total_ = 0;
  arrivals_ = 0;
  next_id_ = 0;
}

}  // namespace norman::telemetry
