// Continuous monitoring, layer 1: periodic virtual-clock scrapes of the
// MetricsRegistry into fixed-capacity ring-buffered time series.
//
// One-shot tools (norman-stat, norman-tcpdump) answer "what happened";
// the sampler answers "what is happening": each Sample(now) captures every
// counter, gauge and histogram in the registry and appends one point per
// derived series —
//
//   counter  <name>      ->  series "<name>.rate"  (delta per second over
//                            the elapsed window: pps, Bps, drops/s, ...)
//   gauge    <name>      ->  series "<name>"       (instantaneous level)
//   histogram <name>     ->  series "<name>.p99"   (tail latency, ns)
//
// Everything runs on the virtual clock and touches no RNG or host time, so
// sampling is pure observation: the packet trajectory is bit-identical with
// the sampler on or off, and back-to-back runs export byte-identical JSON
// (which is what lets norman_top goldens pin the output).
#ifndef NORMAN_COMMON_TIMESERIES_H_
#define NORMAN_COMMON_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/units.h"

namespace norman::telemetry {

struct SeriesPoint {
  Nanos t = 0;     // virtual time of the scrape
  double value = 0;
};

// Fixed-capacity ring of points; the newest `capacity` samples survive.
class TimeSeries {
 public:
  explicit TimeSeries(size_t capacity) : capacity_(capacity) {}

  void Push(Nanos t, double value);

  // Points currently retained (<= capacity), oldest first; index 0 is the
  // oldest retained point.
  size_t size() const { return points_.size() < capacity_ ? points_.size()
                                                          : capacity_; }
  size_t capacity() const { return capacity_; }
  uint64_t total_pushed() const { return total_; }
  const SeriesPoint& At(size_t i) const;
  const SeriesPoint& Latest() const { return At(size() - 1); }

 private:
  size_t capacity_;
  std::vector<SeriesPoint> points_;  // ring once full
  size_t next_ = 0;                  // ring write cursor
  uint64_t total_ = 0;
};

class TimeSeriesSampler {
 public:
  struct Options {
    size_t capacity = 128;  // retained windows per series
  };

  explicit TimeSeriesSampler(MetricsRegistry* registry);
  TimeSeriesSampler(MetricsRegistry* registry, Options opts);

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  // Scrapes the registry at virtual time `now`. The first sample's window
  // starts at t=0 (metrics are born zero with the world). A repeated call
  // at the same `now` is a no-op (zero-width window).
  void Sample(Nanos now);

  uint64_t samples_taken() const { return samples_; }
  Nanos last_sample_at() const { return prev_time_; }

  // Lookup by derived series name ("nic.tx.seen.rate", "queue.nic.qdisc.
  // depth", "trace.stage.tx.qdisc.p99"); nullptr when never sampled.
  const TimeSeries* Find(std::string_view name) const;
  std::vector<std::string> SeriesNames() const;

  // Sorted, byte-stable export:
  // {"samples":N,"series":{"<name>":[[t,v],...],...}}
  std::string JsonReport() const;

  // Drops all series and the delta baseline; the registry is untouched.
  void Clear();

 private:
  TimeSeries& SeriesFor(const std::string& name);

  MetricsRegistry* registry_;
  Options opts_;
  std::map<std::string, TimeSeries, std::less<>> series_;
  MetricsSnapshot prev_;  // counter/gauge values at the previous scrape
  Nanos prev_time_ = 0;
  uint64_t samples_ = 0;
};

}  // namespace norman::telemetry

#endif  // NORMAN_COMMON_TIMESERIES_H_
