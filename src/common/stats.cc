#include "src/common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "src/common/logging.h"

namespace norman {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Reset() { *this = RunningStats(); }

double PoolCounters::HitRate() const {
  const uint64_t total = acquisitions();
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

void PoolCounters::RecordAcquire(bool from_free_list) {
  if (from_free_list) {
    ++hits;
  } else {
    ++misses;
  }
  ++outstanding;
  high_water = std::max(high_water, outstanding);
}

void PoolCounters::RecordRelease(bool kept) {
  ++releases;
  if (!kept) {
    ++dropped;
  }
  if (outstanding > 0) {
    --outstanding;
  }
}

void PoolCounters::Merge(const PoolCounters& other) {
  hits += other.hits;
  misses += other.misses;
  releases += other.releases;
  dropped += other.dropped;
  outstanding += other.outstanding;
  high_water += other.high_water;
}

std::string PoolCounters::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "hits=%llu misses=%llu hit_rate=%.1f%% dropped=%llu "
                "outstanding=%llu high_water=%llu",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses), HitRate() * 100.0,
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(outstanding),
                static_cast<unsigned long long>(high_water));
  return buf;
}

LatencyHistogram::LatencyHistogram()
    : buckets_(static_cast<size_t>(kDecades) * kSubBuckets, 0) {}

int LatencyHistogram::BucketIndex(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    // First decade is exact.
    return static_cast<int>(v);
  }
  const int msb = 63 - std::countl_zero(v);
  const int decade = msb - kSubBucketBits + 1;
  const int sub = static_cast<int>(v >> decade) & (kSubBuckets - 1);
  return decade * kSubBuckets + sub + kSubBuckets;
}

int64_t LatencyHistogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) {
    return index;
  }
  index -= kSubBuckets;
  const int decade = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  // Bucket (decade, sub) covers [sub << decade, (sub+1) << decade).
  return static_cast<int64_t>(
      (static_cast<uint64_t>(sub + 1) << decade) - 1);
}

void LatencyHistogram::Add(int64_t value_ns) {
  const int idx = BucketIndex(value_ns);
  NORMAN_CHECK(idx >= 0 && static_cast<size_t>(idx) < buckets_.size());
  ++buckets_[static_cast<size_t>(idx)];
  if (count_ == 0) {
    min_ = max_ = value_ns;
  } else {
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
  }
  ++count_;
  sum_ += static_cast<double>(value_ns);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  NORMAN_CHECK(buckets_.size() == other.buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

int64_t LatencyHistogram::min() const { return count_ > 0 ? min_ : 0; }
int64_t LatencyHistogram::max() const { return count_ > 0 ? max_ : 0; }

double LatencyHistogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

int64_t LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  // Boundary quantiles are exact, not bucket upper bounds: q=0 is the
  // recorded minimum, q=1 the recorded maximum.
  if (q <= 0.0) {
    return min_;
  }
  if (q >= 1.0) {
    return max_;
  }
  const uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(BucketUpperBound(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "p50=%s p90=%s p99=%s max=%s n=%llu",
                FormatNanos(p50()).c_str(), FormatNanos(p90()).c_str(),
                FormatNanos(p99()).c_str(), FormatNanos(max()).c_str(),
                static_cast<unsigned long long>(count_));
  return buf;
}

std::string FormatNanos(int64_t ns) {
  char buf[48];
  const double v = static_cast<double>(ns);
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", v / 1e3);
  } else if (ns < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / 1e9);
  }
  return buf;
}

std::string FormatBps(double bps) {
  char buf[48];
  if (bps >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f Gbps", bps / 1e9);
  } else if (bps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f Mbps", bps / 1e6);
  } else if (bps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f Kbps", bps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f bps", bps);
  }
  return buf;
}

}  // namespace norman
