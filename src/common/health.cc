#include "src/common/health.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace norman::telemetry {

namespace {

void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

const char* HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kStalled: return "stalled";
  }
  return "unknown";
}

HealthWatchdog::HealthWatchdog(const TimeSeriesSampler* sampler,
                               MetricsRegistry* registry)
    : HealthWatchdog(sampler, registry, Options()) {}

HealthWatchdog::HealthWatchdog(const TimeSeriesSampler* sampler,
                               MetricsRegistry* registry, Options opts)
    : sampler_(sampler),
      opts_(opts),
      alerts_total_(registry->GetCounter("health.alerts")),
      gauge_healthy_(registry->GetGauge("health.components.healthy")),
      gauge_degraded_(registry->GetGauge("health.components.degraded")),
      gauge_stalled_(registry->GetGauge("health.components.stalled")) {}

void HealthWatchdog::AddQueueStallRule(std::string_view component,
                                       std::string_view depth_series,
                                       std::string_view owner, int windows,
                                       int64_t min_depth) {
  rules_.push_back(Rule{RuleKind::kQueueStall, std::string(component),
                        std::string(depth_series), std::string(owner), windows,
                        min_depth, 0});
  auto& status = components_[std::string(component)];
  if (status.owner.empty()) status.owner = std::string(owner);
}

void HealthWatchdog::AddRateSpikeRule(std::string_view component,
                                      std::string_view series,
                                      std::string_view owner,
                                      double per_second) {
  rules_.push_back(Rule{RuleKind::kRateSpike, std::string(component),
                        std::string(series), std::string(owner), 0, 0,
                        per_second});
  auto& status = components_[std::string(component)];
  if (status.owner.empty()) status.owner = std::string(owner);
}

void HealthWatchdog::AddLatencyRule(std::string_view component,
                                    std::string_view series,
                                    std::string_view owner,
                                    Nanos threshold_ns) {
  rules_.push_back(Rule{RuleKind::kLatency, std::string(component),
                        std::string(series), std::string(owner), 0, 0,
                        static_cast<double>(threshold_ns)});
  auto& status = components_[std::string(component)];
  if (status.owner.empty()) status.owner = std::string(owner);
}

void HealthWatchdog::AddLinkDownRule(std::string_view component,
                                     std::string_view series,
                                     std::string_view owner) {
  rules_.push_back(Rule{RuleKind::kLinkDown, std::string(component),
                        std::string(series), std::string(owner), 0, 0, 0});
  auto& status = components_[std::string(component)];
  if (status.owner.empty()) status.owner = std::string(owner);
}

HealthState HealthWatchdog::EvaluateRule(const Rule& rule,
                                         std::string* reason) const {
  const TimeSeries* series = sampler_->Find(rule.series);
  if (series == nullptr || series->size() == 0) {
    return HealthState::kHealthy;  // no data yet — nothing to judge
  }
  char buf[192];
  switch (rule.kind) {
    case RuleKind::kQueueStall: {
      // Trailing streak of samples that stayed backed up (>= min_depth)
      // without draining below the preceding sample.
      const size_t n = series->size();
      int streak = 0;
      for (size_t back = 0; back < n; ++back) {
        const size_t i = n - 1 - back;
        const double v = series->At(i).value;
        if (v < static_cast<double>(rule.min_depth)) break;
        if (back > 0 && v > series->At(i + 1).value) break;  // was draining
        ++streak;
      }
      if (streak >= rule.windows) {
        std::snprintf(buf, sizeof(buf),
                      "%s held >=%" PRId64 " without draining for %d windows",
                      rule.series.c_str(), rule.min_depth, streak);
        *reason = buf;
        return HealthState::kStalled;
      }
      if (streak >= (rule.windows + 1) / 2) {
        std::snprintf(buf, sizeof(buf),
                      "%s backed up for %d of %d windows", rule.series.c_str(),
                      streak, rule.windows);
        *reason = buf;
        return HealthState::kDegraded;
      }
      return HealthState::kHealthy;
    }
    case RuleKind::kRateSpike: {
      const double v = series->Latest().value;
      if (v > rule.threshold) {
        std::snprintf(buf, sizeof(buf), "%s at %.10g/s > %.10g/s",
                      rule.series.c_str(), v, rule.threshold);
        *reason = buf;
        return HealthState::kDegraded;
      }
      return HealthState::kHealthy;
    }
    case RuleKind::kLatency: {
      const double v = series->Latest().value;
      if (v > rule.threshold) {
        std::snprintf(buf, sizeof(buf), "%s at %.0fns > %.0fns",
                      rule.series.c_str(), v, rule.threshold);
        *reason = buf;
        return HealthState::kDegraded;
      }
      return HealthState::kHealthy;
    }
    case RuleKind::kLinkDown: {
      const double v = series->Latest().value;
      if (v > 0) {
        std::snprintf(buf, sizeof(buf), "%s reports %.0f link(s) down",
                      rule.series.c_str(), v);
        *reason = buf;
        return HealthState::kStalled;
      }
      return HealthState::kHealthy;
    }
  }
  return HealthState::kHealthy;
}

void HealthWatchdog::LogTransition(Nanos now, const std::string& component,
                                   const ComponentStatus& prev,
                                   const ComponentStatus& next) {
  if (alerts_.size() >= opts_.max_alerts) {
    alerts_.erase(alerts_.begin());
    ++alerts_dropped_;
  }
  HealthAlert alert;
  alert.t = now;
  alert.component = component;
  alert.owner = next.owner;
  alert.from = prev.state;
  alert.to = next.state;
  alert.reason = next.reason.empty() ? std::string("recovered") : next.reason;
  alerts_.push_back(std::move(alert));
  alerts_total_->Increment();
  if (tp_ != nullptr) {
    // a0 = state entered, a1 = state left; the flight recorder's canned
    // "unhealthy" trigger matches a1 == kHealthy (any departure from green).
    tp_->Emit(Probe::kWatchdogTransition, Tracepoints::kCoreHost, /*pid=*/0,
              static_cast<uint64_t>(next.state),
              static_cast<uint64_t>(prev.state));
  }
}

void HealthWatchdog::Evaluate(Nanos now) {
  ++evaluations_;
  // Fold every rule into its component: worst severity wins; the first rule
  // (registration order) at that severity supplies owner and reason, so the
  // outcome is deterministic even with several rules firing at once.
  std::map<std::string, ComponentStatus, std::less<>> next;
  for (const auto& [name, status] : components_) {
    ComponentStatus fresh;
    fresh.owner = status.owner;  // default pager when healthy
    next.emplace(name, std::move(fresh));
  }
  for (const Rule& rule : rules_) {
    std::string reason;
    const HealthState severity = EvaluateRule(rule, &reason);
    ComponentStatus& status = next[rule.component];
    if (severity > status.state) {
      status.state = severity;
      status.owner = rule.owner;
      status.reason = std::move(reason);
    }
  }
  int64_t healthy = 0, degraded = 0, stalled = 0;
  for (auto& [name, status] : next) {
    const ComponentStatus& prev = components_[name];
    if (status.state != prev.state) {
      LogTransition(now, name, prev, status);
    }
    switch (status.state) {
      case HealthState::kHealthy: ++healthy; break;
      case HealthState::kDegraded: ++degraded; break;
      case HealthState::kStalled: ++stalled; break;
    }
  }
  components_ = std::move(next);
  gauge_healthy_->Set(healthy);
  gauge_degraded_->Set(degraded);
  gauge_stalled_->Set(stalled);
}

HealthState HealthWatchdog::StateOf(std::string_view component) const {
  const auto it = components_.find(component);
  return it == components_.end() ? HealthState::kHealthy : it->second.state;
}

std::string HealthWatchdog::Render() const {
  std::string out;
  char buf[64];
  for (const auto& [name, status] : components_) {
    out += name;
    out.push_back(' ');
    out += HealthStateName(status.state);
    out += " owner=";
    out += status.owner;
    if (!status.reason.empty()) {
      out += "  # ";
      out += status.reason;
    }
    out.push_back('\n');
  }
  for (const HealthAlert& a : alerts_) {
    std::snprintf(buf, sizeof(buf), "t=%lld ", static_cast<long long>(a.t));
    out += buf;
    out += a.component;
    out.push_back(' ');
    out += HealthStateName(a.from);
    out += "->";
    out += HealthStateName(a.to);
    out += " owner=";
    out += a.owner;
    out.push_back(' ');
    out += a.reason;
    out.push_back('\n');
  }
  return out;
}

std::string HealthWatchdog::JsonReport() const {
  std::string out = "{\"components\":{";
  char buf[64];
  bool first = true;
  for (const auto& [name, status] : components_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(out, name);
    out += ":{\"state\":";
    AppendJsonString(out, HealthStateName(status.state));
    out += ",\"owner\":";
    AppendJsonString(out, status.owner);
    out += ",\"reason\":";
    AppendJsonString(out, status.reason);
    out.push_back('}');
  }
  out += "},\"alerts\":[";
  first = true;
  for (const HealthAlert& a : alerts_) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof(buf), "{\"t\":%lld,", static_cast<long long>(a.t));
    out += buf;
    out += "\"component\":";
    AppendJsonString(out, a.component);
    out += ",\"from\":";
    AppendJsonString(out, HealthStateName(a.from));
    out += ",\"to\":";
    AppendJsonString(out, HealthStateName(a.to));
    out += ",\"owner\":";
    AppendJsonString(out, a.owner);
    out += ",\"reason\":";
    AppendJsonString(out, a.reason);
    out.push_back('}');
  }
  out += "],";
  std::snprintf(buf, sizeof(buf), "\"dropped\":%" PRIu64 "}", alerts_dropped_);
  out += buf;
  return out;
}

}  // namespace norman::telemetry
