// Tagged drop reasons for the interposition dataplane.
//
// Every point where the NIC, a dataplane stage, or the kernel slow path
// discards a packet must attribute the drop to exactly one of these
// reasons. The SmartNic is the single accounting point: stages report a
// reason through StageResult, schedulers through last_drop_reason(), and
// the NIC feeds the per-reason registry counters plus the owner-annotated
// drop ledger shown by `norman-stat --drops` (paper §4: the administrator
// must be able to account for every packet, even under kernel bypass).
#ifndef NORMAN_COMMON_DROP_REASON_H_
#define NORMAN_COMMON_DROP_REASON_H_

#include <cstdint>
#include <string_view>

namespace norman {

enum class DropReason : uint8_t {
  kNone = 0,        // not a drop (accepted / fallback)
  kFilterDeny,      // firewall filter verdict (iptables DROP)
  kSpoof,           // source identity does not match the flow-table owner
  kMalformed,       // frame failed to parse
  kPolicy,          // overlay program verdict (custom policy stage)
  kNicConsumed,     // terminated on the NIC by design (ARP/ICMP responder)
  kSramExhausted,   // NIC SRAM / NAT port allocation exhausted
  kSchedOverflow,   // scheduler / qdisc queue overflow
  kRateLimited,     // pacer queue overflow (tc-style rate limit)
  kRingFull,        // RX descriptor ring had no free slot
  kTtl,             // TTL expired (reserved for a future routing stage)
  kUnmatched,       // no flow entry and no listener wanted it
  kCorrupt,         // IP/L4 checksum failed RX verification (wire damage)
  kCount,           // number of reasons (array sizing), not a reason
};

inline constexpr size_t kNumDropReasons = static_cast<size_t>(
    DropReason::kCount);

// Stable snake_case name used in metric names ("nic.tx.drop.filter_deny")
// and tool output. Indexable in O(1); kCount/invalid map to "invalid".
constexpr std::string_view DropReasonName(DropReason reason) {
  switch (reason) {
    case DropReason::kNone: return "none";
    case DropReason::kFilterDeny: return "filter_deny";
    case DropReason::kSpoof: return "spoof";
    case DropReason::kMalformed: return "malformed";
    case DropReason::kPolicy: return "policy";
    case DropReason::kNicConsumed: return "nic_consumed";
    case DropReason::kSramExhausted: return "sram_exhausted";
    case DropReason::kSchedOverflow: return "sched_overflow";
    case DropReason::kRateLimited: return "rate_limited";
    case DropReason::kRingFull: return "ring_full";
    case DropReason::kTtl: return "ttl";
    case DropReason::kUnmatched: return "unmatched";
    case DropReason::kCorrupt: return "corrupt";
    case DropReason::kCount: break;
  }
  return "invalid";
}

}  // namespace norman

#endif  // NORMAN_COMMON_DROP_REASON_H_
