#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

namespace norman {
namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

// Strip directories: logs show "filter_engine.cc:42", not the full path.
std::string_view Basename(std::string_view path) {
  auto pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

void SetLogThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogThreshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_threshold.load(std::memory_order_relaxed)) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace norman
