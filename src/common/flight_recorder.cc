#include "src/common/flight_recorder.h"

#include <cstdio>

#include "src/common/drop_reason.h"
#include "src/common/health.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"

namespace norman::telemetry {

namespace {

// Minimal JSON string escaping (same dialect as health.cc's reports).
void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

FlightRecorder::FlightRecorder(Tracepoints* tracepoints)
    : tracepoints_(tracepoints) {
  NORMAN_CHECK(tracepoints_ != nullptr);
  tracepoints_->AttachRecorder(this);
}

void FlightRecorder::AddTrigger(TriggerRule rule) {
  if (!tracepoints_->armed(rule.probe)) {
    tracepoints_->Arm(rule.probe);
  }
  triggers_.push_back(std::move(rule));
}

void FlightRecorder::AddWatchdogUnhealthyTrigger() {
  TriggerRule rule;
  rule.name = "watchdog-unhealthy";
  rule.probe = Probe::kWatchdogTransition;
  rule.a1 = static_cast<uint64_t>(HealthState::kHealthy);  // from == healthy
  AddTrigger(std::move(rule));
}

void FlightRecorder::AddDropReasonTrigger(std::string name,
                                          uint64_t drop_reason) {
  TriggerRule rule;
  rule.name = std::move(name);
  rule.probe = Probe::kNicDrop;
  rule.a0 = drop_reason;
  AddTrigger(std::move(rule));
}

void FlightRecorder::AddSramExhaustedTrigger() {
  TriggerRule rule;
  rule.name = "sram-exhausted";
  rule.probe = Probe::kSramExhausted;
  AddTrigger(std::move(rule));
}

void FlightRecorder::OnRecord(const TraceRecord& rec) {
  if (triggered_) {
    return;
  }
  for (const TriggerRule& rule : triggers_) {
    if (rule.Matches(rec)) {
      triggered_ = true;
      fired_name_ = rule.name;
      fired_record_ = rec;
      tracepoints_->Freeze();
      return;
    }
  }
}

std::string FlightRecorder::TriggersReport() const {
  std::string out = "TRIGGER              PROBE                 CONDITIONS"
                    "            STATE\n";
  char buf[192];
  for (const TriggerRule& rule : triggers_) {
    std::string cond;
    if (rule.a0.has_value()) {
      cond += "a0=" + std::to_string(*rule.a0);
    }
    if (rule.a1.has_value()) {
      if (!cond.empty()) {
        cond.push_back(',');
      }
      cond += "a1=" + std::to_string(*rule.a1);
    }
    if (rule.pid != 0) {
      if (!cond.empty()) {
        cond.push_back(',');
      }
      cond += "pid=" + std::to_string(rule.pid);
    }
    if (cond.empty()) {
      cond.push_back('*');
    }
    const std::string_view probe = ProbeName(rule.probe);
    std::snprintf(buf, sizeof(buf), "%-20s %-21.*s %-21s %s\n",
                  rule.name.c_str(), static_cast<int>(probe.size()),
                  probe.data(), cond.c_str(),
                  triggered_ && fired_name_ == rule.name ? "FIRED" : "armed");
    out += buf;
  }
  if (triggers_.empty()) {
    out += "(none)\n";
  }
  return out;
}

std::string FlightRecorder::Bundle(const MetricsRegistry& metrics,
                                   const HealthWatchdog* watchdog,
                                   const Profiler* profiler) const {
  std::string out = "{\"trigger\":";
  if (triggered_) {
    char buf[192];
    const std::string_view probe = ProbeName(
        static_cast<Probe>(fired_record_.probe < kNumProbes
                               ? fired_record_.probe
                               : 0));
    out += "{\"name\":";
    AppendJsonString(out, fired_name_);
    std::snprintf(buf, sizeof(buf),
                  ",\"probe\":\"%.*s\",\"t\":%llu,\"seq\":%llu,\"pid\":%u,"
                  "\"a0\":%llu,\"a1\":%llu,\"a2\":%llu}",
                  static_cast<int>(probe.size()), probe.data(),
                  static_cast<unsigned long long>(fired_record_.t),
                  static_cast<unsigned long long>(fired_record_.seq),
                  fired_record_.pid,
                  static_cast<unsigned long long>(fired_record_.a0),
                  static_cast<unsigned long long>(fired_record_.a1),
                  static_cast<unsigned long long>(fired_record_.a2));
    out += buf;
  } else {
    out += "null";
  }
  out += ",\"journal\":";
  out += tracepoints_->JournalJson();
  out += ",\"metrics\":";
  out += metrics.JsonReport();
  out += ",\"health\":";
  out += watchdog != nullptr ? watchdog->JsonReport() : "null";
  out += ",\"flame\":";
  if (profiler != nullptr) {
    AppendJsonString(out, profiler->FoldedStacks());
  } else {
    out += "null";
  }
  out += "}";
  return out;
}

void FlightRecorder::Reset() {
  triggered_ = false;
  fired_name_.clear();
  fired_record_ = TraceRecord{};
  tracepoints_->Unfreeze();
}

}  // namespace norman::telemetry
