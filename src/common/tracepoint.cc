#include "src/common/tracepoint.h"

#include <algorithm>
#include <cstdio>

#include "src/common/flight_recorder.h"
#include "src/common/logging.h"

namespace norman::telemetry {

namespace {

// Index-aligned with the Probe enum. Dotted names group by subsystem so
// `norman_probe --list` reads like a kprobes inventory.
constexpr std::string_view kProbeNames[kNumProbes] = {
    "filter.verdict",       // kFilterVerdict
    "conntrack.transition", // kConntrackTransition
    "flowcache.install",    // kFlowCacheInstall
    "flowcache.evict",      // kFlowCacheEvict
    "flowcache.invalidate", // kFlowCacheInvalidate
    "sram.alloc",           // kSramAlloc
    "sram.exhausted",       // kSramExhausted
    "ring.full",            // kRingFull
    "notify.stall",         // kNotifyStall
    "fault.inject",         // kFaultInject
    "qdisc.drop",           // kQdiscDrop
    "nic.drop",             // kNicDrop
    "kernel.slowpath",      // kSlowPath
    "socket.call",          // kSocketCall
    "watchdog.transition",  // kWatchdogTransition
};

const char* DirName(uint8_t dir) {
  switch (dir) {
    case kDirTx:
      return "tx";
    case kDirRx:
      return "rx";
    default:
      return "any";
  }
}

bool ParseDir(std::string_view v, uint8_t* out) {
  if (v == "tx") {
    *out = kDirTx;
    return true;
  }
  if (v == "rx") {
    *out = kDirRx;
    return true;
  }
  return false;
}

bool ParseU32(std::string_view v, uint32_t max, uint32_t* out) {
  if (v.empty()) {
    return false;
  }
  uint64_t acc = 0;
  for (const char c : v) {
    if (c < '0' || c > '9') {
      return false;
    }
    acc = acc * 10 + static_cast<uint64_t>(c - '0');
    if (acc > max) {
      return false;
    }
  }
  *out = static_cast<uint32_t>(acc);
  return true;
}

// Dotted-quad IPv4 ("10.0.0.1") to the host-order uint32 the predicate
// stores (matching net::Ipv4Address::FromOctets layout).
bool ParseIp(std::string_view v, uint32_t* out) {
  uint32_t octets[4];
  size_t start = 0;
  for (int i = 0; i < 4; ++i) {
    const size_t dot = i < 3 ? v.find('.', start) : v.size();
    if (dot == std::string_view::npos) {
      return false;
    }
    if (!ParseU32(v.substr(start, dot - start), 255, &octets[i])) {
      return false;
    }
    start = dot + 1;
  }
  *out = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3];
  return true;
}

void AppendIp(std::string& out, uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  out += buf;
}

}  // namespace

std::string_view ProbeName(Probe probe) {
  const auto idx = static_cast<size_t>(probe);
  NORMAN_CHECK(idx < kNumProbes);
  return kProbeNames[idx];
}

bool ProbeFromName(std::string_view name, Probe* out) {
  for (size_t i = 0; i < kNumProbes; ++i) {
    if (kProbeNames[i] == name) {
      *out = static_cast<Probe>(i);
      return true;
    }
  }
  return false;
}

bool ProbePredicate::Matches(uint32_t emit_pid, const TraceFlow* flow) const {
  if (pid != 0 && emit_pid != pid) {
    return false;
  }
  if (dir != kDirNone && (flow == nullptr || flow->dir != dir)) {
    return false;
  }
  if (src_ip != 0 && (flow == nullptr || flow->src_ip != src_ip)) {
    return false;
  }
  if (dst_ip != 0 && (flow == nullptr || flow->dst_ip != dst_ip)) {
    return false;
  }
  if (src_port != 0 && (flow == nullptr || flow->src_port != src_port)) {
    return false;
  }
  if (dst_port != 0 && (flow == nullptr || flow->dst_port != dst_port)) {
    return false;
  }
  if (proto != 0 && (flow == nullptr || flow->proto != proto)) {
    return false;
  }
  return true;
}

std::string ProbePredicate::Render() const {
  if (any()) {
    return "*";
  }
  std::string out;
  const auto field = [&out](std::string_view key) -> std::string& {
    if (!out.empty()) {
      out.push_back(',');
    }
    out += key;
    out.push_back('=');
    return out;
  };
  if (pid != 0) {
    field("pid") += std::to_string(pid);
  }
  if (dir != kDirNone) {
    field("dir") += DirName(dir);
  }
  if (src_ip != 0) {
    AppendIp(field("src_ip"), src_ip);
  }
  if (dst_ip != 0) {
    AppendIp(field("dst_ip"), dst_ip);
  }
  if (src_port != 0) {
    field("src_port") += std::to_string(src_port);
  }
  if (dst_port != 0) {
    field("dst_port") += std::to_string(dst_port);
  }
  if (proto != 0) {
    field("proto") += std::to_string(proto);
  }
  return out;
}

bool ProbePredicate::Parse(std::string_view text, ProbePredicate* out) {
  ProbePredicate pred;
  if (text == "*" || text.empty()) {
    *out = pred;
    return true;
  }
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const std::string_view pair = text.substr(
        start, comma == std::string_view::npos ? text.size() - start
                                               : comma - start);
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return false;
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    uint32_t num = 0;
    if (key == "pid" && ParseU32(value, UINT32_MAX, &pred.pid)) {
      // parsed in place
    } else if (key == "dir" && ParseDir(value, &pred.dir)) {
    } else if (key == "src_ip" && ParseIp(value, &pred.src_ip)) {
    } else if (key == "dst_ip" && ParseIp(value, &pred.dst_ip)) {
    } else if (key == "src_port" && ParseU32(value, 65535, &num)) {
      pred.src_port = static_cast<uint16_t>(num);
    } else if (key == "dst_port" && ParseU32(value, 65535, &num)) {
      pred.dst_port = static_cast<uint16_t>(num);
    } else if (key == "proto" && ParseU32(value, 255, &num)) {
      pred.proto = static_cast<uint8_t>(num);
    } else {
      return false;
    }
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  *out = pred;
  return true;
}

Tracepoints::Tracepoints(MetricsRegistry* registry) {
  NORMAN_CHECK(registry != nullptr);
  // Eager registration keeps the manifest shape-stable: arming (or never
  // arming) a probe changes values, never the inventory.
  for (size_t i = 0; i < kNumProbes; ++i) {
    std::string name = "probe.";
    name += kProbeNames[i];
    hit_counters_[i] = registry->GetCounter(name);
  }
  overwritten_counter_ = registry->GetCounter("probe.records.dropped");
}

void Tracepoints::Arm(Probe probe, const ProbePredicate& predicate) {
  EnsureRings();
  predicates_[static_cast<size_t>(probe)] = predicate;
  armed_mask_ |= Bit(probe);
  if (predicate.any()) {
    pred_mask_ &= ~Bit(probe);
  } else {
    pred_mask_ |= Bit(probe);
  }
}

void Tracepoints::Disarm(Probe probe) {
  armed_mask_ &= ~Bit(probe);
  pred_mask_ &= ~Bit(probe);
  predicates_[static_cast<size_t>(probe)] = ProbePredicate{};
}

void Tracepoints::ArmAll() {
  EnsureRings();
  predicates_.fill(ProbePredicate{});
  armed_mask_ = (uint32_t{1} << kNumProbes) - 1;
  pred_mask_ = 0;
}

void Tracepoints::DisarmAll() {
  armed_mask_ = 0;
  pred_mask_ = 0;
  predicates_.fill(ProbePredicate{});
}

void Tracepoints::EnsureRings() {
  // Ring storage is carved on first arm, not at construction: every test
  // and bench world owns a Tracepoints, and the many that never arm a
  // probe should not each hold 2x4096 record slots.
  if (rings_[0].buf.empty()) {
    for (Ring& ring : rings_) {
      ring.buf.resize(kRingCapacity);
    }
  }
}

void Tracepoints::EmitSlow(Probe probe, uint32_t core, uint32_t pid,
                           uint64_t a0, uint64_t a1, uint64_t a2,
                           const TraceFlow* flow) {
  const auto idx = static_cast<size_t>(probe);
  if ((pred_mask_ & Bit(probe)) != 0 &&
      !predicates_[idx].Matches(pid, flow)) {
    ++filtered_[idx];
    return;
  }
  ++hits_[idx];
  hit_counters_[idx]->Increment();
  if (frozen_) {
    return;  // black box latched: the pre-trigger tail is preserved
  }
  TraceRecord rec;
  rec.t = clock_ != nullptr ? *clock_ : 0;
  rec.seq = next_seq_++;
  rec.a0 = a0;
  rec.a1 = a1;
  rec.a2 = a2;
  rec.pid = pid;
  rec.probe = static_cast<uint16_t>(probe);
  rec.core = static_cast<uint8_t>(core < kNumCores ? core : kNumCores - 1);
  rec.dir = flow != nullptr ? flow->dir : kDirNone;
  Ring& ring = rings_[rec.core];
  if (ring.total >= kRingCapacity) {
    ++overwritten_count_;
    overwritten_counter_->Increment();
  }
  ring.buf[ring.total % kRingCapacity] = rec;
  ++ring.total;
  if (recorder_ != nullptr) {
    recorder_->OnRecord(rec);
  }
}

std::vector<TraceRecord> Tracepoints::Journal() const {
  std::vector<TraceRecord> out;
  for (const Ring& ring : rings_) {
    if (ring.buf.empty()) {
      continue;
    }
    const uint64_t n = std::min<uint64_t>(ring.total, kRingCapacity);
    const uint64_t first = ring.total - n;
    out.reserve(out.size() + n);
    for (uint64_t i = first; i < ring.total; ++i) {
      out.push_back(ring.buf[i % kRingCapacity]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::string Tracepoints::JournalJson() const {
  std::string out = "[";
  char buf[256];
  bool first = true;
  for (const TraceRecord& rec : Journal()) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    const std::string_view name =
        kProbeNames[rec.probe < kNumProbes ? rec.probe : 0];
    std::snprintf(
        buf, sizeof(buf),
        "{\"t\":%llu,\"seq\":%llu,\"probe\":\"%.*s\",\"core\":%u,"
        "\"pid\":%u,\"dir\":\"%s\",\"a0\":%llu,\"a1\":%llu,\"a2\":%llu}",
        static_cast<unsigned long long>(rec.t),
        static_cast<unsigned long long>(rec.seq),
        static_cast<int>(name.size()), name.data(), rec.core, rec.pid,
        DirName(rec.dir), static_cast<unsigned long long>(rec.a0),
        static_cast<unsigned long long>(rec.a1),
        static_cast<unsigned long long>(rec.a2));
    out += buf;
  }
  out += "]";
  return out;
}

std::string Tracepoints::ListReport() const {
  // Probes sorted by name (not enum order) so the inventory reads stably
  // as probes are added.
  std::array<size_t, kNumProbes> order;
  for (size_t i = 0; i < kNumProbes; ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [](size_t a, size_t b) {
    return kProbeNames[a] < kProbeNames[b];
  });
  std::string out =
      "PROBE                  ARMED  PREDICATE              HITS  FILTERED\n";
  char buf[160];
  for (const size_t i : order) {
    const std::string pred = predicates_[i].Render();
    std::snprintf(buf, sizeof(buf), "%-22.*s %-6s %-20s %6llu  %8llu\n",
                  static_cast<int>(kProbeNames[i].size()),
                  kProbeNames[i].data(),
                  (armed_mask_ & (uint32_t{1} << i)) != 0 ? "yes" : "no",
                  pred.c_str(), static_cast<unsigned long long>(hits_[i]),
                  static_cast<unsigned long long>(filtered_[i]));
    out += buf;
  }
  return out;
}

void Tracepoints::Clear() {
  for (Ring& ring : rings_) {
    for (TraceRecord& rec : ring.buf) {
      rec = TraceRecord{};
    }
    ring.total = 0;
  }
  hits_.fill(0);
  filtered_.fill(0);
  next_seq_ = 0;
  overwritten_count_ = 0;
  frozen_ = false;
}

}  // namespace norman::telemetry
