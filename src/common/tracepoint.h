// Kernel tracepoints: named, dynamically armable probe points at every
// interposition decision site (the kprobes of Norman).
//
// The paper's tooling argument — kernel interposition keeps tcpdump /
// netstat / top alive over a bypassed dataplane — extends to diagnosis:
// when the dataplane degrades, the question is "what *sequence* of
// decisions led here?", and only the interposition layer sees every
// decision. Each probe marks one such site — filter verdict, conntrack
// transition, flow-cache install/evict/invalidate, SRAM alloc/exhaustion,
// ring-full and notify-stall, fault-injector activation, qdisc drop,
// kernel slow-path entry, socket-surface calls, watchdog state change —
// and, when armed, emits one fixed-size structured record (virtual
// timestamp, probe id, core, owner pid via the flow→pid map, probe args)
// into a per-core ring buffer. Per-probe predicates (pid / 5-tuple /
// direction) are evaluated at emit so a probe can watch one flow without
// drowning in the rest.
//
// Cost discipline (same tiering as the profiler, PR 6/7): a disarmed
// probe is a single predictable branch on a zero mask; at
// NORMAN_STATS_LEVEL=0 the emit compiles away entirely. Armed probes
// observe only — no events, no RNG, no virtual-time cost, no steady-state
// allocation (rings are carved once at arm time) — so the bit-exact
// determinism goldens hold with every probe armed.
#ifndef NORMAN_COMMON_TRACEPOINT_H_
#define NORMAN_COMMON_TRACEPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/units.h"

namespace norman::telemetry {

class FlightRecorder;

// One identifier per interposition decision site. Arg meanings are fixed
// per probe and documented in docs/OBSERVABILITY.md §7.
enum class Probe : uint8_t {
  kFilterVerdict = 0,    // a0 = action, a1 = matched rule index
  kConntrackTransition,  // a0 = state after, a1 = state before
  kFlowCacheInstall,     // a0 = epoch, a1 = entries after
  kFlowCacheEvict,       // a0 = entries after
  kFlowCacheInvalidate,  // a0 = epoch after the bump
  kSramAlloc,            // a0 = bytes, a1 = used after, a2 = tenant
  kSramExhausted,        // a0 = bytes requested, a1 = available, a2 = tenant
                         // (pid = requesting owner; 0 = anonymous/wire)
  kRingFull,             // a0 = DropReason, a1 = direction tag
  kNotifyStall,          // a0 = notifications deferred so far
  kFaultInject,          // a0 = FaultActivation, a1 = link index
  kQdiscDrop,            // a0 = DropReason, a1 = direction tag
  kNicDrop,              // a0 = DropReason, a1 = direction tag
  kSlowPath,             // a0 = SlowPathOp, a1 = direction tag
  kSocketCall,           // a0 = SocketOp, a1 = port
  kWatchdogTransition,   // a0 = HealthState after, a1 = before
};
inline constexpr size_t kNumProbes = 15;

// Sorted-stable dotted names ("filter.verdict", "nic.drop", ...).
std::string_view ProbeName(Probe probe);
bool ProbeFromName(std::string_view name, Probe* out);

// Direction tags carried in records and matched by predicates. Numeric so
// common/ needs no net/ dependency; sites map net::Direction themselves.
inline constexpr uint8_t kDirNone = 0;
inline constexpr uint8_t kDirTx = 1;
inline constexpr uint8_t kDirRx = 2;

// a0 of kFaultInject: which fault the injector activated.
enum class FaultActivation : uint8_t {
  kLoss = 0,
  kDuplicate = 1,
  kCorrupt = 2,
  kJitter = 3,
  kReorder = 4,
  kLinkDown = 5,
};

// a0 of kSlowPath: which software path the packet entered.
enum class SlowPathOp : uint8_t {
  kHostDeliver = 0,   // NIC fallback/unmatched traffic entering the kernel
  kSoftTransmit = 1,  // software-fallback TX through the kernel core
};

// a0 of kSocketCall: which socket-surface syscall ran.
enum class SocketOp : uint8_t {
  kConnect = 0,
  kClose = 1,
  kListen = 2,
  kAccept = 3,
};

// Flow identity a site passes alongside an emit so predicates can match on
// the 5-tuple / direction. All zeros = unknown.
struct TraceFlow {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t proto = 0;
  uint8_t dir = kDirNone;
};

// The fixed-size emitted record (one ring slot).
struct TraceRecord {
  Nanos t = 0;        // virtual timestamp
  uint64_t seq = 0;   // global emit order (merge key across core rings)
  uint64_t a0 = 0;
  uint64_t a1 = 0;
  uint64_t a2 = 0;
  uint32_t pid = 0;   // owner pid via the flow→pid map; 0 = unowned
  uint16_t probe = 0;
  uint8_t core = 0;
  uint8_t dir = kDirNone;
};

// Per-probe emit filter. Zero fields match anything; a set field must
// match exactly. Canonical text form is comma-separated k=v pairs:
//   pid=3,dir=tx,src_ip=10.0.0.1,dst_port=443,proto=17
struct ProbePredicate {
  uint32_t pid = 0;
  uint8_t dir = kDirNone;
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t proto = 0;

  bool any() const {
    return pid == 0 && dir == kDirNone && src_ip == 0 && dst_ip == 0 &&
           src_port == 0 && dst_port == 0 && proto == 0;
  }
  bool Matches(uint32_t emit_pid, const TraceFlow* flow) const;
  // Canonical text form (field order fixed); "*" when unconstrained.
  std::string Render() const;
  // Parses the canonical form (fields in any order). Returns false on an
  // unknown key or malformed value.
  static bool Parse(std::string_view text, ProbePredicate* out);
};

class Tracepoints {
 public:
  // Record lanes: the aggregate NIC-side ring, the host-side ring
  // (mirroring the profiler's CoreKind split of the simulated machine),
  // and one ring per sharded dataplane lane. An unsharded world only ever
  // emits on the first two; lane rings cost nothing until armed (rings
  // are carved lazily) and keep a sharded run's per-core decision
  // sequences separable in the journal.
  static constexpr uint32_t kCoreNic = 0;
  static constexpr uint32_t kCoreHost = 1;
  static constexpr uint32_t kCoreLaneBase = 2;
  static constexpr uint32_t kMaxLaneCores = 8;
  static constexpr uint32_t kNumCores = kCoreLaneBase + kMaxLaneCores;
  // Records retained per core ring (newest win; older are overwritten).
  static constexpr size_t kRingCapacity = 4096;

  // Registers per-probe hit counters ("probe.<name>") plus the ring
  // overwrite counter eagerly, so the metric manifest is shape-stable
  // whether or not a run ever arms anything.
  explicit Tracepoints(MetricsRegistry* registry);
  Tracepoints(const Tracepoints&) = delete;
  Tracepoints& operator=(const Tracepoints&) = delete;

  // Virtual-clock source for record timestamps: a pointer to the owning
  // simulator's now-counter, dereferenced on the armed emit path (a raw
  // load — emits are hot enough that an indirect call would show up in
  // the paired bench gate). The pointee must outlive this object.
  void SetClock(const Nanos* now) { clock_ = now; }

  // ---- arming (cold) ------------------------------------------------------
  void Arm(Probe probe) { Arm(probe, ProbePredicate{}); }
  void Arm(Probe probe, const ProbePredicate& predicate);
  void Disarm(Probe probe);
  void ArmAll();
  void DisarmAll();
  bool armed(Probe probe) const {
    return (armed_mask_ & Bit(probe)) != 0;
  }
  // True when the probe's predicate constrains the 5-tuple/pid, i.e. the
  // emit site must bother extracting flow fields. Records store only the
  // direction, so an unconstrained probe never needs the tuple — hot call
  // sites use this to skip the header walk.
  bool wants_flow(Probe probe) const {
    return (pred_mask_ & Bit(probe)) != 0;
  }
  const ProbePredicate& predicate(Probe probe) const {
    return predicates_[static_cast<size_t>(probe)];
  }

  // Black-box latch: a fired trigger freezes the rings so the journal tail
  // preserved is the one that led up to the event. Frozen emits still count
  // hits (the decision happened) but append nothing.
  void Freeze() { frozen_ = true; }
  void Unfreeze() { frozen_ = false; }
  bool frozen() const { return frozen_; }

  // ---- hot path -----------------------------------------------------------

  // One predictable branch while nothing is armed; nothing at all at
  // NORMAN_STATS_LEVEL=0. Armed emits run the predicate, stamp a record
  // into the core ring and notify the attached flight recorder.
  void Emit(Probe probe, uint32_t core, uint32_t pid, uint64_t a0 = 0,
            uint64_t a1 = 0, uint64_t a2 = 0,
            const TraceFlow* flow = nullptr) {
    if constexpr (!kHotStatsEnabled) {
      return;
    }
    if ((armed_mask_ & Bit(probe)) == 0) {
      return;
    }
    EmitSlow(probe, core, pid, a0, a1, a2, flow);
  }

  // ---- inspection (cold; all byte-stable) ---------------------------------

  uint64_t hits(Probe probe) const {
    return hits_[static_cast<size_t>(probe)];
  }
  uint64_t filtered(Probe probe) const {
    return filtered_[static_cast<size_t>(probe)];
  }
  uint64_t emitted_total() const { return next_seq_; }
  uint64_t overwritten() const { return overwritten_count_; }

  // Retained records from every core ring, merged in emit (seq) order.
  std::vector<TraceRecord> Journal() const;
  // The journal decoded to a JSON array (probe names, not ids), sorted by
  // emit order; byte-stable for a deterministic run.
  std::string JournalJson() const;
  // Probe inventory: one "name armed predicate hits filtered" line per
  // probe, sorted by probe name; byte-stable.
  std::string ListReport() const;

  void AttachRecorder(FlightRecorder* recorder) { recorder_ = recorder; }
  FlightRecorder* recorder() const { return recorder_; }

  // Drops retained records, counters memo and the freeze latch; arming and
  // predicates survive (Clear is "new capture, same configuration").
  void Clear();

 private:
  struct Ring {
    std::vector<TraceRecord> buf;  // sized kRingCapacity at first arm
    uint64_t total = 0;            // records ever appended to this ring
  };

  static constexpr uint32_t Bit(Probe probe) {
    return uint32_t{1} << static_cast<uint32_t>(probe);
  }

  void EmitSlow(Probe probe, uint32_t core, uint32_t pid, uint64_t a0,
                uint64_t a1, uint64_t a2, const TraceFlow* flow);
  void EnsureRings();

  const Nanos* clock_ = nullptr;
  uint32_t armed_mask_ = 0;
  // Bit set iff the probe's predicate constrains anything: lets the armed
  // emit path skip the field-by-field match for the common "*" predicate.
  uint32_t pred_mask_ = 0;
  bool frozen_ = false;
  uint64_t next_seq_ = 0;
  uint64_t overwritten_count_ = 0;
  std::array<ProbePredicate, kNumProbes> predicates_{};
  std::array<uint64_t, kNumProbes> hits_{};
  std::array<uint64_t, kNumProbes> filtered_{};
  std::array<Ring, kNumCores> rings_;
  std::array<Counter*, kNumProbes> hit_counters_{};
  Counter* overwritten_counter_;  // probe.records.dropped
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace norman::telemetry

#endif  // NORMAN_COMMON_TRACEPOINT_H_
