#include "src/common/timeseries.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace norman::telemetry {

void TimeSeries::Push(Nanos t, double value) {
  if (points_.size() < capacity_) {
    points_.push_back(SeriesPoint{t, value});
  } else {
    points_[next_] = SeriesPoint{t, value};
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

const SeriesPoint& TimeSeries::At(size_t i) const {
  assert(i < size());
  if (points_.size() < capacity_) {
    return points_[i];
  }
  // Ring is full: next_ is the oldest slot.
  return points_[(next_ + i) % capacity_];
}

TimeSeriesSampler::TimeSeriesSampler(MetricsRegistry* registry)
    : TimeSeriesSampler(registry, Options()) {}

TimeSeriesSampler::TimeSeriesSampler(MetricsRegistry* registry, Options opts)
    : registry_(registry), opts_(opts) {}

TimeSeries& TimeSeriesSampler::SeriesFor(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, TimeSeries(opts_.capacity)).first;
  }
  return it->second;
}

void TimeSeriesSampler::Sample(Nanos now) {
  if (samples_ > 0 && now <= prev_time_) {
    return;  // zero-width (or time-reversed) window: nothing to derive
  }
  const Nanos window = now - prev_time_;
  const double window_s = static_cast<double>(window) / 1e9;

  // Counters: per-second rate over the elapsed window. A counter that first
  // appears mid-run deltas against zero, matching its actual birth value.
  registry_->ForEachCounter([&](const std::string& name, const Counter& c) {
    const auto it = prev_.values.find(name);
    const int64_t before = it == prev_.values.end() ? 0 : it->second;
    const double delta =
        static_cast<double>(static_cast<int64_t>(c.value()) - before);
    SeriesFor(name + ".rate").Push(now, delta / window_s);
  });
  // Gauges: instantaneous level at the scrape.
  registry_->ForEachGauge([&](const std::string& name, const Gauge& g) {
    SeriesFor(name).Push(now, static_cast<double>(g.value()));
  });
  // Histograms: tail latency (cumulative p99 at the scrape, ns).
  registry_->ForEachHistogram(
      [&](const std::string& name, const LatencyHistogram& h) {
        SeriesFor(name + ".p99").Push(now, static_cast<double>(h.p99()));
      });

  prev_ = registry_->Snapshot();
  prev_time_ = now;
  ++samples_;
}

const TimeSeries* TimeSeriesSampler::Find(std::string_view name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::string> TimeSeriesSampler::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    names.push_back(name);
  }
  return names;
}

std::string TimeSeriesSampler::JsonReport() const {
  std::string out = "{\"samples\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, samples_);
  out += buf;
  out += ",\"series\":{";
  bool first_series = true;
  for (const auto& [name, s] : series_) {
    if (!first_series) out.push_back(',');
    first_series = false;
    out.push_back('"');
    out += name;  // dotted ASCII metric names need no escaping
    out += "\":[";
    for (size_t i = 0; i < s.size(); ++i) {
      if (i > 0) out.push_back(',');
      const SeriesPoint& p = s.At(i);
      std::snprintf(buf, sizeof(buf), "[%lld,%.10g]",
                    static_cast<long long>(p.t), p.value);
      out += buf;
    }
    out.push_back(']');
  }
  out += "}}";
  return out;
}

void TimeSeriesSampler::Clear() {
  series_.clear();
  prev_ = MetricsSnapshot{};
  prev_time_ = 0;
  samples_ = 0;
}

}  // namespace norman::telemetry
