// Reliable, ordered message delivery over Norman's unreliable frame lane.
//
// The library half of the paper's transport story: the NIC dataplane moves
// frames and enforces pacing (congestion control *mechanism*, §4.2), while
// protocol logic that needs no privileged view lives in the application
// library ("the library also implements dataplane functionality that does
// not require privileged interposition", §4.2). ReliableChannel is that
// logic: a sliding-window ARQ with cumulative ACKs, retransmission timers
// with exponential backoff, out-of-order buffering, and duplicate
// suppression — delivering each message exactly once, in order, over a
// lossy, reordering network.
//
// Message-oriented (one Send = one segment), in the spirit of datacenter
// RPC transports rather than a byte-stream TCP clone.
//
// Wire format (inside the UDP payload):
//   [0]    type: 0 = DATA, 1 = ACK
//   [1..4] big-endian sequence number (DATA: this segment;
//          ACK: cumulative — all segments < seq received)
//   [5..]  application payload (DATA only)
#ifndef NORMAN_NORMAN_RELIABLE_H_
#define NORMAN_NORMAN_RELIABLE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/norman/socket.h"
#include "src/sim/simulator.h"

namespace norman {

struct ReliableOptions {
  uint32_t window = 32;           // max unacked segments in flight
  Nanos initial_rto = 200 * kMicrosecond;
  Nanos max_rto = 50 * kMillisecond;
  uint32_t max_retries = 20;      // per segment before the channel fails
  size_t max_reorder_buffer = 256;
};

struct ReliableStats {
  uint64_t messages_sent = 0;       // accepted from the application
  uint64_t segments_transmitted = 0;  // includes retransmissions
  uint64_t retransmissions = 0;
  uint64_t acks_sent = 0;
  uint64_t duplicates_discarded = 0;
  uint64_t out_of_order_buffered = 0;
  uint64_t messages_delivered = 0;
  // RTO visibility (graceful-degradation accounting under wire faults).
  uint64_t rto_expirations = 0;     // timers that fired and were not stale
  uint64_t rto_backoffs = 0;        // exponential-backoff applications
  uint64_t resyncs = 0;             // successful Resync() calls
};

class ReliableChannel {
 public:
  // `socket` must be connected with notify_rx enabled (the channel blocks
  // on the NIC notification queue between arrivals). The channel borrows
  // the socket; it must outlive the channel.
  ReliableChannel(sim::Simulator* sim, kernel::Kernel* kernel,
                  Socket* socket, ReliableOptions options = {});

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  // Delivered exactly once, in order, in virtual time.
  void SetMessageHandler(std::function<void(std::vector<uint8_t>)> handler) {
    on_message_ = std::move(handler);
  }
  // Invoked if a segment exhausts max_retries (peer presumed dead).
  void SetFailureHandler(std::function<void(Status)> handler) {
    on_failure_ = std::move(handler);
  }

  // Queues a message; transmits as the window allows.
  Status Send(std::vector<uint8_t> payload);
  Status Send(const std::string& payload) {
    return Send(std::vector<uint8_t>(payload.begin(), payload.end()));
  }

  // Starts the receive loop (blocking on RX notifications).
  Status Start();

  // Recovers a failed channel after the operator believes the path is back
  // (e.g. a link flap ended): clears the failure, resets retry budgets and
  // the RTO, restarts the receive pump, and retransmits the oldest unacked
  // segment to probe the path. Sequence state is preserved, so the peer's
  // cumulative ACK re-synchronizes both ends without loss or duplication.
  // FailedPrecondition if the channel has not failed.
  Status Resync();

  const ReliableStats& stats() const { return stats_; }
  uint32_t unacked_segments() const {
    return next_seq_ - base_seq_;
  }
  bool failed() const { return failed_; }
  // Why the channel failed; OK while healthy. Send() returns this after
  // failure, so callers see the root cause, not a generic error.
  const Status& last_error() const { return last_error_; }
  // Current retransmission timeout (backs off exponentially under loss,
  // resets on forward progress).
  Nanos current_rto() const { return current_rto_; }

 private:
  struct PendingSegment {
    std::vector<uint8_t> payload;
    uint32_t retries = 0;
  };

  void PumpRx();
  void HandleFrame(std::span<const uint8_t> payload);
  void TransmitWindow();
  void TransmitSegment(uint32_t seq, bool is_retransmit);
  void SendAck();
  void ArmRetransmitTimer();
  void OnRetransmitTimeout(uint64_t timer_generation);
  void Fail(const Status& reason);

  sim::Simulator* sim_;
  kernel::Kernel* kernel_;
  Socket* socket_;
  ReliableOptions options_;

  // Sender state.
  uint32_t base_seq_ = 0;   // oldest unacked
  uint32_t next_seq_ = 0;   // next sequence to assign
  std::map<uint32_t, PendingSegment> in_flight_;  // seq -> segment
  std::deque<std::vector<uint8_t>> send_queue_;   // not yet in the window
  Nanos current_rto_;
  uint64_t timer_generation_ = 0;  // invalidates stale timers
  bool timer_armed_ = false;

  // Receiver state.
  uint32_t expected_seq_ = 0;
  std::map<uint32_t, std::vector<uint8_t>> reorder_buffer_;

  std::function<void(std::vector<uint8_t>)> on_message_;
  std::function<void(Status)> on_failure_;
  ReliableStats stats_;
  bool started_ = false;
  bool failed_ = false;
  Status last_error_ = OkStatus();
  // True while a BlockOnRx waiter is registered with the kernel; Resync()
  // only restarts the pump when the old waiter has already unwound (a
  // failed channel's pump deregisters itself on its next wake-up).
  bool pump_registered_ = false;
};

}  // namespace norman

#endif  // NORMAN_NORMAN_RELIABLE_H_
