#include "src/norman/reliable.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/net/byte_io.h"

namespace norman {
namespace {

constexpr uint8_t kTypeData = 0;
constexpr uint8_t kTypeAck = 1;
constexpr size_t kHeaderBytes = 5;

// Sequence comparison robust to wrap (standard serial-number arithmetic).
bool SeqLess(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) < 0;
}

}  // namespace

ReliableChannel::ReliableChannel(sim::Simulator* sim, kernel::Kernel* kernel,
                                 Socket* socket, ReliableOptions options)
    : sim_(sim),
      kernel_(kernel),
      socket_(socket),
      options_(options),
      current_rto_(options.initial_rto) {}

Status ReliableChannel::Start() {
  if (started_) {
    return FailedPreconditionError("reliable channel already started");
  }
  started_ = true;
  PumpRx();
  return OkStatus();
}

void ReliableChannel::PumpRx() {
  pump_registered_ = false;
  if (failed_) {
    return;  // pump parks until Resync() restarts it
  }
  // Drain whatever is already in the ring, then block for more. The
  // zero-copy lane keeps this loop allocation-free: Payload() reuses the
  // frame's cached parse and HandleFrame reads the bytes in place.
  while (net::PacketPtr frame = socket_->RecvFrame()) {
    HandleFrame(Socket::Payload(static_cast<const net::Packet&>(*frame)));
  }
  const Status blocked = kernel_->BlockOnRx(socket_->conn_id(), [this] {
    PumpRx();
  });
  if (!blocked.ok()) {
    Fail(blocked);
    return;
  }
  pump_registered_ = true;
}

void ReliableChannel::HandleFrame(std::span<const uint8_t> payload) {
  if (payload.size() < kHeaderBytes) {
    return;  // runt; ignore
  }
  const uint8_t type = payload[0];
  const uint32_t seq = net::LoadBe32(&payload[1]);

  if (type == kTypeAck) {
    // Cumulative: everything below `seq` is delivered.
    if (!SeqLess(base_seq_, seq)) {
      return;  // stale ACK
    }
    while (SeqLess(base_seq_, seq)) {
      in_flight_.erase(base_seq_);
      ++base_seq_;
    }
    current_rto_ = options_.initial_rto;  // fresh progress resets backoff
    ++timer_generation_;                  // cancel outstanding timer
    timer_armed_ = false;
    if (!in_flight_.empty()) {
      ArmRetransmitTimer();
    }
    TransmitWindow();
    return;
  }
  if (type != kTypeData) {
    return;
  }

  // Receiver side.
  if (SeqLess(seq, expected_seq_)) {
    ++stats_.duplicates_discarded;
    SendAck();  // re-ACK so the sender stops resending
    return;
  }
  if (seq != expected_seq_) {
    // Out of order: buffer if within bounds; duplicate buffering is a no-op.
    if (reorder_buffer_.size() < options_.max_reorder_buffer &&
        !reorder_buffer_.contains(seq)) {
      reorder_buffer_.emplace(
          seq, std::vector<uint8_t>(payload.begin() + kHeaderBytes,
                                    payload.end()));
      ++stats_.out_of_order_buffered;
    } else if (reorder_buffer_.contains(seq)) {
      ++stats_.duplicates_discarded;
    }
    SendAck();
    return;
  }
  // In-order delivery, plus anything it unblocks.
  std::vector<uint8_t> message(payload.begin() + kHeaderBytes,
                               payload.end());
  ++expected_seq_;
  ++stats_.messages_delivered;
  if (on_message_) {
    on_message_(std::move(message));
  }
  auto it = reorder_buffer_.find(expected_seq_);
  while (it != reorder_buffer_.end()) {
    ++stats_.messages_delivered;
    if (on_message_) {
      on_message_(std::move(it->second));
    }
    reorder_buffer_.erase(it);
    ++expected_seq_;
    it = reorder_buffer_.find(expected_seq_);
  }
  SendAck();
}

void ReliableChannel::SendAck() {
  std::vector<uint8_t> frame(kHeaderBytes);
  frame[0] = kTypeAck;
  net::StoreBe32(&frame[1], expected_seq_);
  ++stats_.acks_sent;
  (void)socket_->Send(frame);  // ACK loss is repaired by retransmission
}

Status ReliableChannel::Send(std::vector<uint8_t> payload) {
  if (failed_) {
    // Surface the root cause, not a generic "failed".
    return last_error_.ok() ? UnavailableError("reliable channel failed")
                            : last_error_;
  }
  ++stats_.messages_sent;
  send_queue_.push_back(std::move(payload));
  TransmitWindow();
  return OkStatus();
}

void ReliableChannel::TransmitWindow() {
  while (!send_queue_.empty() &&
         next_seq_ - base_seq_ < options_.window) {
    const uint32_t seq = next_seq_++;
    in_flight_.emplace(seq,
                       PendingSegment{std::move(send_queue_.front()), 0});
    send_queue_.pop_front();
    TransmitSegment(seq, /*is_retransmit=*/false);
  }
  if (!in_flight_.empty()) {
    ArmRetransmitTimer();
  }
}

void ReliableChannel::TransmitSegment(uint32_t seq, bool is_retransmit) {
  const auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) {
    return;
  }
  std::vector<uint8_t> frame(kHeaderBytes + it->second.payload.size());
  frame[0] = kTypeData;
  net::StoreBe32(&frame[1], seq);
  std::copy(it->second.payload.begin(), it->second.payload.end(),
            frame.begin() + kHeaderBytes);
  ++stats_.segments_transmitted;
  if (is_retransmit) {
    ++stats_.retransmissions;
  }
  // A full TX ring behaves like loss: the retransmit timer recovers.
  (void)socket_->Send(frame);
}

void ReliableChannel::ArmRetransmitTimer() {
  if (timer_armed_) {
    return;
  }
  timer_armed_ = true;
  const uint64_t generation = ++timer_generation_;
  sim_->ScheduleAfter(current_rto_, [this, generation] {
    OnRetransmitTimeout(generation);
  });
}

void ReliableChannel::OnRetransmitTimeout(uint64_t timer_generation) {
  if (failed_ || timer_generation != timer_generation_) {
    return;  // stale timer (progress was made since it was armed)
  }
  timer_armed_ = false;
  if (in_flight_.empty()) {
    return;
  }
  ++stats_.rto_expirations;
  // Go-back-style: retransmit the oldest unacked segment only; the
  // cumulative ACK it triggers tells us where the receiver actually is.
  const uint32_t seq = base_seq_;
  auto it = in_flight_.find(seq);
  if (it == in_flight_.end()) {
    return;
  }
  if (++it->second.retries > options_.max_retries) {
    Fail(UnavailableError("segment " + std::to_string(seq) + " exceeded " +
                          std::to_string(options_.max_retries) +
                          " retries"));
    return;
  }
  TransmitSegment(seq, /*is_retransmit=*/true);
  if (current_rto_ < options_.max_rto) {
    ++stats_.rto_backoffs;
  }
  current_rto_ = std::min(current_rto_ * 2, options_.max_rto);
  ArmRetransmitTimer();
}

Status ReliableChannel::Resync() {
  if (!failed_) {
    return FailedPreconditionError("resync: channel has not failed");
  }
  failed_ = false;
  last_error_ = OkStatus();
  ++stats_.resyncs;
  current_rto_ = options_.initial_rto;
  for (auto& [seq, segment] : in_flight_) {
    segment.retries = 0;
  }
  ++timer_generation_;  // orphan any timer armed before the failure
  timer_armed_ = false;
  if (started_ && !pump_registered_) {
    PumpRx();
  }
  if (!in_flight_.empty()) {
    // Probe the path with the oldest unacked segment; the peer's cumulative
    // ACK tells us how far it actually got while we were dark.
    TransmitSegment(base_seq_, /*is_retransmit=*/true);
    ArmRetransmitTimer();
  } else {
    TransmitWindow();
  }
  return OkStatus();
}

void ReliableChannel::Fail(const Status& reason) {
  if (failed_) {
    return;
  }
  failed_ = true;
  last_error_ = reason;
  if (on_failure_) {
    on_failure_(reason);
  }
}

}  // namespace norman
