// The Norman userspace library (§4.2-§4.3).
//
// "The Norman library provides abstractions that allow applications to
// interface with the network. It provides both POSIX APIs ... as well as
// more efficient abstractions that prevent unnecessary copies."
//
// A Socket is created through the kernel (connect(2)-equivalent); after
// that, Send/Recv are pure memory + doorbell operations against the
// connection's ring pair — the software kernel is not on the datapath.
// Blocking variants register a continuation with the kernel, which wakes it
// from the NIC notification queue (§4.3).
//
// Two data interfaces:
//  * POSIX-ish:   Send(payload) / Recv() / RecvInto(buffer) — one copy each
//                 way (payload <-> frame), familiar semantics;
//  * zero-copy:   SendFrame(PacketPtr) / RecvFrame() — the application
//                 owns/receives whole frames, no payload copies.
//
// Listening is a separate RAII object: see norman::Listener (listener.h).
//
// Error convention (library-wide):
//  * kUnavailable        — would-block / try again later: no data to Recv,
//                          nothing pending to Accept, TX ring full. The
//                          operation is valid; the resource is momentarily
//                          empty or busy.
//  * kNotFound           — the thing you named does not exist: unknown
//                          connection, port nobody listens on.
//  * kFailedPrecondition — the handle itself is unusable (socket not
//                          connected, listener not bound).
// The zero-copy lane is the one deliberate exception: RecvFrame() returns
// nullptr for "no data" instead of a StatusOr, keeping the hot path free of
// status-object construction; nullptr there means exactly kUnavailable.
#ifndef NORMAN_NORMAN_SOCKET_H_
#define NORMAN_NORMAN_SOCKET_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/net/packet.h"
#include "src/net/packet_builder.h"

namespace norman {

struct SocketStats {
  uint64_t tx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t rx_packets = 0;
  uint64_t rx_bytes = 0;
  uint64_t tx_ring_full = 0;
};

class Socket {
 public:
  Socket() = default;

  // connect(2): asks the kernel for a connection to remote_ip:remote_port
  // on behalf of `pid`. The kernel allocates rings, installs the flow with
  // owner metadata, and returns the dataplane capability.
  static StatusOr<Socket> Connect(kernel::Kernel* kernel, kernel::Pid pid,
                                  net::Ipv4Address remote_ip,
                                  uint16_t remote_port,
                                  const kernel::ConnectOptions& opts = {});

  bool valid() const { return kernel_ != nullptr; }
  net::ConnectionId conn_id() const { return port_.conn_id(); }
  const net::FiveTuple& tuple() const { return port_.tuple(); }
  bool software_fallback() const { return port_.software_fallback(); }
  const SocketStats& stats() const { return stats_; }

  // ---- POSIX-ish copying interface ---------------------------------------
  // Builds a frame around `payload` and publishes it. Returns Unavailable
  // when the TX ring is full (use SendBlocking or retry).
  Status Send(std::span<const uint8_t> payload);
  Status Send(const std::string& payload) {
    return Send(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(payload.data()), payload.size()));
  }

  // Non-blocking receive: payload of the next RX frame, or Unavailable.
  StatusOr<std::vector<uint8_t>> Recv();

  // Non-blocking, non-allocating receive: copies the next frame's payload
  // into `buffer` and returns the byte count. Oversized payloads are
  // truncated to the buffer (POSIX datagram semantics); Unavailable when no
  // frame is waiting. The hot-loop alternative to Recv(), which allocates a
  // fresh vector per message.
  StatusOr<size_t> RecvInto(std::span<uint8_t> buffer);

  // ---- Blocking variants (§4.3) -------------------------------------------
  // Runs `done` (in virtual time) once `payload` has been published; if the
  // ring is full, sleeps on the TX-drain notification first. Requires
  // ConnectOptions::notify_tx_drain.
  Status SendBlocking(std::vector<uint8_t> payload,
                      std::function<void(Status)> done);

  // Runs `on_data(payload)` once data is available; delivers immediately if
  // the RX ring is non-empty, otherwise sleeps on the RX notification.
  // Requires ConnectOptions::notify_rx.
  Status RecvBlocking(std::function<void(std::vector<uint8_t>)> on_data);

  // ---- Zero-copy interface -------------------------------------------------
  // Allocates a frame with headers prebuilt for this connection and
  // `payload_size` bytes of payload space; the caller fills Payload() and
  // passes it to SendFrame. No further copies happen on the TX path.
  net::PacketPtr AllocFrame(size_t payload_size);
  // Payload view of a frame produced by AllocFrame / received by RecvFrame.
  static std::span<uint8_t> Payload(net::Packet& frame);
  // Read-only payload view. Uses the frame's cached single-pass parse when
  // present (every frame the NIC delivered has one), so hot RX loops pay no
  // re-parse.
  static std::span<const uint8_t> Payload(const net::Packet& frame);

  // Publishes a frame. Models TX checksum offload: IPv4/L4 checksums are
  // recomputed on the way out, which is what makes the AllocFrame/Payload
  // zero-copy path legal (the builder checksummed a zero payload; the app
  // overwrote it).
  Status SendFrame(net::PacketPtr frame);
  // Whole received frame (headers included), or nullptr when empty.
  net::PacketPtr RecvFrame();
  // Bulk zero-copy receive: fills `out` with up to out.size() whole frames
  // in delivery order (one ring/gauge transaction for the burst — the
  // batched-drain analog of RecvFrame for hot RX loops). Returns the count
  // received; a short count means the RX ring is now empty.
  size_t RecvFrames(std::span<net::PacketPtr> out);

  // close(2).
  Status Close();

 private:
  friend class Listener;  // mints Sockets from accepted connections

  Socket(kernel::Kernel* kernel, kernel::AppPort port)
      : kernel_(kernel), port_(std::move(port)) {}

  net::FrameEndpoints Endpoints() const;

  kernel::Kernel* kernel_ = nullptr;
  kernel::AppPort port_;
  SocketStats stats_;
  uint32_t next_tcp_seq_ = 1;
};

}  // namespace norman

#endif  // NORMAN_NORMAN_SOCKET_H_
