#include "src/norman/socket.h"

#include <algorithm>

#include "src/net/frame_checksum.h"
#include "src/net/parsed_packet.h"

namespace norman {
namespace {

// Reusable all-zero payload for AllocFrame (the app writes the real payload
// afterwards through Payload()); grows monotonically, simulator-threaded.
std::span<const uint8_t> ZeroPayload(size_t n) {
  static std::vector<uint8_t> zeros;
  if (zeros.size() < n) {
    zeros.resize(n, 0);
  }
  return std::span<const uint8_t>(zeros).first(n);
}

}  // namespace

StatusOr<Socket> Socket::Connect(kernel::Kernel* kernel, kernel::Pid pid,
                                 net::Ipv4Address remote_ip,
                                 uint16_t remote_port,
                                 const kernel::ConnectOptions& opts) {
  NORMAN_ASSIGN_OR_RETURN(kernel::AppPort port,
                          kernel->Connect(pid, remote_ip, remote_port, opts));
  return Socket(kernel, std::move(port));
}

net::FrameEndpoints Socket::Endpoints() const {
  return net::FrameEndpoints{port_.local_mac(), port_.gateway_mac(),
                             port_.tuple().src_ip, port_.tuple().dst_ip};
}

net::PacketPtr Socket::AllocFrame(size_t payload_size) {
  const auto& t = port_.tuple();
  const auto zero = ZeroPayload(payload_size);
  if (t.proto == net::IpProto::kTcp) {
    auto p = net::BuildTcpPacket(Endpoints(), t.src_port, t.dst_port,
                                 next_tcp_seq_, 0, net::TcpFlags::kAck, zero);
    next_tcp_seq_ += static_cast<uint32_t>(payload_size);
    return p;
  }
  return net::BuildUdpPacket(Endpoints(), t.src_port, t.dst_port, zero);
}

std::span<uint8_t> Socket::Payload(net::Packet& frame) {
  auto parsed = net::ParseFrame(frame.bytes());
  if (!parsed || parsed->payload_offset == 0) {
    return {};
  }
  return frame.mutable_bytes().subspan(parsed->payload_offset);
}

std::span<const uint8_t> Socket::Payload(const net::Packet& frame) {
  if (const net::ParsedPacket* cached = frame.parsed()) {
    if (cached->payload_offset == 0) {
      return {};
    }
    return frame.bytes().subspan(cached->payload_offset);
  }
  auto parsed = net::ParseFrame(frame.bytes());
  if (!parsed || parsed->payload_offset == 0) {
    return {};
  }
  return frame.bytes().subspan(parsed->payload_offset);
}

Status Socket::SendFrame(net::PacketPtr frame) {
  if (!valid()) {
    return FailedPreconditionError("socket not connected");
  }
  // TX checksum offload: the application may have rewritten the payload of
  // an AllocFrame() frame after the builder checksummed it; the "hardware"
  // recomputes IPv4/L4 checksums on the way out.
  net::FixupFrameChecksums(frame->mutable_bytes());
  const size_t size = frame->size();
  frame->meta().created_at = kernel_->simulator()->Now();
  frame->meta().connection = port_.conn_id();
  if (software_fallback()) {
    NORMAN_RETURN_IF_ERROR(
        kernel_->SoftwareTransmit(port_.conn_id(), std::move(frame)));
  } else {
    if (!port_.PushTx(std::move(frame))) {
      ++stats_.tx_ring_full;
      return UnavailableError("TX ring full");
    }
    NORMAN_RETURN_IF_ERROR(
        port_.RingDoorbell(kernel_->simulator()->Now()));
  }
  ++stats_.tx_packets;
  stats_.tx_bytes += size;
  return OkStatus();
}

Status Socket::Send(std::span<const uint8_t> payload) {
  if (!valid()) {
    return FailedPreconditionError("socket not connected");
  }
  const auto& t = port_.tuple();
  net::PacketPtr frame;
  if (t.proto == net::IpProto::kTcp) {
    frame = net::BuildTcpPacket(Endpoints(), t.src_port, t.dst_port,
                                next_tcp_seq_, 0, net::TcpFlags::kAck,
                                payload);
    next_tcp_seq_ += static_cast<uint32_t>(payload.size());
  } else {
    frame = net::BuildUdpPacket(Endpoints(), t.src_port, t.dst_port, payload);
  }
  return SendFrame(std::move(frame));
}

net::PacketPtr Socket::RecvFrame() {
  if (!valid()) {
    return nullptr;
  }
  net::PacketPtr p = port_.PopRx();
  if (p != nullptr) {
    ++stats_.rx_packets;
    stats_.rx_bytes += p->size();
  }
  return p;
}

size_t Socket::RecvFrames(std::span<net::PacketPtr> out) {
  if (!valid()) {
    return 0;
  }
  const uint32_t n = port_.PopRxN(out);
  for (uint32_t i = 0; i < n; ++i) {
    ++stats_.rx_packets;
    stats_.rx_bytes += out[i]->size();
  }
  return n;
}

StatusOr<std::vector<uint8_t>> Socket::Recv() {
  net::PacketPtr p = RecvFrame();
  if (p == nullptr) {
    return UnavailableError("no data");
  }
  auto payload = Payload(*p);
  return std::vector<uint8_t>(payload.begin(), payload.end());
}

StatusOr<size_t> Socket::RecvInto(std::span<uint8_t> buffer) {
  net::PacketPtr p = RecvFrame();
  if (p == nullptr) {
    return UnavailableError("no data");
  }
  const auto payload = Payload(static_cast<const net::Packet&>(*p));
  const size_t n = std::min(buffer.size(), payload.size());
  std::copy_n(payload.begin(), n, buffer.begin());
  return n;
}

Status Socket::SendBlocking(std::vector<uint8_t> payload,
                            std::function<void(Status)> done) {
  Status first = Send(payload);
  if (first.ok() || first.code() != StatusCode::kUnavailable) {
    done(first);
    return OkStatus();
  }
  // Ring full: sleep until the NIC drains it, then retry once.
  return kernel_->BlockOnTxDrain(
      port_.conn_id(),
      [this, payload = std::move(payload), done = std::move(done)] {
        done(Send(payload));
      });
}

Status Socket::RecvBlocking(
    std::function<void(std::vector<uint8_t>)> on_data) {
  if (!valid()) {
    return FailedPreconditionError("socket not connected");
  }
  auto ready = Recv();
  if (ready.ok()) {
    on_data(std::move(ready).value());
    return OkStatus();
  }
  return kernel_->BlockOnRx(
      port_.conn_id(), [this, on_data = std::move(on_data)] {
        auto data = Recv();
        // A notification without data can only mean the packet raced with a
        // previous consumer; deliver empty payload in that (unexpected) case.
        on_data(data.ok() ? std::move(data).value() : std::vector<uint8_t>{});
      });
}

Status Socket::Close() {
  if (!valid()) {
    return OkStatus();
  }
  const Status s = kernel_->Close(port_.conn_id());
  kernel_ = nullptr;
  return s;
}

}  // namespace norman
