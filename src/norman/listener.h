// RAII listen(2) handle for the Norman library.
//
// A Listener owns the kernel-side listener registration for one
// (port, proto) pair: Create() binds it, the destructor unbinds it, and
// Accept() dequeues pending inbound connections as Sockets. This replaces
// the old static Socket::Listen/Accept/StopListening trio, whose
// registration had no owner — a test that forgot StopListening leaked the
// port into the next scenario.
#ifndef NORMAN_NORMAN_LISTENER_H_
#define NORMAN_NORMAN_LISTENER_H_

#include <cstdint>
#include <utility>

#include "src/kernel/kernel.h"
#include "src/norman/socket.h"

namespace norman {

class Listener {
 public:
  // listen(2): registers `pid` as the listener on local_port. Inbound
  // connections are installed by the kernel as their first packet arrives;
  // `accept_opts` configures the connections Accept() will hand out.
  static StatusOr<Listener> Create(
      kernel::Kernel* kernel, kernel::Pid pid, uint16_t local_port,
      net::IpProto proto = net::IpProto::kUdp,
      const kernel::ConnectOptions& accept_opts = {});

  Listener() = default;
  ~Listener() { Stop(); }

  Listener(Listener&& other) noexcept { MoveFrom(other); }
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      Stop();
      MoveFrom(other);
    }
    return *this;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // accept(2), non-blocking: next pending inbound connection (its first
  // packet is already waiting in the RX ring), or Unavailable when nothing
  // is pending yet (would-block — see the convention in socket.h).
  StatusOr<Socket> Accept();

  // Unbinds the port early (the destructor also does this).
  void Stop();

  bool valid() const { return kernel_ != nullptr; }
  uint16_t port() const { return port_; }
  net::IpProto proto() const { return proto_; }

 private:
  Listener(kernel::Kernel* kernel, kernel::Pid pid, uint16_t port,
           net::IpProto proto)
      : kernel_(kernel), pid_(pid), port_(port), proto_(proto) {}

  void MoveFrom(Listener& other) noexcept {
    kernel_ = std::exchange(other.kernel_, nullptr);
    pid_ = other.pid_;
    port_ = other.port_;
    proto_ = other.proto_;
  }

  kernel::Kernel* kernel_ = nullptr;
  kernel::Pid pid_ = 0;
  uint16_t port_ = 0;
  net::IpProto proto_ = net::IpProto::kUdp;
};

}  // namespace norman

#endif  // NORMAN_NORMAN_LISTENER_H_
