#include "src/norman/listener.h"

namespace norman {

StatusOr<Listener> Listener::Create(kernel::Kernel* kernel, kernel::Pid pid,
                                    uint16_t local_port, net::IpProto proto,
                                    const kernel::ConnectOptions& accept_opts) {
  NORMAN_RETURN_IF_ERROR(kernel->Listen(pid, local_port, proto, accept_opts));
  return Listener(kernel, pid, local_port, proto);
}

StatusOr<Socket> Listener::Accept() {
  if (!valid()) {
    return FailedPreconditionError("listener not bound");
  }
  NORMAN_ASSIGN_OR_RETURN(kernel::AppPort port,
                          kernel_->Accept(pid_, port_));
  return Socket(kernel_, std::move(port));
}

void Listener::Stop() {
  if (!valid()) {
    return;
  }
  (void)kernel_->StopListening(pid_, port_);
  kernel_ = nullptr;
}

}  // namespace norman
