// Core network value types: addresses, protocol numbers, flow tuple.
#ifndef NORMAN_NET_TYPES_H_
#define NORMAN_NET_TYPES_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace norman::net {

// 48-bit Ethernet MAC address.
struct MacAddress {
  std::array<uint8_t, 6> bytes{};

  static MacAddress Broadcast() {
    return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }
  static MacAddress Zero() { return MacAddress{}; }

  // Deterministic per-host address used by test fixtures: 02:4e:4d:xx:xx:xx
  // (locally administered).
  static MacAddress ForHost(uint32_t host_id) {
    return MacAddress{{0x02, 0x4e, 0x4d,
                       static_cast<uint8_t>(host_id >> 16),
                       static_cast<uint8_t>(host_id >> 8),
                       static_cast<uint8_t>(host_id)}};
  }

  bool IsBroadcast() const { return *this == Broadcast(); }

  std::string ToString() const {
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                  bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
    return buf;
  }

  friend bool operator==(const MacAddress&, const MacAddress&) = default;
};

// IPv4 address held in host byte order; serialization handles endianness.
struct Ipv4Address {
  uint32_t addr = 0;

  static constexpr Ipv4Address FromOctets(uint8_t a, uint8_t b, uint8_t c,
                                          uint8_t d) {
    return Ipv4Address{(uint32_t{a} << 24) | (uint32_t{b} << 16) |
                       (uint32_t{c} << 8) | uint32_t{d}};
  }

  std::string ToString() const {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                  (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
    return buf;
  }

  friend bool operator==(const Ipv4Address&, const Ipv4Address&) = default;
  friend auto operator<=>(const Ipv4Address&, const Ipv4Address&) = default;
};

enum class IpProto : uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

enum class EtherType : uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
};

// Connection/flow identity. Addresses and ports in host byte order.
struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  IpProto proto = IpProto::kUdp;

  // The same flow seen from the peer's perspective.
  FiveTuple Reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, proto};
  }

  std::string ToString() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s:%u -> %s:%u/%u",
                  src_ip.ToString().c_str(), src_port,
                  dst_ip.ToString().c_str(), dst_port,
                  static_cast<unsigned>(proto));
    return buf;
  }

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
  // Lexicographic ordering so flow tables can use deterministic sorted maps.
  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;
};

struct FiveTupleHash {
  size_t operator()(const FiveTuple& t) const {
    // FNV-1a over the tuple fields; adequate for hash-table use.
    uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(t.src_ip.addr);
    mix(t.dst_ip.addr);
    mix((uint64_t{t.src_port} << 16) | t.dst_port);
    mix(static_cast<uint64_t>(t.proto));
    return static_cast<size_t>(h);
  }
};

}  // namespace norman::net

#endif  // NORMAN_NET_TYPES_H_
