#include "src/net/packet_builder.h"

#include <cstring>

#include "src/net/byte_io.h"
#include "src/net/checksum.h"
#include "src/net/packet_pool.h"
#include "src/net/parsed_packet.h"

namespace norman::net {
namespace {

// Sequential IPv4 identification for generated frames; wraps naturally.
uint16_t& IpIdCounter() {
  static uint16_t id = 0;
  return id;
}

uint16_t NextIpId() { return ++IpIdCounter(); }

// Writers fill a caller-provided frame of exactly the right size, so both
// the std::vector builders and the pooled-packet builders share one
// serialization path (the pooled path reuses recycled buffer capacity and
// never allocates on a steady-state hot path).

void WriteIpv4Header(std::span<uint8_t> frame, const FrameEndpoints& ep,
                     IpProto proto, size_t l4_size, uint8_t dscp,
                     uint8_t ttl) {
  EthernetHeader eth;
  eth.dst = ep.dst_mac;
  eth.src = ep.src_mac;
  eth.ether_type = static_cast<uint16_t>(EtherType::kIpv4);
  eth.Serialize(frame);

  Ipv4Header ip;
  ip.dscp = dscp;
  ip.total_length = static_cast<uint16_t>(kIpv4MinHeaderSize + l4_size);
  ip.identification = NextIpId();
  ip.ttl = ttl;
  ip.protocol = proto;
  ip.src = ep.src_ip;
  ip.dst = ep.dst_ip;
  ip.Serialize(frame.subspan(kEthernetHeaderSize));
}

size_t UdpFrameSize(std::span<const uint8_t> payload) {
  return kEthernetHeaderSize + kIpv4MinHeaderSize + kUdpHeaderSize +
         payload.size();
}

void WriteUdpFrame(std::span<uint8_t> frame, const FrameEndpoints& ep,
                   uint16_t src_port, uint16_t dst_port,
                   std::span<const uint8_t> payload, uint8_t dscp,
                   uint8_t ttl) {
  const size_t l4_size = kUdpHeaderSize + payload.size();
  WriteIpv4Header(frame, ep, IpProto::kUdp, l4_size, dscp, ttl);
  auto l4 = frame.subspan(kEthernetHeaderSize + kIpv4MinHeaderSize);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<uint16_t>(l4_size);
  udp.checksum = 0;
  udp.Serialize(l4);
  if (!payload.empty()) {
    std::memcpy(l4.data() + kUdpHeaderSize, payload.data(), payload.size());
  }
  udp.checksum = TransportChecksum(ep.src_ip, ep.dst_ip, IpProto::kUdp, l4);
  StoreBe16(l4.data() + 6, udp.checksum);
}

size_t TcpFrameSize(std::span<const uint8_t> payload) {
  return kEthernetHeaderSize + kIpv4MinHeaderSize + kTcpMinHeaderSize +
         payload.size();
}

void WriteTcpFrame(std::span<uint8_t> frame, const FrameEndpoints& ep,
                   uint16_t src_port, uint16_t dst_port, uint32_t seq,
                   uint32_t ack, uint8_t flags,
                   std::span<const uint8_t> payload, uint16_t window) {
  const size_t l4_size = kTcpMinHeaderSize + payload.size();
  WriteIpv4Header(frame, ep, IpProto::kTcp, l4_size, /*dscp=*/0, /*ttl=*/64);
  auto l4 = frame.subspan(kEthernetHeaderSize + kIpv4MinHeaderSize);
  TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = dst_port;
  tcp.seq = seq;
  tcp.ack = ack;
  tcp.flags = flags;
  tcp.window = window;
  tcp.checksum = 0;
  tcp.Serialize(l4);
  if (!payload.empty()) {
    std::memcpy(l4.data() + kTcpMinHeaderSize, payload.data(), payload.size());
  }
  tcp.checksum = TransportChecksum(ep.src_ip, ep.dst_ip, IpProto::kTcp, l4);
  StoreBe16(l4.data() + 16, tcp.checksum);
}

size_t IcmpFrameSize(std::span<const uint8_t> payload) {
  return kEthernetHeaderSize + kIpv4MinHeaderSize + kIcmpHeaderSize +
         payload.size();
}

void WriteIcmpEchoFrame(std::span<uint8_t> frame, const FrameEndpoints& ep,
                        IcmpType type, uint16_t identifier, uint16_t sequence,
                        std::span<const uint8_t> payload) {
  const size_t l4_size = kIcmpHeaderSize + payload.size();
  WriteIpv4Header(frame, ep, IpProto::kIcmp, l4_size, /*dscp=*/0,
                  /*ttl=*/64);
  auto l4 = frame.subspan(kEthernetHeaderSize + kIpv4MinHeaderSize);
  IcmpHeader icmp;
  icmp.type = type;
  icmp.identifier = identifier;
  icmp.sequence = sequence;
  icmp.checksum = 0;
  icmp.Serialize(l4);
  if (!payload.empty()) {
    std::memcpy(l4.data() + kIcmpHeaderSize, payload.data(), payload.size());
  }
  icmp.checksum = InternetChecksum(l4);
  StoreBe16(l4.data() + 2, icmp.checksum);
}

constexpr size_t kArpFrameSize = kEthernetHeaderSize + kArpBodySize;

void WriteArpRequest(std::span<uint8_t> frame, MacAddress sender_mac,
                     Ipv4Address sender_ip, Ipv4Address target_ip) {
  EthernetHeader eth;
  eth.dst = MacAddress::Broadcast();
  eth.src = sender_mac;
  eth.ether_type = static_cast<uint16_t>(EtherType::kArp);
  eth.Serialize(frame);
  ArpMessage arp;
  arp.op = ArpOp::kRequest;
  arp.sender_mac = sender_mac;
  arp.sender_ip = sender_ip;
  arp.target_mac = MacAddress::Zero();
  arp.target_ip = target_ip;
  arp.Serialize(frame.subspan(kEthernetHeaderSize));
}

void WriteArpReply(std::span<uint8_t> frame, MacAddress sender_mac,
                   Ipv4Address sender_ip, MacAddress requester_mac,
                   Ipv4Address requester_ip) {
  EthernetHeader eth;
  eth.dst = requester_mac;
  eth.src = sender_mac;
  eth.ether_type = static_cast<uint16_t>(EtherType::kArp);
  eth.Serialize(frame);
  ArpMessage arp;
  arp.op = ArpOp::kReply;
  arp.sender_mac = sender_mac;
  arp.sender_ip = sender_ip;
  arp.target_mac = requester_mac;
  arp.target_ip = requester_ip;
  arp.Serialize(frame.subspan(kEthernetHeaderSize));
}

}  // namespace

void ResetIpIdCounterForTest() { IpIdCounter() = 0; }

std::vector<uint8_t> BuildUdpFrame(const FrameEndpoints& ep, uint16_t src_port,
                                   uint16_t dst_port,
                                   std::span<const uint8_t> payload,
                                   uint8_t dscp, uint8_t ttl) {
  std::vector<uint8_t> frame(UdpFrameSize(payload));
  WriteUdpFrame(frame, ep, src_port, dst_port, payload, dscp, ttl);
  return frame;
}

PacketPtr BuildUdpPacket(const FrameEndpoints& ep, uint16_t src_port,
                         uint16_t dst_port, std::span<const uint8_t> payload,
                         uint8_t dscp, uint8_t ttl) {
  PacketPtr p = PacketPool::Default().AcquireUninitialized(UdpFrameSize(payload));
  WriteUdpFrame(p->mutable_bytes(), ep, src_port, dst_port, payload, dscp,
                ttl);
  return p;
}

std::vector<uint8_t> BuildTcpFrame(const FrameEndpoints& ep, uint16_t src_port,
                                   uint16_t dst_port, uint32_t seq,
                                   uint32_t ack, uint8_t flags,
                                   std::span<const uint8_t> payload,
                                   uint16_t window) {
  std::vector<uint8_t> frame(TcpFrameSize(payload));
  WriteTcpFrame(frame, ep, src_port, dst_port, seq, ack, flags, payload,
                window);
  return frame;
}

PacketPtr BuildTcpPacket(const FrameEndpoints& ep, uint16_t src_port,
                         uint16_t dst_port, uint32_t seq, uint32_t ack,
                         uint8_t flags, std::span<const uint8_t> payload,
                         uint16_t window) {
  PacketPtr p = PacketPool::Default().AcquireUninitialized(TcpFrameSize(payload));
  WriteTcpFrame(p->mutable_bytes(), ep, src_port, dst_port, seq, ack, flags,
                payload, window);
  return p;
}

std::vector<uint8_t> BuildIcmpEchoFrame(const FrameEndpoints& ep,
                                        IcmpType type, uint16_t identifier,
                                        uint16_t sequence,
                                        std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame(IcmpFrameSize(payload));
  WriteIcmpEchoFrame(frame, ep, type, identifier, sequence, payload);
  return frame;
}

PacketPtr BuildIcmpEchoPacket(const FrameEndpoints& ep, IcmpType type,
                              uint16_t identifier, uint16_t sequence,
                              std::span<const uint8_t> payload) {
  PacketPtr p = PacketPool::Default().AcquireUninitialized(IcmpFrameSize(payload));
  WriteIcmpEchoFrame(p->mutable_bytes(), ep, type, identifier, sequence,
                     payload);
  return p;
}

std::vector<uint8_t> BuildArpRequest(MacAddress sender_mac,
                                     Ipv4Address sender_ip,
                                     Ipv4Address target_ip) {
  std::vector<uint8_t> frame(kArpFrameSize);
  WriteArpRequest(frame, sender_mac, sender_ip, target_ip);
  return frame;
}

PacketPtr BuildArpRequestPacket(MacAddress sender_mac, Ipv4Address sender_ip,
                                Ipv4Address target_ip) {
  PacketPtr p = PacketPool::Default().AcquireUninitialized(kArpFrameSize);
  WriteArpRequest(p->mutable_bytes(), sender_mac, sender_ip, target_ip);
  return p;
}

std::vector<uint8_t> BuildArpReply(MacAddress sender_mac,
                                   Ipv4Address sender_ip,
                                   MacAddress requester_mac,
                                   Ipv4Address requester_ip) {
  std::vector<uint8_t> frame(kArpFrameSize);
  WriteArpReply(frame, sender_mac, sender_ip, requester_mac, requester_ip);
  return frame;
}

PacketPtr BuildArpReplyPacket(MacAddress sender_mac, Ipv4Address sender_ip,
                              MacAddress requester_mac,
                              Ipv4Address requester_ip) {
  PacketPtr p = PacketPool::Default().AcquireUninitialized(kArpFrameSize);
  WriteArpReply(p->mutable_bytes(), sender_mac, sender_ip, requester_mac,
                requester_ip);
  return p;
}

namespace {

// Incremental checksum update per RFC 1624: HC' = ~(~HC + ~m + m').
uint16_t IncrementalFix(uint16_t csum, uint16_t old16, uint16_t new16) {
  uint32_t sum = static_cast<uint32_t>(static_cast<uint16_t>(~csum));
  sum += static_cast<uint16_t>(~old16);
  sum += new16;
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

struct RewriteOffsets {
  size_t ip_addr;     // offset of the address to rewrite (src or dst)
  size_t ip_csum;     // IPv4 checksum offset
  size_t l4_port;     // offset of port to rewrite
  size_t l4_csum;     // transport checksum offset
  bool udp;           // UDP semantics for zero checksum
};

bool FindOffsets(std::span<uint8_t> frame, bool source, RewriteOffsets* out) {
  auto parsed = ParseFrame(frame);
  if (!parsed || !parsed->ipv4 || (!parsed->udp && !parsed->tcp)) {
    return false;
  }
  const size_t l3 = parsed->l3_offset;
  const size_t l4 = parsed->l4_offset;
  out->ip_addr = l3 + (source ? 12 : 16);
  out->ip_csum = l3 + 10;
  out->l4_port = l4 + (source ? 0 : 2);
  out->udp = parsed->is_udp();
  out->l4_csum = l4 + (out->udp ? 6 : 16);
  return true;
}

bool Rewrite(std::span<uint8_t> frame, bool source, Ipv4Address new_ip,
             uint16_t new_port) {
  RewriteOffsets off;
  if (!FindOffsets(frame, source, &off)) {
    return false;
  }
  const uint32_t old_ip = LoadBe32(&frame[off.ip_addr]);
  const uint16_t old_port = LoadBe16(&frame[off.l4_port]);

  // IPv4 header checksum: fix for the two 16-bit halves of the address.
  uint16_t ip_csum = LoadBe16(&frame[off.ip_csum]);
  ip_csum = IncrementalFix(ip_csum, static_cast<uint16_t>(old_ip >> 16),
                           static_cast<uint16_t>(new_ip.addr >> 16));
  ip_csum = IncrementalFix(ip_csum, static_cast<uint16_t>(old_ip),
                           static_cast<uint16_t>(new_ip.addr));
  StoreBe16(&frame[off.ip_csum], ip_csum);

  // Transport checksum covers the pseudo header (address) and the port.
  uint16_t l4_csum = LoadBe16(&frame[off.l4_csum]);
  const bool udp_no_csum = off.udp && l4_csum == 0;
  if (!udp_no_csum) {
    l4_csum = IncrementalFix(l4_csum, static_cast<uint16_t>(old_ip >> 16),
                             static_cast<uint16_t>(new_ip.addr >> 16));
    l4_csum = IncrementalFix(l4_csum, static_cast<uint16_t>(old_ip),
                             static_cast<uint16_t>(new_ip.addr));
    l4_csum = IncrementalFix(l4_csum, old_port, new_port);
    if (off.udp && l4_csum == 0) {
      l4_csum = 0xffff;
    }
    StoreBe16(&frame[off.l4_csum], l4_csum);
  }

  StoreBe32(&frame[off.ip_addr], new_ip.addr);
  StoreBe16(&frame[off.l4_port], new_port);
  return true;
}

}  // namespace

bool RewriteSource(std::span<uint8_t> frame, Ipv4Address new_src_ip,
                   uint16_t new_src_port) {
  return Rewrite(frame, /*source=*/true, new_src_ip, new_src_port);
}

bool RewriteDestination(std::span<uint8_t> frame, Ipv4Address new_dst_ip,
                        uint16_t new_dst_port) {
  return Rewrite(frame, /*source=*/false, new_dst_ip, new_dst_port);
}

}  // namespace norman::net
