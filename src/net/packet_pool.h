// Slab/free-list recycler for Packet buffers — the allocation half of the
// zero-allocation hot path.
//
// Every simulated packet used to be a fresh heap Packet plus a fresh
// std::vector buffer; at millions of events per second the allocator
// dominates wall-clock time (the malloc-on-the-datapath sin FlexTOE and
// OSMOSIS eliminate with pooled descriptors). PacketPool keeps released
// Packets on capacity-bucketed free lists so a steady-state run reuses the
// same handful of buffers: Acquire(size) returns a packet whose vector
// already has at least `size` capacity, so Resize() never reallocates.
//
// The pool is strictly single-threaded, like the simulator it serves.
#ifndef NORMAN_NET_PACKET_POOL_H_
#define NORMAN_NET_PACKET_POOL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/net/packet.h"

namespace norman::net {

class PacketPool {
 public:
  // Capacity classes: 64B..8KiB in power-of-two steps, plus an oversize
  // class for jumbo buffers (recycled by exact-fit search).
  static constexpr size_t kMinBucketBytes = 64;
  static constexpr size_t kMaxBucketBytes = 8192;
  static constexpr size_t kNumBuckets = 8;  // 64,128,...,8192

  // `max_free_per_bucket` bounds each free list; releases beyond it fall
  // back to plain deallocation (pool exhaustion on the release side).
  explicit PacketPool(size_t max_free_per_bucket = 4096);
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // A packet with `size` zeroed bytes (same contents a freshly constructed
  // Packet{std::vector<uint8_t>(size)} would have — recycled buffers must
  // not leak stale bytes into deterministic runs).
  PacketPtr Acquire(size_t size);

  // Like Acquire but skips the zero fill: the buffer may hold arbitrary
  // recycled bytes. Only for callers that overwrite every byte of the frame
  // (the packet builders); anything else must use Acquire so stale bytes
  // cannot leak into deterministic runs.
  PacketPtr AcquireUninitialized(size_t size);

  // A packet adopting `bytes` wholesale (builder output, pcap records).
  // Recycles the Packet object; the vector buffer is the caller's.
  PacketPtr Adopt(std::vector<uint8_t> bytes);

  // Returns `p` to the free lists (called by PacketDeleter; not public API
  // for users, who just drop their PacketPtr).
  void Release(Packet* p);

  const PoolCounters& counters() const { return counters_; }
  size_t free_packets() const;

  // The process-wide pool every construction helper routes through.
  static PacketPool& Default();

 private:
  static size_t BucketFor(size_t bytes);

  PacketPtr AcquireImpl(size_t size, bool zeroed);
  Packet* TakeFrom(size_t bucket);

  size_t max_free_per_bucket_;
  std::array<std::vector<Packet*>, kNumBuckets + 1> free_;  // +1: oversize
  PoolCounters counters_{"packet"};
};

// Pool-backed construction helpers (the replacements for
// std::make_unique<net::Packet>(...) across the stack).
PacketPtr MakePacket(std::vector<uint8_t> bytes);
PacketPtr MakePacket(size_t size);

}  // namespace norman::net

#endif  // NORMAN_NET_PACKET_POOL_H_
