#include "src/net/checksum.h"

#include "src/net/byte_io.h"

namespace norman::net {

uint32_t ChecksumPartial(std::span<const uint8_t> data, uint32_t sum) {
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += LoadBe16(&data[i]);
  }
  if (i < data.size()) {
    // Odd trailing byte is padded with zero on the right.
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  return sum;
}

uint16_t ChecksumFinish(uint32_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

uint16_t InternetChecksum(std::span<const uint8_t> data) {
  return ChecksumFinish(ChecksumPartial(data));
}

uint16_t TransportChecksum(Ipv4Address src, Ipv4Address dst, IpProto proto,
                           std::span<const uint8_t> l4) {
  uint8_t pseudo[12];
  StoreBe32(&pseudo[0], src.addr);
  StoreBe32(&pseudo[4], dst.addr);
  pseudo[8] = 0;
  pseudo[9] = static_cast<uint8_t>(proto);
  StoreBe16(&pseudo[10], static_cast<uint16_t>(l4.size()));
  uint32_t sum = ChecksumPartial(std::span<const uint8_t>(pseudo, 12));
  sum = ChecksumPartial(l4, sum);
  uint16_t csum = ChecksumFinish(sum);
  // Per RFC 768, a computed UDP checksum of zero is transmitted as 0xffff.
  if (csum == 0 && proto == IpProto::kUdp) {
    csum = 0xffff;
  }
  return csum;
}

}  // namespace norman::net
