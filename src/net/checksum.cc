#include "src/net/checksum.h"

#include <bit>
#include <cstring>

#include "src/net/byte_io.h"

namespace norman::net {

// Sums 64-bit chunks natively and converts the folded result to the
// big-endian word convention at the end. Valid because the ones-complement
// sum is byte-order independent (RFC 1071 §2B): byte-swapping every 16-bit
// operand and the folded result yields the same value, so we can defer the
// swap out of the loop. Each chunk starts at even parity within `data`, and
// the caller-visible contract (a uint32 partial folded by ChecksumFinish)
// is unchanged — ones-complement addition lets partials be folded early.
uint32_t ChecksumPartial(std::span<const uint8_t> data, uint32_t sum) {
  const uint8_t* p = data.data();
  size_t n = data.size();
  uint64_t acc = 0;
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    acc += (w & 0xffffffffULL) + (w >> 32);
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    uint32_t w;
    std::memcpy(&w, p, 4);
    acc += w;
    p += 4;
    n -= 4;
  }
  if (n >= 2) {
    uint16_t w;
    std::memcpy(&w, p, 2);
    acc += w;
    p += 2;
    n -= 2;
  }
  // Fold 64 -> 16 bits with end-around carries, in native word order.
  acc = (acc & 0xffffffffULL) + (acc >> 32);
  acc = (acc & 0xffffffffULL) + (acc >> 32);
  uint32_t folded = static_cast<uint32_t>(acc);
  folded = (folded & 0xffff) + (folded >> 16);
  folded = (folded & 0xffff) + (folded >> 16);
  if constexpr (std::endian::native == std::endian::little) {
    folded = ((folded & 0xff) << 8) | (folded >> 8);
  }
  sum += folded;
  if (n != 0) {
    // Odd trailing byte is padded with zero on the right.
    sum += static_cast<uint32_t>(*p) << 8;
  }
  return sum;
}

uint16_t ChecksumFinish(uint32_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

uint16_t InternetChecksum(std::span<const uint8_t> data) {
  return ChecksumFinish(ChecksumPartial(data));
}

uint16_t TransportChecksum(Ipv4Address src, Ipv4Address dst, IpProto proto,
                           std::span<const uint8_t> l4) {
  uint8_t pseudo[12];
  StoreBe32(&pseudo[0], src.addr);
  StoreBe32(&pseudo[4], dst.addr);
  pseudo[8] = 0;
  pseudo[9] = static_cast<uint8_t>(proto);
  StoreBe16(&pseudo[10], static_cast<uint16_t>(l4.size()));
  uint32_t sum = ChecksumPartial(std::span<const uint8_t>(pseudo, 12));
  sum = ChecksumPartial(l4, sum);
  uint16_t csum = ChecksumFinish(sum);
  // Per RFC 768, a computed UDP checksum of zero is transmitted as 0xffff.
  if (csum == 0 && proto == IpProto::kUdp) {
    csum = 0xffff;
  }
  return csum;
}

}  // namespace norman::net
