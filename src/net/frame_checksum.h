// Whole-frame checksum verification and recomputation.
//
// The graceful-degradation half of the fault model: the wire can damage
// bytes (sim::FaultInjector), so RX ingest verifies the IPv4 header
// checksum and the L4 checksum before a frame is allowed past the NIC
// (DropReason::kCorrupt). The TX side models checksum offload: frames the
// library publishes get their checksums recomputed at SendFrame time, which
// is what makes the zero-copy AllocFrame/Payload path legal — the builder
// checksummed a zero payload, the application overwrote it, the "hardware"
// fixes it up on the way out.
#ifndef NORMAN_NET_FRAME_CHECKSUM_H_
#define NORMAN_NET_FRAME_CHECKSUM_H_

#include <span>

#include "src/net/parsed_packet.h"

namespace norman::net {

// True iff the frame's IPv4 header checksum and, when present, its UDP/TCP/
// ICMP checksum are valid. `parsed` must describe `frame` (same bytes). A
// UDP checksum of zero means "not computed" (RFC 768) and passes. Frames
// that are not IPv4 — ARP, unparsed garbage — vacuously pass: the dataplane
// forwards what it cannot parse, and only corruption of understood headers
// is detectable.
bool FrameChecksumsValid(std::span<const uint8_t> frame,
                         const ParsedPacket& parsed);

// Recomputes the IPv4 header checksum and the L4 checksum in place (TX
// checksum offload). Returns false (frame untouched) when the frame does
// not parse as IPv4 — there is nothing to fix on a non-IP frame.
bool FixupFrameChecksums(std::span<uint8_t> frame);

}  // namespace norman::net

#endif  // NORMAN_NET_FRAME_CHECKSUM_H_
