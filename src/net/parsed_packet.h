// Full-frame parser: Ethernet -> {ARP | IPv4 -> {UDP | TCP | ICMP}}.
//
// Produces a ParsedPacket with decoded headers plus byte offsets into the
// original frame, so the filter engine and the overlay VM agree on where
// each field lives.
#ifndef NORMAN_NET_PARSED_PACKET_H_
#define NORMAN_NET_PARSED_PACKET_H_

#include <optional>
#include <span>

#include "src/net/headers.h"
#include "src/net/types.h"

namespace norman::net {

struct ParsedPacket {
  EthernetHeader eth;
  std::optional<ArpMessage> arp;
  std::optional<Ipv4Header> ipv4;
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  std::optional<IcmpHeader> icmp;

  size_t l3_offset = 0;       // start of ARP/IPv4
  size_t l4_offset = 0;       // start of UDP/TCP/ICMP (0 if none)
  size_t payload_offset = 0;  // start of application payload (0 if none)
  size_t frame_size = 0;

  bool is_arp() const { return arp.has_value(); }
  bool is_ipv4() const { return ipv4.has_value(); }
  bool is_udp() const { return udp.has_value(); }
  bool is_tcp() const { return tcp.has_value(); }
  bool is_icmp() const { return icmp.has_value(); }

  // Flow identity for IPv4/TCP|UDP packets; nullopt otherwise.
  std::optional<FiveTuple> flow() const;

  size_t payload_size() const {
    return payload_offset == 0 ? 0 : frame_size - payload_offset;
  }
};

// Parses a frame. Returns nullopt only if the Ethernet header itself is
// truncated; unknown/garbled upper layers simply leave the optionals empty
// (the dataplane forwards frames it cannot parse rather than dropping them).
std::optional<ParsedPacket> ParseFrame(std::span<const uint8_t> frame);

}  // namespace norman::net

#endif  // NORMAN_NET_PARSED_PACKET_H_
