#include "src/net/frame_checksum.h"

#include <algorithm>

#include "src/net/byte_io.h"
#include "src/net/checksum.h"
#include "src/net/headers.h"

namespace norman::net {

namespace {

// Ones-complement sum of the pseudo header plus the L4 segment *including*
// its stored checksum folds to zero iff the checksum is valid; the RFC 768
// "transmit 0 as 0xffff" substitution also folds to zero, so one test
// covers both encodings.
bool TransportChecksumFolds(Ipv4Address src, Ipv4Address dst, IpProto proto,
                            std::span<const uint8_t> l4) {
  uint8_t pseudo[12];
  StoreBe32(&pseudo[0], src.addr);
  StoreBe32(&pseudo[4], dst.addr);
  pseudo[8] = 0;
  pseudo[9] = static_cast<uint8_t>(proto);
  StoreBe16(&pseudo[10], static_cast<uint16_t>(l4.size()));
  uint32_t sum = ChecksumPartial(std::span<const uint8_t>(pseudo, 12));
  sum = ChecksumPartial(l4, sum);
  return ChecksumFinish(sum) == 0;
}

// The L4 bytes the checksum covers: from l4_offset to the end of the IP
// datagram, clamped to the frame (a frame shorter than total_length cannot
// verify and reads as corrupt, which is the right answer for a truncated
// datagram).
std::span<const uint8_t> L4Span(std::span<const uint8_t> frame,
                                const ParsedPacket& parsed) {
  const size_t ip_len = parsed.ipv4->total_length;
  const size_t header_len = parsed.l4_offset - parsed.l3_offset;
  if (ip_len < header_len) {
    return frame.subspan(parsed.l4_offset);
  }
  const size_t l4_len =
      std::min(ip_len - header_len, frame.size() - parsed.l4_offset);
  return frame.subspan(parsed.l4_offset, l4_len);
}

}  // namespace

bool FrameChecksumsValid(std::span<const uint8_t> frame,
                         const ParsedPacket& parsed) {
  if (!parsed.is_ipv4() ||
      frame.size() < parsed.l3_offset + kIpv4MinHeaderSize) {
    return true;  // nothing verifiable
  }
  if (!Ipv4Header::ChecksumValid(
          frame.subspan(parsed.l3_offset, kIpv4MinHeaderSize))) {
    return false;
  }
  if (parsed.l4_offset == 0 || parsed.l4_offset >= frame.size()) {
    return true;  // unknown or absent L4: IP header was the whole contract
  }
  const auto l4 = L4Span(frame, parsed);
  if (parsed.is_udp()) {
    if (l4.size() < kUdpHeaderSize) {
      return false;
    }
    if (LoadBe16(&l4[6]) == 0) {
      return true;  // UDP checksum not computed by the sender (RFC 768)
    }
    return TransportChecksumFolds(parsed.ipv4->src, parsed.ipv4->dst,
                                  IpProto::kUdp, l4);
  }
  if (parsed.is_tcp()) {
    if (l4.size() < kTcpMinHeaderSize) {
      return false;
    }
    return TransportChecksumFolds(parsed.ipv4->src, parsed.ipv4->dst,
                                  IpProto::kTcp, l4);
  }
  if (parsed.is_icmp()) {
    return l4.size() >= kIcmpHeaderSize && ChecksumFinish(ChecksumPartial(l4)) == 0;
  }
  return true;
}

bool FixupFrameChecksums(std::span<uint8_t> frame) {
  auto parsed = ParseFrame(frame);
  if (!parsed || !parsed->is_ipv4() ||
      frame.size() < parsed->l3_offset + kIpv4MinHeaderSize) {
    return false;
  }
  // IPv4 header checksum.
  const size_t ip_csum_at = parsed->l3_offset + 10;
  StoreBe16(&frame[ip_csum_at], 0);
  StoreBe16(&frame[ip_csum_at],
            InternetChecksum(
                frame.subspan(parsed->l3_offset, kIpv4MinHeaderSize)));
  if (parsed->l4_offset == 0 || parsed->l4_offset >= frame.size()) {
    return true;
  }
  auto l4 = frame.subspan(parsed->l4_offset,
                          L4Span(frame, *parsed).size());
  if (parsed->is_udp() && l4.size() >= kUdpHeaderSize) {
    StoreBe16(&l4[6], 0);
    StoreBe16(&l4[6], TransportChecksum(parsed->ipv4->src, parsed->ipv4->dst,
                                        IpProto::kUdp, l4));
  } else if (parsed->is_tcp() && l4.size() >= kTcpMinHeaderSize) {
    StoreBe16(&l4[16], 0);
    StoreBe16(&l4[16], TransportChecksum(parsed->ipv4->src, parsed->ipv4->dst,
                                         IpProto::kTcp, l4));
  } else if (parsed->is_icmp() && l4.size() >= kIcmpHeaderSize) {
    StoreBe16(&l4[2], 0);
    StoreBe16(&l4[2], InternetChecksum(l4));
  }
  return true;
}

}  // namespace norman::net
