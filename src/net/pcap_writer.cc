#include "src/net/pcap_writer.h"

#include <cstdio>
#include <memory>

namespace norman::net {
namespace {

constexpr uint32_t kPcapMagic = 0xa1b2c3d4;  // microsecond-resolution pcap
constexpr uint16_t kVersionMajor = 2;
constexpr uint16_t kVersionMinor = 4;
constexpr uint32_t kLinkTypeEthernet = 1;

uint32_t ReadLe32(const uint8_t* p) {
  return uint32_t{p[0]} | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}

}  // namespace

PcapWriter::PcapWriter(uint32_t snaplen) : snaplen_(snaplen) {
  // Global header, little-endian (the native convention for writers).
  Append32(kPcapMagic);
  Append16(kVersionMajor);
  Append16(kVersionMinor);
  Append32(0);  // thiszone
  Append32(0);  // sigfigs
  Append32(snaplen_);
  Append32(kLinkTypeEthernet);
}

void PcapWriter::Append32(uint32_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
  buffer_.push_back(static_cast<uint8_t>(v >> 16));
  buffer_.push_back(static_cast<uint8_t>(v >> 24));
}

void PcapWriter::Append16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void PcapWriter::AddRecord(Nanos timestamp, std::span<const uint8_t> frame) {
  const uint32_t captured =
      static_cast<uint32_t>(std::min<size_t>(frame.size(), snaplen_));
  Append32(static_cast<uint32_t>(timestamp / kSecond));
  Append32(static_cast<uint32_t>((timestamp % kSecond) / kMicrosecond));
  Append32(captured);
  Append32(static_cast<uint32_t>(frame.size()));
  buffer_.insert(buffer_.end(), frame.begin(), frame.begin() + captured);
  ++record_count_;
}

Status PcapWriter::WriteToFile(const std::string& path) const {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) {
    return UnavailableError("cannot open " + path);
  }
  if (std::fwrite(buffer_.data(), 1, buffer_.size(), f.get()) !=
      buffer_.size()) {
    return UnavailableError("short write to " + path);
  }
  return OkStatus();
}

StatusOr<std::vector<PcapRecord>> ParsePcap(std::span<const uint8_t> file) {
  constexpr size_t kGlobalHeader = 24;
  constexpr size_t kRecordHeader = 16;
  if (file.size() < kGlobalHeader) {
    return InvalidArgumentError("pcap: truncated global header");
  }
  if (ReadLe32(file.data()) != kPcapMagic) {
    return InvalidArgumentError("pcap: bad magic");
  }
  if (ReadLe32(file.data() + 20) != kLinkTypeEthernet) {
    return InvalidArgumentError("pcap: unexpected link type");
  }
  std::vector<PcapRecord> records;
  size_t off = kGlobalHeader;
  while (off < file.size()) {
    if (off + kRecordHeader > file.size()) {
      return InvalidArgumentError("pcap: truncated record header");
    }
    PcapRecord rec;
    const uint32_t sec = ReadLe32(file.data() + off);
    const uint32_t usec = ReadLe32(file.data() + off + 4);
    const uint32_t captured = ReadLe32(file.data() + off + 8);
    rec.original_length = ReadLe32(file.data() + off + 12);
    rec.timestamp =
        static_cast<Nanos>(sec) * kSecond + static_cast<Nanos>(usec) * kMicrosecond;
    off += kRecordHeader;
    if (off + captured > file.size()) {
      return InvalidArgumentError("pcap: truncated record body");
    }
    rec.bytes.assign(file.begin() + off, file.begin() + off + captured);
    off += captured;
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace norman::net
