// Alignment-safe big-endian (network order) loads and stores.
//
// Header serialization never casts structs onto byte buffers; all field
// access goes through these helpers, which compile to single moves on
// little-endian targets.
#ifndef NORMAN_NET_BYTE_IO_H_
#define NORMAN_NET_BYTE_IO_H_

#include <cstdint>
#include <cstring>

namespace norman::net {

inline uint8_t LoadU8(const uint8_t* p) { return p[0]; }

inline uint16_t LoadBe16(const uint8_t* p) {
  return static_cast<uint16_t>((uint16_t{p[0]} << 8) | p[1]);
}

inline uint32_t LoadBe32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) |
         (uint32_t{p[2]} << 8) | uint32_t{p[3]};
}

inline void StoreU8(uint8_t* p, uint8_t v) { p[0] = v; }

inline void StoreBe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

inline void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

}  // namespace norman::net

#endif  // NORMAN_NET_BYTE_IO_H_
