// Frame construction helpers used by workloads, tests and the dataplane
// (ARP replies, NAT rewrites). All builders produce complete wire frames
// with valid IPv4 and transport checksums.
#ifndef NORMAN_NET_PACKET_BUILDER_H_
#define NORMAN_NET_PACKET_BUILDER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/net/headers.h"
#include "src/net/packet_pool.h"
#include "src/net/types.h"

namespace norman::net {

struct FrameEndpoints {
  MacAddress src_mac;
  MacAddress dst_mac;
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
};

// Rewinds the process-global IPv4 identification counter. Tests that build
// two identical traffic sequences in one process (e.g. a cache-off vs
// cache-on parity run) call this so the generated frames are byte-identical.
void ResetIpIdCounterForTest();

// UDP datagram frame.
std::vector<uint8_t> BuildUdpFrame(const FrameEndpoints& ep, uint16_t src_port,
                                   uint16_t dst_port,
                                   std::span<const uint8_t> payload,
                                   uint8_t dscp = 0, uint8_t ttl = 64);

// TCP segment frame (no options).
std::vector<uint8_t> BuildTcpFrame(const FrameEndpoints& ep, uint16_t src_port,
                                   uint16_t dst_port, uint32_t seq,
                                   uint32_t ack, uint8_t flags,
                                   std::span<const uint8_t> payload,
                                   uint16_t window = 65535);

// ICMP echo request/reply frame.
std::vector<uint8_t> BuildIcmpEchoFrame(const FrameEndpoints& ep,
                                        IcmpType type, uint16_t identifier,
                                        uint16_t sequence,
                                        std::span<const uint8_t> payload);

// ARP request: who-has target_ip, tell sender. Sent to broadcast.
std::vector<uint8_t> BuildArpRequest(MacAddress sender_mac,
                                     Ipv4Address sender_ip,
                                     Ipv4Address target_ip);

// ARP reply: target_ip is-at sender_mac, unicast to requester.
std::vector<uint8_t> BuildArpReply(MacAddress sender_mac,
                                   Ipv4Address sender_ip,
                                   MacAddress requester_mac,
                                   Ipv4Address requester_ip);

// Pooled-packet builders: identical wire frames, but the buffer comes from
// PacketPool::Default() so steady-state construction performs no heap
// allocation. These are the hot-path entry points; the std::vector builders
// above remain for callers that want raw bytes.
PacketPtr BuildUdpPacket(const FrameEndpoints& ep, uint16_t src_port,
                         uint16_t dst_port, std::span<const uint8_t> payload,
                         uint8_t dscp = 0, uint8_t ttl = 64);
PacketPtr BuildTcpPacket(const FrameEndpoints& ep, uint16_t src_port,
                         uint16_t dst_port, uint32_t seq, uint32_t ack,
                         uint8_t flags, std::span<const uint8_t> payload,
                         uint16_t window = 65535);
PacketPtr BuildIcmpEchoPacket(const FrameEndpoints& ep, IcmpType type,
                              uint16_t identifier, uint16_t sequence,
                              std::span<const uint8_t> payload);
PacketPtr BuildArpRequestPacket(MacAddress sender_mac, Ipv4Address sender_ip,
                                Ipv4Address target_ip);
PacketPtr BuildArpReplyPacket(MacAddress sender_mac, Ipv4Address sender_ip,
                              MacAddress requester_mac,
                              Ipv4Address requester_ip);

// In-place rewrites used by the NAT stage: update addresses/ports and fix
// IPv4 + transport checksums incrementally. Frame must be valid IPv4+UDP/TCP.
// Returns false if the frame cannot be rewritten (not IPv4 UDP/TCP).
bool RewriteSource(std::span<uint8_t> frame, Ipv4Address new_src_ip,
                   uint16_t new_src_port);
bool RewriteDestination(std::span<uint8_t> frame, Ipv4Address new_dst_ip,
                        uint16_t new_dst_port);

}  // namespace norman::net

#endif  // NORMAN_NET_PACKET_BUILDER_H_
