// RFC 1071 internet checksum and the TCP/UDP pseudo-header variant.
#ifndef NORMAN_NET_CHECKSUM_H_
#define NORMAN_NET_CHECKSUM_H_

#include <cstdint>
#include <span>

#include "src/net/types.h"

namespace norman::net {

// One's-complement sum folded to 16 bits, *not* yet complemented.
uint32_t ChecksumPartial(std::span<const uint8_t> data, uint32_t sum = 0);

// Fold a partial sum and complement it into a final checksum value.
uint16_t ChecksumFinish(uint32_t sum);

// Full internet checksum of a buffer.
uint16_t InternetChecksum(std::span<const uint8_t> data);

// TCP/UDP checksum over the IPv4 pseudo header plus the L4 segment.
// `l4` must include the transport header with its checksum field zeroed.
uint16_t TransportChecksum(Ipv4Address src, Ipv4Address dst, IpProto proto,
                           std::span<const uint8_t> l4);

}  // namespace norman::net

#endif  // NORMAN_NET_CHECKSUM_H_
