// Protocol header codecs: Ethernet, ARP, IPv4, UDP, TCP, ICMP.
//
// Each header type is a plain value struct with Parse/Serialize functions.
// Parsing is bounds-checked and returns std::nullopt on truncation; the
// overlay VM and filter engine operate on the same wire offsets these
// codecs define (see overlay/field_offsets.h).
#ifndef NORMAN_NET_HEADERS_H_
#define NORMAN_NET_HEADERS_H_

#include <cstdint>
#include <optional>
#include <span>

#include "src/net/types.h"

namespace norman::net {

inline constexpr size_t kEthernetHeaderSize = 14;
inline constexpr size_t kArpBodySize = 28;
inline constexpr size_t kIpv4MinHeaderSize = 20;
inline constexpr size_t kUdpHeaderSize = 8;
inline constexpr size_t kTcpMinHeaderSize = 20;
inline constexpr size_t kIcmpHeaderSize = 8;

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  uint16_t ether_type = 0;

  static std::optional<EthernetHeader> Parse(std::span<const uint8_t> data);
  // Writes kEthernetHeaderSize bytes; `out` must be large enough.
  void Serialize(std::span<uint8_t> out) const;
};

enum class ArpOp : uint16_t { kRequest = 1, kReply = 2 };

struct ArpMessage {
  ArpOp op = ArpOp::kRequest;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;

  static std::optional<ArpMessage> Parse(std::span<const uint8_t> data);
  void Serialize(std::span<uint8_t> out) const;  // kArpBodySize bytes
};

struct Ipv4Header {
  uint8_t dscp = 0;
  uint16_t total_length = 0;
  uint16_t identification = 0;
  uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  uint16_t checksum = 0;  // as parsed; filled by Serialize when compute_checksum
  Ipv4Address src;
  Ipv4Address dst;

  size_t header_length() const { return kIpv4MinHeaderSize; }  // no options

  static std::optional<Ipv4Header> Parse(std::span<const uint8_t> data);
  // Serializes a 20-byte header. If compute_checksum, fills the checksum
  // field from the serialized bytes (and updates this->checksum).
  void Serialize(std::span<uint8_t> out, bool compute_checksum = true);
  // Validates the checksum of a raw header.
  static bool ChecksumValid(std::span<const uint8_t> header_bytes);
};

struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;
  uint16_t checksum = 0;

  static std::optional<UdpHeader> Parse(std::span<const uint8_t> data);
  void Serialize(std::span<uint8_t> out) const;  // kUdpHeaderSize bytes
};

// TCP flag bits (wire positions).
struct TcpFlags {
  static constexpr uint8_t kFin = 0x01;
  static constexpr uint8_t kSyn = 0x02;
  static constexpr uint8_t kRst = 0x04;
  static constexpr uint8_t kPsh = 0x08;
  static constexpr uint8_t kAck = 0x10;
};

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t data_offset_words = 5;  // header length in 32-bit words
  uint8_t flags = 0;
  uint16_t window = 65535;
  uint16_t checksum = 0;

  size_t header_length() const { return size_t{data_offset_words} * 4; }

  static std::optional<TcpHeader> Parse(std::span<const uint8_t> data);
  void Serialize(std::span<uint8_t> out) const;  // kTcpMinHeaderSize bytes
};

enum class IcmpType : uint8_t { kEchoReply = 0, kEchoRequest = 8 };

struct IcmpHeader {
  IcmpType type = IcmpType::kEchoRequest;
  uint8_t code = 0;
  uint16_t checksum = 0;
  uint16_t identifier = 0;
  uint16_t sequence = 0;

  static std::optional<IcmpHeader> Parse(std::span<const uint8_t> data);
  void Serialize(std::span<uint8_t> out) const;  // kIcmpHeaderSize bytes
};

}  // namespace norman::net

#endif  // NORMAN_NET_HEADERS_H_
