#include "src/net/packet_pool.h"

#include <bit>

namespace norman::net {

void PacketDeleter::operator()(Packet* p) const noexcept {
  if (p == nullptr) {
    return;
  }
  if (p->pool_ != nullptr) {
    p->pool_->Release(p);
  } else {
    delete p;
  }
}

PacketPool::PacketPool(size_t max_free_per_bucket)
    : max_free_per_bucket_(max_free_per_bucket) {}

PacketPool::~PacketPool() {
  for (auto& bucket : free_) {
    for (Packet* p : bucket) {
      delete p;
    }
  }
}

size_t PacketPool::BucketFor(size_t bytes) {
  // Index of the smallest capacity class >= bytes; kNumBuckets = oversize.
  size_t cls = kMinBucketBytes;
  for (size_t i = 0; i < kNumBuckets; ++i, cls *= 2) {
    if (bytes <= cls) {
      return i;
    }
  }
  return kNumBuckets;
}

Packet* PacketPool::TakeFrom(size_t bucket) {
  auto& list = free_[bucket];
  if (list.empty()) {
    return nullptr;
  }
  Packet* p = list.back();
  list.pop_back();
  return p;
}

PacketPtr PacketPool::Acquire(size_t size) {
  return AcquireImpl(size, /*zeroed=*/true);
}

PacketPtr PacketPool::AcquireUninitialized(size_t size) {
  return AcquireImpl(size, /*zeroed=*/false);
}

PacketPtr PacketPool::AcquireImpl(size_t size, bool zeroed) {
  Packet* p = nullptr;
  if (size <= kMaxBucketBytes) {
    // Release() buckets by floor(capacity), so every packet in the ceil
    // bucket of `size` has capacity >= size: the resize below cannot
    // realloc.
    p = TakeFrom(BucketFor(size));
  } else {
    // Oversize: first-fit search of the (bounded) jumbo list.
    auto& jumbo = free_[kNumBuckets];
    for (size_t i = 0; i < jumbo.size(); ++i) {
      if (jumbo[i]->bytes_.capacity() >= size) {
        p = jumbo[i];
        jumbo[i] = jumbo.back();
        jumbo.pop_back();
        break;
      }
    }
  }
  const bool hit = p != nullptr;
  if (!hit) {
    p = new Packet();
    // Reserve the full capacity class so the buffer lands back in the same
    // bucket on release regardless of the exact frame size it carried.
    size_t cls = kMinBucketBytes;
    while (cls < size) {
      cls *= 2;
    }
    p->bytes_.reserve(cls);
  }
  if (zeroed) {
    p->bytes_.assign(size, 0);
  } else {
    // Released buffers keep their old size, so a same-class reuse shrinks
    // (or grows by a zero-filled tail) without touching the payload bytes
    // the caller is about to overwrite.
    p->bytes_.resize(size);
  }
  p->meta_ = PacketMeta{};
  p->parsed_.reset();
  p->pool_ = this;
  counters_.RecordAcquire(hit);
  return PacketPtr(p);
}

PacketPtr PacketPool::Adopt(std::vector<uint8_t> bytes) {
  // Reuse a free Packet shell from the smallest bucket (its recycled buffer,
  // if any, is dropped in favor of the adopted one); adopted buffers enter
  // the capacity buckets once the packet is released.
  Packet* p = TakeFrom(0);
  const bool hit = p != nullptr;
  if (!hit) {
    p = new Packet();
  }
  p->bytes_ = std::move(bytes);
  p->meta_ = PacketMeta{};
  p->parsed_.reset();
  p->pool_ = this;
  counters_.RecordAcquire(hit);
  return PacketPtr(p);
}

void PacketPool::Release(Packet* p) {
  const size_t cap = p->bytes_.capacity();
  // Floor bucket: the largest class the capacity fully covers, so Acquire's
  // ceil-bucket lookup always finds a big-enough buffer.
  size_t bucket = 0;
  if (cap > kMaxBucketBytes) {
    bucket = kNumBuckets;
  } else {
    size_t cls = kMinBucketBytes;
    while (bucket + 1 < kNumBuckets && cls * 2 <= cap) {
      cls *= 2;
      ++bucket;
    }
    if (cap < kMinBucketBytes) {
      bucket = 0;  // shells and runt buffers share the smallest bucket
    }
  }
  auto& list = free_[bucket];
  const bool keep = list.size() < max_free_per_bucket_;
  if (keep) {
    // Contents (and size) are kept as-is: AcquireUninitialized reuses the
    // buffer without rewriting it, and Acquire re-zeroes explicitly.
    list.push_back(p);
  } else {
    delete p;
  }
  counters_.RecordRelease(keep);
}

size_t PacketPool::free_packets() const {
  size_t n = 0;
  for (const auto& bucket : free_) {
    n += bucket.size();
  }
  return n;
}

PacketPool& PacketPool::Default() {
  // Leaky singleton: outlives every static that might still hold a
  // PacketPtr at exit. Free lists stay reachable, so LSan is silent.
  static PacketPool* pool = new PacketPool();
  return *pool;
}

PacketPtr MakePacket(std::vector<uint8_t> bytes) {
  return PacketPool::Default().Adopt(std::move(bytes));
}

PacketPtr MakePacket(size_t size) { return PacketPool::Default().Acquire(size); }

}  // namespace norman::net
