// Packet buffer and simulation metadata.
//
// A Packet owns its bytes (wire format, starting at the Ethernet header) and
// carries sideband metadata the simulated hardware attaches as the packet
// moves: timestamps, the RSS queue, and — crucially for KOPI — the identity
// of the *sending connection*, which the kernel stamped into the NIC flow
// table at connection setup. The identity travels as metadata, never as
// packet bytes, mirroring how a real on-NIC dataplane knows the source ring
// (and therefore the owning process) of every TX descriptor.
#ifndef NORMAN_NET_PACKET_H_
#define NORMAN_NET_PACKET_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/common/units.h"
#include "src/net/parsed_packet.h"
#include "src/net/types.h"

namespace norman::net {

// Identifies a NIC-visible connection (== one ring-buffer pair). 0 is
// reserved for "unknown / not from a registered connection".
using ConnectionId = uint32_t;
inline constexpr ConnectionId kUnknownConnection = 0;

enum class Direction : uint8_t { kTx, kRx };

struct PacketMeta {
  Nanos created_at = 0;       // when the app/workload produced it
  Nanos nic_arrival = 0;      // when it entered the NIC pipeline
  Nanos completed_at = 0;     // when it hit the wire / app ring
  Direction direction = Direction::kTx;
  ConnectionId connection = kUnknownConnection;
  uint16_t rx_queue = 0;      // RSS result (RX only)
  uint32_t flow_hash = 0;
  bool software_fallback = false;  // diverted through host slow path (E7)
  // Owning process, stamped where the dataplane first resolves it (flow
  // entry owner on TX, kernel fallback-connection owner on injected
  // frames). Carried so later charge points (wire drain) can attribute
  // cycles without re-walking the flow table. 0 = no registered owner.
  uint32_t owner_pid = 0;
  // Owning tenant (kernel-assigned; 0 = untenanted), stamped alongside
  // owner_pid from the flow entry so per-tenant cycle shares and drop
  // attribution work anywhere in the pipeline.
  uint32_t tenant = 0;
  // Lifecycle tracing (telemetry::PacketTracer): nonzero when this packet
  // was sampled at NIC arrival; spans are recorded under this id.
  uint32_t trace_id = 0;
  // When the TX scheduler accepted the packet (start of the qdisc-wait
  // span; meaningful only while trace_id != 0).
  Nanos sched_enqueued_at = 0;
};

class PacketPool;

class Packet {
 public:
  Packet() = default;
  explicit Packet(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  std::span<const uint8_t> bytes() const { return bytes_; }
  std::span<uint8_t> mutable_bytes() { return bytes_; }
  size_t size() const { return bytes_.size(); }

  void Resize(size_t n) { bytes_.resize(n); }

  PacketMeta& meta() { return meta_; }
  const PacketMeta& meta() const { return meta_; }

  // Cached single-pass parse of bytes(). The NIC parses each frame once on
  // pipeline entry and re-parses *only* after a stage mutates the bytes
  // (NAT); everything downstream — schedulers, RSS, observers — reads this
  // instead of re-walking the headers. Nullptr until SetParsed; invalidated
  // whenever the frame is rewritten without a fresh parse.
  const ParsedPacket* parsed() const {
    return parsed_.has_value() ? &*parsed_ : nullptr;
  }
  void SetParsed(std::optional<ParsedPacket> parsed) {
    parsed_ = std::move(parsed);
  }
  void InvalidateParse() { parsed_.reset(); }

 private:
  friend class PacketPool;
  friend struct PacketDeleter;

  std::vector<uint8_t> bytes_;
  PacketMeta meta_;
  std::optional<ParsedPacket> parsed_;
  // Owning pool, or nullptr for plain heap/stack packets. Set by PacketPool
  // on acquisition; PacketDeleter routes the buffer back through it.
  PacketPool* pool_ = nullptr;
};

// Deleter for pooled packets: returns the buffer to its owning pool (which
// recycles Packet + vector capacity) or plain-deletes unpooled packets.
struct PacketDeleter {
  void operator()(Packet* p) const noexcept;
};

// Owning packet handle. The deleter is stateless, so PacketPtr can still be
// constructed directly from a raw pointer (release()/re-wrap round trips).
using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

}  // namespace norman::net

#endif  // NORMAN_NET_PACKET_H_
