// Standard libpcap file writer (magic 0xa1b2c3d4, LINKTYPE_ETHERNET).
//
// The KOPI sniffer tap (tools/tcpdump) serializes captured frames through
// this writer; output is byte-compatible with files tcpdump/wireshark read.
// Timestamps come from virtual simulation time.
#ifndef NORMAN_NET_PCAP_WRITER_H_
#define NORMAN_NET_PCAP_WRITER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace norman::net {

class PcapWriter {
 public:
  // snaplen: maximum bytes captured per frame (rest is truncated, with the
  // original length recorded, exactly like `tcpdump -s`).
  explicit PcapWriter(uint32_t snaplen = 65535);

  // Appends one record with the given virtual timestamp.
  void AddRecord(Nanos timestamp, std::span<const uint8_t> frame);

  uint64_t record_count() const { return record_count_; }

  // The complete file image (global header + records written so far).
  const std::vector<uint8_t>& buffer() const { return buffer_; }

  // Writes the buffer to a file.
  Status WriteToFile(const std::string& path) const;

 private:
  void Append32(uint32_t v);
  void Append16(uint16_t v);

  uint32_t snaplen_;
  uint64_t record_count_ = 0;
  std::vector<uint8_t> buffer_;
};

// Minimal reader used by tests and the debugging example to inspect
// captures produced by PcapWriter.
struct PcapRecord {
  Nanos timestamp = 0;
  uint32_t original_length = 0;
  std::vector<uint8_t> bytes;
};

StatusOr<std::vector<PcapRecord>> ParsePcap(std::span<const uint8_t> file);

}  // namespace norman::net

#endif  // NORMAN_NET_PCAP_WRITER_H_
