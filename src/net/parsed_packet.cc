#include "src/net/parsed_packet.h"

namespace norman::net {

std::optional<FiveTuple> ParsedPacket::flow() const {
  if (!ipv4) {
    return std::nullopt;
  }
  FiveTuple t;
  t.src_ip = ipv4->src;
  t.dst_ip = ipv4->dst;
  t.proto = ipv4->protocol;
  if (udp) {
    t.src_port = udp->src_port;
    t.dst_port = udp->dst_port;
  } else if (tcp) {
    t.src_port = tcp->src_port;
    t.dst_port = tcp->dst_port;
  } else if (icmp) {
    t.src_port = 0;
    t.dst_port = 0;
  } else {
    return std::nullopt;
  }
  return t;
}

std::optional<ParsedPacket> ParseFrame(std::span<const uint8_t> frame) {
  auto eth = EthernetHeader::Parse(frame);
  if (!eth) {
    return std::nullopt;
  }
  ParsedPacket p;
  p.eth = *eth;
  p.frame_size = frame.size();
  p.l3_offset = kEthernetHeaderSize;
  auto l3 = frame.subspan(kEthernetHeaderSize);

  if (eth->ether_type == static_cast<uint16_t>(EtherType::kArp)) {
    p.arp = ArpMessage::Parse(l3);
    return p;
  }
  if (eth->ether_type != static_cast<uint16_t>(EtherType::kIpv4)) {
    return p;  // unknown L3; leave upper layers empty
  }
  p.ipv4 = Ipv4Header::Parse(l3);
  if (!p.ipv4) {
    return p;
  }
  p.l4_offset = p.l3_offset + p.ipv4->header_length();
  auto l4 = frame.subspan(p.l4_offset);

  switch (p.ipv4->protocol) {
    case IpProto::kUdp:
      p.udp = UdpHeader::Parse(l4);
      if (p.udp) {
        p.payload_offset = p.l4_offset + kUdpHeaderSize;
      }
      break;
    case IpProto::kTcp:
      p.tcp = TcpHeader::Parse(l4);
      if (p.tcp) {
        p.payload_offset = p.l4_offset + p.tcp->header_length();
      }
      break;
    case IpProto::kIcmp:
      p.icmp = IcmpHeader::Parse(l4);
      if (p.icmp) {
        p.payload_offset = p.l4_offset + kIcmpHeaderSize;
      }
      break;
  }
  if (p.payload_offset > p.frame_size) {
    p.payload_offset = p.frame_size;
  }
  return p;
}

}  // namespace norman::net
