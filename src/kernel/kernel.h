// The in-kernel control plane (§4.2, §4.4).
//
// The kernel is the only holder of the SmartNIC's control-plane capability.
// It allocates network resources to applications (connections, rings,
// doorbells), stamps process identity into the NIC flow table, composes and
// configures the on-NIC dataplane (filter chains, qdiscs, sniffer taps, ARP,
// conntrack, NAT), monitors notification queues to wake blocked threads,
// and services the administrative tools (norman-iptables/tc/tcpdump/
// netstat/arp in src/tools) — all of which "continue to be routed through
// the kernel".
#ifndef NORMAN_KERNEL_KERNEL_H_
#define NORMAN_KERNEL_KERNEL_H_

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/health.h"
#include "src/common/status.h"
#include "src/common/timeseries.h"
#include "src/dataplane/arp_service.h"
#include "src/dataplane/conntrack.h"
#include "src/dataplane/filter_engine.h"
#include "src/dataplane/icmp_responder.h"
#include "src/dataplane/nat.h"
#include "src/dataplane/overlay_stage.h"
#include "src/dataplane/qdisc.h"
#include "src/dataplane/rate_limiter.h"
#include "src/dataplane/sniffer.h"
#include "src/dataplane/spoof_guard.h"
#include "src/kernel/app_port.h"
#include "src/kernel/process.h"
#include "src/kernel/tenant.h"
#include "src/net/types.h"
#include "src/nic/smart_nic.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace norman::kernel {

// Which filter chain a rule goes to (iptables INPUT/OUTPUT equivalents).
enum class Chain { kInput, kOutput };

// NIC overlay slot allocation: 0/1 carry tenant-loaded policies (charged
// against TenantSpec::overlay_slots); 2/3 back the kernel's custom-policy
// stages.
inline constexpr size_t kTenantTxSlot = 0;
inline constexpr size_t kTenantRxSlot = 1;
inline constexpr size_t kCustomTxSlot = 2;
inline constexpr size_t kCustomRxSlot = 3;

struct ConnectOptions {
  net::IpProto proto = net::IpProto::kUdp;
  bool notify_rx = false;        // post notifications for blocking recv
  bool notify_tx_drain = false;  // post notifications for blocking send
  uint16_t local_port = 0;       // 0 = ephemeral
  // When NIC SRAM is exhausted, fall back to the host software path instead
  // of failing (§5 mitigation). Fallback connections have no NIC ring; their
  // traffic is charged host-CPU costs.
  bool allow_software_fallback = false;
};

struct ConnectionInfo {
  net::ConnectionId conn_id = net::kUnknownConnection;
  net::FiveTuple tuple;
  Pid pid = 0;
  Uid uid = 0;
  std::string comm;
  bool software_fallback = false;
  uint64_t tx_packets = 0;
  uint64_t rx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t rx_bytes = 0;
};

class Kernel {
 public:
  struct Options {
    net::Ipv4Address host_ip = net::Ipv4Address::FromOctets(10, 0, 0, 1);
    net::MacAddress host_mac = net::MacAddress::ForHost(1);
    net::MacAddress gateway_mac = net::MacAddress::ForHost(0xfffffe);
    // Sweep period for conntrack GC and notification polling fallback.
    Nanos housekeeping_period = 10 * kMillisecond;
  };

  Kernel(sim::Simulator* sim, nic::SmartNic* nic, Options options);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  sim::Simulator* simulator() { return sim_; }
  ProcessTable& processes() { return processes_; }
  const ProcessTable& processes() const { return processes_; }
  const Options& options() const { return options_; }

  // ---- Connection lifecycle (connect(2)-equivalents) ---------------------
  StatusOr<AppPort> Connect(Pid pid, net::Ipv4Address remote_ip,
                            uint16_t remote_port, const ConnectOptions& opts);
  Status Close(net::ConnectionId conn_id);

  // ---- Server side: listen(2)/accept(2) ----------------------------------
  // Registers `pid` as the listener on local_port/proto. The first inbound
  // packet of each new peer auto-installs a NIC connection stamped with the
  // listener's identity and queues it for Accept; the packet itself lands
  // in the new connection's RX ring (nothing is lost).
  Status Listen(Pid pid, uint16_t local_port, net::IpProto proto,
                const ConnectOptions& accept_opts = {});
  // Pops one pending inbound connection; NotFound when none is waiting.
  // Only the listening pid may accept.
  StatusOr<AppPort> Accept(Pid pid, uint16_t local_port);
  Status StopListening(Pid pid, uint16_t local_port);

  // netstat's data source: every live connection with owner + counters.
  std::vector<ConnectionInfo> ListConnections() const;

  // ---- Blocking I/O (§4.3) ------------------------------------------------
  // Registers a continuation to run when the next RX-data notification for
  // `conn_id` arrives. Charges a context switch to the kernel core. The
  // connection must have been opened with notify_rx.
  Status BlockOnRx(net::ConnectionId conn_id, std::function<void()> resume);
  // Same for TX-ring drain.
  Status BlockOnTxDrain(net::ConnectionId conn_id,
                        std::function<void()> resume);

  // Kernel CPU time spent on wakeups (context switches) — E5's metric.
  const sim::Resource& kernel_core() const { return kernel_core_; }

  // ---- Declarative NIC configuration (root-only) --------------------------
  // Applies a whole NicConfig atomically: every field is validated before
  // any of them takes effect, so a rejected config leaves the dataplane
  // exactly as it was (the error names the offending field). The accreted
  // per-feature calls (EnableNat, StartMaintenance, and the control plane's
  // EnableFlowCache/EnableSharding/EnableTopTalkers) remain as thin
  // deprecated shims over the same state.
  Status Configure(Uid caller, const NicConfig& config);
  const NicConfig& active_config() const { return active_config_; }

  // ---- Multi-tenant isolation (root-only) ---------------------------------
  // Registers `tenant_uid`'s resource envelope and returns the RAII handle
  // that owns it; the handle's destruction (or Release) unwinds everything:
  // quotas cleared, WFQ share removed, the tenant's connections closed, any
  // held overlay slots freed. Tenant identity is the uid itself; every
  // connection a process of that uid opens is stamped and charged to it.
  // Fails kAlreadyExists if the uid is already a tenant.
  StatusOr<Tenant> CreateTenant(Uid caller, Uid tenant_uid,
                                const TenantSpec& spec);
  // Unwinds a tenant by id (the Tenant handle calls this).
  Status ReleaseTenant(TenantId tenant);
  // Tenant a uid's traffic is charged to; kSystemTenant when unregistered.
  TenantId TenantOf(Uid uid) const;
  const TenantSpec* FindTenantSpec(TenantId tenant) const;
  size_t tenant_count() const { return tenants_.size(); }

  // Loads a tenant-owned overlay program into the chain's tenant slot,
  // charged against TenantSpec::overlay_slots. kResourceExhausted when the
  // tenant's slot quota is spent; kUnavailable when another tenant holds
  // the chain's slot (retry later — nothing of the caller's is consumed).
  // An empty program releases the slot.
  StatusOr<Nanos> LoadTenantPolicy(TenantId tenant, Chain chain,
                                   const overlay::Program& program);

  // ---- Administrative configuration (root-only syscalls) -----------------
  // iptables: first-match rule chains compiled to the NIC overlay.
  StatusOr<size_t> AppendFilterRule(Uid caller, Chain chain,
                                    const dataplane::FilterRule& rule);
  Status DeleteFilterRule(Uid caller, Chain chain, size_t index);
  Status FlushFilterRules(Uid caller, Chain chain);
  const dataplane::FilterEngine& filter(Chain chain) const;

  // tc: replace the TX queueing discipline on the NIC. The kernel wraps
  // every discipline in a transparent per-connection pacer (rate limits
  // survive qdisc swaps).
  Status SetQdisc(Uid caller, std::unique_ptr<nic::Scheduler> qdisc);

  // Per-connection TX rate limit enforced by the NIC pacer (SENIC-style;
  // also the knob a congestion-control module drives). rate 0 clears.
  Status SetConnRateLimit(Uid caller, net::ConnectionId conn,
                          BitsPerSecond rate_bps, uint64_t burst_bytes);

  // Packets contending for the wire inside the TX discipline (excludes
  // per-connection pacer queues) — the congestion signal for rate control.
  size_t LinkBacklog() const { return pacer_->inner_backlog(); }

  // Custom overlay policies (§4.4's "add eBPF support" path, without the
  // bitstream update): verifies + loads `program` into the chain's reserved
  // NIC slot; it runs as the last stage of that chain. Returns the hardware
  // load time. An empty program clears the slot.
  StatusOr<Nanos> LoadCustomPolicy(Uid caller, Chain chain,
                                   const overlay::Program& program);

  // On-NIC ICMP echo responder stats.
  const dataplane::IcmpResponder& icmp() const { return *icmp_; }

  // TX anti-spoofing stats (frames dropped for forged headers).
  const dataplane::SpoofGuard& spoof_guard() const { return *spoof_guard_; }

  // tcpdump: the NIC sniffer tap (sees both directions).
  Status StartCapture(Uid caller,
                      std::optional<overlay::Program> filter = std::nullopt);
  Status StopCapture(Uid caller);
  const dataplane::SnifferTap& sniffer() const { return *sniffer_; }
  dataplane::SnifferTap& mutable_sniffer() { return *sniffer_; }

  // arp: the NIC's ARP cache and TX-side ARP observations.
  const dataplane::ArpService& arp() const { return *arp_; }

  // conntrack view.
  const dataplane::Conntrack& conntrack() const { return *conntrack_; }

  // Enable source NAT for a private prefix (root only).
  // Deprecated shim: prefer Configure() with NicConfig::nat, which
  // validates the whole configuration before applying any of it.
  Status EnableNat(Uid caller, net::Ipv4Address private_prefix,
                   uint32_t prefix_len, net::Ipv4Address public_ip);
  const dataplane::NatEngine* nat() const { return nat_.get(); }

  // Helper for rules that match on a process name: interned comm id.
  uint32_t CommIdFor(const std::string& comm) {
    return processes_.InternComm(comm);
  }

  // Direct access for experiments: the NIC control-plane capability stays
  // inside the kernel, but benchmarks need read access to NIC state.
  nic::SmartNic::ControlPlane& nic_control() { return *nic_cp_; }

  // Software-fallback TX: used by AppPort-less fallback connections. The
  // packet is charged host-kernel costs and then injected at the NIC.
  Status SoftwareTransmit(net::ConnectionId conn_id, net::PacketPtr packet);

  // On-demand housekeeping (conntrack GC). Tools call this before reads.
  void Housekeeping();

  // ---- Continuous monitoring (the time dimension of interposition) -------
  // Starts the periodic maintenance tick: every housekeeping_period it runs
  // conntrack expiry, scrapes the registry into the time-series sampler,
  // and evaluates the health watchdog — all on the virtual clock.
  //
  // Opt-in and self-limiting: the tick re-arms only while other events are
  // pending, so an idle world still terminates (a free-running timer would
  // keep the DES alive forever) and default goldens are unaffected.
  // Deprecated shim: prefer Configure() with NicConfig::maintenance.
  void StartMaintenance();
  void StopMaintenance() { maintenance_on_ = false; }
  bool maintenance_running() const { return maintenance_on_; }
  uint64_t maintenance_ticks() const { return maintenance_ticks_; }

  telemetry::TimeSeriesSampler& sampler() { return *sampler_; }
  const telemetry::TimeSeriesSampler& sampler() const { return *sampler_; }
  telemetry::HealthWatchdog& watchdog() { return *watchdog_; }
  const telemetry::HealthWatchdog& watchdog() const { return *watchdog_; }

  // Host-slow-path drops, itemized in the registry as "kernel.drop.*"
  // (malformed / unmatched / sram_exhausted).
  uint64_t slow_path_drops() const {
    return drop_malformed_->value() + drop_unmatched_->value() +
           drop_sram_exhausted_->value();
  }

 private:
  struct FallbackConn {
    net::FiveTuple tuple;
    overlay::ConnMetadata owner;
  };

  Status RequireRoot(Uid caller) const;
  void InstallPipeline();
  void PumpNotifications(Pid pid);
  void MaintenanceTick();
  void InstallDefaultHealthRules();
  // (Re)installs the per-tenant WFQ TX discipline classifying on owner uid
  // with the registered cycle weights — the wire-side half of tenant
  // isolation (the pipeline half lives in the NIC's TenantTable).
  void InstallTenantQdisc();

  sim::Simulator* sim_;
  nic::SmartNic* nic_;
  Options options_;
  // Aggregate accept-queue occupancy across listeners ("queue.kernel.accept").
  telemetry::QueueDepthGauges accept_gauges_;
  std::unique_ptr<telemetry::TimeSeriesSampler> sampler_;
  std::unique_ptr<telemetry::HealthWatchdog> watchdog_;
  bool maintenance_on_ = false;
  uint64_t maintenance_ticks_ = 0;
  std::unique_ptr<nic::SmartNic::ControlPlane> nic_cp_;

  ProcessTable processes_;

  // On-NIC dataplane components (owned by the kernel, installed on the NIC).
  std::unique_ptr<dataplane::FilterEngine> filter_input_;
  std::unique_ptr<dataplane::FilterEngine> filter_output_;
  std::unique_ptr<dataplane::SnifferTap> sniffer_;
  std::unique_ptr<dataplane::ArpService> arp_;
  std::unique_ptr<dataplane::IcmpResponder> icmp_;
  std::unique_ptr<dataplane::Conntrack> conntrack_;
  std::unique_ptr<dataplane::NatEngine> nat_;
  std::unique_ptr<dataplane::SpoofGuard> spoof_guard_;
  std::unique_ptr<dataplane::OverlayStage> custom_tx_;
  std::unique_ptr<dataplane::OverlayStage> custom_rx_;
  // Tenant overlay stages (slots kTenantTxSlot/kTenantRxSlot). They join
  // the chains only while a tenant program is loaded, so default pipelines
  // keep their stage count (and their pinned golden timings).
  std::unique_ptr<dataplane::OverlayStage> tenant_tx_;
  std::unique_ptr<dataplane::OverlayStage> tenant_rx_;
  TenantId tenant_tx_holder_ = kSystemTenant;  // kSystemTenant = slot free
  TenantId tenant_rx_holder_ = kSystemTenant;

  // ---- Tenancy registry ----------------------------------------------------
  struct TenantState {
    TenantSpec spec;
    uint64_t ring_bytes_used = 0;     // TX+RX ring working sets charged
    uint32_t overlay_slots_used = 0;  // chain slots currently held
  };
  std::map<TenantId, TenantState> tenants_;
  // Tenants that already have a "tenant.<id>.starved" watchdog rule; rules
  // outlive releases (an absent series reads healthy) and must not stack.
  std::set<TenantId> tenant_rules_installed_;
  // Connections whose ring memory is charged to a tenant (refunded on
  // Close; fallback connections have no rings and are never charged).
  std::map<net::ConnectionId, TenantId> conn_tenant_;
  NicConfig active_config_;
  // Owned by the NIC once installed; kernel keeps the typed handle.
  dataplane::PacedScheduler* pacer_ = nullptr;
  std::map<net::ConnectionId, std::pair<BitsPerSecond, uint64_t>>
      rate_limits_;

  sim::Resource kernel_core_{"kernel.core"};

  // Cycle attribution (src/common/profiler.h): the kernel registers its core
  // and charges every kernel_core_.Serve under a named scope, attributed to
  // the pid the work was done for.
  telemetry::Profiler* prof_ = nullptr;
  uint32_t prof_core_kernel_ = 0;
  telemetry::ProfSite prof_notify_site_{"kernel.notify"};
  telemetry::ProfSite prof_irq_site_{"kernel.irq"};
  telemetry::ProfSite prof_slow_site_{"kernel.slow_path"};
  telemetry::ProfSite prof_maint_site_{"kernel.maintenance"};

  net::ConnectionId next_conn_id_ = 1;
  uint16_t next_ephemeral_port_ = 30000;

  struct Waiter {
    nic::NotificationKind kind;
    std::function<void()> resume;
  };
  // conn -> pending waiters (usually one).
  std::map<net::ConnectionId, std::vector<Waiter>> waiters_;
  std::map<net::ConnectionId, Pid> conn_owner_pid_;
  std::map<net::ConnectionId, FallbackConn> fallback_conns_;

  struct ListenState {
    Pid pid = 0;
    ConnectOptions accept_opts;
    std::deque<net::ConnectionId> accept_queue;
  };
  // (local_port, proto) -> listener.
  std::map<std::pair<uint16_t, uint8_t>, ListenState> listeners_;
  // Slow-path drop accounting ("kernel.drop.*" in the registry): packets
  // the NIC diverted to the host that the kernel then had to discard.
  telemetry::Counter* drop_malformed_ = nullptr;
  telemetry::Counter* drop_unmatched_ = nullptr;
  telemetry::Counter* drop_sram_exhausted_ = nullptr;
  // Notifications consumed by PumpNotifications, flushed once per bulk
  // drain (hot tier: compiles out at stats level 0). The per-queue
  // breakdown (kernel.notify.q<N>.drained) keys on Notification::queue so
  // a sharded world's per-lane completion flow is visible end to end;
  // registered eagerly for every possible lane (manifest shape-stability).
  telemetry::Counter* notify_drained_ = nullptr;
  std::array<telemetry::Counter*, nic::SmartNic::kMaxShardQueues>
      notify_drained_q_{};

  // Handles packets the NIC diverted to the host (unmatched RX -> listen
  // dispatch; TX fallback completions).
  void HandleHostPacket(net::PacketPtr packet, net::Direction dir);
};

}  // namespace norman::kernel

#endif  // NORMAN_KERNEL_KERNEL_H_
