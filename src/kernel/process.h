// Simulated OS process model: processes, users, cgroups, comm interning.
//
// This is the "process view" side of KOPI: hypervisors and in-network
// devices cannot see these tables, which is why they cannot enforce
// user/process-scoped policies (§2). The kernel consults this table at
// connection setup and stamps the owner metadata into the NIC flow table.
#ifndef NORMAN_KERNEL_PROCESS_H_
#define NORMAN_KERNEL_PROCESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "src/common/status.h"

namespace norman::kernel {

using Pid = uint32_t;
using Uid = uint32_t;
using CgroupId = uint32_t;

inline constexpr Uid kRootUid = 0;
inline constexpr CgroupId kRootCgroup = 1;

enum class ProcessState : uint8_t {
  kRunning = 0,
  kBlocked,
  kExited,
};

struct Process {
  Pid pid = 0;
  Uid uid = 0;
  std::string comm;       // executable name, e.g. "postgres"
  uint32_t comm_id = 0;   // interned id (for overlay owner_comm matches)
  CgroupId cgroup = kRootCgroup;
  ProcessState state = ProcessState::kRunning;
};

class ProcessTable {
 public:
  ProcessTable() {
    // uid 0 is always known.
    users_[kRootUid] = "root";
    cgroups_[kRootCgroup] = "/";
  }

  Uid AddUser(Uid uid, std::string name) {
    users_[uid] = std::move(name);
    return uid;
  }

  StatusOr<CgroupId> CreateCgroup(const std::string& path) {
    for (const auto& [id, p] : cgroups_) {
      if (p == path) {
        return AlreadyExistsError("cgroup exists: " + path);
      }
    }
    const CgroupId id = next_cgroup_++;
    cgroups_[id] = path;
    return id;
  }

  // Spawns a process owned by `uid` running `comm`.
  StatusOr<Pid> Spawn(Uid uid, const std::string& comm,
                      CgroupId cgroup = kRootCgroup) {
    if (!users_.contains(uid)) {
      return NotFoundError("unknown uid " + std::to_string(uid));
    }
    if (!cgroups_.contains(cgroup)) {
      return NotFoundError("unknown cgroup " + std::to_string(cgroup));
    }
    Process p;
    p.pid = next_pid_++;
    p.uid = uid;
    p.comm = comm;
    p.comm_id = InternComm(comm);
    p.cgroup = cgroup;
    processes_.emplace(p.pid, p);
    return p.pid;
  }

  Status MoveToCgroup(Pid pid, CgroupId cgroup) {
    Process* p = Lookup(pid);
    if (p == nullptr) {
      return NotFoundError("no such pid");
    }
    if (!cgroups_.contains(cgroup)) {
      return NotFoundError("no such cgroup");
    }
    p->cgroup = cgroup;
    return OkStatus();
  }

  Status Exit(Pid pid) {
    Process* p = Lookup(pid);
    if (p == nullptr) {
      return NotFoundError("no such pid");
    }
    p->state = ProcessState::kExited;
    return OkStatus();
  }

  Process* Lookup(Pid pid) {
    const auto it = processes_.find(pid);
    return it == processes_.end() ? nullptr : &it->second;
  }
  const Process* Lookup(Pid pid) const {
    const auto it = processes_.find(pid);
    return it == processes_.end() ? nullptr : &it->second;
  }

  // Interns a comm string; same string -> same id. Id 0 is never assigned.
  uint32_t InternComm(const std::string& comm) {
    const auto it = comm_ids_.find(comm);
    if (it != comm_ids_.end()) {
      return it->second;
    }
    const uint32_t id = next_comm_id_++;
    comm_ids_.emplace(comm, id);
    comm_names_.emplace(id, comm);
    return id;
  }

  // Lookup without interning; 0 if never seen.
  uint32_t CommId(const std::string& comm) const {
    const auto it = comm_ids_.find(comm);
    return it == comm_ids_.end() ? 0 : it->second;
  }
  std::string CommName(uint32_t comm_id) const {
    const auto it = comm_names_.find(comm_id);
    return it == comm_names_.end() ? "?" : it->second;
  }

  std::string UserName(Uid uid) const {
    const auto it = users_.find(uid);
    return it == users_.end() ? "?" : it->second;
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [pid, p] : processes_) {
      fn(p);
    }
  }

  size_t size() const { return processes_.size(); }

 private:
  Pid next_pid_ = 100;
  CgroupId next_cgroup_ = 2;
  uint32_t next_comm_id_ = 1;
  std::map<Pid, Process> processes_;
  std::map<Uid, std::string> users_;
  std::map<CgroupId, std::string> cgroups_;
  std::unordered_map<std::string, uint32_t> comm_ids_;
  std::unordered_map<uint32_t, std::string> comm_names_;
};

}  // namespace norman::kernel

#endif  // NORMAN_KERNEL_PROCESS_H_
