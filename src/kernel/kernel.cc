#include "src/kernel/kernel.h"

#include <algorithm>
#include <span>

#include "src/common/logging.h"

namespace norman::kernel {

Kernel::Kernel(sim::Simulator* sim, nic::SmartNic* nic, Options options)
    : sim_(sim),
      nic_(nic),
      options_(options),
      accept_gauges_(&sim->metrics(), "kernel.accept") {
  prof_ = &sim_->profiler();
  prof_core_kernel_ = prof_->RegisterCore(
      "kernel.core", telemetry::Profiler::CoreKind::kHost,
      [this] { return kernel_core_.busy_ns(); });
  sampler_ = std::make_unique<telemetry::TimeSeriesSampler>(&sim_->metrics());
  watchdog_ = std::make_unique<telemetry::HealthWatchdog>(sampler_.get(),
                                                          &sim_->metrics());
  InstallDefaultHealthRules();
  drop_malformed_ = sim_->metrics().GetCounter("kernel.drop.malformed");
  drop_unmatched_ = sim_->metrics().GetCounter("kernel.drop.unmatched");
  drop_sram_exhausted_ =
      sim_->metrics().GetCounter("kernel.drop.sram_exhausted");
  notify_drained_ = sim_->metrics().GetCounter("kernel.notify.drained");
  for (uint16_t q = 0; q < nic::SmartNic::kMaxShardQueues; ++q) {
    notify_drained_q_[q] = sim_->metrics().GetCounter(
        "kernel.notify.q" + std::to_string(q) + ".drained");
  }
  nic_cp_ = nic_->TakeControlPlane();
  NORMAN_CHECK(nic_cp_ != nullptr)
      << "NIC control plane already taken: only the kernel may own it";
  filter_input_ = std::make_unique<dataplane::FilterEngine>(
      dataplane::FilterAction::kAccept);
  filter_output_ = std::make_unique<dataplane::FilterEngine>(
      dataplane::FilterAction::kAccept);
  sniffer_ = std::make_unique<dataplane::SnifferTap>(sim_);
  arp_ = std::make_unique<dataplane::ArpService>(sim_, options_.host_ip,
                                                 options_.host_mac);
  conntrack_ = std::make_unique<dataplane::Conntrack>(&nic_cp_->sram());
  icmp_ = std::make_unique<dataplane::IcmpResponder>(options_.host_ip,
                                                     options_.host_mac);
  spoof_guard_ =
      std::make_unique<dataplane::SpoofGuard>(&nic_cp_->flow_table());
  custom_tx_ =
      std::make_unique<dataplane::OverlayStage>(nic_cp_.get(), kCustomTxSlot);
  custom_rx_ =
      std::make_unique<dataplane::OverlayStage>(nic_cp_.get(), kCustomRxSlot);
  tenant_tx_ =
      std::make_unique<dataplane::OverlayStage>(nic_cp_.get(), kTenantTxSlot);
  tenant_rx_ =
      std::make_unique<dataplane::OverlayStage>(nic_cp_.get(), kTenantRxSlot);
  // Probe hookup: the kernel owns the interposition stages, so it is the
  // one place every decision site can be armed from.
  filter_input_->AttachTracepoints(&sim_->tracepoints());
  filter_output_->AttachTracepoints(&sim_->tracepoints());
  conntrack_->AttachTracepoints(&sim_->tracepoints());
  watchdog_->AttachTracepoints(&sim_->tracepoints());
  arp_->SetReplyInjector([this](net::PacketPtr reply) {
    nic_->InjectHostPacket(std::move(reply), sim_->Now());
  });
  icmp_->SetReplyInjector([this](net::PacketPtr reply) {
    nic_->InjectHostPacket(std::move(reply), sim_->Now());
  });
  // Boot-time discipline: FIFO behind the transparent per-connection pacer.
  auto paced = std::make_unique<dataplane::PacedScheduler>();
  pacer_ = paced.get();
  NORMAN_CHECK(nic_cp_->SetScheduler(std::move(paced)).ok());
  // The kernel is the host slow path: unmatched RX traffic comes here for
  // listen-socket dispatch.
  nic_cp_->SetFallbackSink([this](net::PacketPtr packet, net::Direction dir) {
    HandleHostPacket(std::move(packet), dir);
  });
  InstallPipeline();
}

Kernel::~Kernel() = default;

void Kernel::InstallPipeline() {
  // TX chain: sniffer sees everything first (including packets the filter
  // will drop — tcpdump semantics), then ARP observation, conntrack, the
  // OUTPUT filter, the custom overlay policy, and optionally NAT.
  nic_cp_->ClearStages();
  nic_cp_->AddTxStage(sniffer_.get());
  nic_cp_->AddTxStage(spoof_guard_.get());
  nic_cp_->AddTxStage(arp_.get());
  nic_cp_->AddTxStage(conntrack_.get());
  nic_cp_->AddTxStage(filter_output_.get());
  nic_cp_->AddTxStage(custom_tx_.get());
  if (tenant_tx_holder_ != kSystemTenant) {
    nic_cp_->AddTxStage(tenant_tx_.get());
  }
  if (nat_ != nullptr) {
    nic_cp_->AddTxStage(nat_.get());
  }
  // RX chain: sniffer first (sees filtered-out packets too, tcpdump-style),
  // NAT reverse translation so the filter sees internal addresses, the
  // NIC-terminated protocols (ICMP echo, ARP), conntrack, the INPUT filter,
  // and the custom overlay policy.
  nic_cp_->AddRxStage(sniffer_.get());
  if (nat_ != nullptr) {
    nic_cp_->AddRxStage(nat_.get());
  }
  nic_cp_->AddRxStage(icmp_.get());
  nic_cp_->AddRxStage(arp_.get());
  nic_cp_->AddRxStage(conntrack_.get());
  nic_cp_->AddRxStage(filter_input_.get());
  nic_cp_->AddRxStage(custom_rx_.get());
  if (tenant_rx_holder_ != kSystemTenant) {
    nic_cp_->AddRxStage(tenant_rx_.get());
  }
}

void Kernel::Housekeeping() {
  // Invoked on demand (no self-rescheduling: it would keep the DES alive
  // forever). Benchmarks and tools call this before reading tables; the
  // periodic path is StartMaintenance().
  if (conntrack_->Sweep(sim_->Now()) > 0) {
    // Expired conntrack state frees SRAM and can change what the chain
    // would decide (e.g. NAT admission): stale fast-path verdicts must go.
    nic_cp_->InvalidateFastPath();
  }
}

void Kernel::InstallDefaultHealthRules() {
  // Every rule reads a series the sampler derives from always-registered
  // metrics, so the rule set is valid before the first packet flows.
  watchdog_->AddQueueStallRule("nic.qdisc", "queue.nic.qdisc.depth",
                               "kernel.tc");
  watchdog_->AddQueueStallRule("app.rx", "queue.nic.rx_ring.depth", "app.rx");
  // Per-lane stall rules for the sharded dataplane: a single wedged lane
  // moves its own ring-depth series while the aggregate may look healthy
  // (7 draining lanes mask the stuck one). The per-queue gauges are
  // registered eagerly whether or not a run shards, and an absent/zero
  // series reads healthy, so unsharded worlds see no change.
  for (uint16_t q = 0; q < nic::SmartNic::kMaxShardQueues; ++q) {
    const std::string qs = std::to_string(q);
    watchdog_->AddQueueStallRule("app.rx.q" + qs,
                                 "queue.nic.rx_ring.q" + qs + ".depth",
                                 "app.rx");
  }
  // Any sustained drop rate is a health event: thresholds are "more than
  // zero per second" because drops on these paths are exceptional.
  watchdog_->AddRateSpikeRule("nic.qdisc", "nic.tx.drop.sched_overflow.rate",
                              "kernel.tc", 0.0);
  watchdog_->AddRateSpikeRule("app.rx", "nic.rx.drop.ring_full.rate",
                              "app.rx", 0.0);
  watchdog_->AddLatencyRule("nic.qdisc", "trace.stage.tx.qdisc.p99",
                            "kernel.tc", 1 * kMillisecond);
  // Wire faults (sim::FaultInjector): a down link is an immediate stall,
  // and any sustained rate of checksum-failed RX frames means the physical
  // path is damaging bytes. Both series read healthy when absent/zero, so
  // worlds without a fault plane see no change.
  watchdog_->AddLinkDownRule("link", "fault.link.down", "net.wire");
  watchdog_->AddRateSpikeRule("link", "nic.rx.drop.corrupt.rate", "net.wire",
                              0.0);
}

void Kernel::StartMaintenance() {
  if (maintenance_on_) {
    return;
  }
  maintenance_on_ = true;
  sim_->ScheduleAt(sim_->Now() + options_.housekeeping_period,
                   [this] { MaintenanceTick(); });
}

void Kernel::MaintenanceTick() {
  if (!maintenance_on_) {
    return;  // StopMaintenance() raced an already-scheduled tick
  }
  ++maintenance_ticks_;
  // Zero-cost attribution scope: the tick charges no virtual time, but its
  // entry count keeps periodic kernel work visible in the context tree.
  telemetry::ProfScope maint_scope(prof_, prof_maint_site_);
  const Nanos now = sim_->Now();
  if (conntrack_->Sweep(now) > 0) {
    nic_cp_->InvalidateFastPath();  // see Housekeeping()
  }
  sampler_->Sample(now);
  watchdog_->Evaluate(now);
  // Lazy re-arm: keep ticking only while the world has other events left.
  // With an empty heap the simulation is over; unconditionally rescheduling
  // would tick forever and Run() would never return.
  if (sim_->pending_events() > 0) {
    sim_->ScheduleAt(now + options_.housekeeping_period,
                     [this] { MaintenanceTick(); });
  } else {
    maintenance_on_ = false;
  }
}

Status Kernel::RequireRoot(Uid caller) const {
  if (caller != kRootUid) {
    return PermissionDeniedError(
        "operation requires root (caller uid " + std::to_string(caller) +
        ")");
  }
  return OkStatus();
}

// ---- Connections ------------------------------------------------------------

StatusOr<AppPort> Kernel::Connect(Pid pid, net::Ipv4Address remote_ip,
                                  uint16_t remote_port,
                                  const ConnectOptions& opts) {
  // Socket-surface probes fire at call entry (strace semantics: the
  // syscall is traced whether or not it succeeds).
  sim_->tracepoints().Emit(
      telemetry::Probe::kSocketCall, telemetry::Tracepoints::kCoreHost, pid,
      static_cast<uint64_t>(telemetry::SocketOp::kConnect), remote_port);
  Process* proc = processes_.Lookup(pid);
  if (proc == nullptr || proc->state == ProcessState::kExited) {
    return NotFoundError("connect: no such process");
  }
  const net::ConnectionId conn_id = next_conn_id_++;
  uint16_t local_port = opts.local_port;
  if (local_port == 0) {
    local_port = next_ephemeral_port_++;
    if (next_ephemeral_port_ == 0) {
      next_ephemeral_port_ = 30000;
    }
  }

  nic::FlowEntry entry;
  entry.conn_id = conn_id;
  entry.tuple = net::FiveTuple{options_.host_ip, remote_ip, local_port,
                               remote_port, opts.proto};
  entry.owner = overlay::ConnMetadata{conn_id, proc->uid, proc->pid,
                                      proc->cgroup, proc->comm_id};
  entry.owner.owner_tenant = TenantOf(proc->uid);
  entry.comm = proc->comm;
  entry.tx_ring_bytes = nic::kHotWorkingSetBytes;
  entry.rx_ring_bytes = nic::kHotWorkingSetBytes;
  entry.notify_rx = opts.notify_rx;
  entry.notify_tx_drain = opts.notify_tx_drain;

  // Tenant ring-memory admission: each NIC connection pins a TX and an RX
  // ring working set. A tenant whose ring budget is spent is refused before
  // any NIC state is touched (kResourceExhausted — release a connection and
  // retry). Fallback connections have no NIC rings and are never charged.
  const uint64_t ring_cost = entry.tx_ring_bytes + entry.rx_ring_bytes;
  if (const auto t = tenants_.find(entry.owner.owner_tenant);
      t != tenants_.end() && t->second.spec.ring_bytes != 0 &&
      t->second.ring_bytes_used + ring_cost > t->second.spec.ring_bytes) {
    nic_cp_->tenants().CountDenied(entry.owner.owner_tenant);
    return ResourceExhaustedError(
        "connect: tenant " + std::to_string(entry.owner.owner_tenant) +
        " ring budget exhausted (" +
        std::to_string(t->second.ring_bytes_used) + " of " +
        std::to_string(t->second.spec.ring_bytes) + " bytes in use)");
  }

  const Status install = nic_cp_->InstallFlow(entry);
  if (!install.ok()) {
    if (install.code() == StatusCode::kResourceExhausted &&
        opts.allow_software_fallback) {
      // NIC memory is full: register a host-software connection (§5).
      // Intern the owner even without a NIC flow: slow-path cycles for this
      // connection are still attributed to the pid.
      prof_->RegisterOwner(pid);
      fallback_conns_.emplace(conn_id,
                              FallbackConn{entry.tuple, entry.owner});
      conn_owner_pid_.emplace(conn_id, pid);
      return AppPort(conn_id, entry.tuple, options_.host_mac,
                     options_.gateway_mac, nullptr, nic::DoorbellWindow(),
                     nullptr);
    }
    return install;
  }

  // Ensure the process has a notification queue and a pump if it blocks.
  if (opts.notify_rx || opts.notify_tx_drain) {
    nic_cp_->RegisterNotificationQueue(pid);
  }
  conn_owner_pid_.emplace(conn_id, pid);
  if (const auto t = tenants_.find(entry.owner.owner_tenant);
      t != tenants_.end()) {
    t->second.ring_bytes_used += ring_cost;
    conn_tenant_.emplace(conn_id, entry.owner.owner_tenant);
  }

  return AppPort(conn_id, entry.tuple, options_.host_mac,
                 options_.gateway_mac, nic_cp_->GetRings(conn_id),
                 nic_cp_->MapDoorbell(conn_id), nic_);
}

Status Kernel::Close(net::ConnectionId conn_id) {
  const auto owner_it = conn_owner_pid_.find(conn_id);
  sim_->tracepoints().Emit(
      telemetry::Probe::kSocketCall, telemetry::Tracepoints::kCoreHost,
      owner_it == conn_owner_pid_.end() ? 0 : owner_it->second,
      static_cast<uint64_t>(telemetry::SocketOp::kClose),
      static_cast<uint64_t>(conn_id));
  waiters_.erase(conn_id);
  conn_owner_pid_.erase(conn_id);
  if (const auto ct = conn_tenant_.find(conn_id); ct != conn_tenant_.end()) {
    // Refund the connection's ring working sets to its tenant's budget.
    if (const auto t = tenants_.find(ct->second); t != tenants_.end()) {
      const uint64_t ring_cost = 2 * nic::kHotWorkingSetBytes;
      t->second.ring_bytes_used -= std::min(t->second.ring_bytes_used,
                                            ring_cost);
    }
    conn_tenant_.erase(ct);
  }
  if (rate_limits_.erase(conn_id) > 0) {
    pacer_->ClearRate(conn_id);  // releases any paced backlog for the wire
  }
  if (fallback_conns_.erase(conn_id) > 0) {
    return OkStatus();
  }
  return nic_cp_->RemoveFlow(conn_id);
}

Status Kernel::Listen(Pid pid, uint16_t local_port, net::IpProto proto,
                      const ConnectOptions& accept_opts) {
  sim_->tracepoints().Emit(
      telemetry::Probe::kSocketCall, telemetry::Tracepoints::kCoreHost, pid,
      static_cast<uint64_t>(telemetry::SocketOp::kListen), local_port);
  Process* proc = processes_.Lookup(pid);
  if (proc == nullptr || proc->state == ProcessState::kExited) {
    return NotFoundError("listen: no such process");
  }
  const auto key = std::make_pair(local_port, static_cast<uint8_t>(proto));
  if (listeners_.contains(key)) {
    return AlreadyExistsError("listen: port already bound");
  }
  ListenState state;
  state.pid = pid;
  state.accept_opts = accept_opts;
  state.accept_opts.proto = proto;
  listeners_.emplace(key, std::move(state));
  return OkStatus();
}

StatusOr<AppPort> Kernel::Accept(Pid pid, uint16_t local_port) {
  sim_->tracepoints().Emit(
      telemetry::Probe::kSocketCall, telemetry::Tracepoints::kCoreHost, pid,
      static_cast<uint64_t>(telemetry::SocketOp::kAccept), local_port);
  for (auto& [key, state] : listeners_) {
    if (key.first != local_port) {
      continue;
    }
    if (state.pid != pid) {
      return PermissionDeniedError("accept: not the listening process");
    }
    if (state.accept_queue.empty()) {
      // Would-block, not a missing resource: the listener exists, there is
      // just nothing to accept yet (see the convention in socket.h).
      return UnavailableError("accept: no pending connections");
    }
    const net::ConnectionId conn_id = state.accept_queue.front();
    state.accept_queue.pop_front();
    accept_gauges_.Add(-1);
    const nic::FlowEntry* entry = nic_cp_->LookupFlow(conn_id);
    if (entry == nullptr) {
      return InternalError("accept: pending connection vanished");
    }
    return AppPort(conn_id, entry->tuple, options_.host_mac,
                   options_.gateway_mac, nic_cp_->GetRings(conn_id),
                   nic_cp_->MapDoorbell(conn_id), nic_);
  }
  return NotFoundError("accept: not listening on that port");
}

Status Kernel::StopListening(Pid pid, uint16_t local_port) {
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first.first == local_port && it->second.pid == pid) {
      accept_gauges_.Add(
          -static_cast<int64_t>(it->second.accept_queue.size()));
      listeners_.erase(it);
      return OkStatus();
    }
  }
  return NotFoundError("stop-listening: no such listener");
}

void Kernel::HandleHostPacket(net::PacketPtr packet, net::Direction dir) {
  sim_->tracepoints().Emit(
      telemetry::Probe::kSlowPath, telemetry::Tracepoints::kCoreHost,
      packet->meta().owner_pid,
      static_cast<uint64_t>(telemetry::SlowPathOp::kHostDeliver),
      dir == net::Direction::kTx ? telemetry::kDirTx : telemetry::kDirRx,
      packet->size());
  if (dir == net::Direction::kTx) {
    // A TX packet diverted by a FALLBACK rule: it already traversed the
    // interposition pipeline; re-inject for transmission. The NIC treats
    // marked packets' repeat FALLBACK verdicts as accept, so no loop.
    nic_->InjectHostPacket(std::move(packet), sim_->Now());
    return;
  }
  // Unmatched RX: dispatch against the listen table.
  auto parsed = net::ParseFrame(packet->bytes());
  if (!parsed || !parsed->flow()) {
    drop_malformed_->Increment();
    return;
  }
  const auto inbound = *parsed->flow();
  const auto key = std::make_pair(inbound.dst_port,
                                  static_cast<uint8_t>(inbound.proto));
  const auto it = listeners_.find(key);
  if (it == listeners_.end() || inbound.dst_ip != options_.host_ip) {
    drop_unmatched_->Increment();
    return;
  }
  ListenState& listener = it->second;
  Process* proc = processes_.Lookup(listener.pid);
  if (proc == nullptr || proc->state == ProcessState::kExited) {
    drop_unmatched_->Increment();
    return;
  }

  // Auto-install the connection (local = the listening endpoint, remote =
  // the peer that just spoke), stamped with the listener's identity.
  const net::ConnectionId conn_id = next_conn_id_++;
  nic::FlowEntry entry;
  entry.conn_id = conn_id;
  entry.tuple = inbound.Reversed();
  entry.owner = overlay::ConnMetadata{conn_id, proc->uid, proc->pid,
                                      proc->cgroup, proc->comm_id};
  entry.owner.owner_tenant = TenantOf(proc->uid);
  entry.comm = proc->comm;
  entry.tx_ring_bytes = nic::kHotWorkingSetBytes;
  entry.rx_ring_bytes = nic::kHotWorkingSetBytes;
  entry.notify_rx = listener.accept_opts.notify_rx;
  entry.notify_tx_drain = listener.accept_opts.notify_tx_drain;
  // Same ring-memory admission as Connect: an accepted connection charges
  // the *listener's* tenant, so a flood of new peers cannot grow a tenant's
  // ring footprint past its envelope (the trigger packet is dropped).
  const uint64_t ring_cost = entry.tx_ring_bytes + entry.rx_ring_bytes;
  if (const auto t = tenants_.find(entry.owner.owner_tenant);
      t != tenants_.end() && t->second.spec.ring_bytes != 0 &&
      t->second.ring_bytes_used + ring_cost > t->second.spec.ring_bytes) {
    nic_cp_->tenants().CountDenied(entry.owner.owner_tenant);
    drop_sram_exhausted_->Increment();
    return;
  }
  const Status install = nic_cp_->InstallFlow(entry);
  if (!install.ok()) {
    drop_sram_exhausted_->Increment();  // NIC full, no server fallback (yet)
    return;
  }
  if (entry.notify_rx || entry.notify_tx_drain) {
    nic_cp_->RegisterNotificationQueue(listener.pid);
  }
  conn_owner_pid_.emplace(conn_id, listener.pid);
  if (const auto t = tenants_.find(entry.owner.owner_tenant);
      t != tenants_.end()) {
    t->second.ring_bytes_used += ring_cost;
    conn_tenant_.emplace(conn_id, entry.owner.owner_tenant);
  }

  // Deliver the trigger packet into the new connection's RX ring so the
  // first request is not lost, then queue the accept event.
  packet->meta().connection = conn_id;
  nic::RingPair* rings = nic_cp_->GetRings(conn_id);
  if (rings != nullptr) {
    (void)rings->PushRx(std::move(packet));
  }
  if (nic::FlowEntry* installed = nic_cp_->LookupFlow(conn_id);
      installed != nullptr) {
    ++installed->rx_packets;
  }
  listener.accept_queue.push_back(conn_id);
  accept_gauges_.Add(1);
}

std::vector<ConnectionInfo> Kernel::ListConnections() const {
  std::vector<ConnectionInfo> out;
  nic_cp_->flow_table().ForEach([&](const nic::FlowEntry& e) {
    ConnectionInfo info;
    info.conn_id = e.conn_id;
    info.tuple = e.tuple;
    info.pid = e.owner.owner_pid;
    info.uid = e.owner.owner_uid;
    info.comm = e.comm;
    info.tx_packets = e.tx_packets;
    info.rx_packets = e.rx_packets;
    info.tx_bytes = e.tx_bytes;
    info.rx_bytes = e.rx_bytes;
    out.push_back(std::move(info));
  });
  for (const auto& [conn_id, fc] : fallback_conns_) {
    ConnectionInfo info;
    info.conn_id = conn_id;
    info.tuple = fc.tuple;
    info.pid = fc.owner.owner_pid;
    info.uid = fc.owner.owner_uid;
    info.comm = processes_.CommName(fc.owner.owner_comm);
    info.software_fallback = true;
    out.push_back(std::move(info));
  }
  return out;
}

// ---- Blocking I/O -----------------------------------------------------------

Status Kernel::BlockOnRx(net::ConnectionId conn_id,
                         std::function<void()> resume) {
  const auto owner = conn_owner_pid_.find(conn_id);
  if (owner == conn_owner_pid_.end()) {
    return NotFoundError("block: unknown connection");
  }
  const nic::FlowEntry* entry = nic_cp_->LookupFlow(conn_id);
  if (entry == nullptr || !entry->notify_rx) {
    return FailedPreconditionError(
        "block: connection not configured for RX notifications");
  }
  waiters_[conn_id].push_back(
      Waiter{nic::NotificationKind::kRxData, std::move(resume)});
  PumpNotifications(owner->second);
  return OkStatus();
}

Status Kernel::BlockOnTxDrain(net::ConnectionId conn_id,
                              std::function<void()> resume) {
  const auto owner = conn_owner_pid_.find(conn_id);
  if (owner == conn_owner_pid_.end()) {
    return NotFoundError("block: unknown connection");
  }
  const nic::FlowEntry* entry = nic_cp_->LookupFlow(conn_id);
  if (entry == nullptr || !entry->notify_tx_drain) {
    return FailedPreconditionError(
        "block: connection not configured for TX-drain notifications");
  }
  waiters_[conn_id].push_back(
      Waiter{nic::NotificationKind::kTxDrained, std::move(resume)});
  PumpNotifications(owner->second);
  return OkStatus();
}

void Kernel::PumpNotifications(Pid pid) {
  nic::NotificationQueue* queue = nic_cp_->GetNotificationQueue(pid);
  if (queue == nullptr) {
    return;
  }
  // Drain whatever is pending in bursts (bulk PollN over the shared ring:
  // one gauge/counter flush per burst instead of one per notification);
  // for each notification wake matching waiters.
  telemetry::ProfScope notify_scope(prof_, prof_notify_site_);
  bool woke_any = false;
  constexpr uint32_t kNotifyDrainBatch = 16;
  nic::Notification batch[kNotifyDrainBatch];
  // Registry-tracked: if a report (or simulator teardown) lands while this
  // pump is mid-drain, the pending partial burst still folds in.
  telemetry::BatchedCounter drained(notify_drained_, &sim_->metrics());
  for (;;) {
    const uint32_t count =
        queue->PollN(std::span<nic::Notification>(batch));
    if (count == 0) {
      break;
    }
    drained.Add(count);
    for (uint32_t i = 0; i < count; ++i) {
      const nic::Notification& n = batch[i];
      if (n.queue < notify_drained_q_.size()) {
        telemetry::HotIncrement(notify_drained_q_[n.queue]);
      }
      const auto it = waiters_.find(n.conn_id);
      if (it == waiters_.end()) {
        continue;  // nobody blocked; notification is informational
      }
      auto& list = it->second;
      for (auto w = list.begin(); w != list.end();) {
        if (w->kind == n.kind) {
          // Waking a blocked thread costs a context switch on the kernel/app
          // core; the continuation runs after that charge. Attributed to the
          // pid being woken (this queue's owner).
          const Nanos cs = nic_->cost().context_switch_ns;
          const Nanos done = kernel_core_.Serve(sim_->Now(), cs);
          if (prof_->enabled()) {
            prof_->ChargeCurrent(prof_core_kernel_, prof_->OwnerSlot(pid), cs);
          }
          sim_->ScheduleAt(done, std::move(w->resume));
          w = list.erase(w);
          woke_any = true;
        } else {
          ++w;
        }
      }
      if (list.empty()) {
        waiters_.erase(it);
      }
    }
    if (count < kNotifyDrainBatch) {
      break;  // short burst: the queue is empty now
    }
  }
  // If waiters remain, arm the interrupt so the next Post re-enters here —
  // "enable interrupts for notification queues with low activity" (§4.3).
  bool have_waiters = false;
  for (const auto& [conn, list] : waiters_) {
    const auto owner = conn_owner_pid_.find(conn);
    if (owner != conn_owner_pid_.end() && owner->second == pid &&
        !list.empty()) {
      have_waiters = true;
      break;
    }
  }
  if (have_waiters) {
    queue->ArmInterrupt([this, pid] {
      // Interrupt dispatch cost, then pump again. The scope opens under
      // whatever context raised the interrupt (often the NIC RX path), so
      // the flamegraph shows where interrupt load originates.
      telemetry::ProfScope irq_scope(prof_, prof_irq_site_);
      const Nanos cs = nic_->cost().context_switch_ns / 2;
      const Nanos done = kernel_core_.Serve(sim_->Now(), cs);
      if (prof_->enabled()) {
        prof_->ChargeCurrent(prof_core_kernel_, prof_->OwnerSlot(pid), cs);
      }
      sim_->ScheduleAt(done, [this, pid] { PumpNotifications(pid); });
    });
  } else {
    queue->DisarmInterrupt();
  }
  (void)woke_any;
}

// ---- Admin configuration ----------------------------------------------------

StatusOr<size_t> Kernel::AppendFilterRule(Uid caller, Chain chain,
                                          const dataplane::FilterRule& rule) {
  NORMAN_RETURN_IF_ERROR(RequireRoot(caller));
  auto& engine = chain == Chain::kInput ? *filter_input_ : *filter_output_;
  auto index = engine.AppendRule(rule);
  if (index.ok()) {
    // The rule set changed underneath the installed FilterEngine stage —
    // a mutation the NIC control plane cannot observe on its own.
    nic_cp_->InvalidateFastPath();
  }
  return index;
}

Status Kernel::DeleteFilterRule(Uid caller, Chain chain, size_t index) {
  NORMAN_RETURN_IF_ERROR(RequireRoot(caller));
  auto& engine = chain == Chain::kInput ? *filter_input_ : *filter_output_;
  const Status s = engine.DeleteRule(index);
  if (s.ok()) {
    nic_cp_->InvalidateFastPath();
  }
  return s;
}

Status Kernel::FlushFilterRules(Uid caller, Chain chain) {
  NORMAN_RETURN_IF_ERROR(RequireRoot(caller));
  auto& engine = chain == Chain::kInput ? *filter_input_ : *filter_output_;
  engine.Flush();
  nic_cp_->InvalidateFastPath();
  return OkStatus();
}

const dataplane::FilterEngine& Kernel::filter(Chain chain) const {
  return chain == Chain::kInput ? *filter_input_ : *filter_output_;
}

Status Kernel::SetQdisc(Uid caller, std::unique_ptr<nic::Scheduler> qdisc) {
  NORMAN_RETURN_IF_ERROR(RequireRoot(caller));
  if (qdisc == nullptr) {
    return InvalidArgumentError("qdisc must not be null");
  }
  // Wrap in the transparent pacer and re-apply configured rate limits so
  // they survive discipline swaps.
  auto paced = std::make_unique<dataplane::PacedScheduler>(std::move(qdisc));
  dataplane::PacedScheduler* raw = paced.get();
  NORMAN_RETURN_IF_ERROR(nic_cp_->SetScheduler(std::move(paced)));
  pacer_ = raw;
  for (const auto& [conn, limit] : rate_limits_) {
    pacer_->SetRate(conn, limit.first, limit.second);
  }
  return OkStatus();
}

Status Kernel::SetConnRateLimit(Uid caller, net::ConnectionId conn,
                                BitsPerSecond rate_bps,
                                uint64_t burst_bytes) {
  NORMAN_RETURN_IF_ERROR(RequireRoot(caller));
  if (nic_cp_->LookupFlow(conn) == nullptr &&
      !fallback_conns_.contains(conn)) {
    return NotFoundError("rate limit: unknown connection");
  }
  if (rate_bps == 0) {
    rate_limits_.erase(conn);
    pacer_->ClearRate(conn);
  } else {
    rate_limits_[conn] = {rate_bps, burst_bytes};
    pacer_->SetRate(conn, rate_bps, burst_bytes);
  }
  // Pacer reconfiguration happens behind the Scheduler interface, invisible
  // to the NIC control plane.
  nic_cp_->InvalidateFastPath();
  return OkStatus();
}

StatusOr<Nanos> Kernel::LoadCustomPolicy(Uid caller, Chain chain,
                                         const overlay::Program& program) {
  NORMAN_RETURN_IF_ERROR(RequireRoot(caller));
  const size_t slot =
      chain == Chain::kOutput ? kCustomTxSlot : kCustomRxSlot;
  if (program.empty()) {
    // Clear: load the trivially-accepting program is not the same as an
    // empty slot (cost-wise), so wipe via a bitstream-free slot reset:
    // LoadOverlay rejects empty programs, so emulate with accept-all.
    const overlay::Program accept_all{overlay::Instruction::RetImm(1)};
    return nic_cp_->LoadOverlay(slot, accept_all);
  }
  return nic_cp_->LoadOverlay(slot, program);
}

Status Kernel::StartCapture(Uid caller,
                            std::optional<overlay::Program> filter) {
  NORMAN_RETURN_IF_ERROR(RequireRoot(caller));
  NORMAN_RETURN_IF_ERROR(sniffer_->SetFilter(std::move(filter)));
  sniffer_->Start();
  // The sniffer is an observer stage, but toggling capture changes its
  // per-packet instruction cost (the cached pure-instruction total).
  nic_cp_->InvalidateFastPath();
  return OkStatus();
}

Status Kernel::StopCapture(Uid caller) {
  NORMAN_RETURN_IF_ERROR(RequireRoot(caller));
  sniffer_->Stop();
  nic_cp_->InvalidateFastPath();
  return OkStatus();
}

Status Kernel::EnableNat(Uid caller, net::Ipv4Address private_prefix,
                         uint32_t prefix_len, net::Ipv4Address public_ip) {
  NORMAN_RETURN_IF_ERROR(RequireRoot(caller));
  if (nat_ != nullptr) {
    return AlreadyExistsError("NAT already enabled");
  }
  nat_ = std::make_unique<dataplane::NatEngine>(
      &nic_cp_->sram(), private_prefix, prefix_len, public_ip);
  InstallPipeline();  // re-compose chains with the NAT stage
  return OkStatus();
}

// ---- Declarative configuration & tenancy ------------------------------------

Status Kernel::Configure(Uid caller, const NicConfig& config) {
  NORMAN_RETURN_IF_ERROR(RequireRoot(caller));
  // ---- Validate the whole config first: a rejected config applies
  // nothing, so the dataplane never ends up half-way between two states.
  if (config.flow_cache && config.flow_cache_entries == 0) {
    return InvalidArgumentError("config: flow_cache_entries must be > 0");
  }
  if (config.top_talkers && config.top_talker_entries == 0) {
    return InvalidArgumentError("config: top_talker_entries must be > 0");
  }
  if (config.shard_queues > nic::SmartNic::kMaxShardQueues) {
    return InvalidArgumentError(
        "config: shard_queues must be <= " +
        std::to_string(nic::SmartNic::kMaxShardQueues) + ", got " +
        std::to_string(config.shard_queues));
  }
  const uint16_t live_queues = nic_cp_->shard_queues();
  if (live_queues > 0 && config.shard_queues != live_queues) {
    return FailedPreconditionError(
        "config: sharding is one-shot; the live dataplane has " +
        std::to_string(live_queues) + " lanes and cannot be re-carved to " +
        std::to_string(config.shard_queues));
  }
  if (config.nat &&
      (config.nat_prefix_len == 0 || config.nat_prefix_len > 32)) {
    return InvalidArgumentError(
        "config: nat_prefix_len must be in [1, 32], got " +
        std::to_string(config.nat_prefix_len));
  }
  if (!config.nat && nat_ != nullptr) {
    return FailedPreconditionError(
        "config: NAT cannot be removed once enabled (live translations "
        "would strand)");
  }
  if (config.tenant_isolation != active_config_.tenant_isolation &&
      nic_cp_->scheduler()->backlog_packets() > 0) {
    return FailedPreconditionError(
        "config: cannot swap the TX discipline with packets in flight");
  }

  // ---- Apply. No step below can fail: every precondition the individual
  // operations check was validated above, so the CHECKs are invariants.
  if (live_queues == 0 && config.shard_queues > 0) {
    NORMAN_CHECK(nic_cp_->EnableSharding(config.shard_queues).ok());
  }
  if (config.flow_cache) {
    nic_cp_->EnableFlowCache(config.flow_cache_entries);
  } else if (nic_cp_->flow_cache().enabled()) {
    nic_cp_->DisableFlowCache();
  }
  if (config.top_talkers) {
    nic::TopTalkers* tt = nic_cp_->top_talkers();
    if (tt == nullptr || tt->max_entries() != config.top_talker_entries) {
      nic_cp_->EnableTopTalkers(config.top_talker_entries);
    }
  } else if (nic_cp_->top_talkers() != nullptr) {
    nic_cp_->DisableTopTalkers();
  }
  if (config.nat && nat_ == nullptr) {
    nat_ = std::make_unique<dataplane::NatEngine>(
        &nic_cp_->sram(), net::Ipv4Address{config.nat_private_prefix},
        config.nat_prefix_len, net::Ipv4Address{config.nat_public_ip});
    InstallPipeline();
  }
  nic_cp_->SetTenantIsolation(config.tenant_isolation);
  if (config.tenant_isolation != active_config_.tenant_isolation) {
    if (config.tenant_isolation) {
      InstallTenantQdisc();
    } else {
      // Back to the boot discipline: FIFO behind the transparent pacer.
      auto paced = std::make_unique<dataplane::PacedScheduler>();
      dataplane::PacedScheduler* raw = paced.get();
      NORMAN_CHECK(nic_cp_->SetScheduler(std::move(paced)).ok());
      pacer_ = raw;
      for (const auto& [conn, limit] : rate_limits_) {
        pacer_->SetRate(conn, limit.first, limit.second);
      }
    }
  }
  if (config.maintenance) {
    StartMaintenance();
  } else {
    StopMaintenance();
  }
  active_config_ = config;
  return OkStatus();
}

void Kernel::InstallTenantQdisc() {
  // The wire-side half of tenant isolation: the shared TX wire is FIFO
  // inside any one discipline, so without this an aggressor's backlog sits
  // in front of the victim even when the pipeline shares are enforced. A
  // WFQ discipline classified on owner uid gives each tenant the same
  // weighted share of the wire as of the pipeline; unregistered uids fall
  // into class 0 (the system share).
  std::map<uint32_t, uint32_t> uid_to_class;
  for (const auto& [id, state] : tenants_) {
    uid_to_class[id] = id;
  }
  auto wfq = std::make_unique<dataplane::WfqQdisc>(
      dataplane::ClassifyByUid(std::move(uid_to_class)));
  for (const auto& [id, state] : tenants_) {
    wfq->SetWeight(id, static_cast<double>(state.spec.cycle_weight));
  }
  // Same wrap-and-swap path as SetQdisc: rate limits survive the swap.
  // Callers validated the empty-backlog precondition, so the swap holds.
  auto paced = std::make_unique<dataplane::PacedScheduler>(std::move(wfq));
  dataplane::PacedScheduler* raw = paced.get();
  NORMAN_CHECK(nic_cp_->SetScheduler(std::move(paced)).ok());
  pacer_ = raw;
  for (const auto& [conn, limit] : rate_limits_) {
    pacer_->SetRate(conn, limit.first, limit.second);
  }
}

StatusOr<Tenant> Kernel::CreateTenant(Uid caller, Uid tenant_uid,
                                      const TenantSpec& spec) {
  NORMAN_RETURN_IF_ERROR(RequireRoot(caller));
  if (tenant_uid == kRootUid) {
    return InvalidArgumentError(
        "tenant: uid 0 is the system tenant and cannot be quota'd");
  }
  if (spec.cycle_weight == 0) {
    return InvalidArgumentError("tenant: cycle_weight must be >= 1");
  }
  const TenantId id = tenant_uid;
  if (tenants_.contains(id)) {
    return AlreadyExistsError("tenant " + std::to_string(id) +
                              " already registered");
  }
  if (active_config_.tenant_isolation &&
      nic_cp_->scheduler()->backlog_packets() > 0) {
    return UnavailableError(
        "tenant: cannot re-weight the TX discipline with packets in flight");
  }
  tenants_.emplace(id, TenantState{spec});
  nic_cp_->ConfigureTenant(id, spec.cycle_weight, spec.sram_bytes);
  if (tenant_rules_installed_.insert(id).second) {
    // A tenant spending more than half of wall time throttled is starved —
    // either its weight is too small for its offered load or an aggressor
    // is saturating the shares. The rule reads healthy while the tenant is
    // absent or idle.
    const std::string ts = std::to_string(id);
    watchdog_->AddRateSpikeRule("tenant." + ts + ".starved",
                                "tenant." + ts + ".throttled_ns.rate",
                                "tenant." + ts, 0.5e9);
  }
  if (active_config_.tenant_isolation) {
    InstallTenantQdisc();
  }
  return Tenant(this, id, spec);
}

Status Kernel::ReleaseTenant(TenantId tenant) {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return NotFoundError("tenant " + std::to_string(tenant) +
                         " not registered");
  }
  // Close every connection charged to the tenant (collect ids first: Close
  // mutates conn_tenant_ as it refunds the ring budget).
  std::vector<net::ConnectionId> owned;
  for (const auto& [conn, t] : conn_tenant_) {
    if (t == tenant) {
      owned.push_back(conn);
    }
  }
  for (const net::ConnectionId conn : owned) {
    (void)Close(conn);
  }
  // Free any chain slots the tenant's policies hold.
  if (tenant_tx_holder_ == tenant || tenant_rx_holder_ == tenant) {
    if (tenant_tx_holder_ == tenant) {
      tenant_tx_holder_ = kSystemTenant;
    }
    if (tenant_rx_holder_ == tenant) {
      tenant_rx_holder_ = kSystemTenant;
    }
    InstallPipeline();
    nic_cp_->InvalidateFastPath();
  }
  nic_cp_->RemoveTenant(tenant);
  tenants_.erase(it);
  if (active_config_.tenant_isolation &&
      nic_cp_->scheduler()->backlog_packets() == 0) {
    InstallTenantQdisc();
  }
  return OkStatus();
}

TenantId Kernel::TenantOf(Uid uid) const {
  return tenants_.contains(uid) ? uid : kSystemTenant;
}

const TenantSpec* Kernel::FindTenantSpec(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second.spec;
}

StatusOr<Nanos> Kernel::LoadTenantPolicy(TenantId tenant, Chain chain,
                                         const overlay::Program& program) {
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return NotFoundError("tenant " + std::to_string(tenant) +
                         " not registered");
  }
  TenantId& holder =
      chain == Chain::kOutput ? tenant_tx_holder_ : tenant_rx_holder_;
  const size_t slot = chain == Chain::kOutput ? kTenantTxSlot : kTenantRxSlot;
  if (program.empty()) {
    if (holder != tenant) {
      return NotFoundError("tenant policy: slot not held by this tenant");
    }
    holder = kSystemTenant;
    if (it->second.overlay_slots_used > 0) {
      --it->second.overlay_slots_used;
    }
    InstallPipeline();
    nic_cp_->InvalidateFastPath();
    return static_cast<Nanos>(0);
  }
  if (holder != kSystemTenant && holder != tenant) {
    // Would-block, not a quota failure: nothing of the caller's is spent,
    // the slot is simply busy (see the convention in tenant.h).
    return UnavailableError("tenant policy: chain slot held by tenant " +
                            std::to_string(holder));
  }
  const bool newly_held = holder != tenant;
  if (newly_held &&
      it->second.overlay_slots_used >= it->second.spec.overlay_slots) {
    nic_cp_->tenants().CountDenied(tenant);
    return ResourceExhaustedError(
        "tenant " + std::to_string(tenant) +
        " overlay slot quota exhausted (" +
        std::to_string(it->second.spec.overlay_slots) + " admitted)");
  }
  auto load = nic_cp_->LoadOverlay(slot, program);
  if (!load.ok()) {
    return load;
  }
  if (newly_held) {
    holder = tenant;
    ++it->second.overlay_slots_used;
    InstallPipeline();
  }
  nic_cp_->InvalidateFastPath();
  return load;
}

// ---- Tenant (RAII handle) ---------------------------------------------------

Tenant::~Tenant() { Release(); }

Tenant& Tenant::operator=(Tenant&& other) noexcept {
  if (this != &other) {
    Release();
    MoveFrom(other);
  }
  return *this;
}

void Tenant::Release() {
  if (kernel_ != nullptr) {
    (void)kernel_->ReleaseTenant(id_);
    kernel_ = nullptr;
  }
}

Status Kernel::SoftwareTransmit(net::ConnectionId conn_id,
                                net::PacketPtr packet) {
  const auto it = fallback_conns_.find(conn_id);
  if (it == fallback_conns_.end()) {
    return NotFoundError("software tx: not a fallback connection");
  }
  // Host kernel-stack costs: syscall + per-packet processing + copy. All of
  // it charged to the fallback connection's owner — the slow path is where
  // per-process attribution matters most (§5: fallback traffic must not
  // hide inside an anonymous kernel bucket).
  telemetry::ProfScope slow_scope(prof_, prof_slow_site_);
  const uint32_t owner_pid = it->second.owner.owner_pid;
  packet->meta().owner_pid = owner_pid;
  packet->meta().tenant = it->second.owner.owner_tenant;
  sim_->tracepoints().Emit(
      telemetry::Probe::kSlowPath, telemetry::Tracepoints::kCoreHost,
      owner_pid, static_cast<uint64_t>(telemetry::SlowPathOp::kSoftTransmit),
      static_cast<uint64_t>(conn_id), packet->size());
  const auto& cost = nic_->cost();
  const Nanos cpu = cost.syscall_ns + cost.kernel_stack_per_packet_ns +
                    cost.CopyCost(packet->size());
  const Nanos ready = kernel_core_.Serve(sim_->Now(), cpu);
  if (prof_->enabled()) {
    prof_->ChargeCurrent(prof_core_kernel_, prof_->OwnerSlot(owner_pid), cpu);
  }
  // Software-path packets still traverse the NIC pipeline (they are not
  // exempt from interposition) via an anonymous descriptor: we deliver them
  // through a temporary flow-less injection, tagging fallback in metadata.
  packet->meta().software_fallback = true;
  packet->meta().connection = conn_id;
  sim_->ScheduleAt(ready, [this, p = std::move(packet)]() mutable {
    // Software-path packets still traverse the NIC TX pipeline — they are
    // not exempt from interposition — via the host injection port.
    nic_->InjectHostPacket(std::move(p), sim_->Now());
  });
  return OkStatus();
}

}  // namespace norman::kernel
