// Multi-tenant resource governance (OSMOSIS-style SmartNIC isolation).
//
// Hypervisors and in-network devices cannot tell tenants apart at the
// dataplane; the kernel can, because it owns the process table and the NIC
// control-plane capability (§4.2). A tenant here is a uid-scoped resource
// envelope the kernel enforces at every NIC charge point: SRAM bytes (flow
// table, conntrack, flow-cache partitions, top-talkers), ring/notify
// memory, overlay program slots, and a WFQ share of NIC pipeline cycles.
//
// Admission-failure semantics follow the socket.h convention: a request
// that exceeds the tenant's envelope fails with kResourceExhausted (the
// quota is spent — retry after releasing something), while a shared slot
// currently held by another tenant fails with kUnavailable (would-block —
// retry later without releasing anything of your own).
#ifndef NORMAN_KERNEL_TENANT_H_
#define NORMAN_KERNEL_TENANT_H_

#include <cstdint>
#include <utility>

#include "src/kernel/process.h"

namespace norman::kernel {

class Kernel;

// Tenants are derived from user identity: tenant id == uid. Uid 0 (root)
// maps to the system tenant, which is never quota'd — unmatched wire
// traffic and kernel-originated state also land there.
using TenantId = uint32_t;
inline constexpr TenantId kSystemTenant = 0;

// Declarative per-tenant resource envelope. Zero means "unlimited" for the
// byte quotas and "none admitted" for the overlay slot count (loading a
// program is a privilege, not a default).
struct TenantSpec {
  uint64_t sram_bytes = 0;     // NIC SRAM quota across every category
  uint32_t cycle_weight = 1;   // WFQ weight over pipeline cycles (>= 1)
  uint32_t overlay_slots = 0;  // custom overlay programs the tenant may hold
  uint64_t ring_bytes = 0;     // TX+RX ring working-set budget
};

// Whole-NIC configuration, applied atomically by Kernel::Configure: the
// entire struct is validated before any field takes effect, so a rejected
// config leaves the dataplane exactly as it was. This replaces the accreted
// per-feature toggles (EnableNat / EnableFlowCache / EnableSharding /
// EnableTopTalkers / StartMaintenance), which survive as deprecated shims.
struct NicConfig {
  // Megaflow-style verdict cache (fastpath.* metrics).
  bool flow_cache = false;
  size_t flow_cache_entries = 1024;
  // Per-flow heavy-hitter accounting for norman-top (flow.* metrics).
  bool top_talkers = false;
  size_t top_talker_entries = 64;
  // Multi-queue dataplane shards (0 or 1 = serial). Sharding is one-shot:
  // once carved, a live dataplane cannot be re-carved or un-carved.
  uint16_t shard_queues = 0;
  // Source NAT for a private prefix.
  bool nat = false;
  uint32_t nat_private_prefix = 0;  // host byte order
  uint32_t nat_prefix_len = 0;
  uint32_t nat_public_ip = 0;  // host byte order
  // Periodic maintenance tick (conntrack GC + sampler + watchdog).
  bool maintenance = false;
  // WFQ cycle-share enforcement for registered tenants, plus a per-tenant
  // WFQ TX discipline so the shared wire follows the same shares.
  bool tenant_isolation = false;
};

// RAII tenant handle (mirrors norman::Listener): Kernel::CreateTenant
// registers the envelope and returns this; destruction releases the
// tenant — quotas cleared, cycle share removed, owned connections closed,
// held overlay slots freed. Move-only, like every kernel capability.
class Tenant {
 public:
  Tenant() = default;
  ~Tenant();

  Tenant(Tenant&& other) noexcept { MoveFrom(other); }
  Tenant& operator=(Tenant&& other) noexcept;
  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  bool valid() const { return kernel_ != nullptr; }
  TenantId id() const { return id_; }
  const TenantSpec& spec() const { return spec_; }

  // Releases the tenant early (the destructor also does this).
  void Release();

 private:
  friend class Kernel;
  Tenant(Kernel* kernel, TenantId id, const TenantSpec& spec)
      : kernel_(kernel), id_(id), spec_(spec) {}

  void MoveFrom(Tenant& other) noexcept {
    kernel_ = std::exchange(other.kernel_, nullptr);
    id_ = other.id_;
    spec_ = other.spec_;
  }

  Kernel* kernel_ = nullptr;
  TenantId id_ = kSystemTenant;
  TenantSpec spec_;
};

}  // namespace norman::kernel

#endif  // NORMAN_KERNEL_TENANT_H_
