// The application-side dataplane capability (§4.3).
//
// After connect()/accept(), the kernel hands the application exactly this:
// its connection's ring pair and MMIO doorbell window. Every datapath
// operation is a memory or doorbell access — no syscalls — and nothing on
// this object can reconfigure the NIC, so policies cannot be evaded from
// userspace.
#ifndef NORMAN_KERNEL_APP_PORT_H_
#define NORMAN_KERNEL_APP_PORT_H_

#include <memory>
#include <span>

#include "src/common/status.h"
#include "src/net/packet.h"
#include "src/net/types.h"
#include "src/nic/mmio.h"
#include "src/nic/ring.h"
#include "src/nic/smart_nic.h"

namespace norman::kernel {

class Kernel;

class AppPort {
 public:
  AppPort() = default;

  bool valid() const { return conn_id_ != net::kUnknownConnection; }
  // True when the NIC had no room and this connection runs over the host
  // software path (use Kernel::SoftwareTransmit; ring methods are inert).
  bool software_fallback() const { return rings_ == nullptr && valid(); }
  net::ConnectionId conn_id() const { return conn_id_; }
  const net::FiveTuple& tuple() const { return tuple_; }
  net::MacAddress local_mac() const { return local_mac_; }
  net::MacAddress gateway_mac() const { return gateway_mac_; }

  // Publishes one TX descriptor. Returns false when the ring is full (the
  // app should back off or block on the TX-drain notification).
  bool PushTx(net::PacketPtr packet) {
    return rings_ != nullptr && rings_->PushTx(std::move(packet));
  }

  // Rings the TX doorbell: one posted MMIO write; the NIC starts fetching.
  Status RingDoorbell(Nanos now) {
    if (rings_ == nullptr) {
      return FailedPreconditionError("software-fallback port has no doorbell");
    }
    NORMAN_RETURN_IF_ERROR(doorbell_.Write(nic::kRegTxHead,
                                           rings_->tx().head()));
    return nic_->Doorbell(conn_id_, now);
  }

  // Consumes one RX descriptor; nullptr when the ring is empty.
  net::PacketPtr PopRx() {
    if (rings_ == nullptr) {
      return nullptr;
    }
    auto p = rings_->PopRx();
    return p.has_value() ? std::move(*p) : nullptr;
  }

  // Bulk RX consume: pops up to out.size() frames in FIFO order with one
  // occupancy-gauge update for the whole burst. Returns the count popped;
  // a short count means the ring is now empty.
  uint32_t PopRxN(std::span<net::PacketPtr> out) {
    return rings_ == nullptr ? 0 : rings_->PopRxN(out);
  }

  size_t TxSpace() const {
    return rings_ == nullptr ? 0 : rings_->tx().capacity() - rings_->tx().size();
  }
  size_t RxPending() const { return rings_ == nullptr ? 0 : rings_->rx().size(); }

 private:
  friend class Kernel;
  AppPort(net::ConnectionId conn_id, net::FiveTuple tuple,
          net::MacAddress local_mac, net::MacAddress gateway_mac,
          nic::RingPair* rings, nic::DoorbellWindow doorbell,
          nic::SmartNic* nic)
      : conn_id_(conn_id),
        tuple_(tuple),
        local_mac_(local_mac),
        gateway_mac_(gateway_mac),
        rings_(rings),
        doorbell_(doorbell),
        nic_(nic) {}

  net::ConnectionId conn_id_ = net::kUnknownConnection;
  net::FiveTuple tuple_;
  net::MacAddress local_mac_;
  net::MacAddress gateway_mac_;
  nic::RingPair* rings_ = nullptr;
  nic::DoorbellWindow doorbell_;
  nic::SmartNic* nic_ = nullptr;  // doorbell signal path only
};

}  // namespace norman::kernel

#endif  // NORMAN_KERNEL_APP_PORT_H_
