// Two-pass assembler for overlay programs.
//
// This is the format administrators (and tools like norman-iptables) use to
// express custom dataplane policies; the kernel assembles, verifies, and
// loads the result. Syntax, one instruction per line:
//
//   ; drop non-DNS UDP
//       ldf r1, ip_proto
//       jne r1, 17, accept        ; not UDP -> accept
//       ldf r2, dst_port
//       jeq r2, 53, accept
//       ret 0                     ; drop
//   accept:
//       ret 1
//
// Operands: registers r0..r15, decimal or 0x-hex immediates, field names
// (see FieldName in isa.h), and labels as jump targets. `;` or `#` start a
// comment. Labels may share a line with an instruction ("drop: ret 0").
#ifndef NORMAN_OVERLAY_ASSEMBLER_H_
#define NORMAN_OVERLAY_ASSEMBLER_H_

#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/overlay/isa.h"

namespace norman::overlay {

// Assembles source text into a Program. The result is NOT yet verified;
// callers load programs through the kernel, which runs VerifyProgram.
StatusOr<Program> Assemble(std::string_view source);

// Renders a program back to canonical assembly (round-trips with Assemble).
std::string Disassemble(const Program& program);

}  // namespace norman::overlay

#endif  // NORMAN_OVERLAY_ASSEMBLER_H_
