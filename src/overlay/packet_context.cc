#include "src/overlay/packet_context.h"

namespace norman::overlay {

uint64_t PacketContext::ReadField(Field f) const {
  const net::ParsedPacket* p = parsed;
  switch (f) {
    case Field::kPktLen:
      return frame.size();
    case Field::kEthType:
      return p ? p->eth.ether_type : 0;
    case Field::kIsIpv4:
      return (p && p->is_ipv4()) ? 1 : 0;
    case Field::kIsArp:
      return (p && p->is_arp()) ? 1 : 0;
    case Field::kArpOp:
      return (p && p->is_arp()) ? static_cast<uint64_t>(p->arp->op) : 0;
    case Field::kIpProto:
      return (p && p->is_ipv4()) ? static_cast<uint64_t>(p->ipv4->protocol)
                                 : 0;
    case Field::kIpSrc:
      return (p && p->is_ipv4()) ? p->ipv4->src.addr : 0;
    case Field::kIpDst:
      return (p && p->is_ipv4()) ? p->ipv4->dst.addr : 0;
    case Field::kIpDscp:
      return (p && p->is_ipv4()) ? p->ipv4->dscp : 0;
    case Field::kIpTtl:
      return (p && p->is_ipv4()) ? p->ipv4->ttl : 0;
    case Field::kSrcPort:
      if (p && p->is_udp()) {
        return p->udp->src_port;
      }
      if (p && p->is_tcp()) {
        return p->tcp->src_port;
      }
      return 0;
    case Field::kDstPort:
      if (p && p->is_udp()) {
        return p->udp->dst_port;
      }
      if (p && p->is_tcp()) {
        return p->tcp->dst_port;
      }
      return 0;
    case Field::kTcpFlags:
      return (p && p->is_tcp()) ? p->tcp->flags : 0;
    case Field::kPayloadLen:
      return p ? p->payload_size() : 0;
    case Field::kConnId:
      return conn.conn_id;
    case Field::kOwnerUid:
      return conn.owner_uid;
    case Field::kOwnerPid:
      return conn.owner_pid;
    case Field::kOwnerCgroup:
      return conn.owner_cgroup;
    case Field::kOwnerComm:
      return conn.owner_comm;
    case Field::kDirection:
      return direction == net::Direction::kRx ? 1 : 0;
  }
  return 0;
}

}  // namespace norman::overlay
