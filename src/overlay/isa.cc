#include "src/overlay/isa.h"

#include <array>

namespace norman::overlay {

bool IsJump(Opcode op) {
  switch (op) {
    case Opcode::kJmp:
    case Opcode::kJeq:
    case Opcode::kJne:
    case Opcode::kJgt:
    case Opcode::kJlt:
    case Opcode::kJge:
    case Opcode::kJle:
      return true;
    default:
      return false;
  }
}

bool IsAlu(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kMul:
      return true;
    default:
      return false;
  }
}

std::string_view OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kNop:
      return "nop";
    case Opcode::kLdi:
      return "ldi";
    case Opcode::kLdf:
      return "ldf";
    case Opcode::kLdb:
      return "ldb";
    case Opcode::kAdd:
      return "add";
    case Opcode::kSub:
      return "sub";
    case Opcode::kAnd:
      return "and";
    case Opcode::kOr:
      return "or";
    case Opcode::kXor:
      return "xor";
    case Opcode::kShl:
      return "shl";
    case Opcode::kShr:
      return "shr";
    case Opcode::kMul:
      return "mul";
    case Opcode::kJmp:
      return "jmp";
    case Opcode::kJeq:
      return "jeq";
    case Opcode::kJne:
      return "jne";
    case Opcode::kJgt:
      return "jgt";
    case Opcode::kJlt:
      return "jlt";
    case Opcode::kJge:
      return "jge";
    case Opcode::kJle:
      return "jle";
    case Opcode::kRet:
      return "ret";
  }
  return "?";
}

namespace {

struct FieldNameEntry {
  Field field;
  std::string_view name;
};

constexpr std::array<FieldNameEntry, 20> kFieldNames = {{
    {Field::kPktLen, "pkt_len"},
    {Field::kEthType, "eth_type"},
    {Field::kIsIpv4, "is_ipv4"},
    {Field::kIsArp, "is_arp"},
    {Field::kArpOp, "arp_op"},
    {Field::kIpProto, "ip_proto"},
    {Field::kIpSrc, "ip_src"},
    {Field::kIpDst, "ip_dst"},
    {Field::kIpDscp, "ip_dscp"},
    {Field::kIpTtl, "ip_ttl"},
    {Field::kSrcPort, "src_port"},
    {Field::kDstPort, "dst_port"},
    {Field::kTcpFlags, "tcp_flags"},
    {Field::kPayloadLen, "payload_len"},
    {Field::kConnId, "conn_id"},
    {Field::kOwnerUid, "owner_uid"},
    {Field::kOwnerPid, "owner_pid"},
    {Field::kOwnerCgroup, "owner_cgroup"},
    {Field::kOwnerComm, "owner_comm"},
    {Field::kDirection, "direction"},
}};

}  // namespace

std::string_view FieldName(Field f) {
  for (const auto& e : kFieldNames) {
    if (e.field == f) {
      return e.name;
    }
  }
  return "?";
}

bool FieldFromName(std::string_view name, Field* out) {
  for (const auto& e : kFieldNames) {
    if (e.name == name) {
      *out = e.field;
      return true;
    }
  }
  return false;
}

}  // namespace norman::overlay
