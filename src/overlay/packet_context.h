// Execution context an overlay program sees for one packet: the raw frame,
// the parsed headers (the hardware parser frontend), and the kernel-attached
// connection metadata from the NIC flow table.
#ifndef NORMAN_OVERLAY_PACKET_CONTEXT_H_
#define NORMAN_OVERLAY_PACKET_CONTEXT_H_

#include <cstdint>
#include <span>

#include "src/net/packet.h"
#include "src/net/parsed_packet.h"
#include "src/overlay/isa.h"

namespace norman::overlay {

// Metadata the kernel programmed into the NIC flow table for the connection
// this packet belongs to. This is what gives the on-NIC dataplane the
// "process view" (§2): matching on uid/pid/cgroup is impossible for a
// hypervisor switch or an in-network device.
struct ConnMetadata {
  net::ConnectionId conn_id = net::kUnknownConnection;
  uint32_t owner_uid = 0;
  uint32_t owner_pid = 0;
  uint32_t owner_cgroup = 0;
  // Interned process-name id (kernel-assigned; 0 = unknown). Lets overlay
  // programs implement iptables' cmd-owner match in hardware registers.
  uint32_t owner_comm = 0;
  // Kernel-assigned tenant (0 = untenanted/system). Resolved from the
  // owning uid/cgroup at flow-install time; every NIC-side quota charge and
  // cycle-share decision keys off this field.
  uint32_t owner_tenant = 0;
};

struct PacketContext {
  std::span<const uint8_t> frame;
  const net::ParsedPacket* parsed = nullptr;  // may be null (unparsed)
  ConnMetadata conn;
  net::Direction direction = net::Direction::kTx;

  // Field extraction; unknown/missing fields read as 0 (hardware semantics:
  // the parser valid-bit gates the field bus).
  uint64_t ReadField(Field f) const;

  // Raw byte probe; out-of-bounds reads return 0.
  uint64_t ReadByte(int64_t offset) const {
    if (offset < 0 || static_cast<size_t>(offset) >= frame.size()) {
      return 0;
    }
    return frame[static_cast<size_t>(offset)];
  }
};

}  // namespace norman::overlay

#endif  // NORMAN_OVERLAY_PACKET_CONTEXT_H_
