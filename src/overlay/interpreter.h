// Overlay program interpreter — the functional model of the soft processor.
//
// Programs must pass VerifyProgram before execution; the interpreter still
// carries cheap runtime guards (it is the reference model the hardware is
// checked against). Execution reports the instruction count so the NIC model
// can charge overlay_instr_ns per instruction.
#ifndef NORMAN_OVERLAY_INTERPRETER_H_
#define NORMAN_OVERLAY_INTERPRETER_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/overlay/isa.h"
#include "src/overlay/packet_context.h"

namespace norman::overlay {

struct ExecResult {
  int64_t verdict = 0;
  uint32_t instructions_executed = 0;
};

StatusOr<ExecResult> Execute(const Program& program, const PacketContext& ctx);

}  // namespace norman::overlay

#endif  // NORMAN_OVERLAY_INTERPRETER_H_
