#include "src/overlay/interpreter.h"

#include <array>

namespace norman::overlay {

StatusOr<ExecResult> Execute(const Program& program,
                             const PacketContext& ctx) {
  std::array<uint64_t, kNumRegisters> regs{};
  ExecResult result;
  size_t pc = 0;

  // Verified programs cannot loop, so the trip count is bounded by size;
  // the guard below protects against unverified programs slipping through.
  const size_t max_steps = program.size() + 1;
  while (pc < program.size()) {
    if (result.instructions_executed++ > max_steps) {
      return InternalError("overlay: step budget exceeded (unverified loop?)");
    }
    const Instruction& ins = program[pc];
    const uint64_t rhs =
        ins.use_imm ? static_cast<uint64_t>(ins.imm) : regs[ins.src];
    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kLdi:
        regs[ins.dst] = static_cast<uint64_t>(ins.imm);
        break;
      case Opcode::kLdf:
        regs[ins.dst] = ctx.ReadField(static_cast<Field>(ins.imm));
        break;
      case Opcode::kLdb:
        regs[ins.dst] = ctx.ReadByte(ins.imm);
        break;
      case Opcode::kAdd:
        regs[ins.dst] += rhs;
        break;
      case Opcode::kSub:
        regs[ins.dst] -= rhs;
        break;
      case Opcode::kAnd:
        regs[ins.dst] &= rhs;
        break;
      case Opcode::kOr:
        regs[ins.dst] |= rhs;
        break;
      case Opcode::kXor:
        regs[ins.dst] ^= rhs;
        break;
      case Opcode::kShl:
        regs[ins.dst] <<= (rhs & 63);
        break;
      case Opcode::kShr:
        regs[ins.dst] >>= (rhs & 63);
        break;
      case Opcode::kMul:
        regs[ins.dst] *= rhs;
        break;
      case Opcode::kJmp:
        pc = static_cast<size_t>(ins.jump_target);
        continue;
      case Opcode::kJeq:
      case Opcode::kJne:
      case Opcode::kJgt:
      case Opcode::kJlt:
      case Opcode::kJge:
      case Opcode::kJle: {
        const uint64_t lhs = regs[ins.dst];
        bool taken = false;
        switch (ins.op) {
          case Opcode::kJeq:
            taken = lhs == rhs;
            break;
          case Opcode::kJne:
            taken = lhs != rhs;
            break;
          case Opcode::kJgt:
            taken = lhs > rhs;
            break;
          case Opcode::kJlt:
            taken = lhs < rhs;
            break;
          case Opcode::kJge:
            taken = lhs >= rhs;
            break;
          case Opcode::kJle:
            taken = lhs <= rhs;
            break;
          default:
            break;
        }
        if (taken) {
          pc = static_cast<size_t>(ins.jump_target);
          continue;
        }
        break;
      }
      case Opcode::kRet:
        result.verdict = ins.use_imm ? ins.imm
                                     : static_cast<int64_t>(regs[ins.dst]);
        return result;
    }
    ++pc;
  }
  return InternalError("overlay: fell off program end (unverified program?)");
}

}  // namespace norman::overlay
