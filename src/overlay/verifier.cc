#include "src/overlay/verifier.h"

#include <string>
#include <vector>

namespace norman::overlay {
namespace {

Status Err(size_t pc, const std::string& what) {
  return InvalidArgumentError("overlay verifier: instr " + std::to_string(pc) +
                              ": " + what);
}

bool ValidField(int64_t raw) {
  return raw >= 0 && raw <= static_cast<int64_t>(Field::kDirection);
}

}  // namespace

Status VerifyProgram(const Program& program) {
  if (program.empty()) {
    return InvalidArgumentError("overlay verifier: empty program");
  }
  if (program.size() > kMaxProgramLength) {
    return InvalidArgumentError(
        "overlay verifier: program exceeds instruction memory (" +
        std::to_string(program.size()) + " > " +
        std::to_string(kMaxProgramLength) + ")");
  }

  const auto size = static_cast<int64_t>(program.size());
  for (size_t pc = 0; pc < program.size(); ++pc) {
    const Instruction& ins = program[pc];
    if (ins.dst >= kNumRegisters) {
      return Err(pc, "register r" + std::to_string(ins.dst) + " out of range");
    }
    if (!ins.use_imm && ins.src >= kNumRegisters) {
      return Err(pc, "register r" + std::to_string(ins.src) + " out of range");
    }
    switch (ins.op) {
      case Opcode::kLdf:
        if (!ins.use_imm || !ValidField(ins.imm)) {
          return Err(pc, "invalid field id");
        }
        break;
      case Opcode::kLdb:
        if (!ins.use_imm || ins.imm < 0 || ins.imm > kMaxByteProbeOffset) {
          return Err(pc, "byte probe offset out of range");
        }
        break;
      case Opcode::kLdi:
        if (!ins.use_imm) {
          return Err(pc, "ldi requires an immediate");
        }
        break;
      case Opcode::kShl:
      case Opcode::kShr:
        if (ins.use_imm && (ins.imm < 0 || ins.imm > 63)) {
          return Err(pc, "shift amount out of range");
        }
        break;
      default:
        break;
    }
    if (IsJump(ins.op)) {
      if (ins.jump_target <= static_cast<int64_t>(pc)) {
        return Err(pc, "backward or self jump (loops are not allowed)");
      }
      if (ins.jump_target >= size) {
        return Err(pc, "jump target out of bounds");
      }
    }
  }

  // Fall-through analysis: instruction i is "terminal" if it is kRet or an
  // unconditional kJmp. Reaching the last instruction requires it to be
  // terminal; conditional jumps fall through, so any non-terminal
  // instruction at index size-1 is an error. Because all jumps are forward,
  // checking the final instruction suffices for "cannot fall off the end".
  const Instruction& last = program.back();
  if (last.op != Opcode::kRet && last.op != Opcode::kJmp) {
    return Err(program.size() - 1,
               "program can fall off the end (last instruction must be ret)");
  }
  // A trailing jmp must target... nothing exists past the end, and forward
  // jumps past size are rejected above, so a final kJmp is always invalid.
  if (last.op == Opcode::kJmp) {
    return Err(program.size() - 1, "unconditional jump cannot be last");
  }
  return OkStatus();
}

}  // namespace norman::overlay
