#include "src/overlay/assembler.h"

#include <cctype>
#include <charconv>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace norman::overlay {
namespace {

struct Token {
  std::string text;
};

// One source line broken into mnemonic + operand tokens (commas removed).
struct Line {
  size_t number;                 // 1-based source line
  std::vector<std::string> labels;
  std::string mnemonic;          // empty for label-only lines
  std::vector<std::string> operands;
};

std::string_view StripComment(std::string_view s) {
  const size_t pos = s.find_first_of(";#");
  return pos == std::string_view::npos ? s : s.substr(0, pos);
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

Status Err(size_t line, const std::string& what) {
  return InvalidArgumentError("asm line " + std::to_string(line) + ": " +
                              what);
}

// Splits a trimmed line into labels and instruction tokens.
StatusOr<Line> Tokenize(size_t number, std::string_view raw) {
  Line line;
  line.number = number;
  std::string_view rest = Trim(StripComment(raw));
  // Peel leading "label:" prefixes.
  for (;;) {
    const size_t colon = rest.find(':');
    if (colon == std::string_view::npos) {
      break;
    }
    const std::string_view candidate = Trim(rest.substr(0, colon));
    if (candidate.empty() ||
        candidate.find_first_of(" \t,") != std::string_view::npos) {
      break;  // ':' belongs to something else; no labels here
    }
    line.labels.emplace_back(candidate);
    rest = Trim(rest.substr(colon + 1));
  }
  if (rest.empty()) {
    return line;
  }
  // Mnemonic = first word; operands = comma/space-separated tokens.
  std::string text(rest);
  for (auto& c : text) {
    if (c == ',') {
      c = ' ';
    }
  }
  std::istringstream iss(text);
  iss >> line.mnemonic;
  std::string tok;
  while (iss >> tok) {
    line.operands.push_back(tok);
  }
  return line;
}

std::optional<uint8_t> ParseRegister(std::string_view s) {
  if (s.size() < 2 || (s[0] != 'r' && s[0] != 'R')) {
    return std::nullopt;
  }
  int value = 0;
  const auto* begin = s.data() + 1;
  const auto* end = s.data() + s.size();
  if (std::from_chars(begin, end, value).ptr != end || value < 0 ||
      value >= kNumRegisters) {
    return std::nullopt;
  }
  return static_cast<uint8_t>(value);
}

std::optional<int64_t> ParseImmediate(std::string_view s) {
  bool negative = false;
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) {
    negative = s[0] == '-';
    s.remove_prefix(1);
  }
  if (s.empty()) {
    return std::nullopt;
  }
  int64_t value = 0;
  std::from_chars_result r{};
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    r = std::from_chars(s.data() + 2, s.data() + s.size(), value, 16);
  } else {
    r = std::from_chars(s.data(), s.data() + s.size(), value, 10);
  }
  if (r.ec != std::errc{} || r.ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return negative ? -value : value;
}

std::optional<Opcode> ParseMnemonic(std::string_view m) {
  static const std::map<std::string_view, Opcode> kTable = {
      {"nop", Opcode::kNop}, {"ldi", Opcode::kLdi}, {"ldf", Opcode::kLdf},
      {"ldb", Opcode::kLdb}, {"add", Opcode::kAdd}, {"sub", Opcode::kSub},
      {"and", Opcode::kAnd}, {"or", Opcode::kOr},   {"xor", Opcode::kXor},
      {"shl", Opcode::kShl}, {"shr", Opcode::kShr}, {"mul", Opcode::kMul},
      {"jmp", Opcode::kJmp}, {"jeq", Opcode::kJeq}, {"jne", Opcode::kJne},
      {"jgt", Opcode::kJgt}, {"jlt", Opcode::kJlt}, {"jge", Opcode::kJge},
      {"jle", Opcode::kJle}, {"ret", Opcode::kRet},
  };
  const auto it = kTable.find(m);
  return it == kTable.end() ? std::nullopt : std::make_optional(it->second);
}

}  // namespace

StatusOr<Program> Assemble(std::string_view source) {
  // Pass 1: tokenize, assign instruction indices, collect labels.
  std::vector<Line> lines;
  std::map<std::string, size_t> labels;
  {
    size_t number = 0;
    size_t instr_index = 0;
    size_t start = 0;
    while (start <= source.size()) {
      size_t end = source.find('\n', start);
      if (end == std::string_view::npos) {
        end = source.size();
      }
      ++number;
      NORMAN_ASSIGN_OR_RETURN(
          Line line, Tokenize(number, source.substr(start, end - start)));
      for (const auto& label : line.labels) {
        if (!labels.emplace(label, instr_index).second) {
          return Err(number, "duplicate label '" + label + "'");
        }
      }
      if (!line.mnemonic.empty()) {
        lines.push_back(line);
        ++instr_index;
      } else if (!line.labels.empty()) {
        lines.push_back(line);  // label-only; binds to next instruction
      }
      start = end + 1;
    }
  }

  // Pass 2: encode.
  Program program;
  auto resolve_target = [&labels](const Line& line, const std::string& tok)
      -> StatusOr<int64_t> {
    if (auto imm = ParseImmediate(tok)) {
      return *imm;
    }
    const auto it = labels.find(tok);
    if (it == labels.end()) {
      return Err(line.number, "unknown label '" + tok + "'");
    }
    return static_cast<int64_t>(it->second);
  };

  for (const Line& line : lines) {
    if (line.mnemonic.empty()) {
      continue;
    }
    const auto opcode = ParseMnemonic(line.mnemonic);
    if (!opcode) {
      return Err(line.number, "unknown mnemonic '" + line.mnemonic + "'");
    }
    Instruction ins;
    ins.op = *opcode;
    const auto& ops = line.operands;
    auto need = [&](size_t n) -> Status {
      if (ops.size() != n) {
        return Err(line.number, "expected " + std::to_string(n) +
                                    " operands, got " +
                                    std::to_string(ops.size()));
      }
      return OkStatus();
    };

    switch (*opcode) {
      case Opcode::kNop:
        NORMAN_RETURN_IF_ERROR(need(0));
        break;
      case Opcode::kLdi: {
        NORMAN_RETURN_IF_ERROR(need(2));
        const auto rd = ParseRegister(ops[0]);
        const auto imm = ParseImmediate(ops[1]);
        if (!rd || !imm) {
          return Err(line.number, "ldi expects: ldi rN, imm");
        }
        ins = Instruction::Ldi(*rd, *imm);
        break;
      }
      case Opcode::kLdf: {
        NORMAN_RETURN_IF_ERROR(need(2));
        const auto rd = ParseRegister(ops[0]);
        Field field;
        if (!rd || !FieldFromName(ops[1], &field)) {
          return Err(line.number, "ldf expects: ldf rN, <field>");
        }
        ins = Instruction::Ldf(*rd, field);
        break;
      }
      case Opcode::kLdb: {
        NORMAN_RETURN_IF_ERROR(need(2));
        const auto rd = ParseRegister(ops[0]);
        const auto off = ParseImmediate(ops[1]);
        if (!rd || !off) {
          return Err(line.number, "ldb expects: ldb rN, offset");
        }
        ins = Instruction::Ldb(*rd, *off);
        break;
      }
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kMul: {
        NORMAN_RETURN_IF_ERROR(need(2));
        const auto rd = ParseRegister(ops[0]);
        if (!rd) {
          return Err(line.number, "ALU op expects a destination register");
        }
        if (const auto rs = ParseRegister(ops[1])) {
          ins = Instruction::AluReg(*opcode, *rd, *rs);
        } else if (const auto imm = ParseImmediate(ops[1])) {
          ins = Instruction::AluImm(*opcode, *rd, *imm);
        } else {
          return Err(line.number, "ALU op expects register or immediate");
        }
        break;
      }
      case Opcode::kJmp: {
        NORMAN_RETURN_IF_ERROR(need(1));
        NORMAN_ASSIGN_OR_RETURN(int64_t target,
                                resolve_target(line, ops[0]));
        ins = Instruction::Jmp(target);
        break;
      }
      case Opcode::kJeq:
      case Opcode::kJne:
      case Opcode::kJgt:
      case Opcode::kJlt:
      case Opcode::kJge:
      case Opcode::kJle: {
        NORMAN_RETURN_IF_ERROR(need(3));
        const auto rs1 = ParseRegister(ops[0]);
        if (!rs1) {
          return Err(line.number, "jump expects a register first operand");
        }
        NORMAN_ASSIGN_OR_RETURN(int64_t target,
                                resolve_target(line, ops[2]));
        if (const auto rs2 = ParseRegister(ops[1])) {
          ins = Instruction::JmpCmpReg(*opcode, *rs1, *rs2, target);
        } else if (const auto imm = ParseImmediate(ops[1])) {
          ins = Instruction::JmpCmpImm(*opcode, *rs1, *imm, target);
        } else {
          return Err(line.number,
                     "jump expects register or immediate comparand");
        }
        break;
      }
      case Opcode::kRet: {
        NORMAN_RETURN_IF_ERROR(need(1));
        if (const auto rs = ParseRegister(ops[0])) {
          ins = Instruction::RetReg(*rs);
        } else if (const auto imm = ParseImmediate(ops[0])) {
          ins = Instruction::RetImm(*imm);
        } else {
          return Err(line.number, "ret expects register or immediate");
        }
        break;
      }
    }
    program.push_back(ins);
  }
  if (program.empty()) {
    return InvalidArgumentError("asm: no instructions");
  }
  return program;
}

std::string Disassemble(const Program& program) {
  std::ostringstream out;
  for (size_t pc = 0; pc < program.size(); ++pc) {
    const Instruction& ins = program[pc];
    out << pc << ": " << OpcodeName(ins.op);
    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kLdi:
      case Opcode::kLdb:
        out << " r" << static_cast<int>(ins.dst) << ", " << ins.imm;
        break;
      case Opcode::kLdf:
        out << " r" << static_cast<int>(ins.dst) << ", "
            << FieldName(static_cast<Field>(ins.imm));
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kMul:
        out << " r" << static_cast<int>(ins.dst) << ", ";
        if (ins.use_imm) {
          out << ins.imm;
        } else {
          out << "r" << static_cast<int>(ins.src);
        }
        break;
      case Opcode::kJmp:
        out << " " << ins.jump_target;
        break;
      case Opcode::kJeq:
      case Opcode::kJne:
      case Opcode::kJgt:
      case Opcode::kJlt:
      case Opcode::kJge:
      case Opcode::kJle:
        out << " r" << static_cast<int>(ins.dst) << ", ";
        if (ins.use_imm) {
          out << ins.imm;
        } else {
          out << "r" << static_cast<int>(ins.src);
        }
        out << ", " << ins.jump_target;
        break;
      case Opcode::kRet:
        if (ins.use_imm) {
          out << " " << ins.imm;
        } else {
          out << " r" << static_cast<int>(ins.dst);
        }
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace norman::overlay
