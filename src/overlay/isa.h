// Instruction set of the Norman overlay.
//
// §4.4 of the paper proposes loading policies into an FPGA *overlay* — "a
// custom, potentially non-Turing complete processor with a domain-specific
// instruction set" — so that filters and queueing policies change without
// reprogramming the FPGA. This module defines that ISA.
//
// The machine is deliberately restricted, like eBPF on a diet:
//  * 16 general-purpose 64-bit registers, all zero at program start;
//  * abstract *packet field* loads (the parser frontend extracts fields, so
//    programs are independent of header offsets) plus raw byte probes;
//  * forward-only branches — no loops, so worst-case execution time is the
//    program length, which is what lets the hardware schedule it at line
//    rate;
//  * one exit: kRet with a verdict value.
//
// Programs are verified (see verifier.h) before the kernel loads them into
// the NIC; the dataplane refuses unverified programs.
#ifndef NORMAN_OVERLAY_ISA_H_
#define NORMAN_OVERLAY_ISA_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace norman::overlay {

inline constexpr int kNumRegisters = 16;
// Hardware instruction memory per overlay slot (models limited FPGA BRAM).
inline constexpr size_t kMaxProgramLength = 512;

enum class Opcode : uint8_t {
  kNop = 0,
  // rd <- imm
  kLdi,
  // rd <- packet field (see Field)
  kLdf,
  // rd <- packet byte at absolute offset imm (0 if out of bounds)
  kLdb,
  // rd <- rs1 OP rs2  /  rd <- rs1 OP imm (use_imm)
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kMul,
  // Conditional relative forward jumps: if (rs1 OP operand) pc += imm-encoded
  // target delta. Encoded as absolute target index for simplicity; verifier
  // enforces target > current pc.
  kJmp,
  kJeq,
  kJne,
  kJgt,
  kJlt,
  kJge,
  kJle,
  // Return verdict: imm if use_imm else rs1.
  kRet,
};

// Abstract packet/metadata fields the load-field unit can extract. The
// *owner* fields are the crux of KOPI: the kernel wrote them into the NIC
// flow table at connection setup, so the dataplane has the process view that
// hypervisor- or switch-level interposition lacks (§2, §3 of the paper).
enum class Field : uint8_t {
  kPktLen = 0,
  kEthType,
  kIsIpv4,    // 1/0
  kIsArp,     // 1/0
  kArpOp,
  kIpProto,
  kIpSrc,
  kIpDst,
  kIpDscp,
  kIpTtl,
  kSrcPort,   // 0 unless TCP/UDP
  kDstPort,
  kTcpFlags,  // 0 unless TCP
  kPayloadLen,
  // Kernel-attached connection metadata (0 / kUnknownConnection when the
  // packet did not come from a registered connection).
  kConnId,
  kOwnerUid,
  kOwnerPid,
  kOwnerCgroup,
  kOwnerComm,  // interned process-name id assigned by the kernel
  kDirection,  // 0 = TX, 1 = RX
};

struct Instruction {
  Opcode op = Opcode::kNop;
  uint8_t dst = 0;   // destination register (also rs1 for jumps/ret)
  uint8_t src = 0;   // second source register
  bool use_imm = false;
  int64_t imm = 0;   // immediate / field id / byte offset / jump target

  static Instruction Ldi(uint8_t rd, int64_t imm) {
    return {Opcode::kLdi, rd, 0, true, imm};
  }
  static Instruction Ldf(uint8_t rd, Field f) {
    return {Opcode::kLdf, rd, 0, true, static_cast<int64_t>(f)};
  }
  static Instruction Ldb(uint8_t rd, int64_t offset) {
    return {Opcode::kLdb, rd, 0, true, offset};
  }
  static Instruction AluReg(Opcode op, uint8_t rd, uint8_t rs) {
    return {op, rd, rs, false, 0};
  }
  static Instruction AluImm(Opcode op, uint8_t rd, int64_t imm) {
    return {op, rd, 0, true, imm};
  }
  static Instruction Jmp(int64_t target) {
    Instruction ins{Opcode::kJmp, 0, 0, true, 0};
    ins.jump_target = target;
    return ins;
  }
  static Instruction JmpCmpImm(Opcode op, uint8_t rs1, int64_t cmp,
                               int64_t target) {
    // Comparison immediate packs into src-free imm; target in dst-free spot.
    Instruction ins{op, rs1, 0, true, cmp};
    ins.jump_target = target;
    return ins;
  }
  static Instruction JmpCmpReg(Opcode op, uint8_t rs1, uint8_t rs2,
                               int64_t target) {
    Instruction ins{op, rs1, rs2, false, 0};
    ins.jump_target = target;
    return ins;
  }
  static Instruction RetImm(int64_t verdict) {
    return {Opcode::kRet, 0, 0, true, verdict};
  }
  static Instruction RetReg(uint8_t rs) {
    return {Opcode::kRet, rs, 0, false, 0};
  }

  // Absolute instruction index for branches (kJmp..kJle).
  int64_t jump_target = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

using Program = std::vector<Instruction>;

bool IsJump(Opcode op);
bool IsAlu(Opcode op);
std::string_view OpcodeName(Opcode op);
std::string_view FieldName(Field f);

// Inverse of FieldName; returns false if unknown.
bool FieldFromName(std::string_view name, Field* out);

}  // namespace norman::overlay

#endif  // NORMAN_OVERLAY_ISA_H_
