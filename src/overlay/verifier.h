// Static verifier for overlay programs.
//
// The kernel control plane verifies every program before loading it into NIC
// instruction memory (just as the in-kernel eBPF verifier gates programs
// today). Verification guarantees:
//   * length within hardware instruction memory (kMaxProgramLength);
//   * every branch is strictly forward and in-bounds (no loops, so WCET ==
//     program length and the pipeline can run it at line rate);
//   * every register operand < kNumRegisters;
//   * field ids and byte offsets are valid;
//   * execution cannot fall off the end: every path reaches a kRet.
#ifndef NORMAN_OVERLAY_VERIFIER_H_
#define NORMAN_OVERLAY_VERIFIER_H_

#include "src/common/status.h"
#include "src/overlay/isa.h"

namespace norman::overlay {

// Maximum raw byte-probe offset the load unit supports.
inline constexpr int64_t kMaxByteProbeOffset = 255;

Status VerifyProgram(const Program& program);

}  // namespace norman::overlay

#endif  // NORMAN_OVERLAY_VERIFIER_H_
