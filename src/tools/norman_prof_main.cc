// norman-prof: the dataplane profiler CLI, run against a scripted,
// deterministic scenario. Where norman-stat answers "what happened" and
// norman-top answers "what is happening", norman-prof answers "who spent
// the cycles, and where": per-stage attribution stacks, per-core
// conservation (busy == attributed + unaccounted), and the per-owner
// resource ledger the kernel's flow->pid map makes possible.
//
// The scenario exercises every attribution context the dataplane has:
//   * flow-cache-hit traffic (webapp: repeated echo on one flow, fastpath),
//   * full chain walks (batch: first packets + cache-ineligible traffic),
//   * a filter drop (attr.*.drops),
//   * a software-fallback connection whose packets burn host kernel cycles
//     under kernel.slow_path,
//   * the periodic maintenance tick (zero-cost scope, visible by entries).
//
// All outputs are byte-stable across runs. --flame-out writes folded stacks
// consumable by inferno / flamegraph.pl / speedscope.
//
// Usage: norman_prof [--by-stage] [--by-owner] [--json] [--flame-out FILE]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

constexpr auto kPeerIp = net::Ipv4Address::FromOctets(10, 0, 0, 2);

void RunScenario(workload::TestBed& bed) {
  auto& k = bed.kernel();
  k.nic_control().EnableFlowCache(1024);
  k.processes().AddUser(1001, "alice");
  k.processes().AddUser(1002, "bob");
  const auto web_pid = *k.processes().Spawn(1001, "webapp");
  const auto batch_pid = *k.processes().Spawn(1002, "batch");
  k.StartMaintenance();

  // Root policy: batch may not reach port 9999 — those packets drop on the
  // OUTPUT chain and land in batch's attr ledger.
  (void)tools::IptablesAppend(&k, kernel::kRootUid,
                              "-A OUTPUT -p udp --dport 9999 -j DROP");

  auto web = Socket::Connect(&k, web_pid, kPeerIp, 7777, {});
  auto batch = Socket::Connect(&k, batch_pid, kPeerIp, 8888, {});
  auto denied = Socket::Connect(&k, batch_pid, kPeerIp, 9999, {});
  if (!web.ok() || !batch.ok() || !denied.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return;
  }

  // A software-fallback connection: hold the remaining NIC SRAM hostage so
  // the flow install fails over to the host path, then release. Its
  // packets are charged syscall + kernel stack + copy on kernel.core.
  auto& cp = k.nic_control();
  const uint64_t hostage = cp.sram().available();
  (void)cp.InjectSramPressure(hostage);
  kernel::ConnectOptions fb;
  fb.allow_software_fallback = true;
  auto fallback = Socket::Connect(&k, batch_pid, kPeerIp, 6666, fb);
  cp.ReleaseSramPressure();

  const std::vector<uint8_t> big(1024, 0xaa);
  const std::vector<uint8_t> small(128, 0xbb);
  uint8_t scratch[2048];
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 16; ++i) {
      (void)web->Send(big);  // steady flow: fastpath hits dominate
    }
    for (int i = 0; i < 2; ++i) {
      (void)batch->Send(small);
      (void)denied->Send(small);  // filter drop
    }
    if (fallback.ok()) {
      (void)fallback->Send(small);  // host slow path
    }
    k.StartMaintenance();  // re-arm (parks itself when the heap drains)
    bed.sim().Run();
    while (web->RecvInto(scratch).ok()) {
    }
    while (batch->RecvInto(scratch).ok()) {
    }
  }
}

int Main(int argc, char** argv) {
  bool by_stage = false;
  bool by_owner = false;
  bool json = false;
  std::string flame_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--by-stage") {
      by_stage = true;
    } else if (arg == "--by-owner") {
      by_owner = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--flame-out" && i + 1 < argc) {
      flame_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--by-stage] [--by-owner] [--json] "
                   "[--flame-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  workload::TestBedOptions opts;
  opts.echo = true;
  opts.kernel.housekeeping_period = 100 * kMicrosecond;
  workload::TestBed bed(opts);
  bed.sim().profiler().set_enabled(true);
  RunScenario(bed);

  const auto& prof = bed.sim().profiler();
  if (!flame_path.empty()) {
    std::ofstream out(flame_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", flame_path.c_str());
      return 1;
    }
    out << prof.FoldedStacks();
    std::fprintf(stderr, "wrote folded stacks to %s\n", flame_path.c_str());
  }
  if (json) {
    std::printf("%s\n", prof.JsonReport().c_str());
    return 0;
  }
  // Default: both views; each flag narrows to one.
  if (by_stage || !by_owner) {
    std::printf("%s", tools::ProfByStage(bed.kernel()).c_str());
  }
  if (by_owner || !by_stage) {
    std::printf("%s", tools::ProfByOwner(bed.kernel()).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace norman

int main(int argc, char** argv) { return norman::Main(argc, argv); }
