// Administrative tools (§4.2): "Tools such as tc, iptables and tcpdump also
// call into the in-kernel control plane, which updates the SmartNIC
// dataplane."
//
// Each tool is a thin frontend over Kernel's root-only syscalls plus a
// renderer producing familiar, human-readable output. The crucial
// difference from their Linux namesakes is visible in the output of
// norman-tcpdump and norman-netstat: every line is annotated with the
// owning pid/user/comm, courtesy of the NIC flow table.
#ifndef NORMAN_TOOLS_TOOLS_H_
#define NORMAN_TOOLS_TOOLS_H_

#include <string>

#include "src/common/status.h"
#include "src/kernel/kernel.h"

namespace norman::tools {

// ---- norman-tcpdump --------------------------------------------------------
// Starts/stops capture; Render prints captured frames with process
// annotations: "12.3us TX pid=104 (buggy/charlie) ARP who-has 10.0.0.9".
Status TcpdumpStart(kernel::Kernel* k, kernel::Uid caller,
                    const std::string& overlay_filter_asm = "");
Status TcpdumpStop(kernel::Kernel* k, kernel::Uid caller);
std::string TcpdumpRender(const kernel::Kernel& k, size_t max_lines = 50);
// Writes the capture to a .pcap file readable by stock tcpdump/wireshark.
Status TcpdumpWritePcap(const kernel::Kernel& k, const std::string& path);

// ---- norman-iptables -------------------------------------------------------
// Appends a rule expressed in iptables-ish flag form. Supported tokens:
//   -A INPUT|OUTPUT  -p udp|tcp|icmp  -s a.b.c.d[/n]  -d a.b.c.d[/n]
//   --sport lo[:hi]  --dport lo[:hi]
//   -m owner --uid-owner N | --pid-owner N | --cmd-owner NAME
//   --cgroup N
//   -j ACCEPT|DROP|FALLBACK
// Example: "-A OUTPUT -p tcp --dport 5432 -m owner --uid-owner 1001 -j ACCEPT"
StatusOr<size_t> IptablesAppend(kernel::Kernel* k, kernel::Uid caller,
                                const std::string& spec);
Status IptablesDelete(kernel::Kernel* k, kernel::Uid caller,
                      kernel::Chain chain, size_t index);
Status IptablesFlush(kernel::Kernel* k, kernel::Uid caller,
                     kernel::Chain chain);
// "-L -v"-style listing with hit counters.
std::string IptablesList(const kernel::Kernel& k);

// ---- norman-tc -------------------------------------------------------------
// Installs a qdisc from a tc-ish spec:
//   "qdisc replace dev nic0 root fifo"
//   "qdisc replace dev nic0 root prio bands 3"
//   "qdisc replace dev nic0 root tbf rate 100mbit burst 32kb"
//   "qdisc replace dev nic0 root drr quantum 1514"
//   "qdisc replace dev nic0 root wfq uid 1001:8 uid 1002:1"   (uid weights)
//   "qdisc replace dev nic0 root wfq cgroup 2:4 cgroup 3:1"   (cgroup weights)
Status TcReplace(kernel::Kernel* k, kernel::Uid caller,
                 const std::string& spec);
std::string TcShow(const kernel::Kernel& k);

// Per-connection rate limit via the NIC pacer:
//   "conn 3 rate 100mbit burst 16kb"   (rate 0 clears)
Status TcRateLimit(kernel::Kernel* k, kernel::Uid caller,
                   const std::string& spec);

// ---- norman-stat (ethtool -S equivalent) -----------------------------------
// NIC datapath counters, SRAM occupancy by category, DDIO behavior, drop
// accounting, and resource utilizations over the elapsed virtual time.
std::string NicStat(const kernel::Kernel& k, const nic::SmartNic& nic);

// The `norman-stat --drops` view: per-reason TX/RX drop table, the
// owner-annotated ledger, and the kernel slow-path drop counters.
std::string NicStatDrops(const kernel::Kernel& k, const nic::SmartNic& nic);

// The `norman-stat --fastpath` view: flow verdict cache occupancy, hit/miss
// balance, epoch invalidations, evictions, and SRAM footprint.
std::string NicStatFastPath(const kernel::Kernel& k,
                            const nic::SmartNic& nic);

// ---- norman-top ------------------------------------------------------------
// The continuous-monitoring dashboard: per-process and per-flow bandwidth,
// every bounded queue's depth + high watermark, and the watchdog's health
// verdicts. Reads the registry, the NIC top-talkers table, and the kernel
// sampler/watchdog — pure observation, byte-stable for a deterministic run.
std::string TopRender(const kernel::Kernel& k, const nic::SmartNic& nic,
                      size_t max_flows = 10);
std::string TopJson(const kernel::Kernel& k, const nic::SmartNic& nic,
                    size_t max_flows = 10);

// The `norman-top --alerts` view: just the health watchdog's alert log
// (every logged state transition, oldest first) plus the drop count for
// entries the bounded log already evicted.
std::string TopAlerts(const kernel::Kernel& k);

// ---- norman-prof -----------------------------------------------------------
// Dataplane cycle & resource attribution (src/common/profiler.h). ByStage
// renders the per-core conservation table plus the attribution-context tree;
// ByOwner renders the per-process resource ledger (cycles split by core
// kind, packets, bytes, drops, SRAM). Both are byte-stable for a
// deterministic run.
std::string ProfByStage(const kernel::Kernel& k);
std::string ProfByOwner(const kernel::Kernel& k);

// The `norman-top --by-pid` view: the profiler's owner ledger framed as a
// process dashboard.
std::string TopByPid(const kernel::Kernel& k);

// The `norman-top --by-core` view for the sharded dataplane: one row per
// profiler core (busy / attributed / unaccounted — the conservation triple)
// followed by every per-queue lane ring's depth and high watermark, so a
// stuck or hot lane stands out against its siblings. Byte-stable for a
// deterministic run.
std::string TopByCore(const kernel::Kernel& k, const nic::SmartNic& nic);

// The `norman-top --by-tenant` view for the multi-tenant dataplane: one row
// per registered tenant (WFQ weight, packets, cycles consumed, time spent
// throttled behind its own share, drops, denied admissions, SRAM held),
// followed by the profiler's owner ledger grouped under each owning tenant
// (pid -> uid -> tenant). Byte-stable for a deterministic run.
std::string TopByTenant(const kernel::Kernel& k, const nic::SmartNic& nic);

// ---- norman-netstat --------------------------------------------------------
// Connection table with owner annotations, like `netstat -tupn`.
std::string Netstat(const kernel::Kernel& k);

// ---- norman-arp ------------------------------------------------------------
// ARP cache plus — unique to Norman — the TX-side ARP forensic log with the
// emitting process for every application-originated ARP frame.
std::string ArpShow(const kernel::Kernel& k);

}  // namespace norman::tools

#endif  // NORMAN_TOOLS_TOOLS_H_
