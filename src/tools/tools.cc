#include "src/tools/tools.h"

#include <cstdio>
#include <sstream>
#include <vector>

#include "src/common/stats.h"
#include "src/dataplane/qdisc.h"
#include "src/nic/fifo_scheduler.h"
#include "src/overlay/assembler.h"

namespace norman::tools {
namespace {

std::vector<std::string> Tokenize(const std::string& s) {
  std::istringstream iss(s);
  std::vector<std::string> tokens;
  std::string tok;
  while (iss >> tok) {
    tokens.push_back(tok);
  }
  return tokens;
}

StatusOr<net::Ipv4Address> ParseIp(const std::string& s, uint32_t* prefix) {
  unsigned a, b, c, d;
  unsigned p = 32;
  const int n = std::sscanf(s.c_str(), "%u.%u.%u.%u/%u", &a, &b, &c, &d, &p);
  if (n < 4 || a > 255 || b > 255 || c > 255 || d > 255 || p > 32) {
    return InvalidArgumentError("bad address: " + s);
  }
  *prefix = p;
  return net::Ipv4Address::FromOctets(
      static_cast<uint8_t>(a), static_cast<uint8_t>(b),
      static_cast<uint8_t>(c), static_cast<uint8_t>(d));
}

StatusOr<dataplane::PortRange> ParsePorts(const std::string& s) {
  unsigned lo = 0, hi = 0;
  if (std::sscanf(s.c_str(), "%u:%u", &lo, &hi) == 2) {
    if (lo > 65535 || hi > 65535 || lo > hi) {
      return InvalidArgumentError("bad port range: " + s);
    }
    return dataplane::PortRange{static_cast<uint16_t>(lo),
                                static_cast<uint16_t>(hi)};
  }
  if (std::sscanf(s.c_str(), "%u", &lo) == 1 && lo <= 65535) {
    return dataplane::PortRange{static_cast<uint16_t>(lo),
                                static_cast<uint16_t>(lo)};
  }
  return InvalidArgumentError("bad port: " + s);
}

std::string ActionName(dataplane::FilterAction a) {
  switch (a) {
    case dataplane::FilterAction::kAccept:
      return "ACCEPT";
    case dataplane::FilterAction::kDrop:
      return "DROP";
    case dataplane::FilterAction::kSoftwareFallback:
      return "FALLBACK";
  }
  return "?";
}

std::string ProtoName(net::IpProto p) {
  switch (p) {
    case net::IpProto::kTcp:
      return "tcp";
    case net::IpProto::kUdp:
      return "udp";
    case net::IpProto::kIcmp:
      return "icmp";
  }
  return "?";
}

void RenderChain(const kernel::Kernel& k, kernel::Chain chain,
                 std::ostringstream& out) {
  const auto& engine = k.filter(chain);
  out << "Chain " << (chain == kernel::Chain::kInput ? "INPUT" : "OUTPUT")
      << " (policy " << ActionName(engine.default_action()) << ", "
      << engine.default_hits() << " default hits)\n";
  const auto& rules = engine.rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    const auto& r = rules[i];
    out << "  [" << i << "] " << ActionName(r.action);
    if (r.proto) {
      out << " -p " << ProtoName(*r.proto);
    }
    if (r.src_ip) {
      out << " -s " << r.src_ip->ToString() << "/"
          << r.src_ip_prefix.value_or(32);
    }
    if (r.dst_ip) {
      out << " -d " << r.dst_ip->ToString() << "/"
          << r.dst_ip_prefix.value_or(32);
    }
    if (r.src_port) {
      out << " --sport " << r.src_port->lo << ":" << r.src_port->hi;
    }
    if (r.dst_port) {
      out << " --dport " << r.dst_port->lo << ":" << r.dst_port->hi;
    }
    if (r.owner_uid) {
      out << " --uid-owner " << *r.owner_uid;
    }
    if (r.owner_pid) {
      out << " --pid-owner " << *r.owner_pid;
    }
    if (r.owner_comm) {
      out << " --cmd-owner #" << *r.owner_comm;
    }
    if (r.owner_cgroup) {
      out << " --cgroup " << *r.owner_cgroup;
    }
    if (!r.label.empty()) {
      out << "  (" << r.label << ")";
    }
    out << "  [" << engine.hit_counts()[i] << " hits]\n";
  }
}

}  // namespace

// ---- tcpdump ----------------------------------------------------------------

Status TcpdumpStart(kernel::Kernel* k, kernel::Uid caller,
                    const std::string& overlay_filter_asm) {
  std::optional<overlay::Program> filter;
  if (!overlay_filter_asm.empty()) {
    NORMAN_ASSIGN_OR_RETURN(overlay::Program prog,
                            overlay::Assemble(overlay_filter_asm));
    filter = std::move(prog);
  }
  return k->StartCapture(caller, std::move(filter));
}

Status TcpdumpStop(kernel::Kernel* k, kernel::Uid caller) {
  return k->StopCapture(caller);
}

std::string TcpdumpRender(const kernel::Kernel& k, size_t max_lines) {
  std::ostringstream out;
  const auto& records = k.sniffer().records();
  const size_t start = records.size() > max_lines
                           ? records.size() - max_lines
                           : 0;
  for (size_t i = start; i < records.size(); ++i) {
    const auto& r = records[i];
    out << FormatNanos(r.timestamp) << " "
        << (r.direction == net::Direction::kTx ? "TX" : "RX");
    if (r.owner.owner_pid != 0) {
      const auto* proc = k.processes().Lookup(r.owner.owner_pid);
      out << " pid=" << r.owner.owner_pid << " ("
          << (proc != nullptr ? proc->comm : "?") << "/"
          << k.processes().UserName(r.owner.owner_uid) << ")";
    } else {
      out << " pid=?";
    }
    if (r.eth_type == 0x0806) {
      out << " ARP " << (r.is_arp_request ? "who-has " : "is-at ")
          << r.dst_ip.ToString() << " tell " << r.src_ip.ToString();
    } else if (r.eth_type == 0x0800) {
      out << " IP " << r.src_ip.ToString() << ":" << r.src_port << " > "
          << r.dst_ip.ToString() << ":" << r.dst_port
          << (r.ip_proto == 6 ? " tcp" : r.ip_proto == 17 ? " udp" : "");
    } else {
      out << " ethertype 0x" << std::hex << r.eth_type << std::dec;
    }
    out << " len " << r.frame_size << "\n";
  }
  if (start > 0) {
    out << "(" << start << " earlier frames elided)\n";
  }
  return out.str();
}

Status TcpdumpWritePcap(const kernel::Kernel& k, const std::string& path) {
  return k.sniffer().pcap().WriteToFile(path);
}

// ---- iptables ----------------------------------------------------------------

StatusOr<size_t> IptablesAppend(kernel::Kernel* k, kernel::Uid caller,
                                const std::string& spec) {
  const auto tokens = Tokenize(spec);
  kernel::Chain chain = kernel::Chain::kOutput;
  dataplane::FilterRule rule;
  bool have_chain = false;
  bool have_action = false;

  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    auto next = [&]() -> StatusOr<std::string> {
      if (i + 1 >= tokens.size()) {
        return InvalidArgumentError("iptables: " + t + " needs an argument");
      }
      return tokens[++i];
    };
    if (t == "-A") {
      NORMAN_ASSIGN_OR_RETURN(std::string c, next());
      if (c == "INPUT") {
        chain = kernel::Chain::kInput;
        rule.direction = net::Direction::kRx;
      } else if (c == "OUTPUT") {
        chain = kernel::Chain::kOutput;
        rule.direction = net::Direction::kTx;
      } else {
        return InvalidArgumentError("iptables: unknown chain " + c);
      }
      have_chain = true;
    } else if (t == "-p") {
      NORMAN_ASSIGN_OR_RETURN(std::string p, next());
      if (p == "tcp") {
        rule.proto = net::IpProto::kTcp;
      } else if (p == "udp") {
        rule.proto = net::IpProto::kUdp;
      } else if (p == "icmp") {
        rule.proto = net::IpProto::kIcmp;
      } else {
        return InvalidArgumentError("iptables: unknown proto " + p);
      }
    } else if (t == "-s" || t == "-d") {
      NORMAN_ASSIGN_OR_RETURN(std::string a, next());
      uint32_t prefix = 32;
      NORMAN_ASSIGN_OR_RETURN(net::Ipv4Address ip, ParseIp(a, &prefix));
      if (t == "-s") {
        rule.src_ip = ip;
        rule.src_ip_prefix = prefix;
      } else {
        rule.dst_ip = ip;
        rule.dst_ip_prefix = prefix;
      }
    } else if (t == "--sport" || t == "--dport") {
      NORMAN_ASSIGN_OR_RETURN(std::string p, next());
      NORMAN_ASSIGN_OR_RETURN(dataplane::PortRange range, ParsePorts(p));
      if (t == "--sport") {
        rule.src_port = range;
      } else {
        rule.dst_port = range;
      }
    } else if (t == "-m") {
      NORMAN_ASSIGN_OR_RETURN(std::string m, next());
      if (m != "owner") {
        return InvalidArgumentError("iptables: unknown match " + m);
      }
    } else if (t == "--uid-owner") {
      NORMAN_ASSIGN_OR_RETURN(std::string v, next());
      rule.owner_uid = static_cast<uint32_t>(std::stoul(v));
    } else if (t == "--pid-owner") {
      NORMAN_ASSIGN_OR_RETURN(std::string v, next());
      rule.owner_pid = static_cast<uint32_t>(std::stoul(v));
    } else if (t == "--cmd-owner") {
      NORMAN_ASSIGN_OR_RETURN(std::string v, next());
      rule.owner_comm = k->CommIdFor(v);
      rule.label = "cmd-owner " + v;
    } else if (t == "--cgroup") {
      NORMAN_ASSIGN_OR_RETURN(std::string v, next());
      rule.owner_cgroup = static_cast<uint32_t>(std::stoul(v));
    } else if (t == "-j") {
      NORMAN_ASSIGN_OR_RETURN(std::string a, next());
      if (a == "ACCEPT") {
        rule.action = dataplane::FilterAction::kAccept;
      } else if (a == "DROP") {
        rule.action = dataplane::FilterAction::kDrop;
      } else if (a == "FALLBACK") {
        rule.action = dataplane::FilterAction::kSoftwareFallback;
      } else {
        return InvalidArgumentError("iptables: unknown target " + a);
      }
      have_action = true;
    } else {
      return InvalidArgumentError("iptables: unknown token " + t);
    }
  }
  if (!have_chain || !have_action) {
    return InvalidArgumentError("iptables: need -A CHAIN and -j TARGET");
  }
  return k->AppendFilterRule(caller, chain, rule);
}

Status IptablesDelete(kernel::Kernel* k, kernel::Uid caller,
                      kernel::Chain chain, size_t index) {
  return k->DeleteFilterRule(caller, chain, index);
}

Status IptablesFlush(kernel::Kernel* k, kernel::Uid caller,
                     kernel::Chain chain) {
  return k->FlushFilterRules(caller, chain);
}

std::string IptablesList(const kernel::Kernel& k) {
  std::ostringstream out;
  RenderChain(k, kernel::Chain::kInput, out);
  RenderChain(k, kernel::Chain::kOutput, out);
  return out.str();
}

// ---- tc -----------------------------------------------------------------------

namespace {

StatusOr<BitsPerSecond> ParseRate(const std::string& s) {
  double value = 0;
  char unit[16] = {0};
  if (std::sscanf(s.c_str(), "%lf%15s", &value, unit) < 1 || value <= 0) {
    return InvalidArgumentError("tc: bad rate " + s);
  }
  const std::string u(unit);
  if (u == "gbit") {
    return static_cast<BitsPerSecond>(value * 1e9);
  }
  if (u == "mbit") {
    return static_cast<BitsPerSecond>(value * 1e6);
  }
  if (u == "kbit") {
    return static_cast<BitsPerSecond>(value * 1e3);
  }
  if (u.empty() || u == "bit") {
    return static_cast<BitsPerSecond>(value);
  }
  return InvalidArgumentError("tc: bad rate unit " + u);
}

StatusOr<uint64_t> ParseSize(const std::string& s) {
  double value = 0;
  char unit[16] = {0};
  if (std::sscanf(s.c_str(), "%lf%15s", &value, unit) < 1 || value <= 0) {
    return InvalidArgumentError("tc: bad size " + s);
  }
  const std::string u(unit);
  if (u == "mb") {
    return static_cast<uint64_t>(value * 1024 * 1024);
  }
  if (u == "kb") {
    return static_cast<uint64_t>(value * 1024);
  }
  if (u.empty() || u == "b") {
    return static_cast<uint64_t>(value);
  }
  return InvalidArgumentError("tc: bad size unit " + u);
}

}  // namespace

Status TcReplace(kernel::Kernel* k, kernel::Uid caller,
                 const std::string& spec) {
  const auto tokens = Tokenize(spec);
  // Expect: qdisc replace dev <dev> root <kind> [args...]
  size_t i = 0;
  auto expect = [&](const std::string& word) -> Status {
    if (i >= tokens.size() || tokens[i] != word) {
      return InvalidArgumentError("tc: expected '" + word + "'");
    }
    ++i;
    return OkStatus();
  };
  NORMAN_RETURN_IF_ERROR(expect("qdisc"));
  NORMAN_RETURN_IF_ERROR(expect("replace"));
  NORMAN_RETURN_IF_ERROR(expect("dev"));
  if (i >= tokens.size()) {
    return InvalidArgumentError("tc: missing device");
  }
  ++i;  // device name (single simulated NIC; accepted and ignored)
  NORMAN_RETURN_IF_ERROR(expect("root"));
  if (i >= tokens.size()) {
    return InvalidArgumentError("tc: missing qdisc kind");
  }
  const std::string kind = tokens[i++];

  std::unique_ptr<nic::Scheduler> qdisc;
  if (kind == "fifo") {
    qdisc = std::make_unique<nic::FifoScheduler>();
  } else if (kind == "prio") {
    uint32_t bands = 3;
    if (i + 1 < tokens.size() && tokens[i] == "bands") {
      bands = static_cast<uint32_t>(std::stoul(tokens[i + 1]));
      i += 2;
    }
    // Default prio classifier: DSCP EF (46) -> band 0, rest -> last band.
    qdisc = std::make_unique<dataplane::PrioQdisc>(
        bands, dataplane::ClassifyByDscp({{46, 0}, {0, bands - 1}}));
  } else if (kind == "tbf") {
    BitsPerSecond rate = 0;
    uint64_t burst = 32 * 1024;
    while (i + 1 < tokens.size()) {
      if (tokens[i] == "rate") {
        NORMAN_ASSIGN_OR_RETURN(rate, ParseRate(tokens[i + 1]));
        i += 2;
      } else if (tokens[i] == "burst") {
        NORMAN_ASSIGN_OR_RETURN(burst, ParseSize(tokens[i + 1]));
        i += 2;
      } else {
        return InvalidArgumentError("tc: unknown tbf arg " + tokens[i]);
      }
    }
    if (rate == 0) {
      return InvalidArgumentError("tc: tbf needs a rate");
    }
    qdisc = std::make_unique<dataplane::TokenBucketQdisc>(rate, burst);
  } else if (kind == "drr") {
    uint64_t quantum = 1514;
    if (i + 1 < tokens.size() && tokens[i] == "quantum") {
      quantum = std::stoull(tokens[i + 1]);
      i += 2;
    }
    qdisc = std::make_unique<dataplane::DrrQdisc>(
        dataplane::ClassifyByUid({}), quantum);
  } else if (kind == "wfq") {
    std::map<uint32_t, uint32_t> uid_class;
    std::map<uint32_t, uint32_t> cgroup_class;
    std::vector<std::pair<uint32_t, double>> weights;  // class -> weight
    uint32_t next_class = 1;
    while (i + 1 < tokens.size()) {
      const std::string& key = tokens[i];
      unsigned id = 0;
      double weight = 0;
      if (std::sscanf(tokens[i + 1].c_str(), "%u:%lf", &id, &weight) != 2 ||
          weight <= 0) {
        return InvalidArgumentError("tc: bad wfq spec " + tokens[i + 1]);
      }
      const uint32_t cls = next_class++;
      if (key == "uid") {
        uid_class[id] = cls;
      } else if (key == "cgroup") {
        cgroup_class[id] = cls;
      } else {
        return InvalidArgumentError("tc: unknown wfq key " + key);
      }
      weights.emplace_back(cls, weight);
      i += 2;
    }
    dataplane::Classifier classifier;
    if (!cgroup_class.empty() && uid_class.empty()) {
      classifier = dataplane::ClassifyByCgroup(cgroup_class);
    } else if (!uid_class.empty() && cgroup_class.empty()) {
      classifier = dataplane::ClassifyByUid(uid_class);
    } else {
      return InvalidArgumentError(
          "tc: wfq needs uid or cgroup weights (not both)");
    }
    auto wfq = std::make_unique<dataplane::WfqQdisc>(std::move(classifier));
    for (const auto& [cls, weight] : weights) {
      wfq->SetWeight(cls, weight);
    }
    qdisc = std::move(wfq);
  } else {
    return InvalidArgumentError("tc: unknown qdisc kind " + kind);
  }
  return k->SetQdisc(caller, std::move(qdisc));
}

Status TcRateLimit(kernel::Kernel* k, kernel::Uid caller,
                   const std::string& spec) {
  const auto tokens = Tokenize(spec);
  // conn <id> rate <rate> [burst <size>]
  if (tokens.size() < 4 || tokens[0] != "conn" || tokens[2] != "rate") {
    return InvalidArgumentError(
        "tc: expected 'conn <id> rate <rate> [burst <size>]'");
  }
  const auto conn =
      static_cast<net::ConnectionId>(std::stoul(tokens[1]));
  BitsPerSecond rate = 0;
  if (tokens[3] != "0") {
    NORMAN_ASSIGN_OR_RETURN(rate, ParseRate(tokens[3]));
  }
  uint64_t burst = 16 * 1024;
  if (tokens.size() >= 6 && tokens[4] == "burst") {
    NORMAN_ASSIGN_OR_RETURN(burst, ParseSize(tokens[5]));
  }
  return k->SetConnRateLimit(caller, conn, rate, burst);
}

namespace {

// "pid=104 (postgres)" — owner annotation for drop ledger lines; pid 0 is
// wire traffic with no registered owner.
std::string OwnerLabel(const kernel::Kernel& k, uint32_t pid) {
  if (pid == 0) {
    return "pid=0 (-)";
  }
  const kernel::Process* proc = k.processes().Lookup(pid);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pid=%u (%s)", pid,
                proc != nullptr ? proc->comm.c_str() : "?");
  return buf;
}

void RenderDropLedger(const kernel::Kernel& k, const nic::SmartNic& nic,
                      std::ostringstream& out) {
  const auto ledger = nic.stats().DropLedger();
  if (ledger.empty()) {
    out << "  drops: none\n";
    return;
  }
  out << "  drops by reason (owner-annotated):\n";
  for (const auto& rec : ledger) {
    out << "    " << (rec.direction == net::Direction::kTx ? "tx" : "rx")
        << " " << DropReasonName(rec.reason) << " "
        << OwnerLabel(k, rec.owner_pid) << ": " << rec.count << "\n";
  }
}

}  // namespace

std::string NicStat(const kernel::Kernel& k, const nic::SmartNic& nic) {
  std::ostringstream out;
  const auto& s = nic.stats();
  const Nanos now = const_cast<kernel::Kernel&>(k).simulator()->Now();
  out << "NIC statistics (virtual time " << FormatNanos(now) << "):\n";
  out << "  tx: seen " << s.tx_seen() << ", accepted " << s.tx_accepted()
      << ", filtered " << s.tx_dropped() << ", sched-drop "
      << s.tx_sched_dropped() << ", sw-fallback " << s.tx_fallback()
      << ", wire bytes " << s.tx_bytes_wire() << "\n";
  out << "  rx: seen " << s.rx_seen() << ", accepted " << s.rx_accepted()
      << ", filtered " << s.rx_dropped() << ", unmatched " << s.rx_unmatched()
      << ", ring-overflow " << s.rx_ring_overflow() << ", sw-fallback "
      << s.rx_fallback() << "\n";
  out << "  dma transfers " << s.dma_transfers()
      << ", overlay instructions " << s.overlay_instructions() << "\n";
  RenderDropLedger(k, nic, out);
  const auto& ddio = nic.ddio();
  char ddio_line[128];
  std::snprintf(ddio_line, sizeof(ddio_line),
                "  ddio: %.1f%% hit (%llu/%llu), resident %llu B of %llu B\n",
                ddio.hit_rate() * 100,
                static_cast<unsigned long long>(ddio.hits()),
                static_cast<unsigned long long>(ddio.accesses()),
                static_cast<unsigned long long>(ddio.resident_bytes()),
                static_cast<unsigned long long>(ddio.ddio_capacity()));
  out << ddio_line;
  const auto& sram =
      const_cast<kernel::Kernel&>(k).nic_control().sram();
  out << "  sram: " << sram.used() << " / " << sram.capacity() << " B";
  for (const auto& [cat, bytes] : sram.by_category()) {
    out << "  " << cat << "=" << bytes;
  }
  out << "\n";
  if (now > 0) {
    char util[128];
    std::snprintf(util, sizeof(util),
                  "  utilization: wire %.1f%%, pipeline %.1f%%, dma %.1f%%, "
                  "kernel-core %.1f%%\n",
                  nic.wire().Utilization(now) * 100,
                  nic.pipeline_resource().Utilization(now) * 100,
                  nic.dma_engine().Utilization(now) * 100,
                  k.kernel_core().Utilization(now) * 100);
    out << util;
  }
  return out.str();
}

std::string NicStatDrops(const kernel::Kernel& k, const nic::SmartNic& nic) {
  std::ostringstream out;
  const auto& s = nic.stats();
  sim::Simulator* sim = const_cast<kernel::Kernel&>(k).simulator();
  const Nanos now = sim->Now();
  out << "Drop accounting (virtual time " << FormatNanos(now) << "):\n";
  char header[96];
  std::snprintf(header, sizeof(header), "  %-16s %9s %9s\n", "reason", "tx",
                "rx");
  out << header;
  uint64_t tx_total = 0, rx_total = 0;
  for (size_t r = 1; r < kNumDropReasons; ++r) {
    const auto reason = static_cast<DropReason>(r);
    const uint64_t tx = s.tx_drops(reason);
    const uint64_t rx = s.rx_drops(reason);
    tx_total += tx;
    rx_total += rx;
    if (tx == 0 && rx == 0) {
      continue;  // only reasons that fired; totals keep the full picture
    }
    char line[96];
    std::snprintf(line, sizeof(line), "  %-16s %9llu %9llu\n",
                  std::string(DropReasonName(reason)).c_str(),
                  static_cast<unsigned long long>(tx),
                  static_cast<unsigned long long>(rx));
    out << line;
  }
  char total[96];
  std::snprintf(total, sizeof(total), "  %-16s %9llu %9llu\n", "total",
                static_cast<unsigned long long>(tx_total),
                static_cast<unsigned long long>(rx_total));
  out << total;
  RenderDropLedger(k, nic, out);
  auto& m = sim->metrics();
  out << "  kernel slow path: malformed "
      << m.GetCounter("kernel.drop.malformed")->value() << ", unmatched "
      << m.GetCounter("kernel.drop.unmatched")->value()
      << ", sram_exhausted "
      << m.GetCounter("kernel.drop.sram_exhausted")->value() << "\n";
  return out.str();
}

std::string NicStatFastPath(const kernel::Kernel& k,
                            const nic::SmartNic& nic) {
  (void)nic;
  auto& fc = const_cast<kernel::Kernel&>(k).nic_control().flow_cache();
  std::ostringstream out;
  out << "Flow fast path: " << (fc.enabled() ? "enabled" : "disabled")
      << " (epoch " << fc.epoch() << ")\n";
  const uint64_t lookups = fc.hits() + fc.misses();
  char line[128];
  std::snprintf(line, sizeof(line),
                "  entries      %8llu / %llu (%llu B SRAM)\n",
                static_cast<unsigned long long>(fc.size()),
                static_cast<unsigned long long>(fc.max_entries()),
                static_cast<unsigned long long>(fc.sram_bytes()));
  out << line;
  std::snprintf(line, sizeof(line), "  hits         %8llu (%.1f%%)\n",
                static_cast<unsigned long long>(fc.hits()),
                lookups == 0 ? 0.0 : 100.0 * fc.hits() / lookups);
  out << line;
  std::snprintf(line, sizeof(line), "  misses       %8llu\n",
                static_cast<unsigned long long>(fc.misses()));
  out << line;
  std::snprintf(line, sizeof(line), "  uncacheable  %8llu\n",
                static_cast<unsigned long long>(fc.uncacheable()));
  out << line;
  std::snprintf(line, sizeof(line), "  invalidations%8llu\n",
                static_cast<unsigned long long>(fc.invalidations()));
  out << line;
  std::snprintf(line, sizeof(line), "  evictions    %8llu\n",
                static_cast<unsigned long long>(fc.evictions()));
  out << line;
  return out.str();
}

std::string TcShow(const kernel::Kernel& k) {
  std::ostringstream out;
  const auto* sched =
      const_cast<kernel::Kernel&>(k).nic_control().scheduler();
  out << "qdisc " << (sched != nullptr ? sched->name() : "none")
      << " dev nic0 root";
  if (sched != nullptr) {
    out << " backlog " << sched->backlog_packets() << "p";
  }
  out << "\n";
  return out.str();
}

// ---- top ----------------------------------------------------------------------

namespace {

struct ProcBandwidth {
  uint64_t tx_packets = 0;
  uint64_t rx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t rx_bytes = 0;
};

// Aggregate per-connection counters by owning pid (sorted by pid).
std::map<uint32_t, ProcBandwidth> ByProcess(const kernel::Kernel& k) {
  std::map<uint32_t, ProcBandwidth> by_pid;
  for (const auto& c : k.ListConnections()) {
    ProcBandwidth& b = by_pid[c.pid];
    b.tx_packets += c.tx_packets;
    b.rx_packets += c.rx_packets;
    b.tx_bytes += c.tx_bytes;
    b.rx_bytes += c.rx_bytes;
  }
  return by_pid;
}

// Average goodput over the elapsed virtual time, Mbit/s.
double Mbps(uint64_t bytes, Nanos now) {
  if (now <= 0) {
    return 0;
  }
  return static_cast<double>(bytes) * 8e3 / static_cast<double>(now);
}

// Every "queue.<name>.depth" gauge with its high watermark, sorted by name.
struct QueueRow {
  std::string name;  // "nic.qdisc", "kernel.accept", ...
  int64_t depth = 0;
  int64_t high_water = 0;
};

std::vector<QueueRow> QueueRows(const telemetry::MetricsRegistry& m) {
  std::vector<QueueRow> rows;
  m.ForEachGauge([&](const std::string& name, const telemetry::Gauge& g) {
    constexpr std::string_view kPrefix = "queue.";
    constexpr std::string_view kSuffix = ".depth";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      return;
    }
    QueueRow row;
    row.name = name.substr(kPrefix.size(),
                           name.size() - kPrefix.size() - kSuffix.size());
    row.depth = g.value();
    const telemetry::Gauge* hw =
        m.FindGauge("queue." + row.name + ".high_water");
    row.high_water = hw != nullptr ? hw->value() : 0;
    rows.push_back(std::move(row));
  });
  return rows;  // ForEachGauge iterates sorted, so rows are sorted
}

std::string TupleLabel(const net::FiveTuple& t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s:%u->%s:%u/%u",
                t.src_ip.ToString().c_str(), t.src_port,
                t.dst_ip.ToString().c_str(), t.dst_port,
                static_cast<unsigned>(t.proto));
  return buf;
}

}  // namespace

std::string TopRender(const kernel::Kernel& k, const nic::SmartNic& nic,
                      size_t max_flows) {
  std::ostringstream out;
  auto& mutable_k = const_cast<kernel::Kernel&>(k);
  sim::Simulator* sim = mutable_k.simulator();
  const Nanos now = sim->Now();
  char line[160];

  out << "norman-top (virtual time " << FormatNanos(now) << ", "
      << k.sampler().samples_taken() << " samples, "
      << k.maintenance_ticks() << " maintenance ticks)\n";

  const nic::NicStats& ns = nic.stats();
  std::snprintf(line, sizeof(line),
                "nic: tx %llu pkts / %llu wire bytes, rx %llu pkts, "
                "%llu drops (%.2f Mbit/s on wire)\n",
                static_cast<unsigned long long>(ns.tx_accepted()),
                static_cast<unsigned long long>(ns.tx_bytes_wire()),
                static_cast<unsigned long long>(ns.rx_accepted()),
                static_cast<unsigned long long>(ns.total_drops()),
                Mbps(ns.tx_bytes_wire(), now));
  out << line;

  out << "processes:\n";
  std::snprintf(line, sizeof(line), "  %-22s %9s %9s %12s %12s %10s\n",
                "pid (comm)", "tx-pkts", "rx-pkts", "tx-bytes", "rx-bytes",
                "Mbit/s");
  out << line;
  for (const auto& [pid, b] : ByProcess(k)) {
    std::snprintf(line, sizeof(line),
                  "  %-22s %9llu %9llu %12llu %12llu %10.2f\n",
                  OwnerLabel(k, pid).c_str(),
                  static_cast<unsigned long long>(b.tx_packets),
                  static_cast<unsigned long long>(b.rx_packets),
                  static_cast<unsigned long long>(b.tx_bytes),
                  static_cast<unsigned long long>(b.rx_bytes),
                  Mbps(b.tx_bytes + b.rx_bytes, now));
    out << line;
  }

  out << "flows (on-NIC top talkers):\n";
  const nic::TopTalkers* talkers = mutable_k.nic_control().top_talkers();
  if (talkers == nullptr) {
    out << "  disabled (kernel did not enable flow accounting)\n";
  } else {
    std::snprintf(line, sizeof(line), "  %-34s %-18s %9s %12s %10s\n",
                  "flow", "owner", "packets", "bytes", "Mbit/s");
    out << line;
    for (const auto& e : talkers->Top(max_flows)) {
      std::snprintf(line, sizeof(line),
                    "  %-34s %-18s %9llu %12llu %10.2f\n",
                    TupleLabel(e.tuple).c_str(),
                    OwnerLabel(k, e.owner_pid).c_str(),
                    static_cast<unsigned long long>(e.packets),
                    static_cast<unsigned long long>(e.bytes),
                    Mbps(e.bytes, now));
      out << line;
    }
    std::snprintf(line, sizeof(line),
                  "  table: %llu/%llu entries, tracked %llu, evicted %llu, "
                  "untracked %llu\n",
                  static_cast<unsigned long long>(talkers->size()),
                  static_cast<unsigned long long>(talkers->max_entries()),
                  static_cast<unsigned long long>(talkers->tracked()),
                  static_cast<unsigned long long>(talkers->evicted()),
                  static_cast<unsigned long long>(talkers->untracked()));
    out << line;
  }

  out << "queues (depth / high-water):\n";
  for (const auto& row : QueueRows(sim->metrics())) {
    std::snprintf(line, sizeof(line), "  %-20s %9lld %9lld\n",
                  row.name.c_str(), static_cast<long long>(row.depth),
                  static_cast<long long>(row.high_water));
    out << line;
  }

  out << "health:\n";
  std::istringstream health(k.watchdog().Render());
  for (std::string hline; std::getline(health, hline);) {
    out << "  " << hline << "\n";
  }
  std::snprintf(line, sizeof(line), "  alerts dropped: %llu\n",
                static_cast<unsigned long long>(k.watchdog().alerts_dropped()));
  out << line;
  return out.str();
}

std::string TopAlerts(const kernel::Kernel& k) {
  std::ostringstream out;
  char line[224];
  const telemetry::HealthWatchdog& dog = k.watchdog();
  out << "alerts (" << dog.alerts().size() << " kept, "
      << dog.alerts_dropped() << " dropped):\n";
  for (const telemetry::HealthAlert& a : dog.alerts()) {
    std::snprintf(line, sizeof(line), "  t=%-12lld %-10s %s->%s owner=%s  %s\n",
                  static_cast<long long>(a.t), a.component.c_str(),
                  telemetry::HealthStateName(a.from),
                  telemetry::HealthStateName(a.to), a.owner.c_str(),
                  a.reason.c_str());
    out << line;
  }
  return out.str();
}

std::string TopJson(const kernel::Kernel& k, const nic::SmartNic& nic,
                    size_t max_flows) {
  std::ostringstream out;
  auto& mutable_k = const_cast<kernel::Kernel&>(k);
  sim::Simulator* sim = mutable_k.simulator();
  const Nanos now = sim->Now();
  const nic::NicStats& ns = nic.stats();
  out << "{\"t\":" << now
      << ",\"samples\":" << k.sampler().samples_taken()
      << ",\"maintenance_ticks\":" << k.maintenance_ticks()
      << ",\"nic\":{\"tx_packets\":" << ns.tx_accepted()
      << ",\"tx_bytes_wire\":" << ns.tx_bytes_wire()
      << ",\"rx_packets\":" << ns.rx_accepted()
      << ",\"drops\":" << ns.total_drops() << "}"
      << ",\"processes\":[";
  bool first = true;
  for (const auto& [pid, b] : ByProcess(k)) {
    const kernel::Process* proc = k.processes().Lookup(pid);
    if (!first) out << ",";
    first = false;
    out << "{\"pid\":" << pid << ",\"comm\":\""
        << (proc != nullptr ? proc->comm : "?") << "\",\"tx_packets\":"
        << b.tx_packets << ",\"rx_packets\":" << b.rx_packets
        << ",\"tx_bytes\":" << b.tx_bytes << ",\"rx_bytes\":" << b.rx_bytes
        << "}";
  }
  out << "],\"flows\":[";
  const nic::TopTalkers* talkers = mutable_k.nic_control().top_talkers();
  if (talkers != nullptr) {
    first = true;
    for (const auto& e : talkers->Top(max_flows)) {
      if (!first) out << ",";
      first = false;
      out << "{\"flow\":\"" << TupleLabel(e.tuple) << "\",\"pid\":"
          << e.owner_pid << ",\"packets\":" << e.packets << ",\"bytes\":"
          << e.bytes << ",\"first_seen\":" << e.first_seen
          << ",\"last_seen\":" << e.last_seen << "}";
    }
  }
  out << "],\"flow_table\":{";
  if (talkers != nullptr) {
    out << "\"entries\":" << talkers->size() << ",\"max_entries\":"
        << talkers->max_entries() << ",\"tracked\":" << talkers->tracked()
        << ",\"evicted\":" << talkers->evicted() << ",\"untracked\":"
        << talkers->untracked();
  }
  out << "},\"queues\":{";
  first = true;
  for (const auto& row : QueueRows(sim->metrics())) {
    if (!first) out << ",";
    first = false;
    out << "\"" << row.name << "\":{\"depth\":" << row.depth
        << ",\"high_water\":" << row.high_water << "}";
  }
  out << "},\"health\":" << k.watchdog().JsonReport() << "}";
  return out.str();
}

// ---- norman-prof --------------------------------------------------------------

namespace {

std::string ProfOwnerName(const kernel::Kernel& k, uint32_t pid) {
  if (pid == 0) {
    return "unowned";
  }
  if (pid == telemetry::Profiler::kOverflowPid) {
    return "overflow";
  }
  const kernel::Process* proc = k.processes().Lookup(pid);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pid %u (%s)", pid,
                proc != nullptr ? proc->comm.c_str() : "?");
  return buf;
}

}  // namespace

std::string ProfByStage(const kernel::Kernel& k) {
  const telemetry::Profiler& prof =
      const_cast<kernel::Kernel&>(k).simulator()->profiler();
  std::ostringstream out;
  char line[200];
  if (!prof.enabled()) {
    out << "profiler: disabled (no attribution recorded)\n";
  }
  out << "cores (busy == attributed + unaccounted):\n";
  std::snprintf(line, sizeof(line), "  %-14s %-5s %14s %14s %14s\n", "core",
                "kind", "busy-ns", "attributed-ns", "unaccounted-ns");
  out << line;
  for (const auto& c : prof.CoreReports()) {
    std::snprintf(
        line, sizeof(line), "  %-14s %-5s %14llu %14llu %14llu\n",
        c.name.c_str(),
        c.kind == telemetry::Profiler::CoreKind::kNic ? "nic" : "host",
        static_cast<unsigned long long>(c.busy_ns),
        static_cast<unsigned long long>(c.attributed_ns),
        static_cast<unsigned long long>(c.unaccounted_ns));
    out << line;
  }
  out << "stages (attribution-context tree, per core):\n";
  std::snprintf(line, sizeof(line), "  %-44s %-14s %14s %10s\n", "stack",
                "core", "ns", "entries");
  out << line;
  for (const auto& s : prof.StackReports()) {
    std::snprintf(line, sizeof(line), "  %-44s %-14s %14llu %10llu\n",
                  s.stack.c_str(), s.core.empty() ? "-" : s.core.c_str(),
                  static_cast<unsigned long long>(s.ns),
                  static_cast<unsigned long long>(s.entries));
    out << line;
  }
  return out.str();
}

std::string ProfByOwner(const kernel::Kernel& k) {
  const telemetry::Profiler& prof =
      const_cast<kernel::Kernel&>(k).simulator()->profiler();
  std::ostringstream out;
  char line[200];
  if (!prof.enabled()) {
    out << "profiler: disabled (no attribution recorded)\n";
  }
  out << "owners (cycle & resource attribution):\n";
  std::snprintf(line, sizeof(line), "  %-24s %12s %12s %9s %12s %7s %8s\n",
                "owner", "nic-ns", "host-ns", "pkts", "bytes", "drops",
                "sram-B");
  out << line;
  for (const auto& o : prof.OwnerReports()) {
    std::snprintf(line, sizeof(line),
                  "  %-24s %12llu %12llu %9llu %12llu %7llu %8lld\n",
                  ProfOwnerName(k, o.pid).c_str(),
                  static_cast<unsigned long long>(o.nic_ns),
                  static_cast<unsigned long long>(o.host_ns),
                  static_cast<unsigned long long>(o.pkts),
                  static_cast<unsigned long long>(o.bytes),
                  static_cast<unsigned long long>(o.drops),
                  static_cast<long long>(o.sram_bytes));
    out << line;
  }
  return out.str();
}

std::string TopByPid(const kernel::Kernel& k) {
  std::ostringstream out;
  const Nanos now = const_cast<kernel::Kernel&>(k).simulator()->Now();
  out << "norman-top --by-pid (virtual time " << FormatNanos(now) << ")\n";
  out << ProfByOwner(k);
  return out.str();
}

std::string TopByCore(const kernel::Kernel& k, const nic::SmartNic& nic) {
  auto& mutable_k = const_cast<kernel::Kernel&>(k);
  sim::Simulator* sim = mutable_k.simulator();
  const telemetry::Profiler& prof = sim->profiler();
  std::ostringstream out;
  char line[200];
  out << "norman-top --by-core (virtual time " << FormatNanos(sim->Now())
      << ", " << nic.shard_queues() << " lanes)\n";
  if (!prof.enabled()) {
    out << "profiler: disabled (no attribution recorded)\n";
  }
  out << "cores (busy == attributed + unaccounted):\n";
  std::snprintf(line, sizeof(line), "  %-18s %-5s %14s %14s %14s\n", "core",
                "kind", "busy-ns", "attributed-ns", "unaccounted-ns");
  out << line;
  for (const auto& c : prof.CoreReports()) {
    std::snprintf(
        line, sizeof(line), "  %-18s %-5s %14llu %14llu %14llu\n",
        c.name.c_str(),
        c.kind == telemetry::Profiler::CoreKind::kNic ? "nic" : "host",
        static_cast<unsigned long long>(c.busy_ns),
        static_cast<unsigned long long>(c.attributed_ns),
        static_cast<unsigned long long>(c.unaccounted_ns));
    out << line;
  }
  out << "per-queue rings:\n";
  std::snprintf(line, sizeof(line), "  %-22s %10s %12s\n", "queue", "depth",
                "high-water");
  out << line;
  for (const auto& row : QueueRows(sim->metrics())) {
    // Only the sharded lanes' ring pairs ("nic.{tx,rx}_ring.q<N>").
    if (row.name.find("_ring.q") == std::string::npos) {
      continue;
    }
    std::snprintf(line, sizeof(line), "  %-22s %10lld %12lld\n",
                  row.name.c_str(), static_cast<long long>(row.depth),
                  static_cast<long long>(row.high_water));
    out << line;
  }
  return out.str();
}

std::string TopByTenant(const kernel::Kernel& k, const nic::SmartNic& nic) {
  auto& mutable_k = const_cast<kernel::Kernel&>(k);
  sim::Simulator* sim = mutable_k.simulator();
  const telemetry::Profiler& prof = sim->profiler();
  const nic::TenantTable& tenants = nic.tenants();
  std::ostringstream out;
  char line[200];
  out << "norman-top --by-tenant (virtual time " << FormatNanos(sim->Now())
      << ", " << tenants.size() << " tenants, isolation "
      << (tenants.enabled() ? "on" : "off") << ")\n";
  out << "tenants (WFQ cycle shares & quotas):\n";
  std::snprintf(line, sizeof(line),
                "  %-8s %7s %10s %14s %14s %7s %7s %10s\n", "tenant",
                "weight", "pkts", "cycles-ns", "throttled-ns", "drops",
                "denied", "sram-B");
  out << line;
  for (const auto& s : tenants.Reports()) {
    std::snprintf(line, sizeof(line),
                  "  %-8u %7llu %10llu %14llu %14llu %7llu %7llu %10lld\n",
                  s.tenant, static_cast<unsigned long long>(s.weight),
                  static_cast<unsigned long long>(s.pkts),
                  static_cast<unsigned long long>(s.cycles_ns),
                  static_cast<unsigned long long>(s.throttled_ns),
                  static_cast<unsigned long long>(s.drops),
                  static_cast<unsigned long long>(s.denied),
                  static_cast<long long>(s.sram_bytes));
    out << line;
  }
  // The profiler's owner ledger, with each pid resolved to its owning
  // tenant (pid -> uid -> tenant; unregistered uids read as tenant 0).
  if (!prof.enabled()) {
    out << "profiler: disabled (no attribution recorded)\n";
  }
  out << "owners by tenant (cycle & resource attribution):\n";
  std::snprintf(line, sizeof(line), "  %-8s %-20s %12s %12s %9s %12s %7s\n",
                "tenant", "owner", "nic-ns", "host-ns", "pkts", "bytes",
                "drops");
  out << line;
  for (const auto& o : prof.OwnerReports()) {
    const kernel::Process* p = k.processes().Lookup(o.pid);
    const kernel::TenantId tenant =
        p == nullptr ? kernel::kSystemTenant : k.TenantOf(p->uid);
    std::snprintf(line, sizeof(line),
                  "  %-8u %-20s %12llu %12llu %9llu %12llu %7llu\n", tenant,
                  ProfOwnerName(k, o.pid).c_str(),
                  static_cast<unsigned long long>(o.nic_ns),
                  static_cast<unsigned long long>(o.host_ns),
                  static_cast<unsigned long long>(o.pkts),
                  static_cast<unsigned long long>(o.bytes),
                  static_cast<unsigned long long>(o.drops));
    out << line;
  }
  return out.str();
}

// ---- netstat ------------------------------------------------------------------

std::string Netstat(const kernel::Kernel& k) {
  std::ostringstream out;
  out << "Proto Local Address          Foreign Address        TX-pkts RX-pkts"
         "  PID/Program (User)\n";
  for (const auto& c : k.ListConnections()) {
    char local[32], foreign[32];
    std::snprintf(local, sizeof(local), "%s:%u",
                  c.tuple.src_ip.ToString().c_str(), c.tuple.src_port);
    std::snprintf(foreign, sizeof(foreign), "%s:%u",
                  c.tuple.dst_ip.ToString().c_str(), c.tuple.dst_port);
    char line[256];
    std::snprintf(line, sizeof(line), "%-5s %-22s %-22s %7llu %7llu  %u/%s (%s)%s\n",
                  ProtoName(c.tuple.proto).c_str(), local, foreign,
                  static_cast<unsigned long long>(c.tx_packets),
                  static_cast<unsigned long long>(c.rx_packets), c.pid,
                  c.comm.c_str(), k.processes().UserName(c.uid).c_str(),
                  c.software_fallback ? " [sw-fallback]" : "");
    out << line;
  }
  return out.str();
}

// ---- arp ----------------------------------------------------------------------

std::string ArpShow(const kernel::Kernel& k) {
  std::ostringstream out;
  out << "ARP cache:\n";
  for (const auto& [ip, entry] : k.arp().cache()) {
    out << "  " << entry.ip.ToString() << " is-at " << entry.mac.ToString()
        << " (updated " << FormatNanos(entry.updated) << ")\n";
  }
  const auto& observations = k.arp().tx_observations();
  out << "Application-originated ARP (" << observations.size()
      << " frames):\n";
  // Aggregate by pid for the debugging workflow.
  std::map<uint32_t, uint64_t> by_pid;
  for (const auto& obs : observations) {
    ++by_pid[obs.owner.owner_pid];
  }
  for (const auto& [pid, count] : by_pid) {
    const auto* proc = k.processes().Lookup(pid);
    out << "  pid " << pid << " (" << (proc != nullptr ? proc->comm : "?")
        << "/" << (proc != nullptr ? k.processes().UserName(proc->uid) : "?")
        << "): " << count << " ARP frames\n";
  }
  return out.str();
}

}  // namespace norman::tools
