// norman-probe: the kprobes/strace analogue plus the black-box flight
// recorder, run against a scripted, deterministic degradation scenario.
// Where norman-stat answers "what happened" in aggregate, norman-probe
// answers "what *sequence* of dataplane decisions led here": every armed
// interposition probe appends a structured record to the per-core rings,
// and the flight recorder's trigger rules freeze those rings on the first
// sign of trouble so the postmortem bundle preserves the causal tail.
//
// The scenario is a chaos-induced degradation with three canned triggers
// installed:
//   * an iptables DROP rule the batch flow keeps hitting (filter.verdict),
//   * an SRAM hostage forcing one connection onto the software slow path
//     (sram.exhausted — trigger candidate),
//   * a corrupting wire plus an administrative down window on the echo
//     link, spiking nic.rx.drop.corrupt and walking the watchdog's link
//     component out of healthy (nic.drop / watchdog.transition triggers).
// Whichever trigger matches first latches; the run is deterministic, so
// the fired trigger, the frozen journal, and the exported bundle are
// byte-identical across runs.
//
// Usage: norman_probe [--list] [--triggers] [--arm PROBE[=PREDICATE]]
//                     [--dump FILE] [--json]
//   --list      print the probe inventory (no scenario run)
//   --triggers  print the installed trigger rules (no scenario run)
//   --arm       arm one probe, optionally filtered; repeatable. Default:
//               every probe, unfiltered.
//   --dump      write the postmortem bundle JSON to FILE
//   --json      print the postmortem bundle JSON to stdout
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/drop_reason.h"
#include "src/common/flight_recorder.h"
#include "src/common/tracepoint.h"
#include "src/norman/socket.h"
#include "src/sim/fault.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

constexpr auto kPeerIp = net::Ipv4Address::FromOctets(10, 0, 0, 2);

void RunScenario(workload::TestBed& bed) {
  auto& k = bed.kernel();
  k.nic_control().EnableFlowCache(1024);
  k.nic_control().EnableTopTalkers(8);
  k.processes().AddUser(1001, "alice");
  k.processes().AddUser(1002, "bob");
  const auto web_pid = *k.processes().Spawn(1001, "webapp");
  const auto batch_pid = *k.processes().Spawn(1002, "batch");
  k.StartMaintenance();

  // Root policy: batch may not reach port 9999 — a steady stream of
  // filter.verdict drop records attributed to batch's pid.
  (void)tools::IptablesAppend(&k, kernel::kRootUid,
                              "-A OUTPUT -p udp --dport 9999 -j DROP");

  auto web = Socket::Connect(&k, web_pid, kPeerIp, 7777, {});
  auto batch = Socket::Connect(&k, batch_pid, kPeerIp, 8888, {});
  auto denied = Socket::Connect(&k, batch_pid, kPeerIp, 9999, {});
  if (!web.ok() || !batch.ok() || !denied.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return;
  }

  // SRAM hostage: the next flow install is refused (sram.exhausted) and
  // the connection falls over to the host slow path (kernel.slowpath).
  auto& cp = k.nic_control();
  (void)cp.InjectSramPressure(cp.sram().available());
  kernel::ConnectOptions fb;
  fb.allow_software_fallback = true;
  auto fallback = Socket::Connect(&k, batch_pid, kPeerIp, 6666, fb);
  cp.ReleaseSramPressure();

  // Chaos on the echo wire: a quarter of the replies come back damaged
  // (RX verification drops them: nic.drop reason=corrupt) and the link
  // goes administratively dark mid-run, so the watchdog walks the link
  // component degraded -> stalled -> recovered.
  sim::FaultProfile profile;
  profile.corruption = 0.25;
  bed.fault().SetProfile(workload::TestBed::kNetworkToHostLink, profile);
  bed.fault().AddDownWindow(workload::TestBed::kNetworkToHostLink,
                            2 * kMillisecond, 4 * kMillisecond);

  const std::vector<uint8_t> big(1200, 0xaa);
  const std::vector<uint8_t> small(128, 0xbb);
  uint8_t scratch[2048];
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 16; ++i) {
      (void)web->Send(big);
    }
    for (int i = 0; i < 2; ++i) {
      (void)batch->Send(small);
      (void)denied->Send(small);  // filter drop
    }
    if (fallback.ok()) {
      (void)fallback->Send(small);  // host slow path
    }
    k.StartMaintenance();  // re-arm (parks itself when the heap drains)
    bed.sim().Run();
    while (web->RecvInto(scratch).ok()) {
    }
    while (batch->RecvInto(scratch).ok()) {
    }
  }
}

int Main(int argc, char** argv) {
  bool list_only = false;
  bool triggers_only = false;
  bool json = false;
  std::string dump_path;
  std::vector<std::pair<telemetry::Probe, telemetry::ProbePredicate>> arms;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list_only = true;
    } else if (arg == "--triggers") {
      triggers_only = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--dump" && i + 1 < argc) {
      dump_path = argv[++i];
    } else if (arg == "--arm" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const size_t eq = spec.find('=');
      const std::string name = spec.substr(0, eq);
      telemetry::Probe probe;
      if (!telemetry::ProbeFromName(name, &probe)) {
        std::fprintf(stderr, "unknown probe: %s\n", name.c_str());
        return 2;
      }
      telemetry::ProbePredicate pred;
      if (eq != std::string::npos &&
          !telemetry::ProbePredicate::Parse(spec.substr(eq + 1), &pred)) {
        std::fprintf(stderr, "bad predicate: %s\n",
                     spec.substr(eq + 1).c_str());
        return 2;
      }
      arms.emplace_back(probe, pred);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--list] [--triggers] "
                   "[--arm PROBE[=PREDICATE]] [--dump FILE] [--json]\n",
                   argv[0]);
      return 2;
    }
  }

  workload::TestBedOptions opts;
  opts.echo = true;
  opts.kernel.housekeeping_period = 100 * kMicrosecond;
  workload::TestBed bed(opts);
  bed.sim().profiler().set_enabled(true);

  auto& tp = bed.sim().tracepoints();
  auto& fr = bed.sim().flight_recorder();
  // The canned black-box rules: first sign of trouble freezes the rings.
  fr.AddWatchdogUnhealthyTrigger();
  fr.AddDropReasonTrigger("corrupt-frame",
                          static_cast<uint64_t>(DropReason::kCorrupt));
  fr.AddSramExhaustedTrigger();
  if (arms.empty()) {
    tp.ArmAll();
  } else {
    for (const auto& [probe, pred] : arms) {
      tp.Arm(probe, pred);
    }
  }

  if (list_only) {
    std::printf("%s", tp.ListReport().c_str());
    return 0;
  }
  if (triggers_only) {
    std::printf("%s", fr.TriggersReport().c_str());
    return 0;
  }

  RunScenario(bed);

  const std::string bundle = fr.Bundle(
      bed.sim().metrics(), &bed.kernel().watchdog(), &bed.sim().profiler());
  if (!dump_path.empty()) {
    std::ofstream out(dump_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", dump_path.c_str());
      return 1;
    }
    out << bundle;
    std::fprintf(stderr, "wrote postmortem bundle to %s\n",
                 dump_path.c_str());
  }
  if (json) {
    std::printf("%s\n", bundle.c_str());
    return 0;
  }
  if (dump_path.empty()) {
    // Default view: the probe inventory (now with hit counts) and the
    // trigger state after the run.
    std::printf("%s", tp.ListReport().c_str());
    std::printf("%s", fr.TriggersReport().c_str());
    if (fr.triggered()) {
      std::printf("black box: trigger '%s' fired at t=%lld (journal frozen, "
                  "%llu records kept)\n",
                  fr.fired_trigger().c_str(),
                  static_cast<long long>(fr.fired_record().t),
                  static_cast<unsigned long long>(tp.Journal().size()));
    } else {
      std::printf("black box: no trigger fired (%llu records retained)\n",
                  static_cast<unsigned long long>(tp.Journal().size()));
    }
  }
  return 0;
}

}  // namespace
}  // namespace norman

int main(int argc, char** argv) { return norman::Main(argc, argv); }
