// norman-stat: the ethtool -S equivalent, run against a scripted,
// deterministic traffic scenario. The scenario is fixed so that every
// output mode is byte-stable across runs — CI diffs the metric inventory
// (--metrics-manifest) against docs/metrics_manifest.txt and uploads the
// Perfetto trace (--trace-out) as a build artifact.
//
// The scenario deliberately exercises every drop family:
//   * accepted TX/RX traffic (echo peer),
//   * an iptables DROP rule on the OUTPUT chain (tx filter_deny),
//   * UDP to a port nobody listens on (rx unmatched -> kernel unmatched),
//   * a garbage frame too short to parse (kernel malformed),
//   * an ICMP echo request answered on the NIC (rx nic_consumed).
//
// Usage: norman_stat [--drops] [--fastpath] [--json] [--text]
//                    [--metrics-manifest] [--trace-out FILE] [--sample N]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/net/packet_builder.h"
#include "src/net/packet_pool.h"
#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

constexpr auto kPeerIp = net::Ipv4Address::FromOctets(10, 0, 0, 2);

// Drives the fixed traffic scenario. Everything is virtual time and
// deterministic sampling, so back-to-back runs produce identical metrics.
void RunScenario(workload::TestBed& bed, bool fastpath) {
  auto& k = bed.kernel();
  if (fastpath) {
    // Opt into the flow verdict cache so the --fastpath view has live
    // hit/miss numbers. Virtual completion times shift (hits are cheaper);
    // every counter the other views print is unaffected.
    k.nic_control().EnableFlowCache(1024);
  }
  k.processes().AddUser(1001, "alice");
  k.processes().AddUser(1002, "bob");
  const auto web_pid = *k.processes().Spawn(1001, "webapp");
  const auto batch_pid = *k.processes().Spawn(1002, "batch");

  // Flow accounting on the NIC plus the maintenance tick that feeds the
  // sampler and watchdog: their metric families (flow.*, plus per-sample
  // updates to health.*) must appear in the manifest CI diffs.
  k.nic_control().EnableTopTalkers(8);
  k.StartMaintenance();

  // Root policy: no UDP to port 9999 leaves this host.
  auto rule = tools::IptablesAppend(
      &k, kernel::kRootUid, "-A OUTPUT -p udp --dport 9999 -j DROP");
  if (!rule.ok()) {
    std::fprintf(stderr, "iptables: %s\n",
                 std::string(rule.status().message()).c_str());
  }

  auto good = Socket::Connect(&k, web_pid, kPeerIp, 7777, {});
  auto bad = Socket::Connect(&k, batch_pid, kPeerIp, 9999, {});
  if (!good.ok() || !bad.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return;
  }

  const std::vector<uint8_t> payload(256, 0xab);
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 8; ++i) {
      (void)good->Send(payload);  // echoed back by the peer
    }
    (void)bad->Send(payload);  // eaten by the filter (tx filter_deny)
    bed.sim().Run();
    // Drain a few echoes; leave the rest queued in the RX ring.
    (void)good->Recv();
    (void)good->Recv();
  }

  // RX traffic the host has no flow or listener for -> kernel unmatched.
  Nanos t = bed.sim().Now();
  for (int i = 0; i < 4; ++i) {
    bed.InjectUdpFromPeer(4444, 5555, 64, t += kMicrosecond);
  }
  // A runt frame: parses as nothing, the kernel slow path discards it.
  for (int i = 0; i < 3; ++i) {
    bed.InjectFromNetwork(net::MakePacket(std::vector<uint8_t>(10, 0xee)),
                          t += kMicrosecond);
  }
  // ICMP echo request answered by the on-NIC responder (rx nic_consumed).
  const net::FrameEndpoints peer_ep{net::MacAddress::ForHost(2),
                                    k.options().host_mac, kPeerIp,
                                    k.options().host_ip};
  const std::vector<uint8_t> ping(32, 0x42);
  for (uint16_t seq = 1; seq <= 2; ++seq) {
    bed.InjectFromNetwork(
        net::BuildIcmpEchoPacket(peer_ep, net::IcmpType::kEchoRequest, 0x77,
                                 seq, ping),
        t += kMicrosecond);
  }
  bed.sim().Run();

  (void)good->Close();
  (void)bad->Close();
  bed.sim().Run();
}

int Main(int argc, char** argv) {
  bool show_drops = false;
  bool show_fastpath = false;
  bool show_json = false;
  bool show_text = false;
  bool show_manifest = false;
  std::string trace_path;
  uint32_t sample = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--drops") {
      show_drops = true;
    } else if (arg == "--fastpath") {
      show_fastpath = true;
    } else if (arg == "--json") {
      show_json = true;
    } else if (arg == "--text") {
      show_text = true;
    } else if (arg == "--metrics-manifest") {
      show_manifest = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--sample" && i + 1 < argc) {
      sample = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--drops] [--fastpath] [--json] [--text] "
                   "[--metrics-manifest] [--trace-out FILE] [--sample N]\n",
                   argv[0]);
      return 2;
    }
  }

  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  bed.sim().tracer().set_sample_interval(sample);
  // Cycle attribution on: the prof.*/attr.* gauge families published below
  // must appear in the manifest CI diffs. Registration is ungated, so the
  // inventory (though not the values) is identical at stats level 0.
  bed.sim().profiler().set_enabled(true);
  RunScenario(bed, show_fastpath);

  auto& metrics = bed.sim().metrics();
  bed.sim().profiler().PublishToRegistry(&metrics);
  // Pool levels enter the registry at report time ("pool.<name>.*"), plus a
  // merged view across both pools ("pool.all.*").
  const auto& packet_pool = net::PacketPool::Default().counters();
  const auto& event_pool = bed.sim().event_pool();
  metrics.ImportPool(packet_pool);
  metrics.ImportPool(event_pool);
  PoolCounters all{"all"};
  all.Merge(packet_pool);
  all.Merge(event_pool);
  metrics.ImportPool(all);

  if (show_manifest) {
    for (const auto& line : metrics.MetricNames()) {
      std::printf("%s\n", line.c_str());
    }
    return 0;
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    out << bed.sim().tracer().ChromeTraceJson();
    std::fprintf(stderr, "wrote %llu spans to %s\n",
                 static_cast<unsigned long long>(
                     bed.sim().tracer().total_recorded()),
                 trace_path.c_str());
  }

  if (show_json) {
    std::printf("%s\n", metrics.JsonReport().c_str());
    return 0;
  }

  std::printf("%s", tools::NicStat(bed.kernel(), bed.nic()).c_str());
  if (show_drops) {
    std::printf("\n%s", tools::NicStatDrops(bed.kernel(), bed.nic()).c_str());
  }
  if (show_fastpath) {
    std::printf("\n%s",
                tools::NicStatFastPath(bed.kernel(), bed.nic()).c_str());
  }
  if (show_text) {
    std::printf("\n%s", metrics.TextReport().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace norman

int main(int argc, char** argv) { return norman::Main(argc, argv); }
