// norman-top: the continuous-monitoring dashboard, run against a scripted,
// deterministic scenario. Where norman-stat answers "what happened",
// norman-top answers "what is happening": per-process and per-flow
// bandwidth (from the on-NIC top-talkers table), every bounded queue's
// depth and high watermark, and the health watchdog's verdicts — all
// sampled by the kernel's periodic maintenance tick on the virtual clock,
// so every output mode is byte-stable across runs.
//
// The scenario: a heavy webapp flow and a light batch flow behind a
// rate-limited tbf qdisc. The heavy flow backs the qdisc up (the watchdog
// sees the queue not draining and flags it), then the backlog clears and
// the component recovers — the alert log keeps both transitions.
//
// With --chaos the same dashboard runs over a faulty wire: the echo peer's
// replies cross a FaultInjector link that corrupts a fraction of frames and
// goes administratively down mid-run, so the health section walks the link
// component through degraded -> stalled -> recovered and the alert log
// keeps every transition.
//
// With --by-core the dataplane is sharded across 4 lanes before traffic
// flows, and the dashboard renders the per-core attribution table plus
// every lane ring's depth — the view that makes one wedged or hot lane
// stand out against its siblings.
//
// Usage: norman_top [--json] [--text] [--by-pid] [--by-core] [--alerts]
//                   [--chaos] [--series-out FILE] [--flows N]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/norman/socket.h"
#include "src/sim/fault.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

constexpr auto kPeerIp = net::Ipv4Address::FromOctets(10, 0, 0, 2);

void RunScenario(workload::TestBed& bed) {
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "alice");
  k.processes().AddUser(1002, "bob");
  const auto web_pid = *k.processes().Spawn(1001, "webapp");
  const auto batch_pid = *k.processes().Spawn(1002, "batch");

  // Flow accounting on the NIC + the periodic maintenance tick that feeds
  // the sampler and the watchdog.
  k.nic_control().EnableTopTalkers(8);
  k.StartMaintenance();

  // A rate-limited root qdisc: the heavy sender outruns it, so the backlog
  // builds and the watchdog has something to flag.
  const Status tc = tools::TcReplace(
      &k, kernel::kRootUid, "qdisc replace dev nic0 root tbf rate 200mbit "
                            "burst 16kb");
  if (!tc.ok()) {
    std::fprintf(stderr, "tc: %s\n", std::string(tc.message()).c_str());
  }

  auto heavy = Socket::Connect(&k, web_pid, kPeerIp, 7777, {});
  auto light = Socket::Connect(&k, batch_pid, kPeerIp, 8888, {});
  if (!heavy.ok() || !light.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return;
  }

  const std::vector<uint8_t> big(1200, 0xaa);
  const std::vector<uint8_t> small(128, 0xbb);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 24; ++i) {
      (void)heavy->Send(big);  // saturates the tbf: qdisc backs up
    }
    for (int i = 0; i < 2; ++i) {
      (void)light->Send(small);
    }
    // The maintenance timer parks itself when the event heap drains (so it
    // can't keep an idle simulation alive); re-arm it for each burst.
    k.StartMaintenance();
    bed.sim().Run();  // drains everything; maintenance ticks throughout
    uint8_t scratch[2048];
    while (heavy->RecvInto(scratch).ok()) {
    }
    while (light->RecvInto(scratch).ok()) {
    }
  }
  // Leave the connections open: the dashboard renders the live table.
}

void RunChaosScenario(workload::TestBed& bed) {
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "alice");
  const auto pid = *k.processes().Spawn(1001, "webapp");
  k.nic_control().EnableTopTalkers(8);
  k.StartMaintenance();

  auto sock = Socket::Connect(&k, pid, kPeerIp, 7777, {});
  if (!sock.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return;
  }

  // The echo replies cross a corrupting wire (the NIC's RX checksum check
  // drops the damaged ones, so nic.rx.drop.corrupt.rate spikes) ...
  sim::FaultProfile profile;
  profile.corruption = 0.25;
  bed.fault().SetProfile(workload::TestBed::kNetworkToHostLink, profile);
  // ... and the link goes administratively dark for a stretch mid-run: the
  // watchdog's link-down rule flags the component stalled, then logs the
  // recovery when the window ends.
  bed.fault().AddDownWindow(workload::TestBed::kNetworkToHostLink,
                            2 * kMillisecond, 4 * kMillisecond);

  const std::vector<uint8_t> big(1200, 0xaa);
  uint8_t scratch[2048];
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 16; ++i) {
      (void)sock->Send(big);
    }
    k.StartMaintenance();
    bed.sim().Run();
    while (sock->RecvInto(scratch).ok()) {
    }
  }
}

// With --by-tenant two users are registered as quota'd tenants (the webapp
// gets 3x the batch job's WFQ cycle weight plus a larger SRAM envelope),
// isolation is armed through the declarative Configure call, and the
// dashboard renders the per-tenant share table (packets, cycles, throttled
// time, drops, denials, SRAM held) over the owner ledger grouped by tenant.
void RunTenantScenario(workload::TestBed& bed,
                       std::vector<kernel::Tenant>& tenants) {
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "alice");
  k.processes().AddUser(1002, "bob");
  const auto web_pid = *k.processes().Spawn(1001, "webapp");
  const auto batch_pid = *k.processes().Spawn(1002, "batch");

  kernel::TenantSpec web_spec;
  web_spec.cycle_weight = 3;
  web_spec.sram_bytes = 16 * 1024;
  web_spec.ring_bytes = 64 * 1024;
  kernel::TenantSpec batch_spec;
  batch_spec.cycle_weight = 1;
  batch_spec.sram_bytes = 4 * 1024;
  batch_spec.ring_bytes = 64 * 1024;
  auto web_tenant = k.CreateTenant(kernel::kRootUid, 1001, web_spec);
  auto batch_tenant = k.CreateTenant(kernel::kRootUid, 1002, batch_spec);
  if (!web_tenant.ok() || !batch_tenant.ok()) {
    std::fprintf(stderr, "tenant registration failed\n");
    return;
  }
  tenants.push_back(std::move(*web_tenant));
  tenants.push_back(std::move(*batch_tenant));

  kernel::NicConfig cfg;
  cfg.top_talkers = true;
  cfg.top_talker_entries = 8;
  cfg.maintenance = true;
  cfg.tenant_isolation = true;
  if (const Status s = k.Configure(kernel::kRootUid, cfg); !s.ok()) {
    std::fprintf(stderr, "configure: %s\n", std::string(s.message()).c_str());
    return;
  }

  auto heavy = Socket::Connect(&k, web_pid, kPeerIp, 7777, {});
  auto light = Socket::Connect(&k, batch_pid, kPeerIp, 8888, {});
  if (!heavy.ok() || !light.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return;
  }

  const std::vector<uint8_t> big(1200, 0xaa);
  const std::vector<uint8_t> small(128, 0xbb);
  uint8_t scratch[2048];
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 24; ++i) {
      (void)heavy->Send(big);
    }
    for (int i = 0; i < 8; ++i) {
      (void)light->Send(small);
    }
    k.StartMaintenance();
    bed.sim().Run();
    while (heavy->RecvInto(scratch).ok()) {
    }
    while (light->RecvInto(scratch).ok()) {
    }
  }
}

int Main(int argc, char** argv) {
  bool show_json = false;
  bool show_text = false;
  bool by_pid = false;
  bool by_core = false;
  bool by_tenant = false;
  bool alerts = false;
  bool chaos = false;
  std::string series_path;
  size_t max_flows = 10;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      show_json = true;
    } else if (arg == "--text") {
      show_text = true;
    } else if (arg == "--by-pid") {
      by_pid = true;
    } else if (arg == "--by-core") {
      by_core = true;
    } else if (arg == "--by-tenant") {
      by_tenant = true;
    } else if (arg == "--alerts") {
      alerts = true;
    } else if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--series-out" && i + 1 < argc) {
      series_path = argv[++i];
    } else if (arg == "--flows" && i + 1 < argc) {
      max_flows = std::strtoul(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--text] [--by-pid] [--by-core] "
                   "[--by-tenant] [--alerts] [--chaos] [--series-out FILE] "
                   "[--flows N]\n",
                   argv[0]);
      return 2;
    }
  }

  workload::TestBedOptions opts;
  opts.echo = true;
  // Tick fast relative to the scenario's few-millisecond span so the series
  // hold enough windows for rates and stall detection to mean something.
  opts.kernel.housekeeping_period = 100 * kMicrosecond;
  workload::TestBed bed(opts);
  // Attribution is pure observation (no events, no virtual-time cost), so
  // it can stay on for every view without perturbing the goldens.
  bed.sim().profiler().set_enabled(true);
  if (by_core) {
    // Shard before any traffic flows so every lane resource exists from the
    // first packet and the per-core table covers the whole run.
    const Status s = bed.kernel().nic_control().EnableSharding(4);
    if (!s.ok()) {
      std::fprintf(stderr, "sharding: %s\n", std::string(s.message()).c_str());
      return 1;
    }
  }
  // Tenant handles are RAII: keep them alive until after rendering so the
  // share table reflects the live registrations.
  std::vector<kernel::Tenant> tenant_handles;
  if (chaos) {
    RunChaosScenario(bed);
  } else if (by_tenant) {
    RunTenantScenario(bed, tenant_handles);
  } else {
    RunScenario(bed);
  }

  if (!series_path.empty()) {
    std::ofstream out(series_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", series_path.c_str());
      return 1;
    }
    out << bed.kernel().sampler().JsonReport();
    std::fprintf(stderr, "wrote %llu samples to %s\n",
                 static_cast<unsigned long long>(
                     bed.kernel().sampler().samples_taken()),
                 series_path.c_str());
  }

  if (by_pid) {
    std::printf("%s", tools::TopByPid(bed.kernel()).c_str());
    return 0;
  }
  if (by_core) {
    std::printf("%s", tools::TopByCore(bed.kernel(), bed.nic()).c_str());
    return 0;
  }
  if (by_tenant) {
    std::printf("%s", tools::TopByTenant(bed.kernel(), bed.nic()).c_str());
    return 0;
  }
  if (alerts) {
    std::printf("%s", tools::TopAlerts(bed.kernel()).c_str());
    return 0;
  }
  if (show_json) {
    std::printf("%s\n", tools::TopJson(bed.kernel(), bed.nic(), max_flows).c_str());
    return 0;
  }
  (void)show_text;  // text is the default rendering
  std::printf("%s", tools::TopRender(bed.kernel(), bed.nic(), max_flows).c_str());
  return 0;
}

}  // namespace
}  // namespace norman

int main(int argc, char** argv) { return norman::Main(argc, argv); }
