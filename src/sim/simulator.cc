#include "src/sim/simulator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace norman::sim {

Simulator::Simulator() {
  // Tracepoint records carry virtual timestamps; the clock indirection is
  // only paid on the armed emit path.
  tracepoints_.SetClock(&now_);
}

Simulator::~Simulator() {
  // Fold any still-live BatchedCounter accumulators into their backing
  // counters so teardown-order observers (and a final partial burst) can
  // never under-count. Report paths flush too; this is the backstop.
  metrics_.FlushPending();
}

Simulator::EventNode* Simulator::AcquireNode() {
  if (!free_nodes_.empty()) {
    EventNode* node = free_nodes_.back();
    free_nodes_.pop_back();
    node_counters_.RecordAcquire(/*from_free_list=*/true);
    return node;
  }
  if (last_slab_used_ == kSlabNodes) {
    slabs_.push_back(std::make_unique<EventNode[]>(kSlabNodes));
    last_slab_used_ = 0;
  }
  EventNode* node = &slabs_.back()[last_slab_used_++];
  node_counters_.RecordAcquire(/*from_free_list=*/false);
  return node;
}

void Simulator::ReleaseNode(EventNode* node) {
  // fn was moved out (or never set); the node returns to the free list and
  // is never handed back to the allocator while the simulator lives.
  free_nodes_.push_back(node);
  node_counters_.RecordRelease(/*kept=*/true);
}

void Simulator::ScheduleAt(Nanos when, Callback fn) {
  NORMAN_CHECK(when >= now_) << "cannot schedule into the past: " << when
                             << " < " << now_;
  EventNode* node = AcquireNode();
  node->when = when;
  node->seq = next_seq_++;
  node->rank = 0;  // nodes recycle: clear any stale lane rank
  node->fn = std::move(fn);
  heap_.push_back(node);
  std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
}

void Simulator::ScheduleAtLane(uint16_t lane, Nanos when, Callback fn) {
  NORMAN_CHECK(when >= now_) << "cannot schedule into the past: " << when
                             << " < " << now_;
  EventNode* node = AcquireNode();
  node->when = when;
  node->seq = next_seq_++;
  node->rank = LaneRank(lane, when);
  node->fn = std::move(fn);
  heap_.push_back(node);
  std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
}

void Simulator::set_num_lanes(uint16_t n) {
  num_lanes_ = std::clamp<uint16_t>(n, 1, kMaxLanes);
}

bool Simulator::Step() { return StepBatch(1) != 0; }

uint32_t Simulator::StepBatch(uint32_t max_n) {
  if (heap_.empty() || max_n == 0) {
    return 0;
  }
  if (max_n > kMaxDispatchBatch) {
    max_n = kMaxDispatchBatch;
  }
  std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
  EventNode* node = heap_.back();
  heap_.pop_back();
  const Nanos horizon = node->when;
  now_ = horizon;
  // Move the callback out and recycle the node *before* invoking, so events
  // the callback schedules can reuse it immediately.
  InlineCallback first = std::move(node->fn);
  ReleaseNode(node);
  // Attribution root for everything this pass dispatches. One guard per
  // pass (not per event): a single predicted branch when the profiler is
  // off, so the single-event fast path keeps its historical cost.
  telemetry::ProfScope dispatch_scope(&profiler_, dispatch_site_);
  if (max_n == 1 || heap_.empty() || heap_.front()->when != horizon) {
    // Single-event fast path — the overwhelmingly common case (most ready
    // horizons hold exactly one event). Must cost what the historical
    // per-event Step() did: no dispatch buffer, no batch accounting.
    ++events_processed_;
    first();
    return 1;
  }
  // Multiple events share the horizon: drain them through the reusable
  // member buffer (constructed once, so the pass pays only the moves). A
  // callback that re-enters StepBatch() while the buffer is in use — rare,
  // but legal — falls back to a stack-local buffer.
  if (!dispatch_buf_busy_) {
    dispatch_buf_busy_ = true;
    const uint32_t n = DrainHorizon(first, dispatch_buf_, max_n, horizon);
    dispatch_buf_busy_ = false;
    return n;
  }
  InlineCallback local[kMaxDispatchBatch];
  return DrainHorizon(first, local, max_n, horizon);
}

uint32_t Simulator::DrainHorizon(InlineCallback& first, InlineCallback* buf,
                                 uint32_t max_n, Nanos horizon) {
  // Pop every remaining horizon-sharer (up to max_n total) in one heap
  // pass, then dispatch: `first`, then the buffer. The popped callbacks
  // are already in (when, seq) order.
  uint32_t extra = 0;
  do {
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
    EventNode* node = heap_.back();
    heap_.pop_back();
    buf[extra++] = std::move(node->fn);
    ReleaseNode(node);
  } while (1 + extra < max_n && !heap_.empty() &&
           heap_.front()->when == horizon);
  const uint32_t n = 1 + extra;
  events_processed_ += n;
  // Dispatch telemetry counts multi-event passes only (the single-event
  // fast path is deliberately counter-free); flushed once per burst.
  telemetry::HotIncrement(dispatch_batches_);
  telemetry::HotIncrement(dispatch_events_, n);
  // Buffered-but-unrun events still count as pending for the queue
  // observers (Idle / pending_events / HasEventAtOrBefore): under
  // per-event stepping they would still be in the heap, and callbacks
  // that probe the queue must see identical state at every batch size.
  batch_pending_ += extra;
  first();
  for (uint32_t i = 0; i < extra; ++i) {
    --batch_pending_;  // the event now running is no longer pending
    buf[i]();
    // Destroy captured state right after the call — the timing the
    // one-event Step() had — so resources a callback holds (pooled
    // packets, sockets) release before the next callback runs.
    buf[i] = InlineCallback();
  }
  return n;
}

void Simulator::Run() {
  while (StepBatch(dispatch_batch_) != 0) {
  }
}

void Simulator::RunUntil(Nanos deadline) {
  // Every event StepBatch pops shares heap_.front()->when, so checking the
  // front against the deadline bounds the whole batch: the deadline cannot
  // fall mid-batch.
  while (!heap_.empty() && heap_.front()->when <= deadline) {
    StepBatch(dispatch_batch_);
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void Simulator::set_dispatch_batch(uint32_t n) {
  dispatch_batch_ = std::clamp(n, 1u, kMaxDispatchBatch);
}

}  // namespace norman::sim
