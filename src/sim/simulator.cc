#include "src/sim/simulator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace norman::sim {

Simulator::~Simulator() = default;

Simulator::EventNode* Simulator::AcquireNode() {
  if (!free_nodes_.empty()) {
    EventNode* node = free_nodes_.back();
    free_nodes_.pop_back();
    node_counters_.RecordAcquire(/*from_free_list=*/true);
    return node;
  }
  if (last_slab_used_ == kSlabNodes) {
    slabs_.push_back(std::make_unique<EventNode[]>(kSlabNodes));
    last_slab_used_ = 0;
  }
  EventNode* node = &slabs_.back()[last_slab_used_++];
  node_counters_.RecordAcquire(/*from_free_list=*/false);
  return node;
}

void Simulator::ReleaseNode(EventNode* node) {
  // fn was moved out (or never set); the node returns to the free list and
  // is never handed back to the allocator while the simulator lives.
  free_nodes_.push_back(node);
  node_counters_.RecordRelease(/*kept=*/true);
}

void Simulator::ScheduleAt(Nanos when, Callback fn) {
  NORMAN_CHECK(when >= now_) << "cannot schedule into the past: " << when
                             << " < " << now_;
  EventNode* node = AcquireNode();
  node->when = when;
  node->seq = next_seq_++;
  node->fn = std::move(fn);
  heap_.push_back(node);
  std::push_heap(heap_.begin(), heap_.end(), FiresLater{});
}

bool Simulator::Step() {
  if (heap_.empty()) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), FiresLater{});
  EventNode* node = heap_.back();
  heap_.pop_back();
  now_ = node->when;
  ++events_processed_;
  // Move the callback out and recycle the node *before* invoking, so events
  // the callback schedules can reuse it immediately.
  InlineCallback fn = std::move(node->fn);
  ReleaseNode(node);
  fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Nanos deadline) {
  while (!heap_.empty() && heap_.front()->when <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace norman::sim
