#include "src/sim/simulator.h"

#include "src/common/logging.h"

namespace norman::sim {

void Simulator::ScheduleAt(Nanos when, Callback fn) {
  NORMAN_CHECK(when >= now_) << "cannot schedule into the past: " << when
                             << " < " << now_;
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top() is const; move out via const_cast is safe because
  // we pop immediately and never touch the moved-from element again.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++events_processed_;
  ev.fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Nanos deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace norman::sim
