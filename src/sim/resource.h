// Serialized resources in virtual time.
//
// A Resource models a non-preemptive FIFO server: a CPU core, a NIC pipeline
// stage, a PCIe DMA engine, or the wire. Work items occupy the resource for
// a service time; arrivals queue implicitly because the resource tracks when
// it next becomes free. Busy time is accounted so experiments can report
// utilization (e.g. the "polling burns a core" result in E5).
#ifndef NORMAN_SIM_RESOURCE_H_
#define NORMAN_SIM_RESOURCE_H_

#include <algorithm>
#include <string>

#include "src/common/units.h"

namespace norman::sim {

class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Serve one work item arriving at `arrival` with the given service time.
  // Returns the completion time. FIFO, non-preemptive.
  Nanos Serve(Nanos arrival, Nanos service) {
    const Nanos start = std::max(arrival, next_free_);
    next_free_ = start + service;
    busy_ns_ += service;
    ++items_served_;
    return next_free_;
  }

  // When the resource next becomes free (equals last completion time).
  Nanos next_free() const { return next_free_; }

  // Total time spent serving.
  Nanos busy_ns() const { return busy_ns_; }
  uint64_t items_served() const { return items_served_; }

  // Fraction of [window_start, horizon] the resource was busy. Callers that
  // Reset() mid-run and measure a trailing window must pass the window's
  // start time: busy time only accumulates after a Reset(), so dividing by
  // the full [0, horizon) span (the old behavior, window_start = 0) both
  // under-reports utilization and, once busy_ns_ exceeds the window, lets
  // pre-window time clamp incorrectly against the whole horizon.
  double Utilization(Nanos horizon, Nanos window_start = 0) const {
    const Nanos span = horizon - window_start;
    if (span <= 0) {
      return 0.0;
    }
    return static_cast<double>(std::min(busy_ns_, span)) /
           static_cast<double>(span);
  }

  // Explicitly account busy time without serialization (used for polling
  // loops, which occupy a core continuously regardless of packet flow).
  void AddBusy(Nanos ns) { busy_ns_ += ns; }

  void Reset() {
    next_free_ = 0;
    busy_ns_ = 0;
    items_served_ = 0;
  }

 private:
  std::string name_;
  Nanos next_free_ = 0;
  Nanos busy_ns_ = 0;
  uint64_t items_served_ = 0;
};

}  // namespace norman::sim

#endif  // NORMAN_SIM_RESOURCE_H_
