// Deterministic wire fault plane.
//
// A FaultInjector sits between a transmitter and a receiver's
// DeliverFromWire: every frame a testbed puts "on the wire" goes through
// Transmit(), which consults a per-link, per-direction FaultProfile and a
// per-link seeded Rng to decide — in a fixed draw order — whether the frame
// is lost, duplicated, corrupted, jittered or reordered, then schedules the
// survivors on the simulator's virtual clock. All decisions derive from the
// injector seed and the virtual-time event order, so a given (seed, profile)
// pair replays byte-identically.
//
// Faults are strictly opt-in: with no profile configured and the link up,
// Transmit() degenerates to exactly one ScheduleAt per frame — the same
// event shape the testbeds had before the fault plane existed, which is what
// keeps the pinned determinism goldens bit-identical.
//
// Every injected fault is itemized in the owning simulator's metrics
// registry under "fault.*" (see OBSERVABILITY.md) and in per-link
// FaultStats, so chaos experiments can assert on exactly what the wire did.
#ifndef NORMAN_SIM_FAULT_H_
#define NORMAN_SIM_FAULT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/net/packet.h"

namespace norman::sim {

class Simulator;

// What can go wrong on one simplex link. Probabilities are per-frame and
// independent; a frame can be duplicated *and* corrupted in one transit.
struct FaultProfile {
  double loss = 0.0;         // P(frame silently dropped)
  double duplication = 0.0;  // P(frame delivered twice)
  double corruption = 0.0;   // P(payload/header bytes damaged in flight)
  size_t corrupt_bytes = 1;  // bytes flipped per corruption event
  Nanos jitter = 0;          // extra uniform delay in [0, jitter) ns
  double reorder = 0.0;      // P(frame held back by reorder_delay)
  Nanos reorder_delay = 0;   // how far a reordered frame is held back

  bool active() const {
    return loss > 0.0 || duplication > 0.0 || corruption > 0.0 ||
           jitter > 0 || (reorder > 0.0 && reorder_delay > 0);
  }
};

// Per-link ledger of what the wire actually did.
struct FaultStats {
  uint64_t transmitted = 0;       // frames handed to Transmit()
  uint64_t delivered = 0;         // frames scheduled into the sink
  uint64_t lost = 0;              // dropped by the loss dice
  uint64_t duplicated = 0;        // extra copies delivered
  uint64_t corrupted = 0;         // frames with damaged bytes
  uint64_t reordered = 0;         // frames held back
  uint64_t jittered = 0;          // frames given non-zero extra delay
  uint64_t dropped_link_down = 0; // dropped because the link was down
};

class FaultInjector {
 public:
  // Receives the (possibly damaged) frame at its scheduled delivery time.
  using Sink = std::function<void(net::PacketPtr)>;

  // Links are simplex; a duplex wire is two links (one per direction).
  static constexpr size_t kMaxLinks = 4;

  explicit FaultInjector(Simulator* sim, uint64_t seed = 0x5eed);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void SetSink(size_t link, Sink sink);
  void SetProfile(size_t link, const FaultProfile& profile);
  const FaultProfile& profile(size_t link) const {
    return links_[link].profile;
  }

  // Administrative link state. While a link is down every Transmit() on it
  // is dropped (and counted). SetLinkDown also drives the "fault.link.down"
  // gauge the health watchdog watches.
  void SetLinkDown(size_t link, bool down);
  // Schedules a down window [from, until): the link drops frames inside the
  // window and recovers by itself. The gauge transitions are scheduled as
  // simulator events, so the watchdog sees the flap in its sampled series.
  void AddDownWindow(size_t link, Nanos from, Nanos until);
  bool link_up(size_t link, Nanos at) const;

  // Puts a frame on `link` for delivery at `when` (absolute virtual time).
  // With no active profile and the link up this schedules exactly one event.
  void Transmit(size_t link, net::PacketPtr packet, Nanos when);

  const FaultStats& stats(size_t link) const { return links_[link].stats; }

  // Aggregate frames the wire ate (loss dice + link-down), all links.
  uint64_t frames_lost() const;
  uint64_t frames_delivered() const;

 private:
  struct DownWindow {
    Nanos from = 0;
    Nanos until = 0;
  };
  struct Link {
    FaultProfile profile;
    Sink sink;
    Rng rng{0};
    FaultStats stats;
    bool admin_down = false;
    std::vector<DownWindow> down_windows;
  };

  void Deliver(Link& link, net::PacketPtr packet, Nanos when);
  void Corrupt(Link& link, net::Packet& packet);

  Simulator* sim_;
  std::array<Link, kMaxLinks> links_;

  // Aggregate itemization, eagerly registered so the metric manifest is
  // shape-stable whether or not faults ever fire.
  telemetry::Counter* transmitted_;
  telemetry::Counter* delivered_;
  telemetry::Counter* injected_loss_;
  telemetry::Counter* injected_duplicate_;
  telemetry::Counter* injected_corrupt_;
  telemetry::Counter* injected_reorder_;
  telemetry::Counter* injected_jitter_;
  telemetry::Counter* injected_link_down_;
  telemetry::Gauge* link_down_gauge_;  // # links currently down
};

}  // namespace norman::sim

#endif  // NORMAN_SIM_FAULT_H_
