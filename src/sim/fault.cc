#include "src/sim/fault.h"

#include <cassert>
#include <utility>
#include <vector>

#include "src/net/headers.h"
#include "src/net/packet_pool.h"
#include "src/sim/simulator.h"

namespace norman::sim {

namespace {
// "fault.inject" probe: a0 = which fault activated, a1 = link index.
void EmitFault(Simulator* sim, telemetry::FaultActivation kind, size_t link) {
  sim->tracepoints().Emit(telemetry::Probe::kFaultInject,
                          telemetry::Tracepoints::kCoreNic, /*pid=*/0,
                          static_cast<uint64_t>(kind),
                          static_cast<uint64_t>(link));
}
}  // namespace

FaultInjector::FaultInjector(Simulator* sim, uint64_t seed) : sim_(sim) {
  // Each link gets an independent RNG stream expanded from the one seed, so
  // traffic on link 0 never perturbs the dice on link 1.
  SplitMix64 expand(seed);
  for (auto& link : links_) {
    link.rng = Rng(expand.Next());
  }
  auto& m = sim_->metrics();
  transmitted_ = m.GetCounter("fault.transmitted");
  delivered_ = m.GetCounter("fault.delivered");
  injected_loss_ = m.GetCounter("fault.injected.loss");
  injected_duplicate_ = m.GetCounter("fault.injected.duplicate");
  injected_corrupt_ = m.GetCounter("fault.injected.corrupt");
  injected_reorder_ = m.GetCounter("fault.injected.reorder");
  injected_jitter_ = m.GetCounter("fault.injected.jitter");
  injected_link_down_ = m.GetCounter("fault.injected.link_down");
  link_down_gauge_ = m.GetGauge("fault.link.down");
}

void FaultInjector::SetSink(size_t link, Sink sink) {
  assert(link < kMaxLinks);
  links_[link].sink = std::move(sink);
}

void FaultInjector::SetProfile(size_t link, const FaultProfile& profile) {
  assert(link < kMaxLinks);
  links_[link].profile = profile;
}

void FaultInjector::SetLinkDown(size_t link, bool down) {
  assert(link < kMaxLinks);
  Link& l = links_[link];
  if (l.admin_down == down) {
    return;
  }
  l.admin_down = down;
  link_down_gauge_->Add(down ? 1 : -1);
}

void FaultInjector::AddDownWindow(size_t link, Nanos from, Nanos until) {
  assert(link < kMaxLinks);
  if (until <= from) {
    return;
  }
  links_[link].down_windows.push_back({from, until});
  // Drive the gauge through the window edges so the sampled
  // "fault.link.down" series shows the flap, not just the drops.
  sim_->ScheduleAt(from, [this] { link_down_gauge_->Add(1); });
  sim_->ScheduleAt(until, [this] { link_down_gauge_->Add(-1); });
}

bool FaultInjector::link_up(size_t link, Nanos at) const {
  assert(link < kMaxLinks);
  const Link& l = links_[link];
  if (l.admin_down) {
    return false;
  }
  for (const auto& w : l.down_windows) {
    if (at >= w.from && at < w.until) {
      return false;
    }
  }
  return true;
}

void FaultInjector::Transmit(size_t link, net::PacketPtr packet, Nanos when) {
  assert(link < kMaxLinks);
  Link& l = links_[link];
  l.stats.transmitted++;
  transmitted_->Increment();
  if (!link_up(link, when)) {
    l.stats.dropped_link_down++;
    injected_link_down_->Increment();
    EmitFault(sim_, telemetry::FaultActivation::kLinkDown, link);
    return;  // the frame evaporates; the PacketPtr returns to its pool
  }
  if (!l.profile.active()) {
    Deliver(l, std::move(packet), when);
    return;
  }
  // Fixed draw order — loss, duplication, corruption, jitter, reorder — so
  // a profile change never resequences the dice of the faults it kept.
  if (l.profile.loss > 0.0 && l.rng.NextBool(l.profile.loss)) {
    l.stats.lost++;
    injected_loss_->Increment();
    EmitFault(sim_, telemetry::FaultActivation::kLoss, link);
    return;
  }
  if (l.profile.duplication > 0.0 && l.rng.NextBool(l.profile.duplication)) {
    // The duplicate is a clean copy made before corruption: real wires
    // duplicate at a hop, they do not replay the damage.
    auto span = packet->bytes();
    net::PacketPtr dup =
        net::MakePacket(std::vector<uint8_t>(span.begin(), span.end()));
    dup->meta() = packet->meta();
    l.stats.duplicated++;
    injected_duplicate_->Increment();
    EmitFault(sim_, telemetry::FaultActivation::kDuplicate, link);
    Deliver(l, std::move(dup), when);
  }
  if (l.profile.corruption > 0.0 && l.rng.NextBool(l.profile.corruption)) {
    Corrupt(l, *packet);
  }
  Nanos t = when;
  if (l.profile.jitter > 0) {
    const Nanos extra = static_cast<Nanos>(
        l.rng.NextBounded(static_cast<uint64_t>(l.profile.jitter)));
    if (extra > 0) {
      l.stats.jittered++;
      injected_jitter_->Increment();
      EmitFault(sim_, telemetry::FaultActivation::kJitter, link);
      t += extra;
    }
  }
  if (l.profile.reorder > 0.0 && l.profile.reorder_delay > 0 &&
      l.rng.NextBool(l.profile.reorder)) {
    l.stats.reordered++;
    injected_reorder_->Increment();
    EmitFault(sim_, telemetry::FaultActivation::kReorder, link);
    t += l.profile.reorder_delay;
  }
  Deliver(l, std::move(packet), t);
}

void FaultInjector::Deliver(Link& link, net::PacketPtr packet, Nanos when) {
  link.stats.delivered++;
  delivered_->Increment();
  sim_->ScheduleAt(when, [sink = &link.sink, p = std::move(packet)]() mutable {
    (*sink)(std::move(p));
  });
}

void FaultInjector::Corrupt(Link& link, net::Packet& packet) {
  auto bytes = packet.mutable_bytes();
  // Damage past the Ethernet header: L2 corruption would be caught by the
  // (unmodelled) FCS, while IP/L4 damage is what RX verification must find.
  if (bytes.size() <= net::kEthernetHeaderSize) {
    return;
  }
  const size_t span = bytes.size() - net::kEthernetHeaderSize;
  const size_t n = link.profile.corrupt_bytes > 0 ? link.profile.corrupt_bytes
                                                  : 1;
  for (size_t i = 0; i < n; ++i) {
    const size_t idx =
        net::kEthernetHeaderSize + link.rng.NextBounded(span);
    bytes[idx] ^= static_cast<uint8_t>(1 + link.rng.NextBounded(255));
  }
  packet.InvalidateParse();
  link.stats.corrupted++;
  injected_corrupt_->Increment();
  EmitFault(sim_, telemetry::FaultActivation::kCorrupt,
            static_cast<size_t>(&link - links_.data()));
}

uint64_t FaultInjector::frames_lost() const {
  uint64_t total = 0;
  for (const auto& l : links_) {
    total += l.stats.lost + l.stats.dropped_link_down;
  }
  return total;
}

uint64_t FaultInjector::frames_delivered() const {
  uint64_t total = 0;
  for (const auto& l : links_) {
    total += l.stats.delivered;
  }
  return total;
}

}  // namespace norman::sim
