// The shared cost model for all four datapath architectures.
//
// Every per-operation cost in the simulation comes from this one table so
// that the kernel-stack, kernel-bypass, sidecar-core and KOPI datapaths are
// compared under identical assumptions; only the *architecture* (which
// operations happen, on which resource) differs.
//
// Defaults are drawn from published measurements:
//  * syscall / context-switch costs: Soares & Stumm, FlexSC (OSDI '10);
//    Kaufmann et al., TAS (EuroSys '19).
//  * cross-core cacheline transfer: Dobrescu et al. (PRESTO '10); Panda et
//    al., NetBricks (OSDI '16) report 100-300ns coherence round trips.
//  * DDIO behaviour (limited LLC ways for DMA; DRAM fallback when the I/O
//    working set outgrows them): Tootoonchian et al., ResQ (NSDI '18);
//    Manousis et al. (SIGCOMM '20).
//  * MMIO posted-write cost ~100ns, PCIe round trip ~400-900ns: Kalia et
//    al., "Datacenter RPCs" (NSDI '19) guidelines.
// Exact values matter less than ratios; EXPERIMENTS.md reports shape, not
// absolute numbers.
#ifndef NORMAN_SIM_COST_MODEL_H_
#define NORMAN_SIM_COST_MODEL_H_

#include <cstdint>

#include "src/common/units.h"

namespace norman::sim {

struct CostModel {
  // --- Host CPU costs (virtual data movement) ---
  // Entering/leaving the kernel for a data syscall (sendmsg/recvmsg), *not*
  // counting per-byte work: mode switch + stack setup + pollution.
  Nanos syscall_ns = 450;
  // Full context switch (blocked thread wake / sleep).
  Nanos context_switch_ns = 2'000;
  // Software per-packet protocol processing in the kernel stack (alloc skb,
  // route lookup, netfilter traversal, qdisc enqueue/dequeue).
  Nanos kernel_stack_per_packet_ns = 1'200;
  // Per-byte software copy cost (user<->kernel copy ~ 16 GB/s per core).
  double copy_ns_per_byte = 0.0625;
  // Userspace library per-packet work common to all paths (header build,
  // descriptor write).
  Nanos app_per_packet_ns = 80;

  // --- Physical movement between cores (sidecar architectures: IX, Snap) ---
  // Handing a descriptor to another core through a shared-memory queue:
  // cacheline ping + notification.
  Nanos cross_core_handoff_ns = 250;
  // Per-packet software interposition work on the sidecar core (filters +
  // qdisc in software, but no syscall / no user-kernel copy).
  Nanos sidecar_per_packet_ns = 700;

  // --- PCIe / NIC costs ---
  // Posted MMIO write (doorbell).
  Nanos mmio_write_ns = 100;
  // Non-posted MMIO read (config register).
  Nanos mmio_read_ns = 400;
  // Fixed DMA setup cost per transfer (descriptor fetch, PCIe TLP headers;
  // partially pipelined, so the serialized share is small).
  Nanos dma_setup_ns = 60;
  // Per-byte DMA cost when the target lines are in LLC (DDIO hit).
  double dma_llc_ns_per_byte = 0.015;
  // Per-byte DMA cost when lines must come from / go to DRAM (DDIO miss).
  double dma_dram_ns_per_byte = 0.060;
  // Extra fixed latency on a DDIO miss (DRAM access).
  Nanos dram_touch_ns = 90;

  // --- On-NIC (KOPI) dataplane costs ---
  // Fixed per-packet cost of one hardware pipeline stage (parse, match,
  // queue). The FPGA pipeline is deeply pipelined, so this contributes to
  // *latency* per stage but the pipeline's throughput is set by
  // nic_pipeline_rate below.
  Nanos nic_stage_latency_ns = 45;
  // Per-instruction cost of the overlay soft processor.
  Nanos overlay_instr_ns = 2;
  // Flow verdict cache hit: one exact-match SRAM lookup replaces the whole
  // stage chain (cf. OVS megaflow / hardware flow offload). Charged instead
  // of stages * nic_stage_latency_ns when the fast path resolves a packet.
  Nanos flow_cache_hit_ns = 25;
  // Packet rate the NIC pipeline sustains regardless of per-packet program
  // length (packets/s); models the paper's "line rate" hardware claim.
  uint64_t nic_pipeline_pps = 150'000'000;

  // --- Link ---
  BitsPerSecond link_rate_bps = 100 * kGbps;

  // --- Reconfiguration (E6) ---
  // Loading a new overlay program: per-instruction MMIO writes + activate.
  Nanos overlay_load_per_instr_ns = 110;   // one MMIO posted write per word
  Nanos overlay_activate_ns = 1'000;       // table pointer swap + fence
  // Full FPGA bitstream reprogram (seconds-scale).
  Nanos bitstream_reload_ns = 4 * kSecond;

  // Derived helpers.
  Nanos CopyCost(uint64_t bytes) const {
    return static_cast<Nanos>(copy_ns_per_byte * static_cast<double>(bytes));
  }
  Nanos DmaCost(uint64_t bytes, bool ddio_hit) const {
    const double per_byte =
        ddio_hit ? dma_llc_ns_per_byte : dma_dram_ns_per_byte;
    Nanos cost = dma_setup_ns +
                 static_cast<Nanos>(per_byte * static_cast<double>(bytes));
    if (!ddio_hit) {
      cost += dram_touch_ns;
    }
    return cost;
  }
  Nanos WireCost(uint64_t bytes) const {
    return TransmissionDelay(bytes, link_rate_bps);
  }
  // NIC pipeline occupancy per packet (inverse of its packet rate).
  Nanos NicPipelineOccupancy() const {
    return static_cast<Nanos>(1'000'000'000ULL / nic_pipeline_pps) + 1;
  }
};

}  // namespace norman::sim

#endif  // NORMAN_SIM_COST_MODEL_H_
