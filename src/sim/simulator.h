// Discrete-event simulation engine.
//
// All Norman experiments run in virtual time: the simulator owns a binary
// heap of (time, sequence, callback) event nodes. Ties are broken by
// insertion sequence so runs are fully deterministic. There is no
// threading; the "cores" of the simulated machine are Resource objects
// (see resource.h) that serialize work in virtual time.
//
// The event hot path is allocation-free in steady state: callbacks use a
// small-buffer-optimized InlineCallback (no std::function heap node for
// the few-pointer lambdas that dominate scheduling), and event nodes are
// recycled through a slab-backed free list inside the simulator.
#ifndef NORMAN_SIM_SIMULATOR_H_
#define NORMAN_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/flight_recorder.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/common/tracepoint.h"
#include "src/common/units.h"

namespace norman::sim {

// Move-only type-erased void() callable with inline storage. Callables up
// to kInlineBytes (the common case: lambdas capturing a few pointers and
// integers) live inside the object; larger ones fall back to a single heap
// allocation, counted by the owning simulator's pool stats.
class InlineCallback {
 public:
  static constexpr size_t kInlineBytes = 64;

  InlineCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(f));
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const { return ops_ != nullptr; }
  // True when the callable overflowed the inline buffer onto the heap.
  bool heap_allocated() const { return ops_ != nullptr && ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct `dst` storage from `src` storage, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
    bool heap;
  };

  template <typename D>
  static D*& HeapSlot(void* storage) {
    return *std::launder(reinterpret_cast<D**>(storage));
  }

  template <typename F>
  void Emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      static constexpr Ops kOps = {
          [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
          [](void* dst, void* src) {
            D* from = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
          },
          [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
          /*heap=*/false};
      ops_ = &kOps;
    } else {
      ::new (static_cast<void*>(storage_))
          D*(new D(std::forward<F>(f)));
      static constexpr Ops kOps = {
          [](void* s) { (*HeapSlot<D>(s))(); },
          [](void* dst, void* src) {
            ::new (dst) D*(HeapSlot<D>(src));
          },
          [](void* s) { delete HeapSlot<D>(s); },
          /*heap=*/true};
      ops_ = &kOps;
    }
  }

  void MoveFrom(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  // Current virtual time.
  Nanos Now() const { return now_; }

  // Schedule `fn` to run at absolute virtual time `when` (>= Now()).
  void ScheduleAt(Nanos when, Callback fn);

  // Schedule `fn` to run `delay` ns from now.
  void ScheduleAfter(Nanos delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // ---- deterministic core interleaving ------------------------------------
  //
  // A sharded dataplane services N per-core lanes. Events tagged with a
  // lane are ordered *within a ready horizon* by a rotating round-robin
  // rank keyed on (virtual time, core index): at horizon t, lane (t mod N)
  // is serviced first, then (t+1 mod N), and so on. The rotation makes the
  // schedule fair across lanes while staying a pure function of (t, lane),
  // so runs are bit-reproducible at any core count and at any dispatch
  // batch size. Untagged events (kNoLane) keep rank 0 and therefore fire
  // before any lane service at the same horizon, exactly as they always
  // have; with num_lanes() <= 1 every event has rank 0 and the schedule is
  // bit-identical to the historical (when, seq) order.
  static constexpr uint16_t kNoLane = 0xffff;
  static constexpr uint16_t kMaxLanes = 64;

  // Number of lanes the interleave schedule rotates over. Setting it does
  // not reorder already-queued events (their ranks were stamped at
  // schedule time); configure it before traffic starts.
  void set_num_lanes(uint16_t n);
  uint16_t num_lanes() const { return num_lanes_; }

  // Schedule `fn` at `when` on behalf of `lane`. With lanes configured the
  // event carries the rotating lane rank; otherwise this is ScheduleAt.
  void ScheduleAtLane(uint16_t lane, Nanos when, Callback fn);

  // Run events until the queue is empty. Drains in StepBatch() passes of
  // dispatch_batch() events.
  void Run();

  // Run events with time <= deadline; afterwards Now() == deadline (even if
  // the queue drained earlier), so rate computations over fixed windows work.
  // Batched like Run(): every event a StepBatch() pass pops shares the ready
  // horizon, so a deadline can never fall mid-batch — either the whole batch
  // fires at or before it, or none of it does.
  void RunUntil(Nanos deadline);

  // Run at most one event; returns false if the queue was empty.
  bool Step();

  // Hard ceiling on one batch pass (sizes the inline dispatch buffer).
  static constexpr uint32_t kMaxDispatchBatch = 64;
  static constexpr uint32_t kDefaultDispatchBatch = 64;

  // Pop up to max_n events that share the earliest pending timestamp (the
  // ready horizon) in one heap pass, then dispatch them from an inline
  // buffer in (when, seq) order. Only horizon-sharing events are batched:
  // a callback may schedule new work at any time >= now, and that work must
  // run before any already-buffered later-time event — so the buffer never
  // spans timestamps. Same-time events scheduled from inside the batch get
  // a higher sequence number than everything buffered and correctly run in
  // a subsequent pass at the same horizon. Returns the number dispatched
  // (0 when the queue was empty).
  uint32_t StepBatch(uint32_t max_n);

  // Batch size used by Run()/RunUntil(), clamped to [1, kMaxDispatchBatch].
  // 1 reproduces the historical one-event-per-heap-visit loop exactly.
  void set_dispatch_batch(uint32_t n);
  uint32_t dispatch_batch() const { return dispatch_batch_; }

  // Queue observers. Events a StepBatch() pass has popped but not yet run
  // still count as pending: under per-event stepping they would sit in the
  // heap while their same-time siblings dispatch, and callbacks that probe
  // the queue (ConsumeTxRing's inline-continuation check, the kernel's
  // interrupt re-arm) must see identical state at every batch size.
  bool Idle() const { return heap_.empty() && batch_pending_ == 0; }
  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return heap_.size() + batch_pending_; }

  // True if an already-scheduled event would fire at or before `when`.
  // Batched device loops use this to detect that an intermediate wake-up
  // event can be elided without reordering anything (see SmartNic TX fetch).
  bool HasEventAtOrBefore(Nanos when) const {
    if (batch_pending_ != 0 && now_ <= when) {
      return true;  // undispatched batch siblings fire "now"
    }
    return !heap_.empty() && heap_.front()->when <= when;
  }

  // Event-node recycling stats (hits = reused nodes, misses = fresh slab
  // carves/allocations).
  const PoolCounters& event_pool() const { return node_counters_; }

  // Telemetry for this simulated world. The simulator owns the registry
  // and tracer so every device reached through a Simulator* shares them,
  // and separate worlds (tests, benches) stay isolated.
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }
  telemetry::PacketTracer& tracer() { return tracer_; }
  const telemetry::PacketTracer& tracer() const { return tracer_; }
  // Cycle-attribution profiler for this world (off by default; devices
  // register their cores at construction, charges appear only once
  // profiler().set_enabled(true)).
  telemetry::Profiler& profiler() { return profiler_; }
  const telemetry::Profiler& profiler() const { return profiler_; }
  // Armable probe points + the black-box trigger engine riding on them
  // (all probes disarmed by default; see tracepoint.h).
  telemetry::Tracepoints& tracepoints() { return tracepoints_; }
  const telemetry::Tracepoints& tracepoints() const { return tracepoints_; }
  telemetry::FlightRecorder& flight_recorder() { return flight_recorder_; }
  const telemetry::FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }

 private:
  struct EventNode {
    Nanos when = 0;
    uint64_t seq = 0;
    // Lane-interleave rank within the ready horizon. 0 for untagged events
    // and for every event while num_lanes() <= 1, so the historical
    // (when, seq) order is preserved by construction in unsharded worlds.
    uint16_t rank = 0;
    InlineCallback fn;
  };
  // Min-heap on (when, rank, seq): comparator says "a fires later than b".
  struct FiresLater {
    bool operator()(const EventNode* a, const EventNode* b) const {
      if (a->when != b->when) {
        return a->when > b->when;
      }
      if (a->rank != b->rank) {
        return a->rank > b->rank;
      }
      return a->seq > b->seq;
    }
  };

  // Rotating round-robin rank for a lane-tagged event at horizon `when`:
  // 1 + (lane - when) mod N, so lane (when mod N) ranks first. Strictly
  // positive so untagged (rank 0) work always precedes lane service.
  uint16_t LaneRank(uint16_t lane, Nanos when) const {
    if (num_lanes_ <= 1 || lane == kNoLane) {
      return 0;
    }
    const uint16_t n = num_lanes_;
    const uint16_t phase = static_cast<uint16_t>(
        static_cast<uint64_t>(when) % n);
    return static_cast<uint16_t>(1 + (lane % n + n - phase) % n);
  }

  static constexpr size_t kSlabNodes = 256;

  EventNode* AcquireNode();
  void ReleaseNode(EventNode* node);
  // Multi-event tail of StepBatch(): pops the rest of the ready horizon
  // into buf and dispatches first + buf in (when, seq) order.
  uint32_t DrainHorizon(InlineCallback& first, InlineCallback* buf,
                        uint32_t max_n, Nanos horizon);

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint16_t num_lanes_ = 1;
  std::vector<EventNode*> heap_;
  std::vector<EventNode*> free_nodes_;
  std::vector<std::unique_ptr<EventNode[]>> slabs_;
  size_t last_slab_used_ = kSlabNodes;  // forces a slab on first acquire
  uint32_t dispatch_batch_ = kDefaultDispatchBatch;
  // Events popped into the current StepBatch() buffer but not yet run;
  // see the queue-observer comment above. Additive so a callback that
  // re-enters Step()/StepBatch() composes correctly.
  uint32_t batch_pending_ = 0;
  // Reusable dispatch buffer for multi-event horizon drains, constructed
  // once so the hot path never pays per-pass InlineCallback array setup.
  // busy_ guards against a callback re-entering StepBatch(); the rare
  // recursive pass falls back to a stack-local buffer.
  InlineCallback dispatch_buf_[kMaxDispatchBatch];
  bool dispatch_buf_busy_ = false;
  PoolCounters node_counters_{"event"};
  telemetry::MetricsRegistry metrics_;
  telemetry::PacketTracer tracer_{&metrics_};
  telemetry::Profiler profiler_;
  telemetry::Tracepoints tracepoints_{&metrics_};
  telemetry::FlightRecorder flight_recorder_{&tracepoints_};
  // Root attribution frame: every StepBatch() pass runs under "dispatch",
  // so device scopes (nic.tx, kernel.slow_path, ...) nest beneath it.
  telemetry::ProfSite dispatch_site_{"dispatch"};
  // Dispatch telemetry, flushed once per batch pass (never per event):
  // batches = StepBatch passes, batched events / batches = mean burst size.
  telemetry::Counter* dispatch_batches_ =
      metrics_.GetCounter("sim.dispatch.batches");
  telemetry::Counter* dispatch_events_ =
      metrics_.GetCounter("sim.dispatch.batched_events");
};

}  // namespace norman::sim

#endif  // NORMAN_SIM_SIMULATOR_H_
