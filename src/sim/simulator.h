// Discrete-event simulation engine.
//
// All Norman experiments run in virtual time: the simulator owns a priority
// queue of (time, sequence, callback) events. Ties are broken by insertion
// sequence so runs are fully deterministic. There is no threading; the
// "cores" of the simulated machine are Resource objects (see resource.h)
// that serialize work in virtual time.
#ifndef NORMAN_SIM_SIMULATOR_H_
#define NORMAN_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/units.h"

namespace norman::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time.
  Nanos Now() const { return now_; }

  // Schedule `fn` to run at absolute virtual time `when` (>= Now()).
  void ScheduleAt(Nanos when, Callback fn);

  // Schedule `fn` to run `delay` ns from now.
  void ScheduleAfter(Nanos delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Run events until the queue is empty.
  void Run();

  // Run events with time <= deadline; afterwards Now() == deadline (even if
  // the queue drained earlier), so rate computations over fixed windows work.
  void RunUntil(Nanos deadline);

  // Run at most one event; returns false if the queue was empty.
  bool Step();

  bool Idle() const { return queue_.empty(); }
  uint64_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    Nanos when;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace norman::sim

#endif  // NORMAN_SIM_SIMULATOR_H_
