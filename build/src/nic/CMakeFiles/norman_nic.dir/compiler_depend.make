# Empty compiler generated dependencies file for norman_nic.
# This may be replaced when dependencies are built.
