file(REMOVE_RECURSE
  "libnorman_nic.a"
)
