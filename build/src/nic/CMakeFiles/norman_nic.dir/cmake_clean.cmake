file(REMOVE_RECURSE
  "CMakeFiles/norman_nic.dir/smart_nic.cc.o"
  "CMakeFiles/norman_nic.dir/smart_nic.cc.o.d"
  "libnorman_nic.a"
  "libnorman_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norman_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
