
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/assembler.cc" "src/overlay/CMakeFiles/norman_overlay.dir/assembler.cc.o" "gcc" "src/overlay/CMakeFiles/norman_overlay.dir/assembler.cc.o.d"
  "/root/repo/src/overlay/interpreter.cc" "src/overlay/CMakeFiles/norman_overlay.dir/interpreter.cc.o" "gcc" "src/overlay/CMakeFiles/norman_overlay.dir/interpreter.cc.o.d"
  "/root/repo/src/overlay/isa.cc" "src/overlay/CMakeFiles/norman_overlay.dir/isa.cc.o" "gcc" "src/overlay/CMakeFiles/norman_overlay.dir/isa.cc.o.d"
  "/root/repo/src/overlay/packet_context.cc" "src/overlay/CMakeFiles/norman_overlay.dir/packet_context.cc.o" "gcc" "src/overlay/CMakeFiles/norman_overlay.dir/packet_context.cc.o.d"
  "/root/repo/src/overlay/verifier.cc" "src/overlay/CMakeFiles/norman_overlay.dir/verifier.cc.o" "gcc" "src/overlay/CMakeFiles/norman_overlay.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/norman_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/norman_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
