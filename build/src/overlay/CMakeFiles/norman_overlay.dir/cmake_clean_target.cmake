file(REMOVE_RECURSE
  "libnorman_overlay.a"
)
