# Empty dependencies file for norman_overlay.
# This may be replaced when dependencies are built.
