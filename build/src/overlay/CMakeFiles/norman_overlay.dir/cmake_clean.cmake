file(REMOVE_RECURSE
  "CMakeFiles/norman_overlay.dir/assembler.cc.o"
  "CMakeFiles/norman_overlay.dir/assembler.cc.o.d"
  "CMakeFiles/norman_overlay.dir/interpreter.cc.o"
  "CMakeFiles/norman_overlay.dir/interpreter.cc.o.d"
  "CMakeFiles/norman_overlay.dir/isa.cc.o"
  "CMakeFiles/norman_overlay.dir/isa.cc.o.d"
  "CMakeFiles/norman_overlay.dir/packet_context.cc.o"
  "CMakeFiles/norman_overlay.dir/packet_context.cc.o.d"
  "CMakeFiles/norman_overlay.dir/verifier.cc.o"
  "CMakeFiles/norman_overlay.dir/verifier.cc.o.d"
  "libnorman_overlay.a"
  "libnorman_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norman_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
