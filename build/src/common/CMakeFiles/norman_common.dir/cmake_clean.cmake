file(REMOVE_RECURSE
  "CMakeFiles/norman_common.dir/logging.cc.o"
  "CMakeFiles/norman_common.dir/logging.cc.o.d"
  "CMakeFiles/norman_common.dir/stats.cc.o"
  "CMakeFiles/norman_common.dir/stats.cc.o.d"
  "CMakeFiles/norman_common.dir/status.cc.o"
  "CMakeFiles/norman_common.dir/status.cc.o.d"
  "libnorman_common.a"
  "libnorman_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norman_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
