file(REMOVE_RECURSE
  "libnorman_common.a"
)
