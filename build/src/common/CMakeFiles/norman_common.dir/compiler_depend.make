# Empty compiler generated dependencies file for norman_common.
# This may be replaced when dependencies are built.
