# Empty dependencies file for norman_net.
# This may be replaced when dependencies are built.
