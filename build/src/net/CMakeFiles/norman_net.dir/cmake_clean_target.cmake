file(REMOVE_RECURSE
  "libnorman_net.a"
)
