file(REMOVE_RECURSE
  "CMakeFiles/norman_net.dir/checksum.cc.o"
  "CMakeFiles/norman_net.dir/checksum.cc.o.d"
  "CMakeFiles/norman_net.dir/headers.cc.o"
  "CMakeFiles/norman_net.dir/headers.cc.o.d"
  "CMakeFiles/norman_net.dir/packet_builder.cc.o"
  "CMakeFiles/norman_net.dir/packet_builder.cc.o.d"
  "CMakeFiles/norman_net.dir/parsed_packet.cc.o"
  "CMakeFiles/norman_net.dir/parsed_packet.cc.o.d"
  "CMakeFiles/norman_net.dir/pcap_writer.cc.o"
  "CMakeFiles/norman_net.dir/pcap_writer.cc.o.d"
  "libnorman_net.a"
  "libnorman_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norman_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
