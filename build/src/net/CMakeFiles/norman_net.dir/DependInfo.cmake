
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/checksum.cc" "src/net/CMakeFiles/norman_net.dir/checksum.cc.o" "gcc" "src/net/CMakeFiles/norman_net.dir/checksum.cc.o.d"
  "/root/repo/src/net/headers.cc" "src/net/CMakeFiles/norman_net.dir/headers.cc.o" "gcc" "src/net/CMakeFiles/norman_net.dir/headers.cc.o.d"
  "/root/repo/src/net/packet_builder.cc" "src/net/CMakeFiles/norman_net.dir/packet_builder.cc.o" "gcc" "src/net/CMakeFiles/norman_net.dir/packet_builder.cc.o.d"
  "/root/repo/src/net/parsed_packet.cc" "src/net/CMakeFiles/norman_net.dir/parsed_packet.cc.o" "gcc" "src/net/CMakeFiles/norman_net.dir/parsed_packet.cc.o.d"
  "/root/repo/src/net/pcap_writer.cc" "src/net/CMakeFiles/norman_net.dir/pcap_writer.cc.o" "gcc" "src/net/CMakeFiles/norman_net.dir/pcap_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/norman_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
