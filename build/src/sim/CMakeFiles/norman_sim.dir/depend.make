# Empty dependencies file for norman_sim.
# This may be replaced when dependencies are built.
