file(REMOVE_RECURSE
  "libnorman_sim.a"
)
