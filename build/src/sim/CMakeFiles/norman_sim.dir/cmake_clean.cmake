file(REMOVE_RECURSE
  "CMakeFiles/norman_sim.dir/simulator.cc.o"
  "CMakeFiles/norman_sim.dir/simulator.cc.o.d"
  "libnorman_sim.a"
  "libnorman_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norman_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
