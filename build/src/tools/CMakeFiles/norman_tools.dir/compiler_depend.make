# Empty compiler generated dependencies file for norman_tools.
# This may be replaced when dependencies are built.
