file(REMOVE_RECURSE
  "CMakeFiles/norman_tools.dir/tools.cc.o"
  "CMakeFiles/norman_tools.dir/tools.cc.o.d"
  "libnorman_tools.a"
  "libnorman_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norman_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
