file(REMOVE_RECURSE
  "libnorman_tools.a"
)
