# Empty dependencies file for norman_api.
# This may be replaced when dependencies are built.
