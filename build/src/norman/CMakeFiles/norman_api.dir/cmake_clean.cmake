file(REMOVE_RECURSE
  "CMakeFiles/norman_api.dir/reliable.cc.o"
  "CMakeFiles/norman_api.dir/reliable.cc.o.d"
  "CMakeFiles/norman_api.dir/socket.cc.o"
  "CMakeFiles/norman_api.dir/socket.cc.o.d"
  "libnorman_api.a"
  "libnorman_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norman_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
