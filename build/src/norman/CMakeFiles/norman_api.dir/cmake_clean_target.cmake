file(REMOVE_RECURSE
  "libnorman_api.a"
)
