# Empty dependencies file for norman_kernel.
# This may be replaced when dependencies are built.
