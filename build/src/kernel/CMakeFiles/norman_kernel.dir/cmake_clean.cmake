file(REMOVE_RECURSE
  "CMakeFiles/norman_kernel.dir/kernel.cc.o"
  "CMakeFiles/norman_kernel.dir/kernel.cc.o.d"
  "libnorman_kernel.a"
  "libnorman_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norman_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
