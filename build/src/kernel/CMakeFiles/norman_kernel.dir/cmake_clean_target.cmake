file(REMOVE_RECURSE
  "libnorman_kernel.a"
)
