file(REMOVE_RECURSE
  "CMakeFiles/norman_workload.dir/duplex.cc.o"
  "CMakeFiles/norman_workload.dir/duplex.cc.o.d"
  "CMakeFiles/norman_workload.dir/pcap_replay.cc.o"
  "CMakeFiles/norman_workload.dir/pcap_replay.cc.o.d"
  "CMakeFiles/norman_workload.dir/testbed.cc.o"
  "CMakeFiles/norman_workload.dir/testbed.cc.o.d"
  "libnorman_workload.a"
  "libnorman_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norman_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
