file(REMOVE_RECURSE
  "libnorman_workload.a"
)
