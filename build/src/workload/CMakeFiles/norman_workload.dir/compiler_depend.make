# Empty compiler generated dependencies file for norman_workload.
# This may be replaced when dependencies are built.
