file(REMOVE_RECURSE
  "CMakeFiles/norman_baseline.dir/perf_model.cc.o"
  "CMakeFiles/norman_baseline.dir/perf_model.cc.o.d"
  "CMakeFiles/norman_baseline.dir/scenarios.cc.o"
  "CMakeFiles/norman_baseline.dir/scenarios.cc.o.d"
  "libnorman_baseline.a"
  "libnorman_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norman_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
