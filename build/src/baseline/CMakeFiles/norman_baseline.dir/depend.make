# Empty dependencies file for norman_baseline.
# This may be replaced when dependencies are built.
