file(REMOVE_RECURSE
  "libnorman_baseline.a"
)
