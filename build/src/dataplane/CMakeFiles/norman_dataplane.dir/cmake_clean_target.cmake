file(REMOVE_RECURSE
  "libnorman_dataplane.a"
)
