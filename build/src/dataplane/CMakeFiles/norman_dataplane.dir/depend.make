# Empty dependencies file for norman_dataplane.
# This may be replaced when dependencies are built.
