
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/arp_service.cc" "src/dataplane/CMakeFiles/norman_dataplane.dir/arp_service.cc.o" "gcc" "src/dataplane/CMakeFiles/norman_dataplane.dir/arp_service.cc.o.d"
  "/root/repo/src/dataplane/conntrack.cc" "src/dataplane/CMakeFiles/norman_dataplane.dir/conntrack.cc.o" "gcc" "src/dataplane/CMakeFiles/norman_dataplane.dir/conntrack.cc.o.d"
  "/root/repo/src/dataplane/filter_engine.cc" "src/dataplane/CMakeFiles/norman_dataplane.dir/filter_engine.cc.o" "gcc" "src/dataplane/CMakeFiles/norman_dataplane.dir/filter_engine.cc.o.d"
  "/root/repo/src/dataplane/icmp_responder.cc" "src/dataplane/CMakeFiles/norman_dataplane.dir/icmp_responder.cc.o" "gcc" "src/dataplane/CMakeFiles/norman_dataplane.dir/icmp_responder.cc.o.d"
  "/root/repo/src/dataplane/nat.cc" "src/dataplane/CMakeFiles/norman_dataplane.dir/nat.cc.o" "gcc" "src/dataplane/CMakeFiles/norman_dataplane.dir/nat.cc.o.d"
  "/root/repo/src/dataplane/overlay_stage.cc" "src/dataplane/CMakeFiles/norman_dataplane.dir/overlay_stage.cc.o" "gcc" "src/dataplane/CMakeFiles/norman_dataplane.dir/overlay_stage.cc.o.d"
  "/root/repo/src/dataplane/qdisc.cc" "src/dataplane/CMakeFiles/norman_dataplane.dir/qdisc.cc.o" "gcc" "src/dataplane/CMakeFiles/norman_dataplane.dir/qdisc.cc.o.d"
  "/root/repo/src/dataplane/rate_limiter.cc" "src/dataplane/CMakeFiles/norman_dataplane.dir/rate_limiter.cc.o" "gcc" "src/dataplane/CMakeFiles/norman_dataplane.dir/rate_limiter.cc.o.d"
  "/root/repo/src/dataplane/sniffer.cc" "src/dataplane/CMakeFiles/norman_dataplane.dir/sniffer.cc.o" "gcc" "src/dataplane/CMakeFiles/norman_dataplane.dir/sniffer.cc.o.d"
  "/root/repo/src/dataplane/spoof_guard.cc" "src/dataplane/CMakeFiles/norman_dataplane.dir/spoof_guard.cc.o" "gcc" "src/dataplane/CMakeFiles/norman_dataplane.dir/spoof_guard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nic/CMakeFiles/norman_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/norman_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/norman_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/norman_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/norman_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
