file(REMOVE_RECURSE
  "CMakeFiles/norman_dataplane.dir/arp_service.cc.o"
  "CMakeFiles/norman_dataplane.dir/arp_service.cc.o.d"
  "CMakeFiles/norman_dataplane.dir/conntrack.cc.o"
  "CMakeFiles/norman_dataplane.dir/conntrack.cc.o.d"
  "CMakeFiles/norman_dataplane.dir/filter_engine.cc.o"
  "CMakeFiles/norman_dataplane.dir/filter_engine.cc.o.d"
  "CMakeFiles/norman_dataplane.dir/icmp_responder.cc.o"
  "CMakeFiles/norman_dataplane.dir/icmp_responder.cc.o.d"
  "CMakeFiles/norman_dataplane.dir/nat.cc.o"
  "CMakeFiles/norman_dataplane.dir/nat.cc.o.d"
  "CMakeFiles/norman_dataplane.dir/overlay_stage.cc.o"
  "CMakeFiles/norman_dataplane.dir/overlay_stage.cc.o.d"
  "CMakeFiles/norman_dataplane.dir/qdisc.cc.o"
  "CMakeFiles/norman_dataplane.dir/qdisc.cc.o.d"
  "CMakeFiles/norman_dataplane.dir/rate_limiter.cc.o"
  "CMakeFiles/norman_dataplane.dir/rate_limiter.cc.o.d"
  "CMakeFiles/norman_dataplane.dir/sniffer.cc.o"
  "CMakeFiles/norman_dataplane.dir/sniffer.cc.o.d"
  "CMakeFiles/norman_dataplane.dir/spoof_guard.cc.o"
  "CMakeFiles/norman_dataplane.dir/spoof_guard.cc.o.d"
  "libnorman_dataplane.a"
  "libnorman_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norman_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
