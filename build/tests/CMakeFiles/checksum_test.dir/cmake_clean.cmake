file(REMOVE_RECURSE
  "CMakeFiles/checksum_test.dir/checksum_test.cc.o"
  "CMakeFiles/checksum_test.dir/checksum_test.cc.o.d"
  "checksum_test"
  "checksum_test.pdb"
  "checksum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checksum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
