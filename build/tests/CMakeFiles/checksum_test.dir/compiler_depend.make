# Empty compiler generated dependencies file for checksum_test.
# This may be replaced when dependencies are built.
