file(REMOVE_RECURSE
  "CMakeFiles/qdisc_property_test.dir/qdisc_property_test.cc.o"
  "CMakeFiles/qdisc_property_test.dir/qdisc_property_test.cc.o.d"
  "qdisc_property_test"
  "qdisc_property_test.pdb"
  "qdisc_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdisc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
