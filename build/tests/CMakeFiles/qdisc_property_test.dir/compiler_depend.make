# Empty compiler generated dependencies file for qdisc_property_test.
# This may be replaced when dependencies are built.
