file(REMOVE_RECURSE
  "CMakeFiles/simulator_test.dir/simulator_test.cc.o"
  "CMakeFiles/simulator_test.dir/simulator_test.cc.o.d"
  "simulator_test"
  "simulator_test.pdb"
  "simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
