# Empty dependencies file for filter_engine_test.
# This may be replaced when dependencies are built.
