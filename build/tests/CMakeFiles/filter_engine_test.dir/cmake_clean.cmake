file(REMOVE_RECURSE
  "CMakeFiles/filter_engine_test.dir/filter_engine_test.cc.o"
  "CMakeFiles/filter_engine_test.dir/filter_engine_test.cc.o.d"
  "filter_engine_test"
  "filter_engine_test.pdb"
  "filter_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
