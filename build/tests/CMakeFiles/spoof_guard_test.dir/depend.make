# Empty dependencies file for spoof_guard_test.
# This may be replaced when dependencies are built.
