file(REMOVE_RECURSE
  "CMakeFiles/spoof_guard_test.dir/spoof_guard_test.cc.o"
  "CMakeFiles/spoof_guard_test.dir/spoof_guard_test.cc.o.d"
  "spoof_guard_test"
  "spoof_guard_test.pdb"
  "spoof_guard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoof_guard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
