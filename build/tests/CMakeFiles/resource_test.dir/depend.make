# Empty dependencies file for resource_test.
# This may be replaced when dependencies are built.
