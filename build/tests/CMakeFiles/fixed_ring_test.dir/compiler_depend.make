# Empty compiler generated dependencies file for fixed_ring_test.
# This may be replaced when dependencies are built.
