file(REMOVE_RECURSE
  "CMakeFiles/fixed_ring_test.dir/fixed_ring_test.cc.o"
  "CMakeFiles/fixed_ring_test.dir/fixed_ring_test.cc.o.d"
  "fixed_ring_test"
  "fixed_ring_test.pdb"
  "fixed_ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixed_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
