# Empty compiler generated dependencies file for reliable_test.
# This may be replaced when dependencies are built.
