file(REMOVE_RECURSE
  "CMakeFiles/reliable_test.dir/reliable_test.cc.o"
  "CMakeFiles/reliable_test.dir/reliable_test.cc.o.d"
  "reliable_test"
  "reliable_test.pdb"
  "reliable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
