file(REMOVE_RECURSE
  "CMakeFiles/filter_differential_test.dir/filter_differential_test.cc.o"
  "CMakeFiles/filter_differential_test.dir/filter_differential_test.cc.o.d"
  "filter_differential_test"
  "filter_differential_test.pdb"
  "filter_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
