# Empty dependencies file for filter_differential_test.
# This may be replaced when dependencies are built.
