file(REMOVE_RECURSE
  "CMakeFiles/nic_services_test.dir/nic_services_test.cc.o"
  "CMakeFiles/nic_services_test.dir/nic_services_test.cc.o.d"
  "nic_services_test"
  "nic_services_test.pdb"
  "nic_services_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_services_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
