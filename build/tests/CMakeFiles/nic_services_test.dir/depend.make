# Empty dependencies file for nic_services_test.
# This may be replaced when dependencies are built.
