# Empty dependencies file for smart_nic_test.
# This may be replaced when dependencies are built.
