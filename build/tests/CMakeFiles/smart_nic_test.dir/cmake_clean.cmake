file(REMOVE_RECURSE
  "CMakeFiles/smart_nic_test.dir/smart_nic_test.cc.o"
  "CMakeFiles/smart_nic_test.dir/smart_nic_test.cc.o.d"
  "smart_nic_test"
  "smart_nic_test.pdb"
  "smart_nic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
