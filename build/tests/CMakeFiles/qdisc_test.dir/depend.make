# Empty dependencies file for qdisc_test.
# This may be replaced when dependencies are built.
