file(REMOVE_RECURSE
  "CMakeFiles/qdisc_test.dir/qdisc_test.cc.o"
  "CMakeFiles/qdisc_test.dir/qdisc_test.cc.o.d"
  "qdisc_test"
  "qdisc_test.pdb"
  "qdisc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdisc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
