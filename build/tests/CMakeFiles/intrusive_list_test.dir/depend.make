# Empty dependencies file for intrusive_list_test.
# This may be replaced when dependencies are built.
