# Empty compiler generated dependencies file for socket_test.
# This may be replaced when dependencies are built.
