file(REMOVE_RECURSE
  "CMakeFiles/socket_test.dir/socket_test.cc.o"
  "CMakeFiles/socket_test.dir/socket_test.cc.o.d"
  "socket_test"
  "socket_test.pdb"
  "socket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
