# Empty dependencies file for dataplane_stages_test.
# This may be replaced when dependencies are built.
