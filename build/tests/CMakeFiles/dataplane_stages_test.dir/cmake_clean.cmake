file(REMOVE_RECURSE
  "CMakeFiles/dataplane_stages_test.dir/dataplane_stages_test.cc.o"
  "CMakeFiles/dataplane_stages_test.dir/dataplane_stages_test.cc.o.d"
  "dataplane_stages_test"
  "dataplane_stages_test.pdb"
  "dataplane_stages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataplane_stages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
