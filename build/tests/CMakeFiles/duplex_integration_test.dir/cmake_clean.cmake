file(REMOVE_RECURSE
  "CMakeFiles/duplex_integration_test.dir/duplex_integration_test.cc.o"
  "CMakeFiles/duplex_integration_test.dir/duplex_integration_test.cc.o.d"
  "duplex_integration_test"
  "duplex_integration_test.pdb"
  "duplex_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplex_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
