# Empty dependencies file for duplex_integration_test.
# This may be replaced when dependencies are built.
