# Empty dependencies file for ddio_test.
# This may be replaced when dependencies are built.
