file(REMOVE_RECURSE
  "CMakeFiles/ddio_test.dir/ddio_test.cc.o"
  "CMakeFiles/ddio_test.dir/ddio_test.cc.o.d"
  "ddio_test"
  "ddio_test.pdb"
  "ddio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
