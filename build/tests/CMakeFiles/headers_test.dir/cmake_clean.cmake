file(REMOVE_RECURSE
  "CMakeFiles/headers_test.dir/headers_test.cc.o"
  "CMakeFiles/headers_test.dir/headers_test.cc.o.d"
  "headers_test"
  "headers_test.pdb"
  "headers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
