file(REMOVE_RECURSE
  "CMakeFiles/nic_components_test.dir/nic_components_test.cc.o"
  "CMakeFiles/nic_components_test.dir/nic_components_test.cc.o.d"
  "nic_components_test"
  "nic_components_test.pdb"
  "nic_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nic_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
