# Empty dependencies file for nic_components_test.
# This may be replaced when dependencies are built.
