# Empty compiler generated dependencies file for kernel_edge_test.
# This may be replaced when dependencies are built.
