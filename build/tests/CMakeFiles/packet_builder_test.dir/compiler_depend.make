# Empty compiler generated dependencies file for packet_builder_test.
# This may be replaced when dependencies are built.
