file(REMOVE_RECURSE
  "CMakeFiles/packet_builder_test.dir/packet_builder_test.cc.o"
  "CMakeFiles/packet_builder_test.dir/packet_builder_test.cc.o.d"
  "packet_builder_test"
  "packet_builder_test.pdb"
  "packet_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
