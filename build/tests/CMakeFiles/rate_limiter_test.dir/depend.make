# Empty dependencies file for rate_limiter_test.
# This may be replaced when dependencies are built.
