file(REMOVE_RECURSE
  "CMakeFiles/rate_limiter_test.dir/rate_limiter_test.cc.o"
  "CMakeFiles/rate_limiter_test.dir/rate_limiter_test.cc.o.d"
  "rate_limiter_test"
  "rate_limiter_test.pdb"
  "rate_limiter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_limiter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
