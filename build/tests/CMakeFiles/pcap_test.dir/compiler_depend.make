# Empty compiler generated dependencies file for pcap_test.
# This may be replaced when dependencies are built.
