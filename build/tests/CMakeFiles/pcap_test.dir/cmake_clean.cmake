file(REMOVE_RECURSE
  "CMakeFiles/pcap_test.dir/pcap_test.cc.o"
  "CMakeFiles/pcap_test.dir/pcap_test.cc.o.d"
  "pcap_test"
  "pcap_test.pdb"
  "pcap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
