file(REMOVE_RECURSE
  "CMakeFiles/pcap_replay_test.dir/pcap_replay_test.cc.o"
  "CMakeFiles/pcap_replay_test.dir/pcap_replay_test.cc.o.d"
  "pcap_replay_test"
  "pcap_replay_test.pdb"
  "pcap_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
