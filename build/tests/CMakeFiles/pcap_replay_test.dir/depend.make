# Empty dependencies file for pcap_replay_test.
# This may be replaced when dependencies are built.
