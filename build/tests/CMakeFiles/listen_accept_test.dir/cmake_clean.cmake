file(REMOVE_RECURSE
  "CMakeFiles/listen_accept_test.dir/listen_accept_test.cc.o"
  "CMakeFiles/listen_accept_test.dir/listen_accept_test.cc.o.d"
  "listen_accept_test"
  "listen_accept_test.pdb"
  "listen_accept_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/listen_accept_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
