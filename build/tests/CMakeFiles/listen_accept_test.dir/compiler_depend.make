# Empty compiler generated dependencies file for listen_accept_test.
# This may be replaced when dependencies are built.
