file(REMOVE_RECURSE
  "CMakeFiles/port_partitioning.dir/port_partitioning.cpp.o"
  "CMakeFiles/port_partitioning.dir/port_partitioning.cpp.o.d"
  "port_partitioning"
  "port_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/port_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
