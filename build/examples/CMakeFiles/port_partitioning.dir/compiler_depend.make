# Empty compiler generated dependencies file for port_partitioning.
# This may be replaced when dependencies are built.
