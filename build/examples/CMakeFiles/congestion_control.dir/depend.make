# Empty dependencies file for congestion_control.
# This may be replaced when dependencies are built.
