file(REMOVE_RECURSE
  "CMakeFiles/congestion_control.dir/congestion_control.cpp.o"
  "CMakeFiles/congestion_control.dir/congestion_control.cpp.o.d"
  "congestion_control"
  "congestion_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
