# Empty compiler generated dependencies file for blocking_echo_server.
# This may be replaced when dependencies are built.
