file(REMOVE_RECURSE
  "CMakeFiles/blocking_echo_server.dir/blocking_echo_server.cpp.o"
  "CMakeFiles/blocking_echo_server.dir/blocking_echo_server.cpp.o.d"
  "blocking_echo_server"
  "blocking_echo_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_echo_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
