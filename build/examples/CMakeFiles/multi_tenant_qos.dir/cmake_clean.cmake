file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_qos.dir/multi_tenant_qos.cpp.o"
  "CMakeFiles/multi_tenant_qos.dir/multi_tenant_qos.cpp.o.d"
  "multi_tenant_qos"
  "multi_tenant_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
