# Empty compiler generated dependencies file for arp_debugging.
# This may be replaced when dependencies are built.
