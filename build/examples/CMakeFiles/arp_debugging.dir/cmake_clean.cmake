file(REMOVE_RECURSE
  "CMakeFiles/arp_debugging.dir/arp_debugging.cpp.o"
  "CMakeFiles/arp_debugging.dir/arp_debugging.cpp.o.d"
  "arp_debugging"
  "arp_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arp_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
