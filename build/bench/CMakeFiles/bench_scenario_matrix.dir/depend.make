# Empty dependencies file for bench_scenario_matrix.
# This may be replaced when dependencies are built.
