file(REMOVE_RECURSE
  "CMakeFiles/bench_scenario_matrix.dir/bench_scenario_matrix.cc.o"
  "CMakeFiles/bench_scenario_matrix.dir/bench_scenario_matrix.cc.o.d"
  "bench_scenario_matrix"
  "bench_scenario_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scenario_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
