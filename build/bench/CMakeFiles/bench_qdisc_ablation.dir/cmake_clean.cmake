file(REMOVE_RECURSE
  "CMakeFiles/bench_qdisc_ablation.dir/bench_qdisc_ablation.cc.o"
  "CMakeFiles/bench_qdisc_ablation.dir/bench_qdisc_ablation.cc.o.d"
  "bench_qdisc_ablation"
  "bench_qdisc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qdisc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
