# Empty dependencies file for bench_qdisc_ablation.
# This may be replaced when dependencies are built.
