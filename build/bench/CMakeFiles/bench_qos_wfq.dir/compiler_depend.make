# Empty compiler generated dependencies file for bench_qos_wfq.
# This may be replaced when dependencies are built.
