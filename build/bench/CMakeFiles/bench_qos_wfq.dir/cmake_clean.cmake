file(REMOVE_RECURSE
  "CMakeFiles/bench_qos_wfq.dir/bench_qos_wfq.cc.o"
  "CMakeFiles/bench_qos_wfq.dir/bench_qos_wfq.cc.o.d"
  "bench_qos_wfq"
  "bench_qos_wfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qos_wfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
