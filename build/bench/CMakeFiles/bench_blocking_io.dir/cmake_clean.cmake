file(REMOVE_RECURSE
  "CMakeFiles/bench_blocking_io.dir/bench_blocking_io.cc.o"
  "CMakeFiles/bench_blocking_io.dir/bench_blocking_io.cc.o.d"
  "bench_blocking_io"
  "bench_blocking_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocking_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
