# Empty compiler generated dependencies file for bench_blocking_io.
# This may be replaced when dependencies are built.
