# Empty compiler generated dependencies file for bench_e2_validation.
# This may be replaced when dependencies are built.
