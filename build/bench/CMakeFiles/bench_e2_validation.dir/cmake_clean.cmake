file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_validation.dir/bench_e2_validation.cc.o"
  "CMakeFiles/bench_e2_validation.dir/bench_e2_validation.cc.o.d"
  "bench_e2_validation"
  "bench_e2_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
