# Empty compiler generated dependencies file for bench_enforcement.
# This may be replaced when dependencies are built.
