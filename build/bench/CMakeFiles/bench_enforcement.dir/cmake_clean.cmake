file(REMOVE_RECURSE
  "CMakeFiles/bench_enforcement.dir/bench_enforcement.cc.o"
  "CMakeFiles/bench_enforcement.dir/bench_enforcement.cc.o.d"
  "bench_enforcement"
  "bench_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
