file(REMOVE_RECURSE
  "CMakeFiles/bench_debug_tracing.dir/bench_debug_tracing.cc.o"
  "CMakeFiles/bench_debug_tracing.dir/bench_debug_tracing.cc.o.d"
  "bench_debug_tracing"
  "bench_debug_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_debug_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
