# Empty dependencies file for bench_debug_tracing.
# This may be replaced when dependencies are built.
