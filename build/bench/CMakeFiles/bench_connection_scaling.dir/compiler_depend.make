# Empty compiler generated dependencies file for bench_connection_scaling.
# This may be replaced when dependencies are built.
