file(REMOVE_RECURSE
  "CMakeFiles/bench_connection_scaling.dir/bench_connection_scaling.cc.o"
  "CMakeFiles/bench_connection_scaling.dir/bench_connection_scaling.cc.o.d"
  "bench_connection_scaling"
  "bench_connection_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_connection_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
