file(REMOVE_RECURSE
  "CMakeFiles/bench_reliable_transport.dir/bench_reliable_transport.cc.o"
  "CMakeFiles/bench_reliable_transport.dir/bench_reliable_transport.cc.o.d"
  "bench_reliable_transport"
  "bench_reliable_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reliable_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
