# Empty dependencies file for bench_reliable_transport.
# This may be replaced when dependencies are built.
