# Empty dependencies file for bench_dos_resilience.
# This may be replaced when dependencies are built.
