file(REMOVE_RECURSE
  "CMakeFiles/bench_dos_resilience.dir/bench_dos_resilience.cc.o"
  "CMakeFiles/bench_dos_resilience.dir/bench_dos_resilience.cc.o.d"
  "bench_dos_resilience"
  "bench_dos_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dos_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
