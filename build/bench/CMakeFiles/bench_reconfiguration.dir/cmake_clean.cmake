file(REMOVE_RECURSE
  "CMakeFiles/bench_reconfiguration.dir/bench_reconfiguration.cc.o"
  "CMakeFiles/bench_reconfiguration.dir/bench_reconfiguration.cc.o.d"
  "bench_reconfiguration"
  "bench_reconfiguration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconfiguration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
