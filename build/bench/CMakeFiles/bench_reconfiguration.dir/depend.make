# Empty dependencies file for bench_reconfiguration.
# This may be replaced when dependencies are built.
