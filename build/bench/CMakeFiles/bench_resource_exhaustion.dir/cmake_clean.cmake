file(REMOVE_RECURSE
  "CMakeFiles/bench_resource_exhaustion.dir/bench_resource_exhaustion.cc.o"
  "CMakeFiles/bench_resource_exhaustion.dir/bench_resource_exhaustion.cc.o.d"
  "bench_resource_exhaustion"
  "bench_resource_exhaustion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resource_exhaustion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
