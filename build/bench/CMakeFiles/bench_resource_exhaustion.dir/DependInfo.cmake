
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_resource_exhaustion.cc" "bench/CMakeFiles/bench_resource_exhaustion.dir/bench_resource_exhaustion.cc.o" "gcc" "bench/CMakeFiles/bench_resource_exhaustion.dir/bench_resource_exhaustion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/norman_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/norman/CMakeFiles/norman_api.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/norman_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/norman_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/norman_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/norman_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/norman_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/norman_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/norman_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
