# Empty compiler generated dependencies file for bench_resource_exhaustion.
# This may be replaced when dependencies are built.
