file(REMOVE_RECURSE
  "CMakeFiles/bench_fct.dir/bench_fct.cc.o"
  "CMakeFiles/bench_fct.dir/bench_fct.cc.o.d"
  "bench_fct"
  "bench_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
