# Empty compiler generated dependencies file for bench_fct.
# This may be replaced when dependencies are built.
