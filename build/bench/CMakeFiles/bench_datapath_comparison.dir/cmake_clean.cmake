file(REMOVE_RECURSE
  "CMakeFiles/bench_datapath_comparison.dir/bench_datapath_comparison.cc.o"
  "CMakeFiles/bench_datapath_comparison.dir/bench_datapath_comparison.cc.o.d"
  "bench_datapath_comparison"
  "bench_datapath_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datapath_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
