# Empty dependencies file for bench_datapath_comparison.
# This may be replaced when dependencies are built.
