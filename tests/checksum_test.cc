#include "src/net/checksum.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/net/byte_io.h"

namespace norman::net {
namespace {

TEST(ChecksumTest, Rfc1071Example) {
  // Classic example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 2ddf0 -> fold: ddf0 + 2 = ddf2 -> complement = 220d.
  EXPECT_EQ(InternetChecksum(data), 0x220d);
}

TEST(ChecksumTest, ZeroBufferChecksum) {
  const std::vector<uint8_t> zeros(20, 0);
  EXPECT_EQ(InternetChecksum(zeros), 0xffff);
}

TEST(ChecksumTest, OddLengthPadsRight) {
  const uint8_t data[] = {0xab};
  // Sum = 0xab00 -> complement = 0x54ff.
  EXPECT_EQ(InternetChecksum(data), 0x54ff);
}

TEST(ChecksumTest, EmptyBuffer) {
  EXPECT_EQ(InternetChecksum(std::span<const uint8_t>{}), 0xffff);
}

TEST(ChecksumTest, InsertedChecksumValidatesToZero) {
  // Property: writing the computed checksum into a zeroed field makes the
  // full-buffer checksum come out 0 — for any content.
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> buf(20 + rng.NextBounded(64) * 2);
    for (auto& b : buf) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    // Zero a 16-bit "checksum field" at offset 10.
    buf[10] = buf[11] = 0;
    const uint16_t csum = InternetChecksum(buf);
    StoreBe16(&buf[10], csum);
    EXPECT_EQ(InternetChecksum(buf), 0) << "trial " << trial;
  }
}

TEST(ChecksumTest, PartialComposition) {
  // Property: checksum(a ++ b) == finish(partial(b, partial(a))) for
  // even-length a (one's complement sums compose at 16-bit boundaries).
  Rng rng(22);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> a(2 * (1 + rng.NextBounded(20)));
    std::vector<uint8_t> b(1 + rng.NextBounded(40));
    for (auto& x : a) {
      x = static_cast<uint8_t>(rng.NextU64());
    }
    for (auto& x : b) {
      x = static_cast<uint8_t>(rng.NextU64());
    }
    std::vector<uint8_t> ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_EQ(InternetChecksum(ab),
              ChecksumFinish(ChecksumPartial(b, ChecksumPartial(a))));
  }
}

TEST(ChecksumTest, ChunkedSumMatchesBytewiseReference) {
  // The production ChecksumPartial sums 64-bit chunks natively and defers
  // the byte swap (RFC 1071 §2B byte-order independence). Check it against
  // the obvious big-endian 16-bit reference over every length 0..130 so all
  // tail paths (8/4/2/1-byte remainders) and carry patterns are exercised.
  Rng rng(24);
  for (size_t len = 0; len <= 130; ++len) {
    std::vector<uint8_t> data(len);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    uint32_t ref = 17;  // arbitrary incoming partial
    size_t i = 0;
    for (; i + 1 < data.size(); i += 2) {
      ref += LoadBe16(&data[i]);
    }
    if (i < data.size()) {
      ref += static_cast<uint32_t>(data[i]) << 8;
    }
    EXPECT_EQ(ChecksumFinish(ChecksumPartial(data, 17)), ChecksumFinish(ref))
        << "len " << len;
  }
  // All-0xff buffers drive the maximum carry cascade.
  const std::vector<uint8_t> ones(96, 0xff);
  EXPECT_EQ(InternetChecksum(ones), 0);
}

TEST(TransportChecksumTest, UdpNeverZero) {
  // Find-by-construction is hard; instead verify the documented rule via a
  // payload engineered to sum to zero is still reported as 0xffff.
  // Simpler: property — transport checksum is never 0 for UDP.
  Rng rng(23);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> l4(8 + rng.NextBounded(32));
    for (auto& x : l4) {
      x = static_cast<uint8_t>(rng.NextU64());
    }
    l4[6] = l4[7] = 0;  // checksum field zeroed
    const uint16_t csum =
        TransportChecksum(Ipv4Address::FromOctets(10, 0, 0, 1),
                          Ipv4Address::FromOctets(10, 0, 0, 2), IpProto::kUdp,
                          l4);
    EXPECT_NE(csum, 0);
  }
}

TEST(TransportChecksumTest, DependsOnPseudoHeader) {
  const std::vector<uint8_t> l4(16, 0x5a);
  const auto src1 = Ipv4Address::FromOctets(10, 0, 0, 1);
  const auto src2 = Ipv4Address::FromOctets(10, 0, 0, 2);
  const auto dst = Ipv4Address::FromOctets(10, 0, 0, 3);
  EXPECT_NE(TransportChecksum(src1, dst, IpProto::kTcp, l4),
            TransportChecksum(src2, dst, IpProto::kTcp, l4));
  EXPECT_NE(TransportChecksum(src1, dst, IpProto::kTcp, l4),
            TransportChecksum(src1, dst, IpProto::kUdp, l4));
}

}  // namespace
}  // namespace norman::net
