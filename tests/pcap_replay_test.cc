// Pcap replay: capture-with-norman-tcpdump, replay-against-a-host loop.
#include "src/workload/pcap_replay.h"

#include <gtest/gtest.h>

#include "src/norman/listener.h"
#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"

namespace norman::workload {
namespace {

using net::Ipv4Address;

// Builds a small pcap in memory: three UDP frames at t=1ms,2ms,4ms.
net::PcapWriter MakeTrace(uint16_t dst_port) {
  net::PcapWriter pcap;
  net::FrameEndpoints ep{net::MacAddress::ForHost(2),
                         net::MacAddress::ForHost(1),
                         Ipv4Address::FromOctets(10, 0, 0, 2),
                         Ipv4Address::FromOctets(10, 0, 0, 1)};
  for (int i = 0; i < 3; ++i) {
    const Nanos t = (i == 2 ? 4 : i + 1) * kMillisecond;
    pcap.AddRecord(t, net::BuildUdpFrame(
                          ep, static_cast<uint16_t>(7000 + i), dst_port,
                          std::vector<uint8_t>(32, static_cast<uint8_t>(i))));
  }
  return pcap;
}

TEST(PcapReplayTest, FramesArriveWithOriginalSpacing) {
  TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "srv");
  auto listener = Listener::Create(&k, pid, 8080);
  ASSERT_TRUE(listener.ok());

  const auto pcap = MakeTrace(8080);
  auto report = ReplayPcap(&bed.sim(), &bed.nic(), pcap.buffer(), {});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->frames_injected, 3u);
  EXPECT_EQ(report->last_at - report->first_at, 3 * kMillisecond);
  bed.sim().Run();
  // Three peers -> three auto-accepted connections.
  int accepted = 0;
  while (listener->Accept().ok()) {
    ++accepted;
  }
  EXPECT_EQ(accepted, 3);
}

TEST(PcapReplayTest, TimeScaleCompresses) {
  TestBed bed;
  const auto pcap = MakeTrace(9);
  ReplayOptions opts;
  opts.time_scale = 0.0;  // back-to-back
  opts.start_at = 500;
  auto report = ReplayPcap(&bed.sim(), &bed.nic(), pcap.buffer(), opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->first_at, 500);
  EXPECT_EQ(report->last_at, 500);
  bed.sim().Run();
  EXPECT_EQ(bed.nic().stats().rx_seen(), telemetry::HotCount(3));
}

TEST(PcapReplayTest, FilterSkipsFrames) {
  TestBed bed;
  const auto pcap = MakeTrace(9);
  ReplayOptions opts;
  opts.frame_filter = [](const net::PcapRecord& rec) {
    auto parsed = net::ParseFrame(rec.bytes);
    return parsed && parsed->flow() && parsed->flow()->src_port != 7001;
  };
  auto report = ReplayPcap(&bed.sim(), &bed.nic(), pcap.buffer(), opts);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->frames_injected, 2u);
  EXPECT_EQ(report->frames_skipped, 1u);
}

TEST(PcapReplayTest, RejectsGarbageFile) {
  TestBed bed;
  const std::vector<uint8_t> junk(100, 0xab);
  EXPECT_FALSE(ReplayPcap(&bed.sim(), &bed.nic(), junk, {}).ok());
}

TEST(PcapReplayTest, EmptyTraceIsNoop) {
  TestBed bed;
  net::PcapWriter empty;
  auto report = ReplayPcap(&bed.sim(), &bed.nic(), empty.buffer(), {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->frames_injected, 0u);
}

TEST(PcapReplayTest, CaptureThenReplayRoundTrip) {
  // Capture host A's egress with the sniffer, then replay that capture
  // into a fresh host and verify the same frames arrive.
  TestBed source;
  auto& ks = source.kernel();
  ks.processes().AddUser(1, "u");
  const auto pid = *ks.processes().Spawn(1, "app");
  ASSERT_TRUE(ks.StartCapture(kernel::kRootUid).ok());
  auto sock = Socket::Connect(&ks, pid,
                              Ipv4Address::FromOctets(10, 0, 0, 2), 8088,
                              {});
  ASSERT_TRUE(sock.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sock->Send("replayable " + std::to_string(i)).ok());
  }
  source.sim().Run();
  ASSERT_EQ(ks.sniffer().captured(), 5u);

  TestBed target;
  auto report = ReplayPcap(&target.sim(), &target.nic(),
                           ks.sniffer().pcap().buffer(), {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->frames_injected, 5u);
  target.sim().Run();
  EXPECT_EQ(target.nic().stats().rx_seen(), telemetry::HotCount(5));
}

}  // namespace
}  // namespace norman::workload
