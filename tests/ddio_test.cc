#include "src/nic/ddio.h"

#include <gtest/gtest.h>

namespace norman::nic {
namespace {

TEST(DdioTest, CapacityFromWaySplit) {
  DdioModel m(32 * kMiB, 2, 16);
  EXPECT_EQ(m.ddio_capacity(), 4 * kMiB);
}

TEST(DdioTest, FirstAccessMissesThenHits) {
  DdioModel m;
  EXPECT_FALSE(m.Access(1, 2048));
  EXPECT_TRUE(m.Access(1, 2048));
  EXPECT_TRUE(m.Access(1, 2048));
  EXPECT_EQ(m.misses(), 1u);
  EXPECT_EQ(m.hits(), 2u);
}

TEST(DdioTest, WorkingSetWithinCapacityAllHitsAfterWarmup) {
  DdioModel m(32 * kMiB, 2, 16);  // 4 MiB DDIO share
  constexpr uint64_t kRingBytes = 2048;
  constexpr uint64_t kRings = 1000;  // 2 MB total < 4 MiB
  for (uint64_t r = 0; r < kRings; ++r) {
    m.Access(r, kRingBytes);  // warmup
  }
  m.ResetStats();
  for (int round = 0; round < 5; ++round) {
    for (uint64_t r = 0; r < kRings; ++r) {
      EXPECT_TRUE(m.Access(r, kRingBytes));
    }
  }
  EXPECT_DOUBLE_EQ(m.hit_rate(), 1.0);
}

TEST(DdioTest, WorkingSetBeyondCapacityThrashesUnderLruScan) {
  DdioModel m(32 * kMiB, 2, 16);  // 4 MiB share
  constexpr uint64_t kRingBytes = 2048;
  constexpr uint64_t kRings = 4096;  // 8 MB > 4 MiB
  // Round-robin scan over a working set 2x the capacity with LRU: every
  // access misses (the classic LRU scan pathology the paper's cliff rides).
  for (uint64_t r = 0; r < kRings; ++r) {
    m.Access(r, kRingBytes);
  }
  m.ResetStats();
  for (int round = 0; round < 3; ++round) {
    for (uint64_t r = 0; r < kRings; ++r) {
      EXPECT_FALSE(m.Access(r, kRingBytes)) << "ring " << r;
    }
  }
  EXPECT_DOUBLE_EQ(m.hit_rate(), 0.0);
}

TEST(DdioTest, ResidencyNeverExceedsCapacity) {
  DdioModel m(1 * kMiB, 2, 16);  // 128 KiB share
  for (uint64_t r = 0; r < 1000; ++r) {
    m.Access(r, 4096);
    EXPECT_LE(m.resident_bytes(), m.ddio_capacity());
  }
}

TEST(DdioTest, OversizedRingNeverResident) {
  DdioModel m(1 * kMiB, 2, 16);  // 128 KiB share
  EXPECT_FALSE(m.Access(1, 256 * kKiB));
  EXPECT_FALSE(m.Access(1, 256 * kKiB));  // still a miss
  EXPECT_EQ(m.resident_bytes(), 0u);
}

TEST(DdioTest, InvalidateFreesSpace) {
  DdioModel m(1 * kMiB, 2, 16);  // 128 KiB
  m.Access(1, 64 * kKiB);
  m.Access(2, 64 * kKiB);
  EXPECT_EQ(m.resident_bytes(), 128 * kKiB);
  m.Invalidate(1);
  EXPECT_EQ(m.resident_bytes(), 64 * kKiB);
  EXPECT_FALSE(m.Access(1, 64 * kKiB));  // must be re-fetched
  EXPECT_TRUE(m.Access(2, 64 * kKiB));   // still resident
}

TEST(DdioTest, LruEvictsColdestRing) {
  DdioModel m(1 * kMiB, 2, 16);  // 128 KiB share; 3 rings of 64KiB
  m.Access(1, 64 * kKiB);
  m.Access(2, 64 * kKiB);
  m.Access(1, 64 * kKiB);        // 1 is now MRU
  m.Access(3, 64 * kKiB);        // evicts 2 (LRU)
  EXPECT_TRUE(m.Access(1, 64 * kKiB));
  EXPECT_FALSE(m.Access(2, 64 * kKiB));
}

TEST(DdioTest, InvalidateUnknownIsNoop) {
  DdioModel m;
  m.Invalidate(42);
  EXPECT_EQ(m.resident_bytes(), 0u);
}

}  // namespace
}  // namespace norman::nic
