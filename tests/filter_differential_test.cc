// Differential property test: the overlay-compiled filter chain must agree
// with an independent reference implementation of iptables first-match
// semantics, over thousands of randomized (ruleset, packet) pairs.
//
// This is the compiler's correctness argument: CompileFilterChain and the
// overlay interpreter on one side; a direct, obviously-correct C++ matcher
// on the other. Any divergence in match semantics (prefix arithmetic, port
// ranges, owner fields, direction, first-match ordering, default policy)
// fails here with the full rule and packet dump.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "src/common/rng.h"
#include "src/dataplane/filter_engine.h"
#include "tests/test_util.h"

namespace norman::dataplane {
namespace {

using net::Direction;
using net::IpProto;
using net::Ipv4Address;

// ---- Reference matcher (deliberately naive) ----

bool RefMatches(const FilterRule& r, const overlay::PacketContext& ctx) {
  const net::ParsedPacket* p = ctx.parsed;
  if (r.direction && *r.direction != ctx.direction) {
    return false;
  }
  if (r.proto) {
    if (p == nullptr || !p->is_ipv4() || p->ipv4->protocol != *r.proto) {
      return false;
    }
  }
  auto prefix_match = [](Ipv4Address have, Ipv4Address want,
                         uint32_t prefix) {
    if (prefix == 0) {
      return true;
    }
    const uint32_t shift = 32 - prefix;
    return (have.addr >> shift) == (want.addr >> shift);
  };
  if (r.src_ip) {
    if (p == nullptr || !p->is_ipv4() ||
        !prefix_match(p->ipv4->src, *r.src_ip, r.src_ip_prefix.value_or(32))) {
      return false;
    }
  }
  if (r.dst_ip) {
    if (p == nullptr || !p->is_ipv4() ||
        !prefix_match(p->ipv4->dst, *r.dst_ip, r.dst_ip_prefix.value_or(32))) {
      return false;
    }
  }
  auto port_of = [&](bool src) -> std::optional<uint16_t> {
    if (p == nullptr) {
      return std::nullopt;
    }
    if (p->is_udp()) {
      return src ? p->udp->src_port : p->udp->dst_port;
    }
    if (p->is_tcp()) {
      return src ? p->tcp->src_port : p->tcp->dst_port;
    }
    return std::nullopt;
  };
  if (r.src_port) {
    const auto port = port_of(true);
    // Overlay semantics: missing fields read 0, so a port rule matches a
    // portless packet only if 0 is inside the range.
    const uint16_t value = port.value_or(0);
    if (value < r.src_port->lo || value > r.src_port->hi) {
      return false;
    }
  }
  if (r.dst_port) {
    const auto port = port_of(false);
    const uint16_t value = port.value_or(0);
    if (value < r.dst_port->lo || value > r.dst_port->hi) {
      return false;
    }
  }
  if (r.owner_uid && ctx.conn.owner_uid != *r.owner_uid) {
    return false;
  }
  if (r.owner_pid && ctx.conn.owner_pid != *r.owner_pid) {
    return false;
  }
  if (r.owner_comm && ctx.conn.owner_comm != *r.owner_comm) {
    return false;
  }
  if (r.owner_cgroup && ctx.conn.owner_cgroup != *r.owner_cgroup) {
    return false;
  }
  return true;
}

FilterAction RefEvaluate(const std::vector<FilterRule>& rules,
                         FilterAction default_action,
                         const overlay::PacketContext& ctx) {
  for (const auto& r : rules) {
    if (RefMatches(r, ctx)) {
      return r.action;
    }
  }
  return default_action;
}

// ---- Random generators ----

FilterRule RandomRule(Rng& rng) {
  FilterRule r;
  if (rng.NextBool(0.3)) {
    r.direction = rng.NextBool(0.5) ? Direction::kTx : Direction::kRx;
  }
  if (rng.NextBool(0.4)) {
    r.proto = rng.NextBool(0.5) ? IpProto::kUdp : IpProto::kTcp;
  }
  if (rng.NextBool(0.3)) {
    r.src_ip = Ipv4Address::FromOctets(10, 0, 0,
                                       static_cast<uint8_t>(rng.NextBounded(4)));
    r.src_ip_prefix = static_cast<uint32_t>(rng.NextInRange(8, 32));
  }
  if (rng.NextBool(0.3)) {
    r.dst_ip = Ipv4Address::FromOctets(10, 0, 0,
                                       static_cast<uint8_t>(rng.NextBounded(4)));
    r.dst_ip_prefix = static_cast<uint32_t>(rng.NextInRange(8, 32));
  }
  if (rng.NextBool(0.4)) {
    const auto lo = static_cast<uint16_t>(rng.NextBounded(100));
    const auto hi = static_cast<uint16_t>(lo + rng.NextBounded(5));
    r.dst_port = PortRange{lo, hi};
  }
  if (rng.NextBool(0.2)) {
    const auto lo = static_cast<uint16_t>(rng.NextBounded(100));
    r.src_port = PortRange{lo, static_cast<uint16_t>(lo + rng.NextBounded(3))};
  }
  if (rng.NextBool(0.3)) {
    r.owner_uid = 1000 + static_cast<uint32_t>(rng.NextBounded(3));
  }
  if (rng.NextBool(0.2)) {
    r.owner_pid = 100 + static_cast<uint32_t>(rng.NextBounded(3));
  }
  if (rng.NextBool(0.2)) {
    r.owner_comm = static_cast<uint32_t>(rng.NextBounded(4));
  }
  if (rng.NextBool(0.2)) {
    r.owner_cgroup = static_cast<uint32_t>(rng.NextBounded(3) + 1);
  }
  const auto action = rng.NextBounded(3);
  r.action = static_cast<FilterAction>(action);
  return r;
}

std::unique_ptr<test::ContextBundle> RandomPacket(Rng& rng) {
  // Small value domains so rules and packets actually collide.
  const auto src_port = static_cast<uint16_t>(rng.NextBounded(100));
  const auto dst_port = static_cast<uint16_t>(rng.NextBounded(100));
  const auto dir = rng.NextBool(0.5) ? Direction::kTx : Direction::kRx;
  overlay::ConnMetadata owner;
  owner.conn_id = 1;
  owner.owner_uid = 1000 + static_cast<uint32_t>(rng.NextBounded(3));
  owner.owner_pid = 100 + static_cast<uint32_t>(rng.NextBounded(3));
  owner.owner_comm = static_cast<uint32_t>(rng.NextBounded(4));
  owner.owner_cgroup = static_cast<uint32_t>(rng.NextBounded(3) + 1);
  if (rng.NextBool(0.5)) {
    return test::MakeUdpContext(src_port, dst_port, dir, owner,
                                rng.NextBounded(64));
  }
  return test::MakeTcpContext(src_port, dst_port, net::TcpFlags::kAck, dir,
                              owner, rng.NextBounded(64));
}

std::string DumpRule(const FilterRule& r, size_t index) {
  std::ostringstream out;
  out << "rule[" << index << "]:";
  if (r.direction) {
    out << " dir=" << (*r.direction == Direction::kRx ? "rx" : "tx");
  }
  if (r.proto) {
    out << " proto=" << static_cast<int>(*r.proto);
  }
  if (r.src_ip) {
    out << " src=" << r.src_ip->ToString() << "/" << *r.src_ip_prefix;
  }
  if (r.dst_ip) {
    out << " dst=" << r.dst_ip->ToString() << "/" << *r.dst_ip_prefix;
  }
  if (r.src_port) {
    out << " sport=" << r.src_port->lo << "-" << r.src_port->hi;
  }
  if (r.dst_port) {
    out << " dport=" << r.dst_port->lo << "-" << r.dst_port->hi;
  }
  if (r.owner_uid) {
    out << " uid=" << *r.owner_uid;
  }
  if (r.owner_pid) {
    out << " pid=" << *r.owner_pid;
  }
  if (r.owner_comm) {
    out << " comm=" << *r.owner_comm;
  }
  if (r.owner_cgroup) {
    out << " cgroup=" << *r.owner_cgroup;
  }
  out << " -> " << static_cast<int>(r.action);
  return out.str();
}

class FilterDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FilterDifferentialTest, CompiledChainAgreesWithReference) {
  Rng rng(GetParam());
  for (int world = 0; world < 40; ++world) {
    const size_t num_rules = rng.NextBounded(12);
    FilterEngine engine(rng.NextBool(0.5) ? FilterAction::kAccept
                                          : FilterAction::kDrop);
    std::vector<FilterRule> rules;
    for (size_t i = 0; i < num_rules; ++i) {
      const FilterRule r = RandomRule(rng);
      auto added = engine.AppendRule(r);
      ASSERT_TRUE(added.ok()) << added.status();
      rules.push_back(r);
    }
    for (int trial = 0; trial < 40; ++trial) {
      auto pkt = RandomPacket(rng);
      const FilterAction expected =
          RefEvaluate(rules, engine.default_action(), pkt->ctx);
      const nic::Verdict got = engine.Process(pkt->packet, pkt->ctx).verdict;
      nic::Verdict want = nic::Verdict::kAccept;
      switch (expected) {
        case FilterAction::kAccept:
          want = nic::Verdict::kAccept;
          break;
        case FilterAction::kDrop:
          want = nic::Verdict::kDrop;
          break;
        case FilterAction::kSoftwareFallback:
          want = nic::Verdict::kSoftwareFallback;
          break;
      }
      if (got != want) {
        std::ostringstream dump;
        for (size_t i = 0; i < rules.size(); ++i) {
          dump << DumpRule(rules[i], i) << "\n";
        }
        dump << "default=" << static_cast<int>(engine.default_action())
             << "\npacket: " << (pkt->parsed.is_udp() ? "udp" : "tcp")
             << " dir=" << (pkt->ctx.direction == Direction::kRx ? "rx" : "tx")
             << " flow=" << pkt->parsed.flow()->ToString()
             << " uid=" << pkt->ctx.conn.owner_uid
             << " pid=" << pkt->ctx.conn.owner_pid
             << " comm=" << pkt->ctx.conn.owner_comm
             << " cgroup=" << pkt->ctx.conn.owner_cgroup;
        FAIL() << "divergence (world " << world << " trial " << trial
               << "):\n"
               << dump.str();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace norman::dataplane
