#include "src/common/fixed_ring.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace norman {
namespace {

TEST(FixedRingTest, StartsEmpty) {
  FixedRing<int> r(8);
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.full());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.capacity(), 8u);
  EXPECT_EQ(r.TryPop(), std::nullopt);
  EXPECT_EQ(r.Peek(), nullptr);
}

TEST(FixedRingTest, FifoOrder) {
  FixedRing<int> r(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(r.TryPush(i));
  }
  EXPECT_TRUE(r.full());
  EXPECT_FALSE(r.TryPush(99));
  for (int i = 0; i < 4; ++i) {
    auto v = r.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(r.empty());
}

TEST(FixedRingTest, PeekDoesNotConsume) {
  FixedRing<int> r(4);
  r.TryPush(7);
  ASSERT_NE(r.Peek(), nullptr);
  EXPECT_EQ(*r.Peek(), 7);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(*r.TryPop(), 7);
}

TEST(FixedRingTest, WrapsAroundManyTimes) {
  FixedRing<uint32_t> r(8);
  uint32_t next_push = 0, next_pop = 0;
  Rng rng(1);
  for (int step = 0; step < 100000; ++step) {
    if (rng.NextBool(0.55) && !r.full()) {
      EXPECT_TRUE(r.TryPush(next_push++));
    } else if (!r.empty()) {
      auto v = r.TryPop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_pop++);
    }
    EXPECT_EQ(r.size(), next_push - next_pop);
    EXPECT_LE(r.size(), r.capacity());
  }
}

TEST(FixedRingTest, FreeRunningCountersWrapAt32Bits) {
  // Push/pop enough that head approaches wrap; the discipline must survive
  // uint32 overflow. Simulate by many cycles on a tiny ring.
  FixedRing<int> r(2);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(r.TryPush(1));
    EXPECT_TRUE(r.TryPush(2));
    EXPECT_TRUE(r.full());
    EXPECT_EQ(*r.TryPop(), 1);
    EXPECT_EQ(*r.TryPop(), 2);
  }
  EXPECT_EQ(r.head(), 2000u);
  EXPECT_EQ(r.tail(), 2000u);
}

TEST(FixedRingTest, ClearDiscardsContents) {
  FixedRing<int> r(4);
  r.TryPush(1);
  r.TryPush(2);
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.TryPop(), std::nullopt);
}

TEST(FixedRingTest, MoveOnlyPayload) {
  FixedRing<std::unique_ptr<int>> r(2);
  EXPECT_TRUE(r.TryPush(std::make_unique<int>(3)));
  auto v = r.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 3);
}

}  // namespace
}  // namespace norman
