#include "src/common/fixed_ring.h"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "src/common/rng.h"

namespace norman {
namespace {

TEST(FixedRingTest, StartsEmpty) {
  FixedRing<int> r(8);
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.full());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.capacity(), 8u);
  EXPECT_EQ(r.TryPop(), std::nullopt);
  EXPECT_EQ(r.Peek(), nullptr);
}

TEST(FixedRingTest, FifoOrder) {
  FixedRing<int> r(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(r.TryPush(i));
  }
  EXPECT_TRUE(r.full());
  EXPECT_FALSE(r.TryPush(99));
  for (int i = 0; i < 4; ++i) {
    auto v = r.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(r.empty());
}

TEST(FixedRingTest, PeekDoesNotConsume) {
  FixedRing<int> r(4);
  r.TryPush(7);
  ASSERT_NE(r.Peek(), nullptr);
  EXPECT_EQ(*r.Peek(), 7);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(*r.TryPop(), 7);
}

TEST(FixedRingTest, WrapsAroundManyTimes) {
  FixedRing<uint32_t> r(8);
  uint32_t next_push = 0, next_pop = 0;
  Rng rng(1);
  for (int step = 0; step < 100000; ++step) {
    if (rng.NextBool(0.55) && !r.full()) {
      EXPECT_TRUE(r.TryPush(next_push++));
    } else if (!r.empty()) {
      auto v = r.TryPop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_pop++);
    }
    EXPECT_EQ(r.size(), next_push - next_pop);
    EXPECT_LE(r.size(), r.capacity());
  }
}

TEST(FixedRingTest, FreeRunningCountersWrapAt32Bits) {
  // Push/pop enough that head approaches wrap; the discipline must survive
  // uint32 overflow. Simulate by many cycles on a tiny ring.
  FixedRing<int> r(2);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(r.TryPush(1));
    EXPECT_TRUE(r.TryPush(2));
    EXPECT_TRUE(r.full());
    EXPECT_EQ(*r.TryPop(), 1);
    EXPECT_EQ(*r.TryPop(), 2);
  }
  EXPECT_EQ(r.head(), 2000u);
  EXPECT_EQ(r.tail(), 2000u);
}

TEST(FixedRingTest, ClearDiscardsContents) {
  FixedRing<int> r(4);
  r.TryPush(1);
  r.TryPush(2);
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.TryPop(), std::nullopt);
}

TEST(FixedRingTest, MoveOnlyPayload) {
  FixedRing<std::unique_ptr<int>> r(2);
  EXPECT_TRUE(r.TryPush(std::make_unique<int>(3)));
  auto v = r.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 3);
}

TEST(FixedRingBulkTest, PushNPopNRoundTrip) {
  FixedRing<int> r(8);
  std::vector<int> in{1, 2, 3, 4, 5};
  EXPECT_EQ(r.PushN(std::span<int>(in)), 5u);
  EXPECT_EQ(r.size(), 5u);
  std::vector<int> out(8, -1);
  EXPECT_EQ(r.PopN(std::span<int>(out)), 5u);  // short count: ring drained
  EXPECT_TRUE(r.empty());
  EXPECT_EQ((std::vector<int>{out.begin(), out.begin() + 5}), in);
  EXPECT_EQ(out[5], -1);  // untouched past the count
}

TEST(FixedRingBulkTest, PushNPartialWhenNearlyFull) {
  FixedRing<int> r(4);
  ASSERT_TRUE(r.TryPush(0));
  std::vector<int> in{1, 2, 3, 4, 5};
  EXPECT_EQ(r.PushN(std::span<int>(in)), 3u);  // only 3 slots left
  EXPECT_TRUE(r.full());
  for (int want = 0; want < 4; ++want) {
    EXPECT_EQ(*r.TryPop(), want);
  }
}

TEST(FixedRingBulkTest, PopNPartialAndEmpty) {
  FixedRing<int> r(4);
  std::vector<int> out(4, -1);
  EXPECT_EQ(r.PopN(std::span<int>(out)), 0u);
  r.TryPush(7);
  r.TryPush(8);
  EXPECT_EQ(r.PopN(std::span<int>(out)), 2u);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[1], 8);
  EXPECT_EQ(out[2], -1);
}

TEST(FixedRingBulkTest, EmptySpansAreNoOps) {
  FixedRing<int> r(4);
  r.TryPush(1);
  EXPECT_EQ(r.PushN(std::span<int>()), 0u);
  EXPECT_EQ(r.PopN(std::span<int>()), 0u);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(*r.TryPop(), 1);
}

TEST(FixedRingBulkTest, BulkWrapAroundManyTimes) {
  // Mixed bulk/scalar traffic across thousands of wraps: FIFO order and
  // occupancy must match a free-running model exactly.
  FixedRing<uint32_t> r(8);
  uint32_t next_push = 0, next_pop = 0;
  Rng rng(2);
  std::vector<uint32_t> buf(8);
  for (int step = 0; step < 50000; ++step) {
    const uint32_t n = static_cast<uint32_t>(rng.NextInRange(1, 6));
    if (rng.NextBool(0.55)) {
      buf.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        buf[i] = next_push + i;
      }
      const uint32_t pushed = r.PushN(std::span<uint32_t>(buf));
      EXPECT_EQ(pushed, std::min<uint32_t>(n, 8u - (next_push - next_pop)));
      next_push += pushed;
    } else {
      buf.assign(n, 0xdeadbeef);
      const uint32_t popped = r.PopN(std::span<uint32_t>(buf));
      EXPECT_EQ(popped, std::min(n, next_push - next_pop));
      for (uint32_t i = 0; i < popped; ++i) {
        EXPECT_EQ(buf[i], next_pop + i);
      }
      next_pop += popped;
    }
    EXPECT_EQ(r.size(), next_push - next_pop);
  }
}

TEST(FixedRingBulkTest, PushNMovesOutOfSource) {
  FixedRing<std::unique_ptr<int>> r(4);
  std::vector<std::unique_ptr<int>> in;
  in.push_back(std::make_unique<int>(1));
  in.push_back(std::make_unique<int>(2));
  EXPECT_EQ(r.PushN(std::span<std::unique_ptr<int>>(in)), 2u);
  EXPECT_EQ(in[0], nullptr);  // moved-from
  EXPECT_EQ(in[1], nullptr);
  std::vector<std::unique_ptr<int>> out(2);
  EXPECT_EQ(r.PopN(std::span<std::unique_ptr<int>>(out)), 2u);
  EXPECT_EQ(*out[0], 1);
  EXPECT_EQ(*out[1], 2);
}

TEST(FixedRingBulkTest, PeekAtIndexesFifoOrderWithoutConsuming) {
  FixedRing<int> r(4);
  r.TryPush(10);
  r.TryPush(11);
  r.TryPush(12);
  ASSERT_NE(r.PeekAt(0), nullptr);
  EXPECT_EQ(*r.PeekAt(0), 10);
  EXPECT_EQ(*r.PeekAt(2), 12);
  EXPECT_EQ(r.PeekAt(3), nullptr);  // past the occupied region
  EXPECT_EQ(r.size(), 3u);
  // PeekAt must honor wrap: drain two, refill two.
  r.TryPop();
  r.TryPop();
  r.TryPush(13);
  r.TryPush(14);
  EXPECT_EQ(*r.PeekAt(0), 12);
  EXPECT_EQ(*r.PeekAt(2), 14);
}

}  // namespace
}  // namespace norman
