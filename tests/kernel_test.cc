// Kernel control-plane tests: process table, connection setup with owner
// stamping, privilege checks, filter/qdisc/sniffer syscalls, software
// fallback, and blocking I/O wakeups.
#include "src/kernel/kernel.h"

#include <gtest/gtest.h>

#include "src/norman/socket.h"
#include "src/workload/testbed.h"
#include "src/net/packet_pool.h"

namespace norman::kernel {
namespace {

using net::Ipv4Address;

constexpr auto kPeerIp = Ipv4Address::FromOctets(10, 0, 0, 2);

// --- ProcessTable (standalone) ---

TEST(ProcessTableTest, SpawnAssignsIdentity) {
  ProcessTable table;
  table.AddUser(1001, "bob");
  auto pid = table.Spawn(1001, "postgres");
  ASSERT_TRUE(pid.ok());
  const Process* p = table.Lookup(*pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->uid, 1001u);
  EXPECT_EQ(p->comm, "postgres");
  EXPECT_GT(p->comm_id, 0u);
  EXPECT_EQ(p->cgroup, kRootCgroup);
}

TEST(ProcessTableTest, UnknownUidRejected) {
  ProcessTable table;
  EXPECT_FALSE(table.Spawn(555, "x").ok());
}

TEST(ProcessTableTest, CommInterningIsStable) {
  ProcessTable table;
  table.AddUser(1, "a");
  auto p1 = table.Spawn(1, "nginx");
  auto p2 = table.Spawn(1, "nginx");
  auto p3 = table.Spawn(1, "redis");
  EXPECT_EQ(table.Lookup(*p1)->comm_id, table.Lookup(*p2)->comm_id);
  EXPECT_NE(table.Lookup(*p1)->comm_id, table.Lookup(*p3)->comm_id);
  EXPECT_EQ(table.CommName(table.Lookup(*p3)->comm_id), "redis");
  EXPECT_EQ(table.CommId("never_spawned"), 0u);
}

TEST(ProcessTableTest, CgroupsCreateAndMove) {
  ProcessTable table;
  table.AddUser(1, "a");
  auto cg = table.CreateCgroup("/games");
  ASSERT_TRUE(cg.ok());
  EXPECT_FALSE(table.CreateCgroup("/games").ok());  // duplicate
  auto pid = table.Spawn(1, "game");
  ASSERT_TRUE(table.MoveToCgroup(*pid, *cg).ok());
  EXPECT_EQ(table.Lookup(*pid)->cgroup, *cg);
  EXPECT_FALSE(table.MoveToCgroup(*pid, 999).ok());
  EXPECT_FALSE(table.MoveToCgroup(9999, *cg).ok());
}

// --- Kernel fixture ---

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() {
    bed_.kernel().processes().AddUser(1001, "bob");
    pid_ = *bed_.kernel().processes().Spawn(1001, "app");
  }

  workload::TestBed bed_;
  Pid pid_ = 0;
};

TEST_F(KernelTest, ConnectStampsOwnerIntoFlowTable) {
  auto port = bed_.kernel().Connect(pid_, kPeerIp, 80, {});
  ASSERT_TRUE(port.ok()) << port.status();
  EXPECT_TRUE(port->valid());
  EXPECT_FALSE(port->software_fallback());

  const nic::FlowEntry* entry =
      bed_.kernel().nic_control().LookupFlow(port->conn_id());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->owner.owner_pid, pid_);
  EXPECT_EQ(entry->owner.owner_uid, 1001u);
  EXPECT_EQ(entry->comm, "app");
  EXPECT_GT(entry->owner.owner_comm, 0u);
  EXPECT_EQ(entry->tuple.dst_ip, kPeerIp);
  EXPECT_EQ(entry->tuple.dst_port, 80);
  EXPECT_GE(entry->tuple.src_port, 30000);  // ephemeral
}

TEST_F(KernelTest, ConnectUnknownPidFails) {
  EXPECT_FALSE(bed_.kernel().Connect(424242, kPeerIp, 80, {}).ok());
}

TEST_F(KernelTest, DistinctConnectionsGetDistinctPortsAndIds) {
  auto a = bed_.kernel().Connect(pid_, kPeerIp, 80, {});
  auto b = bed_.kernel().Connect(pid_, kPeerIp, 80, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->conn_id(), b->conn_id());
  EXPECT_NE(a->tuple().src_port, b->tuple().src_port);
}

TEST_F(KernelTest, CloseRemovesFlow) {
  auto port = bed_.kernel().Connect(pid_, kPeerIp, 80, {});
  ASSERT_TRUE(port.ok());
  ASSERT_TRUE(bed_.kernel().Close(port->conn_id()).ok());
  EXPECT_EQ(bed_.kernel().nic_control().LookupFlow(port->conn_id()), nullptr);
  EXPECT_FALSE(bed_.kernel().Close(port->conn_id()).ok());
}

TEST_F(KernelTest, ListConnectionsExposesProcessView) {
  auto port = bed_.kernel().Connect(pid_, kPeerIp, 5432, {});
  ASSERT_TRUE(port.ok());
  const auto conns = bed_.kernel().ListConnections();
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(conns[0].pid, pid_);
  EXPECT_EQ(conns[0].uid, 1001u);
  EXPECT_EQ(conns[0].comm, "app");
  EXPECT_EQ(conns[0].tuple.dst_port, 5432);
}

TEST_F(KernelTest, FilterRulesRequireRoot) {
  dataplane::FilterRule rule;
  rule.action = dataplane::FilterAction::kDrop;
  EXPECT_EQ(bed_.kernel()
                .AppendFilterRule(/*caller=*/1001, Chain::kOutput, rule)
                .status()
                .code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(
      bed_.kernel().AppendFilterRule(kRootUid, Chain::kOutput, rule).ok());
  EXPECT_EQ(bed_.kernel().FlushFilterRules(1001, Chain::kOutput).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(bed_.kernel().SetQdisc(1001, nullptr).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(bed_.kernel().StartCapture(1001).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(bed_.kernel()
                .EnableNat(1001, Ipv4Address::FromOctets(10, 0, 0, 0), 8,
                           Ipv4Address::FromOctets(1, 1, 1, 1))
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(KernelTest, OutputFilterDropsOnTxPath) {
  // Root forbids all traffic to port 7777; app sends there anyway.
  dataplane::FilterRule rule;
  rule.dst_port = dataplane::PortRange{7777, 7777};
  rule.action = dataplane::FilterAction::kDrop;
  ASSERT_TRUE(
      bed_.kernel().AppendFilterRule(kRootUid, Chain::kOutput, rule).ok());

  auto sock = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 7777, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("forbidden").ok());  // app sees success (async drop)
  auto sock2 = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 8888, {});
  ASSERT_TRUE(sock2.ok());
  ASSERT_TRUE(sock2->Send("allowed").ok());
  bed_.sim().Run();

  EXPECT_EQ(bed_.egress_frames(), 1u);  // only the allowed one
  EXPECT_EQ(bed_.nic().stats().tx_dropped(), 1u);
}

TEST_F(KernelTest, SoftwareFallbackWhenNicSramExhausted) {
  // Tiny NIC SRAM: only a couple of flows fit.
  workload::TestBedOptions opts;
  opts.nic.sram_bytes = 2 * (nic::kFlowEntryBytes + 64);
  workload::TestBed bed(opts);
  bed.kernel().processes().AddUser(1, "u");
  const Pid pid = *bed.kernel().processes().Spawn(1, "srv");

  ConnectOptions copts;
  copts.allow_software_fallback = true;
  auto a = bed.kernel().Connect(pid, kPeerIp, 1, copts);
  auto b = bed.kernel().Connect(pid, kPeerIp, 2, copts);
  auto c = bed.kernel().Connect(pid, kPeerIp, 3, copts);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_FALSE(a->software_fallback());
  EXPECT_FALSE(b->software_fallback());
  EXPECT_TRUE(c->software_fallback());

  // Without the option, the connect fails outright.
  auto d = bed.kernel().Connect(pid, kPeerIp, 4, {});
  EXPECT_EQ(d.status().code(), StatusCode::kResourceExhausted);

  // Fallback connection still transmits (through the host path + NIC).
  auto frame = net::MakePacket(net::BuildUdpFrame(
      net::FrameEndpoints{bed.kernel().options().host_mac,
                          net::MacAddress::ForHost(2),
                          bed.kernel().options().host_ip, kPeerIp},
      c->tuple().src_port, 3, std::vector<uint8_t>(10, 1)));
  frame->meta().connection = c->conn_id();
  ASSERT_TRUE(bed.kernel().SoftwareTransmit(c->conn_id(), std::move(frame)).ok());
  bed.sim().Run();
  EXPECT_EQ(bed.egress_frames(), 1u);
  EXPECT_TRUE(bed.egress()[0]->meta().software_fallback);

  // And it shows up in the connection list, marked as fallback.
  bool found = false;
  for (const auto& info : bed.kernel().ListConnections()) {
    if (info.conn_id == c->conn_id()) {
      EXPECT_TRUE(info.software_fallback);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(KernelTest, BlockOnRxWakesWhenDataArrives) {
  ConnectOptions copts;
  copts.notify_rx = true;
  auto sock = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 4000, copts);
  ASSERT_TRUE(sock.ok());

  std::vector<uint8_t> received;
  Nanos woke_at = -1;
  ASSERT_TRUE(sock->RecvBlocking([&](std::vector<uint8_t> data) {
                    received = std::move(data);
                    woke_at = bed_.sim().Now();
                  })
                  .ok());

  // Nothing yet: waiter parked.
  bed_.sim().Run();
  EXPECT_EQ(woke_at, -1);

  // Peer sends to our local port at t=1ms.
  bed_.InjectUdpFromPeer(4000, sock->tuple().src_port, 64,
                         1 * kMillisecond);
  bed_.sim().Run();
  EXPECT_GT(woke_at, 1 * kMillisecond);
  EXPECT_EQ(received.size(), 64u);
  // The wake charged a context switch to the kernel core.
  EXPECT_GE(bed_.kernel().kernel_core().busy_ns(),
            bed_.nic().cost().context_switch_ns);
}

TEST_F(KernelTest, RecvBlockingDeliversImmediatelyWhenDataPending) {
  ConnectOptions copts;
  copts.notify_rx = true;
  auto sock = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 4001, copts);
  ASSERT_TRUE(sock.ok());
  bed_.InjectUdpFromPeer(4001, sock->tuple().src_port, 32, 100);
  bed_.sim().Run();

  bool delivered = false;
  ASSERT_TRUE(sock->RecvBlocking([&](std::vector<uint8_t> data) {
                    delivered = true;
                    EXPECT_EQ(data.size(), 32u);
                  })
                  .ok());
  EXPECT_TRUE(delivered);  // synchronous: data was already in the ring
}

TEST_F(KernelTest, BlockOnRxRequiresNotifyOption) {
  auto sock = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 4002, {});
  ASSERT_TRUE(sock.ok());
  EXPECT_EQ(bed_.kernel().BlockOnRx(sock->conn_id(), [] {}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(bed_.kernel().BlockOnRx(9999, [] {}).code(),
            StatusCode::kNotFound);
}

TEST_F(KernelTest, NatIntegratesIntoTxPipeline) {
  ASSERT_TRUE(bed_.kernel()
                  .EnableNat(kRootUid, Ipv4Address::FromOctets(10, 0, 0, 0),
                             8, Ipv4Address::FromOctets(203, 0, 113, 9))
                  .ok());
  EXPECT_FALSE(bed_.kernel()
                   .EnableNat(kRootUid, Ipv4Address::FromOctets(10, 0, 0, 0),
                              8, Ipv4Address::FromOctets(203, 0, 113, 9))
                   .ok());  // double enable
  auto sock = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 80, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("hello").ok());
  bed_.sim().Run();
  ASSERT_EQ(bed_.egress_frames(), 1u);
  auto parsed = net::ParseFrame(bed_.egress()[0]->bytes());
  EXPECT_EQ(parsed->ipv4->src, Ipv4Address::FromOctets(203, 0, 113, 9));
  EXPECT_EQ(bed_.kernel().nat()->tx_translated(), 1u);
}

TEST_F(KernelTest, SnifferSeesDroppedTraffic) {
  // tcpdump must show packets even when the firewall drops them (the tap
  // runs before the filter in the TX chain).
  dataplane::FilterRule rule;
  rule.dst_port = dataplane::PortRange{7777, 7777};
  rule.action = dataplane::FilterAction::kDrop;
  ASSERT_TRUE(
      bed_.kernel().AppendFilterRule(kRootUid, Chain::kOutput, rule).ok());
  ASSERT_TRUE(bed_.kernel().StartCapture(kRootUid).ok());

  auto sock = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 7777, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("blocked").ok());
  bed_.sim().Run();

  EXPECT_EQ(bed_.egress_frames(), 0u);
  ASSERT_EQ(bed_.kernel().sniffer().captured(), 1u);
  EXPECT_EQ(bed_.kernel().sniffer().records()[0].owner.owner_pid, pid_);
  EXPECT_EQ(bed_.kernel().sniffer().records()[0].dst_port, 7777);
}

TEST_F(KernelTest, ArpRequestsAnsweredFromNic) {
  // A peer ARPs for the host IP; the NIC answers without host involvement.
  auto req = net::MakePacket(net::BuildArpRequest(
      net::MacAddress::ForHost(2), kPeerIp, bed_.kernel().options().host_ip));
  bed_.InjectFromNetwork(std::move(req), 100);
  bed_.sim().Run();
  ASSERT_EQ(bed_.egress_frames(), 1u);
  auto parsed = net::ParseFrame(bed_.egress()[0]->bytes());
  ASSERT_TRUE(parsed->is_arp());
  EXPECT_EQ(parsed->arp->op, net::ArpOp::kReply);
  EXPECT_EQ(parsed->arp->sender_ip, bed_.kernel().options().host_ip);
}

}  // namespace
}  // namespace norman::kernel
